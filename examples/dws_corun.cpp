// dws_corun — the paper's real deployment as a CLI tool: launch any set
// of Table-2 benchmarks as *separate processes* co-running under a
// chosen scheduling mode, coordinating through a POSIX shared-memory
// core allocation table, and report per-program Fig.-3-style timings.
//
//   $ ./dws_corun --apps=FFT,Mergesort [--mode=DWS] [--cores=0]
//                 [--reps=3] [--scale=small]
//
// Each child process builds its own Scheduler against the shared table,
// runs its app `reps` times, and reports the mean per-run wall time
// (Eq. 2). With one Table-2 name per co-runner this is the closest
// runnable analogue of the paper's testbed experiment on real hardware —
// on a many-core host the DWS-vs-EP-vs-ABP comparison is meaningful; on
// a small CI host it is a functional demonstration.
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/core_table_shm.hpp"
#include "runtime/scheduler.hpp"
#include "util/affinity.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int child_main(const std::string& shm_name, unsigned cores, unsigned programs,
               dws::SchedMode mode, const std::string& app_name,
               dws::apps::Scale scale, int reps) {
  auto app = dws::apps::make_app(app_name, scale);
  if (app == nullptr) {
    std::cerr << "[child] unknown app " << app_name << "\n";
    return 2;
  }
  dws::CoreTableShm shm(shm_name, cores, programs);
  dws::Config cfg;
  cfg.mode = mode;
  cfg.num_cores = cores;
  cfg.num_programs = programs;
  cfg.pin_threads = true;
  dws::rt::Scheduler sched(cfg, &shm.table());

  app->run(sched);  // warm-up + correctness
  if (const std::string err = app->verify(); !err.empty()) {
    std::cerr << "[" << app_name << "] verification failed: " << err << "\n";
    return 3;
  }

  dws::util::Stopwatch sw;
  for (int i = 0; i < reps; ++i) app->run(sched);
  const double mean_ms = sw.elapsed_ms() / reps;

  const auto stats = sched.stats();
  std::ostringstream line;
  line << "[pid " << ::getpid() << "] " << app_name << " (program "
       << sched.pid() << "): " << mean_ms << " ms/run over " << reps
       << " reps; steals " << stats.totals.steals << ", sleeps "
       << stats.totals.sleeps << ", claimed " << stats.cores_claimed
       << ", reclaimed " << stats.cores_reclaimed << ", evicted "
       << stats.totals.evictions << "\n";
  std::cout << line.str() << std::flush;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const auto apps_list = split_csv(args.get_str("apps", "FFT,Mergesort"));
  if (apps_list.empty()) {
    std::cerr << "--apps must name at least one Table-2 benchmark\n";
    return 1;
  }
  SchedMode mode = SchedMode::kDws;
  if (!parse_mode(args.get_str("mode", "DWS"), mode)) {
    std::cerr << "unknown --mode (CLASSIC|ABP|BWS|EP|DWS-NC|DWS)\n";
    return 1;
  }
  auto cores = static_cast<unsigned>(args.get_int("cores", 0));
  if (cores == 0) cores = util::hardware_cores();
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const std::string scale_name = args.get_str("scale", "small");
  const apps::Scale scale = scale_name == "tiny"    ? apps::Scale::kTiny
                            : scale_name == "medium" ? apps::Scale::kMedium
                                                     : apps::Scale::kSmall;
  const auto programs = static_cast<unsigned>(apps_list.size());
  const std::string shm_name = "/dws_corun_" + std::to_string(::getpid());

  std::cout << "co-running " << programs << " program(s) on " << cores
            << " cores under " << to_string(mode) << " (scale " << scale_name
            << ", " << reps << " reps each)" << std::endl;  // flush: children
                                                            // inherit stdio
                                                            // buffers at fork
  CoreTableShm::remove(shm_name);
  std::vector<pid_t> children;
  for (const std::string& name : apps_list) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::cerr << "fork failed: " << std::strerror(errno) << "\n";
      return 1;
    }
    if (pid == 0) {
      return child_main(shm_name, cores, programs, mode, name, scale, reps);
    }
    children.push_back(pid);
  }

  int failures = 0;
  for (pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
  }
  CoreTableShm::remove(shm_name);
  if (failures > 0) {
    std::cerr << failures << " program(s) failed\n";
    return 1;
  }
  std::cout << "all programs completed and verified\n";
  return 0;
}
