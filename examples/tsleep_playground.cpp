// Interactive-ish playground for the T_SLEEP threshold (§4.3): build a
// bursty workload, co-run two copies under DWS on the simulated machine,
// and print how the sleep/wake economy changes across thresholds —
// including the two failure regimes the paper describes (churn at tiny
// T_SLEEP, wasted cores at huge T_SLEEP).
//
//   $ ./tsleep_playground [--tsleep=0,1,2,4,8,16,64,256]
//                         [--burst-us=15000] [--wide-tasks=48]
#include <iostream>

#include "harness/report.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const auto sweep = args.get_int_list("tsleep", {0, 1, 2, 4, 8, 16, 64, 256});
  const double burst_us = args.get_double("burst-us", 15000.0);
  const auto wide = static_cast<std::uint32_t>(args.get_int("wide-tasks", 48));

  // Alternating narrow/wide phases: the workload whose demand swings are
  // exactly what T_SLEEP arbitrates.
  sim::TaskDag dag;
  sim::DagSpan prev{};
  for (int phase = 0; phase < 6; ++phase) {
    sim::DagSpan s = (phase % 2 == 0)
                         ? sim::emit_parallel_for(dag, 1, burst_us, 0.2)
                         : sim::emit_parallel_for(dag, wide, 800.0, 0.2);
    if (phase == 0) {
      dag.set_root(s.entry);
    } else {
      dag.set_continuation(prev.exit, s.entry);
    }
    prev = s;
  }
  if (const std::string err = dag.validate(); !err.empty()) {
    std::cerr << "bad DAG: " << err << "\n";
    return 1;
  }

  std::cout << "=== T_SLEEP playground: two copies of an alternating"
            << " narrow/wide program under DWS (16 simulated cores) ===\n\n";
  harness::Table table({"T_SLEEP", "mean ms/run", "sleeps", "wakes",
                        "claims", "reclaims", "evictions",
                        "steal overhead (ms)"});
  for (long t : sweep) {
    sim::SimParams params;
    params.t_sleep = static_cast<int>(t);
    sim::SimProgramSpec a;
    a.name = "a";
    a.mode = SchedMode::kDws;
    a.dag = &dag;
    a.target_runs = 3;
    a.default_mem_intensity = 0.2;
    // The co-runner is continuously busy, so cores released during a's
    // narrow bursts are actually usable — lending only pays when the
    // partner's demand is complementary, not in lockstep.
    static const sim::TaskDag steady =
        sim::make_iterative_phases(40, 128, 400.0, 0.2, 1.0);
    sim::SimProgramSpec b = a;
    b.name = "b";
    b.dag = &steady;
    sim::SimEngine engine(params, {a, b});
    const sim::SimResult r = engine.run();
    double mean = 0.0;
    std::uint64_t sleeps = 0, wakes = 0, claims = 0, reclaims = 0, evict = 0;
    double steal_ms = 0.0;
    for (const auto& p : r.programs) {
      mean += p.mean_run_time_us / 2000.0;  // two programs, us->ms
      sleeps += p.sleeps;
      wakes += p.wakes;
      claims += p.cores_claimed;
      reclaims += p.cores_reclaimed;
      evict += p.evictions;
      steal_ms += p.steal_overhead_us / 1000.0;
    }
    table.add_row({std::to_string(t), harness::Table::num(mean, 2),
                   std::to_string(sleeps), std::to_string(wakes),
                   std::to_string(claims), std::to_string(reclaims),
                   std::to_string(evict),
                   harness::Table::num(steal_ms, 1)});
  }
  table.print(std::cout);
  std::cout << "\nReading the columns (§4.3): tiny T_SLEEP => sleep/wake"
            << " churn (large sleeps+wakes); huge T_SLEEP => cores burn in"
            << " failed steals instead of being lent (steal overhead"
            << " grows, claims shrink).\n";
  return 0;
}
