// True multi-process co-running, as in the paper's deployment (§3.4):
// this binary fork()s one child per requested program; every process
// attaches to the same POSIX shared-memory core allocation table by name
// and runs its own DWS scheduler. The processes coordinate purely through
// the mmap()-ed table — no pipes, no sockets, no central daemon.
//
//   $ ./multiprocess_corun [--programs=2] [--cores=8] [--work=200000]
#include <sys/wait.h>
#include <unistd.h>

#include <iostream>
#include <string>
#include <vector>

#include "core/core_table_shm.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

std::int64_t spin(std::int64_t iters) {
  std::int64_t acc = 0;
  for (std::int64_t i = 0; i < iters; ++i) {
    acc += i ^ (acc >> 3);
    asm volatile("" : "+r"(acc));
  }
  return acc;
}

int child_main(const std::string& shm_name, unsigned cores, unsigned programs,
               long work_items) {
  dws::CoreTableShm shm(shm_name, cores, programs);
  dws::Config cfg;
  cfg.mode = dws::SchedMode::kDws;
  cfg.num_cores = cores;
  cfg.num_programs = programs;
  cfg.pin_threads = false;
  cfg.coordinator_period_ms = 2.0;
  dws::rt::Scheduler sched(cfg, &shm.table());

  dws::util::Stopwatch sw;
  dws::rt::parallel_for_each_index(sched, 0, work_items, 8,
                                   [](std::int64_t) { spin(200); });
  const auto stats = sched.stats();
  std::cout << "[pid " << ::getpid() << " / program " << sched.pid()
            << "] done in " << sw.elapsed_ms() << " ms; claimed "
            << stats.cores_claimed << ", reclaimed " << stats.cores_reclaimed
            << ", slept " << stats.totals.sleeps << " times\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const auto programs = static_cast<unsigned>(args.get_int("programs", 2));
  const auto cores = static_cast<unsigned>(args.get_int("cores", 8));
  const long work = args.get_int("work", 200000);
  const std::string shm_name =
      "/dws_example_" + std::to_string(::getpid());

  CoreTableShm::remove(shm_name);  // clear any leftover
  std::vector<pid_t> children;
  for (unsigned i = 0; i < programs; ++i) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      return child_main(shm_name, cores, programs, work);
    }
    children.push_back(pid);
  }
  int failures = 0;
  for (pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
  }
  CoreTableShm::remove(shm_name);
  if (failures > 0) {
    std::cerr << failures << " child program(s) failed\n";
    return 1;
  }
  std::cout << "all " << programs << " co-running processes completed; the"
            << " shared table coordinated " << cores << " cores with no"
            << " central allocator\n";
  return 0;
}
