// Building a custom workload for the simulator: define your own task DAG,
// co-run it against a Table-2 profile on the simulated 16-core machine,
// and compare scheduling modes.
//
//   $ ./custom_workload_sim [--mode=DWS] [--runs=3]
//
// The custom DAG here is a pipeline-ish shape: a long serial preamble
// (one task), then a wide fan-out, then a narrow tail — a program whose
// core demand swings hard, which is where demand-aware scheduling pays.
#include <iostream>

#include "apps/profiles.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const auto runs = static_cast<unsigned>(args.get_int("runs", 3));

  // ---- 1. Hand-build a DAG with the low-level API ----
  sim::TaskDag dag;
  const sim::NodeId preamble = dag.add_node(30000.0, /*mem_intensity=*/0.1);
  dag.set_root(preamble);
  // Wide middle: 64 independent tasks via the parallel-for builder.
  const sim::DagSpan wide = sim::emit_parallel_for(dag, 64, 900.0, 0.4);
  dag.set_continuation(preamble, wide.entry);
  // Narrow tail.
  const sim::DagSpan tail = sim::emit_parallel_for(dag, 4, 5000.0, 0.4);
  dag.set_continuation(wide.exit, tail.entry);
  if (const std::string err = dag.validate(); !err.empty()) {
    std::cerr << "invalid DAG: " << err << "\n";
    return 1;
  }
  std::cout << "custom DAG: " << dag.size() << " tasks, T1 = "
            << dag.total_work() / 1000.0 << " ms, Tinf = "
            << dag.critical_path() / 1000.0 << " ms, parallelism = "
            << dag.total_work() / dag.critical_path() << "\n\n";

  // ---- 2. Co-run it with a Table-2 profile under each mode ----
  const apps::SimAppProfile heat = apps::make_sim_profile("Heat");
  harness::Table table({"mode", "custom (ms/run)", "Heat (ms/run)",
                        "custom sleeps", "custom claims"});
  for (SchedMode mode : {SchedMode::kAbp, SchedMode::kEp, SchedMode::kDws}) {
    sim::SimParams params;  // the paper's 16-core machine
    sim::SimProgramSpec mine;
    mine.name = "custom";
    mine.mode = mode;
    mine.dag = &dag;
    mine.target_runs = runs;
    mine.default_mem_intensity = 0.3;
    sim::SimProgramSpec other;
    other.name = "Heat";
    other.mode = mode;
    other.dag = &heat.dag;
    other.target_runs = runs;
    other.default_mem_intensity = heat.mem_intensity;

    sim::SimEngine engine(params, {mine, other});
    const sim::SimResult r = engine.run();
    table.add_row(
        {to_string(mode),
         harness::Table::num(r.program("custom").mean_run_time_us / 1000.0, 2),
         harness::Table::num(r.program("Heat").mean_run_time_us / 1000.0, 2),
         std::to_string(r.program("custom").sleeps),
         std::to_string(r.program("custom").cores_claimed)});
  }
  table.print(std::cout);
  std::cout << "\nDuring the custom program's serial preamble its workers"
               " sleep and release their cores; Heat borrows them, and under"
               " DWS the coordinator takes them back for the wide phase —"
               " compare the mode rows above.\n";
  return 0;
}
