// dws_simulate — general simulator driver: compose any co-running scenario
// from the command line and run it on the simulated machine.
//
//   $ ./dws_simulate --programs=FFT:DWS,Mergesort:DWS [--cores=16] [--runs=3]
//               [--tsleep=-1] [--period-ms=10] [--adaptive]
//               [--sample-ms=0] [--trace] [--out=<dir>] [--scale=1.0]
//               [--fast-cores=N --fast-speed=1.4 --slow-speed=0.7]
//
// Program syntax: NAME[:MODE[:ws]] where NAME is a Table-2 benchmark,
// MODE one of CLASSIC|ABP|BWS|EP|DWS-NC|DWS (default DWS), and a
// trailing ":ws" runs that program under work-sharing.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "apps/profiles.hpp"
#include "harness/export.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"

namespace {

struct ProgramArg {
  std::string app;
  dws::SchedMode mode = dws::SchedMode::kDws;
  bool work_sharing = false;
};

bool parse_program(const std::string& token, ProgramArg& out) {
  std::stringstream ss(token);
  std::string part;
  int field = 0;
  while (std::getline(ss, part, ':')) {
    switch (field++) {
      case 0: out.app = part; break;
      case 1:
        if (!dws::parse_mode(part, out.mode)) return false;
        break;
      case 2:
        if (part != "ws") return false;
        out.work_sharing = true;
        break;
      default: return false;
    }
  }
  return field >= 1 && !out.app.empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);

  std::vector<ProgramArg> program_args;
  {
    std::stringstream ss(args.get_str("programs", "FFT:DWS,Mergesort:DWS"));
    std::string token;
    while (std::getline(ss, token, ',')) {
      ProgramArg p;
      if (!parse_program(token, p)) {
        std::cerr << "bad --programs entry '" << token
                  << "' (NAME[:MODE[:ws]])\n";
        return 1;
      }
      program_args.push_back(p);
    }
  }
  if (program_args.empty()) {
    std::cerr << "--programs must name at least one benchmark\n";
    return 1;
  }

  sim::SimParams params;
  params.num_cores = static_cast<unsigned>(args.get_int("cores", 16));
  params.num_sockets =
      static_cast<unsigned>(args.get_int("sockets", params.num_cores >= 8 ? 2 : 1));
  params.t_sleep = static_cast<int>(args.get_int("tsleep", -1));
  params.coordinator_period_us = 1000.0 * args.get_double("period-ms", 10.0);
  params.adaptive_t_sleep = args.get_bool("adaptive", false);
  const double sample_ms = args.get_double("sample-ms", 0.0);
  if (sample_ms > 0.0) params.timeline_sample_period_us = sample_ms * 1000.0;
  params.collect_trace = args.get_bool("trace", false);
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 0xD5EED));
  // Asymmetric machine: --fast-cores=8 --fast-speed=1.4 --slow-speed=0.7
  if (args.has("fast-cores")) {
    const auto fast = static_cast<unsigned>(args.get_int("fast-cores", 0));
    const double fast_speed = args.get_double("fast-speed", 1.4);
    const double slow_speed = args.get_double("slow-speed", 0.7);
    params.core_speeds.assign(params.num_cores, slow_speed);
    for (unsigned c = 0; c < fast && c < params.num_cores; ++c) {
      params.core_speeds[c] = fast_speed;
    }
  }

  const double scale = args.get_double("scale", 1.0);
  const auto runs = static_cast<unsigned>(args.get_int("runs", 3));

  // Profiles must outlive the engine.
  std::vector<apps::SimAppProfile> profiles;
  std::vector<sim::SimProgramSpec> specs;
  profiles.reserve(program_args.size());
  try {
    for (std::size_t i = 0; i < program_args.size(); ++i) {
      profiles.push_back(apps::make_sim_profile(program_args[i].app, scale));
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << " (Table-2 names: FFT PNN Cholesky LU GE Heat"
              << " SOR Mergesort)\n";
    return 1;
  }
  for (std::size_t i = 0; i < program_args.size(); ++i) {
    sim::SimProgramSpec s;
    s.name = profiles[i].name + "#" + std::to_string(i);
    s.mode = program_args[i].mode;
    s.dag = &profiles[i].dag;
    s.target_runs = runs;
    s.default_mem_intensity = profiles[i].mem_intensity;
    s.work_sharing = program_args[i].work_sharing;
    specs.push_back(s);
  }

  sim::SimEngine engine(params, specs);
  const sim::SimResult r = engine.run();

  std::cout << "simulated " << params.num_cores << " cores / "
            << params.num_sockets << " sockets; total virtual time "
            << harness::Table::num(r.total_time_us / 1000.0, 1) << " ms"
            << (r.hit_time_limit ? "  ** HIT TIME LIMIT **" : "") << "\n\n";
  harness::Table table({"program", "mode", "ms/run", "runs", "steals",
                        "sleeps", "wakes", "claims", "reclaims",
                        "cache penalty (ms)"});
  for (std::size_t i = 0; i < r.programs.size(); ++i) {
    const auto& p = r.programs[i];
    table.add_row(
        {p.name,
         std::string(to_string(program_args[i].mode)) +
             (program_args[i].work_sharing ? "+ws" : ""),
         harness::Table::num(p.mean_run_time_us / 1000.0, 2),
         std::to_string(p.run_times_us.size()), std::to_string(p.steals),
         std::to_string(p.sleeps), std::to_string(p.wakes),
         std::to_string(p.cores_claimed), std::to_string(p.cores_reclaimed),
         harness::Table::num(p.cache_penalty_us / 1000.0, 1)});
  }
  table.print(std::cout);

  if (args.has("out")) {
    const std::string dir = args.get_str("out");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (const std::string err = harness::export_result(dir, "dws_sim", r);
        !err.empty()) {
      std::cerr << "export failed: " << err << "\n";
      return 1;
    }
    std::cout << "\nexported CSVs to " << dir << "/dws_sim_*.csv\n";
    if (!r.trace.empty()) {
      std::ofstream trace_out(dir + "/dws_sim_trace.jsonl");
      sim::write_trace_jsonl(trace_out, r.trace);
      std::cout << "wrote " << r.trace.size() << " trace events to " << dir
                << "/dws_sim_trace.jsonl"
                << (r.trace_truncated ? " (truncated at capacity)" : "")
                << "\n";
    }
  }
  return r.hit_time_limit ? 2 : 0;
}
