// Compare all scheduling modes on the real pthread runtime for one
// Table-2 benchmark running solo on this host.
//
//   $ ./mode_comparison [--app=Mergesort] [--reps=3] [--scale=small]
//
// Solo on a dedicated machine, all modes should be close (§4.4) — the
// interesting columns are the steal/sleep statistics, which show how
// differently the modes get to the same answer.
#include <iostream>
#include <string>

#include "apps/app.hpp"
#include "harness/report.hpp"
#include "runtime/scheduler.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const std::string app_name = args.get_str("app", "Mergesort");
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const std::string scale_name = args.get_str("scale", "small");
  const apps::Scale scale = scale_name == "tiny"    ? apps::Scale::kTiny
                            : scale_name == "medium" ? apps::Scale::kMedium
                                                     : apps::Scale::kSmall;

  auto app = apps::make_app(app_name, scale);
  if (app == nullptr) {
    std::cerr << "unknown app '" << app_name << "' (use a Table-2 name)\n";
    return 1;
  }

  std::cout << "=== " << app_name << " (" << scale_name << ") under every"
            << " mode, solo on this host ===\n\n";
  harness::Table table({"mode", "ms/run", "verified", "steals",
                        "failed steals", "yields", "sleeps", "coord wakes"});
  for (SchedMode mode : {SchedMode::kClassic, SchedMode::kAbp, SchedMode::kEp,
                         SchedMode::kBws, SchedMode::kDwsNc, SchedMode::kDws}) {
    Config cfg;
    cfg.mode = mode;
    cfg.num_cores = 0;  // host width
    cfg.pin_threads = false;
    rt::Scheduler sched(cfg);

    app->run(sched);  // warm-up + correctness check
    const std::string verdict = app->verify();

    util::Stopwatch sw;
    for (int i = 0; i < reps; ++i) app->run(sched);
    const double ms = sw.elapsed_ms() / reps;

    const auto stats = sched.stats();
    table.add_row({to_string(mode), harness::Table::num(ms, 2),
                   verdict.empty() ? "yes" : ("NO: " + verdict),
                   std::to_string(stats.totals.steals),
                   std::to_string(stats.totals.failed_steals),
                   std::to_string(stats.totals.yields),
                   std::to_string(stats.totals.sleeps),
                   std::to_string(stats.coordinator_wakes)});
  }
  table.print(std::cout);
  return 0;
}
