// Co-running demo: two work-stealing programs (Scheduler instances)
// sharing one core allocation table inside a single process — the paper's
// multi-programmed scenario in miniature, with live table snapshots.
//
//   $ ./corun_demo [--cores=8] [--mode=DWS]
//
// Program A runs a bursty workload (alternating idle and wide phases);
// program B is continuously busy. Watch the core allocation change hands:
// during A's idle phases B borrows A's cores, and A reclaims them when
// its demand returns.
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "core/core_table.hpp"
#include "runtime/api.hpp"
#include "runtime/observer.hpp"
#include "runtime/scheduler.hpp"
#include "util/cli.hpp"

namespace {

std::int64_t spin(std::int64_t iters) {
  std::int64_t acc = 0;
  for (std::int64_t i = 0; i < iters; ++i) {
    acc += i ^ (acc >> 3);
    asm volatile("" : "+r"(acc));
  }
  return acc;
}

void print_table(const dws::CoreTable& table) {
  std::cout << "  core allocation: [";
  for (dws::CoreId c = 0; c < table.num_cores(); ++c) {
    const dws::ProgramId u = table.user_of(c);
    std::cout << (u == dws::kNoProgram ? '.' : static_cast<char>('0' + u));
  }
  std::cout << "]  (A=1, B=2, .=free)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const auto cores = static_cast<unsigned>(args.get_int("cores", 8));
  SchedMode mode = SchedMode::kDws;
  if (!parse_mode(args.get_str("mode", "DWS"), mode)) {
    std::cerr << "unknown --mode\n";
    return 1;
  }

  CoreTableLocal shared(cores, 2);
  Config cfg;
  cfg.mode = mode;
  cfg.num_cores = cores;
  cfg.num_programs = 2;
  cfg.pin_threads = false;
  cfg.coordinator_period_ms = 2.0;

  rt::Scheduler prog_a(cfg, &shared.table());
  rt::Scheduler prog_b(cfg, &shared.table());
  std::cout << "two programs on " << cores << " cores, mode "
            << to_string(mode) << "\n";
  print_table(shared.table());

  // Sample both schedulers while they co-run; optionally dumped as CSV.
  rt::Observer observer({&prog_a, &prog_b}, /*period_ms=*/2.0);
  observer.start();

  std::atomic<bool> stop_b{false};
  std::thread thread_b([&] {  // dws-lint-sanction: demo pins program B to its own OS thread to show co-running
    while (!stop_b.load(std::memory_order_acquire)) {
      rt::parallel_for_each_index(prog_b, 0, 20000, 1,
                                  [](std::int64_t) { spin(300); });
    }
  });

  for (int burst = 0; burst < 3; ++burst) {
    std::cout << "\n[A] idle phase " << burst << " — B may borrow A's cores\n";
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    print_table(shared.table());

    std::cout << "[A] burst phase " << burst
              << " — A's coordinator reclaims its cores\n";
    rt::parallel_for_each_index(prog_a, 0, 40000, 1,
                                [](std::int64_t) { spin(300); });
    print_table(shared.table());
  }

  stop_b.store(true, std::memory_order_release);
  thread_b.join();
  observer.stop();

  if (args.has("csv")) {
    const std::string path = args.get_str("csv", "corun_demo.csv");
    std::ofstream out(path);
    observer.write_csv(out);
    std::cout << "\nwrote " << observer.series(0).size()
              << " samples per program to " << path << "\n";
  }

  const auto stats_a = prog_a.stats();
  const auto stats_b = prog_b.stats();
  std::cout << "\nA: claimed " << stats_a.cores_claimed << ", reclaimed "
            << stats_a.cores_reclaimed << ", slept "
            << stats_a.totals.sleeps << " times\n"
            << "B: claimed " << stats_b.cores_claimed << ", reclaimed "
            << stats_b.cores_reclaimed << ", evicted "
            << stats_b.totals.evictions << " times\n";
  return 0;
}
