// Quickstart: create a DWS scheduler, run parallel work, read the stats.
//
//   $ ./quickstart
//
// A Scheduler is one "work-stealing program". With mode kDws its workers
// sleep when they cannot find work (releasing their cores for co-running
// programs) and a coordinator wakes them as the task backlog grows.
#include <atomic>
#include <cstdint>
#include <iostream>

#include "dws.hpp"  // the umbrella header: Config, Scheduler, parallel_*

namespace {

// A classic divide-and-conquer job: parallel fibonacci via TaskGroup.
std::uint64_t fib(dws::rt::Scheduler& sched, unsigned n) {
  if (n < 2) return n;
  std::uint64_t left = 0;
  dws::rt::TaskGroup group;
  sched.spawn(group, [&] { left = fib(sched, n - 1); });
  const std::uint64_t right = fib(sched, n - 2);
  sched.wait(group);
  return left + right;
}

}  // namespace

int main() {
  dws::Config cfg;
  cfg.mode = dws::SchedMode::kDws;  // the paper's scheduler
  cfg.num_cores = 0;                // 0 = one worker per host core
  cfg.pin_threads = false;

  dws::rt::Scheduler sched(cfg);
  std::cout << "scheduler up: " << sched.num_workers() << " workers, mode "
            << to_string(sched.mode()) << "\n";

  // 1. Structured fork-join with spawn/wait.
  std::uint64_t f = 0;
  sched.run([&] { f = fib(sched, 24); });
  std::cout << "fib(24) = " << f << "\n";

  // 2. Data parallelism with parallel_for / parallel_reduce.
  constexpr std::int64_t n = 1'000'000;
  const auto sum = dws::rt::parallel_reduce<std::int64_t>(
      sched, 0, n, 4096, 0,
      [](std::int64_t b, std::int64_t e) {
        std::int64_t s = 0;
        for (std::int64_t i = b; i < e; ++i) s += i % 7;
        return s;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  std::cout << "sum of i%7 over [0, 1e6) = " << sum << "\n";

  // 3. Runtime statistics: what the workers actually did.
  const auto stats = sched.stats();
  std::cout << "tasks executed: " << stats.totals.tasks_executed
            << ", steals: " << stats.totals.steals
            << ", failed steals: " << stats.totals.failed_steals
            << ", sleeps: " << stats.totals.sleeps
            << ", coordinator wakes: " << stats.coordinator_wakes << "\n";
  return 0;
}
