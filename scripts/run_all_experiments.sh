#!/usr/bin/env bash
# Regenerate every table and figure of the paper (plus the extension
# experiments) into results/, mirroring EXPERIMENTS.md.
#
#   scripts/run_all_experiments.sh [build-dir] [results-dir]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"

if [ ! -d "$BUILD/bench" ]; then
  echo "build directory '$BUILD' not found — run:" >&2
  echo "  cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
  exit 1
fi

run() {
  local name="$1"; shift
  echo "== $name"
  "$BUILD/bench/$name" "$@" | tee "$OUT/$name.txt"
  echo
}

run bench_table2_baselines
run bench_fig4_mixes
run bench_fig5_nc
run bench_fig6_tsleep
run bench_ablation_coordinator_period
run bench_ablation_ingredients
run bench_single_program_overhead
run bench_scalability_multiprog
run bench_bws_comparison
run bench_asymmetric
run bench_worksharing
run bench_cache_model
run bench_machine_width
run bench_fig4_confidence --seeds=5
run bench_adaptive_tsleep
run bench_blocked_linalg
run bench_timeline --out="$OUT"
run bench_deque --benchmark_min_time=0.1
run bench_spawn --benchmark_min_time=0.1

echo "all experiment outputs written to $OUT/"
