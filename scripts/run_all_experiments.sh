#!/usr/bin/env bash
# Regenerate every table and figure of the paper (plus the extension
# experiments) into results/, mirroring EXPERIMENTS.md.
#
#   scripts/run_all_experiments.sh [build-dir] [results-dir]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"

if [ ! -d "$BUILD/bench" ]; then
  echo "build directory '$BUILD' not found — run:" >&2
  echo "  cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
  exit 1
fi

BENCHES=(
  bench_table2_baselines bench_fig4_mixes bench_fig5_nc bench_fig6_tsleep
  bench_ablation_coordinator_period bench_ablation_ingredients
  bench_single_program_overhead bench_scalability_multiprog
  bench_bws_comparison bench_asymmetric bench_worksharing bench_cache_model
  bench_machine_width bench_fig4_confidence bench_adaptive_tsleep
  bench_blocked_linalg bench_timeline bench_deque bench_spawn
  bench_deadlock_overhead bench_false_sharing bench_locality
)

# Fail fast, before any figure is regenerated, if a bench binary is
# missing or predates a first-party source — a stale build silently
# produces tables that do not match the checked-out code. Rebuild, or
# set DWS_SKIP_CHECKS=1 to run anyway (e.g. sources touched only by
# formatting).
if [ "${DWS_SKIP_CHECKS:-0}" != "1" ]; then
  missing=()
  stale=()
  for name in "${BENCHES[@]}"; do
    bin="$BUILD/bench/$name"
    if [ ! -x "$bin" ]; then
      missing+=("$name")
    elif [ -n "$(find src bench \( -name '*.cpp' -o -name '*.hpp' \) \
                   -newer "$bin" -print -quit 2>/dev/null)" ]; then
      stale+=("$name")
    fi
  done
  if [ "${#missing[@]}" -gt 0 ] || [ "${#stale[@]}" -gt 0 ]; then
    [ "${#missing[@]}" -gt 0 ] && echo "missing bench binaries: ${missing[*]}" >&2
    [ "${#stale[@]}" -gt 0 ] && echo "stale bench binaries (older than sources): ${stale[*]}" >&2
    echo "rebuild first: cmake --build $BUILD -j  (or DWS_SKIP_CHECKS=1 to override)" >&2
    exit 1
  fi

  # Preflight the correctness suites so every regenerated figure is
  # backed by a passing check/crash/race run; record which labels the
  # build actually provides (race and race-fasttrack are absent under
  # -DDWS_RACE=OFF).
  LABELS_RUN=()
  LABELS_EMPTY=()
  for label in check crash race race-fasttrack race-deadlock locality; do
    n=$(ctest --test-dir "$BUILD" -N -L "$label" 2>/dev/null \
          | sed -n 's/^Total Tests: //p')
    if [ "${n:-0}" -gt 0 ]; then
      echo "== ctest -L $label ($n tests)"
      ctest --test-dir "$BUILD" -L "$label" --output-on-failure
      LABELS_RUN+=("$label")
    else
      LABELS_EMPTY+=("$label")
    fi
  done
fi

run() {
  local name="$1"; shift
  echo "== $name"
  "$BUILD/bench/$name" "$@" | tee "$OUT/$name.txt"
  echo
}

run bench_table2_baselines
run bench_fig4_mixes
run bench_fig5_nc
run bench_fig6_tsleep
run bench_ablation_coordinator_period
run bench_ablation_ingredients
run bench_single_program_overhead
run bench_scalability_multiprog
run bench_bws_comparison
run bench_asymmetric
run bench_worksharing
run bench_cache_model
run bench_machine_width
run bench_fig4_confidence --seeds=5
run bench_adaptive_tsleep
run bench_blocked_linalg
run bench_timeline --out="$OUT"
run bench_deque --benchmark_min_time=0.1
run bench_spawn --out="$OUT/BENCH_spawn_steal.json"
run bench_deadlock_overhead --out="$OUT/BENCH_deadlock_overhead.json"
run bench_false_sharing --out="$OUT/BENCH_false_sharing.json"
run bench_locality --out="$OUT/BENCH_locality.json"

# Layout audit: regenerate the cache-line map of every concurrent struct
# and diff it against the committed golden — an unreviewed layout change
# fails the whole experiment run before any figure is trusted.
LAYOUT_AUDIT="$BUILD/tools/layout_audit/layout_audit"
if [ -x "$LAYOUT_AUDIT" ]; then
  echo "== layout_audit"
  "$LAYOUT_AUDIT" --out "$OUT/layout_audit.json" --golden docs/layout_golden.json
  echo
else
  echo "missing $LAYOUT_AUDIT — rebuild first" >&2
  exit 1
fi

# Guardrail-artifact schema validation: BENCH_*.json files are consumed
# by the perf-guardrail CI job and by cross-PR comparisons, so a bench
# that silently changes its output shape corrupts every downstream
# reader. Fail fast here, at generation time, instead.
#
# Shared schema: top-level `bench` (string), `reps`, `tolerance`,
# `pass` (bool), `legs` (array); every leg carries `workload` plus at
# least one metric object with `mean`, `cv` and `n`; a leg declaring a
# `bound` must also record `within_bound`.
validate_bench_schema() {
  local py
  py=$(command -v python3 || command -v python || true)
  if [ -z "$py" ]; then
    echo "WARNING: python3 not found — BENCH_*.json schema not validated" >&2
    return 0
  fi
  "$py" - "$@" <<'PYEOF'
import json, sys

def err(path, msg):
    print(f"BENCH schema drift in {path}: {msg}", file=sys.stderr)
    return 1

def is_metric(v):
    return isinstance(v, dict) and {"mean", "cv", "n"} <= v.keys()

failures = 0
for path in sys.argv[1:]:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        failures += err(path, f"unreadable or invalid JSON ({e})")
        continue
    for key, typ in (("bench", str), ("reps", (int, float)),
                     ("tolerance", (int, float)), ("pass", bool),
                     ("legs", list)):
        if not isinstance(doc.get(key), typ):
            failures += err(path, f"missing or mistyped top-level '{key}'")
    for i, leg in enumerate(doc.get("legs") or []):
        if not isinstance(leg, dict):
            failures += err(path, f"legs[{i}] is not an object")
            continue
        if not isinstance(leg.get("workload"), str):
            failures += err(path, f"legs[{i}] missing 'workload'")
        if not any(is_metric(v) for v in leg.values()):
            failures += err(
                path, f"legs[{i}] has no metric object with mean/cv/n")
        if "bound" in leg and "within_bound" not in leg:
            failures += err(
                path, f"legs[{i}] declares 'bound' without 'within_bound'")
sys.exit(1 if failures else 0)
PYEOF
}

shopt -s nullglob
BENCH_ARTIFACTS=("$OUT"/BENCH_*.json)
shopt -u nullglob
if [ "${#BENCH_ARTIFACTS[@]}" -gt 0 ]; then
  echo "== validating ${#BENCH_ARTIFACTS[@]} BENCH_*.json artifact(s)"
  validate_bench_schema "${BENCH_ARTIFACTS[@]}"
  echo "   schema ok"
else
  echo "WARNING: no BENCH_*.json artifacts found in $OUT/" >&2
fi

# Layout-audit schema validation: layout_audit.json is consumed by the
# CI layout gate and by humans reviewing golden diffs; same fail-fast
# policy as the bench artifacts.
validate_layout_schema() {
  local py
  py=$(command -v python3 || command -v python || true)
  if [ -z "$py" ]; then
    echo "WARNING: python3 not found — layout_audit.json schema not validated" >&2
    return 0
  fi
  "$py" - "$1" <<'PYEOF'
import json, sys

path = sys.argv[1]
failures = 0
def err(msg):
    global failures
    print(f"layout-audit schema drift in {path}: {msg}", file=sys.stderr)
    failures += 1

try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    err(f"unreadable or invalid JSON ({e})")
    sys.exit(1)

if doc.get("schema") != "dws-layout-audit-v1":
    err("missing or unknown top-level 'schema'")
for key in ("cache_line_bytes", "pointer_bytes"):
    if not isinstance(doc.get(key), int):
        err(f"missing or mistyped top-level '{key}'")
structs = doc.get("structs")
if not isinstance(structs, list) or not structs:
    err("missing or empty 'structs'")
    structs = []
for i, s in enumerate(structs):
    for key, typ in (("name", str), ("size", int), ("align", int),
                     ("cache_lines", int), ("packed_ok", bool),
                     ("fields", list), ("conflicts", list)):
        if not isinstance(s.get(key), typ):
            err(f"structs[{i}] missing or mistyped '{key}'")
    for j, f in enumerate(s.get("fields") or []):
        for key in ("name", "offset", "size", "align", "lines", "domain"):
            if key not in f:
                err(f"structs[{i}].fields[{j}] missing '{key}'")
sys.exit(1 if failures else 0)
PYEOF
}
echo "== validating layout_audit.json schema"
validate_layout_schema "$OUT/layout_audit.json"
echo "   schema ok"

# The guardrail artifacts double as the repo's committed reference
# numbers (BENCH_*.json at the repo root): refresh them from this run so
# the committed copies always describe the code that produced them.
for artifact in "${BENCH_ARTIFACTS[@]}"; do
  cp "$artifact" "$(basename "$artifact")"
done
echo "refreshed $(ls BENCH_*.json 2>/dev/null | tr '\n' ' ')at the repo root"

echo "all experiment outputs written to $OUT/"
if [ "${DWS_SKIP_CHECKS:-0}" != "1" ]; then
  echo "ctest labels exercised: ${LABELS_RUN[*]:-none}"
  [ "${#LABELS_EMPTY[@]}" -gt 0 ] \
    && echo "ctest labels with no tests in this build: ${LABELS_EMPTY[*]}"
fi
