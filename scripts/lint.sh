#!/usr/bin/env bash
# Static lint passes over the first-party sources, then clang-tidy using
# the profile in .clang-tidy (which needs a compile database: configure
# with cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).
#
# Two layers:
#   1. regex passes (always run, no toolchain needed) — the portable
#      floor for the concurrency discipline;
#   2. clang-tidy with the dws_tidy_checks plugin (tools/tidy) when both
#      are available — AST-accurate versions of the same rules that see
#      through typedefs, macros and doc comments, plus the
#      annotation-coverage audit regexes cannot express.
#
# A missing clang-tidy (it is not part of the pinned toolchain image) is
# reported as an explicit SKIP line in the summary — distinguishable
# from a green run — and DWS_REQUIRE_TIDY=1 turns it into a failure;
# DWS_REQUIRE_TIDY_PLUGIN=1 additionally fails when the dws-* plugin is
# unavailable (CI's static-analysis job sets both).
#
# Suppressions: a `// dws-lint-sanction: <justification>` comment on the
# flagged line silences both layers for that line; the justification is
# mandatory and must be at least three words (enforced below).
#
# Every pass runs even after an earlier one fails; the summary at the
# end prints one line per check so CI logs show exactly WHICH pass
# failed, and the script exits non-zero if any did.
set -uo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

CHECK_NAMES=()
CHECK_RESULTS=()

# note <name> <failure-output>: empty output records a pass; otherwise
# the output is printed immediately and the check is marked FAIL.
note() {
  CHECK_NAMES+=("$1")
  if [ -n "$2" ]; then
    CHECK_RESULTS+=("FAIL")
    echo "lint: $1: FAIL"
    echo "$2"
  else
    CHECK_RESULTS+=("ok")
  fi
}

# note_skip <name> <reason>: the check did not run — visible in the
# summary as SKIP, never silently conflated with a pass.
note_skip() {
  CHECK_NAMES+=("$1")
  CHECK_RESULTS+=("SKIP")
  echo "lint: $1: SKIP ($2)"
}

# Drops lines carrying a sanction comment (the justification is policed
# by the sanction-format pass below, so an empty one cannot hide here).
strip_sanctioned() {
  grep -v 'dws-lint-sanction:[[:space:]]*[^[:space:]]' || true
}

# Crash-safety lint: raw ::kill() is sanctioned in exactly two places —
# the liveness probe that confirms a stale co-runner is dead
# (core/coordinator_policy.cpp) and the fault-injection harness
# (harness/faults.cpp). Anywhere else — including tests, benches and
# examples, which must inject faults through src/harness/faults — it is
# scaffolding leaking out of the harness.
BAD_KILL=$(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' 'tests/*.cpp' \
  'bench/*.cpp' 'examples/*.cpp' \
  | grep -v -e 'core/coordinator_policy.cpp' -e 'harness/faults.cpp' \
  | xargs grep -n '::kill(' 2>/dev/null | strip_sanctioned)
if [ -n "${BAD_KILL}" ]; then
  BAD_KILL="::kill() outside its sanctioned call sites:
${BAD_KILL}"
fi
note "kill-sites" "${BAD_KILL}"

# Thread-creation lint: spawning OS threads is the scheduler's job. Raw
# std::thread / pthread_create is sanctioned under src/runtime/ (the
# worker pool), src/harness/ (co-runner processes), src/check/ (the
# model-checking harness's controlled threads) and tests/ (which
# exercise the concurrent structures directly). Bench and example code
# goes through the scheduler; the few deliberate exceptions carry
# per-line sanction comments. Kernels and policy code that start their
# own threads bypass the work-stealing model — and the race detector's
# serial replay cannot see them.
# (std::thread::hardware_concurrency is a core count query, not a spawn.)
BAD_THREADS=$(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' 'tests/*.cpp' \
  'bench/*.cpp' 'examples/*.cpp' \
  | grep -v -e '^src/runtime/' -e '^src/harness/' -e '^src/check/' \
            -e '^tests/' \
  | xargs grep -n -E 'std::thread|pthread_create' 2>/dev/null \
  | grep -v 'std::thread::hardware_concurrency' | strip_sanctioned)
if [ -n "${BAD_THREADS}" ]; then
  BAD_THREADS="raw thread creation outside src/runtime|harness|check or tests/:
${BAD_THREADS}"
fi
note "raw-threads" "${BAD_THREADS}"

# Lock-annotation lint: the race detector models locks only through
# race::lock_acquire/lock_release, so a raw std::mutex guard in kernel
# or policy code is invisible to ALL-SETS — a locked critical section
# would still be reported as a race (false positive) or, worse, the
# author assumes the replay certificate covers it (it does not).
# Sanctioned: src/runtime (race::scoped_lock itself and the worker
# pool's internals), src/util, src/harness and src/check (not replayed
# under the detector), src/race (the detectors' own shard/interning
# synchronization — a detector cannot annotate its own locks),
# src/apps/dag_replay.cpp (the replayer's bookkeeping mutex is
# deliberately unannotated so it adds no edges to the modeled
# happens-before relation; see the comment in exec_node), and tests/
# (which pin raw-guard interactions on purpose). Everywhere else, take
# locks through dws::race::scoped_lock, which locks AND annotates.
BAD_LOCKS=$(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' 'tests/*.cpp' \
  'bench/*.cpp' 'examples/*.cpp' \
  | grep -v -e '^src/runtime/' -e '^src/util/' -e '^src/harness/' \
            -e '^src/check/' -e '^src/race/' -e '^src/apps/dag_replay' \
            -e '^tests/' \
  | xargs grep -n -E 'std::(lock_guard|unique_lock|scoped_lock)[[:space:]]*<|\.lock\(\)|\.unlock\(\)' \
  2>/dev/null | grep -v 'race::scoped_lock' | strip_sanctioned)
if [ -n "${BAD_LOCKS}" ]; then
  BAD_LOCKS="raw mutex guard outside src/runtime|util|harness|check|race or tests/ (use dws::race::scoped_lock so ALL-SETS sees the lock):
${BAD_LOCKS}"
fi
note "raw-mutex-guards" "${BAD_LOCKS}"

# Strictness lint, static half (the runtime half lives in
# runtime/strict.hpp): a heap- or static-storage TaskGroup out-lives its
# creating scope, which breaks the fully-strict join model the scheduler
# assumes. Tests are exempt — they construct escaping groups on purpose
# to exercise the runtime validator.
BAD_GROUPS=$(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
  'examples/*.cpp' 'bench/*.cpp' \
  | xargs grep -n -E 'new[[:space:]]+[A-Za-z:_<>, ]*TaskGroup|static[[:space:]]+[A-Za-z:_<>, ]*TaskGroup' \
  2>/dev/null | strip_sanctioned)
if [ -n "${BAD_GROUPS}" ]; then
  BAD_GROUPS="TaskGroup with non-automatic storage (escapes its scope):
${BAD_GROUPS}"
fi
note "taskgroup-storage" "${BAD_GROUPS}"

# Acquisition-order lint, the static half of deadlock analysis (the
# dynamic half is the lock-order graph, src/race/lockgraph): every
# race::scoped_lock site in src/ must declare its lock's order class on
# the same line with a `// lock-order: CLASS` tag, optionally declaring
# nesting as `CLASS after OUTER[,OUTER2...]`. scripts/lock_order.txt
# registers all classes in canonical outermost-first acquisition order;
# every declared `after` edge must be consistent with that order (the
# registry is the topological order, so a back edge IS an inversion) —
# caught here at review time, before any run. (Tests are excluded: the
# race suites construct inversions on purpose to exercise the dynamic
# detector.)
LOCK_ORDER_REGISTRY="scripts/lock_order.txt"
ORDER_FAIL=""
if [ ! -f "${LOCK_ORDER_REGISTRY}" ]; then
  ORDER_FAIL="missing ${LOCK_ORDER_REGISTRY}"
else
  mapfile -t ORDER_CLASSES < <(grep -v -e '^[[:space:]]*#' \
    -e '^[[:space:]]*$' "${LOCK_ORDER_REGISTRY}" \
    | sed -e 's/^[[:space:]]*//' -e 's/[[:space:]]*$//')
  DUP_CLASSES=$(printf '%s\n' "${ORDER_CLASSES[@]}" | sort | uniq -d)
  if [ -n "${DUP_CLASSES}" ]; then
    ORDER_FAIL+="duplicate class(es) in ${LOCK_ORDER_REGISTRY}: ${DUP_CLASSES}"$'\n'
  fi
  # Registry index of a class, or -1 (lower index = acquired earlier).
  class_index() {
    local i
    for i in "${!ORDER_CLASSES[@]}"; do
      if [ "${ORDER_CLASSES[$i]}" = "$1" ]; then
        echo "$i"
        return
      fi
    done
    echo "-1"
  }
  while IFS= read -r site; do
    [ -z "${site}" ] && continue
    file="${site%%:*}"
    rest="${site#*:}"
    lineno="${rest%%:*}"
    text="${rest#*:}"
    stripped="${text#"${text%%[![:space:]]*}"}"
    case "${stripped}" in
      //*|\**) continue ;;  # doc-comment examples are not call sites
    esac
    if [[ "${text}" != *"// lock-order:"* ]]; then
      ORDER_FAIL+="${file}:${lineno}: race::scoped_lock site without a '// lock-order: <class>' tag"$'\n'
      continue
    fi
    tag="${text#*// lock-order:}"
    tag="${tag#"${tag%%[![:space:]]*}"}"
    read -r cls keyword outers _ <<<"${tag}" || true
    cidx=$(class_index "${cls}")
    if [ "${cidx}" -lt 0 ]; then
      ORDER_FAIL+="${file}:${lineno}: class '${cls}' is not registered in ${LOCK_ORDER_REGISTRY}"$'\n'
      continue
    fi
    if [ -n "${keyword:-}" ]; then
      if [ "${keyword}" != "after" ] || [ -z "${outers:-}" ]; then
        ORDER_FAIL+="${file}:${lineno}: malformed tag '// lock-order: ${tag}' (want 'CLASS' or 'CLASS after OUTER[,OUTER2]')"$'\n'
        continue
      fi
      IFS=',' read -ra OUTER_LIST <<<"${outers}"
      for outer in "${OUTER_LIST[@]}"; do
        outer="${outer//[[:space:]]/}"
        oidx=$(class_index "${outer}")
        if [ "${oidx}" -lt 0 ]; then
          ORDER_FAIL+="${file}:${lineno}: 'after ${outer}' names an unregistered class"$'\n'
        elif [ "${oidx}" -ge "${cidx}" ]; then
          ORDER_FAIL+="${file}:${lineno}: acquisition-order inversion: '${cls}' taken while holding '${outer}', but ${LOCK_ORDER_REGISTRY} orders '${outer}' at or below '${cls}'"$'\n'
        fi
      done
    fi
  done < <(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
    | xargs grep -n 'race::scoped_lock<' 2>/dev/null | strip_sanctioned)
fi
note "lock-order" "${ORDER_FAIL}"

# Sanction-format lint: a sanction is an auditable waiver, so the
# justification must say something — at least three words. (An empty
# justification already fails to suppress anything; this pass rejects
# it loudly instead of letting a useless comment linger.)
SANCTION_FAIL=""
while IFS= read -r entry; do
  [ -z "${entry}" ] && continue
  just="${entry#*dws-lint-sanction:}"
  words=$(echo "${just}" | wc -w)
  if [ "${words}" -lt 3 ]; then
    SANCTION_FAIL+="${entry}"$'\n'
  fi
done < <(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' 'tests/*.cpp' \
  'bench/*.cpp' 'examples/*.cpp' \
  | xargs grep -n 'dws-lint-sanction:' 2>/dev/null || true)
if [ -n "${SANCTION_FAIL}" ]; then
  SANCTION_FAIL="dws-lint-sanction with a justification under three words (say why, auditable later):
${SANCTION_FAIL}"
fi
note "sanction-format" "${SANCTION_FAIL}"

summarize_and_maybe_exit() {
  local failed=""
  local i
  echo "lint: summary:"
  for i in "${!CHECK_NAMES[@]}"; do
    echo "lint:   ${CHECK_NAMES[$i]}: ${CHECK_RESULTS[$i]}"
    if [ "${CHECK_RESULTS[$i]}" = "FAIL" ]; then
      failed+=" ${CHECK_NAMES[$i]}"
    fi
  done
  if [ -n "${failed}" ]; then
    echo "lint: FAILED:${failed}"
    exit 1
  fi
}

# ---------------------------------------------------------------- tidy
TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${TIDY_BIN}" >/dev/null 2>&1; then
  if [ "${DWS_REQUIRE_TIDY:-0}" = "1" ]; then
    note "clang-tidy" "clang-tidy not installed but DWS_REQUIRE_TIDY=1 (install clang-tidy or unset the requirement)"
  else
    note_skip "clang-tidy" "not installed; AST checks skipped — regex passes above are the only line of defense"
  fi
  if [ "${DWS_REQUIRE_TIDY_PLUGIN:-0}" = "1" ]; then
    note "dws-plugin" "DWS_REQUIRE_TIDY_PLUGIN=1 but clang-tidy is not installed"
  fi
  summarize_and_maybe_exit
  exit 0
fi

echo "lint: using $(command -v "${TIDY_BIN}"): $("${TIDY_BIN}" --version | grep -i 'version' | head -1 | sed 's/^[[:space:]]*//')"

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "lint: ${BUILD_DIR}/compile_commands.json missing; configuring..."
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# The dws-* plugin: explicit override, else the conventional build path.
PLUGIN="${DWS_TIDY_PLUGIN:-}"
if [ -z "${PLUGIN}" ]; then
  for cand in "${BUILD_DIR}/tools/tidy/libdws_tidy_checks.so" \
              "${BUILD_DIR}/tools/tidy/libdws_tidy_checks.dylib"; do
    if [ -f "${cand}" ]; then
      PLUGIN="${cand}"
      break
    fi
  done
fi
PLUGIN_ACTIVE=0
if [ -n "${PLUGIN}" ]; then
  # Smoke-load before trusting it: a plugin built against a different
  # LLVM major fails at dlopen, and we want that visible, not fatal.
  if "${TIDY_BIN}" -load="${PLUGIN}" --checks='-*,dws-*' --list-checks \
      2>/dev/null | grep -q 'dws-raw-sync'; then
    PLUGIN_ACTIVE=1
    echo "lint: dws plugin loaded: ${PLUGIN}"
  else
    echo "lint: dws plugin at ${PLUGIN} failed to load into ${TIDY_BIN} (LLVM version mismatch?)"
    PLUGIN=""
  fi
fi
if [ "${PLUGIN_ACTIVE}" = "1" ]; then
  note "dws-plugin" ""
elif [ "${DWS_REQUIRE_TIDY_PLUGIN:-0}" = "1" ]; then
  note "dws-plugin" "DWS_REQUIRE_TIDY_PLUGIN=1 but the dws_tidy_checks plugin is unavailable (build with -DDWS_BUILD_TIDY=ON and LLVM/Clang dev headers, or set DWS_TIDY_PLUGIN=...)"
else
  note_skip "dws-plugin" "plugin not built; dws-* AST checks skipped — regex passes above are the only discipline enforcement"
fi

# First-party translation units only (the compile database also covers
# vendored/test-framework TUs we do not want to lint).
mapfile -t FILES < <(git ls-files 'src/**/*.cpp' 'tests/*.cpp' \
  'bench/*.cpp' 'examples/*.cpp')

TIDY_FAIL=""
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "lint: no source files found"
else
  echo "lint: clang-tidy over ${#FILES[@]} files (${JOBS} jobs)"
  TIDY_LOG=$(mktemp)
  if [ "${PLUGIN_ACTIVE}" = "1" ]; then
    # run-clang-tidy predates -load on several supported majors; the
    # xargs path forwards it everywhere.
    printf '%s\n' "${FILES[@]}" \
      | xargs -P "${JOBS}" -n 1 "${TIDY_BIN}" -load="${PLUGIN}" \
          -p "${BUILD_DIR}" --quiet 2>&1 | tee "${TIDY_LOG}" || true
  elif command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${BUILD_DIR}" -j "${JOBS}" -quiet "${FILES[@]}" \
      2>&1 | tee "${TIDY_LOG}" || true
  else
    printf '%s\n' "${FILES[@]}" \
      | xargs -P "${JOBS}" -n 1 "${TIDY_BIN}" -p "${BUILD_DIR}" --quiet \
      2>&1 | tee "${TIDY_LOG}" || true
  fi
  # Hard failures: clang-tidy errors (including dws-* findings promoted
  # by WarningsAsErrors) and any dws-* diagnostic however classified.
  if grep -qE ': error: |\[dws-[a-z-]+\]' "${TIDY_LOG}"; then
    TIDY_FAIL="clang-tidy reported findings (see above)"
  fi
  rm -f "${TIDY_LOG}"
fi
note "clang-tidy" "${TIDY_FAIL}"

summarize_and_maybe_exit
echo "lint: clean"
