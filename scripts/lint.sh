#!/usr/bin/env bash
# Run clang-tidy over the first-party sources using the profile in
# .clang-tidy. Needs a compile database: configure with
#   cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
# Exits 0 with a notice when clang-tidy is not installed (it is not part
# of the pinned toolchain image), so `scripts/lint.sh` is safe to call
# unconditionally from CI and pre-commit hooks.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

# Crash-safety lint (no toolchain needed, always runs): raw ::kill() is
# sanctioned in exactly two places — the liveness probe that confirms a
# stale co-runner is dead (core/coordinator_policy.cpp) and the
# fault-injection harness (harness/faults.cpp). Anywhere else it is test
# scaffolding leaking into production code.
BAD_KILL=$(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
  | grep -v -e 'core/coordinator_policy.cpp' -e 'harness/faults.cpp' \
  | xargs grep -l '::kill(' 2>/dev/null || true)
if [ -n "${BAD_KILL}" ]; then
  echo "lint: ::kill() outside its sanctioned call sites:"
  echo "${BAD_KILL}"
  exit 1
fi

# Thread-creation lint: spawning OS threads is the scheduler's job. Raw
# std::thread / pthread_create is sanctioned only under src/runtime/ (the
# worker pool), src/harness/ (co-runner processes) and src/check/ (the
# model-checking harness's controlled threads). Kernels and policy code
# that start their own threads bypass the work-stealing model — and the
# race detector's serial replay cannot see them.
# (std::thread::hardware_concurrency is a core count query, not a spawn.)
BAD_THREADS=$(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
  | grep -v -e '^src/runtime/' -e '^src/harness/' -e '^src/check/' \
  | xargs grep -n -E 'std::thread|pthread_create' 2>/dev/null \
  | grep -v 'std::thread::hardware_concurrency' || true)
if [ -n "${BAD_THREADS}" ]; then
  echo "lint: raw thread creation outside src/runtime|harness|check:"
  echo "${BAD_THREADS}"
  exit 1
fi

# Lock-annotation lint: the race detector models locks only through
# race::lock_acquire/lock_release, so a raw std::mutex guard in kernel
# or policy code is invisible to ALL-SETS — a locked critical section
# would still be reported as a race (false positive) or, worse, the
# author assumes the replay certificate covers it (it does not).
# Sanctioned: src/runtime (race::scoped_lock itself and the worker
# pool's internals), src/util, src/harness and src/check (not replayed
# under the detector), src/race (the detectors' own shard/interning
# synchronization — a detector cannot annotate its own locks), and
# src/apps/dag_replay.cpp (the replayer's bookkeeping mutex is
# deliberately unannotated so it adds no edges to the modeled
# happens-before relation; see the comment in exec_node). Everywhere
# else, take locks through dws::race::scoped_lock, which locks AND
# annotates.
BAD_LOCKS=$(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
  | grep -v -e '^src/runtime/' -e '^src/util/' -e '^src/harness/' \
            -e '^src/check/' -e '^src/race/' -e '^src/apps/dag_replay' \
  | xargs grep -n -E 'std::(lock_guard|unique_lock|scoped_lock)[[:space:]]*<|\.lock\(\)|\.unlock\(\)' \
  2>/dev/null | grep -v 'race::scoped_lock' || true)
if [ -n "${BAD_LOCKS}" ]; then
  echo "lint: raw mutex guard outside src/runtime|util|harness|check|race" \
       "(use dws::race::scoped_lock so ALL-SETS sees the lock):"
  echo "${BAD_LOCKS}"
  exit 1
fi

# Strictness lint, static half (the runtime half lives in
# runtime/strict.hpp): a heap- or static-storage TaskGroup out-lives its
# creating scope, which breaks the fully-strict join model the scheduler
# assumes. Tests are exempt — they construct escaping groups on purpose
# to exercise the runtime validator.
BAD_GROUPS=$(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
  'examples/*.cpp' 'bench/*.cpp' \
  | xargs grep -n -E 'new[[:space:]]+[A-Za-z:_<>, ]*TaskGroup|static[[:space:]]+[A-Za-z:_<>, ]*TaskGroup' \
  2>/dev/null || true)
if [ -n "${BAD_GROUPS}" ]; then
  echo "lint: TaskGroup with non-automatic storage (escapes its scope):"
  echo "${BAD_GROUPS}"
  exit 1
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found; skipping (install clang-tidy to lint)"
  exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "lint: ${BUILD_DIR}/compile_commands.json missing; configuring..."
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# First-party translation units only (the compile database also covers
# vendored/test-framework TUs we do not want to lint).
mapfile -t FILES < <(git ls-files 'src/**/*.cpp' 'tests/*.cpp' \
  'bench/*.cpp' 'examples/*.cpp')

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "lint: no source files found"
  exit 0
fi

echo "lint: clang-tidy over ${#FILES[@]} files (${JOBS} jobs)"
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "${BUILD_DIR}" -j "${JOBS}" -quiet "${FILES[@]}"
else
  printf '%s\n' "${FILES[@]}" \
    | xargs -P "${JOBS}" -n 1 clang-tidy -p "${BUILD_DIR}" --quiet
fi
echo "lint: clean"
