#!/usr/bin/env bash
# Static lint passes over the first-party sources, then clang-tidy using
# the profile in .clang-tidy (which needs a compile database: configure
# with cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON; exits 0
# with a notice when clang-tidy is not installed — it is not part of the
# pinned toolchain image — so the script is safe to call unconditionally
# from CI and pre-commit hooks).
#
# Every pass runs even after an earlier one fails; the summary at the
# end prints one line per check so CI logs show exactly WHICH pass
# failed, and the script exits non-zero if any did.
set -uo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

CHECK_NAMES=()
CHECK_RESULTS=()

# note <name> <failure-output>: empty output records a pass; otherwise
# the output is printed immediately and the check is marked FAIL.
note() {
  CHECK_NAMES+=("$1")
  if [ -n "$2" ]; then
    CHECK_RESULTS+=("FAIL")
    echo "lint: $1: FAIL"
    echo "$2"
  else
    CHECK_RESULTS+=("ok")
  fi
}

# Crash-safety lint: raw ::kill() is sanctioned in exactly two places —
# the liveness probe that confirms a stale co-runner is dead
# (core/coordinator_policy.cpp) and the fault-injection harness
# (harness/faults.cpp). Anywhere else it is test scaffolding leaking
# into production code.
BAD_KILL=$(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
  | grep -v -e 'core/coordinator_policy.cpp' -e 'harness/faults.cpp' \
  | xargs grep -l '::kill(' 2>/dev/null || true)
if [ -n "${BAD_KILL}" ]; then
  BAD_KILL="::kill() outside its sanctioned call sites:
${BAD_KILL}"
fi
note "kill-sites" "${BAD_KILL}"

# Thread-creation lint: spawning OS threads is the scheduler's job. Raw
# std::thread / pthread_create is sanctioned only under src/runtime/ (the
# worker pool), src/harness/ (co-runner processes) and src/check/ (the
# model-checking harness's controlled threads). Kernels and policy code
# that start their own threads bypass the work-stealing model — and the
# race detector's serial replay cannot see them.
# (std::thread::hardware_concurrency is a core count query, not a spawn.)
BAD_THREADS=$(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
  | grep -v -e '^src/runtime/' -e '^src/harness/' -e '^src/check/' \
  | xargs grep -n -E 'std::thread|pthread_create' 2>/dev/null \
  | grep -v 'std::thread::hardware_concurrency' || true)
if [ -n "${BAD_THREADS}" ]; then
  BAD_THREADS="raw thread creation outside src/runtime|harness|check:
${BAD_THREADS}"
fi
note "raw-threads" "${BAD_THREADS}"

# Lock-annotation lint: the race detector models locks only through
# race::lock_acquire/lock_release, so a raw std::mutex guard in kernel
# or policy code is invisible to ALL-SETS — a locked critical section
# would still be reported as a race (false positive) or, worse, the
# author assumes the replay certificate covers it (it does not).
# Sanctioned: src/runtime (race::scoped_lock itself and the worker
# pool's internals), src/util, src/harness and src/check (not replayed
# under the detector), src/race (the detectors' own shard/interning
# synchronization — a detector cannot annotate its own locks), and
# src/apps/dag_replay.cpp (the replayer's bookkeeping mutex is
# deliberately unannotated so it adds no edges to the modeled
# happens-before relation; see the comment in exec_node). Everywhere
# else, take locks through dws::race::scoped_lock, which locks AND
# annotates.
BAD_LOCKS=$(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
  | grep -v -e '^src/runtime/' -e '^src/util/' -e '^src/harness/' \
            -e '^src/check/' -e '^src/race/' -e '^src/apps/dag_replay' \
  | xargs grep -n -E 'std::(lock_guard|unique_lock|scoped_lock)[[:space:]]*<|\.lock\(\)|\.unlock\(\)' \
  2>/dev/null | grep -v 'race::scoped_lock' || true)
if [ -n "${BAD_LOCKS}" ]; then
  BAD_LOCKS="raw mutex guard outside src/runtime|util|harness|check|race (use dws::race::scoped_lock so ALL-SETS sees the lock):
${BAD_LOCKS}"
fi
note "raw-mutex-guards" "${BAD_LOCKS}"

# Strictness lint, static half (the runtime half lives in
# runtime/strict.hpp): a heap- or static-storage TaskGroup out-lives its
# creating scope, which breaks the fully-strict join model the scheduler
# assumes. Tests are exempt — they construct escaping groups on purpose
# to exercise the runtime validator.
BAD_GROUPS=$(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
  'examples/*.cpp' 'bench/*.cpp' \
  | xargs grep -n -E 'new[[:space:]]+[A-Za-z:_<>, ]*TaskGroup|static[[:space:]]+[A-Za-z:_<>, ]*TaskGroup' \
  2>/dev/null || true)
if [ -n "${BAD_GROUPS}" ]; then
  BAD_GROUPS="TaskGroup with non-automatic storage (escapes its scope):
${BAD_GROUPS}"
fi
note "taskgroup-storage" "${BAD_GROUPS}"

# Acquisition-order lint, the static half of deadlock analysis (the
# dynamic half is the lock-order graph, src/race/lockgraph): every
# race::scoped_lock site in src/ must declare its lock's order class on
# the same line with a `// lock-order: CLASS` tag, optionally declaring
# nesting as `CLASS after OUTER[,OUTER2...]`. scripts/lock_order.txt
# registers all classes in canonical outermost-first acquisition order;
# every declared `after` edge must be consistent with that order (the
# registry is the topological order, so a back edge IS an inversion) —
# caught here at review time, before any run.
LOCK_ORDER_REGISTRY="scripts/lock_order.txt"
ORDER_FAIL=""
if [ ! -f "${LOCK_ORDER_REGISTRY}" ]; then
  ORDER_FAIL="missing ${LOCK_ORDER_REGISTRY}"
else
  mapfile -t ORDER_CLASSES < <(grep -v -e '^[[:space:]]*#' \
    -e '^[[:space:]]*$' "${LOCK_ORDER_REGISTRY}" \
    | sed -e 's/^[[:space:]]*//' -e 's/[[:space:]]*$//')
  DUP_CLASSES=$(printf '%s\n' "${ORDER_CLASSES[@]}" | sort | uniq -d)
  if [ -n "${DUP_CLASSES}" ]; then
    ORDER_FAIL+="duplicate class(es) in ${LOCK_ORDER_REGISTRY}: ${DUP_CLASSES}"$'\n'
  fi
  # Registry index of a class, or -1 (lower index = acquired earlier).
  class_index() {
    local i
    for i in "${!ORDER_CLASSES[@]}"; do
      if [ "${ORDER_CLASSES[$i]}" = "$1" ]; then
        echo "$i"
        return
      fi
    done
    echo "-1"
  }
  while IFS= read -r site; do
    [ -z "${site}" ] && continue
    file="${site%%:*}"
    rest="${site#*:}"
    lineno="${rest%%:*}"
    text="${rest#*:}"
    stripped="${text#"${text%%[![:space:]]*}"}"
    case "${stripped}" in
      //*|\**) continue ;;  # doc-comment examples are not call sites
    esac
    if [[ "${text}" != *"// lock-order:"* ]]; then
      ORDER_FAIL+="${file}:${lineno}: race::scoped_lock site without a '// lock-order: <class>' tag"$'\n'
      continue
    fi
    tag="${text#*// lock-order:}"
    tag="${tag#"${tag%%[![:space:]]*}"}"
    read -r cls keyword outers _ <<<"${tag}" || true
    cidx=$(class_index "${cls}")
    if [ "${cidx}" -lt 0 ]; then
      ORDER_FAIL+="${file}:${lineno}: class '${cls}' is not registered in ${LOCK_ORDER_REGISTRY}"$'\n'
      continue
    fi
    if [ -n "${keyword:-}" ]; then
      if [ "${keyword}" != "after" ] || [ -z "${outers:-}" ]; then
        ORDER_FAIL+="${file}:${lineno}: malformed tag '// lock-order: ${tag}' (want 'CLASS' or 'CLASS after OUTER[,OUTER2]')"$'\n'
        continue
      fi
      IFS=',' read -ra OUTER_LIST <<<"${outers}"
      for outer in "${OUTER_LIST[@]}"; do
        outer="${outer//[[:space:]]/}"
        oidx=$(class_index "${outer}")
        if [ "${oidx}" -lt 0 ]; then
          ORDER_FAIL+="${file}:${lineno}: 'after ${outer}' names an unregistered class"$'\n'
        elif [ "${oidx}" -ge "${cidx}" ]; then
          ORDER_FAIL+="${file}:${lineno}: acquisition-order inversion: '${cls}' taken while holding '${outer}', but ${LOCK_ORDER_REGISTRY} orders '${outer}' at or below '${cls}'"$'\n'
        fi
      done
    fi
  done < <(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
    | xargs grep -n 'race::scoped_lock<' 2>/dev/null || true)
fi
note "lock-order" "${ORDER_FAIL}"

summarize_and_maybe_exit() {
  local failed=""
  local i
  echo "lint: summary:"
  for i in "${!CHECK_NAMES[@]}"; do
    echo "lint:   ${CHECK_NAMES[$i]}: ${CHECK_RESULTS[$i]}"
    if [ "${CHECK_RESULTS[$i]}" = "FAIL" ]; then
      failed+=" ${CHECK_NAMES[$i]}"
    fi
  done
  if [ -n "${failed}" ]; then
    echo "lint: FAILED:${failed}"
    exit 1
  fi
}

if ! command -v clang-tidy >/dev/null 2>&1; then
  note "clang-tidy" ""
  echo "lint: clang-tidy not found; skipping (install clang-tidy to lint)"
  summarize_and_maybe_exit
  exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "lint: ${BUILD_DIR}/compile_commands.json missing; configuring..."
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# First-party translation units only (the compile database also covers
# vendored/test-framework TUs we do not want to lint).
mapfile -t FILES < <(git ls-files 'src/**/*.cpp' 'tests/*.cpp' \
  'bench/*.cpp' 'examples/*.cpp')

TIDY_FAIL=""
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "lint: no source files found"
else
  echo "lint: clang-tidy over ${#FILES[@]} files (${JOBS} jobs)"
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${BUILD_DIR}" -j "${JOBS}" -quiet "${FILES[@]}" \
      || TIDY_FAIL="clang-tidy reported findings (see above)"
  else
    printf '%s\n' "${FILES[@]}" \
      | xargs -P "${JOBS}" -n 1 clang-tidy -p "${BUILD_DIR}" --quiet \
      || TIDY_FAIL="clang-tidy reported findings (see above)"
  fi
fi
note "clang-tidy" "${TIDY_FAIL}"

summarize_and_maybe_exit
echo "lint: clean"
