// dws-annotation-coverage: inside spawn-lambda bodies in src/apps/,
// reads/writes through captured pointers/references to shared buffers
// must be covered by a dws::race::read/write/region annotation in the
// same body. The race detectors only see annotated accesses — an
// unannotated kernel access is invisible to SP-bags, ALL-SETS and
// FastTrack alike, which silently shrinks the replay certificate.
//
// Coverage granularity (encoding the in-tree annotation idiom):
//
//  - an access is attributed to its *root entity*: the captured variable
//    or (via a captured `this`) member it reaches shared memory through,
//    following local pointer derivations (`const double* up =
//    &cur[...]` makes `cur` the root of accesses through `up`);
//  - a root is covered when any race::read/write call in the same lambda
//    body mentions it or any local derived from it — so Heat's
//    `race::read(up, 3 * cols_)` covers the sibling rows read through
//    `mid` and `down` (same root `cur`), exactly as the kernel intends;
//  - a race::region declared in the body covers the whole body (regions
//    label coarse provenance scopes whose footprint is annotated at a
//    different level);
//  - task-local storage (locals not derived from a capture) needs no
//    annotation.
//
// A spawn lambda is one passed (directly, or via a named local, like
// SOR's `row_body`) to Scheduler::spawn or one of the parallel_*
// algorithms. Only files under AppsPaths (default src/apps/) are
// checked: kernels are the annotation contract; runtime and harness
// code is not replayed under the detectors.
//
// Accesses inside nested spawn lambdas are analyzed with that nested
// body, not the outer one; accesses performed by functions *called*
// from the body are out of AST reach and remain the dynamic detectors'
// job — this check closes the "never annotated at all" hole, it does
// not re-prove footprint exactness.
#pragma once

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/DenseSet.h"

namespace clang {

class LambdaExpr;

namespace tidy {
namespace dws {

class AnnotationCoverageCheck : public ClangTidyCheck {
public:
  AnnotationCoverageCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  std::string AppsPathsRaw;
  std::vector<std::string> AppsPaths;
  /// Lambdas already analyzed this TU — both matcher forms (and several
  /// enclosing spawn calls) can surface the same LambdaExpr node.
  llvm::DenseSet<const LambdaExpr *> Analyzed;
};

}  // namespace dws
}  // namespace tidy
}  // namespace clang
