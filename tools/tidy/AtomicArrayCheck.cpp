#include "AtomicArrayCheck.h"

#include <string>
#include <vector>

#include "DwsTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dws {

static const char kDefaultEnforcedPaths[] = "src/";
static const char kDefaultIgnoredPaths[] = "src/check/";
static const char kDefaultHotTypes[] = "RelaxedCounter";

AtomicArrayCheck::AtomicArrayCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      EnforcedPaths(splitPathList(
          Options.get("EnforcedPaths", kDefaultEnforcedPaths))),
      IgnoredPaths(
          splitPathList(Options.get("IgnoredPaths", kDefaultIgnoredPaths))),
      HotTypes(splitPathList(Options.get("HotTypes", kDefaultHotTypes))),
      LineBytes(Options.get("LineBytes", 64U)) {}

void AtomicArrayCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "EnforcedPaths", joinPathList(EnforcedPaths));
  Options.store(Opts, "IgnoredPaths", joinPathList(IgnoredPaths));
  Options.store(Opts, "HotTypes", joinPathList(HotTypes));
  Options.store(Opts, "LineBytes", LineBytes);
}

void AtomicArrayCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(fieldDecl(unless(isImplicit()),
                               unless(isInTemplateInstantiation()))
                         .bind("decl"),
                     this);
  Finder->addMatcher(varDecl(unless(isImplicit()), unless(parmVarDecl()),
                             unless(isInTemplateInstantiation()))
                         .bind("decl"),
                     this);
}

namespace {

/// The element type when `T` declares contiguous element storage: a C
/// array (including dependent-sized), std::array, std::vector, or the
/// array form of std::unique_ptr. Null QualType otherwise — a plain
/// unique_ptr<T> owns one element and cannot pack a line.
QualType arrayElementType(QualType T, ASTContext &Ctx) {
  if (T.isNull())
    return {};
  if (const ArrayType *AT = Ctx.getAsArrayType(T))
    return AT->getElementType();
  const auto *RT = T->getAs<RecordType>();
  if (RT == nullptr)
    return {};
  const auto *Spec = dyn_cast<ClassTemplateSpecializationDecl>(RT->getDecl());
  if (Spec == nullptr)
    return {};
  const auto *Tmpl = Spec->getSpecializedTemplate();
  if (Tmpl == nullptr)
    return {};
  const std::string Name = Tmpl->getQualifiedNameAsString();
  if (Name != "std::vector" && Name != "std::array" &&
      Name != "std::unique_ptr")
    return {};
  const TemplateArgumentList &Args = Spec->getTemplateArgs();
  if (Args.size() == 0 || Args[0].getKind() != TemplateArgument::Type)
    return {};
  QualType Elem = Args[0].getAsType();
  if (Name == "std::unique_ptr") {
    const ArrayType *AT = Ctx.getAsArrayType(Elem);
    if (AT == nullptr)
      return {};
    Elem = AT->getElementType();
  }
  return Elem;
}

/// The record definition behind `T`, looking through dependent template
/// specializations to the primary template's pattern — so
/// `PackedSlot<Policy>` inside a template still exposes its fields and
/// attributes. Null for non-record types.
const CXXRecordDecl *recordDeclFor(QualType T) {
  if (const CXXRecordDecl *RD = T->getAsCXXRecordDecl())
    return RD->getDefinition();
  if (const auto *TST = T->getAs<TemplateSpecializationType>())
    if (const TemplateDecl *TD = TST->getTemplateName().getAsTemplateDecl())
      if (const auto *CTD = dyn_cast<ClassTemplateDecl>(TD))
        if (const CXXRecordDecl *P = CTD->getTemplatedDecl())
          return P->getDefinition();
  return nullptr;
}

/// Hot element: the element type is itself an atomic (typedef-proof, see
/// typeIsHotAtomic) or a record with at least one atomic field — the
/// CoreTable::Slot shape, where the CAS word hides one struct level down.
bool elementIsHot(QualType Elem, const std::vector<std::string> &HotTypes) {
  if (typeIsHotAtomic(Elem, HotTypes))
    return true;
  const CXXRecordDecl *RD = recordDeclFor(Elem);
  if (RD == nullptr)
    return false;
  for (const FieldDecl *FD : RD->fields())
    if (typeIsHotAtomic(FD->getType(), HotTypes))
      return true;
  return false;
}

/// True when elements already occupy a full line each: concrete types by
/// their computed alignment, dependent record patterns by an alignas on
/// the primary template (StridedCoreSlot<Policy> resolves here).
bool elementLineStrided(QualType Elem, const ASTContext &Ctx,
                        unsigned LineBytes) {
  if (!Elem->isDependentType() && !Elem->isIncompleteType())
    return Ctx.getTypeAlignInChars(Elem).getQuantity() >=
           static_cast<int64_t>(LineBytes);
  if (const CXXRecordDecl *RD = recordDeclFor(Elem)) {
    for (const auto *A : RD->specific_attrs<AlignedAttr>()) {
      if (A->isAlignmentDependent())
        return true;  // benefit of the doubt inside template patterns
      if (A->getAlignment(const_cast<ASTContext &>(Ctx)) >= LineBytes * 8)
        return true;
    }
  }
  return false;
}

}  // namespace

void AtomicArrayCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  ASTContext &Ctx = *Result.Context;
  const auto *D = Result.Nodes.getNodeAs<DeclaratorDecl>("decl");
  if (D == nullptr)
    return;
  SourceLocation Loc = D->getLocation();
  if (Loc.isInvalid() || SM.isInSystemHeader(SM.getExpansionLoc(Loc)))
    return;
  if (!EnforcedPaths.empty() && !locInAnyPath(SM, Loc, EnforcedPaths))
    return;
  if (locInAnyPath(SM, Loc, IgnoredPaths))
    return;

  QualType T = D->getType();
  QualType Elem = arrayElementType(T, Ctx);
  if (!Elem.isNull()) {
    if (!elementIsHot(Elem, HotTypes))
      return;
    if (elementLineStrided(Elem, Ctx, LineBytes))
      return;
    if (hasLayoutSanctionNear(SM, Loc))
      return;
    // Show how densely the CAS words pack when the element size is known.
    std::string Density;
    if (!Elem->isDependentType() && !Elem->isIncompleteType()) {
      const int64_t Size = Ctx.getTypeSizeInChars(Elem).getQuantity();
      if (Size > 0 && Size < static_cast<int64_t>(LineBytes))
        Density =
            " (" + std::to_string(LineBytes / Size) + " elements per line)";
    }
    diag(Loc,
         "%0 is an array of sub-cacheline atomic elements%1: independently "
         "written words pack each %2-byte cache line, so every store or CAS "
         "invalidates its neighbours' lines — the packed CoreTable::Slot "
         "pattern; stride the element type with alignas(%2) or sanction "
         "with '// dws-layout: packed-ok <reason>'")
        << D << llvm::StringRef(Density) << LineBytes;
    return;
  }

  // Still-dependent container types (e.g. std::unique_ptr<Atomic<T>[]> in
  // a template pattern) never desugar: classify by the written spelling,
  // exactly like dws-atomics-policy does for Policy-injected aliases.
  if (!T->isDependentType())
    return;
  const std::string Spelling = T.getAsString();
  const bool ArrayLike = Spelling.find("[]") != std::string::npos ||
                         Spelling.find("vector<") != std::string::npos;
  if (!ArrayLike)
    return;
  bool Hot = Spelling.find("atomic") != std::string::npos ||
             Spelling.find("Atomic") != std::string::npos;
  for (const std::string &H : HotTypes)
    if (!Hot && Spelling.find(H) != std::string::npos)
      Hot = true;
  if (!Hot)
    return;
  if (hasLayoutSanctionNear(SM, Loc))
    return;
  diag(Loc,
       "%0 is declared as an array of atomics ('%1') in a template pattern; "
       "unless the element type is alignas(%2)-strided, independently "
       "written words will pack each %2-byte cache line in every "
       "instantiation — stride the element type or sanction with "
       "'// dws-layout: packed-ok <reason>'")
      << D << llvm::StringRef(Spelling) << LineBytes;
}

}  // namespace dws
}  // namespace tidy
}  // namespace clang
