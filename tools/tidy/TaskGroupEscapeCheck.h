// dws-taskgroup-escape: dws::rt::TaskGroup is a stack-discipline join
// object — spawn() registers tasks against it and wait() must run
// before the frame unwinds. Letting a group escape its frame (heap
// allocation, static/thread_local storage, a stored pointer/reference
// member, or returning its address) breaks the strict-computation
// nesting that SP-bags and the deadlock certifier assume, and turns a
// missed wait() into a use-after-free on the worker side.
//
// Flagged:
//   - `new TaskGroup` (including via typedefs);
//   - TaskGroup variables with static or thread_local storage;
//   - non-parameter declarations of pointer/reference-to-TaskGroup
//     (fields and locals that stash the address);
//   - functions returning TaskGroup* or TaskGroup&.
//
// Parameters are exempt: passing `TaskGroup&` *down* the call tree
// (spawn helpers, hooks) is the sanctioned borrowing idiom — the
// callee's lifetime is nested inside the owner's frame. ExemptPaths
// defaults to the runtime/instrumentation trees, which legitimately
// traffic in group pointers (scheduler internals, race-detector hooks
// keying shadow state by `const TaskGroup*`, tests poking lifecycle
// edges).
#pragma once

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace dws {

class TaskGroupEscapeCheck : public ClangTidyCheck {
public:
  TaskGroupEscapeCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  std::string TaskGroupName;
  std::string ExemptPathsRaw;
  std::vector<std::string> ExemptPaths;
};

}  // namespace dws
}  // namespace tidy
}  // namespace clang
