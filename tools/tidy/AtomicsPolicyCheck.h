// dws-atomics-policy: inside Policy-templated types (ChaseLevDeque,
// CoreOps, TaskPool — anything whose class or function template has a
// type parameter named `Policy`), atomics must be named through the
// injected policy:
//
//   - declarations: `typename Policy::template atomic<T>` (usually via
//     the local `Atomic<U>` alias), never raw `std::atomic<T>` — also
//     matched through typedefs of std::atomic;
//   - fences: `Policy::fence(order)`, never `std::atomic_thread_fence`.
//
// A raw atomic inside one of these types compiles and runs, but it is
// invisible to the model checker (src/check), which substitutes
// CheckAtomicsPolicy to explore interleavings and weak-memory read
// choices — exactly the silent erosion this check exists to stop.
//
// std::memory_order *arguments* are not flagged: the Policy interface
// itself is expressed in std::memory_order (StdAtomicsPolicy::fence
// takes one), so order constants are the policy vocabulary, not a
// bypass of it.
#pragma once

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace dws {

class AtomicsPolicyCheck : public ClangTidyCheck {
public:
  AtomicsPolicyCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  /// Name of the injected-policy template parameter ("Policy").
  std::string PolicyParam;
};

}  // namespace dws
}  // namespace tidy
}  // namespace clang
