// clang-tidy plugin module for the DWS concurrency discipline.
//
// Built as a shared object and loaded with `clang-tidy -load=...`; the
// checks below promote scripts/lint.sh's regex passes to AST-accurate
// analyses (typedef-proof, macro-expansion-aware, immune to doc-comment
// false positives) and add audits regexes cannot express at all
// (annotation coverage, TaskGroup escape, cache-line interference).

#include "AnnotationCoverageCheck.h"
#include "AtomicArrayCheck.h"
#include "AtomicsPolicyCheck.h"
#include "FalseSharingCheck.h"
#include "LockOrderCheck.h"
#include "RawSyncCheck.h"
#include "TaskGroupEscapeCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang {
namespace tidy {
namespace dws {

class DwsTidyModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<RawSyncCheck>("dws-raw-sync");
    Factories.registerCheck<LockOrderCheck>("dws-lock-order");
    Factories.registerCheck<AnnotationCoverageCheck>(
        "dws-annotation-coverage");
    Factories.registerCheck<AtomicsPolicyCheck>("dws-atomics-policy");
    Factories.registerCheck<TaskGroupEscapeCheck>("dws-taskgroup-escape");
    Factories.registerCheck<FalseSharingCheck>("dws-false-sharing");
    Factories.registerCheck<AtomicArrayCheck>("dws-atomic-array");
  }
};

}  // namespace dws

static ClangTidyModuleRegistry::Add<dws::DwsTidyModule>
    X("dws-module", "DWS concurrency-discipline checks.");

// Pull the registration object into the plugin image even under
// aggressive dead-stripping.
volatile int DwsTidyModuleAnchorSource = 0;

}  // namespace tidy
}  // namespace clang
