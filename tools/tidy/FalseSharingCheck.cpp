#include "FalseSharingCheck.h"

#include <cstring>
#include <string>
#include <vector>

#include "DwsTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/AST/RecordLayout.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dws {

static const char kDefaultEnforcedPaths[] = "src/";
static const char kDefaultIgnoredPaths[] = "src/check/";
static const char kDefaultHotTypes[] = "RelaxedCounter";

FalseSharingCheck::FalseSharingCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      EnforcedPaths(splitPathList(
          Options.get("EnforcedPaths", kDefaultEnforcedPaths))),
      IgnoredPaths(
          splitPathList(Options.get("IgnoredPaths", kDefaultIgnoredPaths))),
      HotTypes(splitPathList(Options.get("HotTypes", kDefaultHotTypes))),
      LineBytes(Options.get("LineBytes", 64U)) {}

void FalseSharingCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "EnforcedPaths", joinPathList(EnforcedPaths));
  Options.store(Opts, "IgnoredPaths", joinPathList(IgnoredPaths));
  Options.store(Opts, "HotTypes", joinPathList(HotTypes));
  Options.store(Opts, "LineBytes", LineBytes);
}

void FalseSharingCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(cxxRecordDecl(isDefinition(), unless(isImplicit()),
                                   unless(isInTemplateInstantiation()))
                         .bind("record"),
                     this);
}

namespace {

/// The field's declared sharing domain: "shared", "owned_by:<owner>", or
/// "" when unannotated. The DWS_OWNED_BY/DWS_SHARED macros compile to
/// [[clang::annotate("dws::owned_by:<owner>")]] / ("dws::shared").
std::string fieldDomain(const FieldDecl *FD) {
  for (const auto *A : FD->specific_attrs<AnnotateAttr>()) {
    llvm::StringRef Ann = A->getAnnotation();
    if (Ann == "dws::shared")
      return "shared";
    if (Ann.starts_with("dws::owned_by:"))
      return ("owned_by:" + Ann.substr(std::strlen("dws::owned_by:"))).str();
  }
  return {};
}

/// True when the field is forced onto a fresh cache line: an alignas of at
/// least LineBytes on the field itself, or a (non-dependent) field type
/// whose natural alignment already is at least a line.
bool fieldLineIsolated(const FieldDecl *FD, const ASTContext &Ctx,
                       unsigned LineBytes) {
  for (const auto *A : FD->specific_attrs<AlignedAttr>()) {
    if (A->isAlignmentDependent())
      return true;  // benefit of the doubt inside template patterns
    if (A->getAlignment(const_cast<ASTContext &>(Ctx)) >= LineBytes * 8)
      return true;
  }
  QualType T = FD->getType();
  if (!T.isNull() && !T->isDependentType() && !T->isIncompleteType())
    return Ctx.getTypeAlignInChars(T).getQuantity() >=
           static_cast<int64_t>(LineBytes);
  return false;
}

}  // namespace

void FalseSharingCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  ASTContext &Ctx = *Result.Context;
  const auto *RD = Result.Nodes.getNodeAs<CXXRecordDecl>("record");
  if (RD == nullptr || !RD->isCompleteDefinition() || RD->isInvalidDecl() ||
      RD->isUnion() || RD->isLambda())
    return;
  SourceLocation RecLoc = RD->getLocation();
  if (RecLoc.isInvalid() || SM.isInSystemHeader(SM.getExpansionLoc(RecLoc)))
    return;
  if (!EnforcedPaths.empty() && !locInAnyPath(SM, RecLoc, EnforcedPaths))
    return;
  if (locInAnyPath(SM, RecLoc, IgnoredPaths))
    return;

  struct Info {
    const FieldDecl *FD;
    std::string Domain;
    bool Hot;
  };
  std::vector<Info> Fields;
  for (const FieldDecl *FD : RD->fields()) {
    if (FD->isBitField() || FD->isUnnamedBitfield())
      continue;
    Fields.push_back(
        {FD, fieldDomain(FD), typeIsHotAtomic(FD->getType(), HotTypes)});
  }

  // Rule 1: hot fields must declare their sharing domain — the conflict
  // map below is only as complete as the annotations feeding it.
  for (const Info &I : Fields) {
    if (!I.Hot || !I.Domain.empty())
      continue;
    if (hasLayoutSanctionNear(SM, I.FD->getLocation()) ||
        hasLayoutSanctionNear(SM, RecLoc))
      continue;
    diag(I.FD->getLocation(),
         "concurrency-hot field %0 has no sharing-domain annotation; mark it "
         "DWS_OWNED_BY(owner) or DWS_SHARED (src/util/layout.hpp) so "
         "cross-domain cache-line packing is checkable, or sanction with "
         "'// dws-layout: packed-ok <reason>'")
        << I.FD;
  }

  // Rule 2: annotated fields of different domains must not share a line.
  if (!RD->isDependentType()) {
    const ASTRecordLayout &Layout = Ctx.getASTRecordLayout(RD);
    struct Extent {
      const Info *I;
      uint64_t First, Last;  // cache-line span
    };
    std::vector<Extent> Extents;
    for (const Info &I : Fields) {
      if (I.Domain.empty())
        continue;
      QualType T = I.FD->getType();
      if (T.isNull() || T->isIncompleteType())
        continue;
      const uint64_t Off =
          Layout.getFieldOffset(I.FD->getFieldIndex()) / 8;
      const uint64_t Size = Ctx.getTypeSizeInChars(T).getQuantity();
      Extents.push_back({&I, Off / LineBytes,
                         (Off + (Size > 0 ? Size - 1 : 0)) / LineBytes});
    }
    for (size_t J = 0; J < Extents.size(); ++J) {
      for (size_t I = 0; I < J; ++I) {
        if (Extents[I].I->Domain == Extents[J].I->Domain)
          continue;
        if (Extents[I].Last < Extents[J].First ||
            Extents[J].Last < Extents[I].First)
          continue;
        const FieldDecl *FI = Extents[I].I->FD;
        const FieldDecl *FJ = Extents[J].I->FD;
        if (hasLayoutSanctionNear(SM, FJ->getLocation()) ||
            hasLayoutSanctionNear(SM, FI->getLocation()) ||
            hasLayoutSanctionNear(SM, RecLoc))
          continue;
        diag(FJ->getLocation(),
             "field %0 (domain '%1') shares a cache line with %2 (domain "
             "'%3'): writes from different sharing domains will falsely "
             "share the line; isolate with alignas(%4) or sanction with "
             "'// dws-layout: packed-ok <reason>'")
            << FJ << llvm::StringRef(Extents[J].I->Domain) << FI
            << llvm::StringRef(Extents[I].I->Domain) << LineBytes;
        break;  // one report per field is enough
      }
    }
    return;
  }

  // Dependent record: offsets are unknowable until instantiation, so fall
  // back to declaration order — a domain change between consecutive
  // annotated fields must land on an alignas(line) boundary.
  const Info *Prev = nullptr;
  for (const Info &I : Fields) {
    if (I.Domain.empty())
      continue;
    if (Prev != nullptr && Prev->Domain != I.Domain &&
        !fieldLineIsolated(I.FD, Ctx, LineBytes) &&
        !hasLayoutSanctionNear(SM, I.FD->getLocation()) &&
        !hasLayoutSanctionNear(SM, Prev->FD->getLocation()) &&
        !hasLayoutSanctionNear(SM, RecLoc)) {
      diag(I.FD->getLocation(),
           "field %0 (domain '%1') directly follows %2 (domain '%3') "
           "without an alignas(%4) boundary; in this template pattern the "
           "two domains may share a cache line in every instantiation — "
           "isolate the field or sanction with "
           "'// dws-layout: packed-ok <reason>'")
          << I.FD << llvm::StringRef(I.Domain) << Prev->FD
          << llvm::StringRef(Prev->Domain) << LineBytes;
    }
    Prev = &I;
  }
}

}  // namespace dws
}  // namespace tidy
}  // namespace clang
