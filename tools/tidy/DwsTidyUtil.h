// Shared helpers for the dws-* clang-tidy checks: sanction-comment
// suppression, sanctioned-path matching, and raw line access.
//
// The dws-* checks enforce repo-wide concurrency discipline, so two
// escape hatches recur across all of them:
//
//  - sanctioned paths: an option listing path fragments (directories or
//    files, ';'-separated, as they appear in the repo: "src/runtime/")
//    inside which the checked construct is legitimate;
//  - sanction comments: a `// dws-lint-sanction: <justification>` on the
//    flagged line suppresses the diagnostic. The justification is
//    mandatory (an empty one does not suppress); scripts/lint.sh
//    additionally rejects justifications shorter than three words.
#pragma once

#include <string>
#include <vector>

#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace dws {

/// Splits a ';'-separated option value into trimmed non-empty entries.
std::vector<std::string> splitPathList(llvm::StringRef List);

/// Re-joins entries for storeOptions round-tripping.
std::string joinPathList(const std::vector<std::string> &Paths);

/// Full text of the line containing the expansion location of `Loc`
/// (empty on invalid/missing buffers).
llvm::StringRef lineText(const SourceManager &SM, SourceLocation Loc);

/// True when the line holding `Loc` carries a
/// `dws-lint-sanction: <non-empty justification>` comment.
bool lineHasSanction(const SourceManager &SM, SourceLocation Loc);

/// True when the file containing `Loc` lies under any of `Paths`. A path
/// entry matches if the file name starts with it or contains it preceded
/// by a '/' — so entries work both as repo-relative prefixes
/// ("src/runtime/") and against absolute compile-database paths.
bool locInAnyPath(const SourceManager &SM, SourceLocation Loc,
                  const std::vector<std::string> &Paths);

}  // namespace dws
}  // namespace tidy
}  // namespace clang
