// Shared helpers for the dws-* clang-tidy checks: sanction-comment
// suppression, sanctioned-path matching, and raw line access.
//
// The dws-* checks enforce repo-wide concurrency discipline, so two
// escape hatches recur across all of them:
//
//  - sanctioned paths: an option listing path fragments (directories or
//    files, ';'-separated, as they appear in the repo: "src/runtime/")
//    inside which the checked construct is legitimate;
//  - sanction comments: a `// dws-lint-sanction: <justification>` on the
//    flagged line suppresses the diagnostic. The justification is
//    mandatory (an empty one does not suppress); scripts/lint.sh
//    additionally rejects justifications shorter than three words.
#pragma once

#include <string>
#include <vector>

#include "clang/AST/Type.h"
#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace dws {

/// Splits a ';'-separated option value into trimmed non-empty entries.
std::vector<std::string> splitPathList(llvm::StringRef List);

/// Re-joins entries for storeOptions round-tripping.
std::string joinPathList(const std::vector<std::string> &Paths);

/// Full text of the line containing the expansion location of `Loc`
/// (empty on invalid/missing buffers).
llvm::StringRef lineText(const SourceManager &SM, SourceLocation Loc);

/// True when the line holding `Loc` carries a
/// `dws-lint-sanction: <non-empty justification>` comment.
bool lineHasSanction(const SourceManager &SM, SourceLocation Loc);

/// True when the declaration at `Loc` is layout-sanctioned: its own line,
/// or a contiguous run of pure `//` comment lines immediately above it,
/// carries `dws-layout: packed-ok <non-empty reason>` (the layout-check
/// sanction grammar) or a regular `dws-lint-sanction:` with justification.
/// Layout sanctions get the scan-above form because the flagged
/// declarations (fields, whole structs) usually carry a doc comment
/// already and the reason rarely fits the declaration line.
bool hasLayoutSanctionNear(const SourceManager &SM, SourceLocation Loc);

/// True when `T` names concurrency-hot storage: a (typedef-proof)
/// std::atomic specialization, a record named in `HotTypes`
/// ("RelaxedCounter"), or — for still-dependent types inside template
/// patterns — a written spelling mentioning an atomic (the Policy-injected
/// `atomic<T>` / `Atomic<T>` aliases never desugar, exactly like in
/// dws-atomics-policy). Arrays classify by their element type.
bool typeIsHotAtomic(QualType T, const std::vector<std::string> &HotTypes);

/// True when the file containing `Loc` lies under any of `Paths`. A path
/// entry matches if the file name starts with it or contains it preceded
/// by a '/' — so entries work both as repo-relative prefixes
/// ("src/runtime/") and against absolute compile-database paths.
bool locInAnyPath(const SourceManager &SM, SourceLocation Loc,
                  const std::vector<std::string> &Paths);

}  // namespace dws
}  // namespace tidy
}  // namespace clang
