// dws-raw-sync: raw std::thread / pthread_create / ::kill() /
// std::mutex-guard usage outside the sanctioned directories.
//
// AST-accurate replacement for the "kill-sites", "raw-threads" and
// "raw-mutex-guards" regex passes in scripts/lint.sh: the matchers
// resolve through typedefs, using-aliases and macro wrappers, which the
// line-oriented greps cannot (a `using worker_t = std::thread;` spawn
// site sails straight past the regex).
//
// Rationale (mirrors scripts/lint.sh):
//  - spawning OS threads is the scheduler's job: kernels and policy code
//    that start their own threads bypass the work-stealing model, and the
//    race detector's serial replay cannot see them;
//  - raw ::kill() is crash-test scaffolding; outside the liveness probe
//    and the fault harness it has no business in production code;
//  - a raw std::mutex guard is invisible to the ALL-SETS lockset
//    detector — take locks through dws::race::scoped_lock, which locks
//    AND annotates.
#pragma once

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace dws {

class RawSyncCheck : public ClangTidyCheck {
public:
  RawSyncCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  std::string ThreadPathsRaw;
  std::string KillPathsRaw;
  std::string MutexPathsRaw;
  std::vector<std::string> ThreadPaths;
  std::vector<std::string> KillPaths;
  std::vector<std::string> MutexPaths;
};

}  // namespace dws
}  // namespace tidy
}  // namespace clang
