// dws-false-sharing: structs holding concurrency-hot fields (std::atomic,
// RelaxedCounter, Policy-injected `atomic<T>`) must keep their cache-line
// layout honest:
//
//  1. every hot field in an enforced path declares its sharing domain with
//     the DWS_OWNED_BY(owner) / DWS_SHARED macros (src/util/layout.hpp) —
//     an unannotated hot field is itself a finding, because conflict
//     detection is only as good as the domain map;
//  2. two annotated fields of *different* domains must not share a
//     64-byte cache line. For concrete records the check computes real
//     offsets from the AST record layout; for dependent (still-templated)
//     records it falls back to declaration adjacency: a domain change
//     between consecutive annotated fields must coincide with an
//     alignas(64)-or-stronger boundary on the later field.
//
// Suppression: `// dws-layout: packed-ok <reason>` (or a regular
// `// dws-lint-sanction: <justification>`) on the flagged field's line, in
// the comment block directly above it, or above the struct itself for
// whole-struct waivers (e.g. CoreTable::LivenessRecord, whose cross-domain
// packing is accepted because heartbeat traffic is periodic, not hot).
//
// Hot-type detection follows the PR-8 checks: the desugared type is
// matched, so typedef chains cannot launder a std::atomic; dependent types
// are classified by their written spelling containing "atomic".
#pragma once

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace dws {

class FalseSharingCheck : public ClangTidyCheck {
public:
  FalseSharingCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  /// Paths the discipline is enforced under (empty = everywhere).
  std::vector<std::string> EnforcedPaths;
  /// Paths exempted even when under EnforcedPaths (the model checker's
  /// own instrumented-atomic internals live here).
  std::vector<std::string> IgnoredPaths;
  /// Record type names treated as hot like std::atomic itself.
  std::vector<std::string> HotTypes;
  /// Destructive-interference granularity in bytes.
  unsigned LineBytes;
};

}  // namespace dws
}  // namespace tidy
}  // namespace clang
