// dws-lock-order: every dws::race::scoped_lock site must carry a
// `// lock-order: CLASS [after OUTER[,OUTER2...]]` tag whose class is
// registered in scripts/lock_order.txt, and whose declared `after`
// edges are consistent with the registry's canonical outermost-first
// order (the registry IS the topological order, so a back edge is an
// acquisition-order inversion caught before any run).
//
// AST promotion of the "lock-order" regex pass in scripts/lint.sh: the
// match is on the declared variable's canonical type, so typedef'd
// guards and macro-wrapped sites are found (the tag is looked for on
// every source line the site spans at its macro *expansion* location),
// and doc-comment examples can never trip it.
#pragma once

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace dws {

class LockOrderCheck : public ClangTidyCheck {
public:
  LockOrderCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  bool ensureRegistry(const SourceManager &SM);
  int indexOf(StringRef Cls) const;

  std::string RegistryOption;
  std::string EnforcedPathsRaw;
  std::vector<std::string> EnforcedPaths;

  bool LoadAttempted = false;
  bool LoadFailed = false;
  bool RegistryMissingReported = false;
  std::string ResolvedRegistry;
  std::vector<std::string> Classes;  // registry order, outermost first
  std::vector<std::string> DuplicateClasses;
};

}  // namespace dws
}  // namespace tidy
}  // namespace clang
