#include "RawSyncCheck.h"

#include "DwsTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dws {

// Defaults mirror the sanctioned call sites documented in
// scripts/lint.sh: the worker pool spawns threads, the co-runner and
// model-check harnesses drive their own, and tests exercise the
// concurrent structures directly. ::kill() is sanctioned in exactly the
// liveness probe and the fault-injection harness.
static const char kDefaultThreadPaths[] =
    "src/runtime/;src/harness/;src/check/;tests/";
static const char kDefaultKillPaths[] =
    "src/core/coordinator_policy.cpp;src/harness/faults.cpp";
static const char kDefaultMutexPaths[] =
    "src/runtime/;src/util/;src/harness/;src/check/;src/race/;"
    "src/apps/dag_replay.cpp;tests/";

RawSyncCheck::RawSyncCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      ThreadPathsRaw(Options.get("ThreadSanctionedPaths", kDefaultThreadPaths)),
      KillPathsRaw(Options.get("KillSanctionedPaths", kDefaultKillPaths)),
      MutexPathsRaw(Options.get("MutexSanctionedPaths", kDefaultMutexPaths)) {
  ThreadPaths = splitPathList(ThreadPathsRaw);
  KillPaths = splitPathList(KillPathsRaw);
  MutexPaths = splitPathList(MutexPathsRaw);
}

void RawSyncCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "ThreadSanctionedPaths", ThreadPathsRaw);
  Options.store(Opts, "KillSanctionedPaths", KillPathsRaw);
  Options.store(Opts, "MutexSanctionedPaths", MutexPathsRaw);
}

void RawSyncCheck::registerMatchers(MatchFinder *Finder) {
  // Thread spawns: any construction of std::thread/std::jthread. The
  // constructed type is resolved through typedefs and using-aliases
  // (the matcher looks at the constructor's class, not the spelling).
  // std::thread::hardware_concurrency() is a core-count query, not a
  // spawn, and constructs nothing — it never matches.
  Finder->addMatcher(
      cxxConstructExpr(hasDeclaration(cxxConstructorDecl(ofClass(
                           cxxRecordDecl(hasAnyName("::std::thread",
                                                    "::std::jthread"))))),
                       unless(isInTemplateInstantiation()))
          .bind("thread"),
      this);
  // OS-level escape hatches.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::pthread_create", "::kill"))),
               unless(isInTemplateInstantiation()))
          .bind("oscall"),
      this);
  // Raw mutex guards; the desugared type check resolves typedefs.
  Finder->addMatcher(
      varDecl(hasType(hasUnqualifiedDesugaredType(recordType(hasDeclaration(
                  namedDecl(hasAnyName("::std::lock_guard",
                                       "::std::unique_lock",
                                       "::std::scoped_lock")))))),
              unless(isInTemplateInstantiation()))
          .bind("guard"),
      this);
  // Direct lock()/unlock()/try_lock() on a std mutex (guards aside, the
  // regex pass also flagged bare .lock() calls).
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              hasAnyName("lock", "unlock", "try_lock"),
              ofClass(cxxRecordDecl(hasAnyName(
                  "::std::mutex", "::std::timed_mutex",
                  "::std::recursive_mutex", "::std::recursive_timed_mutex",
                  "::std::shared_mutex", "::std::shared_timed_mutex"))))),
          unless(isInTemplateInstantiation()))
          .bind("lockcall"),
      this);
}

void RawSyncCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc;
  const std::vector<std::string> *Paths = nullptr;
  StringRef What;
  StringRef Advice;
  if (const auto *E = Result.Nodes.getNodeAs<CXXConstructExpr>("thread")) {
    Loc = E->getBeginLoc();
    Paths = &ThreadPaths;
    What = "raw thread construction";
    Advice = "spawn work through the scheduler so the work-stealing model "
             "and the race detectors see it";
  } else if (const auto *E = Result.Nodes.getNodeAs<CallExpr>("oscall")) {
    Loc = E->getBeginLoc();
    const FunctionDecl *FD = E->getDirectCallee();
    if (FD != nullptr && FD->getName() == "kill") {
      Paths = &KillPaths;
      What = "raw ::kill()";
      Advice = "route fault injection through src/harness/faults";
    } else {
      Paths = &ThreadPaths;
      What = "raw pthread_create()";
      Advice = "spawn work through the scheduler so the work-stealing model "
               "and the race detectors see it";
    }
  } else if (const auto *D = Result.Nodes.getNodeAs<VarDecl>("guard")) {
    Loc = D->getLocation();
    Paths = &MutexPaths;
    What = "raw mutex guard";
    Advice = "use dws::race::scoped_lock so the ALL-SETS detector sees the "
             "lock";
  } else if (const auto *E =
                 Result.Nodes.getNodeAs<CXXMemberCallExpr>("lockcall")) {
    Loc = E->getBeginLoc();
    Paths = &MutexPaths;
    What = "raw mutex lock/unlock";
    Advice = "use dws::race::scoped_lock so the ALL-SETS detector sees the "
             "lock";
  } else {
    return;
  }
  if (Loc.isInvalid() || SM.isInSystemHeader(SM.getExpansionLoc(Loc)))
    return;
  if (locInAnyPath(SM, Loc, *Paths))
    return;
  if (lineHasSanction(SM, Loc))
    return;
  diag(Loc, "%0 outside the sanctioned directories; %1 (or sanction the "
            "line with '// dws-lint-sanction: <justification>')")
      << What << Advice;
}

}  // namespace dws
}  // namespace tidy
}  // namespace clang
