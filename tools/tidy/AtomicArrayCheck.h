// dws-atomic-array: flags arrays (C arrays, std::array, std::vector,
// std::unique_ptr<T[]>) whose elements are sub-cacheline atomics — the
// historical CoreTable::Slot pattern, where 16 independently-CASed
// 4-byte words pack one 64-byte line and every co-runner's CAS
// invalidates its 15 neighbours' cache lines.
//
// An array is accepted when:
//  - the element type is padded/strided to at least a cache line
//    (alignof(element) >= 64, e.g. StridedCoreSlot), or
//  - the declaration is sanctioned with `// dws-layout: packed-ok
//    <reason>` (or a regular `// dws-lint-sanction:`) on its line or in
//    the comment block directly above — the escape hatch for handoff
//    buffers like the Chase-Lev ring, whose elements are single-writer
//    cells rather than CAS targets.
//
// Element types are detected through typedef chains (desugared match);
// inside still-dependent template patterns the written spelling decides
// (a `std::unique_ptr<Atomic<T>[]>` never desugars), so Policy-atomic
// element types cannot be laundered through aliases either.
#pragma once

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace dws {

class AtomicArrayCheck : public ClangTidyCheck {
public:
  AtomicArrayCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  /// Paths the discipline is enforced under (empty = everywhere).
  std::vector<std::string> EnforcedPaths;
  /// Paths exempted even when under EnforcedPaths.
  std::vector<std::string> IgnoredPaths;
  /// Record type names treated as hot like std::atomic itself.
  std::vector<std::string> HotTypes;
  /// Destructive-interference granularity in bytes.
  unsigned LineBytes;
};

}  // namespace dws
}  // namespace tidy
}  // namespace clang
