#include "AnnotationCoverageCheck.h"

#include <map>
#include <vector>

#include "DwsTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/DenseSet.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dws {

AnnotationCoverageCheck::AnnotationCoverageCheck(StringRef Name,
                                                ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AppsPathsRaw(Options.get("AppsPaths", "src/apps/")) {
  AppsPaths = splitPathList(AppsPathsRaw);
}

void AnnotationCoverageCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AppsPaths", AppsPathsRaw);
}

namespace {

// The entry points whose callable argument runs as a task. Unqualified
// "spawn" deliberately matches any Scheduler-like spawn member.
internal::Matcher<NamedDecl> spawnEntryDecl() {
  return namedDecl(hasAnyName("spawn", "::dws::rt::parallel_for",
                              "::dws::rt::parallel_for_split",
                              "::dws::rt::parallel_invoke",
                              "::dws::rt::parallel_reduce"));
}

bool isRaceCallee(const FunctionDecl *FD, StringRef Leaf) {
  if (FD == nullptr || FD->getName() != Leaf)
    return false;
  std::string QN = FD->getQualifiedNameAsString();
  return QN.find("race::") != std::string::npos;
}

bool isRegionType(QualType QT) {
  if (QT.isNull())
    return false;
  const auto *RD = QT.getCanonicalType()->getAsCXXRecordDecl();
  if (RD == nullptr)
    return false;
  if (RD->getName() != "region")
    return false;
  std::string QN = RD->getQualifiedNameAsString();
  return QN.find("race::") != std::string::npos;
}

// First variable or member an expression reaches shared memory through:
// peels parens/casts, nested subscripts and derefs down to the decl.
const ValueDecl *baseEntity(const Expr *E) {
  while (E != nullptr) {
    E = E->IgnoreParenImpCasts();
    if (const auto *DRE = dyn_cast<DeclRefExpr>(E))
      return DRE->getDecl();
    if (const auto *ME = dyn_cast<MemberExpr>(E))
      return ME->getMemberDecl();
    if (const auto *ASE = dyn_cast<ArraySubscriptExpr>(E)) {
      E = ASE->getBase();
      continue;
    }
    if (const auto *UO = dyn_cast<UnaryOperator>(E)) {
      if (UO->getOpcode() == UO_Deref || UO->getOpcode() == UO_AddrOf) {
        E = UO->getSubExpr();
        continue;
      }
      return nullptr;
    }
    if (const auto *OC = dyn_cast<CXXOperatorCallExpr>(E)) {
      if (OC->getOperator() == OO_Subscript && OC->getNumArgs() >= 1) {
        E = OC->getArg(0);
        continue;
      }
      return nullptr;
    }
    return nullptr;
  }
  return nullptr;
}

// Does this type plausibly address shared storage (pointer, array,
// reference-to-pointer, or a container-ish record)?
bool isBufferish(QualType QT) {
  if (QT.isNull())
    return false;
  QualType C = QT.getCanonicalType();
  if (C->isReferenceType())
    C = C.getNonReferenceType().getCanonicalType();
  return C->isAnyPointerType() || C->isArrayType() || C->isRecordType();
}

struct SharedAccess {
  const ValueDecl *Base;
  SourceLocation Loc;
};

// One walk over the spawn-lambda body collecting everything the
// coverage decision needs. Plain recursion over Stmt::children() keeps
// this independent of matcher-library differences across LLVM releases.
struct BodyScan {
  const LambdaExpr *Lam;

  bool HasRegion = false;
  llvm::DenseSet<const Decl *> Annotated;  // entities mentioned in race calls
  std::vector<const VarDecl *> Locals;     // body locals, declaration order
  std::map<const Decl *, const ValueDecl *> DerivedFrom;
  std::vector<SharedAccess> Accesses;

  void collectMentions(const Expr *E) {
    if (E == nullptr)
      return;
    if (const auto *DRE = dyn_cast<DeclRefExpr>(E))
      Annotated.insert(DRE->getDecl()->getCanonicalDecl());
    if (const auto *ME = dyn_cast<MemberExpr>(E))
      Annotated.insert(ME->getMemberDecl()->getCanonicalDecl());
    for (const Stmt *C : E->children())
      if (const auto *CE = dyn_cast_or_null<Expr>(C))
        collectMentions(CE);
  }

  void recordLocal(const VarDecl *VD) {
    if (isRegionType(VD->getType())) {
      HasRegion = true;
      return;
    }
    Locals.push_back(VD);
    if (const Expr *Init = VD->getInit()) {
      // Prefer the buffer-typed entity in the initializer as the
      // derivation source: in `const double* up = &cur[(r-1)*cols_]`
      // the root is `cur`, not the extent member `cols_`.
      const ValueDecl *Best = nullptr;
      const ValueDecl *First = nullptr;
      scanInitForSource(Init, Best, First);
      if (const ValueDecl *Src = (Best != nullptr ? Best : First))
        DerivedFrom[VD->getCanonicalDecl()] = Src;
    }
  }

  void scanInitForSource(const Expr *E, const ValueDecl *&Best,
                         const ValueDecl *&First) {
    if (E == nullptr)
      return;
    if (const auto *DRE = dyn_cast<DeclRefExpr>(E)) {
      noteSource(DRE->getDecl(), Best, First);
    } else if (const auto *ME = dyn_cast<MemberExpr>(E)) {
      noteSource(ME->getMemberDecl(), Best, First);
      return;  // don't descend into the member's base (`this`)
    }
    for (const Stmt *C : E->children())
      if (const auto *CE = dyn_cast_or_null<Expr>(C))
        scanInitForSource(CE, Best, First);
  }

  static void noteSource(const ValueDecl *D, const ValueDecl *&Best,
                         const ValueDecl *&First) {
    if (D == nullptr || isa<FunctionDecl>(D) || isa<EnumConstantDecl>(D))
      return;
    if (First == nullptr)
      First = D;
    if (Best == nullptr && isBufferish(D->getType()))
      Best = D;
  }

  void scan(const Stmt *S, bool InAnnotation, bool InAddrOf) {
    if (S == nullptr)
      return;
    // A nested lambda is its own spawn (or plain callable) body; its
    // accesses are judged against *its* annotations, not ours.
    if (isa<LambdaExpr>(S) && S != Lam)
      return;

    if (const auto *DS = dyn_cast<DeclStmt>(S)) {
      for (const Decl *D : DS->decls())
        if (const auto *VD = dyn_cast<VarDecl>(D))
          recordLocal(VD);
      // still fall through to children: initializers may contain
      // accesses (e.g. `double v = src[i];`) that need coverage.
    }

    if (const auto *CE = dyn_cast<CallExpr>(S)) {
      const FunctionDecl *FD = CE->getDirectCallee();
      if (isRaceCallee(FD, "read") || isRaceCallee(FD, "write")) {
        for (const Expr *Arg : CE->arguments())
          collectMentions(Arg);
        for (const Stmt *C : CE->children())
          scan(C, /*InAnnotation=*/true, InAddrOf);
        return;
      }
    }

    if (const auto *UO = dyn_cast<UnaryOperator>(S)) {
      if (UO->getOpcode() == UO_AddrOf) {
        scan(UO->getSubExpr(), InAnnotation, /*InAddrOf=*/true);
        return;
      }
      if (UO->getOpcode() == UO_Deref && !InAnnotation && !InAddrOf) {
        if (const ValueDecl *B = baseEntity(UO->getSubExpr()))
          Accesses.push_back({B, UO->getBeginLoc()});
        scan(UO->getSubExpr(), InAnnotation, InAddrOf);
        return;
      }
    }

    if (const auto *ASE = dyn_cast<ArraySubscriptExpr>(S)) {
      if (!InAnnotation && !InAddrOf)
        if (const ValueDecl *B = baseEntity(ASE->getBase()))
          Accesses.push_back({B, ASE->getBeginLoc()});
      // The index expression is an ordinary rvalue context even when
      // the subscript itself sits under & (pure address arithmetic).
      scan(ASE->getBase(), InAnnotation, InAddrOf);
      scan(ASE->getIdx(), InAnnotation, /*InAddrOf=*/false);
      return;
    }

    if (const auto *OC = dyn_cast<CXXOperatorCallExpr>(S)) {
      if (OC->getOperator() == OO_Subscript && OC->getNumArgs() >= 1) {
        if (!InAnnotation && !InAddrOf)
          if (const ValueDecl *B = baseEntity(OC->getArg(0)))
            Accesses.push_back({B, OC->getBeginLoc()});
        for (unsigned I = 0; I < OC->getNumArgs(); ++I)
          scan(OC->getArg(I), InAnnotation,
               /*InAddrOf=*/I == 0 ? InAddrOf : false);
        return;
      }
    }

    for (const Stmt *C : S->children())
      scan(C, InAnnotation, InAddrOf);
  }

  // Follows local-pointer derivations to the entity the storage actually
  // belongs to (cycle-guarded; derivation chains are tiny).
  const ValueDecl *rootOf(const ValueDecl *D) const {
    const ValueDecl *Cur = D;
    for (int Hops = 0; Hops < 16; ++Hops) {
      auto It = DerivedFrom.find(Cur->getCanonicalDecl());
      if (It == DerivedFrom.end() || It->second == Cur)
        return Cur;
      Cur = It->second;
    }
    return Cur;
  }
};

}  // namespace

void AnnotationCoverageCheck::registerMatchers(MatchFinder *Finder) {
  // Form 1: lambda written directly at the spawn site.
  Finder->addMatcher(
      lambdaExpr(hasAncestor(callExpr(callee(spawnEntryDecl()))),
                 unless(isInTemplateInstantiation()))
          .bind("lam"),
      this);
  // Form 2: the named-body idiom — `auto row_body = [&](...){...};`
  // handed to spawn/parallel_* later in the same function. The use is
  // verified in check() so an unrelated lambda-typed local never trips.
  Finder->addMatcher(
      varDecl(hasInitializer(ignoringParenImpCasts(
                  lambdaExpr(unless(isInTemplateInstantiation())).bind("lam"))),
              hasAncestor(functionDecl().bind("encl")))
          .bind("lamvar"),
      this);
}

void AnnotationCoverageCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Lam = Result.Nodes.getNodeAs<LambdaExpr>("lam");
  if (Lam == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation LamLoc = SM.getExpansionLoc(Lam->getBeginLoc());
  if (LamLoc.isInvalid() || SM.isInSystemHeader(LamLoc))
    return;
  if (!AppsPaths.empty() && !locInAnyPath(SM, LamLoc, AppsPaths))
    return;
  // A sanction on the lambda-introducer line waives the whole body.
  if (lineHasSanction(SM, LamLoc))
    return;

  if (const auto *LamVar = Result.Nodes.getNodeAs<VarDecl>("lamvar")) {
    const auto *Encl = Result.Nodes.getNodeAs<FunctionDecl>("encl");
    if (Encl == nullptr || Encl->getBody() == nullptr)
      return;
    auto RefToVar = declRefExpr(to(varDecl(equalsNode(LamVar))));
    auto Uses = match(
        functionDecl(hasDescendant(callExpr(
            callee(spawnEntryDecl()),
            hasAnyArgument(anyOf(ignoringParenImpCasts(RefToVar),
                                 hasDescendant(RefToVar)))))),
        *Encl, *Result.Context);
    if (Uses.empty())
      return;  // lambda-typed local never spawned — not our contract
  }

  if (Analyzed.count(Lam) != 0)
    return;  // both matchers (or several ancestors) can yield one lambda
  Analyzed.insert(Lam);

  const CompoundStmt *Body = Lam->getBody();
  if (Body == nullptr)
    return;

  BodyScan Scan;
  Scan.Lam = Lam;
  Scan.scan(Body, /*InAnnotation=*/false, /*InAddrOf=*/false);
  if (Scan.HasRegion)
    return;  // a race::region labels the whole body's provenance

  // What the lambda can legitimately share: captured variables, and
  // members reached through a captured `this`.
  llvm::DenseSet<const Decl *> CapturedVars;
  bool CapturesThis = false;
  for (const LambdaCapture &C : Lam->captures()) {
    if (C.capturesThis())
      CapturesThis = true;
    else if (C.capturesVariable())
      CapturedVars.insert(C.getCapturedVar()->getCanonicalDecl());
  }

  llvm::DenseSet<const Decl *> CoveredRoots;
  for (const Decl *D : Scan.Annotated)
    CoveredRoots.insert(
        Scan.rootOf(cast<ValueDecl>(D))->getCanonicalDecl());

  llvm::DenseSet<const Decl *> Reported;
  for (const SharedAccess &A : Scan.Accesses) {
    const ValueDecl *Root = Scan.rootOf(A.Base);
    const Decl *Canon = Root->getCanonicalDecl();
    bool Shared = CapturedVars.count(Canon) != 0 ||
                  (CapturesThis && isa<FieldDecl>(Root));
    if (!Shared)
      continue;  // task-local storage needs no annotation
    if (CoveredRoots.count(Canon) != 0)
      continue;
    if (Reported.count(Canon) != 0)
      continue;
    SourceLocation Loc = SM.getExpansionLoc(A.Loc);
    if (Loc.isInvalid() || lineHasSanction(SM, Loc))
      continue;
    Reported.insert(Canon);
    diag(Loc, "access through captured '%0' has no dws::race::read/write/"
              "region annotation covering it in this spawn body; the race "
              "detectors cannot see unannotated accesses (or sanction the "
              "line with '// dws-lint-sanction: <justification>')")
        << Root->getName();
  }
}

}  // namespace dws
}  // namespace tidy
}  // namespace clang
