#include "DwsTidyUtil.h"

#include <algorithm>
#include <cstring>

#include "llvm/ADT/SmallString.h"
#include "llvm/ADT/SmallVector.h"

namespace clang {
namespace tidy {
namespace dws {

std::vector<std::string> splitPathList(llvm::StringRef List) {
  std::vector<std::string> Out;
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  List.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef P : Parts) {
    P = P.trim();
    if (!P.empty())
      Out.push_back(P.str());
  }
  return Out;
}

std::string joinPathList(const std::vector<std::string> &Paths) {
  std::string Out;
  for (const std::string &P : Paths) {
    if (!Out.empty())
      Out += ';';
    Out += P;
  }
  return Out;
}

llvm::StringRef lineText(const SourceManager &SM, SourceLocation Loc) {
  Loc = SM.getExpansionLoc(Loc);
  if (Loc.isInvalid())
    return {};
  FileID FID = SM.getFileID(Loc);
  bool Invalid = false;
  llvm::StringRef Buf = SM.getBufferData(FID, &Invalid);
  if (Invalid)
    return {};
  unsigned Off = SM.getFileOffset(Loc);
  if (Off >= Buf.size())
    return {};
  size_t Begin = Buf.rfind('\n', Off);
  Begin = Begin == llvm::StringRef::npos ? 0 : Begin + 1;
  size_t End = Buf.find('\n', Off);
  if (End == llvm::StringRef::npos)
    End = Buf.size();
  return Buf.substr(Begin, End - Begin);
}

bool lineHasSanction(const SourceManager &SM, SourceLocation Loc) {
  static const char Marker[] = "dws-lint-sanction:";
  llvm::StringRef Line = lineText(SM, Loc);
  size_t Pos = Line.find(Marker);
  if (Pos == llvm::StringRef::npos)
    return false;
  llvm::StringRef Just = Line.substr(Pos + std::strlen(Marker)).trim();
  return !Just.empty();
}

bool locInAnyPath(const SourceManager &SM, SourceLocation Loc,
                  const std::vector<std::string> &Paths) {
  llvm::StringRef File = SM.getFilename(SM.getExpansionLoc(Loc));
  if (File.empty())
    return false;
  std::string F = File.str();
  std::replace(F.begin(), F.end(), '\\', '/');
  for (const std::string &P : Paths) {
    if (P.empty())
      continue;
    if (F.compare(0, P.size(), P) == 0)
      return true;
    if (F.find("/" + P) != std::string::npos)
      return true;
  }
  return false;
}

}  // namespace dws
}  // namespace tidy
}  // namespace clang
