#include "DwsTidyUtil.h"

#include <algorithm>
#include <cstring>

#include "clang/AST/Decl.h"
#include "clang/AST/DeclTemplate.h"
#include "llvm/ADT/SmallString.h"
#include "llvm/ADT/SmallVector.h"

namespace clang {
namespace tidy {
namespace dws {

std::vector<std::string> splitPathList(llvm::StringRef List) {
  std::vector<std::string> Out;
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  List.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef P : Parts) {
    P = P.trim();
    if (!P.empty())
      Out.push_back(P.str());
  }
  return Out;
}

std::string joinPathList(const std::vector<std::string> &Paths) {
  std::string Out;
  for (const std::string &P : Paths) {
    if (!Out.empty())
      Out += ';';
    Out += P;
  }
  return Out;
}

llvm::StringRef lineText(const SourceManager &SM, SourceLocation Loc) {
  Loc = SM.getExpansionLoc(Loc);
  if (Loc.isInvalid())
    return {};
  FileID FID = SM.getFileID(Loc);
  bool Invalid = false;
  llvm::StringRef Buf = SM.getBufferData(FID, &Invalid);
  if (Invalid)
    return {};
  unsigned Off = SM.getFileOffset(Loc);
  if (Off >= Buf.size())
    return {};
  size_t Begin = Buf.rfind('\n', Off);
  Begin = Begin == llvm::StringRef::npos ? 0 : Begin + 1;
  size_t End = Buf.find('\n', Off);
  if (End == llvm::StringRef::npos)
    End = Buf.size();
  return Buf.substr(Begin, End - Begin);
}

bool lineHasSanction(const SourceManager &SM, SourceLocation Loc) {
  static const char Marker[] = "dws-lint-sanction:";
  llvm::StringRef Line = lineText(SM, Loc);
  size_t Pos = Line.find(Marker);
  if (Pos == llvm::StringRef::npos)
    return false;
  llvm::StringRef Just = Line.substr(Pos + std::strlen(Marker)).trim();
  return !Just.empty();
}

// A line suppresses a layout diagnostic when it carries either sanction
// marker with a non-empty payload.
static bool lineStrHasLayoutSanction(llvm::StringRef Line) {
  static const char LayoutMarker[] = "dws-layout: packed-ok";
  static const char LintMarker[] = "dws-lint-sanction:";
  size_t Pos = Line.find(LayoutMarker);
  if (Pos != llvm::StringRef::npos &&
      !Line.substr(Pos + std::strlen(LayoutMarker)).trim().empty())
    return true;
  Pos = Line.find(LintMarker);
  return Pos != llvm::StringRef::npos &&
         !Line.substr(Pos + std::strlen(LintMarker)).trim().empty();
}

bool hasLayoutSanctionNear(const SourceManager &SM, SourceLocation Loc) {
  SourceLocation ELoc = SM.getExpansionLoc(Loc);
  if (ELoc.isInvalid())
    return false;
  if (lineStrHasLayoutSanction(lineText(SM, ELoc)))
    return true;
  FileID FID = SM.getFileID(ELoc);
  bool Invalid = false;
  llvm::StringRef Buf = SM.getBufferData(FID, &Invalid);
  if (Invalid)
    return false;
  // Walk the contiguous comment block directly above the declaration.
  size_t Off = SM.getFileOffset(ELoc);
  size_t Begin = Buf.rfind('\n', Off);
  Begin = Begin == llvm::StringRef::npos ? 0 : Begin;
  while (Begin > 0) {
    size_t PrevBegin = Buf.rfind('\n', Begin - 1);
    PrevBegin = PrevBegin == llvm::StringRef::npos ? 0 : PrevBegin + 1;
    llvm::StringRef Line = Buf.substr(PrevBegin, Begin - PrevBegin).trim();
    if (!Line.starts_with("//"))
      break;
    if (lineStrHasLayoutSanction(Line))
      return true;
    if (PrevBegin == 0)
      break;
    Begin = PrevBegin - 1;
  }
  return false;
}

bool typeIsHotAtomic(QualType T, const std::vector<std::string> &HotTypes) {
  if (T.isNull())
    return false;
  T = QualType(T->getBaseElementTypeUnsafe(), 0);
  if (T->isDependentType()) {
    const std::string Spelling = T.getAsString();
    if (Spelling.find("atomic") != std::string::npos ||
        Spelling.find("Atomic") != std::string::npos)
      return true;
    for (const std::string &H : HotTypes)
      if (Spelling.find(H) != std::string::npos)
        return true;
    return false;
  }
  const auto *RT = T->getAs<RecordType>();
  if (RT == nullptr)
    return false;
  const RecordDecl *RD = RT->getDecl();
  if (const auto *Spec = dyn_cast<ClassTemplateSpecializationDecl>(RD)) {
    const auto *Tmpl = Spec->getSpecializedTemplate();
    if (Tmpl != nullptr && Tmpl->getQualifiedNameAsString() == "std::atomic")
      return true;
  }
  for (const std::string &H : HotTypes)
    if (RD->getName() == H)
      return true;
  return false;
}

bool locInAnyPath(const SourceManager &SM, SourceLocation Loc,
                  const std::vector<std::string> &Paths) {
  llvm::StringRef File = SM.getFilename(SM.getExpansionLoc(Loc));
  if (File.empty())
    return false;
  std::string F = File.str();
  std::replace(F.begin(), F.end(), '\\', '/');
  for (const std::string &P : Paths) {
    if (P.empty())
      continue;
    if (F.compare(0, P.size(), P) == 0)
      return true;
    if (F.find("/" + P) != std::string::npos)
      return true;
  }
  return false;
}

}  // namespace dws
}  // namespace tidy
}  // namespace clang
