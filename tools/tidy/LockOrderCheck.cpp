#include "LockOrderCheck.h"

#include <fstream>
#include <set>

#include "DwsTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/SmallString.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/Support/Path.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dws {

// Tests are deliberately excluded: the race/deadlock suites construct
// inversions on purpose (hand-over-hand cycles, gate-lock shapes) to
// exercise the *dynamic* lock-order graph, so statically enforcing the
// registry there would outlaw the test corpus.
static const char kDefaultEnforcedPaths[] = "src/";
static const char kDefaultRegistry[] = "scripts/lock_order.txt";

LockOrderCheck::LockOrderCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      RegistryOption(Options.get("Registry", kDefaultRegistry)),
      EnforcedPathsRaw(Options.get("EnforcedPaths", kDefaultEnforcedPaths)) {
  EnforcedPaths = splitPathList(EnforcedPathsRaw);
}

void LockOrderCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "Registry", RegistryOption);
  Options.store(Opts, "EnforcedPaths", EnforcedPathsRaw);
}

static bool parseRegistryFile(const std::string &Path,
                              std::vector<std::string> &Classes,
                              std::vector<std::string> &Duplicates) {
  std::ifstream In(Path);
  if (!In.is_open())
    return false;
  std::set<std::string> Seen;
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    llvm::StringRef Cls = llvm::StringRef(Line).trim();
    if (Cls.empty())
      continue;
    if (!Seen.insert(Cls.str()).second)
      Duplicates.push_back(Cls.str());
    else
      Classes.push_back(Cls.str());
  }
  return true;
}

// Resolves the registry path: as given (absolute, or relative to the
// tool's working directory), then walking up from the main file's
// directory — clang-tidy changes cwd per compile-database entry, so a
// repo-relative default like "scripts/lock_order.txt" must be findable
// from any TU in the tree.
bool LockOrderCheck::ensureRegistry(const SourceManager &SM) {
  if (LoadAttempted)
    return !LoadFailed;
  LoadAttempted = true;
  if (parseRegistryFile(RegistryOption, Classes, DuplicateClasses)) {
    ResolvedRegistry = RegistryOption;
    return true;
  }
  if (const FileEntry *FE = SM.getFileEntryForID(SM.getMainFileID())) {
    llvm::SmallString<256> Dir(FE->getName());
    llvm::sys::path::remove_filename(Dir);
    for (int Depth = 0; Depth < 12 && !Dir.empty(); ++Depth) {
      llvm::SmallString<256> Candidate(Dir);
      llvm::sys::path::append(Candidate, RegistryOption);
      if (parseRegistryFile(std::string(Candidate.str()), Classes,
                            DuplicateClasses)) {
        ResolvedRegistry = std::string(Candidate.str());
        return true;
      }
      llvm::StringRef Parent = llvm::sys::path::parent_path(Dir);
      if (Parent == Dir.str())
        break;
      Dir.assign(Parent.begin(), Parent.end());
    }
  }
  LoadFailed = true;
  return false;
}

int LockOrderCheck::indexOf(StringRef Cls) const {
  for (size_t I = 0; I < Classes.size(); ++I)
    if (Classes[I] == Cls)
      return static_cast<int>(I);
  return -1;
}

void LockOrderCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      varDecl(hasType(hasUnqualifiedDesugaredType(
                  recordType(hasDeclaration(classTemplateSpecializationDecl(
                      hasName("::dws::race::scoped_lock")))))),
              unless(isInTemplateInstantiation()))
          .bind("site"),
      this);
}

void LockOrderCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *VD = Result.Nodes.getNodeAs<VarDecl>("site");
  if (VD == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Begin = SM.getExpansionLoc(VD->getBeginLoc());
  SourceLocation End = SM.getExpansionLoc(VD->getEndLoc());
  if (Begin.isInvalid() || SM.isInSystemHeader(Begin))
    return;
  if (!EnforcedPaths.empty() && !locInAnyPath(SM, Begin, EnforcedPaths))
    return;
  if (lineHasSanction(SM, Begin))
    return;

  if (!ensureRegistry(SM)) {
    if (!RegistryMissingReported) {
      RegistryMissingReported = true;
      diag(Begin, "lock-order registry '%0' not found (set the "
                  "dws-lock-order.Registry option)")
          << RegistryOption;
    }
    return;
  }
  if (!DuplicateClasses.empty()) {
    diag(Begin, "lock-order registry '%0' has duplicate class '%1'")
        << ResolvedRegistry << DuplicateClasses.front();
    DuplicateClasses.clear();  // once per run is enough
  }

  // The tag may sit on any source line the declaration spans (multi-line
  // sites put it after the open paren); macro-wrapped sites resolve to
  // the expansion lines, so the tag lives at the invocation.
  static const char Marker[] = "// lock-order:";
  FileID FID = SM.getFileID(Begin);
  unsigned FirstLine = SM.getExpansionLineNumber(Begin);
  unsigned LastLine = SM.getExpansionLineNumber(End);
  if (SM.getFileID(End) != FID || LastLine < FirstLine)
    LastLine = FirstLine;
  llvm::StringRef Tag;
  for (unsigned Ln = FirstLine; Ln <= LastLine; ++Ln) {
    SourceLocation LineLoc = SM.translateLineCol(FID, Ln, 1);
    llvm::StringRef Text = lineText(SM, LineLoc);
    size_t Pos = Text.find(Marker);
    if (Pos != llvm::StringRef::npos) {
      Tag = Text.substr(Pos + sizeof(Marker) - 1).trim();
      break;
    }
  }
  if (Tag.empty()) {
    diag(Begin, "race::scoped_lock site without a '// lock-order: <class>' "
                "tag (classes are registered in %0)")
        << ResolvedRegistry;
    return;
  }

  llvm::SmallVector<llvm::StringRef, 4> Tokens;
  Tag.split(Tokens, ' ', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  llvm::StringRef Cls = Tokens.empty() ? llvm::StringRef() : Tokens[0];
  int ClsIdx = indexOf(Cls);
  if (ClsIdx < 0) {
    diag(Begin, "lock-order class '%0' is not registered in %1")
        << Cls << ResolvedRegistry;
    return;
  }
  if (Tokens.size() == 1)
    return;
  if (Tokens[1] != "after" || Tokens.size() < 3) {
    diag(Begin, "malformed tag '// lock-order: %0' (want 'CLASS' or "
                "'CLASS after OUTER[,OUTER2]')")
        << Tag;
    return;
  }
  llvm::SmallVector<llvm::StringRef, 4> Outers;
  Tokens[2].split(Outers, ',', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef Outer : Outers) {
    Outer = Outer.trim();
    int OuterIdx = indexOf(Outer);
    if (OuterIdx < 0) {
      diag(Begin, "'after %0' names a class not registered in %1")
          << Outer << ResolvedRegistry;
    } else if (OuterIdx >= ClsIdx) {
      diag(Begin, "acquisition-order inversion: '%0' taken while holding "
                  "'%1', but %2 orders '%1' at or below '%0'")
          << Cls << Outer << ResolvedRegistry;
    }
  }
}

}  // namespace dws
}  // namespace tidy
}  // namespace clang
