#include "TaskGroupEscapeCheck.h"

#include "DwsTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dws {

static const char kDefaultExemptPaths[] =
    "tests/;src/runtime/;src/check/;src/race/";

TaskGroupEscapeCheck::TaskGroupEscapeCheck(StringRef Name,
                                           ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      TaskGroupName(Options.get("TaskGroupName", "::dws::rt::TaskGroup")),
      ExemptPathsRaw(Options.get("ExemptPaths", kDefaultExemptPaths)) {
  ExemptPaths = splitPathList(ExemptPathsRaw);
}

void TaskGroupEscapeCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "TaskGroupName", TaskGroupName);
  Options.store(Opts, "ExemptPaths", ExemptPathsRaw);
}

void TaskGroupEscapeCheck::registerMatchers(MatchFinder *Finder) {
  // Canonical-type matching: `using Group = dws::rt::TaskGroup` cannot
  // hide an escape.
  auto TaskGroup = hasUnqualifiedDesugaredType(
      recordType(hasDeclaration(cxxRecordDecl(hasName(TaskGroupName)))));
  // Desugar the outer level as well: `using GroupPtr = TaskGroup*`
  // must not hide the indirection.
  auto TaskGroupIndirect = qualType(anyOf(
      hasUnqualifiedDesugaredType(
          pointerType(pointee(qualType(TaskGroup)))),
      hasUnqualifiedDesugaredType(
          referenceType(pointee(qualType(TaskGroup))))));

  Finder->addMatcher(
      cxxNewExpr(hasType(pointsTo(qualType(TaskGroup))),
                 unless(isInTemplateInstantiation()))
          .bind("new"),
      this);
  Finder->addMatcher(
      varDecl(hasType(qualType(TaskGroup)),
              unless(hasAutomaticStorageDuration()),
              unless(parmVarDecl()), unless(isInTemplateInstantiation()))
          .bind("staticvar"),
      this);
  Finder->addMatcher(
      fieldDecl(hasType(qualType(TaskGroupIndirect)),
                unless(isInTemplateInstantiation()))
          .bind("field"),
      this);
  Finder->addMatcher(
      varDecl(hasType(qualType(TaskGroupIndirect)), unless(parmVarDecl()),
              unless(isInTemplateInstantiation()))
          .bind("ptrvar"),
      this);
  Finder->addMatcher(
      functionDecl(returns(qualType(TaskGroupIndirect)),
                   unless(isInTemplateInstantiation()))
          .bind("fn"),
      this);
}

void TaskGroupEscapeCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc;
  const char *What = nullptr;
  if (const auto *NE = Result.Nodes.getNodeAs<CXXNewExpr>("new")) {
    Loc = NE->getBeginLoc();
    What = "heap-allocating a TaskGroup";
  } else if (const auto *VD = Result.Nodes.getNodeAs<VarDecl>("staticvar")) {
    Loc = VD->getLocation();
    What = "TaskGroup with static or thread_local storage";
  } else if (const auto *FD = Result.Nodes.getNodeAs<FieldDecl>("field")) {
    Loc = FD->getLocation();
    What = "storing a TaskGroup pointer/reference in a member";
  } else if (const auto *PV = Result.Nodes.getNodeAs<VarDecl>("ptrvar")) {
    Loc = PV->getLocation();
    What = "binding a TaskGroup pointer/reference to a local";
  } else if (const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn")) {
    Loc = Fn->getLocation();
    What = "returning a TaskGroup pointer/reference";
  } else {
    return;
  }
  SourceLocation Exp = SM.getExpansionLoc(Loc);
  if (Exp.isInvalid() || SM.isInSystemHeader(Exp))
    return;
  if (!ExemptPaths.empty() && locInAnyPath(SM, Exp, ExemptPaths))
    return;
  if (lineHasSanction(SM, Exp))
    return;
  diag(Exp, "%0 lets the group escape its frame; TaskGroup must stay "
            "automatic so wait() runs before unwind (or sanction the line "
            "with '// dws-lint-sanction: <justification>')")
      << What;
}

}  // namespace dws
}  // namespace tidy
}  // namespace clang
