#include "AtomicsPolicyCheck.h"

#include "DwsTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dws {

AtomicsPolicyCheck::AtomicsPolicyCheck(StringRef Name,
                                       ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      PolicyParam(Options.get("PolicyParam", "Policy")) {}

void AtomicsPolicyCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "PolicyParam", PolicyParam);
}

static bool listHasTypeParam(const TemplateParameterList *Params,
                             StringRef Name) {
  if (Params == nullptr)
    return false;
  for (const NamedDecl *P : *Params)
    if (isa<TemplateTypeParmDecl>(P) && P->getName() == Name)
      return true;
  return false;
}

// Walks the declaration's context chain looking for a class or function
// template whose parameter list names the injected policy. Returns the
// template's name (for the diagnostic) or an empty ref.
static StringRef enclosingPolicyTemplate(const Decl *D, StringRef Param) {
  if (D == nullptr)
    return {};
  // The starting decl itself may be the described template's pattern
  // (a function template like CoreOps-style free helpers).
  if (const auto *FD = dyn_cast<FunctionDecl>(D)) {
    if (const FunctionTemplateDecl *FT = FD->getDescribedFunctionTemplate())
      if (listHasTypeParam(FT->getTemplateParameters(), Param))
        return FT->getName();
  }
  for (const DeclContext *DC = D->getDeclContext(); DC != nullptr;
       DC = DC->getParent()) {
    if (const auto *RD = dyn_cast<CXXRecordDecl>(DC)) {
      if (const ClassTemplateDecl *CT = RD->getDescribedClassTemplate())
        if (listHasTypeParam(CT->getTemplateParameters(), Param))
          return CT->getName();
    }
    if (const auto *FD = dyn_cast<FunctionDecl>(DC)) {
      if (const FunctionTemplateDecl *FT = FD->getDescribedFunctionTemplate())
        if (listHasTypeParam(FT->getTemplateParameters(), Param))
          return FT->getName();
    }
  }
  return {};
}

void AtomicsPolicyCheck::registerMatchers(MatchFinder *Finder) {
  // A declaration whose *written* type resolves to std::atomic. Inside a
  // Policy-templated body, `Atomic<U>` / `typename Policy::template
  // atomic<U>` stays dependent and never desugars to a record, so only
  // genuinely raw (or typedef'd-raw) atomics match. Instantiations are
  // excluded — in TaskPool<..., StdAtomicsPolicy> the alias legitimately
  // becomes std::atomic.
  auto RawAtomicType = hasType(hasUnqualifiedDesugaredType(
      recordType(hasDeclaration(classTemplateSpecializationDecl(
          hasName("::std::atomic"))))));
  Finder->addMatcher(
      fieldDecl(RawAtomicType, unless(isInTemplateInstantiation()))
          .bind("decl"),
      this);
  Finder->addMatcher(
      varDecl(RawAtomicType, unless(isInTemplateInstantiation())).bind("decl"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::std::atomic_thread_fence",
                                              "::std::atomic_signal_fence"))),
               unless(isInTemplateInstantiation()),
               hasAncestor(functionDecl().bind("fencefn")))
          .bind("fence"),
      this);
}

void AtomicsPolicyCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  if (const auto *D = Result.Nodes.getNodeAs<DeclaratorDecl>("decl")) {
    StringRef Owner = enclosingPolicyTemplate(D, PolicyParam);
    if (Owner.empty())
      return;
    SourceLocation Loc = D->getLocation();
    if (Loc.isInvalid() || SM.isInSystemHeader(SM.getExpansionLoc(Loc)))
      return;
    if (lineHasSanction(SM, Loc))
      return;
    diag(Loc, "raw std::atomic declaration inside the %0-templated '%1'; "
              "declare it as 'typename %0::template atomic<T>' so the model "
              "checker can instrument it (or sanction the line with "
              "'// dws-lint-sanction: <justification>')")
        << PolicyParam << Owner;
    return;
  }
  if (const auto *E = Result.Nodes.getNodeAs<CallExpr>("fence")) {
    const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("fencefn");
    StringRef Owner = enclosingPolicyTemplate(Fn, PolicyParam);
    if (Owner.empty())
      return;
    SourceLocation Loc = E->getBeginLoc();
    if (Loc.isInvalid() || SM.isInSystemHeader(SM.getExpansionLoc(Loc)))
      return;
    if (lineHasSanction(SM, Loc))
      return;
    diag(Loc, "raw atomic fence inside the %0-templated '%1'; call "
              "'%0::fence(order)' so the model checker can instrument it")
        << PolicyParam << Owner;
  }
}

}  // namespace dws
}  // namespace tidy
}  // namespace clang
