// Fixture for dws-atomics-policy: raw std::atomic declarations and raw
// fences inside Policy-templated code must diagnose; the dependent
// Policy::atomic alias, non-Policy types, and std::memory_order
// arguments must not.
#include "dws_stubs.hpp"

typedef std::atomic<unsigned long> stat_t;  // typedef must not hide rawness

template <typename Policy>
class PooledCounter {
 public:
  using Atomic64 = typename Policy::template atomic<unsigned long>;
  Atomic64 good_;  // dependent alias: resolved by the injected policy
  // expect-next-line: dws-atomics-policy
  std::atomic<int> raw_;
  // expect-next-line: dws-atomics-policy
  stat_t typedefd_;
  std::atomic<int> waved_;  // dws-lint-sanction: monitoring-only counter kept raw on purpose

  void flush() {
    // expect-next-line: dws-atomics-policy
    std::atomic_thread_fence(std::memory_order_release);
    // The policy fence takes a std::memory_order — order constants are
    // the policy vocabulary, never flagged.
    Policy::fence(std::memory_order_release);
  }
};

template <typename Policy>
void drain_with_fence() {
  // Function templates with a Policy parameter are held to the same
  // rule as class templates.
  // expect-next-line: dws-atomics-policy
  std::atomic_signal_fence(std::memory_order_seq_cst);
  Policy::fence(std::memory_order_acquire);
}

// Not Policy-templated: out of the check's scope entirely.
class PlainCache {
 public:
  std::atomic<int> fine_;
  void sync() { std::atomic_thread_fence(std::memory_order_seq_cst); }
};

stat_t global_stats;  // file scope, no Policy in sight: fine

// Instantiating with the std policy legitimately materializes
// std::atomic members — instantiations are excluded.
PooledCounter<dws::rt::StdAtomicsPolicy> instantiated;
