// Hermetic declarations for the dws-* check fixtures. The fixtures are
// parsed by clang-tidy, never compiled or linked, so this header mimics
// just enough of <thread>/<mutex>/<atomic> and the dws runtime/race API
// surface for the AST matchers to resolve qualified names — no system
// headers, so the corpus parses identically on any host. (Declaring
// into namespace std is fine here for the same reason: parse-only.)
#pragma once

typedef int dws_pid_t;
typedef unsigned long pthread_t;
struct pthread_attr_t {};
extern "C" int kill(dws_pid_t pid, int sig);
extern "C" int pthread_create(pthread_t *t, const pthread_attr_t *a,
                              void *(*fn)(void *), void *arg);

namespace std {

using size_t = decltype(sizeof(0));
using ptrdiff_t = decltype((char *)0 - (char *)0);

template <typename T> T &&move(T &v) { return static_cast<T &&>(v); }

enum memory_order {
  memory_order_relaxed,
  memory_order_acquire,
  memory_order_release,
  memory_order_acq_rel,
  memory_order_seq_cst
};
extern void atomic_thread_fence(memory_order);
extern void atomic_signal_fence(memory_order);

template <typename T> struct atomic {
  atomic() {}
  atomic(T v) : v_(v) {}
  T load(memory_order = memory_order_seq_cst) const { return v_; }
  void store(T v, memory_order = memory_order_seq_cst) { v_ = v; }
  T fetch_add(T d, memory_order = memory_order_seq_cst) {
    T o = v_;
    v_ = v_ + d;
    return o;
  }
  T v_;
};

struct thread {
  thread() {}
  template <typename F> explicit thread(F f) { (void)f; }
  void join() {}
  static unsigned hardware_concurrency() { return 1; }
};
struct jthread {
  jthread() {}
  template <typename F> explicit jthread(F f) { (void)f; }
};

struct mutex {
  void lock() {}
  void unlock() {}
  bool try_lock() { return true; }
};
struct recursive_mutex {
  void lock() {}
  void unlock() {}
};

template <typename M> struct lock_guard {
  explicit lock_guard(M &m) : m_(m) {}
  ~lock_guard() { }
  M &m_;
};
template <typename M> struct unique_lock {
  explicit unique_lock(M &m) : m_(m) {}
  M &m_;
};
template <typename... M> struct scoped_lock {
  explicit scoped_lock(M &...m) { (void)sizeof...(m); }
};

template <typename T> struct vector {
  vector() {}
  explicit vector(size_t n) : n_(n) {}
  T &operator[](size_t i) { return d_[i]; }
  const T &operator[](size_t i) const { return d_[i]; }
  T *data() { return d_; }
  size_t size() const { return n_; }
  T *d_ = nullptr;
  size_t n_ = 0;
};

template <typename T> struct unique_ptr {
  unique_ptr() {}
  T *get() const { return p_; }
  T *p_ = nullptr;
};
template <typename T> struct unique_ptr<T[]> {
  unique_ptr() {}
  T &operator[](size_t i) const { return p_[i]; }
  T *p_ = nullptr;
};

template <typename T, size_t N> struct array {
  T &operator[](size_t i) { return d_[i]; }
  T d_[N];
};

}  // namespace std

// The field-annotation macros from src/util/layout.hpp, expanded the same
// way (the fixtures are always parsed by clang, so no #ifdef dance).
#define DWS_OWNED_BY(owner) [[clang::annotate("dws::owned_by:" #owner)]]
#define DWS_SHARED [[clang::annotate("dws::shared")]]

namespace dws {
namespace race {

template <typename T>
void read(const T *p, std::size_t count = 1, std::ptrdiff_t stride = 1) {
  (void)p;
  (void)count;
  (void)stride;
}
template <typename T>
void write(T *p, std::size_t count = 1, std::ptrdiff_t stride = 1) {
  (void)p;
  (void)count;
  (void)stride;
}

class region {
public:
  explicit region(const char *label) { (void)label; }
};

template <typename Mutex> class scoped_lock {
public:
  explicit scoped_lock(Mutex &m) : m_(m) {}
  Mutex &m_;
};

}  // namespace race

namespace rt {

class TaskGroup {
public:
  TaskGroup() {}
  void wait() {}
};

class Scheduler {
public:
  template <typename F> void spawn(TaskGroup &g, F f) {
    (void)g;
    f();
  }
};

template <typename F>
void parallel_for(Scheduler &s, std::size_t begin, std::size_t end, F f) {
  (void)s;
  for (std::size_t i = begin; i < end; ++i)
    f(i);
}

struct StdAtomicsPolicy {
  template <typename T> using atomic = std::atomic<T>;
  static void fence(std::memory_order o) { std::atomic_thread_fence(o); }
};

}  // namespace rt
}  // namespace dws
