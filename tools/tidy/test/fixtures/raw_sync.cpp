// Fixture for dws-raw-sync. `// expect: <check>` marks a line that must
// produce exactly one diagnostic; `// expect-next-line: <check>` marks
// the following line. Everything unmarked must stay silent.
#include "dws_stubs.hpp"

using WorkerThread = std::thread;  // the alias must not hide the spawn

void spawn_raw() {
  std::thread t([] {});   // expect: dws-raw-sync
  t.join();
  WorkerThread u([] {});  // expect: dws-raw-sync
  u.join();
  std::jthread j([] {});  // expect: dws-raw-sync
}

void os_escapes(dws_pid_t victim) {
  kill(victim, 9);  // expect: dws-raw-sync
  pthread_t tid;
  pthread_create(&tid, nullptr, nullptr, nullptr);  // expect: dws-raw-sync
}

void raw_guards(std::mutex &m) {
  std::lock_guard<std::mutex> g(m);   // expect: dws-raw-sync
  std::unique_lock<std::mutex> u(m);  // expect: dws-raw-sync
  m.lock();    // expect: dws-raw-sync
  m.unlock();  // expect: dws-raw-sync
}

void sanctioned(std::mutex &m) {
  std::thread s([] {});  // dws-lint-sanction: fixture exercising the suppression path
  s.join();
  std::lock_guard<std::mutex> g(m);  // dws-lint-sanction: fixture exercising the suppression path
  // An empty justification must NOT suppress.
  // expect-next-line: dws-raw-sync
  std::thread e([] {});  // dws-lint-sanction:
  e.join();
}

void negatives(std::mutex &m) {
  // A core-count query constructs nothing — the regex pass used to
  // need an allowlist entry for this; the AST check simply never fires.
  unsigned n = std::thread::hardware_concurrency();
  (void)n;
  // The discipline-approved guard is not a raw guard.
  dws::race::scoped_lock<std::mutex> ok(m);
  (void)ok;
}
