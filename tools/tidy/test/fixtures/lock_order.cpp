// Fixture for dws-lock-order (runner options: Registry points at
// lock_order_registry.txt next to this file, EnforcedPaths=fixtures/).
// Registry order, outermost first: table.shard, sched.inbox,
// reduce.combine.
#include "dws_stubs.hpp"

// Macro-wrapped site: the check resolves the declaration to its macro
// *expansion* line, so the tag sits at the invocation — exactly what
// the regex pass could not see.
#define WITH_LOCK(m) dws::race::scoped_lock<std::mutex> wl_guard_(m)

namespace rr = dws::race;
using Guard = rr::scoped_lock<std::mutex>;  // alias must not hide a site

void tagged_sites(std::mutex &a, std::mutex &b) {
  rr::scoped_lock<std::mutex> ok(a);  // lock-order: table.shard
  Guard aliased(b);                   // lock-order: sched.inbox
  // Multi-line site: the tag may sit on any line the declaration spans.
  rr::scoped_lock<std::mutex> multi(
      b);  // lock-order: sched.inbox after table.shard
  (void)ok;
  (void)aliased;
  (void)multi;
}

void bad_sites(std::mutex &a) {
  // expect-next-line: dws-lock-order
  rr::scoped_lock<std::mutex> missing(a);
  // expect-next-line: dws-lock-order
  rr::scoped_lock<std::mutex> unregistered(a);  // lock-order: nosuch.class
  // expect-next-line: dws-lock-order
  rr::scoped_lock<std::mutex> malformed(a);  // lock-order: table.shard following sched.inbox
  // Back edge: reduce.combine is innermost, so holding it while taking
  // table.shard inverts the registry order.
  // expect-next-line: dws-lock-order
  rr::scoped_lock<std::mutex> inverted(a);  // lock-order: table.shard after reduce.combine
  (void)missing;
  (void)unregistered;
  (void)malformed;
  (void)inverted;
}

void macro_sites(std::mutex &a, std::mutex &b) {
  WITH_LOCK(a);  // lock-order: table.shard
  // expect-next-line: dws-lock-order
  WITH_LOCK(b);
}

void sanctioned_site(std::mutex &a) {
  rr::scoped_lock<std::mutex> waved(a);  // dws-lint-sanction: fixture exercising the suppression path
  (void)waved;
}
