// Fixture for dws-false-sharing.
//
// Rule 1: concurrency-hot fields (std::atomic through any typedef chain,
// or a HotTypes record like RelaxedCounter) must declare their sharing
// domain with DWS_OWNED_BY/DWS_SHARED or carry a layout sanction.
// Rule 2: annotated fields of *different* domains must not share a
// 64-byte cache line — concrete records by their real offsets, dependent
// template patterns by declaration adjacency without an alignas boundary.
#include "dws_stubs.hpp"

// --- Rule 1: hot but unannotated -------------------------------------

struct Unannotated {
  // expect-next-line: dws-false-sharing
  std::atomic<int> counter_;
};

// A typedef chain must not hide the atomic underneath.
typedef std::atomic<unsigned long> stat_t;
struct TypedefLaundered {
  // expect-next-line: dws-false-sharing
  stat_t stats_;
};

// The HotTypes list extends "hot" beyond std::atomic itself.
struct RelaxedCounter {
  // dws-layout: packed-ok single-field wrapper, wrapping fields declare the domain
  std::atomic<unsigned long> v_;
};
struct StatsBlock {
  // expect-next-line: dws-false-sharing
  RelaxedCounter tasks_;
};

// A layout sanction in the comment block above the field suppresses.
struct SanctionedField {
  // dws-layout: packed-ok monitoring word, written once at shutdown
  std::atomic<int> drained_;
};

// An inline dws-lint-sanction on the declaration line also suppresses.
struct InlineSanctionedField {
  std::atomic<int> spilled_;  // dws-lint-sanction: monitoring-only counter kept packed on purpose
};

// --- Rule 2: cross-domain packing, concrete offsets -------------------

struct MixedPacked {
  DWS_SHARED std::atomic<int> claim_word_;
  // expect-next-line: dws-false-sharing
  DWS_OWNED_BY(owner) std::atomic<int> local_count_;
};

// alignas(64) pushes the owner word onto its own line: clean.
struct MixedStrided {
  DWS_SHARED std::atomic<int> claim_word_;
  alignas(64) DWS_OWNED_BY(owner) std::atomic<int> local_count_;
};

// Same domain packing together is the point of the annotation, not a
// conflict.
struct OwnerBlock {
  DWS_OWNED_BY(owner) std::atomic<int> a_;
  DWS_OWNED_BY(owner) std::atomic<int> b_;
  DWS_OWNED_BY(owner) std::atomic<int> c_;
};

// A field-level sanction on the later field suppresses the pair.
struct SanctionedPacking {
  DWS_SHARED std::atomic<int> flag_;
  // dws-layout: packed-ok cold configuration word, written before threads start
  DWS_OWNED_BY(owner) std::atomic<int> config_;
};

// A struct-level sanction (comment block above the record) waves the
// whole layout through.
// dws-layout: packed-ok heartbeat-rate writes only, measured interference is noise
struct WholeStructSanctioned {
  DWS_SHARED std::atomic<int> liveness_;
  DWS_OWNED_BY(program) std::atomic<unsigned> epoch_;
};

// Unannotated plain fields never conflict with anything: cold by the
// discipline's definition.
struct ColdNeighbours {
  DWS_SHARED std::atomic<int> word_;
  int configured_cores_;
  unsigned long seed_;
};

// --- Rule 2: dependent template patterns (adjacency heuristic) --------

template <typename Policy>
struct DependentPacked {
  using Word = typename Policy::template atomic<unsigned>;
  DWS_SHARED Word cas_word_;
  // expect-next-line: dws-false-sharing
  DWS_OWNED_BY(owner) Word owner_word_;
};

template <typename Policy>
struct DependentStrided {
  using Word = typename Policy::template atomic<unsigned>;
  DWS_SHARED Word cas_word_;
  alignas(64) DWS_OWNED_BY(owner) Word owner_word_;
};

template <typename Policy>
struct DependentSanctioned {
  using Word = typename Policy::template atomic<unsigned>;
  DWS_SHARED Word cas_word_;
  // dws-layout: packed-ok single-writer handoff pair, never CASed concurrently
  DWS_OWNED_BY(owner) Word owner_word_;
};

// Instantiations are excluded: the pattern already carries the report.
DependentStrided<dws::rt::StdAtomicsPolicy> instantiated;
