// Fixture for dws-taskgroup-escape (runner option: ExemptPaths points
// away from this file). TaskGroup must stay automatic; every escape
// vector below must diagnose, the borrowing idioms must not.
#include "dws_stubs.hpp"

namespace rt = dws::rt;
using Group = rt::TaskGroup;      // alias must not hide the type
using GroupPtr = rt::TaskGroup *; // nor the indirection

// expect-next-line: dws-taskgroup-escape
rt::TaskGroup *make_group() {
  // expect-next-line: dws-taskgroup-escape
  return new rt::TaskGroup();
}

// expect-next-line: dws-taskgroup-escape
Group *typedef_new() {
  // expect-next-line: dws-taskgroup-escape
  GroupPtr g = nullptr;
  // expect-next-line: dws-taskgroup-escape
  g = new Group();
  return g;
}

// expect-next-line: dws-taskgroup-escape
static rt::TaskGroup g_global;

void tls_group() {
  // expect-next-line: dws-taskgroup-escape
  thread_local rt::TaskGroup g_tls;
  (void)g_tls;
}

struct Stash {
  // expect-next-line: dws-taskgroup-escape
  rt::TaskGroup *parked_;
  // expect-next-line: dws-taskgroup-escape
  GroupPtr aliased_;
};

// expect-next-line: dws-taskgroup-escape
rt::TaskGroup &reborrow(rt::TaskGroup &g) { return g; }

struct Observer {
  const rt::TaskGroup *watched_;  // dws-lint-sanction: detector keys shadow state by group identity
};

// NEGATIVE: the blessed shape — automatic group, borrowed by reference
// down the call tree, waited before unwind.
void helper(rt::TaskGroup &g) { g.wait(); }

void run(rt::Scheduler &s) {
  rt::TaskGroup g;
  s.spawn(g, [] {});
  helper(g);
  g.wait();
}
