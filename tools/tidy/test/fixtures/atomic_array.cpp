// Fixture for dws-atomic-array: arrays (C arrays, std::array,
// std::vector, std::unique_ptr<T[]>) of sub-cacheline atomic elements —
// the packed CoreTable::Slot pattern, 16 independently-CASed words per
// 64-byte line — must be strided to a line per element or sanctioned.
#include "dws_stubs.hpp"

// --- concrete containers of bare atomics ------------------------------

struct PackedFlags {
  // expect-next-line: dws-atomic-array
  std::atomic<unsigned> words_[64];
};

struct VectorOfAtomics {
  // expect-next-line: dws-atomic-array
  std::vector<std::atomic<int>> flags_;
};

struct ArrayOfAtomics {
  // expect-next-line: dws-atomic-array
  std::array<std::atomic<int>, 16> slots_;
};

struct HeapRingOfAtomics {
  // expect-next-line: dws-atomic-array
  std::unique_ptr<std::atomic<unsigned>[]> cells_;
};

// A single-element unique_ptr owns one word: nothing packs a line.
struct SingleAtomic {
  std::unique_ptr<std::atomic<int>> word_;
};

// Typedef chains must not hide the element type.
typedef std::atomic<int> word_t;
struct TypedefLaundered {
  // expect-next-line: dws-atomic-array
  word_t words_[16];
};

// --- record elements: the CAS word hides one struct level down --------

struct PackedSlot {
  std::atomic<unsigned> user_;
};
struct PackedTable {
  // expect-next-line: dws-atomic-array
  PackedSlot slots_[64];
};

// A line-aligned element type is exactly the prescribed fix: clean.
struct alignas(64) StridedSlot {
  std::atomic<unsigned> user_;
};
struct StridedTable {
  StridedSlot slots_[64];
};

// --- sanctions --------------------------------------------------------

struct SanctionedRing {
  // dws-layout: packed-ok ring elements are single-writer handoff cells, never CAS targets
  std::unique_ptr<std::atomic<int>[]> cells_;
};

struct InlineSanctionedRing {
  std::atomic<int> cells_[32];  // dws-lint-sanction: startup-only bitmap written before threads exist
};

// --- cold arrays never flag -------------------------------------------

struct ColdStorage {
  int raw_[64];
  std::vector<int> values_;
  std::vector<PackedSlot *> pointers_;  // pointers to slots, not slots
};

// --- variables (globals and locals), not just fields ------------------

// expect-next-line: dws-atomic-array
std::atomic<int> g_core_flags[32];

void stack_table() {
  // expect-next-line: dws-atomic-array
  std::atomic<unsigned> claims[16];
  (void)claims;
}

// --- dependent template patterns --------------------------------------

// The Policy-injected alias never desugars; the written spelling decides.
template <typename Policy>
struct DependentRing {
  template <typename U> using Atomic = typename Policy::template atomic<U>;
  // expect-next-line: dws-atomic-array
  std::unique_ptr<Atomic<unsigned>[]> cells_;
};

template <typename Policy>
struct DependentSanctionedRing {
  template <typename U> using Atomic = typename Policy::template atomic<U>;
  // dws-layout: packed-ok relaxed handoff cells owned by the deque protocol
  std::unique_ptr<Atomic<unsigned>[]> cells_;
};

// Dependent record elements resolve through the primary template: a
// packed slot pattern flags, an alignas(64) pattern is the fix.
template <typename Policy>
struct DepPackedSlot {
  typename Policy::template atomic<unsigned> user_;
};
template <typename Policy>
struct DepPackedTable {
  // expect-next-line: dws-atomic-array
  DepPackedSlot<Policy> slots_[8];
};

template <typename Policy>
struct alignas(64) DepStridedSlot {
  typename Policy::template atomic<unsigned> user_;
};
template <typename Policy>
struct DepStridedTable {
  DepStridedSlot<Policy> slots_[8];
};

// Instantiations are excluded: the pattern already carries the report.
DependentRing<dws::rt::StdAtomicsPolicy> instantiated;
