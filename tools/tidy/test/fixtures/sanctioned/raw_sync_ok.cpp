// Negative fixture for dws-raw-sync: this file lives under the
// sanctioned/ directory the runner passes as every *SanctionedPaths
// option, so none of these otherwise-flagged constructs may diagnose.
#include "../dws_stubs.hpp"

void sanctioned_constructs(std::mutex &m, dws_pid_t victim) {
  std::thread t([] {});
  t.join();
  kill(victim, 9);
  pthread_t tid;
  pthread_create(&tid, nullptr, nullptr, nullptr);
  std::lock_guard<std::mutex> g(m);
  m.lock();
  m.unlock();
}
