// Fixture for dws-annotation-coverage (runner option:
// AppsPaths=fixtures/). Spawn-lambda bodies must cover every access
// through captured state with a race annotation; coverage follows
// pointer derivations back to the captured root, so annotating one
// derived pointer covers its siblings — the in-tree stencil idiom.
#include "dws_stubs.hpp"

namespace rt = dws::rt;
namespace race = dws::race;

struct Grid {
  double *cur_;
  double *nxt_;
  std::size_t cols_;
  rt::Scheduler sched_;

  // POSITIVE: strided column write with no annotation anywhere.
  void column_sweep(std::size_t rows, std::size_t c) {
    rt::TaskGroup g;
    sched_.spawn(g, [this, rows, c] {
      for (std::size_t r = 0; r < rows; ++r)
        nxt_[r * cols_ + c] = 1.0;  // expect: dws-annotation-coverage
    });
    g.wait();
  }

  // POSITIVE: both buffers touched, neither annotated — one diagnostic
  // per uncovered root, at its first access.
  void copy_row(std::size_t r) {
    rt::TaskGroup g;
    sched_.spawn(g, [this, r] {
      const double *mid = &cur_[r * cols_];
      double *out = &nxt_[r * cols_];
      for (std::size_t c = 0; c < cols_; ++c) {
        double v = mid[c];  // expect: dws-annotation-coverage
        out[c] = v;         // expect: dws-annotation-coverage
      }
    });
    g.wait();
  }

  // NEGATIVE: sibling-pointer coverage. race::read(up, 3*cols_) covers
  // `mid` too — both derive from the same captured root `cur_`.
  void stencil_row(std::size_t r) {
    rt::TaskGroup g;
    sched_.spawn(g, [this, r] {
      const double *up = &cur_[(r - 1) * cols_];
      const double *mid = &cur_[r * cols_];
      double *out = &nxt_[r * cols_];
      race::read(up, 3 * cols_);
      race::write(out, cols_);
      for (std::size_t c = 0; c < cols_; ++c)
        out[c] = up[c] + mid[c];
    });
    g.wait();
  }

  // NEGATIVE: a race::region labels the whole body's provenance.
  void bulk(std::size_t n) {
    rt::TaskGroup g;
    sched_.spawn(g, [this, n] {
      race::region scope("grid.bulk");
      for (std::size_t c = 0; c < n; ++c)
        nxt_[c] = cur_[c];
    });
    g.wait();
  }

  // NEGATIVE: task-local scratch needs no annotation; the captured
  // buffer is annotated directly.
  void reduce_tile() {
    rt::TaskGroup g;
    sched_.spawn(g, [this] {
      double acc[4] = {0.0, 0.0, 0.0, 0.0};
      for (std::size_t c = 0; c < 4; ++c)
        acc[c] = acc[c] + 1.0;
      race::write(nxt_, 4);
      nxt_[0] = acc[0] + acc[1] + acc[2] + acc[3];
    });
    g.wait();
  }

  // POSITIVE, named-body idiom: the lambda lives in a local handed to
  // spawn later — still a spawn body.
  void sor_sweep(std::size_t rows) {
    rt::TaskGroup g;
    auto row_body = [this](std::size_t r) {
      double *row = &nxt_[r * cols_];
      row[0] = 1.0;  // expect: dws-annotation-coverage
    };
    for (std::size_t r = 0; r < rows; ++r)
      sched_.spawn(g, row_body);
    g.wait();
  }

  // NEGATIVE: a lambda-typed local that is never spawned is not a task
  // body; whatever it touches is the caller's (serial) business.
  void helper_only() {
    auto probe = [this] { return cur_[0]; };
    (void)probe;
  }

  // NEGATIVE: direct parallel_for call site; annotated through the
  // captured root itself.
  void fill(std::size_t n) {
    rt::parallel_for(sched_, 0, n, [this](std::size_t i) {
      race::write(cur_, 1);
      cur_[i] = 0.0;
    });
  }

  // NEGATIVE: a sanction on the introducer line waives the whole body.
  void waved(std::size_t n) {
    rt::TaskGroup g;
    sched_.spawn(g, [this, n] {  // dws-lint-sanction: footprint annotated by the caller one level up
      for (std::size_t c = 0; c < n; ++c)
        cur_[c] = 0.0;
    });
    g.wait();
  }
};
