// Drives the real clang-tidy binary with `-load=<dws_tidy_checks>` over
// the fixture corpus and asserts exact agreement with the fixtures'
// `// expect: <check>` / `// expect-next-line: <check>` markers — every
// expected diagnostic present, no unexpected ones, per (file, line).
//
// Compile definitions injected by CMake:
//   DWS_CLANG_TIDY   absolute path of the clang-tidy binary
//   DWS_TIDY_PLUGIN  absolute path of libdws_tidy_checks
//   DWS_FIXTURE_DIR  absolute path of the fixtures/ directory

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::string runCommand(const std::string &cmd) {
  std::string out;
  FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr)
    return out;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
    out.append(buf, n);
  pclose(pipe);
  return out;
}

// (line -> count) of diagnostics expected in a fixture file.
std::map<int, int> parseExpectations(const std::string &path,
                                     const std::string &check) {
  std::map<int, int> expected;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open fixture " << path;
  std::string line;
  int lineno = 0;
  const std::string same = "// expect: " + check;
  const std::string next = "// expect-next-line: " + check;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find(same) != std::string::npos)
      ++expected[lineno];
    if (line.find(next) != std::string::npos)
      ++expected[lineno + 1];
  }
  return expected;
}

// (line -> count) of `[check]` warnings clang-tidy reported *in the
// fixture file itself* (stub-header noise and "N warnings generated"
// chatter are ignored).
std::map<int, int> parseDiagnostics(const std::string &output,
                                    const std::string &fixturePath,
                                    const std::string &check) {
  std::map<int, int> got;
  std::istringstream in(output);
  std::string line;
  const std::string tag = "[" + check + "]";
  while (std::getline(in, line)) {
    if (line.find(": warning: ") == std::string::npos ||
        line.find(tag) == std::string::npos)
      continue;
    size_t firstColon = line.find(':');
    if (firstColon == std::string::npos)
      continue;
    // Windows-style drive letters are not a concern here; the first
    // colon ends the path.
    std::string file = line.substr(0, firstColon);
    if (file.size() < fixturePath.size() ||
        file.compare(file.size() - fixturePath.size(), fixturePath.size(),
                     fixturePath) != 0)
      continue;
    size_t secondColon = line.find(':', firstColon + 1);
    if (secondColon == std::string::npos)
      continue;
    int lineno =
        std::atoi(line.substr(firstColon + 1, secondColon - firstColon - 1)
                      .c_str());
    ++got[lineno];
  }
  return got;
}

std::string describe(const std::map<int, int> &m) {
  std::string s;
  for (const auto &kv : m) {
    if (!s.empty())
      s += ", ";
    s += "line " + std::to_string(kv.first);
    if (kv.second > 1)
      s += " (x" + std::to_string(kv.second) + ")";
  }
  return s.empty() ? "<none>" : s;
}

// Runs one check over one fixture and compares against its markers.
void runFixture(const std::string &fixture, const std::string &check,
                const std::vector<std::pair<std::string, std::string>>
                    &options) {
  const std::string path = std::string(DWS_FIXTURE_DIR) + "/" + fixture;

  std::string config = "{Checks: '-*," + check + "', CheckOptions: [";
  bool first = true;
  for (const auto &kv : options) {
    if (!first)
      config += ", ";
    first = false;
    config += "{key: '" + check + "." + kv.first + "', value: '" + kv.second +
              "'}";
  }
  config += "]}";

  std::string cmd = std::string(DWS_CLANG_TIDY) + " -load=" + DWS_TIDY_PLUGIN +
                    " --config=\"" + config + "\" " + path +
                    " -- -std=c++17";
  std::string output = runCommand(cmd);

  // A fixture that fails to *parse* would otherwise surface as a
  // baffling expectation diff.
  EXPECT_EQ(output.find(" error: "), std::string::npos)
      << "clang-tidy reported errors over " << fixture << ":\n"
      << output;

  std::map<int, int> expected = parseExpectations(path, check);
  std::map<int, int> got = parseDiagnostics(output, fixture, check);

  EXPECT_EQ(expected, got)
      << check << " over " << fixture << "\n  expected: " << describe(expected)
      << "\n  got:      " << describe(got) << "\nfull clang-tidy output:\n"
      << output;
}

TEST(DwsTidyPlugin, Loads) {
  std::string cmd = std::string(DWS_CLANG_TIDY) + " -load=" + DWS_TIDY_PLUGIN +
                    " --checks=-*,dws-* --list-checks";
  std::string output = runCommand(cmd);
  for (const char *check :
       {"dws-raw-sync", "dws-lock-order", "dws-annotation-coverage",
        "dws-atomics-policy", "dws-taskgroup-escape", "dws-false-sharing",
        "dws-atomic-array"}) {
    EXPECT_NE(output.find(check), std::string::npos)
        << "plugin did not register " << check << "; --list-checks said:\n"
        << output;
  }
}

TEST(DwsTidyPlugin, RawSync) {
  runFixture("raw_sync.cpp", "dws-raw-sync",
             {{"ThreadSanctionedPaths", "sanctioned/"},
              {"KillSanctionedPaths", "sanctioned/"},
              {"MutexSanctionedPaths", "sanctioned/"}});
}

TEST(DwsTidyPlugin, RawSyncSanctionedDir) {
  runFixture("sanctioned/raw_sync_ok.cpp", "dws-raw-sync",
             {{"ThreadSanctionedPaths", "sanctioned/"},
              {"KillSanctionedPaths", "sanctioned/"},
              {"MutexSanctionedPaths", "sanctioned/"}});
}

TEST(DwsTidyPlugin, LockOrder) {
  runFixture("lock_order.cpp", "dws-lock-order",
             {{"Registry",
               std::string(DWS_FIXTURE_DIR) + "/lock_order_registry.txt"},
              {"EnforcedPaths", "fixtures/"}});
}

TEST(DwsTidyPlugin, AnnotationCoverage) {
  runFixture("annotation_coverage.cpp", "dws-annotation-coverage",
             {{"AppsPaths", "fixtures/"}});
}

TEST(DwsTidyPlugin, AtomicsPolicy) {
  runFixture("atomics_policy.cpp", "dws-atomics-policy", {});
}

TEST(DwsTidyPlugin, TaskGroupEscape) {
  runFixture("taskgroup_escape.cpp", "dws-taskgroup-escape",
             {{"ExemptPaths", "no-such-dir/"}});
}

TEST(DwsTidyPlugin, FalseSharing) {
  runFixture("false_sharing.cpp", "dws-false-sharing",
             {{"EnforcedPaths", "fixtures/"}});
}

TEST(DwsTidyPlugin, AtomicArray) {
  runFixture("atomic_array.cpp", "dws-atomic-array",
             {{"EnforcedPaths", "fixtures/"}});
}

}  // namespace
