// layout_audit — concrete cache-line layout auditor for DWS's concurrent
// structs (the runtime half of the dws-false-sharing discipline; see
// src/util/layout.hpp and docs/CHECKING.md §"Layout auditing").
//
// Every struct whose words cross thread or process boundaries is
// registered below through the DWS_AUDIT_* macros, inside a member
// function of dws::layout::Access — the friend hook those structs
// declare — so private layouts are read without widening any real API.
// The tool emits a deterministic JSON report (per-struct size/alignment,
// field offsets, sharing domains, and the cache lines where *different*
// domains overlap) and can byte-diff it against the committed golden,
// docs/layout_golden.json. CI runs the diff on every push: any layout
// change — a dropped alignas, a field reorder, a grown mutex — becomes
// an explicit, reviewed diff instead of a silent perf regression.
//
//   layout_audit [--out <path>] [--golden <path>] [--seed-regression]
//                [--print]
//
// Exit codes: 0 report written (and matches the golden, if given);
// 1 golden mismatch; 2 usage or I/O error.
//
// The report depends on the ABI (pointer width, libstdc++ object sizes),
// so the golden is only enforced where CI runs it: 64-bit Linux. The
// ctest registration gates on exactly that.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/core_ops.hpp"
#include "core/core_table.hpp"
#include "runtime/coordinator.hpp"
#include "runtime/deque.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"
#include "runtime/task_pool.hpp"
#include "runtime/worker.hpp"
#include "util/layout.hpp"

namespace dws::layout {

// The friend hook: registration must live inside a member function so the
// offsetof/sizeof expressions see private members and private nested
// types (CoreTable::Header, ChaseLevDeque::Buffer, ...).
struct Access {
  static std::vector<StructInfo> collect() {
    std::vector<StructInfo> out;

    {
      DWS_AUDIT_STRUCT(out, dws::rt::ChaseLevDeque<dws::rt::TaskBase*>);
      DWS_AUDIT_FIELD(top_, "shared");
      DWS_AUDIT_FIELD(bottom_, "owned_by:owner");
      DWS_AUDIT_FIELD(top_cache_, "owned_by:owner");
      DWS_AUDIT_FIELD(buffer_, "owned_by:owner");
      DWS_AUDIT_FIELD(inflight_thieves_, "shared");
      DWS_AUDIT_FIELD(retired_, "");
    }
    {
      DWS_AUDIT_STRUCT(out,
                       dws::rt::ChaseLevDeque<dws::rt::TaskBase*>::Buffer);
      DWS_AUDIT_FIELD(capacity, "");
      DWS_AUDIT_FIELD(mask, "");
      DWS_AUDIT_FIELD(data, "");
      DWS_AUDIT_PACKED_OK(
          "ring elements are relaxed handoff cells, never a multi-writer "
          "CAS target");
    }
    {
      DWS_AUDIT_STRUCT(out, dws::rt::TaskSlabPool);
      DWS_AUDIT_FIELD(local_head_, "owned_by:owner");
      DWS_AUDIT_FIELD(owner_tag_, "");
      DWS_AUDIT_FIELD(slabs_, "");
      DWS_AUDIT_FIELD(remote_head_, "shared");
      DWS_AUDIT_FIELD(slab_allocs_, "owned_by:owner");
      DWS_AUDIT_FIELD(slot_allocs_, "owned_by:owner");
      DWS_AUDIT_FIELD(local_frees_, "owned_by:owner");
      DWS_AUDIT_FIELD(remote_frees_, "shared");
      DWS_AUDIT_FIELD(remote_drains_, "shared");
      DWS_AUDIT_PACKED_OK(
          "remote-free monitoring counters ride the same fallback path "
          "that just CASed remote_head_; not worth a line each");
    }
    {
      DWS_AUDIT_STRUCT(out, dws::rt::TaskSlabPool::Slot);
      DWS_AUDIT_FIELD(home, "");
      DWS_AUDIT_FIELD(storage, "");
      DWS_AUDIT_FIELD(next, "shared");
    }
    {
      DWS_AUDIT_STRUCT(out, dws::rt::WorkerStats);
      DWS_AUDIT_FIELD(tasks_executed, "owned_by:worker");
      DWS_AUDIT_FIELD(steal_attempts, "owned_by:worker");
      DWS_AUDIT_FIELD(steals, "owned_by:worker");
      DWS_AUDIT_FIELD(failed_steals, "owned_by:worker");
      DWS_AUDIT_FIELD(yields, "owned_by:worker");
      DWS_AUDIT_FIELD(sleeps, "owned_by:worker");
      DWS_AUDIT_FIELD(wakes, "owned_by:worker");
      DWS_AUDIT_FIELD(evictions, "owned_by:worker");
      DWS_AUDIT_FIELD(heap_spawns, "owned_by:worker");
    }
    {
      // sched_ is a reference member: not offsetof-addressable, skipped.
      DWS_AUDIT_STRUCT(out, dws::rt::Worker);
      DWS_AUDIT_FIELD(id_, "");
      DWS_AUDIT_FIELD(rng_, "owned_by:worker");
      DWS_AUDIT_FIELD(policy_, "");
      DWS_AUDIT_FIELD(deque_, "");
      DWS_AUDIT_FIELD(pool_, "");
      DWS_AUDIT_FIELD(stats_, "");
      DWS_AUDIT_FIELD(thread_, "");
      DWS_AUDIT_FIELD(state_, "shared");
      DWS_AUDIT_FIELD(m_, "shared");
      DWS_AUDIT_FIELD(cv_, "shared");
      DWS_AUDIT_FIELD(wake_pending_, "shared");
    }
    {
      DWS_AUDIT_STRUCT(out, dws::CoreTable::Header);
      DWS_AUDIT_FIELD(magic, "shared");
      DWS_AUDIT_FIELD(layout_version, "");
      DWS_AUDIT_FIELD(num_cores, "");
      DWS_AUDIT_FIELD(num_programs, "");
      DWS_AUDIT_FIELD(registered, "shared");
    }
    {
      DWS_AUDIT_STRUCT(out, dws::CoreTable::LivenessRecord);
      DWS_AUDIT_FIELD(os_pid, "shared");
      DWS_AUDIT_FIELD(epoch, "owned_by:program");
      DWS_AUDIT_PACKED_OK(
          "heartbeat-rate writes only, one tick per coordinator period, "
          "measured interference is noise");
    }
    {
      DWS_AUDIT_STRUCT(out, dws::PackedCoreSlot<dws::StdAtomicsPolicy>);
      DWS_AUDIT_FIELD(user, "shared");
      DWS_AUDIT_PACKED_OK(
          "A/B baseline layout, instantiated only by bench and model-check "
          "code");
    }
    {
      DWS_AUDIT_STRUCT(out, dws::StridedCoreSlot<dws::StdAtomicsPolicy>);
      DWS_AUDIT_FIELD(user, "shared");
    }
    {
      DWS_AUDIT_STRUCT(out, dws::rt::Scheduler);
      DWS_AUDIT_FIELD(cfg_, "");
      DWS_AUDIT_FIELD(pid_, "");
      DWS_AUDIT_FIELD(table_, "");
      DWS_AUDIT_FIELD(owned_table_, "");
      DWS_AUDIT_FIELD(workers_, "");
      DWS_AUDIT_FIELD(coordinator_, "");
      DWS_AUDIT_FIELD(inbox_m_, "shared");
      DWS_AUDIT_FIELD(inbox_head_, "shared");
      DWS_AUDIT_FIELD(inbox_tail_, "shared");
      DWS_AUDIT_FIELD(inbox_size_, "shared");
      DWS_AUDIT_FIELD(external_spawns_, "shared");
      DWS_AUDIT_FIELD(total_pending_, "shared");
      DWS_AUDIT_FIELD(gate_m_, "shared");
      DWS_AUDIT_FIELD(gate_cv_, "shared");
      DWS_AUDIT_FIELD(shutdown_, "shared");
      DWS_AUDIT_FIELD(cur_t_sleep_, "shared");
#ifndef DWS_RACE_DISABLED
      DWS_AUDIT_FIELD(exec_hook_, "shared");
#endif
    }
    {
      // sched_ is a reference member: not offsetof-addressable, skipped.
      DWS_AUDIT_STRUCT(out, dws::rt::Coordinator);
      DWS_AUDIT_FIELD(period_ms_, "");
      DWS_AUDIT_FIELD(policy_, "");
      DWS_AUDIT_FIELD(driver_, "");
      DWS_AUDIT_FIELD(sweeper_, "");
      DWS_AUDIT_FIELD(thread_, "");
      DWS_AUDIT_FIELD(m_, "shared");
      DWS_AUDIT_FIELD(cv_, "shared");
      DWS_AUDIT_FIELD(stop_requested_, "shared");
      DWS_AUDIT_FIELD(ticks_, "owned_by:coordinator");
      DWS_AUDIT_FIELD(wakes_, "owned_by:coordinator");
      DWS_AUDIT_FIELD(cores_claimed_, "owned_by:coordinator");
      DWS_AUDIT_FIELD(cores_reclaimed_, "owned_by:coordinator");
      DWS_AUDIT_FIELD(stale_programs_swept_, "owned_by:coordinator");
      DWS_AUDIT_FIELD(cores_recovered_, "owned_by:coordinator");
    }
    {
      DWS_AUDIT_STRUCT(out, dws::rt::TaskGroup);
      DWS_AUDIT_FIELD(pending_, "shared");
      DWS_AUDIT_FIELD(creator_tag_, "");
      DWS_AUDIT_FIELD(creator_lineage_, "");
      DWS_AUDIT_FIELD(waited_, "shared");
      DWS_AUDIT_FIELD(signalers_, "shared");
      DWS_AUDIT_FIELD(has_exception_, "shared");
      DWS_AUDIT_FIELD(exception_, "");
      DWS_AUDIT_FIELD(m_, "shared");
      DWS_AUDIT_FIELD(cv_, "shared");
    }

    return out;
  }
};

}  // namespace dws::layout

namespace {

using dws::layout::StructInfo;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// Deterministic serialization: fixed key order, no floats, 2-space
// indent, trailing newline. The golden diff is a byte comparison, so any
// change here is itself a golden update.
std::string serialize(const std::vector<StructInfo>& structs) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"dws-layout-audit-v1\",\n";
  os << "  \"cache_line_bytes\": " << dws::layout::kCacheLineBytes << ",\n";
  os << "  \"pointer_bytes\": " << sizeof(void*) << ",\n";
  os << "  \"structs\": [\n";
  for (std::size_t i = 0; i < structs.size(); ++i) {
    const StructInfo& s = structs[i];
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(s.name) << "\",\n";
    os << "      \"size\": " << s.size << ",\n";
    os << "      \"align\": " << s.align << ",\n";
    os << "      \"cache_lines\": "
       << (s.size + dws::layout::kCacheLineBytes - 1) /
              dws::layout::kCacheLineBytes
       << ",\n";
    os << "      \"packed_ok\": \"" << json_escape(s.packed_ok) << "\",\n";
    os << "      \"fields\": [\n";
    for (std::size_t j = 0; j < s.fields.size(); ++j) {
      const auto& f = s.fields[j];
      const auto [first, last] = dws::layout::lines_of(f.offset, f.size);
      os << "        {\"name\": \"" << json_escape(f.name)
         << "\", \"offset\": " << f.offset << ", \"size\": " << f.size
         << ", \"align\": " << f.align << ", \"lines\": [" << first << ", "
         << last << "], \"domain\": \"" << json_escape(f.domain) << "\"}"
         << (j + 1 < s.fields.size() ? "," : "") << "\n";
    }
    os << "      ],\n";
    const auto conflicts = dws::layout::conflicts_of(s);
    os << "      \"conflicts\": [";
    for (std::size_t j = 0; j < conflicts.size(); ++j) {
      const auto& c = conflicts[j];
      os << (j == 0 ? "\n" : ",\n");
      os << "        {\"line\": " << c.line << ", \"fields\": [";
      for (std::size_t k = 0; k < c.fields.size(); ++k)
        os << (k > 0 ? ", " : "") << "\"" << json_escape(c.fields[k]) << "\"";
      os << "], \"domains\": [";
      for (std::size_t k = 0; k < c.domains.size(); ++k)
        os << (k > 0 ? ", " : "") << "\"" << json_escape(c.domains[k])
           << "\"";
      os << "]}";
    }
    os << (conflicts.empty() ? "]\n" : "\n      ]\n");
    os << "    }" << (i + 1 < structs.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

int diff_against_golden(const std::string& report, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::cerr << "layout_audit: cannot open golden '" << path << "'\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();
  if (golden == report) {
    std::cout << "layout_audit: report matches golden " << path << "\n";
    return 0;
  }
  // Point at the first diverging line — enough to aim the reviewer.
  std::istringstream a(report);
  std::istringstream b(golden);
  std::string la;
  std::string lb;
  int line = 0;
  while (true) {
    ++line;
    const bool ga = static_cast<bool>(std::getline(a, la));
    const bool gb = static_cast<bool>(std::getline(b, lb));
    if (!ga && !gb) break;
    if (la != lb || ga != gb) {
      std::cerr << "layout_audit: MISMATCH against golden " << path
                << " at line " << line << "\n"
                << "  golden:  " << (gb ? lb : "<eof>") << "\n"
                << "  current: " << (ga ? la : "<eof>") << "\n";
      break;
    }
  }
  std::cerr << "layout_audit: a concurrent struct's layout changed. If the "
               "change is intended,\nregenerate the golden (see "
               "docs/CHECKING.md §Layout auditing):\n"
               "  build/tools/layout_audit/layout_audit --out "
               "docs/layout_golden.json\nand commit the diff.\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "results/layout_audit.json";
  std::string golden_path;
  bool seed_regression = false;
  bool print = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(arg, "--golden") == 0 && i + 1 < argc) {
      golden_path = argv[++i];
    } else if (std::strcmp(arg, "--seed-regression") == 0) {
      seed_regression = true;
    } else if (std::strcmp(arg, "--print") == 0) {
      print = true;
    } else {
      std::cerr << "usage: layout_audit [--out <path>] [--golden <path>] "
                   "[--seed-regression] [--print]\n";
      return 2;
    }
  }

  std::vector<StructInfo> structs = dws::layout::Access::collect();

  if (seed_regression) {
    // Deliberately mis-report WorkerStats as if its alignas(64) had been
    // dropped — the regression the golden gate exists to catch. Used by
    // test_layout_audit to prove the gate fires.
    for (StructInfo& s : structs) {
      if (s.name == "dws::rt::WorkerStats") {
        s.align = alignof(std::uint64_t);
        s.size -= s.size % dws::layout::kCacheLineBytes;
        s.size += sizeof(std::uint64_t) * 9 % dws::layout::kCacheLineBytes;
      }
    }
  }

  const std::string report = serialize(structs);

  if (print) std::cout << report;

  if (!out_path.empty()) {
    const std::filesystem::path p(out_path);
    std::error_code ec;
    if (p.has_parent_path())
      std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      std::cerr << "layout_audit: cannot write '" << out_path << "'\n";
      return 2;
    }
    out << report;
    if (!print)
      std::cout << "layout_audit: wrote " << out_path << " ("
                << structs.size() << " structs)\n";
  }

  if (!golden_path.empty()) return diff_against_golden(report, golden_path);
  return 0;
}
