// Co-running tests: several Scheduler instances ("programs") sharing one
// core allocation table inside one process — the paper's multi-programmed
// scenario, hermetically. Verifies the disjoint-core invariant, demand-
// driven exchange, and take-back (§3.3 constraints).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace dws::rt {
namespace {

using namespace std::chrono_literals;

Config corun_config(SchedMode mode, unsigned cores, unsigned programs) {
  Config cfg;
  cfg.mode = mode;
  cfg.num_cores = cores;
  cfg.num_programs = programs;
  cfg.pin_threads = false;
  cfg.coordinator_period_ms = 2.0;
  return cfg;
}

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

std::int64_t spin_work(std::int64_t iters) {
  // Opaque arithmetic the optimizer cannot remove.
  std::int64_t acc = 0;
  for (std::int64_t i = 0; i < iters; ++i) {
    acc += i ^ (acc >> 3);
    asm volatile("" : "+r"(acc));  // optimization barrier
  }
  return acc;
}

TEST(CoRun, TwoDwsProgramsCompleteConcurrentWork) {
  CoreTableLocal shared(4, 2);
  const Config cfg = corun_config(SchedMode::kDws, 4, 2);
  Scheduler p1(cfg, &shared.table());
  Scheduler p2(cfg, &shared.table());
  ASSERT_NE(p1.pid(), p2.pid());

  std::atomic<int> c1{0}, c2{0};
  std::thread t1([&] {
    parallel_for_each_index(p1, 0, 2000, 8, [&](std::int64_t) {
      spin_work(200);
      c1.fetch_add(1, std::memory_order_relaxed);
    });
  });
  std::thread t2([&] {
    parallel_for_each_index(p2, 0, 2000, 8, [&](std::int64_t) {
      spin_work(200);
      c2.fetch_add(1, std::memory_order_relaxed);
    });
  });
  t1.join();
  t2.join();
  EXPECT_EQ(c1.load(), 2000);
  EXPECT_EQ(c2.load(), 2000);
}

TEST(CoRun, TableNeverAssignsACoreToTwoPrograms) {
  // Structural invariant of the table: each slot holds one pid. Sample the
  // table while two DWS programs churn and verify every sample is a valid
  // partition (each core free or owned by pid 1 or 2).
  CoreTableLocal shared(4, 2);
  const Config cfg = corun_config(SchedMode::kDws, 4, 2);
  Scheduler p1(cfg, &shared.table());
  Scheduler p2(cfg, &shared.table());

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (CoreId c = 0; c < 4; ++c) {
        const ProgramId u = shared.table().user_of(c);
        if (u > 2) violation.store(true);
      }
      std::this_thread::yield();
    }
  });

  std::thread t1([&] {
    for (int round = 0; round < 10; ++round) {
      parallel_for_each_index(p1, 0, 300, 4,
                              [&](std::int64_t) { spin_work(100); });
    }
  });
  std::thread t2([&] {
    for (int round = 0; round < 10; ++round) {
      parallel_for_each_index(p2, 0, 300, 4,
                              [&](std::int64_t) { spin_work(100); });
    }
  });
  t1.join();
  t2.join();
  stop.store(true, std::memory_order_release);
  sampler.join();
  EXPECT_FALSE(violation.load());
}

TEST(CoRun, BusyProgramBorrowsIdleProgramsCores) {
  CoreTableLocal shared(4, 2);
  const Config cfg = corun_config(SchedMode::kDws, 4, 2);
  Scheduler busy(cfg, &shared.table());
  Scheduler idle(cfg, &shared.table());

  // The idle program's workers sleep and release their home cores.
  ASSERT_TRUE(eventually([&] { return idle.sleeping_workers() == 4; }));

  // The busy program should claim those freed cores under load.
  std::atomic<std::int64_t> sum{0};
  parallel_for_each_index(busy, 0, 100000, 8, [&](std::int64_t i) {
    sum.fetch_add(spin_work(30) + i, std::memory_order_relaxed);
  });
  const auto stats = busy.stats();
  EXPECT_GT(stats.cores_claimed, 0u)
      << "busy program never borrowed the idle program's released cores";
}

TEST(CoRun, OwnerReclaimsCoresWhenItsDemandReturns) {
  CoreTableLocal shared(4, 2);
  const Config cfg = corun_config(SchedMode::kDws, 4, 2);
  Scheduler a(cfg, &shared.table());
  Scheduler b(cfg, &shared.table());

  // Phase 1: a is idle; b (kept busy until a finishes, so a's cores stay
  // borrowed for the whole of phase 2) grabs a's cores.
  ASSERT_TRUE(eventually([&] { return a.sleeping_workers() == 4; }));
  std::atomic<bool> stop_b{false};
  std::thread tb([&] {
    while (!stop_b.load(std::memory_order_acquire)) {
      // Grain 1 over a large range keeps every one of b's deques full, so
      // b's workers never fail a steal, never sleep, and never release
      // a's borrowed cores voluntarily — forcing a onto the reclaim path.
      parallel_for_each_index(b, 0, 50000, 1,
                              [&](std::int64_t) { spin_work(50); });
    }
  });
  ASSERT_TRUE(eventually(
      [&] { return shared.table().count_borrowed_from(a.pid()) > 0; }))
      << "b never borrowed a's cores";

  // Phase 2: a's demand returns; its coordinator must take cores back
  // (no free cores exist while b is saturating the machine).
  std::atomic<int> ca{0};
  for (int round = 0; round < 10; ++round) {
    parallel_for_each_index(a, 0, 2000, 4, [&](std::int64_t) {
      spin_work(100);
      ca.fetch_add(1, std::memory_order_relaxed);
    });
  }
  stop_b.store(true, std::memory_order_release);
  tb.join();
  EXPECT_EQ(ca.load(), 20000);
  const auto stats = a.stats();
  EXPECT_GT(stats.cores_reclaimed, 0u)
      << "a never reclaimed its borrowed home cores";
}

TEST(CoRun, EvictedBorrowerVacatesTheCore) {
  CoreTableLocal shared(2, 2);
  const Config cfg = corun_config(SchedMode::kDws, 2, 2);
  Scheduler a(cfg, &shared.table());
  Scheduler b(cfg, &shared.table());

  ASSERT_TRUE(eventually([&] { return a.sleeping_workers() == 2; }));
  // b under sustained load borrows a's single home core...
  std::atomic<bool> stop_b{false};
  std::thread tb([&] {
    while (!stop_b.load(std::memory_order_acquire)) {
      parallel_for_each_index(b, 0, 500, 2,
                              [&](std::int64_t) { spin_work(200); });
    }
  });
  ASSERT_TRUE(eventually(
      [&] { return shared.table().count_borrowed_from(a.pid()) == 1; }));

  // ...then a's demand returns and it reclaims; b's worker on that core
  // must observe the eviction and vacate.
  for (int round = 0; round < 20; ++round) {
    parallel_for_each_index(a, 0, 500, 2,
                            [&](std::int64_t) { spin_work(200); });
  }
  stop_b.store(true, std::memory_order_release);
  tb.join();

  const auto stats_b = b.stats();
  EXPECT_GT(stats_b.totals.evictions, 0u)
      << "b's borrowed worker never vacated after a's reclaim";
}

TEST(CoRun, FourEpProgramsKeepDisjointStaticPartitions) {
  CoreTableLocal shared(8, 4);
  const Config cfg = corun_config(SchedMode::kEp, 8, 4);
  std::vector<std::unique_ptr<Scheduler>> programs;
  for (int i = 0; i < 4; ++i) {
    programs.push_back(std::make_unique<Scheduler>(cfg, &shared.table()));
  }
  // Every program holds exactly its 2 home cores, forever.
  for (auto& p : programs) {
    EXPECT_EQ(shared.table().count_active(p->pid()), 2u);
    EXPECT_EQ(shared.table().count_borrowed_from(p->pid()), 0u);
  }
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (auto& p : programs) {
    threads.emplace_back([&p, &done] {
      parallel_for_each_index(*p, 0, 1000, 8,
                              [](std::int64_t) { spin_work(50); });
      done.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(done.load(), 4);
  // Partitions unchanged by load — EP is static by design.
  for (auto& p : programs) {
    EXPECT_EQ(shared.table().count_active(p->pid()), 2u);
  }
}

TEST(CoRun, MixedWidthsThreeDwsPrograms) {
  // 6 cores, 3 programs: exercises non-power-of-two partitions.
  CoreTableLocal shared(6, 3);
  const Config cfg = corun_config(SchedMode::kDws, 6, 3);
  Scheduler p1(cfg, &shared.table());
  Scheduler p2(cfg, &shared.table());
  Scheduler p3(cfg, &shared.table());

  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (Scheduler* p : {&p1, &p2, &p3}) {
    threads.emplace_back([p, &total] {
      parallel_for_each_index(*p, 0, 1500, 8, [&](std::int64_t) {
        spin_work(80);
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 4500);
}

}  // namespace
}  // namespace dws::rt
