// Unit + concurrency tests for the in-process core allocation table.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/core_table.hpp"

namespace dws {
namespace {

TEST(CoreTable, StartsAllFree) {
  CoreTableLocal local(16, 2);
  CoreTable& t = local.table();
  EXPECT_EQ(t.num_cores(), 16u);
  EXPECT_EQ(t.num_programs(), 2u);
  EXPECT_EQ(t.count_free(), 16u);
  for (CoreId c = 0; c < 16; ++c) EXPECT_EQ(t.user_of(c), kNoProgram);
}

TEST(CoreTable, RegisterHandsOutSequentialIds) {
  CoreTableLocal local(8, 4);
  CoreTable& t = local.table();
  EXPECT_EQ(t.register_program(), 1u);
  EXPECT_EQ(t.register_program(), 2u);
  EXPECT_EQ(t.register_program(), 3u);
}

TEST(CoreTable, HomePartitionIsEvenAndContiguous) {
  CoreTableLocal local(16, 2);
  CoreTable& t = local.table();
  for (CoreId c = 0; c < 8; ++c) EXPECT_EQ(t.home_of(c), 1u) << "core " << c;
  for (CoreId c = 8; c < 16; ++c) EXPECT_EQ(t.home_of(c), 2u) << "core " << c;
}

TEST(CoreTable, HomePartitionCoversAllCoresForUnevenSplit) {
  // 7 cores, 2 programs: every core must have exactly one home, and the
  // split sizes must differ by at most one.
  CoreTableLocal local(7, 2);
  CoreTable& t = local.table();
  unsigned count1 = 0, count2 = 0;
  for (CoreId c = 0; c < 7; ++c) {
    const ProgramId h = t.home_of(c);
    ASSERT_TRUE(h == 1u || h == 2u);
    (h == 1u ? count1 : count2)++;
  }
  EXPECT_EQ(count1 + count2, 7u);
  EXPECT_LE(count1 > count2 ? count1 - count2 : count2 - count1, 1u);
}

TEST(CoreTable, HomeRangesAreContiguousForManyShapes) {
  for (unsigned k : {1u, 2u, 3u, 4u, 7u, 8u, 15u, 16u, 31u, 64u}) {
    for (unsigned m : {1u, 2u, 3u, 4u, 5u, 8u}) {
      CoreTableLocal local(k, m);
      CoreTable& t = local.table();
      ProgramId prev = 0;
      for (CoreId c = 0; c < k; ++c) {
        const ProgramId h = t.home_of(c);
        EXPECT_GE(h, prev) << "k=" << k << " m=" << m << " core=" << c;
        EXPECT_GE(h, 1u);
        EXPECT_LE(h, m);
        prev = h;
      }
      EXPECT_EQ(t.home_of(0), 1u);
      if (m <= k) {
        // With at least as many cores as programs, every program gets a
        // non-empty home range, so the last core homes the last program.
        EXPECT_EQ(t.home_of(k - 1), m);
      }
    }
  }
}

TEST(CoreTable, ClaimHomeCoresRealizesEquipartition) {
  CoreTableLocal local(16, 2);
  CoreTable& t = local.table();
  const ProgramId p1 = t.register_program();
  const ProgramId p2 = t.register_program();
  const auto c1 = t.claim_home_cores(p1);
  const auto c2 = t.claim_home_cores(p2);
  EXPECT_EQ(c1.size(), 8u);
  EXPECT_EQ(c2.size(), 8u);
  EXPECT_EQ(t.count_free(), 0u);
  EXPECT_EQ(t.count_active(p1), 8u);
  EXPECT_EQ(t.count_active(p2), 8u);
}

TEST(CoreTable, ClaimIsExclusive) {
  CoreTableLocal local(4, 2);
  CoreTable& t = local.table();
  EXPECT_TRUE(t.try_claim(0, 1));
  EXPECT_FALSE(t.try_claim(0, 2));  // occupied
  EXPECT_EQ(t.user_of(0), 1u);
}

TEST(CoreTable, ReleaseRequiresOwnership) {
  CoreTableLocal local(4, 2);
  CoreTable& t = local.table();
  ASSERT_TRUE(t.try_claim(0, 1));
  EXPECT_FALSE(t.release(0, 2));  // not the user
  EXPECT_EQ(t.user_of(0), 1u);
  EXPECT_TRUE(t.release(0, 1));
  EXPECT_EQ(t.user_of(0), kNoProgram);
  EXPECT_FALSE(t.release(0, 1));  // already free
}

TEST(CoreTable, ReclaimOnlyWorksOnHomeCoresHeldByOthers) {
  CoreTableLocal local(16, 2);
  CoreTable& t = local.table();
  // Program 2 borrows core 0 (home of program 1).
  ASSERT_TRUE(t.try_claim(0, 2));
  EXPECT_FALSE(t.try_reclaim(0, 2));   // core 0 is not p2's home
  EXPECT_FALSE(t.try_reclaim(8, 1));   // core 8 is not p1's home
  EXPECT_FALSE(t.try_reclaim(1, 1));   // core 1 is free, reclaim is not claim
  EXPECT_TRUE(t.try_reclaim(0, 1));    // take it back
  EXPECT_EQ(t.user_of(0), 1u);
  EXPECT_FALSE(t.try_reclaim(0, 1));   // already ours
}

TEST(CoreTable, BorrowedCountersTrackLending) {
  CoreTableLocal local(16, 2);
  CoreTable& t = local.table();
  EXPECT_EQ(t.count_borrowed_from(1), 0u);
  ASSERT_TRUE(t.try_claim(0, 2));  // p2 borrows p1's core 0
  ASSERT_TRUE(t.try_claim(1, 2));  // and core 1
  ASSERT_TRUE(t.try_claim(8, 2));  // p2 uses its own core 8
  EXPECT_EQ(t.count_borrowed_from(1), 2u);
  EXPECT_EQ(t.count_borrowed_from(2), 0u);
  const auto borrowed = t.borrowed_home_cores(1);
  ASSERT_EQ(borrowed.size(), 2u);
  EXPECT_EQ(borrowed[0], 0u);
  EXPECT_EQ(borrowed[1], 1u);
}

TEST(CoreTable, UnregisterReleasesEverything) {
  CoreTableLocal local(8, 2);
  CoreTable& t = local.table();
  ASSERT_TRUE(t.try_claim(0, 1));
  ASSERT_TRUE(t.try_claim(5, 1));
  ASSERT_TRUE(t.try_claim(6, 2));
  t.unregister_program(1);
  EXPECT_EQ(t.count_active(1), 0u);
  EXPECT_EQ(t.user_of(6), 2u);  // other program untouched
  EXPECT_EQ(t.count_free(), 7u);
}

TEST(CoreTable, FreeAndUsedListsAreConsistent) {
  CoreTableLocal local(8, 2);
  CoreTable& t = local.table();
  ASSERT_TRUE(t.try_claim(2, 1));
  ASSERT_TRUE(t.try_claim(4, 2));
  const auto free = t.free_cores();
  EXPECT_EQ(free.size(), 6u);
  for (CoreId c : free) EXPECT_EQ(t.user_of(c), kNoProgram);
  const auto mine = t.cores_used_by(1);
  ASSERT_EQ(mine.size(), 1u);
  EXPECT_EQ(mine[0], 2u);
}

TEST(CoreTable, SingleProgramHomesEverything) {
  CoreTableLocal local(16, 1);
  CoreTable& t = local.table();
  const ProgramId p = t.register_program();
  for (CoreId c = 0; c < 16; ++c) EXPECT_EQ(t.home_of(c), p);
  EXPECT_EQ(t.claim_home_cores(p).size(), 16u);
}

TEST(CoreTable, MoreProgramsThanCoresStillPartitions) {
  CoreTableLocal local(2, 4);
  CoreTable& t = local.table();
  // 4 programs on 2 cores: programs without a home core may only use free
  // cores. Every core still has exactly one home in [1,4].
  for (CoreId c = 0; c < 2; ++c) {
    EXPECT_GE(t.home_of(c), 1u);
    EXPECT_LE(t.home_of(c), 4u);
  }
}

// Concurrency: claims on the same core from many threads must hand the
// core to exactly one claimer.
TEST(CoreTableLiveness, BindPublishesPidAndStartsEpochAtOne) {
  CoreTableLocal local(8, 2);
  CoreTable& t = local.table();
  const ProgramId p = t.register_program();
  EXPECT_EQ(t.liveness_os_pid(p), 0u);
  EXPECT_EQ(t.liveness_epoch(p), 0u);
  EXPECT_TRUE(t.bind_liveness(p, 4242));
  EXPECT_EQ(t.liveness_os_pid(p), 4242u);
  EXPECT_EQ(t.liveness_epoch(p), 1u);
}

TEST(CoreTableLiveness, HeartbeatAdvancesEpochMonotonically) {
  CoreTableLocal local(8, 2);
  CoreTable& t = local.table();
  const ProgramId p = t.register_program();
  ASSERT_TRUE(t.bind_liveness(p, 100));
  for (std::uint64_t e = 1; e <= 10; ++e) {
    EXPECT_EQ(t.liveness_epoch(p), e);
    t.heartbeat(p);
  }
  EXPECT_EQ(t.liveness_epoch(p), 11u);
}

TEST(CoreTableLiveness, OutOfRangeIdsAreUntracked) {
  CoreTableLocal local(4, 2);
  CoreTable& t = local.table();
  EXPECT_FALSE(t.bind_liveness(0, 1));  // kNoProgram is never tracked
  EXPECT_FALSE(t.bind_liveness(CoreTable::kLivenessSlots + 1, 1));
  EXPECT_EQ(t.liveness_epoch(CoreTable::kLivenessSlots + 1), 0u);
  EXPECT_EQ(t.liveness_os_pid(CoreTable::kLivenessSlots + 1), 0u);
  t.heartbeat(CoreTable::kLivenessSlots + 1);  // must not crash
}

TEST(CoreTableLiveness, RetireRequiresMatchingOsPid) {
  CoreTableLocal local(8, 2);
  CoreTable& t = local.table();
  const ProgramId p = t.register_program();
  ASSERT_TRUE(t.bind_liveness(p, 777));
  // Wrong expected pid: the CAS loses (protects against retiring a slot
  // that a recycled program id has since re-bound).
  EXPECT_FALSE(t.retire_liveness(p, 778));
  EXPECT_EQ(t.liveness_os_pid(p), 777u);
  // Matching pid wins exactly once — a second retire finds 0 and loses.
  EXPECT_TRUE(t.retire_liveness(p, 777));
  EXPECT_EQ(t.liveness_os_pid(p), 0u);
  EXPECT_FALSE(t.retire_liveness(p, 777));
}

TEST(CoreTableLiveness, UnregisterRetiresTheLivenessRecord) {
  CoreTableLocal local(8, 2);
  CoreTable& t = local.table();
  const ProgramId p = t.register_program();
  ASSERT_TRUE(t.bind_liveness(p, 555));
  t.unregister_program(p);
  // A clean exit leaves no liveness evidence, so no sweeper will ever
  // consider this id stale.
  EXPECT_EQ(t.liveness_os_pid(p), 0u);
}

TEST(CoreTableLiveness, RegisteredProgramsTracksRegistrations) {
  CoreTableLocal local(8, 4);
  CoreTable& t = local.table();
  EXPECT_EQ(t.registered_programs(), 0u);
  t.register_program();
  t.register_program();
  EXPECT_EQ(t.registered_programs(), 2u);
}

TEST(CoreTableLiveness, ForceReleaseAllFreesExactlyTheVictimsCores) {
  CoreTableLocal local(8, 2);
  CoreTable& t = local.table();
  const ProgramId p = t.register_program();
  const ProgramId q = t.register_program();
  t.claim_home_cores(p);  // cores 0-3
  t.claim_home_cores(q);  // cores 4-7
  const std::vector<CoreId> freed = t.force_release_all(q);
  EXPECT_EQ(freed.size(), 4u);
  EXPECT_EQ(t.count_active(q), 0u);
  EXPECT_EQ(t.count_active(p), 4u);  // survivor untouched
  EXPECT_EQ(t.count_free(), 4u);
  for (CoreId c : freed) EXPECT_EQ(t.user_of(c), kNoProgram);
}

TEST(CoreTableConcurrency, ExactlyOneClaimWinsPerCore) {
  constexpr unsigned kCores = 16;
  constexpr unsigned kThreads = 8;
  CoreTableLocal local(kCores, kThreads);
  CoreTable& t = local.table();

  std::atomic<unsigned> total_claims{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t, &total_claims, pid = ProgramId(i + 1)] {
      unsigned won = 0;
      for (CoreId c = 0; c < kCores; ++c) {
        if (t.try_claim(c, pid)) ++won;
      }
      total_claims.fetch_add(won, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(total_claims.load(), kCores);
  EXPECT_EQ(t.count_free(), 0u);
  unsigned sum = 0;
  for (unsigned i = 0; i < kThreads; ++i) sum += t.count_active(i + 1);
  EXPECT_EQ(sum, kCores);
}

// Concurrency: repeated claim/release churn never corrupts the table: at
// the end everything is free and no operation ever observed a torn state.
TEST(CoreTableConcurrency, ChurnLeavesTableConsistent) {
  constexpr unsigned kCores = 8;
  constexpr unsigned kThreads = 4;
  constexpr int kIters = 20000;
  CoreTableLocal local(kCores, kThreads);
  CoreTable& t = local.table();

  std::vector<std::thread> threads;
  for (unsigned i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t, pid = ProgramId(i + 1)] {
      for (int it = 0; it < kIters; ++it) {
        const CoreId c = static_cast<CoreId>(it % kCores);
        if (t.try_claim(c, pid)) {
          // While held, the table must report us as the user.
          ASSERT_EQ(t.user_of(c), pid);
          ASSERT_TRUE(t.release(c, pid));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.count_free(), kCores);
}

}  // namespace
}  // namespace dws
