// Tests for the simulator event trace: completeness (every task leaves a
// start/finish pair), ordering, sleep/wake pairing, claim/reclaim
// attribution, capacity truncation, and the JSONL writer.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "sim/workload.hpp"

namespace dws::sim {
namespace {

SimResult traced_run(SchedMode mode, unsigned programs = 2,
                     std::size_t capacity = 1u << 20) {
  static const TaskDag dag =
      make_fork_join_tree(5, 2, 100.0, 1.0, 1.0, 0.2);
  SimParams params;
  params.num_cores = 4;
  params.num_sockets = 1;
  params.collect_trace = true;
  params.trace_capacity = capacity;
  std::vector<SimProgramSpec> specs;
  for (unsigned i = 0; i < programs; ++i) {
    SimProgramSpec s;
    s.name = "p" + std::to_string(i);
    s.mode = mode;
    s.dag = &dag;
    s.target_runs = 2;
    specs.push_back(s);
  }
  SimEngine engine(params, specs);
  return engine.run();
}

TEST(Trace, DisabledByDefault) {
  const TaskDag dag = make_serial_chain(3, 10.0, 0.0);
  SimParams p;
  p.num_cores = 2;
  p.num_sockets = 1;
  SimProgramSpec s;
  s.name = "x";
  s.mode = SchedMode::kAbp;
  s.dag = &dag;
  const SimResult r = simulate_solo(p, s);
  EXPECT_TRUE(r.trace.empty());
  EXPECT_FALSE(r.trace_truncated);
}

TEST(Trace, EveryTaskHasStartAndFinish) {
  const SimResult r = traced_run(SchedMode::kDws);
  std::map<unsigned, std::uint64_t> starts, finishes;
  for (const TraceEvent& e : r.trace) {
    if (e.kind == TraceKind::kTaskStart) ++starts[e.prog];
    if (e.kind == TraceKind::kTaskFinish) ++finishes[e.prog];
  }
  for (const auto& p : r.programs) {
    const unsigned idx = &p - r.programs.data();
    EXPECT_EQ(starts[idx], p.tasks_executed) << p.name;
    EXPECT_EQ(finishes[idx], p.tasks_executed) << p.name;
  }
}

TEST(Trace, TimestampsAreMonotone) {
  const SimResult r = traced_run(SchedMode::kDws);
  ASSERT_FALSE(r.trace.empty());
  double prev = -1.0;
  for (const TraceEvent& e : r.trace) {
    EXPECT_GE(e.t_us, prev);
    prev = e.t_us;
  }
}

TEST(Trace, SleepWakeAndClaimCountsMatchStats) {
  const SimResult r = traced_run(SchedMode::kDws);
  std::map<unsigned, std::uint64_t> sleeps, evicts, wakes, claims, reclaims;
  for (const TraceEvent& e : r.trace) {
    switch (e.kind) {
      case TraceKind::kSleep: ++sleeps[e.prog]; break;
      case TraceKind::kEvicted: ++evicts[e.prog]; break;
      case TraceKind::kWake: ++wakes[e.prog]; break;
      case TraceKind::kClaim: ++claims[e.prog]; break;
      case TraceKind::kReclaim: ++reclaims[e.prog]; break;
      default: break;
    }
  }
  for (std::size_t i = 0; i < r.programs.size(); ++i) {
    const auto& p = r.programs[i];
    EXPECT_EQ(sleeps[i] + evicts[i], p.sleeps) << p.name;
    EXPECT_EQ(wakes[i], p.wakes) << p.name;
    EXPECT_EQ(claims[i], p.cores_claimed) << p.name;
    EXPECT_EQ(reclaims[i], p.cores_reclaimed) << p.name;
  }
}

TEST(Trace, RunMarkersMatchRepetitions) {
  const SimResult r = traced_run(SchedMode::kAbp);
  std::map<unsigned, unsigned> finishes;
  for (const TraceEvent& e : r.trace) {
    if (e.kind == TraceKind::kRunFinish) ++finishes[e.prog];
  }
  for (std::size_t i = 0; i < r.programs.size(); ++i) {
    EXPECT_EQ(finishes[i], r.programs[i].run_times_us.size())
        << r.programs[i].name;
  }
}

TEST(Trace, CapacityTruncates) {
  const SimResult r = traced_run(SchedMode::kDws, 2, /*capacity=*/50);
  EXPECT_EQ(r.trace.size(), 50u);
  EXPECT_TRUE(r.trace_truncated);
}

TEST(Trace, JsonlWriterEmitsOneObjectPerLine) {
  const SimResult r = traced_run(SchedMode::kDws);
  std::ostringstream os;
  write_trace_jsonl(os, r.trace);
  const std::string out = os.str();
  std::size_t lines = 0;
  for (char ch : out) lines += (ch == '\n');
  EXPECT_EQ(lines, r.trace.size());
  // Spot-check shape of the first line.
  const std::string first = out.substr(0, out.find('\n'));
  EXPECT_EQ(first.front(), '{');
  EXPECT_EQ(first.back(), '}');
  EXPECT_NE(first.find("\"kind\":\""), std::string::npos);
  EXPECT_NE(first.find("\"t_us\":"), std::string::npos);
}

TEST(Trace, KindNamesAreStable) {
  EXPECT_STREQ(to_string(TraceKind::kTaskStart), "task_start");
  EXPECT_STREQ(to_string(TraceKind::kSteal), "steal");
  EXPECT_STREQ(to_string(TraceKind::kEvicted), "evicted");
  EXPECT_STREQ(to_string(TraceKind::kReclaim), "reclaim");
  EXPECT_STREQ(to_string(TraceKind::kRunFinish), "run_finish");
}

}  // namespace
}  // namespace dws::sim
