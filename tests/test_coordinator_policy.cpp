// Tests for the coordinator wake-up model (Eq. 1 + the three §3.3 cases)
// and for CoordinatorDriver's table interaction, including the paper's
// three constraints as properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/coordinator_policy.hpp"
#include "core/topology.hpp"

namespace dws {
namespace {

DemandSnapshot snap(std::uint64_t nb, unsigned na, unsigned nf, unsigned nr,
                    unsigned sleeping) {
  return DemandSnapshot{nb, na, nf, nr, sleeping};
}

TEST(CoordinatorPolicy, NoBacklogNoWake) {
  CoordinatorPolicy p;
  EXPECT_EQ(p.decide(snap(0, 4, 8, 2, 12)).total(), 0u);
}

TEST(CoordinatorPolicy, NoSleepersNoWake) {
  CoordinatorPolicy p;
  EXPECT_EQ(p.decide(snap(100, 4, 8, 2, 0)).total(), 0u);
}

TEST(CoordinatorPolicy, SmallBacklogPerWorkerStaysAsleep) {
  // 3 tasks across 4 active workers: N_w = 3/4 < 1, no wake (the paper's
  // "only a few tasks on average" guard).
  CoordinatorPolicy p;
  EXPECT_EQ(p.decide(snap(3, 4, 8, 2, 12)).total(), 0u);
}

TEST(CoordinatorPolicy, Case1AllFromFreeCores) {
  // N_w = 16/4 = 4 <= N_f = 8: wake 4 on free cores, reclaim none.
  CoordinatorPolicy p;
  const WakeDecision d = p.decide(snap(16, 4, 8, 2, 12));
  EXPECT_EQ(d.wake_on_free, 4u);
  EXPECT_EQ(d.wake_on_reclaim, 0u);
}

TEST(CoordinatorPolicy, Case2TopsUpWithReclaims) {
  // N_w = 24/4 = 6, N_f = 4, N_r = 3: 4 free + 2 reclaimed.
  CoordinatorPolicy p;
  const WakeDecision d = p.decide(snap(24, 4, 4, 3, 12));
  EXPECT_EQ(d.wake_on_free, 4u);
  EXPECT_EQ(d.wake_on_reclaim, 2u);
}

TEST(CoordinatorPolicy, Case2BoundaryUsesAllReclaimable) {
  // N_w = N_f + N_r exactly.
  CoordinatorPolicy p;
  const WakeDecision d = p.decide(snap(28, 4, 4, 3, 12));
  EXPECT_EQ(d.wake_on_free, 4u);
  EXPECT_EQ(d.wake_on_reclaim, 3u);
}

TEST(CoordinatorPolicy, Case3CapsAtFreePlusReclaimable) {
  // N_w = 400/4 = 100 > N_f + N_r = 7: take everything allowed, no more.
  CoordinatorPolicy p;
  const WakeDecision d = p.decide(snap(400, 4, 4, 3, 12));
  EXPECT_EQ(d.wake_on_free, 4u);
  EXPECT_EQ(d.wake_on_reclaim, 3u);
}

TEST(CoordinatorPolicy, CappedBySleepingWorkers) {
  // Demand says wake 8, but only 2 workers are asleep.
  CoordinatorPolicy p;
  const WakeDecision d = p.decide(snap(32, 4, 8, 0, 2));
  EXPECT_EQ(d.total(), 2u);
}

TEST(CoordinatorPolicy, StalledProgramUsesBacklogAsDemand) {
  // N_a = 0: all workers asleep but tasks queued (e.g. an external enqueue
  // raced the last sleep). The program must not deadlock: backlog itself
  // drives the wake.
  CoordinatorPolicy p;
  const WakeDecision d = p.decide(snap(5, 0, 8, 0, 16));
  EXPECT_EQ(d.total(), 5u);
  EXPECT_EQ(d.wake_on_free, 5u);
}

TEST(CoordinatorPolicy, StalledProgramWakesAtLeastOneWithSingleTask) {
  CoordinatorPolicy p;
  const WakeDecision d = p.decide(snap(1, 0, 1, 0, 16));
  EXPECT_EQ(d.total(), 1u);
}

TEST(CoordinatorPolicy, HigherThresholdSuppressesMarginalWakes) {
  CoordinatorPolicy strict(4.0);
  EXPECT_EQ(strict.decide(snap(12, 4, 8, 0, 8)).total(), 0u);  // 3 < 4
  EXPECT_EQ(strict.decide(snap(16, 4, 8, 0, 8)).total(), 4u);  // 4 >= 4
}

TEST(CoordinatorPolicy, SubUnityThresholdWakesOnFractionalDemand) {
  // Regression: Eq. 1 demand was truncated with static_cast<unsigned>, so
  // a wake_threshold < 1 was inert — a backlog per worker in
  // (threshold, 1) passed the guard but then truncated to zero wakes.
  // Demand now rounds to the nearest worker.
  CoordinatorPolicy eager(0.5);
  // N_w = 3/4 = 0.75: above the 0.5 threshold, rounds to 1 worker.
  const WakeDecision d = eager.decide(snap(3, 4, 8, 0, 8));
  EXPECT_EQ(d.total(), 1u);
  EXPECT_EQ(d.wake_on_free, 1u);
}

TEST(CoordinatorPolicy, DemandRoundingIsNearest) {
  CoordinatorPolicy p;
  // 10/4 = 2.5 rounds (half away from zero) to 3, not truncates to 2.
  EXPECT_EQ(p.decide(snap(10, 4, 8, 0, 8)).total(), 3u);
  // 9/4 = 2.25 rounds down to 2.
  EXPECT_EQ(p.decide(snap(9, 4, 8, 0, 8)).total(), 2u);
}

TEST(CoordinatorPolicy, DemandRoundingToZeroWakesNoOne) {
  // With a very low threshold a demand that rounds to zero workers must
  // early-return an empty decision, not underflow or wake anyone.
  CoordinatorPolicy eager(0.1);
  const WakeDecision d = eager.decide(snap(1, 5, 8, 4, 8));  // N_w = 0.2
  EXPECT_EQ(d.total(), 0u);
  EXPECT_EQ(d.wake_on_free, 0u);
  EXPECT_EQ(d.wake_on_reclaim, 0u);
}

// Property sweep over a grid of snapshots: the three paper constraints
// must hold for every input.
class CoordinatorPolicyProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(CoordinatorPolicyProperty, RespectsAllThreeConstraints) {
  const auto [nb, na, nf, nr] = GetParam();
  const unsigned sleeping = 16;
  CoordinatorPolicy p;
  const auto s = snap(static_cast<std::uint64_t>(nb),
                      static_cast<unsigned>(na), static_cast<unsigned>(nf),
                      static_cast<unsigned>(nr), sleeping);
  const WakeDecision d = p.decide(s);

  // Constraint 3: never take cores beyond free + own-reclaimable.
  EXPECT_LE(d.wake_on_free, s.free_cores);
  EXPECT_LE(d.wake_on_reclaim, s.reclaimable_cores);
  // Feasibility: never wake more than the sleeping workers.
  EXPECT_LE(d.total(), s.sleeping_workers);
  // Constraint 2: reclaims only happen once free cores are exhausted.
  if (d.wake_on_reclaim > 0) {
    EXPECT_EQ(d.wake_on_free, s.free_cores);
  }
  // Zero backlog must never wake anyone.
  if (s.queued_tasks == 0) {
    EXPECT_EQ(d.total(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoordinatorPolicyProperty,
    ::testing::Combine(::testing::Values(0, 1, 3, 8, 64, 1000),   // N_b
                       ::testing::Values(0, 1, 4, 16),            // N_a
                       ::testing::Values(0, 1, 4, 16),            // N_f
                       ::testing::Values(0, 1, 4, 8)));           // N_r

// Constraint 1 as a monotonicity property: more queued tasks never wakes
// fewer workers (all else equal).
TEST(CoordinatorPolicy, WakeCountIsMonotoneInBacklog) {
  CoordinatorPolicy p;
  unsigned prev = 0;
  for (std::uint64_t nb = 0; nb <= 200; ++nb) {
    const unsigned total = p.decide(snap(nb, 4, 16, 0, 16)).total();
    EXPECT_GE(total, prev) << "backlog " << nb;
    prev = total;
  }
}

// ---- CoordinatorDriver against a real table ----

TEST(CoordinatorDriver, AcquiresRequestedFreeCores) {
  CoreTableLocal local(16, 2);
  CoreTable& t = local.table();
  CoordinatorDriver drv(t, /*pid=*/1, /*seed=*/42);
  const auto won = drv.acquire(WakeDecision{.wake_on_free = 4});
  EXPECT_EQ(won.claimed.size(), 4u);
  EXPECT_TRUE(won.reclaimed.empty());
  std::set<CoreId> unique(won.claimed.begin(), won.claimed.end());
  EXPECT_EQ(unique.size(), 4u);
  for (CoreId c : won.claimed) EXPECT_EQ(t.user_of(c), 1u);
  EXPECT_EQ(t.count_free(), 12u);
}

TEST(CoordinatorDriver, AcquireStopsWhenTableRunsDry) {
  CoreTableLocal local(4, 2);
  CoreTable& t = local.table();
  for (CoreId c = 0; c < 3; ++c) ASSERT_TRUE(t.try_claim(c, 2));
  CoordinatorDriver drv(t, 1, 7);
  const auto won = drv.acquire(WakeDecision{.wake_on_free = 4});
  ASSERT_EQ(won.claimed.size(), 1u);
  EXPECT_EQ(won.claimed[0], 3u);
}

TEST(CoordinatorDriver, ReclaimTakesOnlyHomeCores) {
  CoreTableLocal local(16, 2);
  CoreTable& t = local.table();
  // p2 borrows two of p1's home cores and sits on two of its own.
  ASSERT_TRUE(t.try_claim(0, 2));
  ASSERT_TRUE(t.try_claim(1, 2));
  ASSERT_TRUE(t.try_claim(8, 2));
  ASSERT_TRUE(t.try_claim(9, 2));
  CoordinatorDriver drv(t, 1, 1);
  const auto won = drv.acquire(WakeDecision{.wake_on_reclaim = 8});
  EXPECT_EQ(won.reclaimed.size(), 2u);  // only the two borrowed home cores
  EXPECT_TRUE(won.claimed.empty());
  EXPECT_EQ(t.user_of(0), 1u);
  EXPECT_EQ(t.user_of(1), 1u);
  EXPECT_EQ(t.user_of(8), 2u);  // p2's own cores untouched
  EXPECT_EQ(t.user_of(9), 2u);
}

TEST(CoordinatorDriver, SnapshotReflectsTable) {
  CoreTableLocal local(16, 2);
  CoreTable& t = local.table();
  ASSERT_TRUE(t.try_claim(0, 2));   // p2 borrows p1's core
  ASSERT_TRUE(t.try_claim(8, 2));   // p2 uses own core
  CoordinatorDriver drv(t, 1, 3);
  const DemandSnapshot s = drv.snapshot_cores();
  EXPECT_EQ(s.free_cores, 14u);
  EXPECT_EQ(s.reclaimable_cores, 1u);
}

TEST(CoordinatorDriver, SelectionIsDeterministicAcrossSeeds) {
  // The grant order is a property of the table + topology, not of the
  // seed: two drivers over identical tables must claim identical cores
  // even when seeded differently (selection used to be a seeded shuffle).
  CoreTableLocal a(16, 2), b(16, 2);
  CoordinatorDriver da(a.table(), 1, 999), db(b.table(), 1, 31337);
  const auto wa = da.acquire(WakeDecision{.wake_on_free = 6});
  const auto wb = db.acquire(WakeDecision{.wake_on_free = 6});
  EXPECT_EQ(wa.claimed, wb.claimed);
}

TEST(CoordinatorDriver, EquallyEligibleCoresAreGrantedByAscendingId) {
  // Regression for the iteration-order dependence: when candidates are
  // equally eligible the tie-break is explicit — stable by core id — not
  // whatever order the table scan produced. A reversed-iteration mutant
  // of order_candidates (or of free_cores()) grants {15,14,13,12} and
  // fails here.
  CoreTableLocal local(16, 2);
  CoordinatorDriver drv(local.table(), /*pid=*/1, /*seed=*/0);
  const auto won = drv.acquire(WakeDecision{.wake_on_free = 4});
  EXPECT_EQ(won.claimed, (std::vector<CoreId>{0, 1, 2, 3}));
}

TEST(CoordinatorDriver, ReclaimAlsoGrantsByAscendingId) {
  CoreTableLocal local(8, 2);
  CoreTable& t = local.table();
  // p2 borrows three of p1's home cores (p1 homes 0-3).
  for (CoreId c = 0; c < 3; ++c) ASSERT_TRUE(t.try_claim(c, 2));
  CoordinatorDriver drv(t, 1, 0);
  const auto won = drv.acquire(WakeDecision{.wake_on_reclaim = 2});
  EXPECT_EQ(won.reclaimed, (std::vector<CoreId>{0, 1}));
}

TEST(CoordinatorDriver, TopologyPrefersCoresNearTheHomeSocket) {
  // Tentpole behaviour: with a machine model attached, the core-exchange
  // grants cores nearest the requester's home socket first. Program 2
  // homes the upper socket (cores 8-15) of a 2-socket machine: claiming 6
  // of the 16 free cores must take 8..13 — not the id-ascending 0..5 that
  // the flat tie-break alone would pick.
  const Topology topo = Topology::synthetic(16, 2);
  CoreTableLocal local(16, 2);
  CoordinatorDriver drv(local.table(), /*pid=*/2, /*seed=*/0, &topo,
                        /*home_core=*/8);
  const auto won = drv.acquire(WakeDecision{.wake_on_free = 6});
  EXPECT_EQ(won.claimed, (std::vector<CoreId>{8, 9, 10, 11, 12, 13}));
}

TEST(CoordinatorDriver, SpillsToRemoteSocketOnlyAfterNearIsExhausted) {
  const Topology topo = Topology::synthetic(8, 2);
  CoreTableLocal local(8, 2);
  CoreTable& t = local.table();
  // Another program occupies most of the home socket (cores 4-7).
  ASSERT_TRUE(t.try_claim(4, 1));
  ASSERT_TRUE(t.try_claim(5, 1));
  ASSERT_TRUE(t.try_claim(6, 1));
  CoordinatorDriver drv(t, /*pid=*/2, /*seed=*/0, &topo, /*home_core=*/4);
  const auto won = drv.acquire(WakeDecision{.wake_on_free = 3});
  // The one near core left (7), then the remote socket in id order.
  EXPECT_EQ(won.claimed, (std::vector<CoreId>{7, 0, 1}));
}

TEST(CoordinatorDriver, TwoDriversNeverDoubleClaim) {
  CoreTableLocal local(16, 2);
  CoreTable& t = local.table();
  CoordinatorDriver d1(t, 1, 10), d2(t, 2, 20);
  const auto w1 = d1.acquire(WakeDecision{.wake_on_free = 10});
  const auto w2 = d2.acquire(WakeDecision{.wake_on_free = 10});
  EXPECT_EQ(w1.total() + w2.total(), 16u);
  std::set<CoreId> all;
  for (CoreId c : w1.claimed) all.insert(c);
  for (CoreId c : w2.claimed) all.insert(c);
  EXPECT_EQ(all.size(), 16u);  // disjoint
}

// ---------------------------------------------------------------------------
// StaleSweeper: liveness-epoch stall detection + stale-core recovery.
// All tests inject an AliveProbe so no real kill(2) is involved.

class StaleSweeperTest : public ::testing::Test {
 protected:
  StaleSweeperTest() : local_(8, 2), table_(local_.table()) {
    me_ = table_.register_program();      // id 1, homes cores 0-3
    victim_ = table_.register_program();  // id 2, homes cores 4-7
    table_.bind_liveness(me_, 100);
    table_.bind_liveness(victim_, 200);
    table_.claim_home_cores(me_);
    table_.claim_home_cores(victim_);
  }

  CoreTableLocal local_;
  CoreTable& table_;
  ProgramId me_ = 0;
  ProgramId victim_ = 0;
};

TEST_F(StaleSweeperTest, HeartbeatingProgramIsNeverSwept) {
  StaleSweeper sweeper(table_, me_, 2,
                       [](std::uint32_t) { return false; });  // all "dead"
  for (int period = 0; period < 10; ++period) {
    table_.heartbeat(victim_);  // victim keeps beating
    EXPECT_TRUE(sweeper.sweep().empty()) << "period " << period;
  }
  EXPECT_EQ(table_.count_active(victim_), 4u);
}

TEST_F(StaleSweeperTest, DeadProgramIsSweptAfterExactlyStalePeriods) {
  constexpr unsigned kStale = 3;
  StaleSweeper sweeper(table_, me_, kStale,
                       [](std::uint32_t) { return false; });
  // The victim stops heartbeating (crashed). The first sweep records the
  // baseline epoch; the stall clock then needs kStale stalled periods, so
  // the sweep fires on pass kStale + 1 — i.e. after observing the epoch
  // unchanged across kStale full periods.
  for (unsigned period = 0; period < kStale; ++period) {
    EXPECT_TRUE(sweeper.sweep().empty()) << "period " << period;
  }
  const StaleSweepResult r = sweeper.sweep();
  ASSERT_EQ(r.declared_dead.size(), 1u);
  EXPECT_EQ(r.declared_dead[0], victim_);
  EXPECT_EQ(r.freed.size(), 4u);
  EXPECT_EQ(table_.count_active(victim_), 0u);
  EXPECT_EQ(table_.liveness_os_pid(victim_), 0u);  // record retired
  // My own cores were never touched.
  EXPECT_EQ(table_.count_active(me_), 4u);
}

TEST_F(StaleSweeperTest, RebindWithCollidingEpochRestartsTheStallClock) {
  // Epochs restart at 1 per bind, so a slot rebound to a new process
  // right after its predecessor went silent presents exactly the epoch
  // the sweeper last recorded for the corpse. Keyed on the epoch alone
  // the newcomer inherits the predecessor's stalled count and is swept
  // on the very next pass; keyed on (os_pid, epoch) it gets the full
  // stale_periods budget a fresh binding deserves.
  constexpr unsigned kStale = 3;
  StaleSweeper sweeper(table_, me_, kStale,
                       [](std::uint32_t) { return false; });
  // Stall the victim to the brink: one more silent period sweeps it.
  for (unsigned period = 0; period < kStale; ++period) {
    ASSERT_TRUE(sweeper.sweep().empty()) << "period " << period;
  }
  // The old process exits and a new one binds the same slot. Its first
  // epoch collides with the corpse's last observed one.
  table_.bind_liveness(victim_, 300);
  ASSERT_EQ(table_.liveness_epoch(victim_), 1u);  // the collision is real
  // The next sweep must NOT fire: a different os_pid is a different
  // process, whatever the epoch says.
  EXPECT_TRUE(sweeper.sweep().empty());
  EXPECT_EQ(table_.count_active(victim_), 4u);
  // And the newcomer, if it too goes silent, still gets the full budget.
  for (unsigned period = 0; period < kStale - 1; ++period) {
    EXPECT_TRUE(sweeper.sweep().empty()) << "rebound period " << period;
  }
  const StaleSweepResult r = sweeper.sweep();
  ASSERT_EQ(r.declared_dead.size(), 1u);
  EXPECT_EQ(r.declared_dead[0], victim_);
  EXPECT_EQ(table_.liveness_os_pid(victim_), 0u);
}

TEST_F(StaleSweeperTest, KillProbeVetoesStalledButAliveProgram) {
  // A program can stall its epoch while alive (e.g. an EP co-runner with
  // no coordinator thread, or one wedged in a long syscall). The kill(2)
  // probe is authoritative: alive means never swept.
  StaleSweeper sweeper(table_, me_, 2, [](std::uint32_t) { return true; });
  for (int period = 0; period < 10; ++period) {
    EXPECT_TRUE(sweeper.sweep().empty());
  }
  EXPECT_EQ(table_.count_active(victim_), 4u);
}

TEST_F(StaleSweeperTest, AliveVerdictResetsTheStallClock) {
  // Probe says alive for a while, then the process really dies: the stall
  // clock must restart from the alive verdict, not fire immediately.
  int alive_calls = 2;
  StaleSweeper sweeper(table_, me_, 2, [&alive_calls](std::uint32_t) {
    return alive_calls-- > 0;
  });
  int sweeps_until_dead = 0;
  while (sweeper.sweep().empty()) {
    ASSERT_LT(++sweeps_until_dead, 20) << "sweeper never fired";
  }
  // Two alive verdicts each bought the victim stale_periods more sweeps.
  EXPECT_GE(sweeps_until_dead, 4);
}

TEST_F(StaleSweeperTest, UnboundProgramIsNeverSwept) {
  // os_pid == 0 means no liveness evidence was ever published (e.g. a
  // co-runner predating the protocol). Without evidence there is no
  // verdict: those cores are never force-released.
  CoreTableLocal fresh(8, 2);
  CoreTable& t = fresh.table();
  const ProgramId a = t.register_program();
  const ProgramId b = t.register_program();
  t.bind_liveness(a, 100);
  t.claim_home_cores(a);
  t.claim_home_cores(b);  // b never binds liveness
  StaleSweeper sweeper(t, a, 1, [](std::uint32_t) { return false; });
  for (int period = 0; period < 5; ++period) {
    EXPECT_TRUE(sweeper.sweep().empty());
  }
  EXPECT_EQ(t.count_active(b), 4u);
}

TEST_F(StaleSweeperTest, SweeperSkipsItself) {
  // I never heartbeat in this test, and the probe says dead — but a
  // sweeper must not declare its own program stale.
  StaleSweeper sweeper(table_, me_, 1, [](std::uint32_t) { return false; });
  table_.heartbeat(victim_);
  table_.heartbeat(victim_);
  const StaleSweepResult first = sweeper.sweep();
  EXPECT_TRUE(first.empty());
  table_.heartbeat(victim_);
  EXPECT_TRUE(sweeper.sweep().empty());
  EXPECT_EQ(table_.count_active(me_), 4u);
}

TEST_F(StaleSweeperTest, ZeroStalePeriodsDisablesTheSweep) {
  StaleSweeper sweeper(table_, me_, 0, [](std::uint32_t) { return false; });
  for (int period = 0; period < 5; ++period) {
    EXPECT_TRUE(sweeper.sweep().empty());
  }
  EXPECT_EQ(table_.count_active(victim_), 4u);
}

TEST_F(StaleSweeperTest, TwoSweepersElectExactlyOneRecoverer) {
  // Both survivors notice the same dead program; the retire_liveness CAS
  // guarantees exactly one wins and frees the cores (no double-count).
  CoreTableLocal fresh(12, 3);
  CoreTable& t = fresh.table();
  const ProgramId a = t.register_program();
  const ProgramId b = t.register_program();
  const ProgramId dead = t.register_program();
  t.bind_liveness(a, 100);
  t.bind_liveness(b, 101);
  t.bind_liveness(dead, 102);
  t.claim_home_cores(dead);  // 4 cores
  auto dead_probe = [](std::uint32_t) { return false; };
  StaleSweeper sa(t, a, 1, dead_probe);
  StaleSweeper sb(t, b, 1, dead_probe);
  // Keep a and b beating so they never sweep each other.
  auto beat = [&] {
    t.heartbeat(a);
    t.heartbeat(b);
  };
  beat();
  EXPECT_TRUE(sa.sweep().empty());  // baseline pass
  EXPECT_TRUE(sb.sweep().empty());
  beat();
  StaleSweepResult ra = sa.sweep();
  StaleSweepResult rb = sb.sweep();
  int winners = 0;
  std::size_t freed = 0;
  for (const StaleSweepResult* r : {&ra, &rb}) {
    if (!r->declared_dead.empty()) {
      ++winners;
      freed += r->freed.size();
    }
  }
  EXPECT_EQ(winners, 1);
  EXPECT_EQ(freed, 4u);
  EXPECT_EQ(t.count_active(dead), 0u);
  // Later sweeps stay quiet: the record is retired.
  beat();
  EXPECT_TRUE(sa.sweep().empty());
  EXPECT_TRUE(sb.sweep().empty());
}

}  // namespace
}  // namespace dws
