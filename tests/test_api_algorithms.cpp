// Tests for the higher-level parallel algorithms: parallel_sort and
// parallel_inclusive_scan, across modes, types, comparators, and edge
// cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "runtime/api.hpp"
#include "util/rng.hpp"

namespace dws::rt {
namespace {

Config cfg(SchedMode mode = SchedMode::kDws, unsigned cores = 4) {
  Config c;
  c.mode = mode;
  c.num_cores = cores;
  c.pin_threads = false;
  c.coordinator_period_ms = 2.0;
  return c;
}

std::vector<std::int64_t> random_ints(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.next()) % 100000;
  return v;
}

class SortModes : public ::testing::TestWithParam<SchedMode> {};

TEST_P(SortModes, SortsRandomInput) {
  Scheduler sched(cfg(GetParam()));
  auto v = random_ints(50000, 1);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_sort(sched, v.begin(), v.end());
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(Modes, SortModes,
                         ::testing::Values(SchedMode::kAbp, SchedMode::kDws,
                                           SchedMode::kBws),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

TEST(ParallelSort, EdgeCases) {
  Scheduler sched(cfg());
  std::vector<std::int64_t> empty;
  parallel_sort(sched, empty.begin(), empty.end());
  EXPECT_TRUE(empty.empty());

  std::vector<std::int64_t> one{7};
  parallel_sort(sched, one.begin(), one.end());
  EXPECT_EQ(one[0], 7);

  std::vector<std::int64_t> sorted(1000);
  std::iota(sorted.begin(), sorted.end(), 0);
  auto expected = sorted;
  parallel_sort(sched, sorted.begin(), sorted.end(), std::less<>{}, 16);
  EXPECT_EQ(sorted, expected);

  std::vector<std::int64_t> reversed(1000);
  std::iota(reversed.rbegin(), reversed.rend(), 0);
  parallel_sort(sched, reversed.begin(), reversed.end(), std::less<>{}, 16);
  EXPECT_EQ(reversed, expected);
}

TEST(ParallelSort, CustomComparator) {
  Scheduler sched(cfg());
  auto v = random_ints(10000, 3);
  auto expected = v;
  std::sort(expected.begin(), expected.end(), std::greater<>{});
  parallel_sort(sched, v.begin(), v.end(), std::greater<>{}, 256);
  EXPECT_EQ(v, expected);
}

TEST(ParallelSort, DuplicateHeavyInput) {
  Scheduler sched(cfg());
  util::Xoshiro256 rng(9);
  std::vector<std::int64_t> v(20000);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.next_below(7));
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_sort(sched, v.begin(), v.end(), std::less<>{}, 128);
  EXPECT_EQ(v, expected);
}

TEST(ParallelSort, Strings) {
  Scheduler sched(cfg());
  util::Xoshiro256 rng(11);
  std::vector<std::string> v(5000);
  for (auto& s : v) {
    s = std::to_string(rng.next_below(100000));
  }
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_sort(sched, v.begin(), v.end(), std::less<>{}, 64);
  EXPECT_EQ(v, expected);
}

TEST(ParallelMerge, MergesDisjointAndInterleaved) {
  Scheduler sched(cfg());
  // Interleaved inputs.
  std::vector<std::int64_t> a, b;
  for (std::int64_t i = 0; i < 5000; ++i) (i % 2 ? a : b).push_back(i);
  std::vector<std::int64_t> out(a.size() + b.size());
  sched.run([&] {
    detail::parallel_merge(sched, a.begin(), a.end(), b.begin(), b.end(),
                           out.begin(), std::less<>{}, 64);
  });
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(out.size()); ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)], i);
  }
  // Disjoint inputs (everything in a < everything in b).
  std::vector<std::int64_t> lo(3000), hi(2000);
  std::iota(lo.begin(), lo.end(), 0);
  std::iota(hi.begin(), hi.end(), 3000);
  std::vector<std::int64_t> out2(5000);
  sched.run([&] {
    detail::parallel_merge(sched, lo.begin(), lo.end(), hi.begin(), hi.end(),
                           out2.begin(), std::less<>{}, 64);
  });
  EXPECT_TRUE(std::is_sorted(out2.begin(), out2.end()));
  EXPECT_EQ(out2.front(), 0);
  EXPECT_EQ(out2.back(), 4999);
}

TEST(ParallelMerge, UnevenLengthsAndEmptySides) {
  Scheduler sched(cfg());
  std::vector<std::int64_t> a = {5};
  auto b = random_ints(4000, 21);
  std::sort(b.begin(), b.end());
  std::vector<std::int64_t> expected(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
  std::vector<std::int64_t> out(expected.size());
  sched.run([&] {
    detail::parallel_merge(sched, a.begin(), a.end(), b.begin(), b.end(),
                           out.begin(), std::less<>{}, 32);
  });
  EXPECT_EQ(out, expected);

  std::vector<std::int64_t> empty;
  std::vector<std::int64_t> out3(b.size());
  sched.run([&] {
    detail::parallel_merge(sched, empty.begin(), empty.end(), b.begin(),
                           b.end(), out3.begin(), std::less<>{}, 32);
  });
  EXPECT_EQ(out3, b);
}

TEST(ParallelScan, MatchesSerialPrefixSum) {
  Scheduler sched(cfg());
  auto v = random_ints(100000, 5);
  auto expected = v;
  std::partial_sum(expected.begin(), expected.end(), expected.begin());
  parallel_inclusive_scan(sched, v.data(),
                          static_cast<std::int64_t>(v.size()));
  EXPECT_EQ(v, expected);
}

TEST(ParallelScan, SmallBlockSizeStillCorrect) {
  Scheduler sched(cfg());
  auto v = random_ints(1000, 6);
  auto expected = v;
  std::partial_sum(expected.begin(), expected.end(), expected.begin());
  parallel_inclusive_scan(sched, v.data(),
                          static_cast<std::int64_t>(v.size()), std::plus<>{},
                          /*block=*/7);
  EXPECT_EQ(v, expected);
}

TEST(ParallelScan, EdgeCases) {
  Scheduler sched(cfg());
  std::vector<std::int64_t> empty;
  parallel_inclusive_scan(sched, empty.data(), 0);  // must not crash
  std::vector<std::int64_t> one{5};
  parallel_inclusive_scan(sched, one.data(), 1);
  EXPECT_EQ(one[0], 5);
  // Single block (n < block).
  std::vector<std::int64_t> small{1, 2, 3, 4};
  parallel_inclusive_scan(sched, small.data(), 4);
  EXPECT_EQ(small, (std::vector<std::int64_t>{1, 3, 6, 10}));
}

TEST(ParallelScan, CustomAssociativeOp) {
  // max-scan: running maximum.
  Scheduler sched(cfg());
  auto v = random_ints(50000, 7);
  auto expected = v;
  for (std::size_t i = 1; i < expected.size(); ++i) {
    expected[i] = std::max(expected[i - 1], expected[i]);
  }
  parallel_inclusive_scan(
      sched, v.data(), static_cast<std::int64_t>(v.size()),
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); },
      /*block=*/512);
  EXPECT_EQ(v, expected);
}

TEST(ParallelScan, DoubleSummationTolerance) {
  // The blocked scan computes carry + (within-block prefix) — a different
  // association than the serial left fold, so doubles can differ by
  // rounding; values stay within tight tolerance.
  Scheduler sched(cfg());
  util::Xoshiro256 rng(13);
  std::vector<double> v(10000);
  for (auto& x : v) x = rng.next_double(-1.0, 1.0);
  auto expected = v;
  std::partial_sum(expected.begin(), expected.end(), expected.begin());
  parallel_inclusive_scan(sched, v.data(),
                          static_cast<std::int64_t>(v.size()), std::plus<>{},
                          /*block=*/1024);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], expected[i], 1e-9) << "index " << i;
  }
}

}  // namespace
}  // namespace dws::rt
