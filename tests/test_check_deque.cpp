// Model checks for ChaseLevDeque: the production algorithm compiled over
// check::atomic via the policy parameter, explored exhaustively for small
// scenarios. The exactly-once property (every pushed item leaves the deque
// through exactly one pop or steal) is the linearizability core of the
// work-stealing runtime; grow() buffer retirement and the take-vs-steal
// last-element race get dedicated scenarios.
//
// WeakenedFenceIsCaught is the harness acceptance test: the same scenario
// run over a policy whose seq_cst fences are downgraded to acq_rel must
// fail with a replayable schedule, proving the checker can see the bug
// class the fences exist to prevent.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "runtime/deque.hpp"

namespace dws {
namespace {

using check::Options;
using check::Result;
using check::Sim;

Options exhaustive(int preemption_bound = 2, long max_executions = 200000) {
  Options o;
  o.mode = Options::Mode::kExhaustive;
  o.preemption_bound = preemption_bound;
  o.max_executions = max_executions;
  return o;
}

// Shared scenario: `items` values are pushed during setup (controller,
// quiescent), then the owner thread performs `owner_pops` pops while each
// of `thieves` thief threads attempts `steals_per_thief` steals. On exit
// the controller drains the deque and asserts every item was consumed
// exactly once and nothing was invented.
template <typename Policy>
struct ExactlyOnce {
  using Deque = rt::ChaseLevDeque<int, Policy>;

  int items = 2;
  int owner_pops = 1;
  int thieves = 1;
  int steals_per_thief = 1;
  std::size_t capacity = 8;

  void operator()(Sim& sim) const {
    struct State {
      explicit State(std::size_t cap) : dq(cap) {}
      Deque dq;
      std::vector<int> consumed;  // plain memory: threads are serialized
    };
    auto st = std::make_shared<State>(capacity);
    for (int i = 1; i <= items; ++i) st->dq.push(i);

    sim.spawn([st, n = owner_pops] {
      for (int i = 0; i < n; ++i) {
        if (auto v = st->dq.pop()) st->consumed.push_back(*v);
      }
    });
    for (int th = 0; th < thieves; ++th) {
      sim.spawn([st, n = steals_per_thief] {
        for (int i = 0; i < n; ++i) {
          if (auto v = st->dq.steal()) st->consumed.push_back(*v);
        }
      });
    }

    sim.on_exit([st, total = items] {
      while (auto v = st->dq.pop()) st->consumed.push_back(*v);
      check::expect(
          static_cast<int>(st->consumed.size()) == total,
          "item count mismatch: consumed != pushed (lost or duplicated)");
      std::map<int, int> seen;
      for (int v : st->consumed) ++seen[v];
      for (int i = 1; i <= total; ++i) {
        check::expect(seen.count(i) == 1 && seen[i] == 1,
                      "item not consumed exactly once");
      }
    });
  }
};

using CheckedScenario = ExactlyOnce<check::CheckAtomicsPolicy>;
using WeakScenario = ExactlyOnce<check::WeakenSeqCstFences<>>;

TEST(ChaseLevDequeCheck, TakeVsStealLastElement) {
  CheckedScenario s;
  s.items = 1;
  s.owner_pops = 1;
  s.thieves = 1;
  s.steals_per_thief = 1;
  const Result r = check::explore(exhaustive(3), s);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated) << "execution budget exhausted";
  EXPECT_GT(r.executions, 1);
}

TEST(ChaseLevDequeCheck, PopVsStealTwoItems) {
  CheckedScenario s;
  s.items = 2;
  s.owner_pops = 2;
  s.thieves = 1;
  s.steals_per_thief = 1;
  const Result r = check::explore(exhaustive(2), s);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
}

TEST(ChaseLevDequeCheck, TwoThievesSingleItem) {
  CheckedScenario s;
  s.items = 1;
  s.owner_pops = 0;
  s.thieves = 2;
  s.steals_per_thief = 1;
  const Result r = check::explore(exhaustive(3), s);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
}

TEST(ChaseLevDequeCheck, TwoThievesTwoItemsWithOwner) {
  CheckedScenario s;
  s.items = 2;
  s.owner_pops = 1;
  s.thieves = 2;
  s.steals_per_thief = 1;
  const Result r = check::explore(exhaustive(2), s);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

// grow() while a thief is mid-steal: capacity 2, owner pushes two more
// in-thread (forcing a grow with live elements) while the thief races.
// Retirement bound: every retired buffer is half the next one, so the
// retired total stays below the live capacity (2x high-water overall).
TEST(ChaseLevDequeCheck, GrowUnderConcurrentSteal) {
  using Deque = rt::ChaseLevDeque<int, check::CheckAtomicsPolicy>;
  const Result r = check::explore(exhaustive(2), [](Sim& sim) {
    struct State {
      State() : dq(2) {}
      Deque dq;
      std::vector<int> consumed;
    };
    auto st = std::make_shared<State>();
    st->dq.push(1);
    st->dq.push(2);  // full at capacity 2

    sim.spawn([st] {
      st->dq.push(3);  // forces grow(2 -> 4) with both items live
      st->dq.push(4);
      st->dq.push(5);  // forces grow(4 -> 8)
    });
    sim.spawn([st] {
      for (int i = 0; i < 2; ++i) {
        if (auto v = st->dq.steal()) st->consumed.push_back(*v);
      }
    });

    sim.on_exit([st] {
      while (auto v = st->dq.pop()) st->consumed.push_back(*v);
      check::expect(st->consumed.size() == 5, "items lost across grow()");
      std::map<int, int> seen;
      for (int v : st->consumed) ++seen[v];
      for (int i = 1; i <= 5; ++i) {
        check::expect(seen[i] == 1, "item not consumed exactly once");
      }
      check::expect(st->dq.retired_count() >= 1, "grow() did not retire");
      check::expect(st->dq.retired_capacity_total() < st->dq.capacity(),
                    "retired memory exceeds documented bound");
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
}

// Bounded retirement: grow() hands retired buffers to try_reclaim(),
// which frees them only at steal-quiescence (no thief between its
// announce and its exit). The owner calls try_reclaim() both inside
// grow() and explicitly mid-race — the checker explores interleavings
// where a thief is mid-steal (reclaim must refuse) and where it is not
// (reclaim frees; a subsequent stale-positioned thief must still be
// safe). An unsound reclaim frees a buffer the thief still reads, which
// the instrumented atomics turn into a hard failure. On exit, with
// everything quiescent, reclamation must succeed and empty the list.
TEST(ChaseLevDequeCheck, GrowReclaimQuiescence) {
  using Deque = rt::ChaseLevDeque<int, check::CheckAtomicsPolicy>;
  const Result r = check::explore(exhaustive(2), [](Sim& sim) {
    struct State {
      State() : dq(2) {}
      Deque dq;
      std::vector<int> consumed;
    };
    auto st = std::make_shared<State>();
    st->dq.push(1);
    st->dq.push(2);  // full at capacity 2

    sim.spawn([st] {
      st->dq.push(3);  // grow(2 -> 4): retires the first buffer
      st->dq.push(4);
      st->dq.push(5);  // grow(4 -> 8): internal try_reclaim may free it
      st->dq.try_reclaim();  // explicit owner-side attempt mid-race
    });
    sim.spawn([st] {
      for (int i = 0; i < 2; ++i) {
        if (auto v = st->dq.steal()) st->consumed.push_back(*v);
      }
    });

    sim.on_exit([st] {
      while (auto v = st->dq.pop()) st->consumed.push_back(*v);
      check::expect(st->consumed.size() == 5, "items lost across grow()");
      std::map<int, int> seen;
      for (int v : st->consumed) ++seen[v];
      for (int i = 1; i <= 5; ++i) {
        check::expect(seen[i] == 1, "item not consumed exactly once");
      }
      // Quiescent: no thief can be in flight, so reclamation must both
      // succeed and leave nothing retired.
      check::expect(st->dq.try_reclaim(), "quiescent reclaim refused");
      check::expect(st->dq.retired_count() == 0,
                    "retired buffers survived a quiescent reclaim");
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
}

// Acceptance: downgrading the seq_cst fences in pop()/steal() to acq_rel
// breaks the owner/thief arbitration — the checker must catch it and the
// failure must replay from the recorded schedule.
TEST(ChaseLevDequeCheck, WeakenedFenceIsCaught) {
  WeakScenario weak;
  weak.items = 2;
  weak.owner_pops = 1;
  weak.thieves = 1;
  weak.steals_per_thief = 2;

  const Result r = check::explore(exhaustive(3), weak);
  ASSERT_TRUE(r.failed)
      << "checker failed to find the seeded weak-memory bug";
  EXPECT_FALSE(r.schedule.empty());
  EXPECT_FALSE(r.trace.empty());

  // The recorded schedule deterministically reproduces the failure.
  Options replay = exhaustive(3);
  replay.replay = r.schedule;
  const Result again = check::explore(replay, weak);
  EXPECT_TRUE(again.failed);
  EXPECT_EQ(again.message, r.message);
  EXPECT_EQ(again.executions, 1);

  // Control: the identical scenario with the real fences passes clean.
  CheckedScenario sound;
  sound.items = 2;
  sound.owner_pops = 1;
  sound.thieves = 1;
  sound.steals_per_thief = 2;
  const Result ok = check::explore(exhaustive(3), sound);
  EXPECT_FALSE(ok.failed) << ok.message << "\n" << ok.trace;
  EXPECT_FALSE(ok.truncated);
}

// Random mode also lands on the seeded bug, with a stable failing seed.
TEST(ChaseLevDequeCheck, WeakenedFenceIsCaughtByRandomSearch) {
  WeakScenario weak;
  weak.items = 2;
  weak.owner_pops = 1;
  weak.thieves = 1;
  weak.steals_per_thief = 2;

  Options o;
  o.mode = Options::Mode::kRandom;
  o.iterations = 4000;
  o.seed = 42;
  const Result r = check::explore(o, weak);
  EXPECT_TRUE(r.failed);
  if (r.failed) {
    Options rerun = o;
    rerun.iterations = 1;
    rerun.seed = r.failing_seed;
    const Result again = check::explore(rerun, weak);
    EXPECT_TRUE(again.failed);
  }
}

}  // namespace
}  // namespace dws
