// Unit tests for the task primitives: TaskGroup join counting, exception
// capture semantics, timed blocking, and TaskBase execution/destruction.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "runtime/task.hpp"

namespace dws::rt {
namespace {

using namespace std::chrono_literals;

TEST(TaskGroup, StartsDone) {
  TaskGroup g;
  EXPECT_TRUE(g.done());
  EXPECT_EQ(g.pending(), 0);
}

TEST(TaskGroup, PendingCountsUpAndDown) {
  TaskGroup g;
  g.add_pending();
  g.add_pending();
  EXPECT_FALSE(g.done());
  EXPECT_EQ(g.pending(), 2);
  g.complete_one();
  EXPECT_FALSE(g.done());
  g.complete_one();
  EXPECT_TRUE(g.done());
}

TEST(TaskGroup, TimedBlockReturnsImmediatelyWhenDone) {
  TaskGroup g;
  const auto start = std::chrono::steady_clock::now();
  g.timed_block(1s);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 500ms);
}

TEST(TaskGroup, TimedBlockWakesOnCompletion) {
  TaskGroup g;
  g.add_pending();
  std::thread completer([&] {
    std::this_thread::sleep_for(20ms);
    g.complete_one();
  });
  const auto start = std::chrono::steady_clock::now();
  while (!g.done()) g.timed_block(5s);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 4s);
  completer.join();
}

TEST(TaskGroup, CapturesFirstExceptionOnly) {
  TaskGroup g;
  g.capture_exception(std::make_exception_ptr(std::runtime_error("first")));
  g.capture_exception(std::make_exception_ptr(std::logic_error("second")));
  try {
    g.rethrow_if_exception();
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  } catch (...) {
    FAIL() << "wrong exception type (second capture must be dropped)";
  }
}

TEST(TaskGroup, RethrowClearsTheException) {
  TaskGroup g;
  g.capture_exception(std::make_exception_ptr(std::runtime_error("once")));
  EXPECT_THROW(g.rethrow_if_exception(), std::runtime_error);
  EXPECT_NO_THROW(g.rethrow_if_exception());  // consumed
}

TEST(TaskGroup, NoExceptionNoThrow) {
  TaskGroup g;
  EXPECT_NO_THROW(g.rethrow_if_exception());
}

TEST(TaskBase, RunAndDestroyExecutesAndCompletesGroup) {
  TaskGroup g;
  g.add_pending();
  std::atomic<bool> ran{false};
  auto* task = new TaskImpl(&g, [&] { ran = true; });
  task->run_and_destroy();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(g.done());
}

TEST(TaskBase, ThrowingTaskStillCompletesGroup) {
  TaskGroup g;
  g.add_pending();
  auto* task =
      new TaskImpl(&g, [] { throw std::runtime_error("task failed"); });
  task->run_and_destroy();  // noexcept: must not propagate
  EXPECT_TRUE(g.done());
  EXPECT_THROW(g.rethrow_if_exception(), std::runtime_error);
}

TEST(TaskBase, NullGroupIsAllowed) {
  auto* task = new TaskImpl(static_cast<TaskGroup*>(nullptr), [] {});
  task->run_and_destroy();  // must not crash
  SUCCEED();
}

TEST(TaskBase, MoveOnlyPayload) {
  TaskGroup g;
  g.add_pending();
  auto ptr = std::make_unique<int>(41);
  std::atomic<int> result{0};
  auto* task = new TaskImpl(&g, [p = std::move(ptr), &result]() mutable {
    result = *p + 1;
  });
  task->run_and_destroy();
  EXPECT_EQ(result.load(), 42);
}

TEST(TaskGroup, ConcurrentCompletionsAreExact) {
  TaskGroup g;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) g.add_pending();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kN / 4; ++i) g.complete_one();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(g.done());
  EXPECT_EQ(g.pending(), 0);
}

}  // namespace
}  // namespace dws::rt
