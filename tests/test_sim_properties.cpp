// Property sweep over the simulator: for every (mode × machine width ×
// program count × workload shape) combination, a set of invariants must
// hold — completion, work conservation, busy-time bounds, table
// consistency, and bitwise determinism.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace dws::sim {
namespace {

TaskDag make_shape(int shape) {
  switch (shape) {
    case 0: return make_fork_join_tree(5, 2, 150.0, 1.0, 1.0, 0.3);
    case 1: return make_iterative_phases(8, 32, 60.0, 0.9, 1.0);
    case 2: return make_decreasing_chains(16, 24, 1, 2, 75.0, 0.4, 2.0);
    default: return make_irregular_tree(11, 400, 3, 30.0, 300.0, 0.2);
  }
}

const char* shape_name(int shape) {
  switch (shape) {
    case 0: return "Tree";
    case 1: return "Phases";
    case 2: return "Chains";
    default: return "Irregular";
  }
}

using Combo = std::tuple<SchedMode, unsigned, unsigned, int>;

class SimProperty : public ::testing::TestWithParam<Combo> {};

TEST_P(SimProperty, InvariantsHold) {
  const auto [mode, cores, programs, shape] = GetParam();
  if (mode_space_shares(mode) && programs > cores) {
    // EP rejects homeless programs outright; DWS admits them but makes
    // no progress guarantee (constraint 3 forbids preempting non-owned
    // cores) — starvation is legitimate, so the completion invariants
    // do not apply. See FailureInjection.ManyProgramsOnFewCores.
    GTEST_SKIP() << "space-sharing requires a home core per program";
  }
  const TaskDag dag = make_shape(shape);

  SimParams params;
  params.num_cores = cores;
  params.num_sockets = cores >= 8 ? 2 : 1;

  std::vector<SimProgramSpec> specs;
  for (unsigned i = 0; i < programs; ++i) {
    SimProgramSpec s;
    s.name = "p" + std::to_string(i);
    s.mode = mode;
    s.dag = &dag;
    s.target_runs = 2;
    s.default_mem_intensity = 0.3;
    specs.push_back(s);
  }

  SimEngine engine(params, specs);
  const SimResult r = engine.run();

  // 1. Completion: no time limit, every program met its target.
  ASSERT_FALSE(r.hit_time_limit);
  for (const auto& p : r.programs) {
    EXPECT_GE(p.run_times_us.size(), 2u) << p.name;
    EXPECT_GE(p.tasks_executed, dag.size() * 2) << p.name;
    // 2. Work conservation: executed wall time covers at least the DAG
    //    work for the completed runs (cache penalties only add).
    EXPECT_GE(p.exec_time_us + 1e-6,
              dag.total_work() * 2)
        << p.name;
    // 3. Run times are positive and at least the critical path.
    for (double t : p.run_times_us) {
      EXPECT_GE(t, dag.critical_path() * 0.999) << p.name;
    }
    // 4. Stats sanity: wakes never exceed sleeps (a worker must sleep
    //    before it can be woken); steals <= steal attempts implied by
    //    failed+steals.
    EXPECT_LE(p.wakes, p.sleeps) << p.name;
  }

  // 5. Per-core occupancy bounds.
  ASSERT_EQ(r.core_busy_us.size(), cores);
  for (unsigned c = 0; c < cores; ++c) {
    EXPECT_LE(r.core_exec_us[c], r.core_busy_us[c] + 1e-9);
    EXPECT_LE(r.core_busy_us[c], r.total_time_us + 1e-9);
  }

  // 6. Total productive time across cores equals the sum of programs'
  //    exec time.
  double core_exec = 0.0, prog_exec = 0.0;
  for (double e : r.core_exec_us) core_exec += e;
  for (const auto& p : r.programs) prog_exec += p.exec_time_us;
  EXPECT_NEAR(core_exec, prog_exec, 1e-6 * (core_exec + 1.0));
}

TEST_P(SimProperty, BitwiseDeterministicReplay) {
  const auto [mode, cores, programs, shape] = GetParam();
  if (mode_space_shares(mode) && programs > cores) {
    // EP rejects homeless programs outright; DWS admits them but makes
    // no progress guarantee (constraint 3 forbids preempting non-owned
    // cores) — starvation is legitimate, so the completion invariants
    // do not apply. See FailureInjection.ManyProgramsOnFewCores.
    GTEST_SKIP() << "space-sharing requires a home core per program";
  }
  const TaskDag dag = make_shape(shape);
  SimParams params;
  params.num_cores = cores;
  params.num_sockets = cores >= 8 ? 2 : 1;

  auto once = [&] {
    std::vector<SimProgramSpec> specs;
    for (unsigned i = 0; i < programs; ++i) {
      SimProgramSpec s;
      s.name = "p" + std::to_string(i);
      s.mode = mode;
      s.dag = &dag;
      s.target_runs = 2;
      specs.push_back(s);
    }
    SimEngine engine(params, specs);
    return engine.run();
  };
  const SimResult a = once();
  const SimResult b = once();
  ASSERT_EQ(a.total_time_us, b.total_time_us);
  for (std::size_t i = 0; i < a.programs.size(); ++i) {
    EXPECT_EQ(a.programs[i].run_times_us, b.programs[i].run_times_us);
    EXPECT_EQ(a.programs[i].steals, b.programs[i].steals);
    EXPECT_EQ(a.programs[i].failed_steals, b.programs[i].failed_steals);
    EXPECT_EQ(a.programs[i].sleeps, b.programs[i].sleeps);
    EXPECT_EQ(a.programs[i].cores_claimed, b.programs[i].cores_claimed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimProperty,
    ::testing::Combine(
        ::testing::Values(SchedMode::kClassic, SchedMode::kAbp, SchedMode::kEp,
                          SchedMode::kDws, SchedMode::kDwsNc, SchedMode::kBws),
        ::testing::Values(2u, 4u, 16u),   // machine width
        ::testing::Values(1u, 2u, 3u),    // co-running programs
        ::testing::Values(0, 1, 2, 3)),   // workload shape
    [](const auto& info) {
      std::string s = std::string(to_string(std::get<0>(info.param))) + "_k" +
                      std::to_string(std::get<1>(info.param)) + "_m" +
                      std::to_string(std::get<2>(info.param)) + "_" +
                      shape_name(std::get<3>(info.param));
      for (auto& ch : s) {
        if (ch == '-') ch = '_';
      }
      return s;
    });

// Mixed-mode co-running: programs with different schedulers sharing one
// machine must still complete (DWS + ABP is the realistic migration
// scenario: one program upgraded to DWS, the other not).
TEST(SimMixedModes, DwsAndAbpCoexist) {
  const TaskDag dag = make_fork_join_tree(6, 2, 150.0, 1.0, 1.0, 0.3);
  SimParams params;
  params.num_cores = 8;
  params.num_sockets = 1;
  SimProgramSpec a;
  a.name = "dws";
  a.mode = SchedMode::kDws;
  a.dag = &dag;
  a.target_runs = 2;
  SimProgramSpec b = a;
  b.name = "abp";
  b.mode = SchedMode::kAbp;
  SimEngine engine(params, {a, b});
  const SimResult r = engine.run();
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_GE(r.program("dws").run_times_us.size(), 2u);
  EXPECT_GE(r.program("abp").run_times_us.size(), 2u);
}

TEST(SimMixedModes, WorkSharingAndStealingCoexistUnderEveryMode) {
  const TaskDag dag = make_fork_join_tree(5, 2, 120.0, 1.0, 1.0, 0.2);
  for (SchedMode mode : {SchedMode::kAbp, SchedMode::kDws}) {
    SimParams params;
    params.num_cores = 4;
    params.num_sockets = 1;
    SimProgramSpec ws;
    ws.name = "sharing";
    ws.mode = mode;
    ws.dag = &dag;
    ws.target_runs = 2;
    ws.work_sharing = true;
    SimProgramSpec st = ws;
    st.name = "stealing";
    st.work_sharing = false;
    SimEngine engine(params, {ws, st});
    const SimResult r = engine.run();
    EXPECT_FALSE(r.hit_time_limit) << to_string(mode);
  }
}

}  // namespace
}  // namespace dws::sim
