// Unit tests for src/util: RNG determinism and distribution sanity,
// statistics accumulators, CLI parsing.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace dws::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, IsDeterministicAcrossInstances) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowStaysInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 16ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowZeroAndOneAreZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, NextBelowCoversAllResidues) {
  Xoshiro256 rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(16));
  EXPECT_EQ(seen.size(), 16u);  // all 16 victims reachable
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(31337);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.1);
  }
}

TEST(Xoshiro256, NextDoubleIsInUnitInterval) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleRangeRespectsBounds) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Samples, PercentilesInterpolate) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.95), 95.05, 1e-9);
}

TEST(Samples, EmptyPercentileIsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Samples, MeanStddev) {
  Samples s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Geomean, KnownValues) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({4.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, NonPositiveSamplesAreExcludedNotPoisonous) {
  // The geometric mean is defined over positive reals. A zero sample
  // (a zero-time bench rep) used to drive log() to -inf and turn the
  // whole cross-mix figure into NaN/0; the policy is now to exclude
  // non-positive samples from the mean.
  EXPECT_NEAR(geomean({2.0, 0.0, 8.0}), 4.0, 1e-12);    // mean of {2, 8}
  EXPECT_NEAR(geomean({-1.0, 4.0}), 4.0, 1e-12);        // mean of {4}
  EXPECT_NEAR(geomean({0.0, -3.0, 9.0}), 9.0, 1e-12);   // mean of {9}
  EXPECT_FALSE(std::isnan(geomean({0.0, 2.0})));
  EXPECT_TRUE(std::isfinite(geomean({0.0, 2.0})));
}

TEST(Geomean, AllNonPositiveIsZero) {
  // With nothing left after exclusion there is no mean to report; 0
  // matches the empty-input convention (and is itself outside the
  // geomean's range, so it cannot be mistaken for a real figure).
  EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({0.0, -2.0, 0.0}), 0.0);
}

TEST(Samples, PercentilesOverloadMatchesRepeatedCalls) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(101 - i);  // unsorted input
  const std::vector<double> qs{0.0, 0.5, 0.9, 0.95, 0.99, 1.0};
  const std::vector<double> got = s.percentiles(qs);
  ASSERT_EQ(got.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], s.percentile(qs[i])) << "q=" << qs[i];
  }
}

TEST(Samples, PercentilesOverloadOnEmptyInput) {
  Samples s;
  const std::vector<double> got = s.percentiles({0.5, 0.99});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0], 0.0);
  EXPECT_DOUBLE_EQ(got[1], 0.0);
}

TEST(CliArgs, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--cores=16", "--mode=DWS"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("cores", 0), 16);
  EXPECT_EQ(args.get_str("mode"), "DWS");
}

TEST(CliArgs, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--cores", "8"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("cores", 0), 8);
}

TEST(CliArgs, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  CliArgs args(2, argv);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
}

TEST(CliArgs, MissingKeyReturnsDefault) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_EQ(args.get_str("s", "d"), "d");
}

TEST(CliArgs, MalformedIntThrows) {
  const char* argv[] = {"prog", "--n=12x"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
}

TEST(CliArgs, MalformedBoolThrows) {
  const char* argv[] = {"prog", "--b=maybe"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_bool("b", false), std::invalid_argument);
}

TEST(CliArgs, IntListParses) {
  const char* argv[] = {"prog", "--tsleep=1,2,4,8"};
  CliArgs args(2, argv);
  const auto v = args.get_int_list("tsleep", {});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[3], 8);
}

TEST(CliArgs, PositionalPreserved) {
  const char* argv[] = {"prog", "alpha", "--k=1", "beta"};
  CliArgs args(4, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "alpha");
  EXPECT_EQ(args.positional()[1], "beta");
}

TEST(Stopwatch, MeasuresMonotonicTime) {
  Stopwatch sw;
  const auto a = sw.elapsed_ns();
  const auto b = sw.elapsed_ns();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

}  // namespace
}  // namespace dws::util
