// Tests for the Chase-Lev work-stealing deque: sequential semantics,
// growth, and owner-vs-thief stress with full element accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "runtime/deque.hpp"

namespace dws::rt {
namespace {

TEST(ChaseLevDeque, StartsEmpty) {
  ChaseLevDeque<int*> d;
  EXPECT_TRUE(d.empty_approx());
  EXPECT_EQ(d.size_approx(), 0u);
  EXPECT_FALSE(d.pop().has_value());
  EXPECT_FALSE(d.steal().has_value());
}

TEST(ChaseLevDeque, PopIsLifo) {
  ChaseLevDeque<std::intptr_t> d;
  for (std::intptr_t i = 1; i <= 5; ++i) d.push(i);
  for (std::intptr_t i = 5; i >= 1; --i) {
    auto v = d.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(d.pop().has_value());
}

TEST(ChaseLevDeque, StealIsFifo) {
  ChaseLevDeque<std::intptr_t> d;
  for (std::intptr_t i = 1; i <= 5; ++i) d.push(i);
  for (std::intptr_t i = 1; i <= 5; ++i) {
    auto v = d.steal();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(d.steal().has_value());
}

TEST(ChaseLevDeque, MixedPopAndStealMeetInTheMiddle) {
  ChaseLevDeque<std::intptr_t> d;
  for (std::intptr_t i = 1; i <= 4; ++i) d.push(i);
  EXPECT_EQ(*d.steal(), 1);  // oldest
  EXPECT_EQ(*d.pop(), 4);    // newest
  EXPECT_EQ(*d.steal(), 2);
  EXPECT_EQ(*d.pop(), 3);
  EXPECT_FALSE(d.pop().has_value());
  EXPECT_FALSE(d.steal().has_value());
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<std::intptr_t> d(4);
  const std::intptr_t n = 10000;
  for (std::intptr_t i = 0; i < n; ++i) d.push(i);
  EXPECT_EQ(d.size_approx(), static_cast<std::size_t>(n));
  EXPECT_GE(d.capacity(), static_cast<std::size_t>(n));
  for (std::intptr_t i = n - 1; i >= 0; --i) EXPECT_EQ(*d.pop(), i);
}

TEST(ChaseLevDeque, ReusableAfterDraining) {
  ChaseLevDeque<std::intptr_t> d(4);
  for (int round = 0; round < 100; ++round) {
    for (std::intptr_t i = 0; i < 7; ++i) d.push(i);
    for (std::intptr_t i = 0; i < 7; ++i) ASSERT_TRUE(d.pop().has_value());
    ASSERT_FALSE(d.pop().has_value());
  }
}

// Stress: one owner pushes/pops while several thieves steal. Every pushed
// element must be consumed exactly once (across pops and steals).
TEST(ChaseLevDequeStress, NoLossNoDuplication) {
  constexpr std::intptr_t kItems = 200000;
  constexpr int kThieves = 3;
  ChaseLevDeque<std::intptr_t> d(8);

  std::atomic<bool> owner_done{false};
  std::atomic<std::int64_t> sum_consumed{0};
  std::atomic<std::int64_t> count_consumed{0};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::int64_t local_sum = 0, local_count = 0;
      while (!owner_done.load(std::memory_order_acquire) ||
             !d.empty_approx()) {
        if (auto v = d.steal()) {
          local_sum += *v;
          ++local_count;
        }
      }
      sum_consumed.fetch_add(local_sum);
      count_consumed.fetch_add(local_count);
    });
  }

  // Owner: push in bursts, pop some back.
  std::int64_t own_sum = 0, own_count = 0;
  for (std::intptr_t i = 1; i <= kItems; ++i) {
    d.push(i);
    if (i % 3 == 0) {
      if (auto v = d.pop()) {
        own_sum += *v;
        ++own_count;
      }
    }
  }
  // Drain the remainder as the owner.
  while (auto v = d.pop()) {
    own_sum += *v;
    ++own_count;
  }
  owner_done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();
  // Thieves may have raced the final owner drain; collect stragglers.
  while (auto v = d.steal()) {
    own_sum += *v;
    ++own_count;
  }

  const std::int64_t expected_sum =
      static_cast<std::int64_t>(kItems) * (kItems + 1) / 2;
  EXPECT_EQ(count_consumed.load() + own_count, kItems);
  EXPECT_EQ(sum_consumed.load() + own_sum, expected_sum);
}

// Stress growth under concurrent stealing: the owner pushes enough to
// force several buffer growths while thieves are active.
TEST(ChaseLevDequeStress, GrowthUnderConcurrentSteals) {
  ChaseLevDeque<std::intptr_t> d(2);
  constexpr std::intptr_t kItems = 100000;
  std::atomic<std::int64_t> stolen_count{0};
  std::atomic<bool> done{false};

  std::thread thief([&] {
    std::int64_t local = 0;
    while (!done.load(std::memory_order_acquire) || !d.empty_approx()) {
      if (d.steal()) ++local;
    }
    stolen_count.fetch_add(local);
  });

  std::int64_t popped = 0;
  for (std::intptr_t i = 0; i < kItems; ++i) d.push(i);
  while (d.pop()) ++popped;
  done.store(true, std::memory_order_release);
  thief.join();
  while (d.steal()) ++popped;

  EXPECT_EQ(stolen_count.load() + popped, kItems);
}

// Regression for unbounded buffer retirement: grow() used to park every
// old buffer on the retired list until destruction, so a long-lived
// worker deque leaked its whole growth history. Retirement is now
// bounded: grow() reclaims at steal-quiescence, and an explicit
// quiescent try_reclaim() must always succeed and empty the list.
TEST(ChaseLevDeque, RetiredBuffersAreReclaimedAtQuiescence) {
  ChaseLevDeque<std::intptr_t> d(2);
  for (std::intptr_t i = 0; i < 5000; ++i) d.push(i);  // many grows
  // Single-threaded: every grow's internal try_reclaim frees the earlier
  // retirees, so only the most recent grow's buffer can remain.
  EXPECT_EQ(d.retired_count(), 1u);
  EXPECT_TRUE(d.try_reclaim());
  EXPECT_EQ(d.retired_count(), 0u);
  EXPECT_EQ(d.retired_capacity_total(), 0u);
  for (std::intptr_t i = 4999; i >= 0; --i) EXPECT_EQ(*d.pop(), i);
}

// try_reclaim under live thieves: it may refuse while a steal is in
// flight, but must never lose elements, and must succeed once the
// thieves are gone.
TEST(ChaseLevDequeStress, ReclaimUnderConcurrentSteals) {
  ChaseLevDeque<std::intptr_t> d(2);
  constexpr std::intptr_t kItems = 50000;
  std::atomic<std::int64_t> stolen_count{0};
  std::atomic<bool> done{false};

  std::thread thief([&] {
    std::int64_t local = 0;
    while (!done.load(std::memory_order_acquire) || !d.empty_approx()) {
      if (d.steal()) ++local;
    }
    stolen_count.fetch_add(local);
  });

  std::int64_t popped = 0;
  for (std::intptr_t i = 0; i < kItems; ++i) {
    d.push(i);
    if (i % 1024 == 0) d.try_reclaim();  // owner-side, mid-traffic
  }
  while (d.pop()) ++popped;
  done.store(true, std::memory_order_release);
  thief.join();
  while (d.steal()) ++popped;

  EXPECT_EQ(stolen_count.load() + popped, kItems);
  EXPECT_TRUE(d.try_reclaim()) << "no thief in flight after join";
  EXPECT_EQ(d.retired_count(), 0u);
}

// Exactly-once when two thieves fight over a single element repeatedly.
TEST(ChaseLevDequeStress, SingleElementContention) {
  ChaseLevDeque<std::intptr_t> d;
  constexpr int kRounds = 50000;
  std::atomic<int> consumed{0};
  std::atomic<int> round_flag{0};
  std::atomic<bool> stop{false};

  auto thief_fn = [&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (d.steal()) consumed.fetch_add(1);
    }
  };
  std::thread t1(thief_fn), t2(thief_fn);

  for (int r = 0; r < kRounds; ++r) {
    d.push(r);
    // Sometimes the owner fights for it too.
    if (r % 2 == 0) {
      if (d.pop()) consumed.fetch_add(1);
    }
    (void)round_flag;
  }
  // Wait for thieves to drain the rest.
  while (!d.empty_approx()) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  t1.join();
  t2.join();
  while (d.steal()) consumed.fetch_add(1);

  EXPECT_EQ(consumed.load(), kRounds);
}

}  // namespace
}  // namespace dws::rt
