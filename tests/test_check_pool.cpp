// Model checks for the task-pool recycle protocol (runtime/task_pool.hpp)
// composed with the production ChaseLevDeque: the real TaskPool and deque
// compiled over check::atomic, explored exhaustively.
//
// The property is generation exactly-once: each pool slot carries a
// persistent atomic "generation" cell in its storage; every occupancy
// stores a fresh generation before the slot is pushed, and every consumer
// (owner pop or thief steal) must read back exactly the generation that
// was published for it — never a stale one from a previous occupant. This
// is the ABA shape of task recycling: a slot can be popped, released,
// re-allocated, and re-pushed while a stale thief still holds its pointer
// from an earlier read of the deque buffer; the thief's CAS on top_ must
// lose, or — if it wins a later generation fairly — the publication fence
// must make the new occupant's bytes visible.
//
// The generation cell is deliberately constructed ONCE per slot and
// re-stored per occupancy (not destroyed/reconstructed): the model
// checker explores stale reads out of one location's store history, so
// the cell must keep one history across occupancies for staleness to be
// representable at all.
//
// WeakenedPublishFenceIsCaught is the acceptance test: downgrading the
// deque's release fence to relaxed erases the payload-publication edge,
// and the checker must find an interleaving where a consumer reads a
// stale (or never-published) slot value — proving these scenarios can see
// the bug class they exist to prevent.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "check/check.hpp"
#include "runtime/deque.hpp"
#include "runtime/task_pool.hpp"

namespace dws {
namespace {

using check::Options;
using check::Result;
using check::Sim;

Options exhaustive(int preemption_bound = 2, long max_executions = 400000) {
  Options o;
  o.mode = Options::Mode::kExhaustive;
  o.preemption_bound = preemption_bound;
  o.max_executions = max_executions;
  return o;
}

// One generation cell per slot, living inside the slot's storage bytes.
using Gen = check::atomic<long long>;

// Recycle-under-steal scenario over an injectable policy. Tiny pool
// (2-slot slabs) and deque so slot reuse happens within a handful of
// operations. The owner allocates/publishes `generations` slots,
// interleaving `owner_pops` own-side pops (each pop releases the slot
// locally, so the next allocate reuses it — the recycle edge under test);
// one thief races `thief_steals` steals, releasing remotely.
template <typename Policy>
struct RecycleScenario {
  using Pool = rt::TaskPool<sizeof(Gen), 2, Policy>;
  using Deque = rt::ChaseLevDeque<void*, Policy>;
  using Slot = typename Pool::Slot;

  int generations = 3;
  int owner_pops = 1;
  int thief_steals = 2;
  std::size_t capacity = 4;

  struct State {
    explicit State(std::size_t cap) : dq(cap) {}
    ~State() {
      for (auto& [mem, cell] : cells) cell->~Gen();
    }
    Pool pool;
    Deque dq;
    std::map<void*, Gen*> cells;      // plain: threads are serialized
    std::vector<long long> consumed;  // -1 records a null/stale pointer
  };

  static Gen* cell(State& st, Slot* slot) {
    void* mem = Pool::storage(slot);
    auto it = st.cells.find(mem);
    if (it != st.cells.end()) return it->second;
    Gen* g = new (mem) Gen(0);
    return st.cells.emplace(mem, g).first->second;
  }

  static void consume(State& st, void* stolen) {
    if (stolen == nullptr) {
      // Unpublished buffer cell observed — only reachable with a broken
      // publication fence; recorded so the exactly-once check fails.
      st.consumed.push_back(-1);
      return;
    }
    auto* slot = static_cast<Slot*>(stolen);
    st.consumed.push_back(cell(st, slot)->load(std::memory_order_relaxed));
    Pool::release(slot);
  }

  void operator()(Sim& sim) const {
    auto st = std::make_shared<State>(capacity);

    sim.spawn([st, gens = generations, pops = owner_pops] {
      st->pool.bind_owner();
      int popped = 0;
      for (int g = 1; g <= gens; ++g) {
        Slot* slot = st->pool.allocate();
        // Occupancy: a fresh generation value, published to consumers
        // only by the deque push's release fence.
        cell(*st, slot)->store(g, std::memory_order_relaxed);
        st->dq.push(slot);
        if (popped < pops) {
          ++popped;
          if (auto v = st->dq.pop()) consume(*st, *v);
        }
      }
    });
    sim.spawn([st, n = thief_steals] {
      for (int i = 0; i < n; ++i) {
        if (auto v = st->dq.steal()) consume(*st, *v);
      }
    });

    sim.on_exit([st, total = generations] {
      while (auto v = st->dq.pop()) consume(*st, *v);
      check::expect(static_cast<int>(st->consumed.size()) == total,
                    "generation count mismatch: slot lost or duplicated");
      std::map<long long, int> seen;
      for (long long v : st->consumed) ++seen[v];
      for (int g = 1; g <= total; ++g) {
        check::expect(seen.count(g) == 1 && seen[g] == 1,
                      "generation not consumed exactly once — a recycled "
                      "slot leaked a stale occupant to a consumer");
      }
    });
  }
};

using CheckedRecycle = RecycleScenario<check::CheckAtomicsPolicy>;
using WeakRecycle = RecycleScenario<check::WeakenReleaseFences<>>;

// Slot reuse racing a stale thief: the owner recycles through pop +
// re-allocate while the thief holds deque positions from before the
// recycle. Exactly-once over generations certifies both the deque's
// arbitration and the pool's exclusive-handout invariant.
TEST(TaskPoolCheck, RecycleRacingStaleSteal) {
  CheckedRecycle s;
  s.generations = 3;
  s.owner_pops = 1;
  s.thief_steals = 2;
  const Result r = check::explore(exhaustive(2), s);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated) << "execution budget exhausted";
  EXPECT_GT(r.executions, 1);
}

// Same shape, owner recycling every slot it can (pops == generations):
// maximal reuse pressure on a deeper history per cell.
TEST(TaskPoolCheck, RecycleEveryGeneration) {
  CheckedRecycle s;
  s.generations = 3;
  s.owner_pops = 3;
  s.thief_steals = 2;
  const Result r = check::explore(exhaustive(2), s);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
}

// Two thieves remote-freeing concurrently (racing CAS pushes on the
// Treiber chain) while nothing else runs: conservation — the owner must
// recover every slot from the remote chain without carving a new slab.
TEST(TaskPoolCheck, RemoteFreeConservation) {
  using Pool = rt::TaskPool<sizeof(Gen), 2, check::CheckAtomicsPolicy>;
  using Deque = rt::ChaseLevDeque<void*, check::CheckAtomicsPolicy>;
  using Slot = Pool::Slot;

  const Result r = check::explore(exhaustive(3), [](Sim& sim) {
    struct State {
      State() : dq(4) {}
      Pool pool;
      Deque dq;
    };
    auto st = std::make_shared<State>();
    st->pool.bind_owner();
    Slot* a = st->pool.allocate();
    Slot* b = st->pool.allocate();  // slab 0 fully handed out
    st->dq.push(a);
    st->dq.push(b);

    for (int th = 0; th < 2; ++th) {
      sim.spawn([st] {
        if (auto v = st->dq.steal()) Pool::release(static_cast<Slot*>(*v));
      });
    }

    sim.on_exit([st] {
      while (auto v = st->dq.pop()) Pool::release(static_cast<Slot*>(*v));
      st->pool.bind_owner();  // on_exit runs on the controller thread
      Slot* s1 = st->pool.allocate();
      Slot* s2 = st->pool.allocate();
      check::expect(s1 != nullptr && s2 != nullptr && s1 != s2,
                    "pool handed out a duplicate slot");
      check::expect(st->pool.stats().slab_allocs == 1,
                    "remote-freed slot lost — reallocation carved a slab");
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
}

// Acceptance: erase the publish fence on (recycled) pushes and the
// checker must observe a consumer reading a stale or unpublished slot —
// with a deterministically replayable schedule — while the control run
// with real fences stays clean.
TEST(TaskPoolCheck, WeakenedPublishFenceIsCaught) {
  WeakRecycle weak;
  weak.generations = 3;
  weak.owner_pops = 1;
  weak.thief_steals = 2;

  const Result r = check::explore(exhaustive(2), weak);
  ASSERT_TRUE(r.failed)
      << "checker failed to find the seeded publication-fence bug";
  EXPECT_FALSE(r.schedule.empty());
  EXPECT_FALSE(r.trace.empty());

  Options replay = exhaustive(2);
  replay.replay = r.schedule;
  const Result again = check::explore(replay, weak);
  EXPECT_TRUE(again.failed);
  EXPECT_EQ(again.message, r.message);
  EXPECT_EQ(again.executions, 1);

  CheckedRecycle sound;
  sound.generations = 3;
  sound.owner_pops = 1;
  sound.thief_steals = 2;
  const Result ok = check::explore(exhaustive(2), sound);
  EXPECT_FALSE(ok.failed) << ok.message << "\n" << ok.trace;
}

}  // namespace
}  // namespace dws
