// Crash-tolerance matrix: real co-running processes over the shared core
// allocation table, SIGKILLed at chosen points, with the survivor proving
// the liveness protocol recovers every core within bounded coordinator
// periods (ctest label: crash).
//
// Choreography rules for every test here:
//  * fork() FIRST, before constructing any threaded object in the parent —
//    a forked copy of a process holding live threads/mutexes deadlocks.
//  * children never touch gtest: they report through _exit status bits and
//    synchronise through SyncFlags in anonymous shared memory.
//  * SIGKILL only after the child raises a flag marking the intended crash
//    point, so the kill window is deterministic, not a sleep-based guess.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "core/core_table_shm.hpp"
#include "core/coordinator_policy.hpp"
#include "harness/faults.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace dws::harness {
namespace {

using namespace std::chrono_literals;

std::string unique_name(const char* tag) {
  return std::string("/dws_crash_") + tag + "_" + std::to_string(::getpid());
}

class ShmGuard {
 public:
  explicit ShmGuard(std::string name) : name_(std::move(name)) {
    CoreTableShm::remove(name_);
  }
  ~ShmGuard() { CoreTableShm::remove(name_); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

CoreTableShm::Options fast_timeout() {
  CoreTableShm::Options opt;
  opt.attach_timeout = 200ms;
  return opt;
}

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 10000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Creator killed mid-init, window (a): after shm_open, before ftruncate.
// The zero-sized segment must fail a later attach with TableAttachError,
// and remove() + retry must succeed as the new creator.
TEST(CrashRecovery, CreatorKilledBeforeFtruncate) {
  ShmGuard guard(unique_name("preftrunc"));
  SyncFlags flags;

  const pid_t creator = spawn_process([&] {
    const int fd =
        ::shm_open(guard.name().c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) return 1;
    flags.raise(0);  // crash point reached: segment exists, size 0
    for (;;) std::this_thread::sleep_for(1h);
  });
  ASSERT_TRUE(flags.wait_for(0));
  kill_process(creator);
  EXPECT_EQ(wait_process(creator), 137);  // died to SIGKILL

  EXPECT_THROW(CoreTableShm(guard.name(), 8, 2, fast_timeout()),
               TableAttachError);
  // Documented recovery: clear the residue, retry as the new creator.
  CoreTableShm::remove(guard.name());
  CoreTableShm fresh(guard.name(), 8, 2, fast_timeout());
  EXPECT_TRUE(fresh.is_creator());
  EXPECT_EQ(fresh.table().count_free(), 8u);
}

// Creator killed mid-init, window (b): after ftruncate, before the table
// format publishes the magic word. Attach must time out on the magic wait.
TEST(CrashRecovery, CreatorKilledBeforeFormat) {
  ShmGuard guard(unique_name("preformat"));
  SyncFlags flags;

  const pid_t creator = spawn_process([&] {
    const int fd =
        ::shm_open(guard.name().c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) return 1;
    if (::ftruncate(fd, static_cast<off_t>(CoreTable::required_bytes(8))) !=
        0) {
      return 2;
    }
    flags.raise(0);  // crash point: full-size segment, no magic word
    for (;;) std::this_thread::sleep_for(1h);
  });
  ASSERT_TRUE(flags.wait_for(0));
  kill_process(creator);
  EXPECT_EQ(wait_process(creator), 137);

  try {
    CoreTableShm t(guard.name(), 8, 2, fast_timeout());
    FAIL() << "attach to an unformatted segment must time out";
  } catch (const TableAttachError& e) {
    EXPECT_EQ(e.code(), std::make_error_code(std::errc::timed_out));
  }
  CoreTableShm::remove(guard.name());
  CoreTableShm fresh(guard.name(), 8, 2, fast_timeout());
  EXPECT_TRUE(fresh.is_creator());
}

// ---------------------------------------------------------------------------
// Borrower killed while holding reclaimable cores. The child claims its
// home equipartition AND borrows free cores from the parent's half; after
// SIGKILL the parent's StaleSweeper must recover every one of them.
TEST(CrashRecovery, KilledBorrowerIsSweptAndAllCoresRecovered) {
  ShmGuard guard(unique_name("borrower"));
  SyncFlags flags;
  constexpr unsigned kCores = 8;

  const pid_t child = spawn_process([&] {
    CoreTableShm shm(guard.name(), kCores, 2);
    CoreTable& t = shm.table();
    const ProgramId me = t.register_program();  // id 1
    if (!t.bind_liveness(me, static_cast<std::uint32_t>(::getpid()))) {
      return 1;
    }
    t.claim_home_cores(me);
    // Borrow everything else: the crash leaves the whole machine stuck on
    // a dead pid unless the sweep works.
    for (CoreId c = 0; c < kCores; ++c) t.try_claim(c, me);
    if (t.count_active(me) != kCores) return 2;
    flags.raise(0);  // crash point: holding all cores, liveness bound
    for (;;) std::this_thread::sleep_for(1h);
  });
  ASSERT_TRUE(flags.wait_for(0));

  CoreTableShm shm(guard.name(), kCores, 2, fast_timeout());
  CoreTable& t = shm.table();
  const ProgramId me = t.register_program();  // id 2
  ASSERT_TRUE(t.bind_liveness(me, static_cast<std::uint32_t>(::getpid())));
  ASSERT_EQ(t.count_active(1), kCores);

  kill_process(child);
  EXPECT_EQ(wait_process(child), 137);

  // Survivor sweeps: baseline pass + stale_periods stalled passes, each
  // one standing in for a coordinator period.
  constexpr unsigned kStalePeriods = 3;
  StaleSweeper sweeper(t, me, kStalePeriods);
  StaleSweepResult result;
  unsigned sweeps = 0;
  while (result.empty()) {
    ASSERT_LE(++sweeps, kStalePeriods + 1)
        << "sweep did not fire within stale_periods + baseline";
    result = sweeper.sweep();
  }
  ASSERT_EQ(result.declared_dead.size(), 1u);
  EXPECT_EQ(result.declared_dead[0], 1u);
  EXPECT_EQ(result.freed.size(), kCores);
  EXPECT_EQ(t.count_active(1), 0u);
  EXPECT_EQ(t.count_free(), kCores);
  // The freed cores are immediately claimable by the survivor.
  EXPECT_EQ(t.claim_home_cores(me).size(), kCores / 2);
}

// Owner killed mid-reclaim: the dead program had issued try_reclaim on a
// home core borrowed by the survivor. Whatever the interleaving, the
// survivor's sweep must converge to every core either free or owned by
// the survivor — never stuck on the dead pid.
TEST(CrashRecovery, OwnerKilledMidReclaimLeavesNoStuckCores) {
  ShmGuard guard(unique_name("midreclaim"));
  SyncFlags flags;
  constexpr unsigned kCores = 8;

  const pid_t child = spawn_process([&] {
    CoreTableShm shm(guard.name(), kCores, 2);
    CoreTable& t = shm.table();
    const ProgramId me = t.register_program();  // id 1, homes 0-3
    if (!t.bind_liveness(me, static_cast<std::uint32_t>(::getpid()))) {
      return 1;
    }
    flags.raise(0);  // parent may now grab our whole home half
    if (!flags.wait_for(1)) return 2;
    // Take back our home cores one by one, signalling after the first
    // successful reclaim so the SIGKILL lands between two reclaim CASes —
    // the program dies owning a freshly reclaimed core.
    unsigned reclaimed = 0;
    for (CoreId c = 0; c < kCores; ++c) {
      if (t.try_reclaim(c, me)) {
        ++reclaimed;
        if (reclaimed == 1) {
          flags.raise(2);  // crash point: mid-reclaim
          std::this_thread::sleep_for(1h);
        }
      }
    }
    return 3;  // should have been killed inside the loop
  });
  ASSERT_TRUE(flags.wait_for(0));

  CoreTableShm shm(guard.name(), kCores, 2, fast_timeout());
  CoreTable& t = shm.table();
  const ProgramId me = t.register_program();  // id 2
  ASSERT_TRUE(t.bind_liveness(me, static_cast<std::uint32_t>(::getpid())));
  // Borrow every core — including the child's whole home half, so its
  // reclaim loop has real work to die in the middle of.
  unsigned borrowed = 0;
  for (CoreId c = 0; c < kCores; ++c) {
    if (t.try_claim(c, me)) ++borrowed;
  }
  ASSERT_EQ(borrowed, kCores);
  flags.raise(1);
  ASSERT_TRUE(flags.wait_for(2));
  kill_process(child);
  EXPECT_EQ(wait_process(child), 137);

  StaleSweeper sweeper(t, me, 2);
  for (int i = 0; i < 4 && t.count_active(1) > 0; ++i) sweeper.sweep();
  // Every core is now free or ours; the dead pid holds nothing.
  EXPECT_EQ(t.count_active(1), 0u);
  EXPECT_EQ(t.count_free() + t.count_active(me), kCores);
}

// ---------------------------------------------------------------------------
// Corpse sweep on the revision-2 (cacheline-strided) slot layout. The
// dead program's cores interleave with the survivor's core-by-core, so
// every force-release CAS in the sweep lands on a line whose neighbour
// slots belong to the survivor: the sweep must free exactly the corpse's
// cores and leave the interleaved survivor slots untouched — the
// per-slot-per-line isolation property the layout bump bought. Also
// pins the shm footprint actually carrying the stride (required_bytes
// covers one full line per core).
TEST(CrashRecovery, StridedLayoutCorpseSweepLeavesInterleavedSurvivorAlone) {
  ShmGuard guard(unique_name("strided"));
  SyncFlags flags;
  constexpr unsigned kCores = 8;

  EXPECT_GE(CoreTable::required_bytes(kCores),
            static_cast<std::size_t>(kCores) * layout::kCacheLineBytes)
      << "slot array no longer strided one cache line per core?";

  const pid_t child = spawn_process([&] {
    CoreTableShm shm(guard.name(), kCores, 2);
    CoreTable& t = shm.table();
    const ProgramId me = t.register_program();  // id 1
    if (!t.bind_liveness(me, static_cast<std::uint32_t>(::getpid()))) {
      return 1;
    }
    // Claim the even cores only, leaving the odd ones for the parent:
    // strictly interleaved ownership across adjacent slot lines.
    for (CoreId c = 0; c < kCores; c += 2) {
      if (!t.try_claim(c, me)) return 2;
    }
    flags.raise(0);  // crash point: evens held, liveness bound
    for (;;) std::this_thread::sleep_for(1h);
  });
  ASSERT_TRUE(flags.wait_for(0));

  CoreTableShm shm(guard.name(), kCores, 2, fast_timeout());
  CoreTable& t = shm.table();
  const ProgramId me = t.register_program();  // id 2
  ASSERT_TRUE(t.bind_liveness(me, static_cast<std::uint32_t>(::getpid())));
  for (CoreId c = 1; c < kCores; c += 2) ASSERT_TRUE(t.try_claim(c, me));

  kill_process(child);
  EXPECT_EQ(wait_process(child), 137);

  constexpr unsigned kStalePeriods = 2;
  StaleSweeper sweeper(t, me, kStalePeriods);
  StaleSweepResult result;
  unsigned sweeps = 0;
  while (result.empty()) {
    ASSERT_LE(++sweeps, kStalePeriods + 1);
    result = sweeper.sweep();
  }
  ASSERT_EQ(result.declared_dead.size(), 1u);
  EXPECT_EQ(result.declared_dead[0], 1u);
  // Exactly the corpse's even cores were freed...
  ASSERT_EQ(result.freed.size(), kCores / 2);
  for (const CoreId c : result.freed) EXPECT_EQ(c % 2, 0u);
  EXPECT_EQ(t.count_free(), kCores / 2);
  // ...and every interleaved survivor slot still reads our pid: the
  // sweep's CASes on the adjacent lines disturbed nothing of ours.
  for (CoreId c = 1; c < kCores; c += 2) EXPECT_EQ(t.user_of(c), me);
  EXPECT_EQ(t.count_active(me), kCores / 2);
}

// ---------------------------------------------------------------------------
// The headline end-to-end scenario: two full Scheduler instances co-run
// as separate OS processes over the shm table; one is SIGKILLed while
// actively working (holding cores); the survivor's coordinator must sweep
// the dead program within K coordinator periods, recover every core, and
// finish its own workload. Repeated to prove no shm segments leak.
TEST(CrashRecovery, SurvivorReclaimsAllCoresAndCompletes) {
  constexpr unsigned kCores = 4;
  constexpr int kRepeats = 2;

  for (int round = 0; round < kRepeats; ++round) {
    const std::string name =
        unique_name("e2e") + "_" + std::to_string(round);
    ShmGuard guard(name);
    SyncFlags flags;

    // Fork the victim BEFORE the parent constructs its threaded objects.
    const pid_t victim = spawn_process([&] {
      Config cfg;
      cfg.mode = SchedMode::kDws;
      cfg.num_cores = kCores;
      cfg.num_programs = 2;
      cfg.pin_threads = false;
      cfg.coordinator_period_ms = 2.0;
      CoreTableShm shm(name, kCores, 2);
      rt::Scheduler sched(cfg, &shm.table());
      // Keep workers busy forever so the victim holds cores at kill time.
      std::thread pump([&] {
        for (;;) {
          rt::parallel_for_each_index(sched, 0, 64, 1, [](std::int64_t) {
            volatile std::int64_t acc = 0;
            for (int i = 0; i < 20000; ++i) acc += i;
          });
        }
      });
      pump.detach();
      while (shm.table().count_active(sched.pid()) == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      flags.raise(0);  // crash point: actively working, cores held
      for (;;) std::this_thread::sleep_for(1h);
      return 0;  // unreachable; fixes the lambda's deduced return type
    });
    ASSERT_TRUE(flags.wait_for(0));

    // Survivor: small coordinator period and tight stale threshold so
    // recovery happens within a few milliseconds of real time.
    Config cfg;
    cfg.mode = SchedMode::kDws;
    cfg.num_cores = kCores;
    cfg.num_programs = 2;
    cfg.pin_threads = false;
    cfg.coordinator_period_ms = 2.0;
    cfg.stale_after_periods = 3;
    CoreTableShm shm(name, kCores, 2, fast_timeout());
    rt::Scheduler sched(cfg, &shm.table());
    CoreTable& t = shm.table();
    const ProgramId victim_pid = 1;  // registered first
    ASSERT_NE(sched.pid(), victim_pid);

    kill_process(victim);
    EXPECT_EQ(wait_process(victim), 137);

    // Bounded recovery: stale_after_periods + slack coordinator periods.
    // eventually()'s 10 s ceiling is the hard failure bound; the expected
    // time is stale_after_periods * period ~= 6 ms after the first tick.
    ASSERT_TRUE(eventually([&] { return t.count_active(victim_pid) == 0; }))
        << "survivor never swept the killed co-runner";
    EXPECT_GE(sched.stats().stale_programs_swept, 1u);
    EXPECT_GE(sched.stats().cores_recovered, 1u);
    // The dead program's liveness record is retired, so the sweep is
    // one-shot and its slots are genuinely reusable.
    EXPECT_EQ(t.liveness_os_pid(victim_pid), 0u);

    // The survivor can now take the whole machine and finish real work.
    std::atomic<int> done{0};
    rt::parallel_for_each_index(sched, 0, 512, 4, [&](std::int64_t) {
      volatile std::int64_t acc = 0;
      for (int i = 0; i < 2000; ++i) acc += i;
      done.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(done.load(), 512);
    ASSERT_TRUE(eventually([&] {
      return t.count_free() + t.count_active(sched.pid()) == kCores;
    })) << "cores still stuck on the dead pid";

    // No segment leaks across rounds: the name exists now, and remove()
    // (the ShmGuard destructor) fully clears it.
    EXPECT_TRUE(shm_segment_exists(name));
    CoreTableShm::remove(name);
    EXPECT_FALSE(shm_segment_exists(name));
  }
}

}  // namespace
}  // namespace dws::harness
