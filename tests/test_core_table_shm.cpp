// Integration tests for the POSIX shared-memory core allocation table,
// including a fork()-based multi-process exchange mirroring the paper's
// deployment (§3.4).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <system_error>
#include <vector>

#include "core/core_table_shm.hpp"

namespace dws {
namespace {

std::string unique_name(const char* tag) {
  return std::string("/dws_test_") + tag + "_" + std::to_string(::getpid());
}

class ShmGuard {
 public:
  explicit ShmGuard(std::string name) : name_(std::move(name)) {
    CoreTableShm::remove(name_);  // clear leftovers from crashed runs
  }
  ~ShmGuard() { CoreTableShm::remove(name_); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

TEST(CoreTableShm, CreateThenAttachSeesSameState) {
  ShmGuard guard(unique_name("attach"));
  CoreTableShm creator(guard.name(), 16, 2);
  EXPECT_TRUE(creator.is_creator());
  ASSERT_TRUE(creator.table().try_claim(3, 1));

  CoreTableShm attacher(guard.name(), 16, 2);
  EXPECT_FALSE(attacher.is_creator());
  EXPECT_EQ(attacher.table().user_of(3), 1u);
  EXPECT_EQ(attacher.table().count_free(), 15u);

  // Writes through the attachment are visible to the creator.
  ASSERT_TRUE(attacher.table().try_claim(4, 2));
  EXPECT_EQ(creator.table().user_of(4), 2u);
}

TEST(CoreTableShm, RegistrationIsSharedAcrossAttachments) {
  ShmGuard guard(unique_name("reg"));
  CoreTableShm a(guard.name(), 8, 2);
  CoreTableShm b(guard.name(), 8, 2);
  EXPECT_EQ(a.table().register_program(), 1u);
  EXPECT_EQ(b.table().register_program(), 2u);
  EXPECT_EQ(a.table().register_program(), 3u);
}

TEST(CoreTableShm, RemoveIsIdempotent) {
  const std::string name = unique_name("rm");
  { CoreTableShm t(name, 4, 1); }
  CoreTableShm::remove(name);
  CoreTableShm::remove(name);  // second remove must not crash
}

// Full multi-process protocol: the child claims its home cores and one of
// the parent's, then exits; the parent reclaims its lent core. Exercises
// the actual mmap-shared atomics across address spaces.
TEST(CoreTableShm, ForkExchangeAcrossProcesses) {
  ShmGuard guard(unique_name("fork"));
  CoreTableShm parent_table(guard.name(), 16, 2);
  CoreTable& t = parent_table.table();
  const ProgramId parent_pid = t.register_program();
  ASSERT_EQ(parent_pid, 1u);
  const auto own = t.claim_home_cores(parent_pid);
  ASSERT_EQ(own.size(), 8u);
  // Lend core 0 by releasing it; the child should pick it up.
  ASSERT_TRUE(t.release(0, parent_pid));

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child process: attach, act as program 2, grab home cores + the free
    // core 0 lent by the parent. Exit code encodes success.
    int status = 0;
    {
      CoreTableShm child_table(guard.name(), 16, 2);
      CoreTable& ct = child_table.table();
      const ProgramId cpid = ct.register_program();
      if (cpid != 2u) status |= 1;
      if (ct.claim_home_cores(cpid).size() != 8u) status |= 2;
      if (!ct.try_claim(0, cpid)) status |= 4;       // borrow parent's core
      if (ct.count_borrowed_from(1) != 1u) status |= 8;
    }
    _exit(status);
  }

  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);

  // Parent observes the borrow and takes the core back.
  EXPECT_EQ(t.user_of(0), 2u);
  EXPECT_EQ(t.count_borrowed_from(parent_pid), 1u);
  EXPECT_TRUE(t.try_reclaim(0, parent_pid));
  EXPECT_EQ(t.user_of(0), parent_pid);
}

// Creation race: several processes construct CoreTableShm with the same
// name simultaneously. Exactly one wins the O_EXCL create and formats;
// all the others must attach to a fully formatted segment (no torn
// headers) and register distinct program ids.
TEST(CoreTableShm, ConcurrentCreationRace) {
  constexpr unsigned kProcs = 4;
  constexpr unsigned kCores = 8;
  ShmGuard guard(unique_name("race"));

  std::vector<pid_t> children;
  for (unsigned i = 0; i < kProcs; ++i) {
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      int status = 0;
      {
        // All children race shm_open(O_CREAT|O_EXCL) on the same name.
        CoreTableShm t(guard.name(), kCores, kProcs);
        CoreTable& table = t.table();
        const ProgramId pid = table.register_program();
        if (pid < 1 || pid > kProcs) status |= 1;
        const auto claimed = table.claim_home_cores(pid);
        if (claimed.size() != kCores / kProcs) status |= 2;
        for (CoreId c : claimed) {
          if (table.user_of(c) != pid) status |= 4;
        }
      }
      _exit(status);
    }
    children.push_back(child);
  }
  for (pid_t child : children) {
    int wstatus = 0;
    ASSERT_EQ(waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFEXITED(wstatus));
    EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  }

  // Parent attaches afterwards: all four home partitions claimed, by
  // four distinct registered programs.
  CoreTableShm parent(guard.name(), kCores, kProcs);
  EXPECT_EQ(parent.table().count_free(), 0u);
  unsigned total = 0;
  for (ProgramId p = 1; p <= kProcs; ++p) {
    const unsigned held = parent.table().count_active(p);
    EXPECT_EQ(held, kCores / kProcs) << "program " << p;
    total += held;
  }
  EXPECT_EQ(total, kCores);
  EXPECT_EQ(parent.table().register_program(), kProcs + 1);
}

// Churn across processes: children repeatedly claim/release shared cores;
// the table must end fully free and never report an out-of-range user.
TEST(CoreTableShm, MultiProcessClaimReleaseChurn) {
  constexpr unsigned kProcs = 3;
  constexpr unsigned kCores = 4;
  constexpr int kIters = 5000;
  ShmGuard guard(unique_name("churn"));
  CoreTableShm parent(guard.name(), kCores, kProcs);

  std::vector<pid_t> children;
  for (unsigned i = 0; i < kProcs; ++i) {
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      int status = 0;
      {
        CoreTableShm t(guard.name(), kCores, kProcs);
        const ProgramId pid = ProgramId(i + 1);
        for (int it = 0; it < kIters; ++it) {
          const CoreId c = static_cast<CoreId>(it % kCores);
          if (t.table().try_claim(c, pid)) {
            if (t.table().user_of(c) != pid) status |= 1;
            if (!t.table().release(c, pid)) status |= 2;
          }
          const ProgramId u = t.table().user_of(c);
          if (u > kProcs) status |= 4;  // torn/corrupt value
        }
      }
      _exit(status);
    }
    children.push_back(child);
  }
  for (pid_t child : children) {
    int wstatus = 0;
    ASSERT_EQ(waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFEXITED(wstatus));
    EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  }
  EXPECT_EQ(parent.table().count_free(), kCores);
}

// ---------------------------------------------------------------------------
// Bounded attach handshake: a creator that died mid-initialization must
// surface as a typed TableAttachError after the timeout, never as an
// unbounded spin. The two crash windows are (a) after shm_open, before
// ftruncate (segment stuck at size 0) and (b) after ftruncate, before the
// table magic word is published.

CoreTableShm::Options short_timeout() {
  CoreTableShm::Options opt;
  opt.attach_timeout = std::chrono::milliseconds(100);
  return opt;
}

TEST(CoreTableShmAttach, TimesOutWhenSegmentNeverReachesSize) {
  // Simulate a creator dead between shm_open and ftruncate: the segment
  // exists but stays zero-sized forever.
  ShmGuard guard(unique_name("deadsize"));
  const int fd =
      ::shm_open(guard.name().c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ::close(fd);

  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(CoreTableShm(guard.name(), 8, 2, short_timeout()),
               TableAttachError);
  const auto waited = std::chrono::steady_clock::now() - start;
  // Bounded: expired near the configured timeout, not the 5 s default.
  EXPECT_LT(waited, std::chrono::seconds(2));
}

TEST(CoreTableShmAttach, TimesOutWhenMagicIsNeverPublished) {
  // Simulate a creator dead between ftruncate and the table format: the
  // segment has its full size but all-zero contents (no magic word).
  ShmGuard guard(unique_name("deadmagic"));
  const int fd =
      ::shm_open(guard.name().c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(
                fd, static_cast<off_t>(CoreTable::required_bytes(8))),
            0);
  ::close(fd);

  EXPECT_THROW(CoreTableShm(guard.name(), 8, 2, short_timeout()),
               TableAttachError);
}

TEST(CoreTableShmAttach, ErrorCarriesTimedOutCode) {
  ShmGuard guard(unique_name("errcode"));
  const int fd =
      ::shm_open(guard.name().c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ::close(fd);
  try {
    CoreTableShm t(guard.name(), 8, 2, short_timeout());
    FAIL() << "attach to a zero-sized segment must not succeed";
  } catch (const TableAttachError& e) {
    EXPECT_EQ(e.code(), std::make_error_code(std::errc::timed_out));
  }
}

TEST(CoreTableShmAttach, RemoveThenRetryRecoversFromDeadCreator) {
  // The documented recovery path: a TableAttachError means the creator is
  // gone; remove() clears the residue and the next construction formats a
  // fresh segment as the new creator.
  ShmGuard guard(unique_name("recover"));
  const int fd =
      ::shm_open(guard.name().c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ::close(fd);

  EXPECT_THROW(CoreTableShm(guard.name(), 8, 2, short_timeout()),
               TableAttachError);
  CoreTableShm::remove(guard.name());
  CoreTableShm fresh(guard.name(), 8, 2, short_timeout());
  EXPECT_TRUE(fresh.is_creator());
  EXPECT_EQ(fresh.table().count_free(), 8u);
}

TEST(CoreTableShmAttach, AttachWithinTimeoutStillSucceeds) {
  // The bounded wait must not break the healthy path: an attacher that
  // races a live creator by a few milliseconds still succeeds.
  ShmGuard guard(unique_name("healthy"));
  CoreTableShm creator(guard.name(), 8, 2, short_timeout());
  CoreTableShm attacher(guard.name(), 8, 2, short_timeout());
  EXPECT_FALSE(attacher.is_creator());
  EXPECT_EQ(attacher.table().num_cores(), 8u);
}

}  // namespace
}  // namespace dws
