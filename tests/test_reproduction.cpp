// Reproduction tests: the paper's evaluation claims, encoded as CI.
//
// These run the same experiments as the bench binaries at reduced scale
// and assert the *orderings* the paper reports (never absolute numbers).
// If a refactor breaks the demand-aware machinery, these tests — not just
// a human reading bench output — catch the regression.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "harness/experiment.hpp"
#include "harness/mixes.hpp"
#include "util/stats.hpp"

namespace dws::harness {
namespace {

/// Shared scaled-down experiment state (computed once; baselines dominate
/// the cost).
class Reproduction : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg_ = new ExperimentConfig();
    cfg_->work_scale = 0.5;
    cfg_->target_runs = 3;
    cfg_->baseline_runs = 3;
    baselines_ = new std::map<std::string, double>(run_solo_baselines(*cfg_));
  }
  static void TearDownTestSuite() {
    delete baselines_;
    delete cfg_;
  }

  static double mix_sum(std::pair<unsigned, unsigned> mix, SchedMode mode) {
    return mix_total_normalized(run_mix(*cfg_, mix, mode, *baselines_));
  }

  static ExperimentConfig* cfg_;
  static std::map<std::string, double>* baselines_;
};

ExperimentConfig* Reproduction::cfg_ = nullptr;
std::map<std::string, double>* Reproduction::baselines_ = nullptr;

TEST_F(Reproduction, Fig4DwsBeatsAbpOnEveryMixTotal) {
  // §4.1: "DWS significantly improves the performance of co-running
  // programs" vs ABP — per-mix totals, every mix.
  for (const auto& mix : kFigureMixes) {
    const double abp = mix_sum(mix, SchedMode::kAbp);
    const double dws = mix_sum(mix, SchedMode::kDws);
    EXPECT_LT(dws, abp * 1.02) << "mix " << mix_label(mix);
  }
}

TEST_F(Reproduction, Fig4DwsMatchesOrBeatsEpOnEveryMixTotal) {
  // §4.1: DWS vs EP — the adaptive allocation must never lose real ground
  // to the static one (small tolerance for exchange overhead).
  for (const auto& mix : kFigureMixes) {
    const double ep = mix_sum(mix, SchedMode::kEp);
    const double dws = mix_sum(mix, SchedMode::kDws);
    EXPECT_LT(dws, ep * 1.10) << "mix " << mix_label(mix);
  }
}

TEST_F(Reproduction, Fig4DwsWinsBigOnDemandAsymmetricMix) {
  // The headline: on (1, 8) — scalable FFT + unscalable Mergesort — DWS
  // must clearly beat EP (paper: up to 37.1% on real hardware; at this
  // reduced scale the margin is a few percent). The margin tightened from
  // 5% to 3% when the Algorithm-1 off-by-one was fixed (StealPolicy now
  // sleeps on the T_SLEEP-th failed sweep, not the (T_SLEEP+1)-th), which
  // costs DWS slightly on this mix at T_SLEEP = k; the DWS < EP ordering
  // — the paper's actual claim — is unchanged.
  const double ep = mix_sum({1, 8}, SchedMode::kEp);
  const double dws = mix_sum({1, 8}, SchedMode::kDws);
  EXPECT_LT(dws, ep * 0.97) << "no demand-asymmetry gain on (1,8)";
}

TEST_F(Reproduction, Fig4DwsBalancesCoRunners) {
  // §2/§4.1: ABP's unfairness can slow one program 5-10x while its
  // partner coasts; DWS keeps co-runners within a modest factor.
  for (const auto& mix : kFigureMixes) {
    const MixRun dws = run_mix(*cfg_, mix, SchedMode::kDws, *baselines_);
    const double hi = std::max(dws.first.normalized, dws.second.normalized);
    const double lo = std::min(dws.first.normalized, dws.second.normalized);
    EXPECT_LT(hi / lo, 1.6) << "mix " << mix_label(mix) << " unbalanced";
  }
}

TEST_F(Reproduction, Fig5DwsNcWorseThanDwsOnEveryMixTotal) {
  // §4.2: the coordinator's core exchange is what makes DWS work.
  for (const auto& mix : kFigureMixes) {
    const double nc = mix_sum(mix, SchedMode::kDwsNc);
    const double dws = mix_sum(mix, SchedMode::kDws);
    EXPECT_LT(dws, nc * 1.02) << "mix " << mix_label(mix);
  }
}

TEST_F(Reproduction, Fig6TSleepExtremesAreWorseThanTheKnee) {
  // §4.3: performance is U-shaped in T_SLEEP; both extremes lose to the
  // paper-recommended region.
  auto sum_at = [&](int t_sleep) {
    ExperimentConfig cfg = *cfg_;
    cfg.params.t_sleep = t_sleep;
    return mix_total_normalized(
        run_mix(cfg, {1, 8}, SchedMode::kDws, *baselines_));
  };
  const double tiny = sum_at(0);
  const double knee = std::min(sum_at(4), sum_at(16));
  const double huge = sum_at(512);
  EXPECT_GT(tiny, knee * 0.995) << "T_SLEEP=0 should not beat the knee";
  EXPECT_GT(huge, knee * 1.02) << "T_SLEEP=512 should clearly lose";
}

TEST_F(Reproduction, Section44NoSingleProgramDegradation) {
  // §4.4: solo DWS within a few percent of traditional work-stealing.
  // PNN is exempted (documented: its irregular lulls cost one coordinator
  // period; see EXPERIMENTS.md).
  for (unsigned id = 1; id <= 8; ++id) {
    const std::string name = app_name(id);
    if (name == "PNN") continue;
    const auto profile = apps::make_sim_profile(name, cfg_->work_scale);
    auto solo = [&](SchedMode mode) {
      sim::SimProgramSpec s;
      s.name = name;
      s.mode = mode;
      s.dag = &profile.dag;
      s.target_runs = 3;
      s.default_mem_intensity = profile.mem_intensity;
      return sim::simulate_solo(cfg_->params, s).programs[0].mean_run_time_us;
    };
    const double classic = solo(SchedMode::kClassic);
    const double dws = solo(SchedMode::kDws);
    EXPECT_LT(dws, classic * 1.05) << name;
  }
}

TEST_F(Reproduction, CacheContentionClaimHolds) {
  // §2.1 / §4.1: on the memory-bound mix, ABP's cache penalty dwarfs
  // DWS's (space-sharing avoids cross-program thrash).
  const MixRun abp = run_mix(*cfg_, {6, 7}, SchedMode::kAbp, *baselines_);
  const MixRun dws = run_mix(*cfg_, {6, 7}, SchedMode::kDws, *baselines_);
  const double abp_pen =
      abp.first.raw.cache_penalty_us + abp.second.raw.cache_penalty_us;
  const double dws_pen =
      dws.first.raw.cache_penalty_us + dws.second.raw.cache_penalty_us;
  EXPECT_GT(abp_pen, 5.0 * dws_pen);
}

TEST_F(Reproduction, Section5BwsSitsBetweenAbpAndDws) {
  // §5 positioning: BWS improves on ABP (geomean over mixes) but loses
  // to DWS.
  std::vector<double> abp_s, bws_s, dws_s;
  for (const auto& mix : kFigureMixes) {
    abp_s.push_back(mix_sum(mix, SchedMode::kAbp));
    bws_s.push_back(mix_sum(mix, SchedMode::kBws));
    dws_s.push_back(mix_sum(mix, SchedMode::kDws));
  }
  const double abp = util::geomean(abp_s);
  const double bws = util::geomean(bws_s);
  const double dws = util::geomean(dws_s);
  EXPECT_LT(bws, abp * 1.005) << "BWS should improve on ABP overall";
  EXPECT_LT(dws, bws * 0.95) << "DWS should clearly beat BWS overall";
}

}  // namespace
}  // namespace dws::harness
