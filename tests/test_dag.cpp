// Tests for TaskDag structure/validation and the workload generators.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/dag.hpp"
#include "sim/workload.hpp"

namespace dws::sim {
namespace {

TEST(TaskDag, EmptyIsInvalid) {
  TaskDag dag;
  EXPECT_NE(dag.validate(), "");
}

TEST(TaskDag, SingleNodeIsValid) {
  TaskDag dag;
  const NodeId n = dag.add_node(10.0);
  dag.set_root(n);
  EXPECT_EQ(dag.validate(), "");
  EXPECT_DOUBLE_EQ(dag.total_work(), 10.0);
  EXPECT_DOUBLE_EQ(dag.critical_path(), 10.0);
}

TEST(TaskDag, SimpleForkJoinIsValid) {
  // root spawns a,b; root, a, b all join into m.
  TaskDag dag;
  const NodeId root = dag.add_node(1.0);
  const NodeId a = dag.add_node(5.0);
  const NodeId b = dag.add_node(7.0);
  const NodeId m = dag.add_node(2.0);
  dag.set_root(root);
  dag.add_spawn(root, a);
  dag.add_spawn(root, b);
  dag.set_continuation(root, m);
  dag.set_continuation(a, m);
  dag.set_continuation(b, m);
  EXPECT_EQ(dag.validate(), "");
  EXPECT_DOUBLE_EQ(dag.total_work(), 15.0);
  // Critical path: root -> b -> m.
  EXPECT_DOUBLE_EQ(dag.critical_path(), 10.0);
  const auto joins = dag.join_counts();
  EXPECT_EQ(joins[m], 3u);
}

TEST(TaskDag, DoubleSpawnIsRejected) {
  TaskDag dag;
  const NodeId root = dag.add_node(1.0);
  const NodeId a = dag.add_node(1.0);
  dag.set_root(root);
  dag.add_spawn(root, a);
  dag.add_spawn(root, a);  // spawned twice
  EXPECT_NE(dag.validate(), "");
}

TEST(TaskDag, OrphanNodeIsRejected) {
  TaskDag dag;
  const NodeId root = dag.add_node(1.0);
  dag.add_node(1.0);  // never enabled
  dag.set_root(root);
  EXPECT_NE(dag.validate(), "");
}

TEST(TaskDag, SpawnedRootIsRejected) {
  TaskDag dag;
  const NodeId root = dag.add_node(1.0);
  const NodeId a = dag.add_node(1.0);
  dag.set_root(a);
  dag.add_spawn(a, root);
  dag.add_spawn(a, root);  // also exercise double spawn on root
  EXPECT_NE(dag.validate(), "");
}

TEST(TaskDag, CycleIsRejected) {
  TaskDag dag;
  const NodeId a = dag.add_node(1.0);
  const NodeId b = dag.add_node(1.0);
  dag.set_root(a);
  dag.add_spawn(a, b);
  dag.set_continuation(b, a);  // b -> a -> b
  EXPECT_NE(dag.validate(), "");
}

TEST(TaskDag, NegativeWorkIsRejected) {
  TaskDag dag;
  const NodeId a = dag.add_node(-1.0);
  dag.set_root(a);
  EXPECT_NE(dag.validate(), "");
}

// ---- generators ----

TEST(Workload, SerialChainShape) {
  const TaskDag dag = make_serial_chain(10, 5.0, 0.0);
  EXPECT_EQ(dag.validate(), "");
  EXPECT_EQ(dag.size(), 10u);
  EXPECT_DOUBLE_EQ(dag.total_work(), 50.0);
  EXPECT_DOUBLE_EQ(dag.critical_path(), 50.0);  // zero parallelism
}

TEST(Workload, ForkJoinTreeCounts) {
  // depth 3, fanout 2: 8 leaves, 7 splits, 7 merges = 22 nodes.
  const TaskDag dag = make_fork_join_tree(3, 2, 100.0, 1.0, 2.0, 0.2);
  EXPECT_EQ(dag.validate(), "");
  EXPECT_EQ(dag.size(), 22u);
  EXPECT_DOUBLE_EQ(dag.total_work(), 8 * 100.0 + 7 * 1.0 + 7 * 2.0);
  // Critical path: 3 splits + leaf + 3 merges.
  EXPECT_DOUBLE_EQ(dag.critical_path(), 3 * 1.0 + 100.0 + 3 * 2.0);
}

TEST(Workload, ParallelForCoversAllLeaves) {
  TaskDag dag;
  const DagSpan span = emit_parallel_for(dag, 13, 10.0, 0.1, 0.5);
  dag.set_root(span.entry);
  EXPECT_EQ(dag.validate(), "");
  // 13 leaves and 12 split/join pairs.
  EXPECT_EQ(dag.size(), 13u + 2u * 12u);
}

TEST(Workload, ParallelForSingleTaskDegeneratesToLeaf) {
  TaskDag dag;
  const DagSpan span = emit_parallel_for(dag, 1, 10.0, 0.1);
  dag.set_root(span.entry);
  EXPECT_EQ(dag.validate(), "");
  EXPECT_EQ(dag.size(), 1u);
  EXPECT_EQ(span.entry, span.exit);
}

TEST(Workload, IterativePhasesChainThroughBarriers) {
  const TaskDag dag = make_iterative_phases(5, 8, 20.0, 0.8, 1.0);
  EXPECT_EQ(dag.validate(), "");
  // Parallelism is bounded by the phase width: critical path must include
  // one leaf per phase.
  EXPECT_GE(dag.critical_path(), 5 * 20.0);
  EXPECT_DOUBLE_EQ(dag.total_work(),
                   5 * (8 * 20.0 + 7 * 2 * 1.0));  // leaves + split/join
}

TEST(Workload, DecreasingParallelismShrinks) {
  const TaskDag wide = make_decreasing_parallelism(10, 16, 16, 10.0, 0.2);
  const TaskDag shrinking = make_decreasing_parallelism(10, 16, 1, 10.0, 0.2);
  EXPECT_EQ(wide.validate(), "");
  EXPECT_EQ(shrinking.validate(), "");
  EXPECT_LT(shrinking.total_work(), wide.total_work());
  EXPECT_GT(shrinking.size(), 0u);
}

TEST(Workload, IrregularTreeIsValidAndSeedDeterministic) {
  const TaskDag a = make_irregular_tree(42, 500, 4, 5.0, 50.0, 0.4);
  const TaskDag b = make_irregular_tree(42, 500, 4, 5.0, 50.0, 0.4);
  const TaskDag c = make_irregular_tree(43, 500, 4, 5.0, 50.0, 0.4);
  EXPECT_EQ(a.validate(), "");
  EXPECT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.total_work(), b.total_work());
  // A different seed should (overwhelmingly) give a different tree.
  EXPECT_TRUE(c.size() != a.size() ||
              std::abs(c.total_work() - a.total_work()) > 1e-9);
  // Budget respected within slack (generator may stop early, not overrun
  // by more than one expansion).
  EXPECT_LE(a.size(), 500u + 8u);
}

TEST(Workload, GeneratorsProduceParallelSlack) {
  // Sanity: the D&C tree has parallelism ~ leaves; T1/Tinf >> 1.
  const TaskDag dag = make_fork_join_tree(6, 2, 100.0, 1.0, 1.0, 0.2);
  const double parallelism = dag.total_work() / dag.critical_path();
  EXPECT_GT(parallelism, 16.0);
}

}  // namespace
}  // namespace dws::sim
