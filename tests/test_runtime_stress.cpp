// Stress tests for the real pthread runtime: randomized spawn trees,
// scheduler churn, deep nesting, exception storms, mixed group usage,
// and cross-scheduler interactions. Sized for a small CI host.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "util/rng.hpp"

namespace dws::rt {
namespace {

Config stress_config(SchedMode mode, unsigned cores) {
  Config cfg;
  cfg.mode = mode;
  cfg.num_cores = cores;
  cfg.num_programs = 1;
  cfg.pin_threads = false;
  cfg.coordinator_period_ms = 1.0;
  return cfg;
}

/// Random recursive spawn tree; every node increments the counter once.
void random_tree(Scheduler& sched, util::Xoshiro256& seed_gen,
                 std::uint64_t seed, int depth, std::atomic<long>& count) {
  count.fetch_add(1, std::memory_order_relaxed);
  if (depth <= 0) return;
  util::Xoshiro256 rng(seed);
  const unsigned children = 1 + static_cast<unsigned>(rng.next_below(3));
  TaskGroup g;
  for (unsigned i = 0; i < children; ++i) {
    const std::uint64_t child_seed = rng.next();
    sched.spawn(g, [&sched, &seed_gen, child_seed, depth, &count] {
      random_tree(sched, seed_gen, child_seed, depth - 1, count);
    });
  }
  sched.wait(g);
}

class RuntimeStress : public ::testing::TestWithParam<SchedMode> {};

TEST_P(RuntimeStress, RandomSpawnTreesComplete) {
  Scheduler sched(stress_config(GetParam(), 4));
  util::Xoshiro256 seeds(2026);
  for (int round = 0; round < 5; ++round) {
    std::atomic<long> count{0};
    sched.run([&] { random_tree(sched, seeds, seeds.next(), 6, count); });
    EXPECT_GT(count.load(), 6) << "round " << round;
  }
}

TEST_P(RuntimeStress, ManySmallJobsBackToBack) {
  Scheduler sched(stress_config(GetParam(), 2));
  long total = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> n{0};
    sched.run([&] {
      TaskGroup g;
      for (int i = 0; i < 5; ++i) sched.spawn(g, [&] { n.fetch_add(1); });
      sched.wait(g);
    });
    total += n.load();
  }
  EXPECT_EQ(total, 200 * 5);
}

TEST_P(RuntimeStress, DeepNestingDoesNotDeadlock) {
  Scheduler sched(stress_config(GetParam(), 2));
  std::atomic<int> depth_reached{0};
  std::function<void(int)> nest = [&](int d) {
    depth_reached.fetch_add(1);
    if (d <= 0) return;
    TaskGroup g;
    sched.spawn(g, [&, d] { nest(d - 1); });
    sched.wait(g);
  };
  sched.run([&] { nest(64); });
  EXPECT_EQ(depth_reached.load(), 65);
}

INSTANTIATE_TEST_SUITE_P(Modes, RuntimeStress,
                         ::testing::Values(SchedMode::kAbp, SchedMode::kDws,
                                           SchedMode::kDwsNc, SchedMode::kBws),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

TEST(RuntimeStress, SchedulerChurn) {
  // Construct and destroy schedulers repeatedly, with and without work:
  // shutdown paths must be leak- and deadlock-free under every mode.
  for (int round = 0; round < 10; ++round) {
    for (SchedMode mode : {SchedMode::kAbp, SchedMode::kDws, SchedMode::kEp}) {
      Scheduler sched(stress_config(mode, 2));
      if (round % 2 == 0) {
        std::atomic<int> n{0};
        parallel_for_each_index(sched, 0, 50, 5,
                                [&](std::int64_t) { n.fetch_add(1); });
        ASSERT_EQ(n.load(), 50);
      }
    }
  }
  SUCCEED();
}

TEST(RuntimeStress, ExceptionStorm) {
  Scheduler sched(stress_config(SchedMode::kDws, 4));
  int caught = 0;
  for (int round = 0; round < 30; ++round) {
    try {
      parallel_for_each_index(sched, 0, 100, 1, [&](std::int64_t i) {
        if (i % 17 == round % 17) throw std::runtime_error("storm");
      });
    } catch (const std::runtime_error&) {
      ++caught;
    }
  }
  EXPECT_EQ(caught, 30);
  // Scheduler still functional afterwards.
  std::atomic<int> n{0};
  parallel_for_each_index(sched, 0, 100, 10,
                          [&](std::int64_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 100);
}

TEST(RuntimeStress, ConcurrentExternalSubmitters) {
  // Several external threads submit into the same scheduler at once.
  Scheduler sched(stress_config(SchedMode::kDws, 4));
  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 25;
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        sched.run([&] {
          TaskGroup g;
          for (int i = 0; i < 8; ++i) {
            sched.spawn(g, [&] { total.fetch_add(1); });
          }
          sched.wait(g);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), kThreads * kJobsPerThread * 8);
}

TEST(RuntimeStress, TwoSchedulersUsedFromOneThreadAlternately) {
  Scheduler a(stress_config(SchedMode::kAbp, 2));
  Scheduler b(stress_config(SchedMode::kDws, 2));
  std::atomic<int> na{0}, nb{0};
  for (int round = 0; round < 20; ++round) {
    parallel_for_each_index(a, 0, 40, 4, [&](std::int64_t) { na.fetch_add(1); });
    parallel_for_each_index(b, 0, 40, 4, [&](std::int64_t) { nb.fetch_add(1); });
  }
  EXPECT_EQ(na.load(), 800);
  EXPECT_EQ(nb.load(), 800);
}

TEST(RuntimeStress, ReduceWithHeavyPartials) {
  // Reduce over a type with allocation in the combine path.
  Scheduler sched(stress_config(SchedMode::kDws, 4));
  const auto result = parallel_reduce<std::vector<int>>(
      sched, 0, 1000, 37, std::vector<int>{},
      [](std::int64_t b, std::int64_t e) {
        std::vector<int> v;
        for (std::int64_t i = b; i < e; ++i) v.push_back(static_cast<int>(i));
        return v;
      },
      [](std::vector<int> x, std::vector<int> y) {
        x.insert(x.end(), y.begin(), y.end());
        return x;
      });
  ASSERT_EQ(result.size(), 1000u);
  long sum = 0;
  for (int v : result) sum += v;
  EXPECT_EQ(sum, 999L * 1000 / 2);
}

TEST(RuntimeStress, BwsModeRunsRealKernels) {
  Scheduler sched(stress_config(SchedMode::kBws, 4));
  std::atomic<std::int64_t> sum{0};
  parallel_for(sched, 0, 10000, 64, [&](std::int64_t b, std::int64_t e) {
    std::int64_t s = 0;
    for (std::int64_t i = b; i < e; ++i) s += i;
    sum.fetch_add(s, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 9999LL * 10000 / 2);
  EXPECT_EQ(sched.stats().totals.sleeps, 0u);  // BWS never sleeps
}

}  // namespace
}  // namespace dws::rt
