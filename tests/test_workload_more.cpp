// Additional generator property tests: the chain builders, curve decay,
// and cross-generator invariants that the profile calibration relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/workload.hpp"

namespace dws::sim {
namespace {

TEST(Chains, SingleChainIsSerial) {
  TaskDag dag;
  const DagSpan span = emit_parallel_chains(dag, 1, 10, 5.0, 0.2);
  dag.set_root(span.entry);
  EXPECT_EQ(dag.validate(), "");
  EXPECT_EQ(dag.size(), 10u);
  EXPECT_DOUBLE_EQ(dag.critical_path(), 50.0);  // fully serial
}

TEST(Chains, WidthGivesParallelism) {
  TaskDag dag;
  const DagSpan span = emit_parallel_chains(dag, 8, 10, 5.0, 0.2, 0.5);
  dag.set_root(span.entry);
  EXPECT_EQ(dag.validate(), "");
  // 8 chains of 10 tasks + 7 split/join pairs.
  EXPECT_EQ(dag.size(), 8u * 10u + 2u * 7u);
  const double par = dag.total_work() / dag.critical_path();
  EXPECT_GT(par, 5.0);
  EXPECT_LE(par, 8.5);
}

TEST(Chains, ChainLengthOneDegeneratesToParallelFor) {
  TaskDag chains, pfor;
  const DagSpan a = emit_parallel_chains(chains, 6, 1, 7.0, 0.1, 0.5);
  const DagSpan b = emit_parallel_for(pfor, 6, 7.0, 0.1, 0.5);
  chains.set_root(a.entry);
  pfor.set_root(b.entry);
  EXPECT_EQ(chains.validate(), "");
  EXPECT_EQ(chains.size(), pfor.size());
  EXPECT_DOUBLE_EQ(chains.total_work(), pfor.total_work());
}

TEST(DecreasingChains, LinearCurveMatchesLegacyWidths) {
  const TaskDag linear = make_decreasing_chains(8, 8, 1, 2, 10.0, 0.3, 1.0);
  EXPECT_EQ(linear.validate(), "");
  // Widths 8,7,6,5,4,3,2,1 => 36 chains of 2 tasks = 72 task nodes plus
  // split/join overhead.
  double task_work = 0.0;
  (void)task_work;
  EXPECT_GT(linear.size(), 72u);
}

TEST(DecreasingChains, QuadraticCurveHasLongerNarrowTail) {
  // With curve=2 more phases sit at the minimum width than with curve=1;
  // total work is therefore smaller for the same endpoint widths.
  const TaskDag lin = make_decreasing_chains(32, 16, 1, 2, 10.0, 0.3, 1.0);
  const TaskDag quad = make_decreasing_chains(32, 16, 1, 2, 10.0, 0.3, 2.0);
  EXPECT_EQ(quad.validate(), "");
  EXPECT_LT(quad.total_work(), lin.total_work());
  // Same phase count and chain length; the quadratic variant's phases
  // are narrower on average, so its splitter trees are shallower and the
  // critical path can only be shorter or equal.
  EXPECT_LE(quad.critical_path(), lin.critical_path() + 1e-9);
  EXPECT_GT(quad.critical_path(), 0.8 * lin.critical_path());
}

TEST(DecreasingChains, FinalWidthIsAFloor) {
  const TaskDag dag = make_decreasing_chains(10, 12, 4, 1, 10.0, 0.3, 3.0);
  EXPECT_EQ(dag.validate(), "");
  // Every phase has at least final_width=4 leaves; 10 phases of >=4
  // tasks => at least 40 task nodes.
  EXPECT_GE(dag.total_work(), 40 * 10.0);
}

TEST(Generators, MemIntensityPropagatesToNodes) {
  const TaskDag dag = make_iterative_phases(2, 4, 10.0, 0.77, 1.0);
  for (NodeId n = 0; n < dag.size(); ++n) {
    EXPECT_DOUBLE_EQ(dag.node(n).mem_intensity, 0.77) << "node " << n;
  }
}

TEST(Generators, AllShapesSurviveExtremeArguments) {
  EXPECT_EQ(make_fork_join_tree(0, 2, 5.0, 1.0, 1.0, 0.1).validate(), "");
  EXPECT_EQ(make_fork_join_tree(1, 1, 5.0, 1.0, 1.0, 0.1).validate(), "");
  EXPECT_EQ(make_iterative_phases(1, 1, 5.0, 0.1).validate(), "");
  EXPECT_EQ(make_decreasing_parallelism(1, 1, 1, 5.0, 0.1).validate(), "");
  EXPECT_EQ(make_decreasing_chains(1, 1, 1, 1, 5.0, 0.1).validate(), "");
  EXPECT_EQ(make_serial_chain(1, 5.0, 0.1).validate(), "");
  EXPECT_EQ(make_irregular_tree(1, 1, 1, 1.0, 2.0, 0.1).validate(), "");
}

TEST(Generators, TotalWorkIsAdditiveUnderScaling) {
  const TaskDag base = make_iterative_phases(4, 8, 100.0, 0.5, 2.0);
  const TaskDag doubled = make_iterative_phases(4, 8, 200.0, 0.5, 4.0);
  EXPECT_NEAR(doubled.total_work(), 2.0 * base.total_work(), 1e-9);
}

}  // namespace
}  // namespace dws::sim
