// Correctness tests for the Table-2 benchmark kernels: every app must
// produce a verifiably correct result from both its serial reference and
// its parallel implementation, under multiple scheduling modes.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apps/app.hpp"
#include "runtime/scheduler.hpp"

namespace dws::apps {
namespace {

Config test_config(SchedMode mode) {
  Config cfg;
  cfg.mode = mode;
  cfg.num_cores = 4;
  cfg.num_programs = 1;
  cfg.pin_threads = false;
  cfg.coordinator_period_ms = 2.0;
  return cfg;
}

class AppCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string, SchedMode>> {};

TEST_P(AppCorrectness, SerialReferenceIsCorrect) {
  const auto& [name, mode] = GetParam();
  if (mode != SchedMode::kDws) GTEST_SKIP() << "serial: mode-independent";
  auto app = make_app(name, Scale::kTiny);
  ASSERT_NE(app, nullptr);
  app->run_serial();
  EXPECT_EQ(app->verify(), "") << name << " (serial)";
}

TEST_P(AppCorrectness, ParallelMatchesReference) {
  const auto& [name, mode] = GetParam();
  auto app = make_app(name, Scale::kTiny);
  ASSERT_NE(app, nullptr);
  rt::Scheduler sched(test_config(mode));
  app->run(sched);
  EXPECT_EQ(app->verify(), "") << name << " under " << to_string(mode);
}

TEST_P(AppCorrectness, RepeatedRunsStayCorrect) {
  const auto& [name, mode] = GetParam();
  if (mode != SchedMode::kDws) GTEST_SKIP() << "repeat: DWS only for time";
  auto app = make_app(name, Scale::kTiny);
  ASSERT_NE(app, nullptr);
  rt::Scheduler sched(test_config(mode));
  for (int round = 0; round < 3; ++round) {
    app->run(sched);
    ASSERT_EQ(app->verify(), "") << name << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsTimesModes, AppCorrectness,
    ::testing::Combine(::testing::Values("FFT", "PNN", "Cholesky", "LU", "GE",
                                         "Heat", "SOR", "Mergesort"),
                       ::testing::Values(SchedMode::kAbp, SchedMode::kEp,
                                         SchedMode::kDws)),
    [](const auto& info) {
      std::string s =
          std::get<0>(info.param) + "_" + to_string(std::get<1>(info.param));
      for (auto& ch : s) {
        if (ch == '-') ch = '_';
      }
      return s;
    });

TEST(AppRegistry, KnowsAllEightAndRejectsUnknown) {
  for (const char* name : kAppNames) {
    EXPECT_NE(make_app(name, Scale::kTiny), nullptr) << name;
  }
  EXPECT_EQ(make_app("NotAnApp", Scale::kTiny), nullptr);
  const auto all = make_all_apps(Scale::kTiny);
  ASSERT_EQ(all.size(), kNumApps);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_STREQ(all[i]->name(), kAppNames[i]);
  }
}

TEST(AppRegistry, ScalesProduceDifferentProblemSizes) {
  // Indirect check: larger scales take longer serially. Compare via a
  // structural proxy (tiny must verify fast; we just ensure construction
  // succeeds at every scale).
  for (Scale scale : {Scale::kTiny, Scale::kSmall}) {
    for (const char* name : kAppNames) {
      EXPECT_NE(make_app(name, scale), nullptr)
          << name << " scale " << static_cast<int>(scale);
    }
  }
}

TEST(AppDeterminism, SameSeedSameResult) {
  auto a = make_app("Mergesort", Scale::kTiny, 7);
  auto b = make_app("Mergesort", Scale::kTiny, 7);
  a->run_serial();
  b->run_serial();
  EXPECT_EQ(a->verify(), "");
  EXPECT_EQ(b->verify(), "");
}

}  // namespace
}  // namespace dws::apps
