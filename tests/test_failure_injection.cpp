// Failure injection / hostile-parameter tests: the simulator must either
// behave sanely or fail loudly (never hang, never corrupt) under extreme
// configurations, and the timeline sampler must work.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace dws::sim {
namespace {

SimProgramSpec spec(const std::string& name, SchedMode mode,
                    const TaskDag* dag, unsigned runs = 1) {
  SimProgramSpec s;
  s.name = name;
  s.mode = mode;
  s.dag = dag;
  s.target_runs = runs;
  return s;
}

TEST(FailureInjection, TinyQuantumStillCompletes) {
  const TaskDag dag = make_fork_join_tree(5, 2, 100.0, 1.0, 1.0, 0.2);
  SimParams p;
  p.num_cores = 4;
  p.num_sockets = 1;
  p.quantum_us = 5.0;  // pathological context-switch storm
  SimEngine e(p, {spec("a", SchedMode::kAbp, &dag),
                  spec("b", SchedMode::kAbp, &dag)});
  const SimResult r = e.run();
  EXPECT_FALSE(r.hit_time_limit);
}

TEST(FailureInjection, HugeQuantumStillCompletes) {
  const TaskDag dag = make_fork_join_tree(5, 2, 100.0, 1.0, 1.0, 0.2);
  SimParams p;
  p.num_cores = 4;
  p.num_sockets = 1;
  p.quantum_us = 1e9;  // effectively FIFO per core
  SimEngine e(p, {spec("a", SchedMode::kAbp, &dag, 2),
                  spec("b", SchedMode::kAbp, &dag, 2)});
  const SimResult r = e.run();
  EXPECT_FALSE(r.hit_time_limit);
}

TEST(FailureInjection, ZeroTSleepChurnStillCompletes) {
  // T_SLEEP = 0: a worker sleeps on its very first failed sweep; the
  // coordinator must keep the program alive regardless.
  const TaskDag dag = make_fork_join_tree(6, 2, 100.0, 1.0, 1.0, 0.0);
  SimParams p;
  p.num_cores = 8;
  p.num_sockets = 1;
  p.t_sleep = 0;
  const SimResult r = simulate_solo(p, spec("churn", SchedMode::kDws, &dag));
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_EQ(r.programs[0].tasks_executed, dag.size());
  EXPECT_GT(r.programs[0].sleeps, 0u);
}

TEST(FailureInjection, EnormousTSleepNeverSleeps) {
  const TaskDag dag = make_fork_join_tree(5, 2, 100.0, 1.0, 1.0, 0.0);
  SimParams p;
  p.num_cores = 4;
  p.num_sockets = 1;
  p.t_sleep = 1 << 30;
  const SimResult r = simulate_solo(p, spec("spin", SchedMode::kDws, &dag, 2));
  EXPECT_EQ(r.programs[0].sleeps, 0u);
  EXPECT_FALSE(r.hit_time_limit);
}

TEST(FailureInjection, GlacialCoordinatorStillMakesProgress) {
  // Coordinator period far beyond the workload length: sleeping workers
  // may never be woken, yet the program must finish (at least one worker
  // always stays active: the last one holds the work).
  TaskDag dag;
  DagSpan narrow = emit_parallel_for(dag, 1, 5000.0, 0.0);
  DagSpan wide = emit_parallel_for(dag, 32, 200.0, 0.0);
  dag.set_continuation(narrow.exit, wide.entry);
  dag.set_root(narrow.entry);
  ASSERT_EQ(dag.validate(), "");
  SimParams p;
  p.num_cores = 8;
  p.num_sockets = 1;
  p.coordinator_period_us = 1e8;
  const SimResult r = simulate_solo(p, spec("slowco", SchedMode::kDws, &dag));
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_EQ(r.programs[0].tasks_executed, dag.size());
}

TEST(FailureInjection, ZeroCostOpsDoNotLivelock) {
  const TaskDag dag = make_fork_join_tree(4, 2, 50.0, 1.0, 1.0, 0.0);
  SimParams p;
  p.num_cores = 2;
  p.num_sockets = 1;
  p.pop_cost_us = 0.0;
  p.steal_cost_us = 0.0;
  p.wake_latency_us = 0.0;
  p.steal_backoff_cap_us = 0.0;
  const SimResult r = simulate_solo(p, spec("free", SchedMode::kDws, &dag));
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_EQ(r.programs[0].tasks_executed, dag.size());
}

TEST(FailureInjection, ZeroWorkTasksComplete) {
  const TaskDag dag = make_fork_join_tree(6, 2, 0.0, 0.0, 0.0, 0.0);
  SimParams p;
  p.num_cores = 4;
  p.num_sockets = 1;
  const SimResult r = simulate_solo(p, spec("zero", SchedMode::kAbp, &dag));
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_EQ(r.programs[0].tasks_executed, dag.size());
}

TEST(FailureInjection, ExtremeCachePenaltySlowsButCompletes) {
  const TaskDag dag = make_iterative_phases(5, 16, 100.0, 1.0, 1.0);
  SimParams p;
  p.num_cores = 4;
  p.num_sockets = 1;
  p.core_miss_penalty = 50.0;
  p.llc_miss_penalty = 50.0;
  SimEngine e(p, {spec("a", SchedMode::kAbp, &dag),
                  spec("b", SchedMode::kAbp, &dag)});
  const SimResult r = e.run();
  EXPECT_FALSE(r.hit_time_limit);
  for (const auto& prog : r.programs) {
    EXPECT_GT(prog.cache_penalty_us, 0.0);
  }
}

TEST(FailureInjection, ManyProgramsOnFewCores) {
  // 6 DWS programs on 2 cores: four programs own no home cores at all
  // and can only ever use cores the other two release. DWS makes no
  // fairness guarantee for homeless programs (§3.3 constraint 3 is
  // deliberately non-preemptive), so starvation is a legitimate outcome;
  // the requirement here is graceful degradation: bounded termination
  // and a consistent table, never a crash or corruption.
  const TaskDag dag = make_fork_join_tree(4, 2, 80.0, 1.0, 1.0, 0.2);
  SimParams p;
  p.num_cores = 2;
  p.num_sockets = 1;
  p.max_sim_time_us = 2e6;  // bound the experiment at 2 virtual seconds
  std::vector<SimProgramSpec> specs;
  for (int i = 0; i < 6; ++i) {
    specs.push_back(spec("p" + std::to_string(i), SchedMode::kDws, &dag));
  }
  SimEngine e(p, specs);
  const SimResult r = e.run();
  // The two home-owning programs always make progress.
  unsigned progressed = 0;
  for (const auto& prog : r.programs) {
    progressed += !prog.run_times_us.empty();
  }
  EXPECT_GE(progressed, 2u);
}

TEST(FailureInjection, SingleNodeDagEveryMode) {
  TaskDag dag;
  dag.set_root(dag.add_node(42.0));
  for (SchedMode mode : {SchedMode::kClassic, SchedMode::kAbp, SchedMode::kEp,
                         SchedMode::kDws, SchedMode::kDwsNc, SchedMode::kBws}) {
    SimParams p;
    p.num_cores = 4;
    p.num_sockets = 1;
    const SimResult r = simulate_solo(p, spec("one", mode, &dag, 3));
    EXPECT_EQ(r.programs[0].tasks_executed, 3u) << to_string(mode);
  }
}

TEST(FailureInjection, TimelineSamplerRecords) {
  const TaskDag dag = make_fork_join_tree(6, 2, 200.0, 1.0, 1.0, 0.0);
  SimParams p;
  p.num_cores = 4;
  p.num_sockets = 1;
  p.timeline_sample_period_us = 500.0;
  SimEngine e(p, {spec("a", SchedMode::kDws, &dag, 2),
                  spec("b", SchedMode::kDws, &dag, 2)});
  const SimResult r = e.run();
  ASSERT_GT(r.timeline.size(), 2u);
  double prev_t = 0.0;
  for (const auto& s : r.timeline) {
    EXPECT_GT(s.t_us, prev_t);
    prev_t = s.t_us;
    ASSERT_EQ(s.active_workers.size(), 2u);
    // Active workers per program never exceed the machine width; free
    // cores never exceed it either.
    EXPECT_LE(s.active_workers[0], 4u);
    EXPECT_LE(s.active_workers[1], 4u);
    EXPECT_LE(s.free_cores, 4u);
  }
}

TEST(FailureInjection, TimelineOffByDefault) {
  const TaskDag dag = make_serial_chain(3, 10.0, 0.0);
  SimParams p;
  p.num_cores = 2;
  p.num_sockets = 1;
  const SimResult r = simulate_solo(p, spec("x", SchedMode::kAbp, &dag));
  EXPECT_TRUE(r.timeline.empty());
}

}  // namespace
}  // namespace dws::sim
