// The NUMA machine model and the locality-aware victim ordering built on
// it: metric properties of Topology::distance (symmetry, triangle
// inequality, identity), agreement between the synthetic layout and the
// simulator's socket split, tier-by-tier sweeps of TieredVictimOrder, and
// the uniform_victim regression suite (single-worker edge + uniformity of
// the skip-self mapping).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/config.hpp"
#include "core/topology.hpp"
#include "core/victim_order.hpp"
#include "sim/params.hpp"
#include "util/rng.hpp"

namespace dws {
namespace {

// ---------------------------------------------------------------- Topology

TEST(Topology, SyntheticTwoSocketMatchesThePaperTestbed) {
  // 2x Xeon E5620 = 16 logical cores in 2 sockets, split contiguously.
  const Topology t = Topology::synthetic(16, 2);
  EXPECT_EQ(t.num_cores(), 16u);
  EXPECT_EQ(t.num_sockets(), 2u);
  for (CoreId c = 0; c < 16; ++c) {
    EXPECT_EQ(t.socket_of(c), c < 8 ? 0u : 1u) << "core " << c;
  }
  EXPECT_EQ(t.distance(0, 7), DistanceTier::kNear);    // same socket
  EXPECT_EQ(t.distance(0, 8), DistanceTier::kFar);     // adjacent socket
  EXPECT_EQ(t.distance(15, 8), DistanceTier::kNear);
  EXPECT_FALSE(t.flat());
}

TEST(Topology, SyntheticMatchesSimParamsSocketSplit) {
  // The simulator's ceil-division split and the Topology factory must
  // agree on every (cores, sockets) shape, or the cache model and the
  // victim ordering would disagree about which steals are remote.
  for (unsigned k : {1u, 2u, 3u, 7u, 8u, 15u, 16u, 17u}) {
    for (unsigned s : {1u, 2u, 3u, 4u}) {
      sim::SimParams params;
      params.num_cores = k;
      params.num_sockets = s;
      const Topology t = params.topology();
      ASSERT_EQ(t.num_cores(), k);
      for (CoreId c = 0; c < k; ++c) {
        if (s <= k) {
          EXPECT_EQ(t.socket_of(c), params.socket_of(c))
              << "k=" << k << " s=" << s << " core=" << c;
        }
      }
    }
  }
}

TEST(Topology, SmtSiblingsAreVeryNear) {
  // 8 logical cores, 2 sockets, 2-way SMT: {0,1} share a physical core.
  const Topology t = Topology::synthetic(8, 2, 2);
  EXPECT_EQ(t.distance(0, 1), DistanceTier::kVeryNear);
  EXPECT_EQ(t.distance(0, 2), DistanceTier::kNear);  // same socket, other core
  EXPECT_EQ(t.distance(0, 3), DistanceTier::kNear);
  EXPECT_EQ(t.distance(0, 4), DistanceTier::kFar);   // other socket
  EXPECT_EQ(t.group_of(0), t.group_of(1));
  EXPECT_NE(t.group_of(1), t.group_of(2));
}

TEST(Topology, LinearSocketChainSeparatesFarFromVeryFar) {
  // 4 sockets in a chain: 1 hop = FAR, 2+ hops = VERYFAR.
  const Topology t = Topology::synthetic(16, 4);
  EXPECT_EQ(t.distance(0, 4), DistanceTier::kFar);      // socket 0 -> 1
  EXPECT_EQ(t.distance(0, 8), DistanceTier::kVeryFar);  // socket 0 -> 2
  EXPECT_EQ(t.distance(0, 12), DistanceTier::kVeryFar); // socket 0 -> 3
  EXPECT_EQ(t.distance(4, 8), DistanceTier::kFar);      // socket 1 -> 2
}

TEST(Topology, DistanceIsAMetricOnTiers) {
  // Symmetry, identity and the triangle inequality over the numeric tier
  // values, for every shape the other layers construct. The triangle
  // property is what makes "exhaust near tiers first" meaningful: a
  // detour through a third core can never be shorter than the direct
  // tier.
  const Topology shapes[] = {
      Topology::uniform(1),         Topology::uniform(8),
      Topology::synthetic(16, 2),   Topology::synthetic(16, 4),
      Topology::synthetic(12, 3, 2), Topology::synthetic(8, 2, 2),
      Topology::synthetic(7, 3),
  };
  for (const Topology& t : shapes) {
    const unsigned n = t.num_cores();
    for (CoreId a = 0; a < n; ++a) {
      EXPECT_EQ(t.distance(a, a), DistanceTier::kVeryNear);
      for (CoreId b = 0; b < n; ++b) {
        EXPECT_EQ(t.distance(a, b), t.distance(b, a))
            << "asymmetric at (" << a << "," << b << ")";
        for (CoreId c = 0; c < n; ++c) {
          EXPECT_LE(static_cast<int>(t.distance(a, c)),
                    static_cast<int>(t.distance(a, b)) +
                        static_cast<int>(t.distance(b, c)))
              << "triangle violated at (" << a << "," << b << "," << c << ")";
        }
      }
    }
  }
}

TEST(Topology, UniformIsFlat) {
  EXPECT_TRUE(Topology::uniform(8).flat());
  EXPECT_TRUE(Topology::uniform(1).flat());
  EXPECT_FALSE(Topology::synthetic(8, 2).flat());
  EXPECT_FALSE(Topology::synthetic(8, 1, 2).flat());  // SMT pairs break it
}

TEST(Topology, SocketAndSmtCountsAreClamped) {
  const Topology t = Topology::synthetic(4, 99, 99);
  EXPECT_EQ(t.num_cores(), 4u);
  EXPECT_LE(t.num_sockets(), 4u);
  const Topology z = Topology::synthetic(4, 0, 0);  // 0 means "at least 1"
  EXPECT_EQ(z.num_sockets(), 1u);
}

TEST(Topology, DetectAlwaysYieldsAValidModel) {
  // Whatever sysfs says (or doesn't — containers), the result must be a
  // well-formed, symmetric model of the requested width.
  const Topology t = Topology::detect(4);
  ASSERT_EQ(t.num_cores(), 4u);
  EXPECT_GE(t.num_sockets(), 1u);
  for (CoreId a = 0; a < 4; ++a) {
    EXPECT_LT(t.socket_of(a), t.num_sockets());
    for (CoreId b = 0; b < 4; ++b) {
      EXPECT_EQ(t.distance(a, b), t.distance(b, a));
    }
  }
}

TEST(Topology, MakeTopologyHonoursTheConfig) {
  Config cfg;
  cfg.num_sockets = 2;
  const Topology t = make_topology(cfg, 8);
  EXPECT_EQ(t.num_sockets(), 2u);
  EXPECT_EQ(t.socket_of(3), 0u);
  EXPECT_EQ(t.socket_of(4), 1u);

  cfg.num_sockets = 0;  // auto-detect; must still be valid everywhere
  const Topology d = make_topology(cfg, 8);
  EXPECT_EQ(d.num_cores(), 8u);
}

TEST(VictimPolicyNames, RoundTrip) {
  for (VictimPolicy p : {VictimPolicy::kUniform, VictimPolicy::kTiered}) {
    VictimPolicy parsed{};
    ASSERT_TRUE(parse_victim_policy(to_string(p), parsed)) << to_string(p);
    EXPECT_EQ(parsed, p);
  }
  VictimPolicy out{};
  EXPECT_FALSE(parse_victim_policy("bogus", out));
}

// ------------------------------------------------------- TieredVictimOrder

TEST(TieredVictimOrder, SweepIsAPermutationWithNonDecreasingTiers) {
  const Topology topo = Topology::synthetic(8, 2, 2);
  util::Xoshiro256 rng(42);
  for (unsigned self = 0; self < 8; ++self) {
    TieredVictimOrder order(topo, self, 8);
    ASSERT_EQ(order.size(), 7u);
    for (int sweep = 0; sweep < 4; ++sweep) {
      std::set<unsigned> seen;
      int prev_tier = -1;
      for (std::size_t i = 0; i < order.size(); ++i) {
        const VictimPick pick = order.next(rng);
        ASSERT_NE(pick.victim, kNoVictim);
        ASSERT_NE(pick.victim, self);
        ASSERT_LT(pick.victim, 8u);
        EXPECT_EQ(pick.tier, topo.distance(self, pick.victim));
        EXPECT_GE(static_cast<int>(pick.tier), prev_tier)
            << "tier order regressed mid-sweep";
        prev_tier = static_cast<int>(pick.tier);
        seen.insert(pick.victim);
      }
      EXPECT_EQ(seen.size(), 7u) << "sweep skipped or repeated a victim";
    }
  }
}

TEST(TieredVictimOrder, NearVictimsAreProbedBeforeRemoteOnes) {
  const Topology topo = Topology::synthetic(16, 2);
  util::Xoshiro256 rng(7);
  TieredVictimOrder order(topo, /*self=*/0, 16);
  // Cores 1..7 share socket 0 with the thief; they must be handed out
  // before any of 8..15, in every sweep, whatever the shuffles do.
  for (int sweep = 0; sweep < 8; ++sweep) {
    for (int i = 0; i < 7; ++i) {
      const VictimPick pick = order.next(rng);
      EXPECT_LT(pick.victim, 8u) << "remote victim before near exhausted";
      EXPECT_EQ(pick.tier, DistanceTier::kNear);
    }
    for (int i = 0; i < 8; ++i) {
      const VictimPick pick = order.next(rng);
      EXPECT_GE(pick.victim, 8u);
      EXPECT_EQ(pick.tier, DistanceTier::kFar);
    }
  }
}

TEST(TieredVictimOrder, RestartRewindsToTheNearestTier) {
  const Topology topo = Topology::synthetic(16, 2);
  util::Xoshiro256 rng(11);
  TieredVictimOrder order(topo, /*self=*/0, 16);
  // Walk deep into the far tier, then simulate a successful steal.
  for (int i = 0; i < 10; ++i) (void)order.next(rng);
  order.restart();
  const VictimPick pick = order.next(rng);
  EXPECT_EQ(pick.tier, DistanceTier::kNear)
      << "a fresh hunger episode must start near-first";
}

TEST(TieredVictimOrder, WithinTierOrderIsShuffledAcrossSweeps) {
  const Topology topo = Topology::uniform(16);
  util::Xoshiro256 rng(3);
  TieredVictimOrder order(topo, /*self=*/0, 16);
  std::vector<std::vector<unsigned>> sweeps;
  for (int s = 0; s < 6; ++s) {
    std::vector<unsigned> one;
    for (std::size_t i = 0; i < order.size(); ++i) {
      one.push_back(order.next(rng).victim);
    }
    sweeps.push_back(std::move(one));
  }
  // 15! orderings; six identical consecutive sweeps means the reshuffle
  // is not happening.
  bool any_different = false;
  for (std::size_t s = 1; s < sweeps.size(); ++s) {
    if (sweeps[s] != sweeps[0]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(TieredVictimOrder, SingleWorkerHasNoVictims) {
  const Topology topo = Topology::uniform(1);
  util::Xoshiro256 rng(1);
  TieredVictimOrder order(topo, 0, 1);
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(order.next(rng).victim, kNoVictim);
}

// ------------------------------------------------- uniform_victim (legacy)

TEST(UniformVictim, SingleWorkerReturnsNoVictim) {
  // Regression: with one worker there are zero victims and the guard must
  // fire *before* the rng draw — next_below(0) would otherwise be asked
  // for a uniform draw from an empty range (it pins to 0, which would
  // then be "steal from yourself").
  util::Xoshiro256 rng(5);
  EXPECT_EQ(uniform_victim(rng, 1, 0), kNoVictim);
  EXPECT_EQ(uniform_victim(rng, 0, 0), kNoVictim);
}

TEST(UniformVictim, NeverSelfNeverOutOfRange) {
  util::Xoshiro256 rng(99);
  for (unsigned n = 2; n <= 8; ++n) {
    for (unsigned self = 0; self < n; ++self) {
      for (int i = 0; i < 2000; ++i) {
        const unsigned v = uniform_victim(rng, n, self);
        ASSERT_LT(v, n);
        ASSERT_NE(v, self);
      }
    }
  }
}

TEST(UniformVictim, CoverageIsUniformAcrossVictims) {
  // Pins the skip-self mapping: every victim id (including those above
  // `self`, which are reached via the +1 shift) must land within 10% of
  // the expected share. A modulo-biased draw or an off-by-one in the
  // shift skews the tails far beyond that.
  constexpr unsigned kN = 8;
  constexpr unsigned kSelf = 3;
  constexpr int kDraws = 70000;
  util::Xoshiro256 rng(1234);
  std::vector<int> hits(kN, 0);
  for (int i = 0; i < kDraws; ++i) ++hits[uniform_victim(rng, kN, kSelf)];
  EXPECT_EQ(hits[kSelf], 0);
  const double expected = static_cast<double>(kDraws) / (kN - 1);
  for (unsigned v = 0; v < kN; ++v) {
    if (v == kSelf) continue;
    EXPECT_NEAR(hits[v], expected, 0.10 * expected) << "victim " << v;
  }
}

}  // namespace
}  // namespace dws
