// Tests for the pooled task storage on the spawn hot path: TaskPool slab
// carving and LIFO recycling, remote (cross-thread) frees, the TaskBase
// destroy() routing between pool slots and the heap, scheduler-level
// allocation accounting (the zero-alloc steady-state claim behind
// BENCH_spawn_steal.json), and — in race-enabled builds — the FastTrack
// token regression: a recycled slot must never hand a consumer its
// previous occupant's happens-before token.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"
#include "runtime/task_pool.hpp"

namespace dws {
namespace {

TEST(TaskPool, LifoRecycleReturnsHottestSlot) {
  rt::TaskSlabPool pool;
  pool.bind_owner();
  auto* a = pool.allocate();
  auto* b = pool.allocate();
  ASSERT_NE(a, b);
  rt::TaskSlabPool::release(b);
  rt::TaskSlabPool::release(a);
  // Most recently freed comes back first: its lines are still warm.
  EXPECT_EQ(pool.allocate(), a);
  EXPECT_EQ(pool.allocate(), b);
}

TEST(TaskPool, SlabCarvingStopsAtTheHighWaterMark) {
  // 4-slot slabs so the carve boundary is near.
  rt::TaskPool<64, 4> pool;
  pool.bind_owner();
  std::vector<rt::TaskPool<64, 4>::Slot*> slots;
  for (int i = 0; i < 4; ++i) slots.push_back(pool.allocate());
  EXPECT_EQ(pool.stats().slab_allocs, 1u);
  slots.push_back(pool.allocate());  // 5th slot forces a second slab
  EXPECT_EQ(pool.stats().slab_allocs, 2u);

  const std::set<void*> original(slots.begin(), slots.end());
  EXPECT_EQ(original.size(), 5u);
  for (auto* s : slots) rt::TaskPool<64, 4>::release(s);

  // Steady state: reallocation at the high-water mark is pure recycling.
  for (int round = 0; round < 10; ++round) {
    std::vector<rt::TaskPool<64, 4>::Slot*> again;
    for (int i = 0; i < 5; ++i) again.push_back(pool.allocate());
    for (auto* s : again) {
      EXPECT_TRUE(original.count(s)) << "slot did not come from the pool";
      rt::TaskPool<64, 4>::release(s);
    }
  }
  EXPECT_EQ(pool.stats().slab_allocs, 2u);
  EXPECT_EQ(pool.stats().slot_allocs, 55u);
  EXPECT_EQ(pool.stats().local_frees, 55u);
}

TEST(TaskPool, RemoteFreeDrainsOnOwnerAllocate) {
  rt::TaskPool<64, 2> pool;
  pool.bind_owner();
  auto* a = pool.allocate();
  auto* b = pool.allocate();  // slab 0 fully handed out, freelist dry

  std::thread other([a] { rt::TaskPool<64, 2>::release(a); });
  other.join();
  EXPECT_EQ(pool.stats().remote_frees, 1u);
  EXPECT_EQ(pool.stats().local_frees, 0u);

  // The owner's next allocate adopts the remote chain instead of carving.
  EXPECT_EQ(pool.allocate(), a);
  EXPECT_EQ(pool.stats().remote_drains, 1u);
  EXPECT_EQ(pool.stats().slab_allocs, 1u);
  rt::TaskPool<64, 2>::release(a);
  rt::TaskPool<64, 2>::release(b);
}

TEST(TaskPool, RemoteFreesFromManyThreadsAllRecovered) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  rt::TaskPool<64, 8> pool;
  pool.bind_owner();
  std::vector<rt::TaskPool<64, 8>::Slot*> slots;
  for (int i = 0; i < kThreads * kPerThread; ++i)
    slots.push_back(pool.allocate());
  const std::set<void*> original(slots.begin(), slots.end());

  // Racing Treiber pushes onto the remote chain.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&slots, t] {
      for (int i = 0; i < kPerThread; ++i)
        rt::TaskPool<64, 8>::release(slots[t * kPerThread + i]);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.stats().remote_frees,
            static_cast<std::uint64_t>(kThreads * kPerThread));

  const std::uint64_t slabs = pool.stats().slab_allocs;
  std::set<void*> recovered;
  for (int i = 0; i < kThreads * kPerThread; ++i)
    recovered.insert(pool.allocate());
  EXPECT_EQ(recovered, original) << "remote chain lost or invented slots";
  EXPECT_EQ(pool.stats().slab_allocs, slabs) << "recovery carved a slab";
}

TEST(TaskPool, FitsRespectsSizeAndAlignment) {
  struct Small {
    char b[32];
  };
  struct Big {
    char b[4096];
  };
  struct alignas(128) OverAligned {
    char b[32];
  };
  EXPECT_TRUE(rt::TaskSlabPool::fits<Small>());
  EXPECT_FALSE(rt::TaskSlabPool::fits<Big>());
  EXPECT_FALSE(rt::TaskSlabPool::fits<OverAligned>());
}

TEST(TaskPool, PooledTaskDestroyWithoutRunningReleasesSlot) {
  rt::TaskSlabPool pool;
  pool.bind_owner();
  auto* slot = pool.allocate();

  bool ran = false;
  auto fn = [&ran] { ran = true; };
  using Task = rt::TaskImpl<decltype(fn)>;
  static_assert(rt::TaskSlabPool::fits<Task>());
  rt::TaskBase* t =
      new (rt::TaskSlabPool::storage(slot)) Task(nullptr, std::move(fn));
  t->set_pool_slot(slot);
  t->destroy();  // scheduler-teardown path: discard without executing
  EXPECT_FALSE(ran);
  EXPECT_EQ(pool.stats().local_frees, 1u);
  EXPECT_EQ(pool.allocate(), slot);
}

TEST(TaskPool, PooledTaskRunAndDestroyCompletesGroupAndRecycles) {
  rt::TaskSlabPool pool;
  pool.bind_owner();
  auto* slot = pool.allocate();

  rt::TaskGroup g;
  g.add_pending();
  int runs = 0;
  auto fn = [&runs] { ++runs; };
  using Task = rt::TaskImpl<decltype(fn)>;
  static_assert(rt::TaskSlabPool::fits<Task>());
  rt::TaskBase* t =
      new (rt::TaskSlabPool::storage(slot)) Task(&g, std::move(fn));
  t->set_pool_slot(slot);
  t->run_and_destroy();
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(g.done());
  EXPECT_EQ(pool.stats().local_frees, 1u);
  EXPECT_EQ(pool.allocate(), slot);
}

TEST(TaskPool, HeapTaskDestroyStillDeletes) {
  // Plain-new tasks (oversized closures, external spawns, direct test
  // construction) never set a pool slot; destroy() must delete them.
  bool ran = false;
  auto fn = [&ran] { ran = true; };
  rt::TaskBase* t = new rt::TaskImpl<decltype(fn)>(nullptr, std::move(fn));
  t->destroy();  // must not leak (ASan/LSan would flag it) nor run
  EXPECT_FALSE(ran);
}

// ---------------------------------------------------------------------
// Scheduler-level allocation accounting.
// ---------------------------------------------------------------------

Config pool_config(bool pooled) {
  Config cfg;
  cfg.mode = SchedMode::kDws;
  cfg.num_cores = 2;
  cfg.pin_threads = false;
  cfg.pool_tasks = pooled;
  return cfg;
}

/// One spawn-heavy round: a root task (external, heap) spawns `n` empty
/// tasks from its worker and waits for them.
void burst(rt::Scheduler& sched, int n) {
  sched.run([&sched, n] {
    rt::TaskGroup g;
    for (int i = 0; i < n; ++i) sched.spawn(g, [] {});
    sched.wait(g);
  });
}

TEST(SchedulerAllocStats, WorkerSpawnsArePooledWithZeroSteadyStateAllocs) {
  constexpr int kRounds = 8;
  constexpr int kTasks = 60;  // below one slab, so high-water fits slab 0
  rt::Scheduler sched(pool_config(true));
  for (int r = 0; r < kRounds; ++r) burst(sched, kTasks);

  // A task releases its slot *after* signalling its group, so the last
  // frees can trail the final wait() by an instant; settle first.
  rt::TaskAllocStats a = sched.alloc_stats();
  for (int i = 0;
       i < 1000 && a.local_frees + a.remote_frees != a.pooled_spawns; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    a = sched.alloc_stats();
  }
  EXPECT_EQ(a.pooled_spawns,
            static_cast<std::uint64_t>(kRounds) * kTasks);
  EXPECT_EQ(a.heap_spawns, 0u);
  EXPECT_EQ(a.external_spawns, static_cast<std::uint64_t>(kRounds));
  // At most 60 slots are ever live per spawning pool, so no pool needs a
  // second slab — 480 pooled spawns cost at most one heap allocation per
  // worker, total, ever.
  EXPECT_LE(a.slab_allocs, static_cast<std::uint64_t>(sched.num_workers()));
  EXPECT_GE(a.slab_allocs, 1u);
  // Quiescent: every pooled slot went back (locally or via a thief).
  EXPECT_EQ(a.local_frees + a.remote_frees, a.pooled_spawns);
}

TEST(SchedulerAllocStats, PoolingCanBeDisabled) {
  constexpr int kRounds = 3;
  constexpr int kTasks = 40;
  rt::Scheduler sched(pool_config(false));
  for (int r = 0; r < kRounds; ++r) burst(sched, kTasks);

  const rt::TaskAllocStats a = sched.alloc_stats();
  EXPECT_EQ(a.pooled_spawns, 0u);
  EXPECT_EQ(a.slab_allocs, 0u);
  EXPECT_EQ(a.heap_spawns, static_cast<std::uint64_t>(kRounds) * kTasks);
  EXPECT_EQ(a.external_spawns, static_cast<std::uint64_t>(kRounds));
}

TEST(SchedulerAllocStats, OversizedClosuresFallBackToTheHeap) {
  rt::Scheduler sched(pool_config(true));
  sched.run([&sched] {
    rt::TaskGroup g;
    struct Fat {
      char pad[512] = {};
    };
    Fat fat;
    sched.spawn(g, [fat] { (void)fat; });  // closure exceeds SlotBytes
    sched.spawn(g, [] {});                 // small: pooled
    sched.wait(g);
  });
  const rt::TaskAllocStats a = sched.alloc_stats();
  EXPECT_EQ(a.heap_spawns, 1u);
  EXPECT_EQ(a.pooled_spawns, 1u);
}

#ifndef DWS_RACE_DISABLED

// ---------------------------------------------------------------------
// FastTrack token lifecycle across slot recycling (satellite of the
// pooled-storage change): every token a consumer hands back to the hook
// must be one the *current* session published, exactly once. Sessions use
// disjoint token ranges, so a recycled slot leaking its previous
// occupant's token — or a stale token surviving an uninstalled session —
// shows up as a foreign begin.
// ---------------------------------------------------------------------

class TokenAudit : public race::ParallelHook {
 public:
  void* on_task_published(rt::TaskGroup&) override {
    const std::uintptr_t t =
        next_token_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(m_);
    published_.insert(t);
    return reinterpret_cast<void*>(t);
  }
  void on_task_begin(void* token) override {
    const auto t = reinterpret_cast<std::uintptr_t>(token);
    std::lock_guard<std::mutex> lock(m_);
    if (published_.count(t) == 0) ++foreign_begins_;
    if (!begun_.insert(t).second) ++duplicate_begins_;
  }
  void on_task_end(void* token, rt::TaskGroup*) override {
    const auto t = reinterpret_cast<std::uintptr_t>(token);
    std::lock_guard<std::mutex> lock(m_);
    ended_.insert(t);
  }
  void on_wait_done(rt::TaskGroup&) override {}

  [[nodiscard]] std::size_t published() const { return published_.size(); }
  [[nodiscard]] std::size_t begun() const { return begun_.size(); }
  [[nodiscard]] std::size_t ended() const { return ended_.size(); }
  [[nodiscard]] int foreign_begins() const { return foreign_begins_; }
  [[nodiscard]] int duplicate_begins() const { return duplicate_begins_; }

 private:
  // Process-wide counter: successive audit sessions draw from disjoint
  // token ranges (never 0 — a null token means "no hook" to the task).
  inline static std::atomic<std::uintptr_t> next_token_{1};

  mutable std::mutex m_;
  std::set<std::uintptr_t> published_;
  std::set<std::uintptr_t> begun_;
  std::set<std::uintptr_t> ended_;
  int foreign_begins_ = 0;
  int duplicate_begins_ = 0;
};

TEST(TaskPoolRaceToken, RecycledSlotsDoNotInheritTokens) {
  constexpr int kTasks = 128;
  rt::Scheduler sched(pool_config(true));

  auto audited_burst = [&](TokenAudit& audit) {
    race::detail::parallel_hook().store(&audit, std::memory_order_release);
    burst(sched, kTasks);
    // Quiescent (every group waited) before uninstall, so no callback
    // can arrive after the store.
    race::detail::parallel_hook().store(nullptr, std::memory_order_release);
  };

  TokenAudit first;
  audited_burst(first);
  // kTasks children + the external root task all carried tokens.
  EXPECT_EQ(first.published(), static_cast<std::size_t>(kTasks) + 1);
  EXPECT_EQ(first.begun(), first.published());
  EXPECT_EQ(first.ended(), first.published());
  EXPECT_EQ(first.foreign_begins(), 0);
  EXPECT_EQ(first.duplicate_begins(), 0);

  // Interlude with no hook installed, churning the same slots: these
  // occupancies must scrub any token state (placement-new resets it).
  for (int r = 0; r < 4; ++r) burst(sched, kTasks);

  TokenAudit second;
  audited_burst(second);
  EXPECT_EQ(second.published(), static_cast<std::size_t>(kTasks) + 1);
  EXPECT_EQ(second.begun(), second.published());
  EXPECT_EQ(second.ended(), second.published());
  // The regression: a recycled slot inheriting a session-one token would
  // hand the hook a token outside session two's published set.
  EXPECT_EQ(second.foreign_begins(), 0);
  EXPECT_EQ(second.duplicate_begins(), 0);
}

#endif  // DWS_RACE_DISABLED

}  // namespace
}  // namespace dws
