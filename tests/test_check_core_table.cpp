// Model checks for the core-allocation-table CAS protocol (§3.1/§3.3),
// instantiated over the checker's atomics via CoreOps<CheckAtomicsPolicy>.
// These are the exact production transitions core_table.cpp compiles (same
// template, different policy), so a clean pass here covers the coordinator
// claim/reclaim/release races directly.
#include <gtest/gtest.h>

#include <memory>

#include "check/check.hpp"
#include "core/core_ops.hpp"

namespace dws {
namespace {

using check::Options;
using check::Result;
using check::Sim;

// Default slot layout (cacheline-strided since shm layout revision 2).
using Ops = CoreOps<check::CheckAtomicsPolicy>;

Options exhaustive(int preemption_bound = 3) {
  Options o;
  o.mode = Options::Mode::kExhaustive;
  o.preemption_bound = preemption_bound;
  return o;
}

struct Table {
  explicit Table(unsigned n) : num_cores(n), slots(new Ops::Slot[n]) {}
  unsigned num_cores;
  std::unique_ptr<Ops::Slot[]> slots;  // default-init == kNoProgram
};

// Two coordinators race try_claim on the same free core: exactly one must
// win, and the slot must hold the winner's pid.
TEST(CoreTableCheck, ClaimRaceHasOneWinner) {
  const Result r = check::explore(exhaustive(), [](Sim& sim) {
    struct State {
      State() : t(2) {}
      Table t;
      bool won1 = false, won2 = false;
    };
    auto st = std::make_shared<State>();
    sim.spawn([st] { st->won1 = Ops::try_claim(st->t.slots.get(), 0, 1); });
    sim.spawn([st] { st->won2 = Ops::try_claim(st->t.slots.get(), 0, 2); });
    sim.on_exit([st] {
      check::expect(st->won1 != st->won2, "claim must have exactly one winner");
      const ProgramId user = Ops::user_of(st->t.slots.get(), 0);
      check::expect(user == (st->won1 ? 1u : 2u),
                    "slot does not record the claim winner");
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.executions, 1);
}

// Owner reclaiming its borrowed home core vs. the borrower releasing it.
// 2 cores, 2 programs: core 0 homes program 1 and is currently used by
// program 2. Exactly one of {reclaim, release} transitions the slot.
TEST(CoreTableCheck, ReclaimVsRelease) {
  const Result r = check::explore(exhaustive(), [](Sim& sim) {
    struct State {
      State() : t(2) { t.slots[0].user.store(2, std::memory_order_relaxed); }
      Table t;
      bool reclaimed = false, released = false;
    };
    auto st = std::make_shared<State>();
    sim.spawn([st] {
      st->reclaimed = Ops::try_reclaim(st->t.slots.get(), 2, 2, 0, 1);
    });
    sim.spawn([st] {
      st->released = Ops::release(st->t.slots.get(), 0, 2);
    });
    sim.on_exit([st] {
      check::expect(st->reclaimed != st->released,
                    "reclaim and release must arbitrate via CAS");
      const ProgramId user = Ops::user_of(st->t.slots.get(), 0);
      check::expect(user == (st->reclaimed ? 1u : kNoProgram),
                    "slot state inconsistent with CAS outcome");
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
}

// Borrower releases while a third program tries to claim the freed core
// and the home owner tries to reclaim it. The slot must always end in a
// state explained by the winners' reported outcomes. Note reclaim and
// claim CAN both win — release(2->free), claim(free->3), reclaim(3->1) is
// a legal serialization (the checker found this when an earlier version
// of this test wrongly asserted mutual exclusion). What the protocol does
// guarantee: a successful reclaim is the final transition (nothing CASes
// away from the home owner here), and a successful claim implies the
// release landed first.
TEST(CoreTableCheck, ClaimVsReclaimAfterRelease) {
  const Result r = check::explore(exhaustive(), [](Sim& sim) {
    struct State {
      State() : t(3) { t.slots[0].user.store(2, std::memory_order_relaxed); }
      Table t;  // 3 cores, 3 programs: core 0 homes program 1
      bool released = false, reclaimed = false, claimed = false;
    };
    auto st = std::make_shared<State>();
    sim.spawn([st] { st->released = Ops::release(st->t.slots.get(), 0, 2); });
    sim.spawn([st] {
      st->reclaimed = Ops::try_reclaim(st->t.slots.get(), 3, 3, 0, 1);
    });
    sim.spawn([st] { st->claimed = Ops::try_claim(st->t.slots.get(), 0, 3); });
    sim.on_exit([st] {
      // claim(free->3) needs the slot free, which only release provides.
      check::expect(!st->claimed || st->released,
                    "claim won without a preceding release");
      // Once reclaimed, nothing can transition the slot away from the
      // home owner (release expects 2, claim expects free), so the
      // winners determine the final user: reclaim > claim > release.
      const ProgramId user = Ops::user_of(st->t.slots.get(), 0);
      ProgramId expected = 2;  // nothing won: borrower keeps it
      if (st->reclaimed) {
        expected = 1;
      } else if (st->claimed) {
        expected = 3;
      } else if (st->released) {
        expected = kNoProgram;
      }
      check::expect(user == expected, "slot state inconsistent with winners");
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
}

// Occupancy accounting stays consistent under a claim/claim/release storm:
// successful transitions alone explain the final occupancy.
TEST(CoreTableCheck, OccupancyMatchesSuccessfulTransitions) {
  const Result r = check::explore(exhaustive(2), [](Sim& sim) {
    struct State {
      State() : t(2) {}
      Table t;
      int claims_ok = 0, releases_ok = 0;
    };
    auto st = std::make_shared<State>();
    sim.spawn([st] {
      if (Ops::try_claim(st->t.slots.get(), 0, 1)) ++st->claims_ok;
      if (Ops::release(st->t.slots.get(), 0, 1)) ++st->releases_ok;
    });
    sim.spawn([st] {
      if (Ops::try_claim(st->t.slots.get(), 0, 2)) ++st->claims_ok;
      if (Ops::try_claim(st->t.slots.get(), 1, 2)) ++st->claims_ok;
    });
    sim.on_exit([st] {
      const unsigned occupied =
          st->t.num_cores - Ops::count_free(st->t.slots.get(), st->t.num_cores);
      check::expect(
          st->claims_ok - st->releases_ok == static_cast<int>(occupied),
          "occupancy does not match successful transitions");
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
}

// Negative control: a naive load-then-store claim (no CAS) lets both
// coordinators win — the checker must flag it.
TEST(CoreTableCheck, NaiveClaimImplementationIsCaught) {
  const Result r = check::explore(exhaustive(), [](Sim& sim) {
    struct State {
      State() : t(1) {}
      Table t;
      bool won1 = false, won2 = false;
    };
    auto st = std::make_shared<State>();
    auto naive_claim = [st](ProgramId pid, bool* won) {
      if (st->t.slots[0].user.load(std::memory_order_acquire) == kNoProgram) {
        st->t.slots[0].user.store(pid, std::memory_order_release);
        *won = true;
      }
    };
    sim.spawn([st, naive_claim] { naive_claim(1, &st->won1); });
    sim.spawn([st, naive_claim] { naive_claim(2, &st->won2); });
    sim.on_exit([st] {
      check::expect(!(st->won1 && st->won2),
                    "naive claim let two programs own one core");
    });
  });
  EXPECT_TRUE(r.failed) << "checker missed the naive-claim double win";
  EXPECT_FALSE(r.schedule.empty());
}

// count_borrowed_from / count_active agree with the home map after a
// quiescent sequence of transitions (exercises the read-side helpers over
// the instrumented atomics; single-threaded, so one execution suffices).
TEST(CoreTableCheck, AccountingHelpersQuiescent) {
  const Result r = check::explore(exhaustive(), [](Sim& sim) {
    auto t = std::make_shared<Table>(4);
    // 4 cores, 2 programs: cores {0,1} home program 1, {2,3} program 2.
    ASSERT_TRUE(Ops::try_claim(t->slots.get(), 0, 1));
    ASSERT_TRUE(Ops::try_claim(t->slots.get(), 1, 2));  // borrows from 1
    ASSERT_TRUE(Ops::try_claim(t->slots.get(), 2, 2));
    sim.on_exit([t] {
      check::expect(Ops::count_free(t->slots.get(), 4) == 1, "count_free");
      check::expect(Ops::count_borrowed_from(t->slots.get(), 4, 2, 1) == 1,
                    "count_borrowed_from");
      check::expect(Ops::count_active(t->slots.get(), 4, 2) == 2,
                    "count_active");
      check::expect(core_home_of(1, 4, 2) == 1 && core_home_of(2, 4, 2) == 2,
                    "home map");
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

// Stale-sweep recovery race: program 2 crashed while holding core 0, but
// its worker had *just* issued the cooperative release(0, 2) before dying.
// A surviving sweeper, having confirmed program 2 dead, force-releases the
// same slot with the identical release(0, 2) CAS, while the survivor
// (program 1) concurrently claims freed cores. Invariants: exactly one of
// the two releases wins (freed cores are never double-counted), and the
// slot never ends the execution owned by the dead program.
TEST(CoreTableCheck, StaleSweepVsCooperativeRelease) {
  const Result r = check::explore(exhaustive(), [](Sim& sim) {
    struct State {
      State() : t(2) { t.slots[0].user.store(2, std::memory_order_relaxed); }
      Table t;
      bool coop = false;    // dying owner's in-flight release
      bool forced = false;  // sweeper's force-release
      bool claimed = false;  // survivor snapping up the freed core
    };
    auto st = std::make_shared<State>();
    sim.spawn([st] { st->coop = Ops::release(st->t.slots.get(), 0, 2); });
    sim.spawn([st] { st->forced = Ops::release(st->t.slots.get(), 0, 2); });
    sim.spawn([st] { st->claimed = Ops::try_claim(st->t.slots.get(), 0, 1); });
    sim.on_exit([st] {
      check::expect(st->coop != st->forced,
                    "exactly one release must win (no double-free count)");
      const ProgramId user = Ops::user_of(st->t.slots.get(), 0);
      check::expect(user != 2u, "dead program must not end up owning a core");
      check::expect(user == (st->claimed ? 1u : kNoProgram),
                    "slot must end free or owned by the survivor");
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.executions, 1);
}

// Stale sweep vs the home owner's reclaim. Core 0 homes program 1 but is
// held by crashed program 2. The sweeper force-releases (2 -> free) while
// program 1 reclaims its home core (2 -> 1) — both target the same slot
// value, so CAS arbitration must hand it to exactly one path and the core
// must never be lost or duplicated.
TEST(CoreTableCheck, StaleSweepVsHomeReclaim) {
  const Result r = check::explore(exhaustive(), [](Sim& sim) {
    struct State {
      State() : t(2) { t.slots[0].user.store(2, std::memory_order_relaxed); }
      Table t;
      bool forced = false;
      bool reclaimed = false;
    };
    auto st = std::make_shared<State>();
    sim.spawn([st] { st->forced = Ops::release(st->t.slots.get(), 0, 2); });
    sim.spawn([st] {
      st->reclaimed = Ops::try_reclaim(st->t.slots.get(), 2, 2, 0, 1);
    });
    sim.on_exit([st] {
      check::expect(st->forced != st->reclaimed,
                    "force-release and reclaim must arbitrate via CAS");
      const ProgramId user = Ops::user_of(st->t.slots.get(), 0);
      check::expect(user == (st->reclaimed ? 1u : kNoProgram),
                    "core lost or duplicated in sweep-vs-reclaim race");
      check::expect(user != 2u, "dead program must not keep the core");
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
}

// ---- Slot-layout independence (shm layout revision 2) ----
//
// The strided slot layout changes only *where* the CAS word lives, never
// the transitions over it: CoreOps is parameterized on the slot template
// and every op goes through slots[core].user. Run the claim/release/
// reclaim arbitration storm over BOTH layouts to prove the protocol's
// outcomes are layout-independent — a regression here would mean a slot
// template smuggled semantics (e.g. extra state) into the layout.
template <template <typename> class SlotT>
void check_claim_release_reclaim_storm() {
  using LOps = CoreOps<check::CheckAtomicsPolicy, SlotT>;
  const Result r = check::explore(exhaustive(), [](Sim& sim) {
    struct State {
      State() : slots(new typename LOps::Slot[2]) {
        slots[0].user.store(2, std::memory_order_relaxed);
      }
      std::unique_ptr<typename LOps::Slot[]> slots;
      bool released = false, reclaimed = false, claimed = false;
    };
    auto st = std::make_shared<State>();
    // Borrower (2) releases its borrowed core, home owner (1) reclaims it,
    // and a thief-side claim races for the freed slot — the same triangle
    // as ClaimVsReclaimAfterRelease, on 2 cores / 2 programs.
    sim.spawn([st] { st->released = LOps::release(st->slots.get(), 0, 2); });
    sim.spawn(
        [st] { st->reclaimed = LOps::try_reclaim(st->slots.get(), 2, 2, 0, 1); });
    sim.spawn([st] { st->claimed = LOps::try_claim(st->slots.get(), 0, 1); });
    sim.on_exit([st] {
      check::expect(!st->claimed || st->released,
                    "claim won without a preceding release");
      const ProgramId user = LOps::user_of(st->slots.get(), 0);
      ProgramId expected = 2;
      if (st->reclaimed || st->claimed) {
        expected = 1;
      } else if (st->released) {
        expected = kNoProgram;
      }
      check::expect(user == expected, "slot state inconsistent with winners");
      check::expect(user != 2u || (!st->released && !st->reclaimed),
                    "transitions lost under this slot layout");
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.executions, 1);
}

TEST(CoreTableCheck, LayoutIndependenceStrided) {
  check_claim_release_reclaim_storm<StridedCoreSlot>();
}

TEST(CoreTableCheck, LayoutIndependencePacked) {
  check_claim_release_reclaim_storm<PackedCoreSlot>();
}

}  // namespace
}  // namespace dws
