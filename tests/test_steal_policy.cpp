// Unit + property tests for the Algorithm-1 steal policy state machine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/config.hpp"
#include "core/steal_policy.hpp"

namespace dws {
namespace {

TEST(StealPolicy, ClassicNeverYieldsOrSleeps) {
  StealPolicy p(SchedMode::kClassic, 4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(p.on_steal_failed(), StealOutcome::kRetry);
  }
}

TEST(StealPolicy, FailureCountSaturatesInsteadOfOverflowing) {
  // kClassic never sleeps, so nothing ever reset failed_steals_ and a
  // starved worker incremented it forever — signed overflow (UB) after
  // ~2^31 failed steals. The counter now saturates well below that and
  // the policy's behavior is unchanged at the rail.
  StealPolicy p(SchedMode::kClassic, 4);
  for (int i = 0; i < StealPolicy::kFailedStealsSaturation + 10; ++i) {
    ASSERT_EQ(p.on_steal_failed(), StealOutcome::kRetry);
  }
  EXPECT_EQ(p.failed_steals(), StealPolicy::kFailedStealsSaturation);
  // Saturated is not stuck: a successful steal still resets the counter.
  p.on_task_acquired();
  EXPECT_EQ(p.failed_steals(), 0);
}

TEST(StealPolicy, SaturatedCounterStillTriggersSleep) {
  // A T_SLEEP at (or clamped to) the saturation rail must still fire:
  // the threshold comparison is >=, so pinning the counter at the rail
  // keeps the sleep decision reachable rather than unreachable-by-one.
  StealPolicy p(SchedMode::kDws, StealPolicy::kFailedStealsSaturation);
  for (int i = 0; i < StealPolicy::kFailedStealsSaturation - 1; ++i) {
    ASSERT_EQ(p.on_steal_failed(), StealOutcome::kYield);
  }
  EXPECT_EQ(p.on_steal_failed(), StealOutcome::kSleep);
}

TEST(StealPolicy, OversizedTSleepIsClampedToTheSaturationRail) {
  // A T_SLEEP beyond the saturation point could never be reached by a
  // counter that stops counting there; the constructor (and setter)
  // clamp it so "sleep eventually" stays true for any configuration.
  StealPolicy p(SchedMode::kDws, StealPolicy::kFailedStealsSaturation + 5);
  EXPECT_EQ(p.t_sleep(), StealPolicy::kFailedStealsSaturation);
  p.set_t_sleep(StealPolicy::kFailedStealsSaturation + 1000);
  EXPECT_EQ(p.t_sleep(), StealPolicy::kFailedStealsSaturation);
  p.set_t_sleep(7);
  EXPECT_EQ(p.t_sleep(), 7);
}

TEST(StealPolicy, AbpAlwaysYields) {
  StealPolicy p(SchedMode::kAbp, 4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(p.on_steal_failed(), StealOutcome::kYield);
  }
}

TEST(StealPolicy, EpAlwaysYields) {
  StealPolicy p(SchedMode::kEp, 4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(p.on_steal_failed(), StealOutcome::kYield);
  }
}

TEST(StealPolicy, BwsAlwaysYields) {
  StealPolicy p(SchedMode::kBws, 4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(p.on_steal_failed(), StealOutcome::kYield);
  }
}

TEST(StealPolicy, DwsSleepsOnExactlyTheTSleepthFailure) {
  // Algorithm 1 line 14: sleep once T_SLEEP consecutive steals have
  // failed — the T_SLEEP-th failure triggers sleep. (Regression test for
  // the historical `>` off-by-one that slept on the (T_SLEEP+1)-th.)
  constexpr int kTSleep = 16;
  StealPolicy p(SchedMode::kDws, kTSleep);
  for (int i = 0; i < kTSleep - 1; ++i) {
    EXPECT_EQ(p.on_steal_failed(), StealOutcome::kYield) << "failure " << i;
  }
  EXPECT_EQ(p.on_steal_failed(), StealOutcome::kSleep);
}

TEST(StealPolicy, TaskAcquisitionResetsTheCounter) {
  constexpr int kTSleep = 4;
  StealPolicy p(SchedMode::kDws, kTSleep);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < kTSleep - 1; ++i) {
      EXPECT_EQ(p.on_steal_failed(), StealOutcome::kYield);
    }
    p.on_task_acquired();  // success resets; never reaches sleep
    EXPECT_EQ(p.failed_steals(), 0);
  }
}

TEST(StealPolicy, SleepResetsTheCounter) {
  StealPolicy p(SchedMode::kDwsNc, 3);
  EXPECT_EQ(p.on_steal_failed(), StealOutcome::kYield);
  EXPECT_EQ(p.on_steal_failed(), StealOutcome::kYield);
  EXPECT_EQ(p.on_steal_failed(), StealOutcome::kSleep);
  p.on_sleep();
  // A woken worker gets a fresh budget.
  EXPECT_EQ(p.on_steal_failed(), StealOutcome::kYield);
}

TEST(StealPolicy, TSleepZeroSleepsOnFirstFailure) {
  StealPolicy p(SchedMode::kDws, 0);
  EXPECT_EQ(p.on_steal_failed(), StealOutcome::kSleep);
}

TEST(StealPolicy, TSleepOneAlsoSleepsOnFirstFailure) {
  // T_SLEEP = 1 means "sleep after one failed steal": with the corrected
  // comparison the first failure already meets the threshold.
  StealPolicy p(SchedMode::kDws, 1);
  EXPECT_EQ(p.on_steal_failed(), StealOutcome::kSleep);
}

TEST(StealPolicy, MidRunThresholdRaiseCannotReArmASpuriousSleep) {
  // Audit of the set_t_sleep / saturation interplay (adaptive T_SLEEP
  // raises the threshold mid-run). Two hazards were suspected:
  //  (a) raising the threshold past the saturation rail leaves a worker
  //      whose counter is pinned at the rail unable to *ever* sleep, and
  //  (b) a counter that ran past an old (small) threshold without
  //      sleeping — impossible in DWS, where the threshold-th failure
  //      sleeps and resets, but reachable by switching a policy's
  //      threshold while yielding — fires a "spurious" sleep on the next
  //      failure even though the new, larger threshold wasn't reached.
  // (a) is prevented by the clamp; (b) is unreachable because the counter
  // can only exceed a DWS threshold by the sleep that resets it.
  StealPolicy p(SchedMode::kDws, 8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(p.on_steal_failed(), StealOutcome::kYield);
  }
  // Raise mid-episode, far past the rail: the clamp keeps the threshold
  // reachable, and the in-flight failure streak keeps yielding.
  p.set_t_sleep(StealPolicy::kFailedStealsSaturation + 12345);
  EXPECT_EQ(p.t_sleep(), StealPolicy::kFailedStealsSaturation);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(p.on_steal_failed(), StealOutcome::kYield);
  }
  // Drive the counter to the rail: the clamped threshold still fires.
  while (p.on_steal_failed() != StealOutcome::kSleep) {
  }
  EXPECT_EQ(p.failed_steals(), StealPolicy::kFailedStealsSaturation);
  p.on_sleep();
  EXPECT_EQ(p.failed_steals(), 0);
}

TEST(StealPolicy, SleepFiresIffCounterMeetsThresholdUnderRandomRaises) {
  // Property sweep for the same interplay: across arbitrary interleavings
  // of failures and threshold changes (including raises past the rail and
  // drops below the current count), kSleep is returned exactly when the
  // post-increment counter is >= the *clamped* threshold — never early,
  // never skipped. A shadow model tracks the expected state.
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;  // splitmix64 stream
  auto rnd = [&x] {
    std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  StealPolicy p(SchedMode::kDws, 4);
  int shadow_failed = 0;
  int shadow_threshold = 4;
  for (int step = 0; step < 200000; ++step) {
    if (rnd() % 8 == 0) {
      // Mix small thresholds, the rail neighbourhood, and beyond-rail.
      const int raw =
          static_cast<int>(rnd() % (2u * StealPolicy::kFailedStealsSaturation));
      p.set_t_sleep(raw);
      shadow_threshold = std::min(raw, StealPolicy::kFailedStealsSaturation);
      ASSERT_EQ(p.t_sleep(), shadow_threshold);
      continue;
    }
    const StealOutcome out = p.on_steal_failed();
    if (shadow_failed < StealPolicy::kFailedStealsSaturation) ++shadow_failed;
    const bool should_sleep = shadow_failed >= shadow_threshold;
    ASSERT_EQ(out, should_sleep ? StealOutcome::kSleep : StealOutcome::kYield)
        << "step " << step << " failed=" << shadow_failed
        << " threshold=" << shadow_threshold;
    if (should_sleep) {
      p.on_sleep();
      shadow_failed = 0;
    }
  }
}

TEST(ConfigTSleep, DefaultsToMachineWidth) {
  Config cfg;
  cfg.t_sleep = -1;
  EXPECT_EQ(cfg.effective_t_sleep(16), 16);
  EXPECT_EQ(cfg.effective_t_sleep(4), 4);
  cfg.t_sleep = 32;
  EXPECT_EQ(cfg.effective_t_sleep(16), 32);
  cfg.t_sleep = 0;
  EXPECT_EQ(cfg.effective_t_sleep(16), 0);
}

TEST(SchedModeNames, RoundTrip) {
  for (SchedMode m : {SchedMode::kClassic, SchedMode::kAbp, SchedMode::kEp,
                      SchedMode::kDws, SchedMode::kDwsNc, SchedMode::kBws}) {
    SchedMode parsed{};
    ASSERT_TRUE(parse_mode(to_string(m), parsed)) << to_string(m);
    EXPECT_EQ(parsed, m);
  }
  SchedMode out{};
  EXPECT_FALSE(parse_mode("bogus", out));
}

TEST(SchedModeTraits, SleepAndSpaceShareFlags) {
  EXPECT_FALSE(mode_sleeps(SchedMode::kClassic));
  EXPECT_FALSE(mode_sleeps(SchedMode::kAbp));
  EXPECT_FALSE(mode_sleeps(SchedMode::kEp));
  EXPECT_TRUE(mode_sleeps(SchedMode::kDws));
  EXPECT_TRUE(mode_sleeps(SchedMode::kDwsNc));

  EXPECT_FALSE(mode_space_shares(SchedMode::kClassic));
  EXPECT_FALSE(mode_space_shares(SchedMode::kAbp));
  EXPECT_TRUE(mode_space_shares(SchedMode::kEp));
  EXPECT_TRUE(mode_space_shares(SchedMode::kDws));
  EXPECT_FALSE(mode_space_shares(SchedMode::kDwsNc));
}

// Property sweep: for every T_SLEEP the policy yields exactly
// max(T_SLEEP - 1, 0) times before the T_SLEEP-th failure sleeps, for
// both sleeping modes (Algorithm 1: sleep *after* T_SLEEP failures).
class StealPolicySweep
    : public ::testing::TestWithParam<std::tuple<SchedMode, int>> {};

TEST_P(StealPolicySweep, SleepTriggersAtThresholdExactly) {
  const auto [mode, t_sleep] = GetParam();
  StealPolicy p(mode, t_sleep);
  int yields = 0;
  while (p.on_steal_failed() == StealOutcome::kYield) ++yields;
  EXPECT_EQ(yields, std::max(t_sleep - 1, 0));
  EXPECT_EQ(p.failed_steals(), std::max(t_sleep, 1));
}

INSTANTIATE_TEST_SUITE_P(
    AllThresholds, StealPolicySweep,
    ::testing::Combine(::testing::Values(SchedMode::kDws, SchedMode::kDwsNc),
                       ::testing::Values(0, 1, 2, 4, 8, 16, 32, 64, 128)));

}  // namespace
}  // namespace dws
