// Tests for the experiment harness: mix registry, table/CSV reporting,
// Eq.-2 measurement, and normalization against baselines.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.hpp"
#include "harness/mixes.hpp"
#include "harness/report.hpp"

namespace dws::harness {
namespace {

TEST(Mixes, AppNamesMatchTable2) {
  EXPECT_STREQ(app_name(1), "FFT");
  EXPECT_STREQ(app_name(2), "PNN");
  EXPECT_STREQ(app_name(3), "Cholesky");
  EXPECT_STREQ(app_name(4), "LU");
  EXPECT_STREQ(app_name(5), "GE");
  EXPECT_STREQ(app_name(6), "Heat");
  EXPECT_STREQ(app_name(7), "SOR");
  EXPECT_STREQ(app_name(8), "Mergesort");
  EXPECT_THROW(app_name(0), std::out_of_range);
  EXPECT_THROW(app_name(9), std::out_of_range);
}

TEST(Mixes, FigureMixesAreThePapersEight) {
  ASSERT_EQ(kFigureMixes.size(), 8u);
  EXPECT_EQ(kFigureMixes[0], (std::pair<unsigned, unsigned>{1, 8}));
  EXPECT_EQ(kFigureMixes[1], (std::pair<unsigned, unsigned>{2, 7}));
  for (const auto& mix : kFigureMixes) {
    EXPECT_GE(mix.first, 1u);
    EXPECT_LE(mix.first, 8u);
    EXPECT_GE(mix.second, 1u);
    EXPECT_LE(mix.second, 8u);
    EXPECT_NE(mix.first, mix.second);
  }
}

TEST(Mixes, LabelFormat) {
  EXPECT_EQ(mix_label({1, 8}), "(1, 8)");
  EXPECT_EQ(mix_label({3, 6}), "(3, 6)");
}

TEST(Report, TableAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Report, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);  // must not crash; missing cells render empty
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Report, CsvRoundTrip) {
  Table t({"h1", "h2"});
  t.add_row({"a", "1.5"});
  t.add_row({"b", "2.0"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "h1,h2\na,1.5\nb,2.0\n");
}

TEST(Report, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Experiment, BaselinesCoverAllEightApps) {
  ExperimentConfig cfg;
  cfg.work_scale = 0.2;  // small for test speed
  cfg.baseline_runs = 2;
  const auto baselines = run_solo_baselines(cfg);
  ASSERT_EQ(baselines.size(), 8u);
  for (unsigned id = 1; id <= 8; ++id) {
    const auto it = baselines.find(app_name(id));
    ASSERT_NE(it, baselines.end()) << app_name(id);
    EXPECT_GT(it->second, 0.0) << app_name(id);
  }
}

TEST(Experiment, MixRunNormalizesAgainstBaselines) {
  ExperimentConfig cfg;
  cfg.work_scale = 0.2;
  cfg.baseline_runs = 2;
  cfg.target_runs = 2;
  const auto baselines = run_solo_baselines(cfg);
  const MixRun run = run_mix(cfg, {1, 8}, SchedMode::kEp, baselines);
  EXPECT_EQ(run.mode, "EP");
  EXPECT_EQ(run.first.name, "FFT");
  EXPECT_EQ(run.second.name, "Mergesort");
  // Co-running on half the machine cannot beat the solo-16-core baseline
  // by more than measurement slack, and must not be absurdly slow.
  EXPECT_GT(run.first.normalized, 0.8);
  EXPECT_LT(run.first.normalized, 20.0);
  EXPECT_GT(run.second.normalized, 0.8);
  EXPECT_LT(run.second.normalized, 20.0);
  EXPECT_NEAR(mix_total_normalized(run),
              run.first.normalized + run.second.normalized, 1e-12);
}

TEST(Experiment, MissingBaselineThrows) {
  ExperimentConfig cfg;
  cfg.work_scale = 0.2;
  std::map<std::string, double> empty;
  EXPECT_THROW(run_mix(cfg, {1, 8}, SchedMode::kEp, empty),
               std::invalid_argument);
}

TEST(Experiment, MeanRunTimeUsesEqTwo) {
  // Eq. 2: mean over the first target_runs repetitions. Verify against
  // the raw per-run times the engine reports.
  ExperimentConfig cfg;
  cfg.work_scale = 0.2;
  cfg.baseline_runs = 2;
  cfg.target_runs = 3;
  const auto baselines = run_solo_baselines(cfg);
  const MixRun run = run_mix(cfg, {1, 2}, SchedMode::kDws, baselines);
  for (const auto* slot : {&run.first, &run.second}) {
    ASSERT_GE(slot->raw.run_times_us.size(), 3u);
    double sum = 0.0;
    for (unsigned i = 0; i < 3; ++i) sum += slot->raw.run_times_us[i];
    EXPECT_NEAR(slot->raw.mean_run_time_us, sum / 3.0, 1e-9);
    EXPECT_NEAR(slot->mean_us, slot->raw.mean_run_time_us, 1e-9);
  }
}

}  // namespace
}  // namespace dws::harness
