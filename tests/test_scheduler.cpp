// Integration tests for the threads runtime: correctness of spawn/wait
// under every scheduling mode, the parallel algorithms, exception
// propagation, and the DWS sleep/wake lifecycle of a single program.
//
// Note: the CI host may have a single hardware core; these tests validate
// functional correctness (which is core-count independent), not speedup.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace dws::rt {
namespace {

using namespace std::chrono_literals;

Config make_config(SchedMode mode, unsigned cores, unsigned programs = 1) {
  Config cfg;
  cfg.mode = mode;
  cfg.num_cores = cores;
  cfg.num_programs = programs;
  cfg.pin_threads = false;  // the CI host may have fewer cores than k
  cfg.coordinator_period_ms = 2.0;
  return cfg;
}

/// Spin until `pred` holds or `timeout` elapses; returns pred().
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 3000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

std::uint64_t parallel_fib(Scheduler& sched, unsigned n) {
  if (n < 2) return n;
  std::uint64_t a = 0, b = 0;
  TaskGroup g;
  sched.spawn(g, [&sched, &a, n] { a = parallel_fib(sched, n - 1); });
  b = parallel_fib(sched, n - 2);
  sched.wait(g);
  return a + b;
}

class SchedulerModes : public ::testing::TestWithParam<SchedMode> {};

TEST_P(SchedulerModes, RunsASingleTask) {
  Scheduler sched(make_config(GetParam(), 4));
  std::atomic<int> x{0};
  sched.run([&] { x = 42; });
  EXPECT_EQ(x.load(), 42);
}

TEST_P(SchedulerModes, FibIsCorrect) {
  Scheduler sched(make_config(GetParam(), 4));
  std::uint64_t result = 0;
  sched.run([&] { result = parallel_fib(sched, 16); });
  EXPECT_EQ(result, 987u);
}

TEST_P(SchedulerModes, ParallelForCoversEveryIndexOnce) {
  Scheduler sched(make_config(GetParam(), 4));
  constexpr std::int64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(sched, 0, n, 64, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(SchedulerModes, ParallelReduceSumsCorrectly) {
  Scheduler sched(make_config(GetParam(), 4));
  constexpr std::int64_t n = 100000;
  const auto sum = parallel_reduce<std::int64_t>(
      sched, 0, n, 512, 0,
      [](std::int64_t b, std::int64_t e) {
        std::int64_t s = 0;
        for (std::int64_t i = b; i < e; ++i) s += i;
        return s;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST_P(SchedulerModes, SequentialRunsReuseTheScheduler) {
  Scheduler sched(make_config(GetParam(), 2));
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    parallel_for_each_index(sched, 0, 100, 10,
                            [&](std::int64_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 100) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, SchedulerModes,
                         ::testing::Values(SchedMode::kClassic, SchedMode::kAbp,
                                           SchedMode::kEp, SchedMode::kDws,
                                           SchedMode::kDwsNc, SchedMode::kBws),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

TEST(SchedulerApi, ParallelInvokeRunsAllBranches) {
  Scheduler sched(make_config(SchedMode::kDws, 4));
  std::atomic<int> mask{0};
  parallel_invoke(
      sched, [&] { mask.fetch_or(1); }, [&] { mask.fetch_or(2); },
      [&] { mask.fetch_or(4); }, [&] { mask.fetch_or(8); });
  EXPECT_EQ(mask.load(), 15);
}

TEST(SchedulerApi, EmptyAndTinyRangesWork) {
  Scheduler sched(make_config(SchedMode::kDws, 2));
  std::atomic<int> count{0};
  parallel_for(sched, 5, 5, 8, [&](std::int64_t, std::int64_t) {
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 0);
  parallel_for(sched, 0, 1, 8, [&](std::int64_t b, std::int64_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(SchedulerApi, NestedParallelForIsCorrect) {
  Scheduler sched(make_config(SchedMode::kDws, 4));
  constexpr std::int64_t n = 64;
  std::vector<std::atomic<int>> hits(n * n);
  sched.run([&] {
    parallel_for(sched, 0, n, 4, [&](std::int64_t rb, std::int64_t re) {
      for (std::int64_t r = rb; r < re; ++r) {
        parallel_for(sched, 0, n, 8, [&, r](std::int64_t cb, std::int64_t ce) {
          for (std::int64_t c = cb; c < ce; ++c) hits[r * n + c].fetch_add(1);
        });
      }
    });
  });
  for (std::int64_t i = 0; i < n * n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(SchedulerApi, TaskExceptionPropagatesToWaiter) {
  Scheduler sched(make_config(SchedMode::kAbp, 2));
  EXPECT_THROW(sched.run([&] { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The scheduler remains usable afterwards.
  std::atomic<int> x{0};
  sched.run([&] { x = 7; });
  EXPECT_EQ(x.load(), 7);
}

TEST(SchedulerApi, ExceptionFromSpawnedChildPropagates) {
  Scheduler sched(make_config(SchedMode::kDws, 4));
  EXPECT_THROW(
      parallel_for_each_index(sched, 0, 100, 1,
                              [&](std::int64_t i) {
                                if (i == 37) throw std::logic_error("i=37");
                              }),
      std::logic_error);
}

TEST(SchedulerApi, ManyConcurrentGroups) {
  Scheduler sched(make_config(SchedMode::kDws, 4));
  std::atomic<int> total{0};
  sched.run([&] {
    TaskGroup g1, g2;
    for (int i = 0; i < 50; ++i) {
      sched.spawn(g1, [&] { total.fetch_add(1); });
      sched.spawn(g2, [&] { total.fetch_add(10); });
    }
    sched.wait(g1);
    sched.wait(g2);
  });
  EXPECT_EQ(total.load(), 50 + 500);
}

// ---- Mode-specific behaviour ----

TEST(SchedulerEp, NonHomeWorkersArePermanentlyParked) {
  // One EP program declared among 2: it may only ever use its 2 home
  // cores out of 4.
  Scheduler sched(make_config(SchedMode::kEp, 4, 2));
  ASSERT_TRUE(eventually([&] {
    unsigned parked = 0;
    for (unsigned i = 0; i < 4; ++i) {
      if (sched.worker_at(i).state() == Worker::State::kParked) ++parked;
    }
    return parked == 2;
  }));
  // Work still completes on the remaining home workers.
  std::atomic<int> count{0};
  parallel_for_each_index(sched, 0, 1000, 10,
                          [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
  // And the parked workers never executed anything.
  const auto stats = sched.stats();
  for (unsigned i = 0; i < 4; ++i) {
    if (sched.worker_at(i).state() == Worker::State::kParked) {
      EXPECT_EQ(stats.per_worker[i].tasks_executed, 0u);
    }
  }
}

TEST(SchedulerDws, IdleProgramReleasesAllCores) {
  Scheduler sched(make_config(SchedMode::kDws, 4, 1));
  // With no work, every worker fails T_SLEEP steals and releases its core.
  ASSERT_TRUE(eventually([&] { return sched.sleeping_workers() == 4; }));
  EXPECT_EQ(sched.table()->count_free(), 4u);
  EXPECT_EQ(sched.active_workers(), 0u);
}

TEST(SchedulerDws, WakesUpForNewWorkAfterFullSleep) {
  Scheduler sched(make_config(SchedMode::kDws, 4, 1));
  ASSERT_TRUE(eventually([&] { return sched.sleeping_workers() == 4; }));
  // Submitting from the outside must revive the program.
  std::atomic<int> count{0};
  parallel_for_each_index(sched, 0, 500, 5,
                          [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 500);
  const auto stats = sched.stats();
  EXPECT_GT(stats.totals.sleeps, 0u);
  EXPECT_GT(stats.coordinator_wakes, 0u);
}

TEST(SchedulerDws, SecondProgramSlotStartsAsleep) {
  // Declared m=2 but only this program exists: its home half runs, the
  // other half's workers must park (their cores are unowned), and the
  // coordinator may later claim the free half under load.
  Scheduler sched(make_config(SchedMode::kDws, 4, 2));
  ASSERT_TRUE(eventually([&] { return sched.sleeping_workers() >= 2; }));
  // Sustained load lets the coordinator claim the free non-home cores.
  std::atomic<std::int64_t> sum{0};
  parallel_for_each_index(sched, 0, 200000, 16, [&](std::int64_t i) {
    sum.fetch_add(i % 7, std::memory_order_relaxed);
  });
  const auto stats = sched.stats();
  EXPECT_GT(stats.cores_claimed, 0u)
      << "coordinator should have claimed free non-home cores under load";
}

TEST(SchedulerDwsNc, SleepsAndWakesWithoutATable) {
  Scheduler sched(make_config(SchedMode::kDwsNc, 4));
  EXPECT_EQ(sched.table(), nullptr);
  ASSERT_TRUE(eventually([&] { return sched.sleeping_workers() == 4; }));
  std::atomic<int> count{0};
  parallel_for_each_index(sched, 0, 500, 5,
                          [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 500);
}

TEST(SchedulerClassic, NoYieldsNoSleeps) {
  Scheduler sched(make_config(SchedMode::kClassic, 2));
  sched.run([&] { (void)parallel_fib(sched, 12); });
  const auto stats = sched.stats();
  EXPECT_EQ(stats.totals.yields, 0u);
  EXPECT_EQ(stats.totals.sleeps, 0u);
  EXPECT_EQ(stats.coordinator_ticks, 0u);  // no coordinator at all
}

TEST(SchedulerAbp, YieldsButNeverSleeps) {
  Scheduler sched(make_config(SchedMode::kAbp, 4));
  sched.run([&] { (void)parallel_fib(sched, 14); });
  const auto stats = sched.stats();
  EXPECT_EQ(stats.totals.sleeps, 0u);
}

TEST(SchedulerStats, CountsTasksExactly) {
  Scheduler sched(make_config(SchedMode::kDws, 4));
  constexpr int kTasks = 300;
  std::atomic<int> count{0};
  sched.run([&] {
    TaskGroup g;
    for (int i = 0; i < kTasks; ++i) {
      sched.spawn(g, [&] { count.fetch_add(1); });
    }
    sched.wait(g);
  });
  EXPECT_EQ(count.load(), kTasks);
  // kTasks spawned + 1 root.
  EXPECT_EQ(sched.stats().totals.tasks_executed,
            static_cast<std::uint64_t>(kTasks) + 1);
}

// Regression for the RelaxedCounter copy path: the counter's copy
// constructor/assignment must be an explicit relaxed load/store pair. A
// defaulted copy would be a plain 64-bit read racing the owner's
// fetch_add — undefined behaviour, a TSan report, and a possible torn
// value on 32-bit targets. The observable contract of an atomic snapshot
// of a monotonic counter is monotonicity: successive copies never go
// backwards and never exceed the owner's final quiesced total.
TEST(SchedulerStats, RelaxedCounterCopiesFromLiveOwnerAreMonotonic) {
  RelaxedCounter counter;
  std::atomic<bool> stop{false};
  constexpr std::uint64_t kBumps = 200000;
  std::thread owner([&] {
    for (std::uint64_t i = 0; i < kBumps && !stop.load(); ++i) ++counter;
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 5000; ++i) {
    const RelaxedCounter copy = counter;       // copy-construct from live
    RelaxedCounter assigned;
    assigned = counter;                        // copy-assign from live
    const std::uint64_t c = copy.load();
    EXPECT_GE(c, last) << "snapshot went backwards (torn read?)";
    EXPECT_LE(c, kBumps);
    EXPECT_GE(assigned.load(), c) << "later snapshot below earlier one";
    EXPECT_LE(assigned.load(), kBumps);
    last = c;
  }
  stop.store(true);
  owner.join();
}

// The same property end-to-end: Scheduler::stats() copies every worker's
// WorkerStats (nine RelaxedCounters each) while the workers are still
// executing tasks and bumping them. Live snapshots must be tear-free —
// per-counter monotonic across calls and bounded by the quiesced final
// totals. (Under -DDWS_TSAN=ON this test is also the TSan witness that
// live aggregation is race-annotation clean.)
TEST(SchedulerStats, LiveAggregationIsTearFree) {
  Scheduler sched(make_config(SchedMode::kDws, 4));
  std::atomic<bool> stop{false};
  std::thread pump([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      parallel_for_each_index(sched, 0, 2000, 8, [](std::int64_t) {});
    }
  });
  std::uint64_t last_tasks = 0;
  std::uint64_t last_attempts = 0;
  for (int i = 0; i < 300; ++i) {
    const SchedulerStats s = sched.stats();
    const std::uint64_t tasks = s.totals.tasks_executed;
    const std::uint64_t attempts = s.totals.steal_attempts;
    EXPECT_GE(tasks, last_tasks) << "live totals went backwards";
    EXPECT_GE(attempts, last_attempts);
    // stats() copies each worker's WorkerStats strictly before re-reading
    // the live counters into totals, so the per-worker copies can only
    // lag the totals, never exceed them.
    std::uint64_t per_worker_sum = 0;
    for (const WorkerStats& w : s.per_worker) {
      per_worker_sum += w.tasks_executed;
    }
    EXPECT_LE(per_worker_sum, tasks);
    last_tasks = tasks;
    last_attempts = attempts;
  }
  stop.store(true);
  pump.join();
  // Quiesced: snapshots taken during the run never exceeded the final
  // count (a torn read would have produced a wild overshoot).
  const std::uint64_t final_tasks = sched.stats().totals.tasks_executed;
  EXPECT_LE(last_tasks, final_tasks);
}

// The locality breakdown must partition the totals: after the workers
// quiesce, each per-tier array sums to its aggregate counter, per worker
// and in the totals. (The worker bumps the aggregate and the tier slot in
// the same code path; a pick whose tier ever fell outside [0,4) — or a
// path that skipped the tier bump — breaks the partition.)
TEST(SchedulerStats, PerTierStealCountersPartitionTheTotals) {
  Config cfg = make_config(SchedMode::kDws, 8);
  cfg.num_sockets = 2;  // both NEAR and FAR tiers exist on this machine
  Scheduler sched(cfg);
  for (int round = 0; round < 20; ++round) {
    parallel_for_each_index(sched, 0, 400, 4, [](std::int64_t) {});
  }
  // Quiesce: with no work left, every DWS worker sleeps after T_SLEEP
  // failures and the counters stop moving.
  SchedulerStats s = sched.stats();
  eventually([&] {
    const SchedulerStats cur = sched.stats();
    const bool stable =
        cur.totals.steal_attempts == s.totals.steal_attempts &&
        cur.totals.steals == s.totals.steals;
    s = cur;
    return stable;
  });
  EXPECT_GT(s.totals.steal_attempts, 0u);
  std::uint64_t attempts_sum = 0, steals_sum = 0;
  for (unsigned t = 0; t < kNumDistanceTiers; ++t) {
    attempts_sum += s.totals.steal_attempts_by_tier[t];
    steals_sum += s.totals.steals_by_tier[t];
  }
  EXPECT_EQ(attempts_sum, s.totals.steal_attempts);
  EXPECT_EQ(steals_sum, s.totals.steals);
  for (const WorkerStats& w : s.per_worker) {
    std::uint64_t wa = 0, wsum = 0;
    for (unsigned t = 0; t < kNumDistanceTiers; ++t) {
      wa += w.steal_attempts_by_tier[t];
      wsum += w.steals_by_tier[t];
    }
    EXPECT_EQ(wa, w.steal_attempts);
    EXPECT_EQ(wsum, w.steals);
  }
}

// With a 2-socket machine model and the TIERED policy, successful steals
// concentrate in the near tier: same-socket victims are always probed
// first, so a cross-socket steal requires the thief's whole socket to be
// empty at that instant.
TEST(SchedulerStats, TieredPolicyRecordsNearSteals) {
  Config cfg = make_config(SchedMode::kDws, 8);
  cfg.num_sockets = 2;
  cfg.victim_policy = VictimPolicy::kTiered;
  Scheduler sched(cfg);
  for (int round = 0; round < 50; ++round) {
    parallel_for_each_index(sched, 0, 2000, 8, [](std::int64_t) {});
  }
  const SchedulerStats s = sched.stats();
  const auto near =
      s.totals.steal_attempts_by_tier[static_cast<int>(DistanceTier::kNear)];
  EXPECT_GT(near, 0u) << "tiered selection never probed a near victim";
}

TEST(SchedulerLifecycle, ImmediateDestructionIsClean) {
  for (SchedMode mode : {SchedMode::kClassic, SchedMode::kAbp, SchedMode::kEp,
                         SchedMode::kDws, SchedMode::kDwsNc}) {
    Scheduler sched(make_config(mode, 4, 2));
    // No work at all; destructor must join everything without hanging.
  }
  SUCCEED();
}

TEST(SchedulerLifecycle, TableFullyReleasedAfterDestruction) {
  CoreTableLocal shared(4, 2);
  {
    Scheduler sched(make_config(SchedMode::kDws, 4, 2), &shared.table());
    sched.run([] {});
  }
  EXPECT_EQ(shared.table().count_free(), 4u);
}

}  // namespace
}  // namespace dws::rt
