// Tests for the paper's discussed extensions (§4.4 / §6), implemented in
// the simulator: the BWS baseline (directed yield), asymmetric multi-core
// machines (per-core speeds + placement), and the work-sharing variant.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace dws::sim {
namespace {

SimParams machine(unsigned cores, unsigned sockets = 1) {
  SimParams p;
  p.num_cores = cores;
  p.num_sockets = sockets;
  return p;
}

SimProgramSpec spec(const std::string& name, SchedMode mode,
                    const TaskDag* dag, unsigned runs = 1, double mem = 0.0) {
  SimProgramSpec s;
  s.name = name;
  s.mode = mode;
  s.dag = dag;
  s.target_runs = runs;
  s.default_mem_intensity = mem;
  return s;
}

// ---------------- BWS ----------------

TEST(Bws, SoloCompletesAllTasks) {
  const TaskDag dag = make_fork_join_tree(6, 2, 100.0, 1.0, 1.0, 0.2);
  const SimResult r =
      simulate_solo(machine(4), spec("bws", SchedMode::kBws, &dag, 2, 0.2));
  EXPECT_EQ(r.programs[0].tasks_executed, dag.size() * 2);
  EXPECT_EQ(r.programs[0].sleeps, 0u);  // BWS never sleeps
}

TEST(Bws, NeverUsesTheCoreTable) {
  const TaskDag dag = make_fork_join_tree(5, 2, 100.0, 1.0, 1.0, 0.0);
  SimEngine e(machine(4), {spec("a", SchedMode::kBws, &dag, 2),
                           spec("b", SchedMode::kBws, &dag, 2)});
  const SimResult r = e.run();
  for (const auto& p : r.programs) {
    EXPECT_EQ(p.cores_claimed, 0u);
    EXPECT_EQ(p.cores_reclaimed, 0u);
    EXPECT_EQ(p.coordinator_ticks, 0u);
  }
}

TEST(Bws, BalancesBetterThanAbpOnAsymmetricMix) {
  // The BWS claim (EuroSys'12): directed yields keep time slices inside
  // the program that can use them, balancing co-runners better than ABP.
  // Pair a wide scalable program with a narrow one and compare the
  // worst-case normalized slot.
  const TaskDag wide = make_fork_join_tree(8, 2, 200.0, 1.0, 1.0, 0.0);
  const TaskDag narrow = make_serial_chain(60, 2000.0, 0.0);

  auto run_mode = [&](SchedMode mode) {
    SimEngine e(machine(8),
                {spec("wide", mode, &wide, 3), spec("narrow", mode, &narrow, 3)});
    return e.run();
  };
  const double solo_narrow =
      simulate_solo(machine(8), spec("n", SchedMode::kAbp, &narrow))
          .programs[0]
          .mean_run_time_us;
  const SimResult abp = run_mode(SchedMode::kAbp);
  const SimResult bws = run_mode(SchedMode::kBws);
  const double narrow_abp =
      abp.program("narrow").mean_run_time_us / solo_narrow;
  const double narrow_bws =
      bws.program("narrow").mean_run_time_us / solo_narrow;
  // The narrow (serial) program's only thread must not starve under BWS
  // worse than under ABP.
  EXPECT_LE(narrow_bws, narrow_abp * 1.1)
      << "BWS starved the narrow program more than ABP";
}

TEST(Bws, ModeRoundTripsAndTraits) {
  SchedMode out{};
  ASSERT_TRUE(parse_mode("BWS", out));
  EXPECT_EQ(out, SchedMode::kBws);
  EXPECT_FALSE(mode_sleeps(SchedMode::kBws));
  EXPECT_FALSE(mode_space_shares(SchedMode::kBws));
}

// ---------------- asymmetric cores ----------------

TEST(AsymmetricCores, FasterCoresFinishSerialWorkSooner) {
  const TaskDag chain = make_serial_chain(50, 1000.0, 0.0);
  SimParams slow = machine(1);
  slow.core_speeds = {0.5};
  SimParams fast = machine(1);
  fast.core_speeds = {2.0};
  const double t_slow =
      simulate_solo(slow, spec("c", SchedMode::kClassic, &chain))
          .programs[0]
          .mean_run_time_us;
  const double t_fast =
      simulate_solo(fast, spec("c", SchedMode::kClassic, &chain))
          .programs[0]
          .mean_run_time_us;
  // 4x speed ratio => ~4x wall ratio (op latencies are speed-independent
  // but negligible here).
  EXPECT_NEAR(t_slow / t_fast, 4.0, 0.2);
}

TEST(AsymmetricCores, DefaultSpeedIsOne) {
  const TaskDag chain = make_serial_chain(20, 500.0, 0.0);
  SimParams explicit_one = machine(2);
  explicit_one.core_speeds = {1.0, 1.0};
  const double a =
      simulate_solo(machine(2), spec("c", SchedMode::kClassic, &chain))
          .programs[0]
          .mean_run_time_us;
  const double b =
      simulate_solo(explicit_one, spec("c", SchedMode::kClassic, &chain))
          .programs[0]
          .mean_run_time_us;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(AsymmetricCores, NonPositiveSpeedIsRejected) {
  const TaskDag chain = make_serial_chain(2, 1.0, 0.0);
  SimParams bad = machine(2);
  bad.core_speeds = {1.0, 0.0};
  EXPECT_THROW(SimEngine(bad, {spec("c", SchedMode::kClassic, &chain)}),
               std::invalid_argument);
}

TEST(AsymmetricCores, PlacementOnFastBlockBeatsSlowBlock) {
  // §4.4's sketch: compute-bound programs should take the fast cores.
  // 4 fast (1.5x) + 4 slow (0.6x) cores; under EP the first-registered
  // program homes the first block. Registering the compute-heavy program
  // first (fast block) must beat registering it second (slow block).
  const TaskDag compute = make_fork_join_tree(7, 2, 400.0, 1.0, 1.0, 0.0);
  const TaskDag light = make_iterative_phases(10, 16, 100.0, 0.2, 1.0);
  SimParams p = machine(8, 2);
  p.core_speeds = {1.5, 1.5, 1.5, 1.5, 0.6, 0.6, 0.6, 0.6};

  SimEngine good(p, {spec("compute", SchedMode::kEp, &compute, 2),
                     spec("light", SchedMode::kEp, &light, 2)});
  const double t_good = good.run().program("compute").mean_run_time_us;

  SimEngine bad(p, {spec("light", SchedMode::kEp, &light, 2),
                    spec("compute", SchedMode::kEp, &compute, 2)});
  const double t_bad = bad.run().program("compute").mean_run_time_us;

  EXPECT_LT(t_good, t_bad * 0.55)
      << "fast-block placement should be ~2.5x faster for the compute "
         "program";
}

TEST(AsymmetricCores, DwsStillExchangesCores) {
  // DWS on an asymmetric machine keeps working: the busy program borrows
  // the idle program's cores regardless of their speed.
  const TaskDag tiny = make_serial_chain(3, 100.0, 0.0);
  const TaskDag heavy = make_fork_join_tree(7, 2, 800.0, 1.0, 1.0, 0.0);
  SimParams p = machine(8);
  p.core_speeds = {1.5, 1.5, 1.5, 1.5, 0.6, 0.6, 0.6, 0.6};
  SimEngine e(p, {spec("tiny", SchedMode::kDws, &tiny, 1),
                  spec("heavy", SchedMode::kDws, &heavy, 2)});
  const SimResult r = e.run();
  EXPECT_GT(r.program("heavy").cores_claimed, 0u);
}

// ---------------- work-sharing ----------------

TEST(WorkSharing, CompletesAllTasks) {
  const TaskDag dag = make_fork_join_tree(6, 2, 100.0, 1.0, 1.0, 0.2);
  SimProgramSpec s = spec("ws", SchedMode::kDws, &dag, 3, 0.2);
  s.work_sharing = true;
  const SimResult r = simulate_solo(machine(4), s);
  EXPECT_EQ(r.programs[0].tasks_executed, dag.size() * 3);
}

TEST(WorkSharing, NoStealsEverHappen) {
  const TaskDag dag = make_fork_join_tree(6, 2, 100.0, 1.0, 1.0, 0.0);
  SimProgramSpec s = spec("ws", SchedMode::kAbp, &dag, 2);
  s.work_sharing = true;
  const SimResult r = simulate_solo(machine(4), s);
  EXPECT_EQ(r.programs[0].steals, 0u);  // central queue pops are not steals
}

TEST(WorkSharing, DwsSleepWakeStillWorks) {
  // §4.4's claim: the DWS mechanism transfers to work-sharing. A narrow
  // phase must still put workers to sleep; a wide phase must wake them.
  TaskDag dag;
  DagSpan narrow = emit_parallel_for(dag, 1, 20000.0, 0.0);
  DagSpan wide = emit_parallel_for(dag, 64, 500.0, 0.0);
  dag.set_continuation(narrow.exit, wide.entry);
  dag.set_root(narrow.entry);
  ASSERT_EQ(dag.validate(), "");

  SimProgramSpec s = spec("ws", SchedMode::kDws, &dag, 1, 0.0);
  s.work_sharing = true;
  const SimResult r = simulate_solo(machine(8), s);
  EXPECT_GT(r.programs[0].sleeps, 0u);
  EXPECT_GT(r.programs[0].wakes, 0u);
  EXPECT_EQ(r.programs[0].tasks_executed, dag.size());
}

TEST(WorkSharing, CoRunsAgainstAWorkStealingProgram) {
  const TaskDag dag = make_fork_join_tree(6, 2, 150.0, 1.0, 1.0, 0.2);
  SimProgramSpec ws = spec("sharing", SchedMode::kDws, &dag, 2, 0.2);
  ws.work_sharing = true;
  SimProgramSpec st = spec("stealing", SchedMode::kDws, &dag, 2, 0.2);
  SimEngine e(machine(8), {ws, st});
  const SimResult r = e.run();
  EXPECT_GE(r.program("sharing").run_times_us.size(), 2u);
  EXPECT_GE(r.program("stealing").run_times_us.size(), 2u);
  EXPECT_FALSE(r.hit_time_limit);
}

// ---------------- adaptive T_SLEEP ----------------

TEST(AdaptiveTSleep, OffByDefaultMatchesFixed) {
  const TaskDag dag = make_fork_join_tree(5, 2, 100.0, 1.0, 1.0, 0.2);
  SimParams p = machine(4);
  const double fixed =
      simulate_solo(p, spec("f", SchedMode::kDws, &dag, 2, 0.2))
          .programs[0]
          .mean_run_time_us;
  // adaptive defaults to off => identical schedule.
  SimParams q = machine(4);
  q.adaptive_t_sleep = false;
  const double again =
      simulate_solo(q, spec("f", SchedMode::kDws, &dag, 2, 0.2))
          .programs[0]
          .mean_run_time_us;
  EXPECT_DOUBLE_EQ(fixed, again);
}

TEST(AdaptiveTSleep, ReducesChurnOnBurstyWorkload) {
  // Rapidly alternating demand with a tiny base threshold: the adaptive
  // controller must cut the sleep/wake churn substantially.
  TaskDag dag;
  DagSpan prev{};
  for (int phase = 0; phase < 16; ++phase) {
    DagSpan s = (phase % 2 == 0) ? emit_parallel_for(dag, 1, 2000.0, 0.0)
                                 : emit_parallel_for(dag, 32, 200.0, 0.0);
    if (phase == 0) {
      dag.set_root(s.entry);
    } else {
      dag.set_continuation(prev.exit, s.entry);
    }
    prev = s;
  }
  ASSERT_EQ(dag.validate(), "");

  auto churn = [&](bool adaptive) {
    SimParams p = machine(8);
    p.t_sleep = 2;
    p.adaptive_t_sleep = adaptive;
    SimEngine e(p, {spec("a", SchedMode::kDws, &dag, 3),
                    spec("b", SchedMode::kDws, &dag, 3)});
    const SimResult r = e.run();
    return r.programs[0].sleeps + r.programs[1].sleeps;
  };
  const auto fixed_sleeps = churn(false);
  const auto adaptive_sleeps = churn(true);
  // The controller must strictly reduce churn here; on harsher workloads
  // (see bench_adaptive_tsleep) the reduction is ~7x.
  EXPECT_LT(static_cast<double>(adaptive_sleeps),
            0.8 * static_cast<double>(fixed_sleeps))
      << "adaptive threshold failed to suppress premature-sleep churn";
}

TEST(AdaptiveTSleep, StillSleepsOnGenuineIdleness) {
  // A long narrow section must still release cores under the adaptive
  // controller (it raises the threshold only on *premature* sleeps).
  TaskDag dag;
  DagSpan narrow = emit_parallel_for(dag, 1, 50000.0, 0.0);
  DagSpan wide = emit_parallel_for(dag, 32, 400.0, 0.0);
  dag.set_continuation(narrow.exit, wide.entry);
  dag.set_root(narrow.entry);
  ASSERT_EQ(dag.validate(), "");
  SimParams p = machine(8);
  p.adaptive_t_sleep = true;
  const SimResult r = simulate_solo(p, spec("n", SchedMode::kDws, &dag));
  EXPECT_GT(r.programs[0].sleeps, 0u);
  EXPECT_EQ(r.programs[0].tasks_executed, dag.size());
}

TEST(WorkSharing, CentralQueueIsFifo) {
  // FIFO semantics show up as breadth-first execution: in a two-level
  // tree the first-spawned subtree's tasks run before later spawns, so
  // completion order differs from the work-stealing LIFO case. We verify
  // indirectly: both run to completion with identical task counts.
  const TaskDag dag = make_fork_join_tree(4, 4, 50.0, 1.0, 1.0, 0.0);
  SimProgramSpec ws = spec("f", SchedMode::kClassic, &dag, 1);
  ws.work_sharing = true;
  const SimResult r = simulate_solo(machine(2), ws);
  EXPECT_EQ(r.programs[0].tasks_executed, dag.size());
}

}  // namespace
}  // namespace dws::sim
