// Deadlock-analysis tests (ctest label: race-deadlock).
//
// The lock-order graph (src/race/lockgraph) rides both race-detector
// modes — SP-bags serial replay and FastTrack on the live schedule —
// recording an edge H → L whenever a task acquires L while holding H,
// and certifying post-session cycles with two suppression rules: a
// common gate lock between two edges serializes the inversion in every
// schedule, and edges whose tasks cannot run in parallel (the SP-bags
// series/parallel query / FastTrack's structural fork-join clock) can
// never block on each other.
//
// Layers:
//  1. seeded mutants against hand-built spawn trees — the classic AB/BA
//     inversion and a 3-cycle must be flagged with full cycle
//     provenance; the gated inversion and the serial-only inversion
//     must stay SILENT, each leaving its suppression counter as the
//     proof the cycle was seen and killed rather than missed. Mutants
//     only annotate (no real mutexes): under FastTrack the tasks run on
//     real workers, where a real inversion could actually hang the
//     suite.
//  2. clean certification — every lock-using kernel (PNN's locked
//     combine, rt::parallel_reduce, the Table-2 corpus, every DagProfile
//     replay) runs deadlock-free in both modes.
//  3. mode agreement — at one worker both modes see the same logical
//     DAG, so deadlock verdicts must match on the full mutant set.
//  4. naming — anonymous locks intern as "lock#N" by first-seen session
//     order, stable across sessions (address-based names alias when the
//     heap reuses a freed mutex's storage).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "apps/app.hpp"
#include "apps/dag_replay.hpp"
#include "apps/profiles.hpp"
#include "race/fasttrack.hpp"
#include "race/spbags.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace dws {
namespace {

Config make_config(unsigned cores) {
  Config cfg;
  cfg.mode = SchedMode::kDws;
  cfg.num_cores = cores;
  cfg.pin_threads = false;
  return cfg;
}

constexpr race::Mode kBothModes[] = {race::Mode::kSpBags,
                                     race::Mode::kFastTrack};

bool mode_enabled(race::Mode m) {
  static const std::vector<race::Mode> enabled = race::modes_from_env();
  return std::find(enabled.begin(), enabled.end(), m) != enabled.end();
}

std::string mode_tag(race::Mode m) {
  return m == race::Mode::kFastTrack ? "FastTrack" : "SpBags";
}

Config config_for(race::Mode m) {
  return make_config(m == race::Mode::kFastTrack ? 4 : 2);
}

std::string dump(const race::DeadlockAnalysis& dl) {
  std::string out;
  for (const auto& r : dl.reports) {
    out += r.to_string();
    out += '\n';
  }
  return out;
}

/// True if any edge of any report mentions `needle` in its chain.
bool any_chain_mentions(const race::DeadlockAnalysis& dl,
                        const std::string& needle) {
  for (const auto& r : dl.reports) {
    for (const auto& e : r.cycle) {
      for (const auto& hop : e.chain) {
        if (hop.find(needle) != std::string::npos) return true;
      }
    }
  }
  return false;
}

/// The lock names on a report's cycle (both ends of every edge).
std::set<std::string> cycle_locks(const race::DeadlockReport& r) {
  std::set<std::string> names;
  for (const auto& e : r.cycle) {
    names.insert(e.held);
    names.insert(e.acquired);
  }
  return names;
}

// ---------------------------------------------------------------------
// Seeded mutants. Annotation-only: lock identities are plain stack
// ints, never real mutexes (see file comment).
// ---------------------------------------------------------------------

void mutant_ab_ba(rt::Scheduler& sched) {
  race::region scope("ab-ba-mutant");
  int a = 0;
  int b = 0;
  rt::TaskGroup g;
  sched.spawn(g, [&] {
    race::lock_acquire(&a, "lock-a");
    race::lock_acquire(&b, "lock-b");
    race::lock_release(&b);
    race::lock_release(&a);
  });
  sched.spawn(g, [&] {
    race::lock_acquire(&b, "lock-b");
    race::lock_acquire(&a, "lock-a");
    race::lock_release(&a);
    race::lock_release(&b);
  });
  sched.wait(g);
}

void mutant_three_cycle(rt::Scheduler& sched) {
  race::region scope("three-cycle-mutant");
  int a = 0;
  int b = 0;
  int c = 0;
  const auto nested = [](const void* outer, const char* outer_name,
                         const void* inner, const char* inner_name) {
    race::lock_acquire(outer, outer_name);
    race::lock_acquire(inner, inner_name);
    race::lock_release(inner);
    race::lock_release(outer);
  };
  rt::TaskGroup g;
  sched.spawn(g, [&] { nested(&a, "lock-a", &b, "lock-b"); });
  sched.spawn(g, [&] { nested(&b, "lock-b", &c, "lock-c"); });
  sched.spawn(g, [&] { nested(&c, "lock-c", &a, "lock-a"); });
  sched.wait(g);
}

/// Inner AB/BA inversion, but both tasks take gate G first: the common
/// outer lock serializes the inversion in every schedule — must be
/// suppressed by the gate rule, not reported.
void mutant_gated(rt::Scheduler& sched) {
  race::region scope("gated-mutant");
  int gate = 0;
  int a = 0;
  int b = 0;
  const auto gated = [&](const void* first, const char* first_name,
                         const void* second, const char* second_name) {
    race::lock_acquire(&gate, "lock-gate");
    race::lock_acquire(first, first_name);
    race::lock_acquire(second, second_name);
    race::lock_release(second);
    race::lock_release(first);
    race::lock_release(&gate);
  };
  rt::TaskGroup g;
  sched.spawn(g, [&] { gated(&a, "lock-a", &b, "lock-b"); });
  sched.spawn(g, [&] { gated(&b, "lock-b", &a, "lock-a"); });
  sched.wait(g);
}

/// AB then BA, but the wait between them serializes the two tasks: the
/// cycle exists in the graph yet can never block — must be suppressed by
/// the series/parallel rule.
void mutant_serial_only(rt::Scheduler& sched) {
  race::region scope("serial-mutant");
  int a = 0;
  int b = 0;
  rt::TaskGroup g1;
  sched.spawn(g1, [&] {
    race::lock_acquire(&a, "lock-a");
    race::lock_acquire(&b, "lock-b");
    race::lock_release(&b);
    race::lock_release(&a);
  });
  sched.wait(g1);
  rt::TaskGroup g2;
  sched.spawn(g2, [&] {
    race::lock_acquire(&b, "lock-b");
    race::lock_acquire(&a, "lock-a");
    race::lock_release(&a);
    race::lock_release(&b);
  });
  sched.wait(g2);
}

/// Both orders inside ONE task: a task is serial with itself, so the
/// inversion can never block — series/parallel suppression again.
void mutant_same_task(rt::Scheduler& sched) {
  race::region scope("same-task-mutant");
  int a = 0;
  int b = 0;
  rt::TaskGroup g;
  sched.spawn(g, [&] {
    race::lock_acquire(&a, "lock-a");
    race::lock_acquire(&b, "lock-b");
    race::lock_release(&b);
    race::lock_release(&a);
    race::lock_acquire(&b, "lock-b");
    race::lock_acquire(&a, "lock-a");
    race::lock_release(&a);
    race::lock_release(&b);
  });
  sched.wait(g);
}

/// Consistent A-before-B nesting from parallel tasks: an acyclic graph,
/// nothing to report.
void kernel_consistent_order(rt::Scheduler& sched) {
  race::region scope("consistent-order");
  int a = 0;
  int b = 0;
  rt::TaskGroup g;
  for (int i = 0; i < 3; ++i) {
    sched.spawn(g, [&] {
      race::lock_acquire(&a, "lock-a");
      race::lock_acquire(&b, "lock-b");
      race::lock_release(&b);
      race::lock_release(&a);
    });
  }
  sched.wait(g);
}

// ---------------------------------------------------------------------
// 1. Mutants: flagged inversions with full cycle provenance, silent
//    suppressions with their counters as witnesses.
// ---------------------------------------------------------------------

class DeadlockMutantTest : public ::testing::TestWithParam<race::Mode> {};

TEST_P(DeadlockMutantTest, AbBaInversionFlagged) {
  const race::Mode mode = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  rt::Scheduler sched(config_for(mode));
  race::Replay replay(sched, mode);
  mutant_ab_ba(sched);
  const auto& dl = replay.deadlocks();
  ASSERT_TRUE(dl.enabled);
  ASSERT_EQ(dl.reports.size(), 1u) << dump(dl);
  EXPECT_EQ(dl.cycles_found, 1u);
  const race::DeadlockReport& r = dl.reports.front();
  ASSERT_EQ(r.cycle.size(), 2u) << r.to_string();
  EXPECT_EQ(cycle_locks(r), (std::set<std::string>{"lock-a", "lock-b"}));
  // Full provenance: the two edges traverse the cycle (each edge's
  // target is the next edge's source), every edge carries its gate set
  // and a root-first spawn chain naming the mutant's region.
  for (std::size_t i = 0; i < r.cycle.size(); ++i) {
    const race::DeadlockEdge& e = r.cycle[i];
    EXPECT_EQ(e.acquired, r.cycle[(i + 1) % r.cycle.size()].held);
    ASSERT_FALSE(e.chain.empty());
    EXPECT_EQ(e.chain.front(), "root");
    EXPECT_EQ(e.gates, std::vector<std::string>{e.held});
  }
  EXPECT_TRUE(any_chain_mentions(dl, "ab-ba-mutant")) << dump(dl);
}

TEST_P(DeadlockMutantTest, ThreeCycleFlagged) {
  const race::Mode mode = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  rt::Scheduler sched(config_for(mode));
  race::Replay replay(sched, mode);
  mutant_three_cycle(sched);
  const auto& dl = replay.deadlocks();
  ASSERT_EQ(dl.reports.size(), 1u) << dump(dl);
  const race::DeadlockReport& r = dl.reports.front();
  ASSERT_EQ(r.cycle.size(), 3u) << r.to_string();
  EXPECT_EQ(cycle_locks(r),
            (std::set<std::string>{"lock-a", "lock-b", "lock-c"}));
  EXPECT_TRUE(any_chain_mentions(dl, "three-cycle-mutant")) << dump(dl);
}

TEST_P(DeadlockMutantTest, GatedInversionStaysSilent) {
  const race::Mode mode = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  rt::Scheduler sched(config_for(mode));
  race::Replay replay(sched, mode);
  mutant_gated(sched);
  const auto& dl = replay.deadlocks();
  EXPECT_TRUE(dl.clean()) << dump(dl);
  // Not vacuously silent: the A/B cycle was found, then killed by the
  // gate rule (the only viable assignments share lock-gate).
  EXPECT_EQ(dl.cycles_found, 1u);
  EXPECT_EQ(dl.cycles_gate_suppressed, 1u);
  EXPECT_EQ(dl.cycles_serial_suppressed, 0u);
}

TEST_P(DeadlockMutantTest, SerialInversionStaysSilent) {
  const race::Mode mode = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  rt::Scheduler sched(config_for(mode));
  race::Replay replay(sched, mode);
  mutant_serial_only(sched);
  const auto& dl = replay.deadlocks();
  EXPECT_TRUE(dl.clean()) << dump(dl);
  EXPECT_EQ(dl.cycles_found, 1u);
  EXPECT_EQ(dl.cycles_serial_suppressed, 1u);
  EXPECT_EQ(dl.cycles_gate_suppressed, 0u);
}

TEST_P(DeadlockMutantTest, SameTaskInversionStaysSilent) {
  const race::Mode mode = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  rt::Scheduler sched(config_for(mode));
  race::Replay replay(sched, mode);
  mutant_same_task(sched);
  const auto& dl = replay.deadlocks();
  EXPECT_TRUE(dl.clean()) << dump(dl);
  EXPECT_EQ(dl.cycles_found, 1u);
  EXPECT_EQ(dl.cycles_serial_suppressed, 1u);
}

TEST_P(DeadlockMutantTest, ConsistentOrderHasNoCycle) {
  const race::Mode mode = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  rt::Scheduler sched(config_for(mode));
  race::Replay replay(sched, mode);
  kernel_consistent_order(sched);
  const auto& dl = replay.deadlocks();
  EXPECT_TRUE(dl.clean()) << dump(dl);
  EXPECT_EQ(dl.cycles_found, 0u);
  EXPECT_EQ(replay.locks_seen(), 2u);
}

TEST_P(DeadlockMutantTest, RecursiveAcquireCreatesNoEdge) {
  const race::Mode mode = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  rt::Scheduler sched(config_for(mode));
  race::Replay replay(sched, mode);
  {
    int a = 0;
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::lock_acquire(&a, "lock-a");
      race::lock_acquire(&a, "lock-a");  // recursive: no self-edge
      race::lock_release(&a);
      race::lock_release(&a);
    });
    sched.wait(g);
  }
  const auto& dl = replay.deadlocks();
  EXPECT_TRUE(dl.clean()) << dump(dl);
  EXPECT_EQ(dl.cycles_found, 0u);
  const race::LockGraph* graph = mode == race::Mode::kSpBags
                                     ? replay.detector().lock_graph()
                                     : replay.fasttrack().lock_graph();
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->events_recorded(), 0u);
}

TEST_P(DeadlockMutantTest, CheckDeadlocksOffRecordsNothing) {
  const race::Mode mode = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  rt::Scheduler sched(config_for(mode));
  race::Replay replay(sched, mode, /*check_deadlocks=*/false);
  mutant_ab_ba(sched);
  const auto& dl = replay.deadlocks();
  EXPECT_FALSE(dl.enabled);
  EXPECT_TRUE(dl.clean());
  EXPECT_EQ(dl.cycles_found, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, DeadlockMutantTest,
                         ::testing::ValuesIn(kBothModes),
                         [](const ::testing::TestParamInfo<race::Mode>& info) {
                           return mode_tag(info.param);
                         });

// ---------------------------------------------------------------------
// 2. Clean certification: every lock-using kernel is deadlock-free in
//    both modes.
// ---------------------------------------------------------------------

class DeadlockCleanTest : public ::testing::TestWithParam<race::Mode> {};

TEST_P(DeadlockCleanTest, PnnLockedCombineCertifies) {
  const race::Mode mode = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  auto app = apps::make_app("PNN", apps::Scale::kSmall);
  ASSERT_NE(app, nullptr);
  rt::Scheduler sched(config_for(mode));
  race::Replay replay(sched, mode);
  app->run(sched);
  const auto& dl = replay.deadlocks();
  EXPECT_TRUE(dl.clean()) << dump(dl);
  EXPECT_GE(replay.locks_seen(), 1u)
      << "PNN's combine lock was not observed — the verdict is vacuous";
  EXPECT_EQ(app->verify(), "");
}

TEST_P(DeadlockCleanTest, ParallelReduceCertifies) {
  const race::Mode mode = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  rt::Scheduler sched(config_for(mode));
  race::Replay replay(sched, mode);
  const std::int64_t n = 1000;
  const std::int64_t sum = rt::parallel_reduce(
      sched, std::int64_t{0}, n, std::int64_t{16}, std::int64_t{0},
      [](std::int64_t b, std::int64_t e) {
        std::int64_t s = 0;
        for (std::int64_t i = b; i < e; ++i) s += i;
        return s;
      },
      [](std::int64_t x, std::int64_t y) { return x + y; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
  const auto& dl = replay.deadlocks();
  EXPECT_TRUE(dl.clean()) << dump(dl);
  EXPECT_GE(replay.locks_seen(), 1u);
}

TEST_P(DeadlockCleanTest, Table2CorpusCertifies) {
  const race::Mode mode = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  for (const char* name : apps::kAppNames) {
    auto app = apps::make_app(name, apps::Scale::kTiny);
    ASSERT_NE(app, nullptr) << name;
    rt::Scheduler sched(config_for(mode));
    race::Replay replay(sched, mode);
    app->run(sched);
    const auto& dl = replay.deadlocks();
    EXPECT_TRUE(dl.clean()) << name << "\n" << dump(dl);
    EXPECT_EQ(app->verify(), "") << name;
  }
}

TEST_P(DeadlockCleanTest, SimDagReplaysCertify) {
  const race::Mode mode = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  for (const apps::SimAppProfile& profile : apps::make_all_sim_profiles()) {
    rt::Scheduler sched(config_for(mode));
    race::Replay replay(sched, mode);
    const apps::DagReplayStats stats = apps::replay_dag(sched, profile.dag);
    ASSERT_TRUE(stats.clean()) << stats.defects.front();
    const auto& dl = replay.deadlocks();
    EXPECT_TRUE(dl.clean()) << profile.name << "\n" << dump(dl);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, DeadlockCleanTest,
                         ::testing::ValuesIn(kBothModes),
                         [](const ::testing::TestParamInfo<race::Mode>& info) {
                           return mode_tag(info.param);
                         });

// ---------------------------------------------------------------------
// 3. Mode agreement: at one worker both modes see the same logical DAG,
//    so deadlock verdicts must match over the full mutant set.
// ---------------------------------------------------------------------

TEST(DeadlockModeAgreementTest, VerdictsAgreeAtOneWorker) {
  struct Case {
    const char* name;
    void (*kernel)(rt::Scheduler&);
    bool expect_flagged;
  };
  const Case cases[] = {
      {"ab_ba", mutant_ab_ba, true},
      {"three_cycle", mutant_three_cycle, true},
      {"gated", mutant_gated, false},
      {"serial_only", mutant_serial_only, false},
      {"same_task", mutant_same_task, false},
      {"consistent_order", kernel_consistent_order, false},
  };
  for (const Case& c : cases) {
    std::size_t reports[2] = {0, 0};
    std::uint64_t gate[2] = {0, 0};
    std::uint64_t serial[2] = {0, 0};
    for (race::Mode mode : kBothModes) {
      rt::Scheduler sched(make_config(1));
      race::Replay replay(sched, mode);
      c.kernel(sched);
      const auto& dl = replay.deadlocks();
      const auto i = static_cast<std::size_t>(mode);
      reports[i] = dl.reports.size();
      gate[i] = dl.cycles_gate_suppressed;
      serial[i] = dl.cycles_serial_suppressed;
    }
    EXPECT_EQ(reports[0] > 0, c.expect_flagged) << c.name;
    EXPECT_EQ(reports[0], reports[1]) << c.name;
    EXPECT_EQ(gate[0], gate[1]) << c.name;
    EXPECT_EQ(serial[0], serial[1]) << c.name;
  }
}

// ---------------------------------------------------------------------
// 4. Naming: anonymous locks intern by first-seen session order.
// ---------------------------------------------------------------------

TEST(DeadlockNamingTest, AnonymousLockNamesAreStableAcrossSessions) {
  // Two sessions over the same program but different lock addresses
  // (fresh heap allocations, plus a spacer so the second session's
  // layout differs). Fallback names must come out identical — they
  // depend only on first-seen order — and must not embed the address.
  std::set<std::string> names[2];
  std::vector<std::unique_ptr<int>> keep;  // hold allocations across runs
  for (int s = 0; s < 2; ++s) {
    keep.push_back(std::make_unique<int>(0));  // spacer shifts layout
    auto lock1 = std::make_unique<int>(0);
    auto lock2 = std::make_unique<int>(0);
    rt::Scheduler sched(make_config(1));
    race::Replay replay(sched);  // SP-bags: deterministic serial order
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::lock_acquire(lock1.get());
      race::lock_acquire(lock2.get());
      race::lock_release(lock2.get());
      race::lock_release(lock1.get());
    });
    sched.spawn(g, [&] {
      race::lock_acquire(lock2.get());
      race::lock_acquire(lock1.get());
      race::lock_release(lock1.get());
      race::lock_release(lock2.get());
    });
    sched.wait(g);
    const auto& dl = replay.deadlocks();
    ASSERT_EQ(dl.reports.size(), 1u) << dump(dl);
    names[s] = cycle_locks(dl.reports.front());
    keep.push_back(std::move(lock1));
    keep.push_back(std::move(lock2));
  }
  EXPECT_EQ(names[0], (std::set<std::string>{"lock#1", "lock#2"}));
  EXPECT_EQ(names[0], names[1]);
  for (const std::string& n : names[0]) {
    EXPECT_EQ(n.find("0x"), std::string::npos)
        << n << " embeds an address — unstable across sessions";
  }
}

}  // namespace
}  // namespace dws
