// App-specific numerical property tests, beyond the generic verify()
// checks in test_apps.cpp: structural invariants of each kernel's output
// and determinism across repeated runs.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/fft.hpp"
#include "apps/linalg.hpp"
#include "apps/mergesort.hpp"
#include "apps/pnn.hpp"
#include "apps/stencil.hpp"
#include "runtime/scheduler.hpp"

namespace dws::apps {
namespace {

Config cfg4(SchedMode mode = SchedMode::kDws) {
  Config cfg;
  cfg.mode = mode;
  cfg.num_cores = 4;
  cfg.pin_threads = false;
  cfg.coordinator_period_ms = 2.0;
  return cfg;
}

TEST(FftDetail, LinearityHolds) {
  // FFT(a) for the zero vector is zero; for an impulse it is flat.
  // Build via the public app API on a tiny instance and spot-check
  // Parseval at two different seeds (different inputs).
  for (std::uint64_t seed : {1ULL, 99ULL}) {
    FftApp app(256, seed);
    rt::Scheduler sched(cfg4());
    app.run(sched);
    EXPECT_EQ(app.verify(), "") << "seed " << seed;
  }
}

TEST(FftDetail, ParallelAndSerialAgreeBitForBit) {
  FftApp parallel_app(512, 7);
  FftApp serial_app(512, 7);
  rt::Scheduler sched(cfg4());
  parallel_app.run(sched);
  serial_app.run_serial();
  const auto& a = parallel_app.result();
  const auto& b = serial_app.result();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Identical recursion structure and float ops => identical results.
    EXPECT_EQ(a[i], b[i]) << "bin " << i;
  }
}

TEST(MergesortDetail, AlreadySortedAndReversedInputs) {
  // The app generates random input; verify() covers it. Here exercise
  // repeated runs for determinism: two runs over the same instance must
  // produce the identical sorted array.
  MergesortApp app(20000, 3);
  rt::Scheduler sched(cfg4());
  app.run(sched);
  const auto first = app.result();
  app.run(sched);
  EXPECT_EQ(first, app.result());
}

TEST(CholeskyDetail, FactorIsLowerTriangularWithPositiveDiagonal) {
  CholeskyApp app(24, 5);
  rt::Scheduler sched(cfg4());
  app.run(sched);
  ASSERT_EQ(app.verify(), "");
}

TEST(LinalgDetail, AllThreeFactorizationsAgreeWithSerial) {
  rt::Scheduler sched(cfg4());
  {
    LuApp parallel_app(32, 11), serial_app(32, 11);
    parallel_app.run(sched);
    serial_app.run_serial();
    EXPECT_EQ(parallel_app.verify(), "");
    EXPECT_EQ(serial_app.verify(), "");
  }
  {
    GeApp parallel_app(32, 12), serial_app(32, 12);
    parallel_app.run(sched);
    serial_app.run_serial();
    EXPECT_EQ(parallel_app.verify(), "");
    EXPECT_EQ(serial_app.verify(), "");
  }
  {
    CholeskyApp parallel_app(24, 13), serial_app(24, 13);
    parallel_app.run(sched);
    serial_app.run_serial();
    EXPECT_EQ(parallel_app.verify(), "");
    EXPECT_EQ(serial_app.verify(), "");
  }
}

TEST(StencilDetail, HeatConservesBoundaryAndConverges) {
  // More iterations must move the interior closer to the steady state:
  // compare the checksum trajectory of 4 vs 16 iterations against the
  // 64-iteration result.
  HeatApp few(32, 32, 4);
  HeatApp more(32, 32, 16);
  HeatApp many(32, 32, 64);
  few.run_serial();
  more.run_serial();
  many.run_serial();
  const double target = many.checksum();
  EXPECT_LT(std::abs(more.checksum() - target),
            std::abs(few.checksum() - target))
      << "Jacobi iteration must approach steady state monotonically here";
}

TEST(StencilDetail, SorConvergesFasterThanJacobiPerSweep) {
  // With over-relaxation (omega 1.5) SOR's residual after N iterations
  // is closer to steady state than Jacobi's after the same N — the
  // textbook property, checked via checksum distance to a long run.
  constexpr unsigned kIters = 12;
  SorApp sor(32, 32, kIters, 1.5);
  SorApp sor_long(32, 32, 300, 1.5);
  sor.run_serial();
  sor_long.run_serial();
  HeatApp heat(32, 32, kIters);
  heat.run_serial();
  // Not directly comparable (different boundary setups), so assert the
  // weaker but meaningful property: SOR moves strictly toward its own
  // steady state.
  SorApp sor_mid(32, 32, 60, 1.5);
  sor_mid.run_serial();
  const double target = sor_long.checksum();
  EXPECT_LT(std::abs(sor_mid.checksum() - target),
            std::abs(sor.checksum() - target));
}

TEST(PnnDetail, MoreEpochsLowerLoss) {
  PnnApp short_train(128, 4, 4, 21);
  PnnApp long_train(128, 4, 24, 21);
  short_train.run_serial();
  long_train.run_serial();
  EXPECT_LT(long_train.final_loss(), short_train.final_loss());
}

TEST(PnnDetail, ParallelTrainingConvergesLikeSerial) {
  PnnApp parallel_app(128, 4, 10, 22);
  PnnApp serial_app(128, 4, 10, 22);
  rt::Scheduler sched(cfg4());
  parallel_app.run(sched);
  serial_app.run_serial();
  // Parallel reduction reassociates float sums, so allow slack, but both
  // must land in the same loss regime.
  EXPECT_EQ(parallel_app.verify(), "");
  EXPECT_EQ(serial_app.verify(), "");
  const double ratio = parallel_app.final_loss() /
                       (serial_app.final_loss() + 1e-300);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

}  // namespace
}  // namespace dws::apps
