// Tests for the simulator app profiles: validity, shape properties that
// the figure reproductions depend on, and a sanity run through the engine.
#include <gtest/gtest.h>

#include "apps/profiles.hpp"
#include "sim/engine.hpp"

namespace dws::apps {
namespace {

TEST(Profiles, AllEightAreValidDags) {
  for (const auto& p : make_all_sim_profiles()) {
    EXPECT_EQ(p.dag.validate(), "") << p.name;
    EXPECT_GT(p.dag.total_work(), 0.0) << p.name;
    EXPECT_GE(p.mem_intensity, 0.0) << p.name;
    EXPECT_LE(p.mem_intensity, 1.0) << p.name;
  }
}

TEST(Profiles, UnknownNameThrows) {
  EXPECT_THROW(make_sim_profile("Quicksort"), std::invalid_argument);
}

TEST(Profiles, WorkScaleScalesTotalWork) {
  const auto base = make_sim_profile("FFT", 1.0);
  const auto doubled = make_sim_profile("FFT", 2.0);
  EXPECT_GT(doubled.dag.total_work(), 1.5 * base.dag.total_work());
}

TEST(Profiles, FftIsMoreScalableThanMergesort) {
  // The Fig-4 mixes rely on this contrast: FFT's average parallelism
  // (T1/Tinf) must comfortably exceed Mergesort's, whose serial merges
  // cap it.
  const auto fft = make_sim_profile("FFT");
  const auto ms = make_sim_profile("Mergesort");
  const double par_fft = fft.dag.total_work() / fft.dag.critical_path();
  const double par_ms = ms.dag.total_work() / ms.dag.critical_path();
  EXPECT_GT(par_fft, 2.0 * par_ms)
      << "FFT parallelism " << par_fft << " vs Mergesort " << par_ms;
  EXPECT_GT(par_fft, 64.0);
  EXPECT_LT(par_ms, 32.0);
}

TEST(Profiles, StencilsAreMemoryBound) {
  EXPECT_GE(make_sim_profile("Heat").mem_intensity, 0.9);
  EXPECT_GE(make_sim_profile("SOR").mem_intensity, 0.9);
  EXPECT_LE(make_sim_profile("PNN").mem_intensity, 0.4);
}

TEST(Profiles, DecreasingShapesHaveShrinkingWidth) {
  // LU/GE/Cholesky: average parallelism must sit far below the peak phase
  // width (quadratic width decay => long narrow tail), yet stay well
  // above the machine width so wide phases can use every core.
  for (const char* name : {"Cholesky", "LU", "GE"}) {
    const auto p = make_sim_profile(name);
    const double par = p.dag.total_work() / p.dag.critical_path();
    EXPECT_GT(par, 16.0) << name;
    EXPECT_LT(par, 64.0) << name;  // peak widths are 96-128
  }
}

TEST(Profiles, MergesortDagMergesDoubleTowardRoot) {
  const sim::TaskDag dag = make_mergesort_dag(3, 10.0, 2.0, 0.5);
  EXPECT_EQ(dag.validate(), "");
  // 8 leaves, 7 splits, 7 merges.
  EXPECT_EQ(dag.size(), 22u);
  // Total merge work: level sums 8*2 (root) + 2*(4*2) + 4*(2*2) = 48.
  const double total = dag.total_work();
  EXPECT_NEAR(total, 8 * 10.0 + 7 * 0.5 + 48.0, 1e-9);
}

TEST(Profiles, AllRunnableOnThePaperMachine) {
  // Smoke: every profile completes solo on the 16-core simulated machine
  // in a sane amount of virtual time.
  sim::SimParams params;  // defaults = paper machine
  for (const auto& p : make_all_sim_profiles(0.25)) {
    sim::SimProgramSpec spec;
    spec.name = p.name;
    spec.mode = SchedMode::kDws;
    spec.dag = &p.dag;
    spec.target_runs = 1;
    spec.default_mem_intensity = p.mem_intensity;
    const sim::SimResult r = sim::simulate_solo(params, spec);
    EXPECT_FALSE(r.hit_time_limit) << p.name;
    EXPECT_EQ(r.programs[0].tasks_executed, p.dag.size()) << p.name;
    // Solo DWS must beat the serial time by a sane margin on 16 cores.
    EXPECT_LT(r.programs[0].mean_run_time_us, p.dag.total_work()) << p.name;
  }
}

}  // namespace
}  // namespace dws::apps
