// Tests for the tiled factorization kernels: reconstruction correctness,
// agreement with the row-wise kernels (the factors are mathematically
// unique), ragged edge tiles, and parallel/serial equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/blocked_linalg.hpp"
#include "apps/linalg.hpp"
#include "runtime/scheduler.hpp"

namespace dws::apps {
namespace {

Config cfg4() {
  Config cfg;
  cfg.mode = SchedMode::kDws;
  cfg.num_cores = 4;
  cfg.pin_threads = false;
  cfg.coordinator_period_ms = 2.0;
  return cfg;
}

class BlockedShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(BlockedShapes, CholeskyReconstructs) {
  const auto [n, block] = GetParam();
  BlockedCholeskyApp app(n, block, 17);
  rt::Scheduler sched(cfg4());
  app.run(sched);
  EXPECT_EQ(app.verify(), "") << "n=" << n << " block=" << block;
}

TEST_P(BlockedShapes, LuReconstructs) {
  const auto [n, block] = GetParam();
  BlockedLuApp app(n, block, 18);
  rt::Scheduler sched(cfg4());
  app.run(sched);
  EXPECT_EQ(app.verify(), "") << "n=" << n << " block=" << block;
}

TEST_P(BlockedShapes, SerialMatchesParallel) {
  const auto [n, block] = GetParam();
  BlockedCholeskyApp parallel_app(n, block, 19), serial_app(n, block, 19);
  rt::Scheduler sched(cfg4());
  parallel_app.run(sched);
  serial_app.run_serial();
  const auto& a = parallel_app.factor();
  const auto& b = serial_app.factor();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Identical arithmetic order within each tile op => bitwise equality.
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{24, 8},
                      std::pair<std::size_t, std::size_t>{30, 7},   // ragged
                      std::pair<std::size_t, std::size_t>{33, 32},  // 2 tiles
                      std::pair<std::size_t, std::size_t>{20, 64},  // 1 tile
                      std::pair<std::size_t, std::size_t>{48, 12}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.first) + "_b" +
             std::to_string(info.param.second);
    });

TEST(BlockedVsRowwise, CholeskyFactorsAgree) {
  // The Cholesky factor is unique: blocked and row-wise must agree to
  // floating-point reassociation tolerance.
  constexpr std::size_t n = 32;
  CholeskyApp rowwise(n, 23);
  BlockedCholeskyApp blocked(n, 8, 23);  // same seed => same matrix
  rowwise.run_serial();
  blocked.run_serial();
  EXPECT_EQ(rowwise.verify(), "");
  EXPECT_EQ(blocked.verify(), "");
  // Spot-check via the verify()s above: both reconstruct the same A, so
  // both factors are the unique L up to tolerance; no direct element
  // access to the row-wise app's factor is exposed, which is fine — the
  // reconstruction residuals already pin both to the same L.
}

TEST(BlockedVsRowwise, LuFactorsAgree) {
  constexpr std::size_t n = 32;
  LuApp rowwise(n, 29);
  BlockedLuApp blocked(n, 8, 29);
  rowwise.run_serial();
  blocked.run_serial();
  EXPECT_EQ(rowwise.verify(), "");
  EXPECT_EQ(blocked.verify(), "");
}

TEST(BlockedRegistry, RegisteredBeyondTable2) {
  EXPECT_NE(make_app("BlockedCholesky", Scale::kTiny), nullptr);
  EXPECT_NE(make_app("BlockedLU", Scale::kTiny), nullptr);
  // Not part of the Table-2 eight.
  const auto all = make_all_apps(Scale::kTiny);
  EXPECT_EQ(all.size(), 8u);
}

TEST(BlockedRegistry, RegistryInstancesVerify) {
  rt::Scheduler sched(cfg4());
  for (const char* name : {"BlockedCholesky", "BlockedLU"}) {
    auto app = make_app(name, Scale::kTiny);
    ASSERT_NE(app, nullptr) << name;
    app->run(sched);
    EXPECT_EQ(app->verify(), "") << name;
  }
}

TEST(BlockedRepetition, RepeatedRunsStayCorrect) {
  BlockedLuApp app(24, 6, 31);
  rt::Scheduler sched(cfg4());
  for (int round = 0; round < 3; ++round) {
    app.run(sched);
    ASSERT_EQ(app.verify(), "") << "round " << round;
  }
}

}  // namespace
}  // namespace dws::apps
