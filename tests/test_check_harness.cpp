// Tests of the model checker itself (src/check): it must find classic
// interleaving bugs and weak-memory bugs, stay silent on correct code, and
// produce replayable failure schedules.
//
// Model threads record results into plain (uninstrumented) memory: the
// scheduler serializes them on a real mutex, so that is race-free by
// construction; only the memory the *checked algorithm* shares needs
// check::atomic / check::var instrumentation.
#include <gtest/gtest.h>

#include <memory>

#include "check/check.hpp"

namespace dws::check {
namespace {

Options exhaustive(int preemption_bound = 2) {
  Options o;
  o.mode = Options::Mode::kExhaustive;
  o.preemption_bound = preemption_bound;
  return o;
}

Options random_mode(long iterations, std::uint64_t seed = 1) {
  Options o;
  o.mode = Options::Mode::kRandom;
  o.iterations = iterations;
  o.seed = seed;
  return o;
}

// Two threads incrementing via separate load/store: the schoolbook lost
// update. An interleaving (not weak-memory) bug; DFS must find it.
Result explore_lost_update(const Options& opts) {
  return explore(opts, [](Sim& sim) {
    auto c = std::make_shared<atomic<int>>(0);
    auto body = [c] {
      const int v = c->load(std::memory_order_relaxed);
      c->store(v + 1, std::memory_order_relaxed);
    };
    sim.spawn(body);
    sim.spawn(body);
    sim.on_exit([c] {
      expect(c->load(std::memory_order_relaxed) == 2, "increment lost");
    });
  });
}

TEST(CheckHarness, ExhaustiveFindsLostUpdate) {
  const Result r = explore_lost_update(exhaustive());
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.message, "increment lost");
  EXPECT_FALSE(r.schedule.empty());
  EXPECT_FALSE(r.trace.empty());
}

TEST(CheckHarness, RandomFindsLostUpdate) {
  const Result r = explore_lost_update(random_mode(500, 7));
  EXPECT_TRUE(r.failed);
  EXPECT_FALSE(r.schedule.empty());
}

TEST(CheckHarness, ReplayReproducesFailure) {
  const Result first = explore_lost_update(exhaustive());
  ASSERT_TRUE(first.failed);

  Options opts = exhaustive();
  opts.replay = first.schedule;
  const Result again = explore_lost_update(opts);
  EXPECT_TRUE(again.failed);
  EXPECT_EQ(again.message, first.message);
  EXPECT_EQ(again.executions, 1);
  EXPECT_EQ(again.trace, first.trace);
}

TEST(CheckHarness, AtomicIncrementIsClean) {
  const Result r = explore(exhaustive(), [](Sim& sim) {
    auto c = std::make_shared<atomic<int>>(0);
    auto body = [c] { c->fetch_add(1, std::memory_order_relaxed); };
    sim.spawn(body);
    sim.spawn(body);
    sim.on_exit([c] {
      expect(c->load(std::memory_order_relaxed) == 2, "increment lost");
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.executions, 1);
}

// Weak memory: publishing through a relaxed flag lets the reader observe
// the flag without the data — the checker's stale-read exploration must
// surface it, and the release/acquire fix must silence it.
Result explore_publish(std::memory_order store_mo, std::memory_order load_mo) {
  return explore(exhaustive(), [=](Sim& sim) {
    struct State {
      atomic<int> data{0};
      atomic<int> flag{0};
    };
    auto st = std::make_shared<State>();
    sim.spawn([st, store_mo] {
      st->data.store(1, std::memory_order_relaxed);
      st->flag.store(1, store_mo);
    });
    sim.spawn([st, load_mo] {
      if (st->flag.load(load_mo) == 1) {
        expect(st->data.load(std::memory_order_relaxed) == 1,
               "stale data read after flag observed");
      }
    });
  });
}

TEST(CheckHarness, RelaxedPublishIsCaught) {
  const Result r = explore_publish(std::memory_order_relaxed,
                                   std::memory_order_relaxed);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.message, "stale data read after flag observed");
}

TEST(CheckHarness, ReleaseAcquirePublishIsClean) {
  const Result r = explore_publish(std::memory_order_release,
                                   std::memory_order_acquire);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
}

// Fence-based publication: relaxed store after a release fence must
// synchronize exactly like a release store (this is the idiom push() uses).
TEST(CheckHarness, ReleaseFencePublishIsClean) {
  const Result r = explore(exhaustive(), [](Sim& sim) {
    struct State {
      atomic<int> data{0};
      atomic<int> flag{0};
    };
    auto st = std::make_shared<State>();
    sim.spawn([st] {
      st->data.store(1, std::memory_order_relaxed);
      fence(std::memory_order_release);
      st->flag.store(1, std::memory_order_relaxed);
    });
    sim.spawn([st] {
      if (st->flag.load(std::memory_order_acquire) == 1) {
        expect(st->data.load(std::memory_order_relaxed) == 1,
               "release fence did not publish");
      }
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

// Store buffering (Dekker): with seq_cst fences both threads cannot read 0.
// Downgrading the fences must expose the weak behaviour.
Result explore_store_buffering(std::memory_order fence_mo) {
  return explore(exhaustive(), [=](Sim& sim) {
    struct State {
      atomic<int> x{0};
      atomic<int> y{0};
      int r1 = -1, r2 = -1;
    };
    auto st = std::make_shared<State>();
    sim.spawn([st, fence_mo] {
      st->x.store(1, std::memory_order_relaxed);
      fence(fence_mo);
      st->r1 = st->y.load(std::memory_order_relaxed);
    });
    sim.spawn([st, fence_mo] {
      st->y.store(1, std::memory_order_relaxed);
      fence(fence_mo);
      st->r2 = st->x.load(std::memory_order_relaxed);
    });
    sim.on_exit([st] {
      expect(st->r1 == 1 || st->r2 == 1, "both threads read 0 (SB)");
    });
  });
}

TEST(CheckHarness, SeqCstFencesForbidStoreBuffering) {
  const Result r = explore_store_buffering(std::memory_order_seq_cst);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
}

TEST(CheckHarness, WeakFencesAllowStoreBuffering) {
  const Result r = explore_store_buffering(std::memory_order_acq_rel);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.message, "both threads read 0 (SB)");
}

// check::var flags unsynchronized plain accesses as data races...
TEST(CheckHarness, VarDataRaceDetected) {
  const Result r = explore(exhaustive(), [](Sim& sim) {
    auto v = std::make_shared<var<int>>(0);
    sim.spawn([v] { v->write(1); });
    sim.spawn([v] { v->write(2); });
  });
  EXPECT_TRUE(r.failed);
  EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
}

// ...but stays silent when the accesses are ordered by an acquire/release
// handshake on an atomic.
TEST(CheckHarness, VarHandoffIsClean) {
  const Result r = explore(exhaustive(), [](Sim& sim) {
    struct State {
      var<int> data{0};
      atomic<int> ready{0};
    };
    auto st = std::make_shared<State>();
    sim.spawn([st] {
      st->data.write(42);
      st->ready.store(1, std::memory_order_release);
    });
    sim.spawn([st] {
      if (st->ready.load(std::memory_order_acquire) == 1) {
        expect(st->data.read() == 42, "handoff lost the value");
      }
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

TEST(CheckHarness, RandomFailureIsReplayableBySeed) {
  const Result first = explore_lost_update(random_mode(500, 99));
  ASSERT_TRUE(first.failed);
  // Re-running just the failing derived seed for one iteration fails again.
  Options opts = random_mode(1, first.failing_seed);
  const Result again = explore_lost_update(opts);
  EXPECT_TRUE(again.failed);
  EXPECT_EQ(again.message, first.message);
}

}  // namespace
}  // namespace dws::check
