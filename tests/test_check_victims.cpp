// Model checks for the tiered victim ordering (core/victim_order.hpp).
//
// TieredVictimOrder's only nondeterminism is the within-tier reshuffle at
// each sweep start. Driving its templated Rng through the checker's
// choose_value() enumerates *every* shuffle outcome, so these scenarios
// certify — not sample — the two properties the runtime leans on:
//
//  * every sweep hands out each victim exactly once, tiers near-to-far
//    (the locality contract), and
//  * a continuously failing thief sees every victim within a bounded
//    window of consecutive probes from *any* interior state, including
//    around restart() calls — no victim can be starved of probes forever
//    by an unlucky (or adversarial) shuffle sequence.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "check/check.hpp"
#include "core/topology.hpp"
#include "core/victim_order.hpp"

namespace dws {
namespace {

using check::Options;
using check::Result;
using check::Sim;

Options exhaustive() {
  Options o;
  o.mode = Options::Mode::kExhaustive;
  return o;
}

/// Rng whose draws are checker decisions: explore() branches on every
/// possible value, turning each Fisher-Yates swap into a fork point.
struct ChooseRng {
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    return static_cast<std::uint64_t>(
        check::current()->choose_value(static_cast<int>(bound)));
  }
};

TEST(VictimOrderCheck, EverySweepIsANearFirstPermutation) {
  // 6 cores, 2 sockets; thief = core 0. Victims 1..2 are NEAR, 3..5 FAR.
  // All 2! * 3! within-tier orders of both sweeps are explored.
  const Result r = check::explore(exhaustive(), [](Sim& sim) {
    sim.spawn([] {
      const Topology topo = Topology::synthetic(6, 2);
      TieredVictimOrder order(topo, /*self=*/0, 6);
      ChooseRng rng;
      for (int sweep = 0; sweep < 2; ++sweep) {
        std::set<unsigned> seen;
        int prev_tier = -1;
        for (std::size_t i = 0; i < order.size(); ++i) {
          const VictimPick pick = order.next(rng);
          check::expect(pick.victim != kNoVictim && pick.victim != 0 &&
                            pick.victim < 6,
                        "victim out of range");
          check::expect(pick.tier == topo.distance(0, pick.victim),
                        "reported tier disagrees with the topology");
          check::expect(static_cast<int>(pick.tier) >= prev_tier,
                        "sweep visited a nearer tier after a farther one");
          prev_tier = static_cast<int>(pick.tier);
          seen.insert(pick.victim);
        }
        check::expect(seen.size() == order.size(),
                      "sweep skipped or repeated a victim");
      }
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.executions, 1);
}

TEST(VictimOrderCheck, NoVictimIsMissedForeverFromAnyInteriorState) {
  // Starvation-freedom. Adversarial setup: advance the cursor to an
  // arbitrary interior position (0..n-2 probes), optionally restart()
  // (a successful steal at that point), then demand that the next
  // 2*(n-1) - 1 consecutive failed probes cover *all* victims. That
  // window is tight: a probe sequence resuming mid-sweep needs the tail
  // of the current permutation plus one full fresh sweep. Explored over
  // every shuffle outcome, every prefix length, and both restart
  // branches.
  const Result r = check::explore(exhaustive(), [](Sim& sim) {
    sim.spawn([] {
      const Topology topo = Topology::synthetic(4, 2);
      const unsigned n = 4;
      TieredVictimOrder order(topo, /*self=*/0, n);
      ChooseRng rng;
      check::Scheduler* sched = check::current();

      const int prefix = sched->choose_value(static_cast<int>(n - 1));
      for (int i = 0; i < prefix; ++i) (void)order.next(rng);
      if (sched->choose_value(2) == 1) order.restart();

      std::set<unsigned> seen;
      const std::size_t window = 2 * (n - 1) - 1;
      for (std::size_t i = 0; i < window; ++i) {
        seen.insert(order.next(rng).victim);
      }
      check::expect(seen.size() == n - 1,
                    "a victim was starved of probes across a full window");
    });
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.executions, 1);
}

}  // namespace
}  // namespace dws
