// Strictness-validator tests (ctest label: race): the runtime checks
// that TaskGroup usage is fully strict — created, spawned into, waited
// on, and destroyed under the creating scope. Each test installs a
// recording handler (the default handler aborts, by design) and enables
// enforcement explicitly so the suite behaves the same in release
// builds, where enforcement is off by default.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/strict.hpp"

namespace dws::rt {
namespace {

std::vector<strict::Violation>& recorded() {
  static std::vector<strict::Violation> v;
  return v;
}

void record_violation(strict::Violation v, const char* /*detail*/) {
  recorded().push_back(v);
}

class StrictnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    recorded().clear();
    was_enabled_ = strict::enabled();
    strict::set_enabled(true);
    prev_handler_ = strict::set_handler(&record_violation);
  }
  void TearDown() override {
    strict::set_handler(prev_handler_);
    strict::set_enabled(was_enabled_);
  }

  static Config make_config(unsigned cores) {
    Config cfg;
    cfg.mode = SchedMode::kDws;
    cfg.num_cores = cores;
    cfg.pin_threads = false;
    return cfg;
  }

  bool was_enabled_ = false;
  strict::Handler prev_handler_ = nullptr;
};

TEST_F(StrictnessTest, WellFormedUsageIsSilent) {
  Scheduler sched(make_config(2));
  TaskGroup g;
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    sched.spawn(g, [&] { ran.fetch_add(1); });
  }
  sched.wait(g);
  EXPECT_EQ(ran.load(), 8);
  EXPECT_TRUE(recorded().empty());
}

TEST_F(StrictnessTest, CreatorReuseIsSanctioned) {
  Scheduler sched(make_config(2));
  TaskGroup g;
  std::atomic<int> ran{0};
  for (int round = 0; round < 3; ++round) {
    sched.spawn(g, [&] { ran.fetch_add(1); });
    sched.wait(g);
  }
  EXPECT_EQ(ran.load(), 3);
  EXPECT_TRUE(recorded().empty());
}

TEST_F(StrictnessTest, ForeignWaitIsFlagged) {
  Scheduler sched(make_config(2));
  TaskGroup g;  // created on this thread
  std::thread other([&] { sched.wait(g); });
  other.join();
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0], strict::Violation::kForeignWait);
}

TEST_F(StrictnessTest, SpawnAfterCompletionFromForeignThreadIsFlagged) {
  Scheduler sched(make_config(2));
  TaskGroup g;
  std::atomic<int> ran{0};
  sched.spawn(g, [&] { ran.fetch_add(1); });
  sched.wait(g);  // group completes its round
  std::thread other([&] { sched.spawn(g, [&] { ran.fetch_add(1); }); });
  other.join();
  sched.wait(g);  // creator drains the stray task so teardown is clean
  EXPECT_EQ(ran.load(), 2);
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0], strict::Violation::kSpawnAfterCompletion);
}

TEST_F(StrictnessTest, EscapedGroupIsFlaggedAtDestruction) {
  auto* g = new TaskGroup;
  g->add_pending();  // simulate an in-flight task that will never join
  delete g;
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0], strict::Violation::kEscapedGroup);
}

TEST_F(StrictnessTest, DisarmedGroupsSkipChecks) {
  // Groups constructed while enforcement is off carry no creator tag and
  // are never validated, even if enforcement is turned on afterwards.
  strict::set_enabled(false);
  auto* g = new TaskGroup;
  strict::set_enabled(true);
  g->add_pending();
  delete g;
  EXPECT_TRUE(recorded().empty());
}

TEST_F(StrictnessTest, ViolationCountIsMonotonic) {
  const std::uint64_t before = strict::violation_count();
  auto* g = new TaskGroup;
  g->add_pending();
  delete g;
  EXPECT_EQ(strict::violation_count(), before + 1);
}

TEST_F(StrictnessTest, ViolationNamesAreStable) {
  EXPECT_STREQ(strict::violation_name(strict::Violation::kEscapedGroup),
               "escaped-group");
  EXPECT_STREQ(strict::violation_name(strict::Violation::kForeignWait),
               "foreign-wait");
  EXPECT_STREQ(
      strict::violation_name(strict::Violation::kSpawnAfterCompletion),
      "spawn-after-completion");
}

}  // namespace
}  // namespace dws::rt
