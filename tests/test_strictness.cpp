// Strictness-validator tests (ctest label: race): the runtime checks
// that TaskGroup usage is fully strict — created, spawned into, waited
// on, and destroyed under the creating scope. Scoping is spawn-tree
// based: every task carries its ancestor lineage, so waiting on a group
// created by a descendant task (ancestor-wait) or by an unrelated task
// (foreign-wait) is flagged even when both tasks happened to execute on
// the same worker thread; the thread-tag check remains as a fallback
// when either side of the wait is not a task frame. Each test installs
// a recording handler (the default handler aborts, by design) and
// enables enforcement explicitly so the suite behaves the same in
// release builds, where enforcement is off by default.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/strict.hpp"

namespace dws::rt {
namespace {

std::vector<strict::Violation>& recorded() {
  static std::vector<strict::Violation> v;
  return v;
}

void record_violation(strict::Violation v, const char* /*detail*/) {
  recorded().push_back(v);
}

class StrictnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    recorded().clear();
    was_enabled_ = strict::enabled();
    strict::set_enabled(true);
    prev_handler_ = strict::set_handler(&record_violation);
  }
  void TearDown() override {
    strict::set_handler(prev_handler_);
    strict::set_enabled(was_enabled_);
  }

  static Config make_config(unsigned cores) {
    Config cfg;
    cfg.mode = SchedMode::kDws;
    cfg.num_cores = cores;
    cfg.pin_threads = false;
    return cfg;
  }

  bool was_enabled_ = false;
  strict::Handler prev_handler_ = nullptr;
};

TEST_F(StrictnessTest, WellFormedUsageIsSilent) {
  Scheduler sched(make_config(2));
  TaskGroup g;
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    sched.spawn(g, [&] { ran.fetch_add(1); });
  }
  sched.wait(g);
  EXPECT_EQ(ran.load(), 8);
  EXPECT_TRUE(recorded().empty());
}

TEST_F(StrictnessTest, CreatorReuseIsSanctioned) {
  Scheduler sched(make_config(2));
  TaskGroup g;
  std::atomic<int> ran{0};
  for (int round = 0; round < 3; ++round) {
    sched.spawn(g, [&] { ran.fetch_add(1); });
    sched.wait(g);
  }
  EXPECT_EQ(ran.load(), 3);
  EXPECT_TRUE(recorded().empty());
}

TEST_F(StrictnessTest, TaskWaitingOnItsOwnGroupIsSilent) {
  Scheduler sched(make_config(2));
  std::atomic<int> ran{0};
  TaskGroup outer;
  sched.spawn(outer, [&] {
    TaskGroup mine;
    sched.spawn(mine, [&] { ran.fetch_add(1); });
    sched.wait(mine);
  });
  sched.wait(outer);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_TRUE(recorded().empty());
}

TEST_F(StrictnessTest, AncestorWaitIsFlagged) {
  // Task A spawns task B; B creates a group that escapes back to A, and
  // A waits on it. A is B's spawn-tree ancestor, not the group's
  // creator — fully strict computations never do this, and the
  // thread-tag check alone could miss it (A and B may well run on the
  // same worker).
  Scheduler sched(make_config(2));
  std::unique_ptr<TaskGroup> stray;
  TaskGroup outer;
  sched.spawn(outer, [&] {  // task A
    TaskGroup mid;
    sched.spawn(mid, [&] {  // task B, child of A
      stray = std::make_unique<TaskGroup>();
      sched.spawn(*stray, [] {});
    });
    sched.wait(mid);     // sanctioned: A's own group
    sched.wait(*stray);  // ancestor-wait: B created this group
  });
  sched.wait(outer);
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0], strict::Violation::kAncestorWait);
}

TEST_F(StrictnessTest, SiblingTaskWaitIsForeign) {
  // Task B1 creates a group; its spawn-tree sibling B2 waits on it. The
  // two tasks run sequentially here (B1's round completes before B2
  // spawns), so under the old thread-tag scoping they could land on the
  // same worker thread and the wait would pass silently; lineage
  // scoping flags it regardless of placement.
  Scheduler sched(make_config(2));
  std::unique_ptr<TaskGroup> stray;
  TaskGroup outer;
  sched.spawn(outer, [&] {  // task A
    TaskGroup round1;
    sched.spawn(round1, [&] {  // task B1
      stray = std::make_unique<TaskGroup>();
      sched.spawn(*stray, [] {});
    });
    sched.wait(round1);
    TaskGroup round2;
    sched.spawn(round2, [&] {  // task B2, sibling of B1
      sched.wait(*stray);      // foreign-wait: not B2's, not a descendant's
    });
    sched.wait(round2);
  });
  sched.wait(outer);
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0], strict::Violation::kForeignWait);
}

TEST_F(StrictnessTest, ForeignWaitIsFlagged) {
  Scheduler sched(make_config(2));
  TaskGroup g;  // created on this thread
  std::thread other([&] { sched.wait(g); });
  other.join();
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0], strict::Violation::kForeignWait);
}

TEST_F(StrictnessTest, SpawnAfterCompletionFromForeignThreadIsFlagged) {
  Scheduler sched(make_config(2));
  TaskGroup g;
  std::atomic<int> ran{0};
  sched.spawn(g, [&] { ran.fetch_add(1); });
  sched.wait(g);  // group completes its round
  std::thread other([&] { sched.spawn(g, [&] { ran.fetch_add(1); }); });
  other.join();
  sched.wait(g);  // creator drains the stray task so teardown is clean
  EXPECT_EQ(ran.load(), 2);
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0], strict::Violation::kSpawnAfterCompletion);
}

TEST_F(StrictnessTest, EscapedGroupIsFlaggedAtDestruction) {
  auto* g = new TaskGroup;
  g->add_pending();  // simulate an in-flight task that will never join
  delete g;
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0], strict::Violation::kEscapedGroup);
}

TEST_F(StrictnessTest, DisarmedGroupsSkipChecks) {
  // Groups constructed while enforcement is off carry no creator tag and
  // are never validated, even if enforcement is turned on afterwards.
  strict::set_enabled(false);
  auto* g = new TaskGroup;
  strict::set_enabled(true);
  g->add_pending();
  delete g;
  EXPECT_TRUE(recorded().empty());
}

TEST_F(StrictnessTest, ViolationCountIsMonotonic) {
  const std::uint64_t before = strict::violation_count();
  auto* g = new TaskGroup;
  g->add_pending();
  delete g;
  EXPECT_EQ(strict::violation_count(), before + 1);
}

TEST_F(StrictnessTest, ViolationNamesAreStable) {
  EXPECT_STREQ(strict::violation_name(strict::Violation::kEscapedGroup),
               "escaped-group");
  EXPECT_STREQ(strict::violation_name(strict::Violation::kForeignWait),
               "foreign-wait");
  EXPECT_STREQ(
      strict::violation_name(strict::Violation::kSpawnAfterCompletion),
      "spawn-after-completion");
  EXPECT_STREQ(strict::violation_name(strict::Violation::kAncestorWait),
               "ancestor-wait");
}

}  // namespace
}  // namespace dws::rt
