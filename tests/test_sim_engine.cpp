// Tests for the discrete-event simulator: determinism, work conservation,
// parallel speedup, OS time-sharing semantics, mode-specific behaviour,
// and the cache model.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace dws::sim {
namespace {

SimParams small_machine(unsigned cores = 4, unsigned sockets = 1) {
  SimParams p;
  p.num_cores = cores;
  p.num_sockets = sockets;
  return p;
}

SimProgramSpec spec(const std::string& name, SchedMode mode,
                    const TaskDag* dag, unsigned runs = 1,
                    double mem = 0.0) {
  SimProgramSpec s;
  s.name = name;
  s.mode = mode;
  s.dag = dag;
  s.target_runs = runs;
  s.default_mem_intensity = mem;
  return s;
}

TEST(SimEngine, SoloSerialChainTakesTotalWorkPlusOverheads) {
  const TaskDag dag = make_serial_chain(100, 50.0, 0.0);
  const SimResult r =
      simulate_solo(small_machine(4), spec("chain", SchedMode::kClassic, &dag));
  ASSERT_EQ(r.programs.size(), 1u);
  const auto& p = r.programs[0];
  EXPECT_EQ(p.tasks_executed, 100u);
  // Serial chain: wall time >= total work; overheads (pops) are small.
  EXPECT_GE(p.mean_run_time_us, 5000.0);
  EXPECT_LT(p.mean_run_time_us, 5000.0 * 1.2);
}

TEST(SimEngine, IsBitwiseDeterministic) {
  const TaskDag dag = make_fork_join_tree(6, 2, 200.0, 1.0, 1.0, 0.5);
  SimParams params = small_machine(8, 2);
  auto once = [&] {
    SimEngine e(params, {spec("a", SchedMode::kDws, &dag, 3, 0.5),
                         spec("b", SchedMode::kDws, &dag, 3, 0.5)});
    return e.run();
  };
  const SimResult r1 = once();
  const SimResult r2 = once();
  ASSERT_EQ(r1.programs.size(), r2.programs.size());
  EXPECT_EQ(r1.total_time_us, r2.total_time_us);
  for (std::size_t i = 0; i < r1.programs.size(); ++i) {
    EXPECT_EQ(r1.programs[i].run_times_us, r2.programs[i].run_times_us);
    EXPECT_EQ(r1.programs[i].steals, r2.programs[i].steals);
    EXPECT_EQ(r1.programs[i].sleeps, r2.programs[i].sleeps);
  }
}

TEST(SimEngine, DifferentSeedsChangeSchedulesNotResultsStructure) {
  const TaskDag dag = make_fork_join_tree(5, 2, 100.0, 1.0, 1.0, 0.0);
  SimParams p1 = small_machine(4);
  SimParams p2 = small_machine(4);
  p2.seed = p1.seed + 1;
  const SimResult r1 = simulate_solo(p1, spec("a", SchedMode::kDws, &dag));
  const SimResult r2 = simulate_solo(p2, spec("a", SchedMode::kDws, &dag));
  // Same amount of work executed regardless of schedule.
  EXPECT_EQ(r1.programs[0].tasks_executed, r2.programs[0].tasks_executed);
}

class SimEngineAllModes : public ::testing::TestWithParam<SchedMode> {};

TEST_P(SimEngineAllModes, SoloCompletesAllTasks) {
  const TaskDag dag = make_fork_join_tree(6, 2, 100.0, 1.0, 1.0, 0.3);
  const SimResult r =
      simulate_solo(small_machine(4), spec("solo", GetParam(), &dag, 2, 0.3));
  EXPECT_EQ(r.programs[0].tasks_executed, dag.size() * 2);
  EXPECT_FALSE(r.hit_time_limit);
}

TEST_P(SimEngineAllModes, TwoCoRunnersCompleteAllTasks) {
  const TaskDag dag = make_fork_join_tree(5, 2, 150.0, 1.0, 1.0, 0.3);
  SimEngine e(small_machine(4), {spec("a", GetParam(), &dag, 2, 0.3),
                                 spec("b", GetParam(), &dag, 2, 0.3)});
  const SimResult r = e.run();
  EXPECT_FALSE(r.hit_time_limit);
  for (const auto& p : r.programs) {
    EXPECT_GE(p.run_times_us.size(), 2u) << p.name;
    EXPECT_GE(p.tasks_executed, dag.size() * 2) << p.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, SimEngineAllModes,
                         ::testing::Values(SchedMode::kClassic, SchedMode::kAbp,
                                           SchedMode::kEp, SchedMode::kDws,
                                           SchedMode::kDwsNc),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

TEST(SimEngine, WideDagGetsNearLinearSpeedupSolo) {
  // 64 leaves x 500us on 8 cores: expect speedup near 8 (within overheads
  // and the final join serialization).
  const TaskDag dag = make_fork_join_tree(6, 2, 500.0, 1.0, 1.0, 0.0);
  const double t1 = dag.total_work();
  const SimResult r =
      simulate_solo(small_machine(8), spec("wide", SchedMode::kClassic, &dag));
  const double t8 = r.programs[0].mean_run_time_us;
  const double speedup = t1 / t8;
  EXPECT_GT(speedup, 5.5) << "t1=" << t1 << " t8=" << t8;
  EXPECT_LE(speedup, 8.01);
}

TEST(SimEngine, SpeedupIsBoundedByCriticalPath) {
  const TaskDag dag = make_iterative_phases(20, 4, 100.0, 0.0, 1.0);
  const SimResult r =
      simulate_solo(small_machine(8), spec("it", SchedMode::kClassic, &dag));
  EXPECT_GE(r.programs[0].mean_run_time_us, dag.critical_path());
}

TEST(SimEngine, RepetitionsRunBackToBack) {
  const TaskDag dag = make_fork_join_tree(4, 2, 100.0, 1.0, 1.0, 0.0);
  const SimResult r = simulate_solo(
      small_machine(4), spec("rep", SchedMode::kDws, &dag, /*runs=*/5));
  const auto& p = r.programs[0];
  ASSERT_GE(p.run_times_us.size(), 5u);
  EXPECT_EQ(p.tasks_executed, dag.size() * p.run_times_us.size());
  EXPECT_GT(p.mean_run_time_us, 0.0);
}

TEST(SimEngine, TwoProgramsTimeShareUnderAbp) {
  // Two identical CPU-bound programs under ABP on 2 cores take roughly
  // twice as long each as solo.
  const TaskDag dag = make_fork_join_tree(5, 2, 300.0, 1.0, 1.0, 0.0);
  const double solo = simulate_solo(small_machine(2),
                                    spec("s", SchedMode::kAbp, &dag))
                          .programs[0]
                          .mean_run_time_us;
  SimEngine e(small_machine(2), {spec("a", SchedMode::kAbp, &dag, 3),
                                 spec("b", SchedMode::kAbp, &dag, 3)});
  const SimResult r = e.run();
  for (const auto& p : r.programs) {
    EXPECT_GT(p.mean_run_time_us, 1.5 * solo) << p.name;
    EXPECT_LT(p.mean_run_time_us, 3.0 * solo) << p.name;
  }
}

TEST(SimEngine, EpProgramsNeverLeaveTheirPartition) {
  const TaskDag dag = make_fork_join_tree(6, 2, 200.0, 1.0, 1.0, 0.0);
  SimEngine e(small_machine(4), {spec("a", SchedMode::kEp, &dag, 2),
                                 spec("b", SchedMode::kEp, &dag, 2)});
  const SimResult r = e.run();
  // EP never sleeps, never exchanges cores.
  for (const auto& p : r.programs) {
    EXPECT_EQ(p.sleeps, 0u);
    EXPECT_EQ(p.cores_claimed, 0u);
    EXPECT_EQ(p.cores_reclaimed, 0u);
    // >= because programs re-run back-to-back (Fig. 3): a partial extra
    // run may be in flight when the simulation ends.
    EXPECT_GE(p.tasks_executed, dag.size() * 2);
  }
}

TEST(SimEngine, DwsWorkersSleepAndCoordinatorWakes) {
  // A narrow phase (width 1) followed by a wide phase: workers must sleep
  // during the narrow part and be woken for the wide part.
  TaskDag dag;
  DagSpan narrow = emit_parallel_for(dag, 1, 20000.0, 0.0);
  DagSpan wide = emit_parallel_for(dag, 64, 500.0, 0.0);
  dag.set_continuation(narrow.exit, wide.entry);
  dag.set_root(narrow.entry);
  ASSERT_EQ(dag.validate(), "");

  const SimResult r =
      simulate_solo(small_machine(8), spec("nw", SchedMode::kDws, &dag));
  const auto& p = r.programs[0];
  EXPECT_GT(p.sleeps, 0u) << "workers never slept in the narrow phase";
  EXPECT_GT(p.wakes, 0u) << "coordinator never woke workers for the wide phase";
  EXPECT_EQ(p.tasks_executed, dag.size());
}

TEST(SimEngine, DwsBusyProgramBorrowsIdleProgramsCores) {
  // Program a: tiny serial work then done. Program b: wide and heavy.
  // Under DWS, b must claim a's released home cores.
  const TaskDag tiny = make_serial_chain(3, 100.0, 0.0);
  const TaskDag heavy = make_fork_join_tree(7, 2, 800.0, 1.0, 1.0, 0.0);
  SimEngine e(small_machine(8), {spec("tiny", SchedMode::kDws, &tiny, 1),
                                 spec("heavy", SchedMode::kDws, &heavy, 2)});
  const SimResult r = e.run();
  EXPECT_GT(r.program("heavy").cores_claimed, 0u);
}

TEST(SimEngine, DwsOwnerReclaimsOnDemandReturn) {
  // a alternates narrow and wide phases; b is continuously heavy. a's
  // coordinator must reclaim its home cores from b when its wide phases
  // arrive (N_f = 0 while b is saturating).
  TaskDag alternating;
  DagSpan prev{};
  for (int phase = 0; phase < 6; ++phase) {
    DagSpan s = (phase % 2 == 0)
                    ? emit_parallel_for(alternating, 1, 15000.0, 0.0)
                    : emit_parallel_for(alternating, 48, 800.0, 0.0);
    if (phase == 0) {
      alternating.set_root(s.entry);
    } else {
      alternating.set_continuation(prev.exit, s.entry);
    }
    prev = s;
  }
  ASSERT_EQ(alternating.validate(), "");
  const TaskDag heavy = make_fork_join_tree(8, 2, 700.0, 1.0, 1.0, 0.0);

  SimEngine e(small_machine(8),
              {spec("alt", SchedMode::kDws, &alternating, 2),
               spec("heavy", SchedMode::kDws, &heavy, 4)});
  const SimResult r = e.run();
  EXPECT_GT(r.program("alt").cores_reclaimed, 0u)
      << "alternating program never reclaimed its lent home cores";
  EXPECT_GT(r.program("heavy").evictions, 0u)
      << "the borrower was never evicted";
}

TEST(SimEngine, CacheContentionSlowsMemoryBoundCoRunnersUnderAbp) {
  // Two memory-bound programs: ABP time-shares cores (thrashes private
  // caches); DWS keeps them on disjoint cores. DWS must show a smaller
  // cache penalty.
  const TaskDag dag = make_iterative_phases(30, 16, 300.0, 1.0, 1.0);
  SimParams params = small_machine(8, 2);
  auto run_mode = [&](SchedMode mode) {
    SimEngine e(params, {spec("a", mode, &dag, 2, 1.0),
                         spec("b", mode, &dag, 2, 1.0)});
    return e.run();
  };
  const SimResult abp = run_mode(SchedMode::kAbp);
  const SimResult dws = run_mode(SchedMode::kDws);
  const double abp_penalty = abp.programs[0].cache_penalty_us +
                             abp.programs[1].cache_penalty_us;
  const double dws_penalty = dws.programs[0].cache_penalty_us +
                             dws.programs[1].cache_penalty_us;
  EXPECT_LT(dws_penalty, abp_penalty)
      << "space-sharing should reduce cache thrash";
}

TEST(SimEngine, ComputeBoundTasksIgnoreCacheModel) {
  const TaskDag dag = make_fork_join_tree(5, 2, 200.0, 1.0, 1.0, 0.0);
  const SimResult r =
      simulate_solo(small_machine(4), spec("cpu", SchedMode::kDws, &dag, 1, 0.0));
  EXPECT_DOUBLE_EQ(r.programs[0].cache_penalty_us, 0.0);
}

TEST(SimEngine, ExecTimeEqualsWorkPlusCachePenalty) {
  const TaskDag dag = make_iterative_phases(10, 8, 400.0, 0.7, 1.0);
  const SimResult r = simulate_solo(small_machine(4),
                                    spec("m", SchedMode::kDws, &dag, 2, 0.7));
  const auto& p = r.programs[0];
  const double runs = static_cast<double>(p.run_times_us.size());
  EXPECT_NEAR(p.exec_time_us, dag.total_work() * runs + p.cache_penalty_us,
              1e-6 * p.exec_time_us + 1.0);
}

TEST(SimEngine, InvalidInputsThrow) {
  const TaskDag dag = make_serial_chain(2, 1.0, 0.0);
  TaskDag bad;  // empty
  EXPECT_THROW(SimEngine(small_machine(2), {spec("x", SchedMode::kDws, &bad)}),
               std::invalid_argument);
  SimParams zero = small_machine(2);
  EXPECT_THROW(SimEngine(zero, {}), std::invalid_argument);
  // EP program with no home core (more programs than cores).
  std::vector<SimProgramSpec> four;
  for (int i = 0; i < 4; ++i) {
    four.push_back(spec("p" + std::to_string(i), SchedMode::kEp, &dag));
  }
  EXPECT_THROW(SimEngine(small_machine(2), four), std::invalid_argument);
}

TEST(SimEngine, TimeLimitIsReported) {
  const TaskDag dag = make_serial_chain(1000, 1000.0, 0.0);
  SimParams params = small_machine(2);
  params.max_sim_time_us = 10.0;  // absurdly small
  SimEngine e(params, {spec("long", SchedMode::kDws, &dag)});
  const SimResult r = e.run();
  EXPECT_TRUE(r.hit_time_limit);
}

TEST(SimEngine, SingleCoreMachineStillCompletes) {
  const TaskDag dag = make_fork_join_tree(4, 2, 50.0, 1.0, 1.0, 0.2);
  for (SchedMode mode : {SchedMode::kClassic, SchedMode::kAbp, SchedMode::kDws,
                         SchedMode::kDwsNc}) {
    const SimResult r =
        simulate_solo(small_machine(1), spec("solo1", mode, &dag));
    EXPECT_EQ(r.programs[0].tasks_executed, dag.size()) << to_string(mode);
  }
}

TEST(SimEngine, PerTierStealsPartitionTotalSteals) {
  const TaskDag dag = make_fork_join_tree(8, 2, 100.0, 1.0, 1.0, 0.2);
  for (VictimPolicy policy :
       {VictimPolicy::kUniform, VictimPolicy::kTiered}) {
    SimParams params = small_machine(8, 2);
    params.victim_policy = policy;
    const SimResult r =
        simulate_solo(params, spec("p", SchedMode::kClassic, &dag, 4));
    const auto& p = r.programs[0];
    std::uint64_t sum = 0;
    for (unsigned t = 0; t < kNumDistanceTiers; ++t) {
      sum += p.steals_by_tier[t];
    }
    EXPECT_EQ(sum, p.steals) << to_string(policy);
    EXPECT_GT(p.steals, 0u) << to_string(policy);
  }
}

TEST(SimEngine, TieredSweepPrefersNearVictims) {
  // Plenty of work on both sockets: a tiered thief should essentially
  // always find a same-socket victim, while the uniform sweep lands on
  // remote ones roughly half the time on a 2-socket machine.
  const TaskDag dag = make_fork_join_tree(9, 2, 80.0, 1.0, 1.0, 0.0);
  SimParams params = small_machine(8, 2);
  params.victim_policy = VictimPolicy::kTiered;
  const SimResult r =
      simulate_solo(params, spec("p", SchedMode::kClassic, &dag, 4));
  const auto& p = r.programs[0];
  const auto near = p.steals_by_tier[static_cast<int>(DistanceTier::kNear)];
  const auto far = p.steals_by_tier[static_cast<int>(DistanceTier::kFar)];
  ASSERT_GT(p.steals, 0u);
  EXPECT_GT(near, far) << "near-first ordering did not dominate";
}

TEST(SimEngine, TierMigrationCostIsChargedAndSlowsRemoteSteals) {
  const TaskDag dag = make_fork_join_tree(8, 2, 100.0, 1.0, 1.0, 0.0);
  SimParams base = small_machine(8, 2);
  base.victim_policy = VictimPolicy::kUniform;  // force remote steals
  SimParams numa = base;
  numa.steal_tier_migration_us[static_cast<int>(DistanceTier::kFar)] = 40.0;
  numa.steal_tier_migration_us[static_cast<int>(DistanceTier::kVeryFar)] =
      80.0;
  const SimResult free_r =
      simulate_solo(base, spec("p", SchedMode::kClassic, &dag, 4));
  const SimResult numa_r =
      simulate_solo(numa, spec("p", SchedMode::kClassic, &dag, 4));
  EXPECT_EQ(free_r.programs[0].migration_us, 0.0);
  const auto& p = numa_r.programs[0];
  const auto far = p.steals_by_tier[static_cast<int>(DistanceTier::kFar)];
  ASSERT_GT(far, 0u) << "uniform sweep never stole cross-socket";
  // Every FAR steal was charged exactly its tier cost.
  EXPECT_NEAR(p.migration_us, 40.0 * static_cast<double>(far), 1e-6);
  // Same work, same seeds, extra transfer latency: the NUMA run cannot be
  // faster.
  EXPECT_GE(numa_r.total_time_us, free_r.total_time_us * (1.0 - 1e-9));
}

TEST(SimEngine, CoreBusyTimeNeverExceedsWallTime) {
  const TaskDag dag = make_fork_join_tree(6, 2, 300.0, 1.0, 1.0, 0.4);
  SimEngine e(small_machine(4), {spec("a", SchedMode::kAbp, &dag, 2, 0.4),
                                 spec("b", SchedMode::kAbp, &dag, 2, 0.4)});
  const SimResult r = e.run();
  for (double busy : r.core_busy_us) {
    EXPECT_LE(busy, r.total_time_us * (1.0 + 1e-9));
  }
  for (std::size_t c = 0; c < r.core_busy_us.size(); ++c) {
    EXPECT_LE(r.core_exec_us[c], r.core_busy_us[c] + 1e-9);
  }
}

}  // namespace
}  // namespace dws::sim
