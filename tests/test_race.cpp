// SP-bags determinacy-race detector tests (ctest label: race).
//
// Three layers:
//  1. detector unit tests against hand-built spawn trees — the SP
//     relation (siblings parallel, wait serializes), read/write rules,
//     strided-disjointness, and provenance chains;
//  2. clean certification — each Table-2 app replays serially with zero
//     reports AND verifies (the replay executes the real kernel, so this
//     also certifies the serial-elision schedule computes the right
//     answer);
//  3. seeded racy mutants — one deliberately broken kernel per app
//     pattern, each of which must be flagged with a provenance chain
//     naming the mutant's race::region.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.hpp"
#include "race/spbags.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace dws {
namespace {

Config make_config(unsigned cores) {
  Config cfg;
  cfg.mode = SchedMode::kDws;
  cfg.num_cores = cores;
  cfg.pin_threads = false;
  return cfg;
}

/// True if any report's provenance (either side) mentions `needle`.
bool any_chain_mentions(const std::vector<race::RaceReport>& reports,
                        const std::string& needle) {
  for (const auto& r : reports) {
    for (const auto& hop : r.prior_chain) {
      if (hop.find(needle) != std::string::npos) return true;
    }
    for (const auto& hop : r.current_chain) {
      if (hop.find(needle) != std::string::npos) return true;
    }
  }
  return false;
}

std::string dump(const std::vector<race::RaceReport>& reports) {
  std::string s;
  for (const auto& r : reports) s += r.to_string() + "\n";
  return s;
}

// ---------------------------------------------------------------------
// 1. Detector unit tests.
// ---------------------------------------------------------------------

TEST(SpBagsTest, SiblingWritesSameAddressRace) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::write(&x);
      x = 1.0;
    });
    sched.spawn(g, [&] {
      race::write(&x);
      x = 2.0;
    });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(reports[0].prior, race::Access::kWrite);
    EXPECT_EQ(reports[0].current, race::Access::kWrite);
    EXPECT_EQ(reports[0].addr, reinterpret_cast<std::uintptr_t>(&x) &
                                   ~std::uintptr_t{7});
  }
}

TEST(SpBagsTest, WaitSerializesAccesses) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g1;
    sched.spawn(g1, [&] {
      race::write(&x);
      x = 1.0;
    });
    sched.wait(g1);
    // After the wait the first task is a serial predecessor: no race.
    rt::TaskGroup g2;
    sched.spawn(g2, [&] {
      race::write(&x);
      x = 2.0;
    });
    sched.wait(g2);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
  }
}

TEST(SpBagsTest, ParallelReadsAreNotARace) {
  rt::Scheduler sched(make_config(2));
  const double x = 42.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    for (int i = 0; i < 4; ++i) {
      sched.spawn(g, [&] { race::read(&x); });
    }
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
  }
}

TEST(SpBagsTest, ParallelReadAndWriteRace) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] { race::read(&x); });
    sched.spawn(g, [&] {
      race::write(&x);
      x = 1.0;
    });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(reports[0].prior, race::Access::kRead);
    EXPECT_EQ(reports[0].current, race::Access::kWrite);
  }
}

TEST(SpBagsTest, ContinuationRacesWithSpawnedChild) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::write(&x);
      x = 1.0;
    });
    // The parent's continuation before wait() is parallel with the child.
    race::read(&x);
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(reports[0].prior, race::Access::kWrite);
    EXPECT_EQ(reports[0].current, race::Access::kRead);
  }
}

TEST(SpBagsTest, StridedAccessesWithDisjointParityDoNotRace) {
  rt::Scheduler sched(make_config(2));
  std::vector<double> v(64, 0.0);
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    // Even granules vs odd granules: interleaved but disjoint.
    sched.spawn(g, [&] { race::write(v.data(), 32, 2); });
    sched.spawn(g, [&] { race::write(v.data() + 1, 32, 2); });
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
  }
}

TEST(SpBagsTest, ReplayRunsInlineOnSubmittingThread) {
  rt::Scheduler sched(make_config(2));
  const auto main_id = std::this_thread::get_id();
  int order = 0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      EXPECT_EQ(std::this_thread::get_id(), main_id);
      EXPECT_EQ(order, 0);  // depth-first: runs at the spawn site
      order = 1;
    });
    EXPECT_EQ(order, 1);
    sched.spawn(g, [&] { order = 2; });
    EXPECT_EQ(order, 2);
    sched.wait(g);
    EXPECT_EQ(replay.detector().tasks_executed(), 2u);
  }
}

TEST(SpBagsTest, ProvenanceChainsAreRootFirstAndCarryRegions) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    race::region scope("outer-kernel");
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::write(&x);
      // Nested spawn: the inner task's chain goes root > outer > inner.
      rt::TaskGroup inner;
      sched.spawn(inner, [&] { race::write(&x); });
      sched.wait(inner);
    });
    sched.spawn(g, [&] { race::write(&x); });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_FALSE(reports.empty());
    for (const auto& r : reports) {
      ASSERT_FALSE(r.prior_chain.empty());
      ASSERT_FALSE(r.current_chain.empty());
      EXPECT_EQ(r.prior_chain.front(), "root");
      EXPECT_EQ(r.current_chain.front(), "root");
    }
    EXPECT_TRUE(any_chain_mentions(reports, "outer-kernel")) << dump(reports);
  }
}

TEST(SpBagsTest, DuplicatePairsAreReportedOnce) {
  rt::Scheduler sched(make_config(2));
  std::vector<double> v(16, 0.0);
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    // Two tasks conflicting on 16 granules: one report, 16 found.
    sched.spawn(g, [&] { race::write(v.data(), v.size()); });
    sched.spawn(g, [&] { race::write(v.data(), v.size()); });
    sched.wait(g);
    const auto& reports = replay.finish();
    EXPECT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(replay.detector().races_found(), v.size());
  }
}

TEST(SpBagsTest, ParallelForSubrangesDoNotRaceOnDisjointBlocks) {
  rt::Scheduler sched(make_config(2));
  std::vector<double> v(256, 0.0);
  {
    race::Replay replay(sched);
    rt::parallel_for(sched, 0, 256, 16, [&](std::int64_t b, std::int64_t e) {
      race::write(v.data() + b, static_cast<std::size_t>(e - b));
      for (std::int64_t i = b; i < e; ++i) v[static_cast<std::size_t>(i)] = 1;
    });
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
    EXPECT_GT(replay.detector().tasks_executed(), 1u);
  }
}

// ---------------------------------------------------------------------
// 2. Clean certification: every Table-2 app replays race-free and
//    verifies under the serial-elision schedule.
// ---------------------------------------------------------------------

class RaceCleanTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RaceCleanTest, AppReplaysWithoutRaces) {
  auto app = apps::make_app(GetParam(), apps::Scale::kSmall);
  ASSERT_NE(app, nullptr);
  rt::Scheduler sched(make_config(2));
  race::Replay replay(sched);
  app->run(sched);
  const auto& reports = replay.finish();
  EXPECT_TRUE(reports.empty()) << dump(reports);
  EXPECT_GT(replay.detector().granules_checked(), 0u)
      << "app is not annotated — the clean result is vacuous";
  EXPECT_EQ(app->verify(), "");
}

INSTANTIATE_TEST_SUITE_P(Table2, RaceCleanTest,
                         ::testing::ValuesIn(apps::kAppNames));

// ---------------------------------------------------------------------
// 3. Seeded racy mutants: one representative broken kernel per app
//    pattern. Each must be flagged, with provenance naming the mutant.
// ---------------------------------------------------------------------

/// Runs `kernel` under replay and checks it is flagged with provenance
/// pointing at `region_name`.
template <typename Kernel>
void expect_mutant_flagged(const char* region_name, Kernel&& kernel) {
  rt::Scheduler sched(make_config(2));
  race::Replay replay(sched);
  {
    race::region scope(region_name);
    kernel(sched);
  }
  const auto& reports = replay.finish();
  ASSERT_FALSE(reports.empty()) << "mutant " << region_name << " not flagged";
  EXPECT_TRUE(any_chain_mentions(reports, region_name)) << dump(reports);
}

TEST(RaceMutantTest, FftSharedScratchBetweenHalves) {
  // Mutant: both recursive halves use the SAME scratch range instead of
  // disjoint halves.
  expect_mutant_flagged("FFT-mutant", [](rt::Scheduler& sched) {
    std::vector<double> scratch(64, 0.0);
    rt::parallel_invoke(
        sched, [&] { race::write(scratch.data(), 64); },
        [&] { race::write(scratch.data(), 64); });
  });
}

TEST(RaceMutantTest, PnnSharedGradientWithoutReduction) {
  // Mutant: map tasks accumulate into one shared gradient vector instead
  // of task-local partials.
  expect_mutant_flagged("PNN-mutant", [](rt::Scheduler& sched) {
    std::vector<double> grad(32, 0.0);
    rt::parallel_for(sched, 0, 64, 8, [&](std::int64_t, std::int64_t) {
      race::read(grad.data(), grad.size());
      race::write(grad.data(), grad.size());
    });
  });
}

TEST(RaceMutantTest, CholeskyFusedScaleAndUpdate) {
  // Mutant: the column-k scale and the trailing update run in ONE
  // parallel_for, so updates read column k while the scale rewrites it.
  expect_mutant_flagged("Cholesky-mutant", [](rt::Scheduler& sched) {
    const std::size_t n = 16, k = 0;
    std::vector<double> l(n * n, 1.0);
    double* lp = l.data();
    rt::parallel_for(sched, 1, static_cast<std::int64_t>(n), 4,
                     [lp, n, k](std::int64_t b, std::int64_t e) {
                       race::write(lp + b * n + k,
                                   static_cast<std::size_t>(e - b),
                                   static_cast<std::ptrdiff_t>(n));
                       race::read(lp + (k + 1) * n + k, n - k - 1,
                                  static_cast<std::ptrdiff_t>(n));
                     });
  });
}

TEST(RaceMutantTest, LuEliminationRangeIncludesPivotRow) {
  // Mutant: the update range starts at k instead of k+1 — the pivot row
  // is rewritten while every other row reads it.
  expect_mutant_flagged("LU-mutant", [](rt::Scheduler& sched) {
    const std::size_t n = 16, k = 2;
    std::vector<double> lu(n * n, 1.0);
    double* p = lu.data();
    rt::parallel_for(sched, static_cast<std::int64_t>(k),
                     static_cast<std::int64_t>(n), 4,
                     [p, n, k](std::int64_t rb, std::int64_t re) {
                       race::read(p + k * n + k, n - k);
                       for (std::int64_t i = rb; i < re; ++i) {
                         race::write(p + i * n + k, n - k);
                       }
                     });
  });
}

TEST(RaceMutantTest, GeEliminationClobbersPivotRhs) {
  // Mutant: like LU but on the right-hand side — b[k] is read by every
  // row update while the k-th task overwrites it.
  expect_mutant_flagged("GE-mutant", [](rt::Scheduler& sched) {
    const std::size_t n = 16, k = 1;
    std::vector<double> b(n, 1.0);
    double* bp = b.data();
    rt::parallel_for(sched, static_cast<std::int64_t>(k),
                     static_cast<std::int64_t>(n), 4,
                     [bp, k](std::int64_t rb, std::int64_t re) {
                       race::read(bp + k);
                       for (std::int64_t i = rb; i < re; ++i) {
                         race::write(bp + i);
                       }
                     });
  });
}

TEST(RaceMutantTest, HeatInPlaceJacobi) {
  // Mutant: Jacobi without the double buffer — rows are updated in place
  // while neighbouring tasks read them.
  expect_mutant_flagged("Heat-mutant", [](rt::Scheduler& sched) {
    const std::size_t rows = 32, cols = 16;
    std::vector<double> g(rows * cols, 0.0);
    double* gp = g.data();
    rt::parallel_for(sched, 1, static_cast<std::int64_t>(rows) - 1, 4,
                     [gp, cols](std::int64_t rb, std::int64_t re) {
                       for (std::int64_t r = rb; r < re; ++r) {
                         race::read(gp + (r - 1) * cols, 3 * cols);
                         race::write(gp + r * cols + 1, cols - 2);
                       }
                     });
  });
}

TEST(RaceMutantTest, SorBothColorsInOneSweep) {
  // Mutant: red and black cells updated in the same sweep — a row's
  // writes hit cells its neighbours read in the same parallel region.
  expect_mutant_flagged("SOR-mutant", [](rt::Scheduler& sched) {
    const std::size_t rows = 32, cols = 16;
    std::vector<double> g(rows * cols, 0.0);
    double* gp = g.data();
    rt::parallel_for(sched, 1, static_cast<std::int64_t>(rows) - 1, 4,
                     [gp, cols](std::int64_t rb, std::int64_t re) {
                       for (std::int64_t r = rb; r < re; ++r) {
                         race::write(gp + r * cols + 1, cols - 2);
                         race::read(gp + (r - 1) * cols, 3 * cols);
                       }
                     });
  });
}

TEST(RaceMutantTest, MergesortOverlappingMergeBuffers) {
  // Mutant: both halves merge through overlapping scratch ranges.
  expect_mutant_flagged("Mergesort-mutant", [](rt::Scheduler& sched) {
    std::vector<std::int64_t> buf(64, 0);
    rt::parallel_invoke(
        sched, [&] { race::write(buf.data(), 48); },
        [&] { race::write(buf.data() + 16, 48); });
  });
}

}  // namespace
}  // namespace dws
