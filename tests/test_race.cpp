// Race-detector tests (ctest labels: race, race-fasttrack).
//
// Two detection modes share the annotation stream and the suite:
//   race::Mode::kSpBags    serial depth-first replay; certifies the DAG;
//   race::Mode::kFastTrack vector clocks over the live parallel
//                          schedule (real workers, real steals).
// App-level suites (clean certification, mutants, DAG certification,
// seeded sweeps) run under BOTH modes; the SP-relation and ALL-SETS
// lockset unit tests are SP-bags-only because their expectations encode
// the serial-replay lock order, which FastTrack replaces with the
// observed schedule's lock edges (docs/CHECKING.md). DWS_RACE_MODE
// (spbags | fasttrack | both) filters at runtime without changing test
// names — filtered-out modes report as skipped.
//
// Layers:
//  1. detector unit tests against hand-built spawn trees — the SP
//     relation (siblings parallel, wait serializes), read/write rules,
//     strided-disjointness, provenance chains, and the ALL-SETS lockset
//     semantics (common lock serializes, disjoint locksets race, locks
//     do not cross spawns, pruning keeps locker lists small); plus the
//     FastTrack equivalents that are schedule-independent (spawn/join
//     edges, epoch adaptivity, read-vector promotion);
//  2. clean certification — each Table-2 app (including PNN's locked
//     combine) plus the tiled BlockedCholesky/BlockedLU kernels runs
//     with zero reports AND verifies, in both modes;
//  3. seeded racy mutants — one deliberately broken kernel per app
//     pattern, each of which must be flagged *in both modes* with a
//     provenance chain naming the mutant's race::region (and, for the
//     lock mutants, the lock provenance that would have serialized the
//     pair);
//  4. simulator-DAG certification — every DagProfile generator's TaskDag
//     is executed as the fork-join program it encodes (apps/dag_replay)
//     under the detector, so the simulated DAGs ship with the same
//     certificate as the real kernels;
//  5. seeded-input sweep — input-dependent kernels (Mergesort cutoffs,
//     FFT sizes, BlockedCholesky/BlockedLU tile shapes) are certified
//     across N seeded inputs; N comes from --sweep=N or DWS_RACE_SWEEP
//     (default 3, clamped to [1, 16]);
//  6. mode agreement — on one worker both modes see the same logical
//     DAG, so their verdicts must match across the app corpus and a
//     seeded racy kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "apps/app.hpp"
#include "apps/blocked_linalg.hpp"
#include "apps/dag_replay.hpp"
#include "apps/fft.hpp"
#include "apps/mergesort.hpp"
#include "apps/profiles.hpp"
#include "race/fasttrack.hpp"
#include "race/spbags.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "util/rng.hpp"

namespace dws {
namespace {

/// Seeded-input sweep width, set by main() from --sweep=N or the
/// DWS_RACE_SWEEP environment variable.
int g_sweep = 3;

int sweep_n() { return g_sweep; }

Config make_config(unsigned cores) {
  Config cfg;
  cfg.mode = SchedMode::kDws;
  cfg.num_cores = cores;
  cfg.pin_threads = false;
  return cfg;
}

/// Both detection modes, for mode-parametrized suites.
constexpr race::Mode kBothModes[] = {race::Mode::kSpBags,
                                     race::Mode::kFastTrack};

/// True if DWS_RACE_MODE (unset = both) enables `m`. Filtering happens
/// at runtime via GTEST_SKIP so test names stay stable across modes.
bool mode_enabled(race::Mode m) {
  static const std::vector<race::Mode> enabled = race::modes_from_env();
  return std::find(enabled.begin(), enabled.end(), m) != enabled.end();
}

/// CamelCase mode tag for parametrized test names.
std::string mode_tag(race::Mode m) {
  return m == race::Mode::kFastTrack ? "FastTrack" : "SpBags";
}

/// SP-bags replays inline (worker count is irrelevant); FastTrack checks
/// the live schedule, so it gets enough workers for real stealing.
Config config_for(race::Mode m) {
  return make_config(m == race::Mode::kFastTrack ? 4 : 2);
}

/// True if any report's provenance (either side) mentions `needle`.
bool any_chain_mentions(const std::vector<race::RaceReport>& reports,
                        const std::string& needle) {
  for (const auto& r : reports) {
    for (const auto& hop : r.prior_chain) {
      if (hop.find(needle) != std::string::npos) return true;
    }
    for (const auto& hop : r.current_chain) {
      if (hop.find(needle) != std::string::npos) return true;
    }
  }
  return false;
}

std::string dump(const std::vector<race::RaceReport>& reports) {
  std::string s;
  for (const auto& r : reports) s += r.to_string() + "\n";
  return s;
}

// ---------------------------------------------------------------------
// 1. Detector unit tests.
// ---------------------------------------------------------------------

/// SP-bags-only unit tests (serial-replay semantics); skipped when
/// DWS_RACE_MODE filters the mode out.
class SpBagsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!mode_enabled(race::Mode::kSpBags)) {
      GTEST_SKIP() << "spbags disabled by DWS_RACE_MODE";
    }
  }
};

/// The ALL-SETS lockset tests encode serial-replay lock ordering, so
/// they are SP-bags-only too.
class LocksetTest : public SpBagsTest {};

TEST_F(SpBagsTest, SiblingWritesSameAddressRace) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::write(&x);
      x = 1.0;
    });
    sched.spawn(g, [&] {
      race::write(&x);
      x = 2.0;
    });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(reports[0].prior, race::Access::kWrite);
    EXPECT_EQ(reports[0].current, race::Access::kWrite);
    EXPECT_EQ(reports[0].addr, reinterpret_cast<std::uintptr_t>(&x) &
                                   ~std::uintptr_t{7});
  }
}

TEST_F(SpBagsTest, WaitSerializesAccesses) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g1;
    sched.spawn(g1, [&] {
      race::write(&x);
      x = 1.0;
    });
    sched.wait(g1);
    // After the wait the first task is a serial predecessor: no race.
    rt::TaskGroup g2;
    sched.spawn(g2, [&] {
      race::write(&x);
      x = 2.0;
    });
    sched.wait(g2);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
  }
}

TEST_F(SpBagsTest, ParallelReadsAreNotARace) {
  rt::Scheduler sched(make_config(2));
  const double x = 42.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    for (int i = 0; i < 4; ++i) {
      sched.spawn(g, [&] { race::read(&x); });
    }
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
  }
}

TEST_F(SpBagsTest, ParallelReadAndWriteRace) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] { race::read(&x); });
    sched.spawn(g, [&] {
      race::write(&x);
      x = 1.0;
    });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(reports[0].prior, race::Access::kRead);
    EXPECT_EQ(reports[0].current, race::Access::kWrite);
  }
}

TEST_F(SpBagsTest, ContinuationRacesWithSpawnedChild) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::write(&x);
      x = 1.0;
    });
    // The parent's continuation before wait() is parallel with the child.
    race::read(&x);
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(reports[0].prior, race::Access::kWrite);
    EXPECT_EQ(reports[0].current, race::Access::kRead);
  }
}

TEST_F(SpBagsTest, StridedAccessesWithDisjointParityDoNotRace) {
  rt::Scheduler sched(make_config(2));
  std::vector<double> v(64, 0.0);
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    // Even granules vs odd granules: interleaved but disjoint.
    sched.spawn(g, [&] { race::write(v.data(), 32, 2); });
    sched.spawn(g, [&] { race::write(v.data() + 1, 32, 2); });
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
  }
}

TEST_F(SpBagsTest, ReplayRunsInlineOnSubmittingThread) {
  rt::Scheduler sched(make_config(2));
  const auto main_id = std::this_thread::get_id();
  int order = 0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      EXPECT_EQ(std::this_thread::get_id(), main_id);
      EXPECT_EQ(order, 0);  // depth-first: runs at the spawn site
      order = 1;
    });
    EXPECT_EQ(order, 1);
    sched.spawn(g, [&] { order = 2; });
    EXPECT_EQ(order, 2);
    sched.wait(g);
    EXPECT_EQ(replay.detector().tasks_executed(), 2u);
  }
}

TEST_F(SpBagsTest, ProvenanceChainsAreRootFirstAndCarryRegions) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    race::region scope("outer-kernel");
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::write(&x);
      // Nested spawn: the inner task's chain goes root > outer > inner.
      rt::TaskGroup inner;
      sched.spawn(inner, [&] { race::write(&x); });
      sched.wait(inner);
    });
    sched.spawn(g, [&] { race::write(&x); });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_FALSE(reports.empty());
    for (const auto& r : reports) {
      ASSERT_FALSE(r.prior_chain.empty());
      ASSERT_FALSE(r.current_chain.empty());
      EXPECT_EQ(r.prior_chain.front(), "root");
      EXPECT_EQ(r.current_chain.front(), "root");
    }
    EXPECT_TRUE(any_chain_mentions(reports, "outer-kernel")) << dump(reports);
  }
}

TEST_F(SpBagsTest, DuplicatePairsAreReportedOnce) {
  rt::Scheduler sched(make_config(2));
  std::vector<double> v(16, 0.0);
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    // Two tasks conflicting on 16 granules: one report, 16 found.
    sched.spawn(g, [&] { race::write(v.data(), v.size()); });
    sched.spawn(g, [&] { race::write(v.data(), v.size()); });
    sched.wait(g);
    const auto& reports = replay.finish();
    EXPECT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(replay.detector().races_found(), v.size());
  }
}

TEST_F(SpBagsTest, ParallelForSubrangesDoNotRaceOnDisjointBlocks) {
  rt::Scheduler sched(make_config(2));
  std::vector<double> v(256, 0.0);
  {
    race::Replay replay(sched);
    rt::parallel_for(sched, 0, 256, 16, [&](std::int64_t b, std::int64_t e) {
      race::write(v.data() + b, static_cast<std::size_t>(e - b));
      for (std::int64_t i = b; i < e; ++i) v[static_cast<std::size_t>(i)] = 1;
    });
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
    EXPECT_GT(replay.detector().tasks_executed(), 1u);
  }
}

// ---------------------------------------------------------------------
// 1b. ALL-SETS lockset semantics.
// ---------------------------------------------------------------------

TEST_F(LocksetTest, CommonLockSerializesParallelWrites) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  std::mutex m;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    for (int i = 0; i < 4; ++i) {
      sched.spawn(g, [&] {
        race::scoped_lock<std::mutex> lock(m, "x-lock");
        race::write(&x);
        x += 1.0;
      });
    }
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
    EXPECT_EQ(replay.detector().locks_seen(), 1u);
    EXPECT_GT(replay.detector().granules_checked(), 0u);
  }
}

TEST_F(LocksetTest, DisjointLocksStillRace) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  std::mutex ma, mb;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(ma, "lock-a");
      race::write(&x);
    });
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(mb, "lock-b");
      race::write(&x);
    });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    // Lock provenance: each side's (disjoint) lockset, by name.
    ASSERT_EQ(reports[0].prior_locks.size(), 1u);
    ASSERT_EQ(reports[0].current_locks.size(), 1u);
    EXPECT_EQ(reports[0].prior_locks[0], "lock-a");
    EXPECT_EQ(reports[0].current_locks[0], "lock-b");
    const std::string s = reports[0].to_string();
    EXPECT_NE(s.find("lock-a"), std::string::npos) << s;
    EXPECT_NE(s.find("lock-b"), std::string::npos) << s;
    EXPECT_NE(s.find("would have serialized"), std::string::npos) << s;
  }
}

TEST_F(LocksetTest, LockedVersusUnlockedAccessRaces) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  std::mutex m;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(m, "half-lock");
      race::write(&x);
    });
    sched.spawn(g, [&] { race::write(&x); });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    ASSERT_EQ(reports[0].prior_locks.size(), 1u);
    EXPECT_EQ(reports[0].prior_locks[0], "half-lock");
    EXPECT_TRUE(reports[0].current_locks.empty());
  }
}

TEST_F(LocksetTest, NoLockReportSaysSo) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] { race::write(&x); });
    sched.spawn(g, [&] { race::write(&x); });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_NE(reports[0].to_string().find("no locks held by either access"),
              std::string::npos)
        << reports[0].to_string();
  }
}

TEST_F(LocksetTest, LocksDoNotCrossSpawns) {
  // A child spawned while the parent holds a lock does NOT inherit it:
  // in a parallel schedule the child runs on a worker that does not own
  // the parent's mutex.
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  std::mutex m;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    {
      race::scoped_lock<std::mutex> lock(m, "parent-lock");
      sched.spawn(g, [&] { race::write(&x); });  // child: no lockset
      race::write(&x);  // parent continuation: holds parent-lock
    }
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_TRUE(reports[0].prior_locks.empty()) << dump(reports);
    ASSERT_EQ(reports[0].current_locks.size(), 1u);
    EXPECT_EQ(reports[0].current_locks[0], "parent-lock");
  }
}

TEST_F(LocksetTest, RecursiveHoldIsAMultiset) {
  // acquire-acquire-release leaves the lock held (one release per
  // acquire), so the access still carries it.
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  std::mutex m;  // annotated manually: std::mutex is not recursive
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::lock_acquire(&m, "recursive-lock");
      race::lock_acquire(&m);
      race::lock_release(&m);
      race::write(&x);  // still protected
      race::lock_release(&m);
    });
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(m, "recursive-lock");
      race::write(&x);
    });
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
  }
}

TEST_F(LocksetTest, HandOverHandLockingTracksTheHeldSet) {
  // acquire A, acquire B, release A: the access under {B} is safe
  // against a parallel access under {B}, races against one under {A}.
  rt::Scheduler sched(make_config(2));
  double x = 0.0, y = 0.0;
  std::mutex a, b;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::lock_acquire(&a, "hoh-a");
      race::lock_acquire(&b, "hoh-b");
      race::lock_release(&a);
      race::write(&x);  // under {B} only
      race::write(&y);
      race::lock_release(&b);
    });
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(b, "hoh-b");
      race::write(&x);  // common lock B: no race
    });
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(a, "hoh-a");
      race::write(&y);  // holds A, prior was under {B}: race
    });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(reports[0].addr,
              reinterpret_cast<std::uintptr_t>(&y) & ~std::uintptr_t{7});
  }
}

TEST_F(LocksetTest, ScopedLockEndsProtectionAtScopeExit) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  std::mutex m;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      { race::scoped_lock<std::mutex> lock(m, "scope-lock"); }
      race::write(&x);  // after the scope: unprotected
    });
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(m, "scope-lock");
      race::write(&x);
    });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
  }
}

TEST_F(LocksetTest, SerialPredecessorsArePrunedFromLockerLists) {
  // Spawn+wait in sequence: each new write subsumes the previous serial
  // one under the ALL-SETS pruning rule, so the locker list stays at one
  // entry and prune events are observable.
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    for (int i = 0; i < 4; ++i) {
      rt::TaskGroup g;
      sched.spawn(g, [&] { race::write(&x); });
      sched.wait(g);
    }
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
    EXPECT_GE(replay.detector().lockers_pruned(), 3u);
  }
}

TEST_F(LocksetTest, ParallelReduceCombineCertifiesUnderItsLock) {
  // parallel_reduce's combine step runs under an annotated internal
  // lock; a reduction whose combine annotates the shared accumulator
  // must certify clean — this is exactly the PNN pattern.
  rt::Scheduler sched(make_config(2));
  struct Acc {
    std::vector<double> v;
  };
  {
    race::Replay replay(sched);
    Acc init;
    init.v.assign(8, 0.0);
    const std::size_t n = init.v.size();
    Acc total = rt::parallel_reduce<Acc>(
        sched, 0, 64, 4, std::move(init),
        [n](std::int64_t b, std::int64_t e) {
          Acc p;
          p.v.assign(n, static_cast<double>(e - b));
          return p;
        },
        [n](Acc a, Acc b) {
          race::write(a.v.data(), n);
          race::read(b.v.data(), n);
          for (std::size_t k = 0; k < n; ++k) a.v[k] += b.v[k];
          return a;
        });
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
    EXPECT_EQ(replay.detector().locks_seen(), 1u);
    EXPECT_DOUBLE_EQ(total.v[0], 64.0);
  }
}

// ---------------------------------------------------------------------
// 1c. FastTrack unit tests — only properties that are
//     schedule-independent (spawn/join HB edges, epoch adaptivity), so
//     they hold on any worker interleaving.
// ---------------------------------------------------------------------

class FastTrackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!mode_enabled(race::Mode::kFastTrack)) {
      GTEST_SKIP() << "fasttrack disabled by DWS_RACE_MODE";
    }
  }
};

TEST_F(FastTrackTest, SiblingWritesSameAddressRace) {
  rt::Scheduler sched(config_for(race::Mode::kFastTrack));
  double x = 0.0;
  {
    race::Replay replay(sched, race::Mode::kFastTrack);
    rt::TaskGroup g;
    // No real stores — the annotations alone model the conflict, so the
    // test is clean under TSan while the detector must still flag it.
    sched.spawn(g, [&] { race::write(&x); });
    sched.spawn(g, [&] { race::write(&x); });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(reports[0].prior, race::Access::kWrite);
    EXPECT_EQ(reports[0].current, race::Access::kWrite);
    EXPECT_EQ(reports[0].addr,
              reinterpret_cast<std::uintptr_t>(&x) & ~std::uintptr_t{7});
  }
}

TEST_F(FastTrackTest, WaitSerializesAccesses) {
  rt::Scheduler sched(config_for(race::Mode::kFastTrack));
  double x = 0.0;
  {
    race::Replay replay(sched, race::Mode::kFastTrack);
    rt::TaskGroup g1;
    sched.spawn(g1, [&] { race::write(&x); });
    sched.wait(g1);
    // The wait joined the group's clock: the next task is ordered even
    // if it lands on a different worker.
    rt::TaskGroup g2;
    sched.spawn(g2, [&] { race::write(&x); });
    sched.wait(g2);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
  }
}

TEST_F(FastTrackTest, ContinuationRacesWithSpawnedChild) {
  rt::Scheduler sched(config_for(race::Mode::kFastTrack));
  double x = 0.0;
  {
    race::Replay replay(sched, race::Mode::kFastTrack);
    rt::TaskGroup g;
    sched.spawn(g, [&] { race::write(&x); });
    // The submitting thread's continuation is parallel with the child;
    // whichever access reaches the shadow word second sees the other's
    // epoch outside its clock, so detection is order-independent.
    race::read(&x);
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
  }
}

TEST_F(FastTrackTest, SameWorkerTasksStayLogicallyParallel) {
  // One worker executes every task in some serial order; replace-at-begin
  // (rather than join) must drop that incidental ordering so the race is
  // still visible — the property the 1-worker agreement suite relies on.
  rt::Scheduler sched(make_config(1));
  double x = 0.0;
  {
    race::Replay replay(sched, race::Mode::kFastTrack);
    rt::TaskGroup g;
    sched.spawn(g, [&] { race::write(&x); });
    sched.spawn(g, [&] { race::write(&x); });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
  }
}

TEST_F(FastTrackTest, RecycledTaskSlotsCarryNoStaleState) {
  // Regression for pooled task storage: a slot recycled through the
  // per-worker TaskPool must not hand its next occupant the previous
  // task's happens-before token. An inherited token would corrupt the
  // clock frames — ordered work would appear racy (or racy work ordered).
  rt::Scheduler sched(config_for(race::Mode::kFastTrack));
  // Warm the pools undetected so detector-phase tasks land in recycled
  // slots rather than fresh slab memory.
  for (int round = 0; round < 4; ++round) {
    sched.run([&] {
      rt::TaskGroup g;
      for (int i = 0; i < 128; ++i) sched.spawn(g, [] {});
      sched.wait(g);
    });
  }

  std::vector<double> v(256, 0.0);
  {
    race::Replay replay(sched, race::Mode::kFastTrack);
    // Disjoint writes from recycled slots are clean on every schedule.
    sched.run([&] {
      rt::TaskGroup g;
      for (int i = 0; i < 256; ++i) {
        sched.spawn(g, [&v, i] { race::write(&v[i]); });
      }
      sched.wait(g);
    });
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
    EXPECT_GE(replay.tasks_executed(), 256u);
  }
  // And a real conflict through the same recycled slots is still caught.
  double x = 0.0;
  {
    race::Replay replay(sched, race::Mode::kFastTrack);
    rt::TaskGroup g;
    sched.spawn(g, [&] { race::write(&x); });
    sched.spawn(g, [&] { race::write(&x); });
    sched.wait(g);
    EXPECT_GE(replay.finish().size(), 1u);
  }
}

TEST_F(FastTrackTest, CommonLockSerializesParallelWrites) {
  // Lock edges order the critical sections in the observed schedule:
  // mutex-serialized writes never race, on any interleaving.
  rt::Scheduler sched(config_for(race::Mode::kFastTrack));
  double x = 0.0;
  std::mutex m;
  {
    race::Replay replay(sched, race::Mode::kFastTrack);
    rt::TaskGroup g;
    for (int i = 0; i < 4; ++i) {
      sched.spawn(g, [&] {
        race::scoped_lock<std::mutex> lock(m, "x-lock");
        race::write(&x);
        x += 1.0;
      });
    }
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
    EXPECT_EQ(replay.tasks_executed(), 4u);
  }
}

TEST_F(FastTrackTest, ConcurrentReadersPromoteToAReadVector) {
  rt::Scheduler sched(config_for(race::Mode::kFastTrack));
  const double x = 42.0;
  std::atomic<bool> child_read{false};
  {
    race::Replay replay(sched, race::Mode::kFastTrack);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::read(&x);
      child_read.store(true, std::memory_order_release);
    });
    // Force the orders: the child's read lands first, then the parallel
    // continuation reads from a different slot — the shadow word must
    // keep BOTH epochs (promotion to the read vector), and two ordered
    // reads of one address must not race.
    while (!child_read.load(std::memory_order_acquire)) std::this_thread::yield();
    race::read(&x);
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
    EXPECT_GE(replay.fasttrack().read_promotions(), 1u);
    EXPECT_GE(replay.fasttrack().threads_seen(), 2u);
  }
}

TEST_F(FastTrackTest, StridedAccessesWithDisjointParityDoNotRace) {
  rt::Scheduler sched(config_for(race::Mode::kFastTrack));
  std::vector<double> v(64, 0.0);
  {
    race::Replay replay(sched, race::Mode::kFastTrack);
    rt::TaskGroup g;
    sched.spawn(g, [&] { race::write(v.data(), 32, 2); });
    sched.spawn(g, [&] { race::write(v.data() + 1, 32, 2); });
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
    EXPECT_GE(replay.granules_checked(), 64u);
  }
}

TEST_F(FastTrackTest, DuplicatePairsAreCoalesced) {
  rt::Scheduler sched(config_for(race::Mode::kFastTrack));
  std::vector<double> v(16, 0.0);
  {
    race::Replay replay(sched, race::Mode::kFastTrack);
    rt::TaskGroup g;
    // Two tasks conflicting on 16 granules: every granule is found, but
    // reports collapse per task pair. Either task can be the "prior"
    // side of a granule when the bodies overlap, so at most two
    // orientations of the one pair surface.
    sched.spawn(g, [&] { race::write(v.data(), v.size()); });
    sched.spawn(g, [&] { race::write(v.data(), v.size()); });
    sched.wait(g);
    const auto& reports = replay.finish();
    EXPECT_GE(reports.size(), 1u) << dump(reports);
    EXPECT_LE(reports.size(), 2u) << dump(reports);
    EXPECT_EQ(replay.races_found(), v.size());
  }
}

TEST_F(FastTrackTest, ProvenanceChainsAreRootFirstAndCarryRegions) {
  rt::Scheduler sched(config_for(race::Mode::kFastTrack));
  double x = 0.0;
  {
    race::Replay replay(sched, race::Mode::kFastTrack);
    race::region scope("outer-kernel");
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::write(&x);
      rt::TaskGroup inner;
      sched.spawn(inner, [&] { race::write(&x); });
      sched.wait(inner);
    });
    sched.spawn(g, [&] { race::write(&x); });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_FALSE(reports.empty());
    for (const auto& r : reports) {
      ASSERT_FALSE(r.prior_chain.empty());
      ASSERT_FALSE(r.current_chain.empty());
      EXPECT_EQ(r.prior_chain.front(), "root");
      EXPECT_EQ(r.current_chain.front(), "root");
    }
    EXPECT_TRUE(any_chain_mentions(reports, "outer-kernel")) << dump(reports);
  }
}

TEST_F(FastTrackTest, BackToBackSessionsStartClean) {
  // The parallel hook is process-global; a finished session must fully
  // detach so the next one starts with fresh shadow state.
  double x = 0.0;
  for (int round = 0; round < 2; ++round) {
    rt::Scheduler sched(config_for(race::Mode::kFastTrack));
    race::Replay replay(sched, race::Mode::kFastTrack);
    rt::TaskGroup g;
    sched.spawn(g, [&] { race::write(&x); });
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << "round " << round;
  }
}

// ---------------------------------------------------------------------
// 2. Clean certification: every Table-2 app replays race-free and
//    verifies under the serial-elision schedule.
// ---------------------------------------------------------------------

class RaceCleanTest
    : public ::testing::TestWithParam<std::tuple<const char*, race::Mode>> {
};

TEST_P(RaceCleanTest, AppRunsWithoutRaces) {
  const auto [name, mode] = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  auto app = apps::make_app(name, apps::Scale::kSmall);
  ASSERT_NE(app, nullptr);
  rt::Scheduler sched(config_for(mode));
  race::Replay replay(sched, mode);
  app->run(sched);
  const auto& reports = replay.finish();
  EXPECT_TRUE(reports.empty()) << dump(reports);
  EXPECT_GT(replay.granules_checked(), 0u)
      << "app is not annotated — the clean result is vacuous";
  EXPECT_EQ(app->verify(), "");
}

std::string clean_test_name(
    const ::testing::TestParamInfo<RaceCleanTest::ParamType>& info) {
  return std::string(std::get<0>(info.param)) + mode_tag(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Table2, RaceCleanTest,
                         ::testing::Combine(::testing::ValuesIn(apps::kAppNames),
                                            ::testing::ValuesIn(kBothModes)),
                         clean_test_name);

// The tiled kernels: their block-dependency structure (phase waits +
// per-phase tile disjointness) is exactly where a stale-tile race would
// hide, so they get the same clean certification as the Table-2 apps.
INSTANTIATE_TEST_SUITE_P(
    BlockedLinalg, RaceCleanTest,
    ::testing::Combine(::testing::Values("BlockedCholesky", "BlockedLU"),
                       ::testing::ValuesIn(kBothModes)),
    clean_test_name);

// ---------------------------------------------------------------------
// 3. Seeded racy mutants: one representative broken kernel per app
//    pattern. Each must be flagged, with provenance naming the mutant.
// ---------------------------------------------------------------------

/// Runs `kernel` under every enabled mode and checks it is flagged with
/// provenance pointing at `region_name` in each. The mutants only
/// annotate (no real conflicting stores), so the FastTrack leg is clean
/// under TSan even though the modeled conflict must be caught.
template <typename Kernel>
void expect_mutant_flagged(const char* region_name, Kernel&& kernel) {
  for (race::Mode mode : kBothModes) {
    if (!mode_enabled(mode)) continue;
    SCOPED_TRACE(mode_tag(mode));
    rt::Scheduler sched(config_for(mode));
    race::Replay replay(sched, mode);
    {
      race::region scope(region_name);
      kernel(sched);
    }
    const auto& reports = replay.finish();
    ASSERT_FALSE(reports.empty()) << "mutant " << region_name << " not flagged";
    EXPECT_TRUE(any_chain_mentions(reports, region_name)) << dump(reports);
  }
}

TEST(RaceMutantTest, FftSharedScratchBetweenHalves) {
  // Mutant: both recursive halves use the SAME scratch range instead of
  // disjoint halves.
  expect_mutant_flagged("FFT-mutant", [](rt::Scheduler& sched) {
    std::vector<double> scratch(64, 0.0);
    rt::parallel_invoke(
        sched, [&] { race::write(scratch.data(), 64); },
        [&] { race::write(scratch.data(), 64); });
  });
}

TEST(RaceMutantTest, PnnSharedGradientWithoutReduction) {
  // Mutant: map tasks accumulate into one shared gradient vector instead
  // of task-local partials.
  expect_mutant_flagged("PNN-mutant", [](rt::Scheduler& sched) {
    std::vector<double> grad(32, 0.0);
    rt::parallel_for(sched, 0, 64, 8, [&](std::int64_t, std::int64_t) {
      race::read(grad.data(), grad.size());
      race::write(grad.data(), grad.size());
    });
  });
}

TEST(RaceMutantTest, CholeskyFusedScaleAndUpdate) {
  // Mutant: the column-k scale and the trailing update run in ONE
  // parallel_for, so updates read column k while the scale rewrites it.
  expect_mutant_flagged("Cholesky-mutant", [](rt::Scheduler& sched) {
    const std::size_t n = 16, k = 0;
    std::vector<double> l(n * n, 1.0);
    double* lp = l.data();
    rt::parallel_for(sched, 1, static_cast<std::int64_t>(n), 4,
                     [lp, n, k](std::int64_t b, std::int64_t e) {
                       race::write(lp + b * n + k,
                                   static_cast<std::size_t>(e - b),
                                   static_cast<std::ptrdiff_t>(n));
                       race::read(lp + (k + 1) * n + k, n - k - 1,
                                  static_cast<std::ptrdiff_t>(n));
                     });
  });
}

TEST(RaceMutantTest, LuEliminationRangeIncludesPivotRow) {
  // Mutant: the update range starts at k instead of k+1 — the pivot row
  // is rewritten while every other row reads it.
  expect_mutant_flagged("LU-mutant", [](rt::Scheduler& sched) {
    const std::size_t n = 16, k = 2;
    std::vector<double> lu(n * n, 1.0);
    double* p = lu.data();
    rt::parallel_for(sched, static_cast<std::int64_t>(k),
                     static_cast<std::int64_t>(n), 4,
                     [p, n, k](std::int64_t rb, std::int64_t re) {
                       race::read(p + k * n + k, n - k);
                       for (std::int64_t i = rb; i < re; ++i) {
                         race::write(p + i * n + k, n - k);
                       }
                     });
  });
}

TEST(RaceMutantTest, GeEliminationClobbersPivotRhs) {
  // Mutant: like LU but on the right-hand side — b[k] is read by every
  // row update while the k-th task overwrites it.
  expect_mutant_flagged("GE-mutant", [](rt::Scheduler& sched) {
    const std::size_t n = 16, k = 1;
    std::vector<double> b(n, 1.0);
    double* bp = b.data();
    rt::parallel_for(sched, static_cast<std::int64_t>(k),
                     static_cast<std::int64_t>(n), 4,
                     [bp, k](std::int64_t rb, std::int64_t re) {
                       race::read(bp + k);
                       for (std::int64_t i = rb; i < re; ++i) {
                         race::write(bp + i);
                       }
                     });
  });
}

TEST(RaceMutantTest, HeatInPlaceJacobi) {
  // Mutant: Jacobi without the double buffer — rows are updated in place
  // while neighbouring tasks read them.
  expect_mutant_flagged("Heat-mutant", [](rt::Scheduler& sched) {
    const std::size_t rows = 32, cols = 16;
    std::vector<double> g(rows * cols, 0.0);
    double* gp = g.data();
    rt::parallel_for(sched, 1, static_cast<std::int64_t>(rows) - 1, 4,
                     [gp, cols](std::int64_t rb, std::int64_t re) {
                       for (std::int64_t r = rb; r < re; ++r) {
                         race::read(gp + (r - 1) * cols, 3 * cols);
                         race::write(gp + r * cols + 1, cols - 2);
                       }
                     });
  });
}

TEST(RaceMutantTest, SorBothColorsInOneSweep) {
  // Mutant: red and black cells updated in the same sweep — a row's
  // writes hit cells its neighbours read in the same parallel region.
  expect_mutant_flagged("SOR-mutant", [](rt::Scheduler& sched) {
    const std::size_t rows = 32, cols = 16;
    std::vector<double> g(rows * cols, 0.0);
    double* gp = g.data();
    rt::parallel_for(sched, 1, static_cast<std::int64_t>(rows) - 1, 4,
                     [gp, cols](std::int64_t rb, std::int64_t re) {
                       for (std::int64_t r = rb; r < re; ++r) {
                         race::write(gp + r * cols + 1, cols - 2);
                         race::read(gp + (r - 1) * cols, 3 * cols);
                       }
                     });
  });
}

TEST(RaceMutantTest, MergesortOverlappingMergeBuffers) {
  // Mutant: both halves merge through overlapping scratch ranges.
  expect_mutant_flagged("Mergesort-mutant", [](rt::Scheduler& sched) {
    std::vector<std::int64_t> buf(64, 0);
    rt::parallel_invoke(
        sched, [&] { race::write(buf.data(), 48); },
        [&] { race::write(buf.data() + 16, 48); });
  });
}

TEST(RaceMutantTest, PnnCombineMissingTheLock) {
  // Mutant of PNN's reduction: every leaf folds its partial into the
  // shared gradient accumulator under the combine lock — except one,
  // which "forgot" it. Both modes must flag that pair and name the lock
  // that would have serialized it: the unlocked leaf takes part in no
  // lock edge, so even FastTrack's observed-schedule ordering cannot
  // serialize it against the locked leaves.
  for (race::Mode mode : kBothModes) {
    if (!mode_enabled(mode)) continue;
    SCOPED_TRACE(mode_tag(mode));
    rt::Scheduler sched(config_for(mode));
    race::Replay replay(sched, mode);
    {
      race::region scope("PNN-combine-mutant");
      std::vector<double> acc(16, 0.0);
      std::mutex m;
      rt::parallel_for(sched, 0, 64, 8,
                       [&](std::int64_t b, std::int64_t /*e*/) {
                         if (b == 0) {
                           // The missing-lock leaf.
                           race::write(acc.data(), acc.size());
                         } else {
                           race::scoped_lock<std::mutex> lock(m,
                                                              "combine-lock");
                           race::write(acc.data(), acc.size());
                         }
                       });
    }
    const auto& reports = replay.finish();
    ASSERT_FALSE(reports.empty()) << "missing-lock combine not flagged";
    EXPECT_TRUE(any_chain_mentions(reports, "PNN-combine-mutant"))
        << dump(reports);
    // Lock provenance: one side held combine-lock, the other nothing.
    bool provenance_ok = false;
    for (const auto& r : reports) {
      const bool one_sided =
          (r.prior_locks.empty() && r.current_locks.size() == 1 &&
           r.current_locks[0] == "combine-lock") ||
          (r.current_locks.empty() && r.prior_locks.size() == 1 &&
           r.prior_locks[0] == "combine-lock");
      if (one_sided) provenance_ok = true;
    }
    EXPECT_TRUE(provenance_ok) << dump(reports);
    EXPECT_NE(dump(reports).find("would have serialized"), std::string::npos);
  }
}

TEST(RaceMutantTest, BlockedLuStaleTileRead) {
  // Mutant of BlockedLU's phase structure: the GEMM trailing update runs
  // in the SAME parallel region as the U-solve, so gemm(i, j, k) reads
  // tile (I, K) while trsm_u is still writing it — a stale-tile race.
  for (race::Mode mode : kBothModes) {
    if (!mode_enabled(mode)) continue;
    SCOPED_TRACE(mode_tag(mode));
    rt::Scheduler sched(config_for(mode));
    race::Replay replay(sched, mode);
    {
      race::region scope("BlockedLU-mutant");
      const std::size_t n = 16, b = 4;
      std::vector<double> lu(n * n, 1.0);
      double* p = lu.data();
      // Tiles at block coordinates: diagonal (1,1) rows/cols [4,8).
      rt::parallel_invoke(
          sched,
          [&] {
            // trsm_u: writes tile (1, 0) — rows [4,8) cols [0,4).
            for (std::size_t r = b; r < 2 * b; ++r) race::write(p + r * n, b);
          },
          [&] {
            // gemm(1, 1, 0): reads tiles (1, 0), (0, 1), writes (1, 1).
            for (std::size_t r = b; r < 2 * b; ++r) race::read(p + r * n, b);
            for (std::size_t r = 0; r < b; ++r) race::read(p + r * n + b, b);
            for (std::size_t r = b; r < 2 * b; ++r) {
              race::write(p + r * n + b, b);
            }
          });
    }
    const auto& reports = replay.finish();
    ASSERT_FALSE(reports.empty()) << "stale-tile mutant not flagged";
    EXPECT_TRUE(any_chain_mentions(reports, "BlockedLU-mutant"))
        << dump(reports);
    // No locks anywhere near the tile phases: the report must say so.
    EXPECT_NE(dump(reports).find("no locks held by either access"),
              std::string::npos)
        << dump(reports);
  }
}

// ---------------------------------------------------------------------
// 4. Simulator-DAG certification: every DagProfile generator's TaskDag,
//    executed as the fork-join program it encodes, replays clean — the
//    simulated DAGs carry the same certificate as the real kernels.
// ---------------------------------------------------------------------

class SimDagCertTest
    : public ::testing::TestWithParam<std::tuple<std::string, race::Mode>> {};

TEST_P(SimDagCertTest, ProfileDagReplaysClean) {
  const auto [profile_name, mode] = GetParam();
  if (!mode_enabled(mode)) GTEST_SKIP() << "disabled by DWS_RACE_MODE";
  const apps::SimAppProfile profile = apps::make_sim_profile(profile_name);
  ASSERT_EQ(profile.dag.validate(), "");
  rt::Scheduler sched(config_for(mode));
  race::Replay replay(sched, mode);
  const apps::DagReplayStats stats = apps::replay_dag(sched, profile.dag);
  const auto& reports = replay.finish();
  EXPECT_TRUE(reports.empty()) << dump(reports);
  ASSERT_TRUE(stats.clean()) << stats.defects.front();
  EXPECT_EQ(stats.executions, profile.dag.size());
  EXPECT_NEAR(stats.work_replayed, profile.dag.total_work(),
              1e-9 * profile.dag.total_work());
  EXPECT_GT(replay.granules_checked(), 0u)
      << "DAG replay is not annotated — the clean result is vacuous";
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, SimDagCertTest,
    ::testing::Combine(::testing::ValuesIn(apps::sim_profile_names()),
                       ::testing::ValuesIn(kBothModes)),
    [](const ::testing::TestParamInfo<SimDagCertTest::ParamType>& info) {
      return std::get<0>(info.param) + mode_tag(std::get<1>(info.param));
    });

TEST(SimDagCertTest, MergesortDagReplaysClean) {
  const sim::TaskDag dag = apps::make_mergesort_dag(8, 25.0, 8.0, 0.6);
  ASSERT_EQ(dag.validate(), "");
  for (race::Mode mode : kBothModes) {
    if (!mode_enabled(mode)) continue;
    SCOPED_TRACE(mode_tag(mode));
    rt::Scheduler sched(config_for(mode));
    race::Replay replay(sched, mode);
    const apps::DagReplayStats stats = apps::replay_dag(sched, dag);
    EXPECT_TRUE(replay.finish().empty());
    EXPECT_TRUE(stats.clean()) << stats.defects.front();
    EXPECT_EQ(stats.executions, dag.size());
  }
}

TEST(SimDagCertTest, ReplayFlagsNestedChainClaimingOuterJoin) {
  // Adversarial DAG that PASSES TaskDag::validate() (every node enabled
  // exactly once, acyclic, reachable) but is not a well-formed
  // fork-join program: the inner split's child chain terminates at the
  // OUTER join instead of its own. The replay certificate catches what
  // static validation cannot.
  sim::TaskDag dag;
  const sim::NodeId s = dag.add_node(1.0);   // outer split
  const sim::NodeId a = dag.add_node(1.0);   // child: inner split
  const sim::NodeId b = dag.add_node(1.0);   // child: plain chain
  const sim::NodeId j = dag.add_node(1.0);   // outer join
  const sim::NodeId a1 = dag.add_node(1.0);  // inner child
  const sim::NodeId ja = dag.add_node(1.0);  // inner join
  dag.set_root(s);
  dag.add_spawn(s, a);
  dag.add_spawn(s, b);
  dag.set_continuation(s, j);
  dag.set_continuation(b, j);
  dag.add_spawn(a, a1);
  dag.set_continuation(a, ja);
  dag.set_continuation(a1, j);  // WRONG: claims the outer join
  dag.set_continuation(ja, j);
  ASSERT_EQ(dag.validate(), "") << "defect must be invisible to validate()";
  rt::Scheduler sched(make_config(2));
  race::Replay replay(sched);
  const apps::DagReplayStats stats = apps::replay_dag(sched, dag);
  replay.finish();
  EXPECT_FALSE(stats.clean())
      << "replay certified a DAG that is not a fork-join program";
}

TEST(SimDagCertTest, ReplayFlagsSplitWithoutAJoin) {
  // A split with no continuation also passes validate() (the enabling
  // discipline has nothing to say about a missing join), but the spawned
  // child's completion signal has nowhere to land — not a fork-join
  // program, and the replay says so.
  sim::TaskDag dag;
  const sim::NodeId root = dag.add_node(1.0);
  const sim::NodeId child = dag.add_node(1.0);
  dag.set_root(root);
  dag.add_spawn(root, child);  // spawned, but root has no join
  ASSERT_EQ(dag.validate(), "");
  rt::Scheduler sched(make_config(2));
  race::Replay replay(sched);
  const apps::DagReplayStats stats = apps::replay_dag(sched, dag);
  replay.finish();
  EXPECT_FALSE(stats.clean());
}

// ---------------------------------------------------------------------
// 5. Seeded-input replay sweep: one serial replay certifies one DAG, so
//    input-dependent kernels are swept across N seeded inputs.
// ---------------------------------------------------------------------

/// Runs one freshly-constructed app instance per enabled mode (run()
/// mutates the app, so each leg gets its own copy) and expects a clean,
/// verified result. `what` labels failures (input size, seed, ...).
template <typename MakeApp>
void expect_swept_input_clean(const std::string& what, MakeApp&& make) {
  for (race::Mode mode : kBothModes) {
    if (!mode_enabled(mode)) continue;
    SCOPED_TRACE(mode_tag(mode) + " " + what);
    auto app = make();
    rt::Scheduler sched(config_for(mode));
    race::Replay replay(sched, mode);
    app.run(sched);
    const auto& reports = replay.finish();
    EXPECT_TRUE(reports.empty()) << dump(reports);
    EXPECT_EQ(app.verify(), "");
  }
}

TEST(RaceSweepTest, MergesortCertifiesAcrossSeededInputs) {
  util::Xoshiro256 rng(0xD5EEDCAFEu);
  for (int s = 0; s < sweep_n(); ++s) {
    // Sizes straddle the sort/merge cutoffs, so the spawn tree (not just
    // the data) changes per input.
    const std::size_t n = 512 + static_cast<std::size_t>(
                                    rng.next_below(6 * 1024));
    const std::uint64_t seed = rng.next();
    expect_swept_input_clean(
        "n=" + std::to_string(n) + " seed=" + std::to_string(seed),
        [&] { return apps::MergesortApp(n, seed); });
  }
}

TEST(RaceSweepTest, FftCertifiesAcrossSizes) {
  util::Xoshiro256 rng(0xFF7F5EEDu);
  for (int s = 0; s < sweep_n(); ++s) {
    // Power-of-two sizes spanning several recursion depths.
    const std::size_t n = std::size_t{1} << (6 + rng.next_below(6));
    const std::uint64_t seed = rng.next();
    expect_swept_input_clean(
        "n=" + std::to_string(n) + " seed=" + std::to_string(seed),
        [&] { return apps::FftApp(n, seed); });
  }
}

// The blocked kernels' spawn trees depend on the (n, block) tile shape:
// ragged edge tiles, block ≥ n (one tile), and block = 1 (degenerate
// tiles) all change the phase structure, so the tile geometry is swept
// the same way Mergesort sweeps its cutoffs.

TEST(RaceSweepTest, BlockedCholeskyCertifiesAcrossTileShapes) {
  util::Xoshiro256 rng(0xB10C0CE0u);
  for (int s = 0; s < sweep_n(); ++s) {
    const std::size_t n = 8 + rng.next_below(17);        // 8..24
    const std::size_t block = 1 + rng.next_below(n + 2);  // 1..n+2
    const std::uint64_t seed = rng.next();
    expect_swept_input_clean(
        "n=" + std::to_string(n) + " block=" + std::to_string(block) +
            " seed=" + std::to_string(seed),
        [&] { return apps::BlockedCholeskyApp(n, block, seed); });
  }
}

TEST(RaceSweepTest, BlockedLuCertifiesAcrossTileShapes) {
  util::Xoshiro256 rng(0xB10C0D1Du);
  for (int s = 0; s < sweep_n(); ++s) {
    const std::size_t n = 8 + rng.next_below(17);
    const std::size_t block = 1 + rng.next_below(n + 2);
    const std::uint64_t seed = rng.next();
    expect_swept_input_clean(
        "n=" + std::to_string(n) + " block=" + std::to_string(block) +
            " seed=" + std::to_string(seed),
        [&] { return apps::BlockedLuApp(n, block, seed); });
  }
}

// ---------------------------------------------------------------------
// 6. Mode agreement. FastTrack's replace-at-begin semantics make the
//    modeled relation for lock-free programs schedule-independent
//    (spawn/join edges only) — exactly the SP relation ESP-bags
//    certifies. On one worker the schedule is the serial elision, so
//    the two modes must return the same verdict for the whole corpus.
// ---------------------------------------------------------------------

class RaceModeAgreementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!mode_enabled(race::Mode::kSpBags) ||
        !mode_enabled(race::Mode::kFastTrack)) {
      GTEST_SKIP() << "agreement needs both modes enabled (DWS_RACE_MODE)";
    }
  }
};

TEST_F(RaceModeAgreementTest, OneWorkerVerdictsMatchAcrossTheAppCorpus) {
  std::vector<std::string> corpus(std::begin(apps::kAppNames),
                                  std::end(apps::kAppNames));
  corpus.emplace_back("BlockedCholesky");
  corpus.emplace_back("BlockedLU");
  for (const std::string& name : corpus) {
    SCOPED_TRACE(name);
    std::uint64_t found[2] = {0, 0};
    for (race::Mode mode : kBothModes) {
      auto app = apps::make_app(name, apps::Scale::kTiny);
      ASSERT_NE(app, nullptr);
      rt::Scheduler sched(make_config(1));
      race::Replay replay(sched, mode);
      app->run(sched);
      replay.finish();
      found[static_cast<std::size_t>(mode)] = replay.races_found();
      EXPECT_EQ(app->verify(), "") << mode_tag(mode);
    }
    EXPECT_EQ(found[0], 0u) << "spbags flagged a Table-2 app";
    EXPECT_EQ(found[1], 0u) << "fasttrack disagrees with spbags";
  }
}

TEST_F(RaceModeAgreementTest, OneWorkerVerdictsMatchOnSeededRacyKernels) {
  // Overlapping-by-one-granule sibling writes at seeded widths: both
  // modes must flag every instance.
  util::Xoshiro256 rng(0xA62EE111u);
  for (int s = 0; s < sweep_n(); ++s) {
    const std::size_t span = 8 + static_cast<std::size_t>(rng.next_below(57));
    bool raced[2] = {false, false};
    for (race::Mode mode : kBothModes) {
      rt::Scheduler sched(make_config(1));
      race::Replay replay(sched, mode);
      {
        race::region scope("agreement-mutant");
        std::vector<double> buf(2 * span + 1, 0.0);
        rt::TaskGroup g;
        sched.spawn(g, [&] { race::write(buf.data(), span + 1); });
        sched.spawn(g, [&] { race::write(buf.data() + span, span); });
        sched.wait(g);
      }
      raced[static_cast<std::size_t>(mode)] = !replay.finish().empty();
    }
    EXPECT_TRUE(raced[0]) << "span=" << span;
    EXPECT_EQ(raced[0], raced[1]) << "span=" << span;
  }
}

}  // namespace
}  // namespace dws

// Custom driver: gtest_main's main is not pulled in because this TU
// defines one. --sweep=N (or DWS_RACE_SWEEP=N) widens the seeded-input
// sweep; the default stays small so the plain ctest run is fast.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);  // strips gtest's own flags
  int sweep = 3;
  if (const char* env = std::getenv("DWS_RACE_SWEEP"); env != nullptr) {
    sweep = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sweep=", 8) == 0) {
      sweep = std::atoi(argv[i] + 8);
    }
  }
  dws::g_sweep = sweep < 1 ? 1 : (sweep > 16 ? 16 : sweep);
  return RUN_ALL_TESTS();
}
