// SP-bags / ALL-SETS determinacy-race detector tests (ctest label: race).
//
// Layers:
//  1. detector unit tests against hand-built spawn trees — the SP
//     relation (siblings parallel, wait serializes), read/write rules,
//     strided-disjointness, provenance chains, and the ALL-SETS lockset
//     semantics (common lock serializes, disjoint locksets race, locks
//     do not cross spawns, pruning keeps locker lists small);
//  2. clean certification — each Table-2 app (including PNN's locked
//     combine) plus the tiled BlockedCholesky/BlockedLU kernels replays
//     serially with zero reports AND verifies;
//  3. seeded racy mutants — one deliberately broken kernel per app
//     pattern, each of which must be flagged with a provenance chain
//     naming the mutant's race::region (and, for the lock mutants, the
//     lock provenance that would have serialized the pair);
//  4. simulator-DAG certification — every DagProfile generator's TaskDag
//     is executed as the fork-join program it encodes (apps/dag_replay)
//     under the detector, so the simulated DAGs ship with the same
//     certificate as the real kernels;
//  5. seeded-input sweep — input-dependent kernels (Mergesort cutoffs,
//     FFT sizes) are certified across N seeded inputs; N comes from
//     --sweep=N or DWS_RACE_SWEEP (default 3, clamped to [1, 16]).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.hpp"
#include "apps/dag_replay.hpp"
#include "apps/fft.hpp"
#include "apps/mergesort.hpp"
#include "apps/profiles.hpp"
#include "race/spbags.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "util/rng.hpp"

namespace dws {
namespace {

/// Seeded-input sweep width, set by main() from --sweep=N or the
/// DWS_RACE_SWEEP environment variable.
int g_sweep = 3;

int sweep_n() { return g_sweep; }

Config make_config(unsigned cores) {
  Config cfg;
  cfg.mode = SchedMode::kDws;
  cfg.num_cores = cores;
  cfg.pin_threads = false;
  return cfg;
}

/// True if any report's provenance (either side) mentions `needle`.
bool any_chain_mentions(const std::vector<race::RaceReport>& reports,
                        const std::string& needle) {
  for (const auto& r : reports) {
    for (const auto& hop : r.prior_chain) {
      if (hop.find(needle) != std::string::npos) return true;
    }
    for (const auto& hop : r.current_chain) {
      if (hop.find(needle) != std::string::npos) return true;
    }
  }
  return false;
}

std::string dump(const std::vector<race::RaceReport>& reports) {
  std::string s;
  for (const auto& r : reports) s += r.to_string() + "\n";
  return s;
}

// ---------------------------------------------------------------------
// 1. Detector unit tests.
// ---------------------------------------------------------------------

TEST(SpBagsTest, SiblingWritesSameAddressRace) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::write(&x);
      x = 1.0;
    });
    sched.spawn(g, [&] {
      race::write(&x);
      x = 2.0;
    });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(reports[0].prior, race::Access::kWrite);
    EXPECT_EQ(reports[0].current, race::Access::kWrite);
    EXPECT_EQ(reports[0].addr, reinterpret_cast<std::uintptr_t>(&x) &
                                   ~std::uintptr_t{7});
  }
}

TEST(SpBagsTest, WaitSerializesAccesses) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g1;
    sched.spawn(g1, [&] {
      race::write(&x);
      x = 1.0;
    });
    sched.wait(g1);
    // After the wait the first task is a serial predecessor: no race.
    rt::TaskGroup g2;
    sched.spawn(g2, [&] {
      race::write(&x);
      x = 2.0;
    });
    sched.wait(g2);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
  }
}

TEST(SpBagsTest, ParallelReadsAreNotARace) {
  rt::Scheduler sched(make_config(2));
  const double x = 42.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    for (int i = 0; i < 4; ++i) {
      sched.spawn(g, [&] { race::read(&x); });
    }
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
  }
}

TEST(SpBagsTest, ParallelReadAndWriteRace) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] { race::read(&x); });
    sched.spawn(g, [&] {
      race::write(&x);
      x = 1.0;
    });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(reports[0].prior, race::Access::kRead);
    EXPECT_EQ(reports[0].current, race::Access::kWrite);
  }
}

TEST(SpBagsTest, ContinuationRacesWithSpawnedChild) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::write(&x);
      x = 1.0;
    });
    // The parent's continuation before wait() is parallel with the child.
    race::read(&x);
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(reports[0].prior, race::Access::kWrite);
    EXPECT_EQ(reports[0].current, race::Access::kRead);
  }
}

TEST(SpBagsTest, StridedAccessesWithDisjointParityDoNotRace) {
  rt::Scheduler sched(make_config(2));
  std::vector<double> v(64, 0.0);
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    // Even granules vs odd granules: interleaved but disjoint.
    sched.spawn(g, [&] { race::write(v.data(), 32, 2); });
    sched.spawn(g, [&] { race::write(v.data() + 1, 32, 2); });
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
  }
}

TEST(SpBagsTest, ReplayRunsInlineOnSubmittingThread) {
  rt::Scheduler sched(make_config(2));
  const auto main_id = std::this_thread::get_id();
  int order = 0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      EXPECT_EQ(std::this_thread::get_id(), main_id);
      EXPECT_EQ(order, 0);  // depth-first: runs at the spawn site
      order = 1;
    });
    EXPECT_EQ(order, 1);
    sched.spawn(g, [&] { order = 2; });
    EXPECT_EQ(order, 2);
    sched.wait(g);
    EXPECT_EQ(replay.detector().tasks_executed(), 2u);
  }
}

TEST(SpBagsTest, ProvenanceChainsAreRootFirstAndCarryRegions) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    race::region scope("outer-kernel");
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::write(&x);
      // Nested spawn: the inner task's chain goes root > outer > inner.
      rt::TaskGroup inner;
      sched.spawn(inner, [&] { race::write(&x); });
      sched.wait(inner);
    });
    sched.spawn(g, [&] { race::write(&x); });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_FALSE(reports.empty());
    for (const auto& r : reports) {
      ASSERT_FALSE(r.prior_chain.empty());
      ASSERT_FALSE(r.current_chain.empty());
      EXPECT_EQ(r.prior_chain.front(), "root");
      EXPECT_EQ(r.current_chain.front(), "root");
    }
    EXPECT_TRUE(any_chain_mentions(reports, "outer-kernel")) << dump(reports);
  }
}

TEST(SpBagsTest, DuplicatePairsAreReportedOnce) {
  rt::Scheduler sched(make_config(2));
  std::vector<double> v(16, 0.0);
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    // Two tasks conflicting on 16 granules: one report, 16 found.
    sched.spawn(g, [&] { race::write(v.data(), v.size()); });
    sched.spawn(g, [&] { race::write(v.data(), v.size()); });
    sched.wait(g);
    const auto& reports = replay.finish();
    EXPECT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(replay.detector().races_found(), v.size());
  }
}

TEST(SpBagsTest, ParallelForSubrangesDoNotRaceOnDisjointBlocks) {
  rt::Scheduler sched(make_config(2));
  std::vector<double> v(256, 0.0);
  {
    race::Replay replay(sched);
    rt::parallel_for(sched, 0, 256, 16, [&](std::int64_t b, std::int64_t e) {
      race::write(v.data() + b, static_cast<std::size_t>(e - b));
      for (std::int64_t i = b; i < e; ++i) v[static_cast<std::size_t>(i)] = 1;
    });
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
    EXPECT_GT(replay.detector().tasks_executed(), 1u);
  }
}

// ---------------------------------------------------------------------
// 1b. ALL-SETS lockset semantics.
// ---------------------------------------------------------------------

TEST(LocksetTest, CommonLockSerializesParallelWrites) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  std::mutex m;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    for (int i = 0; i < 4; ++i) {
      sched.spawn(g, [&] {
        race::scoped_lock<std::mutex> lock(m, "x-lock");
        race::write(&x);
        x += 1.0;
      });
    }
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
    EXPECT_EQ(replay.detector().locks_seen(), 1u);
    EXPECT_GT(replay.detector().granules_checked(), 0u);
  }
}

TEST(LocksetTest, DisjointLocksStillRace) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  std::mutex ma, mb;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(ma, "lock-a");
      race::write(&x);
    });
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(mb, "lock-b");
      race::write(&x);
    });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    // Lock provenance: each side's (disjoint) lockset, by name.
    ASSERT_EQ(reports[0].prior_locks.size(), 1u);
    ASSERT_EQ(reports[0].current_locks.size(), 1u);
    EXPECT_EQ(reports[0].prior_locks[0], "lock-a");
    EXPECT_EQ(reports[0].current_locks[0], "lock-b");
    const std::string s = reports[0].to_string();
    EXPECT_NE(s.find("lock-a"), std::string::npos) << s;
    EXPECT_NE(s.find("lock-b"), std::string::npos) << s;
    EXPECT_NE(s.find("would have serialized"), std::string::npos) << s;
  }
}

TEST(LocksetTest, LockedVersusUnlockedAccessRaces) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  std::mutex m;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(m, "half-lock");
      race::write(&x);
    });
    sched.spawn(g, [&] { race::write(&x); });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    ASSERT_EQ(reports[0].prior_locks.size(), 1u);
    EXPECT_EQ(reports[0].prior_locks[0], "half-lock");
    EXPECT_TRUE(reports[0].current_locks.empty());
  }
}

TEST(LocksetTest, NoLockReportSaysSo) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] { race::write(&x); });
    sched.spawn(g, [&] { race::write(&x); });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_NE(reports[0].to_string().find("no locks held by either access"),
              std::string::npos)
        << reports[0].to_string();
  }
}

TEST(LocksetTest, LocksDoNotCrossSpawns) {
  // A child spawned while the parent holds a lock does NOT inherit it:
  // in a parallel schedule the child runs on a worker that does not own
  // the parent's mutex.
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  std::mutex m;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    {
      race::scoped_lock<std::mutex> lock(m, "parent-lock");
      sched.spawn(g, [&] { race::write(&x); });  // child: no lockset
      race::write(&x);  // parent continuation: holds parent-lock
    }
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_TRUE(reports[0].prior_locks.empty()) << dump(reports);
    ASSERT_EQ(reports[0].current_locks.size(), 1u);
    EXPECT_EQ(reports[0].current_locks[0], "parent-lock");
  }
}

TEST(LocksetTest, RecursiveHoldIsAMultiset) {
  // acquire-acquire-release leaves the lock held (one release per
  // acquire), so the access still carries it.
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  std::mutex m;  // annotated manually: std::mutex is not recursive
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::lock_acquire(&m, "recursive-lock");
      race::lock_acquire(&m);
      race::lock_release(&m);
      race::write(&x);  // still protected
      race::lock_release(&m);
    });
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(m, "recursive-lock");
      race::write(&x);
    });
    sched.wait(g);
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
  }
}

TEST(LocksetTest, HandOverHandLockingTracksTheHeldSet) {
  // acquire A, acquire B, release A: the access under {B} is safe
  // against a parallel access under {B}, races against one under {A}.
  rt::Scheduler sched(make_config(2));
  double x = 0.0, y = 0.0;
  std::mutex a, b;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      race::lock_acquire(&a, "hoh-a");
      race::lock_acquire(&b, "hoh-b");
      race::lock_release(&a);
      race::write(&x);  // under {B} only
      race::write(&y);
      race::lock_release(&b);
    });
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(b, "hoh-b");
      race::write(&x);  // common lock B: no race
    });
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(a, "hoh-a");
      race::write(&y);  // holds A, prior was under {B}: race
    });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
    EXPECT_EQ(reports[0].addr,
              reinterpret_cast<std::uintptr_t>(&y) & ~std::uintptr_t{7});
  }
}

TEST(LocksetTest, ScopedLockEndsProtectionAtScopeExit) {
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  std::mutex m;
  {
    race::Replay replay(sched);
    rt::TaskGroup g;
    sched.spawn(g, [&] {
      { race::scoped_lock<std::mutex> lock(m, "scope-lock"); }
      race::write(&x);  // after the scope: unprotected
    });
    sched.spawn(g, [&] {
      race::scoped_lock<std::mutex> lock(m, "scope-lock");
      race::write(&x);
    });
    sched.wait(g);
    const auto& reports = replay.finish();
    ASSERT_EQ(reports.size(), 1u) << dump(reports);
  }
}

TEST(LocksetTest, SerialPredecessorsArePrunedFromLockerLists) {
  // Spawn+wait in sequence: each new write subsumes the previous serial
  // one under the ALL-SETS pruning rule, so the locker list stays at one
  // entry and prune events are observable.
  rt::Scheduler sched(make_config(2));
  double x = 0.0;
  {
    race::Replay replay(sched);
    for (int i = 0; i < 4; ++i) {
      rt::TaskGroup g;
      sched.spawn(g, [&] { race::write(&x); });
      sched.wait(g);
    }
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
    EXPECT_GE(replay.detector().lockers_pruned(), 3u);
  }
}

TEST(LocksetTest, ParallelReduceCombineCertifiesUnderItsLock) {
  // parallel_reduce's combine step runs under an annotated internal
  // lock; a reduction whose combine annotates the shared accumulator
  // must certify clean — this is exactly the PNN pattern.
  rt::Scheduler sched(make_config(2));
  struct Acc {
    std::vector<double> v;
  };
  {
    race::Replay replay(sched);
    Acc init;
    init.v.assign(8, 0.0);
    const std::size_t n = init.v.size();
    Acc total = rt::parallel_reduce<Acc>(
        sched, 0, 64, 4, std::move(init),
        [n](std::int64_t b, std::int64_t e) {
          Acc p;
          p.v.assign(n, static_cast<double>(e - b));
          return p;
        },
        [n](Acc a, Acc b) {
          race::write(a.v.data(), n);
          race::read(b.v.data(), n);
          for (std::size_t k = 0; k < n; ++k) a.v[k] += b.v[k];
          return a;
        });
    EXPECT_TRUE(replay.finish().empty()) << dump(replay.finish());
    EXPECT_EQ(replay.detector().locks_seen(), 1u);
    EXPECT_DOUBLE_EQ(total.v[0], 64.0);
  }
}

// ---------------------------------------------------------------------
// 2. Clean certification: every Table-2 app replays race-free and
//    verifies under the serial-elision schedule.
// ---------------------------------------------------------------------

class RaceCleanTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RaceCleanTest, AppReplaysWithoutRaces) {
  auto app = apps::make_app(GetParam(), apps::Scale::kSmall);
  ASSERT_NE(app, nullptr);
  rt::Scheduler sched(make_config(2));
  race::Replay replay(sched);
  app->run(sched);
  const auto& reports = replay.finish();
  EXPECT_TRUE(reports.empty()) << dump(reports);
  EXPECT_GT(replay.detector().granules_checked(), 0u)
      << "app is not annotated — the clean result is vacuous";
  EXPECT_EQ(app->verify(), "");
}

INSTANTIATE_TEST_SUITE_P(Table2, RaceCleanTest,
                         ::testing::ValuesIn(apps::kAppNames));

// The tiled kernels: their block-dependency structure (phase waits +
// per-phase tile disjointness) is exactly where a stale-tile race would
// hide, so they get the same clean certification as the Table-2 apps.
INSTANTIATE_TEST_SUITE_P(BlockedLinalg, RaceCleanTest,
                         ::testing::Values("BlockedCholesky", "BlockedLU"));

// ---------------------------------------------------------------------
// 3. Seeded racy mutants: one representative broken kernel per app
//    pattern. Each must be flagged, with provenance naming the mutant.
// ---------------------------------------------------------------------

/// Runs `kernel` under replay and checks it is flagged with provenance
/// pointing at `region_name`.
template <typename Kernel>
void expect_mutant_flagged(const char* region_name, Kernel&& kernel) {
  rt::Scheduler sched(make_config(2));
  race::Replay replay(sched);
  {
    race::region scope(region_name);
    kernel(sched);
  }
  const auto& reports = replay.finish();
  ASSERT_FALSE(reports.empty()) << "mutant " << region_name << " not flagged";
  EXPECT_TRUE(any_chain_mentions(reports, region_name)) << dump(reports);
}

TEST(RaceMutantTest, FftSharedScratchBetweenHalves) {
  // Mutant: both recursive halves use the SAME scratch range instead of
  // disjoint halves.
  expect_mutant_flagged("FFT-mutant", [](rt::Scheduler& sched) {
    std::vector<double> scratch(64, 0.0);
    rt::parallel_invoke(
        sched, [&] { race::write(scratch.data(), 64); },
        [&] { race::write(scratch.data(), 64); });
  });
}

TEST(RaceMutantTest, PnnSharedGradientWithoutReduction) {
  // Mutant: map tasks accumulate into one shared gradient vector instead
  // of task-local partials.
  expect_mutant_flagged("PNN-mutant", [](rt::Scheduler& sched) {
    std::vector<double> grad(32, 0.0);
    rt::parallel_for(sched, 0, 64, 8, [&](std::int64_t, std::int64_t) {
      race::read(grad.data(), grad.size());
      race::write(grad.data(), grad.size());
    });
  });
}

TEST(RaceMutantTest, CholeskyFusedScaleAndUpdate) {
  // Mutant: the column-k scale and the trailing update run in ONE
  // parallel_for, so updates read column k while the scale rewrites it.
  expect_mutant_flagged("Cholesky-mutant", [](rt::Scheduler& sched) {
    const std::size_t n = 16, k = 0;
    std::vector<double> l(n * n, 1.0);
    double* lp = l.data();
    rt::parallel_for(sched, 1, static_cast<std::int64_t>(n), 4,
                     [lp, n, k](std::int64_t b, std::int64_t e) {
                       race::write(lp + b * n + k,
                                   static_cast<std::size_t>(e - b),
                                   static_cast<std::ptrdiff_t>(n));
                       race::read(lp + (k + 1) * n + k, n - k - 1,
                                  static_cast<std::ptrdiff_t>(n));
                     });
  });
}

TEST(RaceMutantTest, LuEliminationRangeIncludesPivotRow) {
  // Mutant: the update range starts at k instead of k+1 — the pivot row
  // is rewritten while every other row reads it.
  expect_mutant_flagged("LU-mutant", [](rt::Scheduler& sched) {
    const std::size_t n = 16, k = 2;
    std::vector<double> lu(n * n, 1.0);
    double* p = lu.data();
    rt::parallel_for(sched, static_cast<std::int64_t>(k),
                     static_cast<std::int64_t>(n), 4,
                     [p, n, k](std::int64_t rb, std::int64_t re) {
                       race::read(p + k * n + k, n - k);
                       for (std::int64_t i = rb; i < re; ++i) {
                         race::write(p + i * n + k, n - k);
                       }
                     });
  });
}

TEST(RaceMutantTest, GeEliminationClobbersPivotRhs) {
  // Mutant: like LU but on the right-hand side — b[k] is read by every
  // row update while the k-th task overwrites it.
  expect_mutant_flagged("GE-mutant", [](rt::Scheduler& sched) {
    const std::size_t n = 16, k = 1;
    std::vector<double> b(n, 1.0);
    double* bp = b.data();
    rt::parallel_for(sched, static_cast<std::int64_t>(k),
                     static_cast<std::int64_t>(n), 4,
                     [bp, k](std::int64_t rb, std::int64_t re) {
                       race::read(bp + k);
                       for (std::int64_t i = rb; i < re; ++i) {
                         race::write(bp + i);
                       }
                     });
  });
}

TEST(RaceMutantTest, HeatInPlaceJacobi) {
  // Mutant: Jacobi without the double buffer — rows are updated in place
  // while neighbouring tasks read them.
  expect_mutant_flagged("Heat-mutant", [](rt::Scheduler& sched) {
    const std::size_t rows = 32, cols = 16;
    std::vector<double> g(rows * cols, 0.0);
    double* gp = g.data();
    rt::parallel_for(sched, 1, static_cast<std::int64_t>(rows) - 1, 4,
                     [gp, cols](std::int64_t rb, std::int64_t re) {
                       for (std::int64_t r = rb; r < re; ++r) {
                         race::read(gp + (r - 1) * cols, 3 * cols);
                         race::write(gp + r * cols + 1, cols - 2);
                       }
                     });
  });
}

TEST(RaceMutantTest, SorBothColorsInOneSweep) {
  // Mutant: red and black cells updated in the same sweep — a row's
  // writes hit cells its neighbours read in the same parallel region.
  expect_mutant_flagged("SOR-mutant", [](rt::Scheduler& sched) {
    const std::size_t rows = 32, cols = 16;
    std::vector<double> g(rows * cols, 0.0);
    double* gp = g.data();
    rt::parallel_for(sched, 1, static_cast<std::int64_t>(rows) - 1, 4,
                     [gp, cols](std::int64_t rb, std::int64_t re) {
                       for (std::int64_t r = rb; r < re; ++r) {
                         race::write(gp + r * cols + 1, cols - 2);
                         race::read(gp + (r - 1) * cols, 3 * cols);
                       }
                     });
  });
}

TEST(RaceMutantTest, MergesortOverlappingMergeBuffers) {
  // Mutant: both halves merge through overlapping scratch ranges.
  expect_mutant_flagged("Mergesort-mutant", [](rt::Scheduler& sched) {
    std::vector<std::int64_t> buf(64, 0);
    rt::parallel_invoke(
        sched, [&] { race::write(buf.data(), 48); },
        [&] { race::write(buf.data() + 16, 48); });
  });
}

TEST(RaceMutantTest, PnnCombineMissingTheLock) {
  // Mutant of PNN's reduction: every leaf folds its partial into the
  // shared gradient accumulator under the combine lock — except one,
  // which "forgot" it. The lockset detector must flag exactly that pair
  // and name the lock that would have serialized it.
  rt::Scheduler sched(make_config(2));
  race::Replay replay(sched);
  {
    race::region scope("PNN-combine-mutant");
    std::vector<double> acc(16, 0.0);
    std::mutex m;
    rt::parallel_for(sched, 0, 64, 8,
                     [&](std::int64_t b, std::int64_t /*e*/) {
                       if (b == 0) {
                         // The missing-lock leaf.
                         race::write(acc.data(), acc.size());
                       } else {
                         race::scoped_lock<std::mutex> lock(m, "combine-lock");
                         race::write(acc.data(), acc.size());
                       }
                     });
  }
  const auto& reports = replay.finish();
  ASSERT_FALSE(reports.empty()) << "missing-lock combine not flagged";
  EXPECT_TRUE(any_chain_mentions(reports, "PNN-combine-mutant"))
      << dump(reports);
  // Lock provenance: one side held combine-lock, the other held nothing.
  bool provenance_ok = false;
  for (const auto& r : reports) {
    const bool one_sided =
        (r.prior_locks.empty() && r.current_locks.size() == 1 &&
         r.current_locks[0] == "combine-lock") ||
        (r.current_locks.empty() && r.prior_locks.size() == 1 &&
         r.prior_locks[0] == "combine-lock");
    if (one_sided) provenance_ok = true;
  }
  EXPECT_TRUE(provenance_ok) << dump(reports);
  EXPECT_NE(dump(reports).find("would have serialized"), std::string::npos);
}

TEST(RaceMutantTest, BlockedLuStaleTileRead) {
  // Mutant of BlockedLU's phase structure: the GEMM trailing update runs
  // in the SAME parallel region as the U-solve, so gemm(i, j, k) reads
  // tile (I, K) while trsm_u is still writing it — a stale-tile race.
  rt::Scheduler sched(make_config(2));
  race::Replay replay(sched);
  {
    race::region scope("BlockedLU-mutant");
    const std::size_t n = 16, b = 4;
    std::vector<double> lu(n * n, 1.0);
    double* p = lu.data();
    // Tiles at block coordinates: diagonal (1,1) rows/cols [4,8).
    rt::parallel_invoke(
        sched,
        [&] {
          // trsm_u: writes tile (1, 0) — rows [4,8) cols [0,4).
          for (std::size_t r = b; r < 2 * b; ++r) race::write(p + r * n, b);
        },
        [&] {
          // gemm(1, 1, 0): reads tiles (1, 0) and (0, 1), writes (1, 1).
          for (std::size_t r = b; r < 2 * b; ++r) race::read(p + r * n, b);
          for (std::size_t r = 0; r < b; ++r) race::read(p + r * n + b, b);
          for (std::size_t r = b; r < 2 * b; ++r) {
            race::write(p + r * n + b, b);
          }
        });
  }
  const auto& reports = replay.finish();
  ASSERT_FALSE(reports.empty()) << "stale-tile mutant not flagged";
  EXPECT_TRUE(any_chain_mentions(reports, "BlockedLU-mutant"))
      << dump(reports);
  // No locks anywhere near the tile phases: the report must say so.
  EXPECT_NE(dump(reports).find("no locks held by either access"),
            std::string::npos)
      << dump(reports);
}

// ---------------------------------------------------------------------
// 4. Simulator-DAG certification: every DagProfile generator's TaskDag,
//    executed as the fork-join program it encodes, replays clean — the
//    simulated DAGs carry the same certificate as the real kernels.
// ---------------------------------------------------------------------

class SimDagCertTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SimDagCertTest, ProfileDagReplaysClean) {
  const apps::SimAppProfile profile = apps::make_sim_profile(GetParam());
  ASSERT_EQ(profile.dag.validate(), "");
  rt::Scheduler sched(make_config(2));
  race::Replay replay(sched);
  const apps::DagReplayStats stats = apps::replay_dag(sched, profile.dag);
  const auto& reports = replay.finish();
  EXPECT_TRUE(reports.empty()) << dump(reports);
  ASSERT_TRUE(stats.clean()) << stats.defects.front();
  EXPECT_EQ(stats.executions, profile.dag.size());
  EXPECT_NEAR(stats.work_replayed, profile.dag.total_work(),
              1e-9 * profile.dag.total_work());
  EXPECT_GT(replay.detector().granules_checked(), 0u)
      << "DAG replay is not annotated — the clean result is vacuous";
}

INSTANTIATE_TEST_SUITE_P(Profiles, SimDagCertTest,
                         ::testing::ValuesIn(apps::sim_profile_names()));

TEST(SimDagCertTest, MergesortDagReplaysClean) {
  const sim::TaskDag dag = apps::make_mergesort_dag(8, 25.0, 8.0, 0.6);
  ASSERT_EQ(dag.validate(), "");
  rt::Scheduler sched(make_config(2));
  race::Replay replay(sched);
  const apps::DagReplayStats stats = apps::replay_dag(sched, dag);
  EXPECT_TRUE(replay.finish().empty());
  EXPECT_TRUE(stats.clean()) << stats.defects.front();
  EXPECT_EQ(stats.executions, dag.size());
}

TEST(SimDagCertTest, ReplayFlagsNestedChainClaimingOuterJoin) {
  // Adversarial DAG that PASSES TaskDag::validate() (every node enabled
  // exactly once, acyclic, reachable) but is not a well-formed
  // fork-join program: the inner split's child chain terminates at the
  // OUTER join instead of its own. The replay certificate catches what
  // static validation cannot.
  sim::TaskDag dag;
  const sim::NodeId s = dag.add_node(1.0);   // outer split
  const sim::NodeId a = dag.add_node(1.0);   // child: inner split
  const sim::NodeId b = dag.add_node(1.0);   // child: plain chain
  const sim::NodeId j = dag.add_node(1.0);   // outer join
  const sim::NodeId a1 = dag.add_node(1.0);  // inner child
  const sim::NodeId ja = dag.add_node(1.0);  // inner join
  dag.set_root(s);
  dag.add_spawn(s, a);
  dag.add_spawn(s, b);
  dag.set_continuation(s, j);
  dag.set_continuation(b, j);
  dag.add_spawn(a, a1);
  dag.set_continuation(a, ja);
  dag.set_continuation(a1, j);  // WRONG: claims the outer join
  dag.set_continuation(ja, j);
  ASSERT_EQ(dag.validate(), "") << "defect must be invisible to validate()";
  rt::Scheduler sched(make_config(2));
  race::Replay replay(sched);
  const apps::DagReplayStats stats = apps::replay_dag(sched, dag);
  replay.finish();
  EXPECT_FALSE(stats.clean())
      << "replay certified a DAG that is not a fork-join program";
}

TEST(SimDagCertTest, ReplayFlagsSplitWithoutAJoin) {
  // A split with no continuation also passes validate() (the enabling
  // discipline has nothing to say about a missing join), but the spawned
  // child's completion signal has nowhere to land — not a fork-join
  // program, and the replay says so.
  sim::TaskDag dag;
  const sim::NodeId root = dag.add_node(1.0);
  const sim::NodeId child = dag.add_node(1.0);
  dag.set_root(root);
  dag.add_spawn(root, child);  // spawned, but root has no join
  ASSERT_EQ(dag.validate(), "");
  rt::Scheduler sched(make_config(2));
  race::Replay replay(sched);
  const apps::DagReplayStats stats = apps::replay_dag(sched, dag);
  replay.finish();
  EXPECT_FALSE(stats.clean());
}

// ---------------------------------------------------------------------
// 5. Seeded-input replay sweep: one serial replay certifies one DAG, so
//    input-dependent kernels are swept across N seeded inputs.
// ---------------------------------------------------------------------

TEST(RaceSweepTest, MergesortCertifiesAcrossSeededInputs) {
  util::Xoshiro256 rng(0xD5EEDCAFEu);
  for (int s = 0; s < sweep_n(); ++s) {
    // Sizes straddle the sort/merge cutoffs, so the spawn tree (not just
    // the data) changes per input.
    const std::size_t n = 512 + static_cast<std::size_t>(
                                    rng.next_below(6 * 1024));
    const std::uint64_t seed = rng.next();
    apps::MergesortApp app(n, seed);
    rt::Scheduler sched(make_config(2));
    race::Replay replay(sched);
    app.run(sched);
    const auto& reports = replay.finish();
    EXPECT_TRUE(reports.empty())
        << "n=" << n << " seed=" << seed << "\n" << dump(reports);
    EXPECT_EQ(app.verify(), "") << "n=" << n << " seed=" << seed;
  }
}

TEST(RaceSweepTest, FftCertifiesAcrossSizes) {
  util::Xoshiro256 rng(0xFF7F5EEDu);
  for (int s = 0; s < sweep_n(); ++s) {
    // Power-of-two sizes spanning several recursion depths.
    const std::size_t n = std::size_t{1} << (6 + rng.next_below(6));
    const std::uint64_t seed = rng.next();
    apps::FftApp app(n, seed);
    rt::Scheduler sched(make_config(2));
    race::Replay replay(sched);
    app.run(sched);
    const auto& reports = replay.finish();
    EXPECT_TRUE(reports.empty())
        << "n=" << n << " seed=" << seed << "\n" << dump(reports);
    EXPECT_EQ(app.verify(), "") << "n=" << n << " seed=" << seed;
  }
}

}  // namespace
}  // namespace dws

// Custom driver: gtest_main's main is not pulled in because this TU
// defines one. --sweep=N (or DWS_RACE_SWEEP=N) widens the seeded-input
// sweep; the default stays small so the plain ctest run is fast.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);  // strips gtest's own flags
  int sweep = 3;
  if (const char* env = std::getenv("DWS_RACE_SWEEP"); env != nullptr) {
    sweep = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sweep=", 8) == 0) {
      sweep = std::atoi(argv[i] + 8);
    }
  }
  dws::g_sweep = sweep < 1 ? 1 : (sweep > 16 ? 16 : sweep);
  return RUN_ALL_TESTS();
}
