// Tests for runtime observability (Observer) and harness CSV export.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>

#include "harness/export.hpp"
#include "runtime/api.hpp"
#include "runtime/observer.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace dws {
namespace {

using namespace std::chrono_literals;

rt::Scheduler* make_sched(std::unique_ptr<rt::Scheduler>& holder,
                          SchedMode mode) {
  Config cfg;
  cfg.mode = mode;
  cfg.num_cores = 2;
  cfg.pin_threads = false;
  cfg.coordinator_period_ms = 2.0;
  holder = std::make_unique<rt::Scheduler>(cfg);
  return holder.get();
}

TEST(Observer, ManualSamplingRecordsPlausibleValues) {
  std::unique_ptr<rt::Scheduler> holder;
  rt::Scheduler* sched = make_sched(holder, SchedMode::kDws);
  rt::Observer obs({sched}, /*period_ms=*/5.0);
  obs.sample_now();
  ASSERT_EQ(obs.num_targets(), 1u);
  ASSERT_EQ(obs.series(0).size(), 1u);
  const auto& s = obs.series(0)[0];
  EXPECT_LE(s.active_workers, 2u);
  EXPECT_LE(s.sleeping_workers, 2u);
  EXPECT_LE(s.cores_held, 2u);
}

TEST(Observer, BackgroundSamplingCollectsSeries) {
  std::unique_ptr<rt::Scheduler> holder;
  rt::Scheduler* sched = make_sched(holder, SchedMode::kAbp);
  rt::Observer obs({sched}, /*period_ms=*/1.0);
  obs.start();
  std::atomic<long> sink{0};
  // Keep the scheduler busy until several sampling periods have elapsed
  // (the workload itself may be arbitrarily fast on a big host).
  const auto deadline = std::chrono::steady_clock::now() + 50ms;
  while (std::chrono::steady_clock::now() < deadline) {
    rt::parallel_for_each_index(*sched, 0, 2000, 8, [&](std::int64_t i) {
      sink.fetch_add(i % 3, std::memory_order_relaxed);
    });
  }
  obs.stop();
  EXPECT_GE(obs.series(0).size(), 2u);
  // Timestamps are monotone.
  double prev = -1.0;
  for (const auto& s : obs.series(0)) {
    EXPECT_GT(s.t_ms, prev);
    prev = s.t_ms;
  }
}

TEST(Observer, CapacityBoundsTheSeries) {
  std::unique_ptr<rt::Scheduler> holder;
  rt::Scheduler* sched = make_sched(holder, SchedMode::kAbp);
  rt::Observer obs({sched}, 1.0, /*capacity=*/3);
  for (int i = 0; i < 10; ++i) obs.sample_now();
  EXPECT_EQ(obs.series(0).size(), 3u);
}

TEST(Observer, MultipleTargetsAndCsv) {
  std::unique_ptr<rt::Scheduler> h1, h2;
  rt::Scheduler* a = make_sched(h1, SchedMode::kDws);
  rt::Scheduler* b = make_sched(h2, SchedMode::kAbp);
  rt::Observer obs({a, b}, 5.0);
  obs.sample_now();
  obs.sample_now();
  std::ostringstream os;
  obs.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("t_ms,target,active,sleeping,queued,cores_held"),
            std::string::npos);
  // Two targets x two samples = 4 data lines + header.
  int lines = 0;
  for (char ch : csv) lines += (ch == '\n');
  EXPECT_EQ(lines, 5);
}

TEST(Observer, StartStopIdempotent) {
  std::unique_ptr<rt::Scheduler> holder;
  rt::Scheduler* sched = make_sched(holder, SchedMode::kAbp);
  rt::Observer obs({sched}, 1.0);
  obs.start();
  obs.start();  // no-op
  std::this_thread::sleep_for(5ms);
  obs.stop();
  obs.stop();  // no-op
  SUCCEED();
}

// ---- export ----

sim::SimResult tiny_sim_result() {
  static const sim::TaskDag dag =
      sim::make_fork_join_tree(4, 2, 50.0, 1.0, 1.0, 0.2);
  sim::SimParams params;
  params.num_cores = 4;
  params.num_sockets = 1;
  params.timeline_sample_period_us = 200.0;
  sim::SimProgramSpec a;
  a.name = "alpha";
  a.mode = SchedMode::kDws;
  a.dag = &dag;
  a.target_runs = 2;
  sim::SimProgramSpec b = a;
  b.name = "beta";
  sim::SimEngine engine(params, {a, b});
  return engine.run();
}

TEST(Export, ProgramsCsvHasOneRowPerProgram) {
  const sim::SimResult r = tiny_sim_result();
  std::ostringstream os;
  harness::write_programs_csv(os, r);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("alpha,"), std::string::npos);
  EXPECT_NE(csv.find("beta,"), std::string::npos);
  int lines = 0;
  for (char ch : csv) lines += (ch == '\n');
  EXPECT_EQ(lines, 3);  // header + 2 programs
}

TEST(Export, TimelineCsvMatchesSampleCount) {
  const sim::SimResult r = tiny_sim_result();
  std::ostringstream os;
  harness::write_timeline_csv(os, r);
  int lines = 0;
  for (char ch : os.str()) lines += (ch == '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), r.timeline.size() + 1);
  EXPECT_NE(os.str().find("active_alpha"), std::string::npos);
}

TEST(Export, CoresCsvHasOneRowPerCore) {
  const sim::SimResult r = tiny_sim_result();
  std::ostringstream os;
  harness::write_cores_csv(os, r);
  int lines = 0;
  for (char ch : os.str()) lines += (ch == '\n');
  EXPECT_EQ(lines, 5);  // header + 4 cores
}

TEST(Export, ExportResultWritesThreeFiles) {
  const sim::SimResult r = tiny_sim_result();
  const std::string dir = ::testing::TempDir() + "/dws_export_test";
  std::filesystem::create_directories(dir);
  const std::string err = harness::export_result(dir, "t1", r);
  EXPECT_EQ(err, "");
  for (const char* suffix :
       {"_programs.csv", "_timeline.csv", "_cores.csv"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/t1" + suffix)) << suffix;
  }
  std::filesystem::remove_all(dir);
}

TEST(Export, ExportResultReportsUnwritableDir) {
  const sim::SimResult r = tiny_sim_result();
  const std::string err =
      harness::export_result("/nonexistent_dir_for_dws_test", "x", r);
  EXPECT_NE(err, "");
}

}  // namespace
}  // namespace dws
