// Model-based fuzz test for the core allocation table: random sequences
// of claim/release/reclaim from several "programs" are applied both to
// the real lock-free table and to a trivial reference model; the states
// must match after every operation. Run single-threaded (the model is
// sequential); the separate concurrency tests cover raciness.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/core_table.hpp"
#include "util/rng.hpp"

namespace dws {
namespace {

/// The obviously-correct reference: an array of owners.
class ModelTable {
 public:
  ModelTable(unsigned cores, unsigned programs)
      : num_programs_(programs), user_(cores, kNoProgram) {}

  [[nodiscard]] ProgramId home_of(CoreId c) const {
    // Must match the real table's partition formula.
    return static_cast<ProgramId>(static_cast<std::uint64_t>(c) *
                                  num_programs_ / user_.size()) +
           1;
  }
  bool try_claim(CoreId c, ProgramId p) {
    if (user_[c] != kNoProgram) return false;
    user_[c] = p;
    return true;
  }
  bool try_reclaim(CoreId c, ProgramId p) {
    if (home_of(c) != p) return false;
    if (user_[c] == kNoProgram || user_[c] == p) return false;
    user_[c] = p;
    return true;
  }
  bool release(CoreId c, ProgramId p) {
    if (user_[c] != p) return false;
    user_[c] = kNoProgram;
    return true;
  }
  [[nodiscard]] ProgramId user_of(CoreId c) const { return user_[c]; }
  [[nodiscard]] unsigned count_free() const {
    unsigned n = 0;
    for (ProgramId u : user_) n += (u == kNoProgram);
    return n;
  }
  [[nodiscard]] unsigned count_borrowed_from(ProgramId p) const {
    unsigned n = 0;
    for (CoreId c = 0; c < user_.size(); ++c) {
      if (home_of(c) == p && user_[c] != kNoProgram && user_[c] != p) ++n;
    }
    return n;
  }

 private:
  unsigned num_programs_;
  std::vector<ProgramId> user_;
};

struct FuzzCase {
  unsigned cores;
  unsigned programs;
  std::uint64_t seed;
};

class CoreTableFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(CoreTableFuzz, MatchesReferenceModel) {
  const auto [cores, programs, seed] = GetParam();
  CoreTableLocal local(cores, programs);
  CoreTable& real = local.table();
  ModelTable model(cores, programs);
  util::Xoshiro256 rng(seed);

  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; ++i) {
    const auto c = static_cast<CoreId>(rng.next_below(cores));
    const auto p = static_cast<ProgramId>(1 + rng.next_below(programs));
    const auto op = rng.next_below(3);
    bool got = false, want = false;
    switch (op) {
      case 0:
        got = real.try_claim(c, p);
        want = model.try_claim(c, p);
        break;
      case 1:
        got = real.release(c, p);
        want = model.release(c, p);
        break;
      case 2:
        got = real.try_reclaim(c, p);
        want = model.try_reclaim(c, p);
        break;
    }
    ASSERT_EQ(got, want) << "op " << op << " core " << c << " pid " << p
                         << " at step " << i;
    ASSERT_EQ(real.user_of(c), model.user_of(c)) << "step " << i;
    // Periodically cross-check the aggregate views.
    if (i % 500 == 0) {
      ASSERT_EQ(real.count_free(), model.count_free()) << "step " << i;
      for (ProgramId q = 1; q <= programs; ++q) {
        ASSERT_EQ(real.count_borrowed_from(q), model.count_borrowed_from(q))
            << "pid " << q << " step " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CoreTableFuzz,
    ::testing::Values(FuzzCase{4, 2, 1}, FuzzCase{16, 2, 2},
                      FuzzCase{16, 4, 3}, FuzzCase{7, 3, 4},
                      FuzzCase{1, 1, 5}, FuzzCase{32, 5, 6},
                      FuzzCase{3, 8, 7}, FuzzCase{64, 8, 8}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.cores) + "_m" +
             std::to_string(info.param.programs) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(CoreTableFuzz, HomeFormulaMatchesModelEverywhere) {
  for (unsigned cores : {1u, 2u, 3u, 5u, 8u, 13u, 16u, 21u, 32u, 64u}) {
    for (unsigned programs : {1u, 2u, 3u, 4u, 7u, 8u}) {
      CoreTableLocal local(cores, programs);
      ModelTable model(cores, programs);
      for (CoreId c = 0; c < cores; ++c) {
        ASSERT_EQ(local.table().home_of(c), model.home_of(c))
            << "k=" << cores << " m=" << programs << " c=" << c;
      }
    }
  }
}

}  // namespace
}  // namespace dws
