// Behavioural tests of the two-level cache-warmth model, observed through
// engine results (warmth state is internal; penalties are the contract).
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace dws::sim {
namespace {

SimProgramSpec spec(const std::string& name, SchedMode mode,
                    const TaskDag* dag, unsigned runs, double mem) {
  SimProgramSpec s;
  s.name = name;
  s.mode = mode;
  s.dag = dag;
  s.target_runs = runs;
  s.default_mem_intensity = mem;
  return s;
}

TEST(CacheModel, WarmupAmortizesAcrossRepetitions) {
  // A memory-bound program starts with cold caches; later repetitions run
  // on warmed cores, so the first run is the slowest.
  const TaskDag dag = make_iterative_phases(10, 64, 80.0, 1.0, 1.0);
  SimParams p;
  p.num_cores = 4;
  p.num_sockets = 1;
  const SimResult r = simulate_solo(p, spec("m", SchedMode::kEp, &dag, 5, 1.0));
  const auto& times = r.programs[0].run_times_us;
  ASSERT_GE(times.size(), 5u);
  EXPECT_GT(times[0], times[4])
      << "first (cold) repetition should be the slowest";
  // And the later repetitions stabilize near each other.
  EXPECT_NEAR(times[3], times[4], 0.05 * times[4]);
}

TEST(CacheModel, ComputeBoundProgramsAreInsensitive) {
  const TaskDag dag = make_iterative_phases(10, 64, 80.0, 0.0, 1.0);
  SimParams hot;
  hot.num_cores = 4;
  hot.num_sockets = 1;
  SimParams off = hot;
  off.core_miss_penalty = 0.0;
  off.llc_miss_penalty = 0.0;
  const double with_model =
      simulate_solo(hot, spec("c", SchedMode::kEp, &dag, 2, 0.0))
          .programs[0]
          .mean_run_time_us;
  const double without_model =
      simulate_solo(off, spec("c", SchedMode::kEp, &dag, 2, 0.0))
          .programs[0]
          .mean_run_time_us;
  EXPECT_DOUBLE_EQ(with_model, without_model);
}

TEST(CacheModel, CrossSocketCoRunnerThrashesLessThanSameSocket) {
  // Two memory-bound EP programs on a 2-socket, 4-core machine. With the
  // home partition [0,1] vs [2,3], a 2-socket topology puts them on
  // different sockets (separate LLCs); a 1-socket topology makes them
  // share the LLC. The shared-LLC configuration must show a larger
  // total cache penalty.
  const TaskDag dag = make_iterative_phases(20, 32, 60.0, 1.0, 1.0);
  auto run_with_sockets = [&](unsigned sockets) {
    SimParams p;
    p.num_cores = 4;
    p.num_sockets = sockets;
    SimEngine e(p, {spec("a", SchedMode::kEp, &dag, 3, 1.0),
                    spec("b", SchedMode::kEp, &dag, 3, 1.0)});
    const SimResult r = e.run();
    return r.programs[0].cache_penalty_us + r.programs[1].cache_penalty_us;
  };
  const double shared_llc = run_with_sockets(1);
  const double split_llc = run_with_sockets(2);
  EXPECT_LT(split_llc, shared_llc)
      << "separate sockets must reduce LLC interference";
}

TEST(CacheModel, HigherMemIntensityMeansHigherPenalty) {
  SimParams p;
  p.num_cores = 4;
  p.num_sockets = 1;
  auto penalty_at = [&](double mem) {
    const TaskDag dag = make_iterative_phases(10, 32, 60.0, mem, 1.0);
    SimEngine e(p, {spec("a", SchedMode::kAbp, &dag, 2, mem),
                    spec("b", SchedMode::kAbp, &dag, 2, mem)});
    const SimResult r = e.run();
    return r.programs[0].cache_penalty_us + r.programs[1].cache_penalty_us;
  };
  const double low = penalty_at(0.2);
  const double high = penalty_at(0.9);
  EXPECT_GT(high, low * 1.5);
}

TEST(CacheModel, PenaltyNeverNegative) {
  const TaskDag dag = make_fork_join_tree(6, 2, 100.0, 1.0, 1.0, 0.5);
  SimParams p;
  p.num_cores = 4;
  p.num_sockets = 2;
  SimEngine e(p, {spec("a", SchedMode::kDws, &dag, 3, 0.5),
                  spec("b", SchedMode::kAbp, &dag, 3, 0.5)});
  const SimResult r = e.run();
  for (const auto& prog : r.programs) {
    EXPECT_GE(prog.cache_penalty_us, 0.0) << prog.name;
    // Penalty is part of exec wall time, never more than all of it.
    EXPECT_LE(prog.cache_penalty_us, prog.exec_time_us) << prog.name;
  }
}

}  // namespace
}  // namespace dws::sim
