// Seeded multi-thread stress test for ChaseLevDeque (companion to the
// model checks in test_check_deque.cpp, which explore tiny scenarios
// exhaustively — this one hammers the real std::atomic build with real
// threads): one owner pushing and popping against N thieves, verifying
// every pushed item is consumed exactly once, plus the grow() retirement
// bound under concurrent steals from a tiny initial capacity.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/deque.hpp"
#include "util/rng.hpp"

namespace dws {
namespace {

struct FuzzCase {
  int thieves;
  int items;
  std::uint64_t seed;
  std::size_t initial_capacity;
};

class DequeFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DequeFuzz, EveryItemConsumedExactlyOnce) {
  const auto [thieves, items, seed, initial_capacity] = GetParam();
  rt::ChaseLevDeque<int> dq(initial_capacity);

  // consumed[i] counts how often item i left the deque; exactly-once means
  // every slot ends at 1. Overcounts (duplication) are detected as > 1.
  std::vector<std::atomic<std::uint32_t>> consumed(
      static_cast<std::size_t>(items));
  std::atomic<bool> done{false};

  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(thieves));
  for (int t = 0; t < thieves; ++t) {
    ts.emplace_back([&dq, &consumed, &done] {
      while (!done.load(std::memory_order_acquire)) {
        if (auto v = dq.steal()) {
          consumed[static_cast<std::size_t>(*v)].fetch_add(
              1, std::memory_order_relaxed);
        }
      }
      // Final drain: the owner may have left items behind at shutdown.
      while (auto v = dq.steal()) {
        consumed[static_cast<std::size_t>(*v)].fetch_add(
            1, std::memory_order_relaxed);
      }
    });
  }

  // Owner: random mix of pushes (in order) and pops, biased toward push so
  // thieves see a mostly non-empty deque.
  util::Xoshiro256 rng(seed);
  int next = 0;
  while (next < items) {
    if (rng.next_below(4) != 0) {
      dq.push(next++);
    } else if (auto v = dq.pop()) {
      consumed[static_cast<std::size_t>(*v)].fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  // Owner drains what it can before signalling; the rest goes to thieves.
  while (auto v = dq.pop()) {
    consumed[static_cast<std::size_t>(*v)].fetch_add(
        1, std::memory_order_relaxed);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : ts) t.join();

  for (int i = 0; i < items; ++i) {
    ASSERT_EQ(consumed[static_cast<std::size_t>(i)].load(), 1u)
        << "item " << i << " (seed " << seed << ", " << thieves
        << " thieves)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DequeFuzz,
    ::testing::Values(FuzzCase{1, 50000, 1, 64}, FuzzCase{2, 50000, 2, 64},
                      FuzzCase{4, 100000, 3, 64}, FuzzCase{8, 100000, 4, 64},
                      FuzzCase{3, 50000, 5, 2}, FuzzCase{4, 20000, 6, 2}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.thieves) + "_n" +
             std::to_string(info.param.items) + "_s" +
             std::to_string(info.param.seed) + "_c" +
             std::to_string(info.param.initial_capacity);
    });

// grow() under concurrent steals from a tiny initial capacity: the deque
// must honour the documented retirement bound — old buffers are parked,
// not freed, and their total capacity stays below the live buffer's
// (retired + live <= 2x high-water mark). Checked quiescently after join.
TEST(DequeGrow, RetiredBufferBoundUnderConcurrentSteals) {
  constexpr int kItems = 1 << 16;
  constexpr int kWarmup = 1 << 10;  // pushed before thieves start
  constexpr int kThieves = 4;
  rt::ChaseLevDeque<int> dq(2);

  // Grow deterministically a few times first (2 -> 1024 is 9 retirements),
  // then let thieves race the remaining pushes so later grows happen while
  // old buffers are being read concurrently.
  for (int i = 0; i < kWarmup; ++i) dq.push(i);
  ASSERT_GE(dq.retired_count(), 1u);

  std::atomic<std::int64_t> stolen{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThieves; ++t) {
    ts.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (dq.steal()) stolen.fetch_add(1, std::memory_order_relaxed);
      }
      while (dq.steal()) stolen.fetch_add(1, std::memory_order_relaxed);
    });
  }

  for (int i = kWarmup; i < kItems; ++i) dq.push(i);
  std::int64_t popped = 0;
  while (dq.pop()) ++popped;
  done.store(true, std::memory_order_release);
  for (auto& t : ts) t.join();

  EXPECT_EQ(popped + stolen.load(), kItems);
  // Every grow parks its predecessor; the geometric doubling keeps the
  // parked total strictly below the live buffer's capacity.
  EXPECT_GE(dq.retired_count(), 1u);
  EXPECT_LT(dq.retired_capacity_total(), dq.capacity());
}

}  // namespace
}  // namespace dws
