// Tests for the real-runtime extension features: work-sharing mode
// (Config::work_sharing) and the adaptive T_SLEEP controller
// (Config::adaptive_t_sleep) on live threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace dws::rt {
namespace {

using namespace std::chrono_literals;

Config base_cfg(SchedMode mode) {
  Config cfg;
  cfg.mode = mode;
  cfg.num_cores = 4;
  cfg.pin_threads = false;
  cfg.coordinator_period_ms = 2.0;
  return cfg;
}

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 3000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

class WorkSharingRuntime : public ::testing::TestWithParam<SchedMode> {};

TEST_P(WorkSharingRuntime, ParallelForIsCorrect) {
  Config cfg = base_cfg(GetParam());
  cfg.work_sharing = true;
  Scheduler sched(cfg);
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(sched, 0, 5000, 32, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::int64_t i = 0; i < 5000; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST_P(WorkSharingRuntime, NoStealsEverHappen) {
  Config cfg = base_cfg(GetParam());
  cfg.work_sharing = true;
  Scheduler sched(cfg);
  std::atomic<int> n{0};
  sched.run([&] {
    TaskGroup g;
    for (int i = 0; i < 200; ++i) sched.spawn(g, [&] { n.fetch_add(1); });
    sched.wait(g);
  });
  EXPECT_EQ(n.load(), 200);
  // Every task went through the central queue: deques stayed empty.
  EXPECT_EQ(sched.stats().totals.steals, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, WorkSharingRuntime,
                         ::testing::Values(SchedMode::kAbp, SchedMode::kDws),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

TEST(WorkSharingRuntime2, SleepWakeStillWorks) {
  Config cfg = base_cfg(SchedMode::kDws);
  cfg.work_sharing = true;
  Scheduler sched(cfg);
  ASSERT_TRUE(eventually([&] { return sched.sleeping_workers() == 4; }));
  std::atomic<int> n{0};
  parallel_for_each_index(sched, 0, 500, 4,
                          [&](std::int64_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 500);
  EXPECT_GT(sched.stats().coordinator_wakes, 0u);
}

TEST(AdaptiveTSleepRuntime, ThresholdStartsAtBase) {
  Config cfg = base_cfg(SchedMode::kDws);
  cfg.adaptive_t_sleep = true;
  cfg.t_sleep = 8;
  Scheduler sched(cfg);
  EXPECT_EQ(sched.current_t_sleep(), 8);
}

TEST(AdaptiveTSleepRuntime, EscalationDoublesAndCaps) {
  Config cfg = base_cfg(SchedMode::kDws);
  cfg.adaptive_t_sleep = true;
  cfg.t_sleep = 4;
  Scheduler sched(cfg);
  for (int i = 0; i < 100; ++i) sched.escalate_t_sleep();
  EXPECT_EQ(sched.current_t_sleep(), 4 * 64);  // capped at 64x base
}

TEST(AdaptiveTSleepRuntime, DecayReturnsToBase) {
  Config cfg = base_cfg(SchedMode::kDws);
  cfg.adaptive_t_sleep = true;
  cfg.t_sleep = 4;
  Scheduler sched(cfg);
  sched.escalate_t_sleep();
  sched.escalate_t_sleep();
  ASSERT_GT(sched.current_t_sleep(), 4);
  for (int i = 0; i < 500; ++i) sched.decay_t_sleep();
  EXPECT_EQ(sched.current_t_sleep(), 4);
}

TEST(AdaptiveTSleepRuntime, ChurnyWorkloadEscalatesOnline) {
  // Deterministic premature-sleep cycle: with a generous short-sleep
  // horizon, *any* coordinator wake counts as premature. Force workers
  // fully asleep, then submit a burst (which wakes them): the controller
  // must escalate off the pathological base threshold.
  Config cfg = base_cfg(SchedMode::kDws);
  cfg.adaptive_t_sleep = true;
  cfg.t_sleep = 0;  // sleep on the first failed steal: maximal churn
  cfg.adaptive_short_sleep_ms = 60000.0;  // every wake is "premature"
  // A long-ish period makes the post-burst escalation check race-free
  // against the tick's decay (the check runs microseconds after the
  // wake; the next decay is up to 20 ms away).
  cfg.coordinator_period_ms = 20.0;
  Scheduler sched(cfg);
  std::atomic<long> n{0};
  for (int burst = 0; burst < 10; ++burst) {
    ASSERT_TRUE(eventually([&] { return sched.sleeping_workers() == 4; }))
        << "burst " << burst;
    parallel_for_each_index(sched, 0, 200, 2,
                            [&](std::int64_t) { n.fetch_add(1); });
    if (sched.current_t_sleep() > 0) break;  // escalated — done
  }
  EXPECT_GT(sched.current_t_sleep(), 0)
      << "controller never escalated despite guaranteed premature wakes";
}

TEST(AdaptiveTSleepRuntime, StillCorrectUnderLoad) {
  Config cfg = base_cfg(SchedMode::kDws);
  cfg.adaptive_t_sleep = true;
  Scheduler sched(cfg);
  std::atomic<std::int64_t> sum{0};
  parallel_for(sched, 0, 50000, 64, [&](std::int64_t b, std::int64_t e) {
    std::int64_t s = 0;
    for (std::int64_t i = b; i < e; ++i) s += i;
    sum.fetch_add(s, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 49999LL * 50000 / 2);
}

}  // namespace
}  // namespace dws::rt
