// Cache-model ablation: how much of DWS's advantage over ABP on
// memory-bound mixes comes from the cache-contention mechanism (§2.1
// drawback 2, §4.1)? Sweeps the private-cache miss penalty from 0 (cache
// model off) upward and reports the ABP/DWS gap on the memory-bound mix
// (6, 7) = Heat + SOR.
//
// Usage: bench_cache_model [--scale=1.0] [--runs=3]
#include <iostream>

#include "apps/profiles.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto runs = static_cast<unsigned>(args.get_int("runs", 3));

  const auto heat = apps::make_sim_profile("Heat", scale);
  const auto sor = apps::make_sim_profile("SOR", scale);
  auto make_spec = [&](const apps::SimAppProfile& p, SchedMode mode) {
    sim::SimProgramSpec s;
    s.name = p.name;
    s.mode = mode;
    s.dag = &p.dag;
    s.target_runs = runs;
    s.default_mem_intensity = p.mem_intensity;
    return s;
  };

  std::cout << "=== Cache-model ablation on the memory-bound mix Heat+SOR"
            << " ===\n(sum of both programs' mean run times, virtual ms;"
            << " penalty 0 disables the cache model)\n\n";

  harness::Table table({"core/LLC penalty", "ABP (ms)", "DWS (ms)",
                        "ABP/DWS ratio", "ABP cache loss", "DWS cache loss"});
  for (double penalty : {0.0, 0.2, 0.4, 0.8, 1.6}) {
    sim::SimParams params;
    params.core_miss_penalty = penalty;
    params.llc_miss_penalty = penalty * 0.875;  // keep the default ratio
    double sums[2] = {0, 0};
    double losses[2] = {0, 0};
    int idx = 0;
    for (SchedMode mode : {SchedMode::kAbp, SchedMode::kDws}) {
      sim::SimEngine engine(params,
                            {make_spec(heat, mode), make_spec(sor, mode)});
      const sim::SimResult r = engine.run();
      for (const auto& p : r.programs) {
        sums[idx] += p.mean_run_time_us / 1000.0;
        losses[idx] += p.cache_penalty_us / 1000.0;
      }
      ++idx;
    }
    table.add_row({harness::Table::num(penalty, 2),
                   harness::Table::num(sums[0], 1),
                   harness::Table::num(sums[1], 1),
                   harness::Table::num(sums[0] / sums[1], 2),
                   harness::Table::num(losses[0], 1) + " ms",
                   harness::Table::num(losses[1], 1) + " ms"});
  }
  table.print(std::cout);
  std::cout << "\n(Expected shape: the ABP/DWS gap grows with the penalty"
            << " — space-sharing's advantage is precisely the avoided"
            << " cross-program cache thrash.)\n";
  return 0;
}
