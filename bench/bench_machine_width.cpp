// Machine-width sweep: the paper evaluates on 16 cores only; this
// extension checks that the DWS-vs-ABP/EP ordering is not an artifact of
// that width. Mix (1, 8) on k ∈ {8, 16, 32} cores with T_SLEEP = k.
//
// Usage: bench_machine_width [--scale=1.0] [--runs=3]
#include <iostream>

#include "apps/profiles.hpp"
#include "harness/mixes.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto runs = static_cast<unsigned>(args.get_int("runs", 3));

  const auto fft = apps::make_sim_profile("FFT", scale);
  const auto ms = apps::make_sim_profile("Mergesort", scale);

  std::cout << "=== Machine-width sweep: mix (1, 8) on k cores ===\n"
            << "(sum of normalized times; baseline = solo on the same k)\n\n";

  harness::Table table({"k", "ABP", "EP", "DWS", "DWS vs ABP", "DWS vs EP"});
  for (unsigned k : {8u, 16u, 32u}) {
    sim::SimParams params;
    params.num_cores = k;
    params.num_sockets = k / 8;

    auto make_spec = [&](const apps::SimAppProfile& p, SchedMode mode) {
      sim::SimProgramSpec s;
      s.name = p.name;
      s.mode = mode;
      s.dag = &p.dag;
      s.target_runs = runs;
      s.default_mem_intensity = p.mem_intensity;
      return s;
    };
    auto solo = [&](const apps::SimAppProfile& p) {
      sim::SimProgramSpec s = make_spec(p, SchedMode::kAbp);
      return sim::simulate_solo(params, s).programs[0].mean_run_time_us;
    };
    const double base_fft = solo(fft);
    const double base_ms = solo(ms);

    double sums[3];
    int idx = 0;
    for (SchedMode mode :
         {SchedMode::kAbp, SchedMode::kEp, SchedMode::kDws}) {
      sim::SimEngine engine(params,
                            {make_spec(fft, mode), make_spec(ms, mode)});
      const sim::SimResult r = engine.run();
      sums[idx++] = r.program("FFT").mean_run_time_us / base_fft +
                    r.program("Mergesort").mean_run_time_us / base_ms;
    }
    table.add_row(
        {std::to_string(k), harness::Table::num(sums[0]),
         harness::Table::num(sums[1]), harness::Table::num(sums[2]),
         harness::Table::num(100.0 * (1.0 - sums[2] / sums[0]), 1) + "%",
         harness::Table::num(100.0 * (1.0 - sums[2] / sums[1]), 1) + "%"});
  }
  table.print(std::cout);
  return 0;
}
