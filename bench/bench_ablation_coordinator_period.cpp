// §3.4 ablation: the coordinator period T. The paper argues T = 10 ms
// balances coordinator overhead (T too small) against stale scheduling
// (T too large) and uses 10 ms throughout.
//
// Usage: bench_ablation_coordinator_period [--scale=1.0] [--runs=4]
//                                          [--periods-ms=1,2,5,10,20,50,100]
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/mixes.hpp"
#include "harness/report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  harness::ExperimentConfig cfg;
  cfg.work_scale = args.get_double("scale", 1.0);
  cfg.target_runs = static_cast<unsigned>(args.get_int("runs", 4));
  const auto periods = args.get_int_list("periods-ms", {1, 2, 5, 10, 20, 50,
                                                        100});
  const std::pair<unsigned, unsigned> mix{1, 8};

  std::cout << "=== Ablation: coordinator period T for mix (1, 8) under DWS"
            << " ===\n(paper suggests T = 10 ms, §3.4)\n\n";

  const auto baselines = harness::run_solo_baselines(cfg);

  harness::Table table({"T (ms)", "p-1 FFT", "p-8 Mergesort", "sum",
                        "ticks", "wakes"});
  long best_t = -1;
  double best_sum = 1e300;
  for (long t_ms : periods) {
    cfg.params.coordinator_period_us = 1000.0 * static_cast<double>(t_ms);
    const auto run = harness::run_mix(cfg, mix, SchedMode::kDws, baselines);
    const double sum = harness::mix_total_normalized(run);
    if (sum < best_sum) {
      best_sum = sum;
      best_t = t_ms;
    }
    table.add_row({std::to_string(t_ms),
                   harness::Table::num(run.first.normalized),
                   harness::Table::num(run.second.normalized),
                   harness::Table::num(sum),
                   std::to_string(run.first.raw.coordinator_ticks +
                                  run.second.raw.coordinator_ticks),
                   std::to_string(run.first.raw.wakes +
                                  run.second.raw.wakes)});
  }
  table.print(std::cout);
  std::cout << "\nBest period: " << best_t << " ms (paper: 10 ms)\n";
  return 0;
}
