// Fig. 4: normalized execution time of the eight benchmark mixes under
// ABP (time-sharing + yield), EP (space-sharing + equipartition) and DWS.
//
// Paper's result: DWS reduces execution time by up to 32.3% vs ABP and up
// to 37.1% vs EP. We reproduce the *shape*: DWS <= ABP and <= EP on every
// mix, with double-digit-% gains on demand-asymmetric mixes, and the (2,7)
// locality effect (§4.1) visible in the cache-penalty column.
//
// Usage: bench_fig4_mixes [--scale=1.0] [--runs=4] [--csv]
#include <iostream>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/mixes.hpp"
#include "harness/report.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  harness::ExperimentConfig cfg;
  cfg.work_scale = args.get_double("scale", 1.0);
  cfg.target_runs = static_cast<unsigned>(args.get_int("runs", 4));

  std::cout << "=== Fig. 4: benchmark mixes under ABP / EP / DWS ===\n"
            << "(normalized execution time vs solo-on-16-cores baseline;"
            << " lower is better)\n\n";

  const auto baselines = harness::run_solo_baselines(cfg);

  harness::Table table({"mix", "prog", "ABP", "EP", "DWS", "DWS vs ABP",
                        "DWS vs EP", "DWS cache-penalty share"});
  double worst_vs_abp = 0.0, worst_vs_ep = 0.0;
  std::vector<double> abp_norms, ep_norms, dws_norms;

  for (const auto& mix : harness::kFigureMixes) {
    const auto abp = harness::run_mix(cfg, mix, SchedMode::kAbp, baselines);
    const auto ep = harness::run_mix(cfg, mix, SchedMode::kEp, baselines);
    const auto dws = harness::run_mix(cfg, mix, SchedMode::kDws, baselines);

    auto emit = [&](const harness::MixRun::PerProgram& a,
                    const harness::MixRun::PerProgram& e,
                    const harness::MixRun::PerProgram& d, bool first_row) {
      const double vs_abp = 100.0 * (1.0 - d.normalized / a.normalized);
      const double vs_ep = 100.0 * (1.0 - d.normalized / e.normalized);
      worst_vs_abp = std::max(worst_vs_abp, vs_abp);
      worst_vs_ep = std::max(worst_vs_ep, vs_ep);
      abp_norms.push_back(a.normalized);
      ep_norms.push_back(e.normalized);
      dws_norms.push_back(d.normalized);
      const double penalty_share =
          d.raw.exec_time_us > 0
              ? d.raw.cache_penalty_us / d.raw.exec_time_us
              : 0.0;
      table.add_row({first_row ? harness::mix_label(mix) : "",
                     a.name,
                     harness::Table::num(a.normalized),
                     harness::Table::num(e.normalized),
                     harness::Table::num(d.normalized),
                     harness::Table::num(vs_abp, 1) + "%",
                     harness::Table::num(vs_ep, 1) + "%",
                     harness::Table::num(100.0 * penalty_share, 1) + "%"});
    };
    emit(abp.first, ep.first, dws.first, true);
    emit(abp.second, ep.second, dws.second, false);
  }

  if (args.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nSummary (paper: up to 32.3% vs ABP, up to 37.1% vs EP):\n"
            << "  max reduction DWS vs ABP: "
            << harness::Table::num(worst_vs_abp, 1) << "%\n"
            << "  max reduction DWS vs EP:  "
            << harness::Table::num(worst_vs_ep, 1) << "%\n"
            << "  geomean normalized time:  ABP "
            << harness::Table::num(util::geomean(abp_norms)) << "  EP "
            << harness::Table::num(util::geomean(ep_norms)) << "  DWS "
            << harness::Table::num(util::geomean(dws_norms)) << "\n";
  return 0;
}
