// §4.4 extension: "DWS can be easily adapted to work-sharing". Runs the
// eight mixes with both programs using a central task FIFO instead of
// work-stealing deques, comparing ABP-style behaviour against
// DWS-with-work-sharing (the same sleep/wake + coordinator mechanism).
//
// Usage: bench_worksharing [--scale=1.0] [--runs=3]
#include <iostream>
#include <vector>

#include "apps/profiles.hpp"
#include "harness/mixes.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto runs = static_cast<unsigned>(args.get_int("runs", 3));

  sim::SimParams params;

  auto make_spec = [&](const apps::SimAppProfile& p, SchedMode mode) {
    sim::SimProgramSpec s;
    s.name = p.name;
    s.mode = mode;
    s.dag = &p.dag;
    s.target_runs = runs;
    s.default_mem_intensity = p.mem_intensity;
    s.work_sharing = true;
    return s;
  };

  auto solo_baseline = [&](const apps::SimAppProfile& p) {
    sim::SimProgramSpec s = make_spec(p, SchedMode::kAbp);
    s.target_runs = 4;
    return sim::simulate_solo(params, s).programs[0].mean_run_time_us;
  };

  std::cout << "=== §4.4 extension: DWS applied to *work-sharing* programs"
            << " ===\n(central FIFO per program; sum of normalized times"
            << " per mix; lower is better)\n\n";

  harness::Table table({"mix", "ABP-sharing", "DWS-sharing", "DWS gain"});
  std::vector<double> abp_s, dws_s;
  for (const auto& mix : harness::kFigureMixes) {
    const auto prof_a =
        apps::make_sim_profile(harness::app_name(mix.first), scale);
    const auto prof_b =
        apps::make_sim_profile(harness::app_name(mix.second), scale);
    const double base_a = solo_baseline(prof_a);
    const double base_b = solo_baseline(prof_b);

    auto run_mode = [&](SchedMode mode) {
      sim::SimEngine engine(params,
                            {make_spec(prof_a, mode), make_spec(prof_b, mode)});
      const sim::SimResult r = engine.run();
      return r.program(prof_a.name).mean_run_time_us / base_a +
             r.program(prof_b.name).mean_run_time_us / base_b;
    };
    const double abp = run_mode(SchedMode::kAbp);
    const double dws = run_mode(SchedMode::kDws);
    abp_s.push_back(abp);
    dws_s.push_back(dws);
    table.add_row({harness::mix_label(mix), harness::Table::num(abp),
                   harness::Table::num(dws),
                   harness::Table::num(100.0 * (1.0 - dws / abp), 1) + "%"});
  }
  table.add_row({"geomean", harness::Table::num(util::geomean(abp_s)),
                 harness::Table::num(util::geomean(dws_s)), ""});
  table.print(std::cout);
  std::cout << "\n(The demand-aware mechanism transfers: the same sleep/"
            << "wake + coordinator logic improves co-running work-sharing"
            << " programs too.)\n";
  return 0;
}
