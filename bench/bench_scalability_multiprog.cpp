// Extension experiment: how does each scheme degrade as the number of
// co-running programs grows? m identical FFT instances on the 16-core
// machine, m in {1, 2, 4, 8}; we report the mean normalized time.
//
// Usage: bench_scalability_multiprog [--scale=1.0] [--runs=3] [--app=FFT]
#include <iostream>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto runs = static_cast<unsigned>(args.get_int("runs", 3));
  const std::string app = args.get_str("app", "FFT");

  std::cout << "=== Multiprogramming scalability: m x " << app
            << " on 16 simulated cores ===\n"
            << "(mean normalized execution time across the m instances)\n\n";

  sim::SimParams params;
  const apps::SimAppProfile profile = apps::make_sim_profile(app, scale);

  // Solo baseline under plain work-stealing.
  sim::SimProgramSpec base;
  base.name = app;
  base.mode = SchedMode::kAbp;
  base.dag = &profile.dag;
  base.target_runs = runs;
  base.default_mem_intensity = profile.mem_intensity;
  const double solo =
      sim::simulate_solo(params, base).programs[0].mean_run_time_us;

  harness::Table table({"m", "ABP", "EP", "DWS", "ideal (=m)"});
  for (unsigned m : {1u, 2u, 4u, 8u}) {
    std::vector<double> row;
    for (SchedMode mode :
         {SchedMode::kAbp, SchedMode::kEp, SchedMode::kDws}) {
      std::vector<sim::SimProgramSpec> specs;
      for (unsigned i = 0; i < m; ++i) {
        sim::SimProgramSpec s = base;
        s.name = app + "#" + std::to_string(i);
        s.mode = mode;
        specs.push_back(s);
      }
      sim::SimEngine engine(params, specs);
      const sim::SimResult r = engine.run();
      double mean = 0.0;
      for (const auto& p : r.programs) mean += p.mean_run_time_us / solo;
      row.push_back(mean / static_cast<double>(m));
    }
    table.add_row({std::to_string(m), harness::Table::num(row[0]),
                   harness::Table::num(row[1]), harness::Table::num(row[2]),
                   harness::Table::num(static_cast<double>(m))});
  }
  table.print(std::cout);
  std::cout << "\n(With identical demands EP is near-optimal; DWS must match"
            << " it, and ABP pays time-sharing interference.)\n";
  return 0;
}
