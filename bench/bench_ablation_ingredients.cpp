// Ablation: which DWS ingredient buys what? For each mix we compare
//   ABP          — no sleeping, no space sharing (the baseline)
//   DWS-NC       — + sleeping workers, no core exchange (§4.2)
//   DWS/no-recl  — + space sharing and free-core claiming, but the owner
//                  never takes lent cores back (take-back disabled)
//   DWS          — the full system (§3)
//
// Usage: bench_ablation_ingredients [--scale=1.0] [--runs=4]
#include <iostream>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/mixes.hpp"
#include "harness/report.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  harness::ExperimentConfig cfg;
  cfg.work_scale = args.get_double("scale", 1.0);
  cfg.target_runs = static_cast<unsigned>(args.get_int("runs", 4));

  std::cout << "=== Ablation: DWS ingredients (sum of normalized times per"
            << " mix; lower is better) ===\n\n";

  const auto baselines = harness::run_solo_baselines(cfg);

  harness::Table table({"mix", "ABP", "DWS-NC", "DWS/no-reclaim", "DWS"});
  std::vector<double> abp_sums, nc_sums, norecl_sums, dws_sums;
  for (const auto& mix : harness::kFigureMixes) {
    const auto abp = harness::run_mix(cfg, mix, SchedMode::kAbp, baselines);
    const auto nc = harness::run_mix(cfg, mix, SchedMode::kDwsNc, baselines);
    cfg.params.disable_reclaim = true;
    const auto norecl = harness::run_mix(cfg, mix, SchedMode::kDws, baselines);
    cfg.params.disable_reclaim = false;
    const auto dws = harness::run_mix(cfg, mix, SchedMode::kDws, baselines);

    abp_sums.push_back(harness::mix_total_normalized(abp));
    nc_sums.push_back(harness::mix_total_normalized(nc));
    norecl_sums.push_back(harness::mix_total_normalized(norecl));
    dws_sums.push_back(harness::mix_total_normalized(dws));
    table.add_row({harness::mix_label(mix),
                   harness::Table::num(abp_sums.back()),
                   harness::Table::num(nc_sums.back()),
                   harness::Table::num(norecl_sums.back()),
                   harness::Table::num(dws_sums.back())});
  }
  table.add_row({"geomean", harness::Table::num(util::geomean(abp_sums)),
                 harness::Table::num(util::geomean(nc_sums)),
                 harness::Table::num(util::geomean(norecl_sums)),
                 harness::Table::num(util::geomean(dws_sums))});
  table.print(std::cout);
  return 0;
}
