// Table 2 + §4.1 baselines: each benchmark alone on the simulated 16-core
// machine under traditional work-stealing — the "average non-interference
// execution time" every figure normalizes against.
//
// Usage: bench_table2_baselines [--scale=1.0] [--runs=10] [--csv]
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/mixes.hpp"
#include "harness/report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  harness::ExperimentConfig cfg;
  cfg.work_scale = args.get_double("scale", 1.0);
  cfg.baseline_runs = static_cast<unsigned>(args.get_int("runs", 10));

  std::cout << "=== Table 2: benchmarks and solo baselines ===\n"
            << "Machine: " << cfg.params.num_cores << " cores / "
            << cfg.params.num_sockets << " sockets (simulated), "
            << cfg.baseline_runs << " runs each, scale " << cfg.work_scale
            << "\n\n";

  const auto baselines = harness::run_solo_baselines(cfg);

  harness::Table table({"ID", "Name", "T1 (ms)", "Tinf (ms)", "parallelism",
                        "mem", "solo-16c (ms)", "speedup"});
  for (unsigned id = 1; id <= 8; ++id) {
    const std::string name = harness::app_name(id);
    const auto profile = apps::make_sim_profile(name, cfg.work_scale);
    const double t1 = profile.dag.total_work();
    const double tinf = profile.dag.critical_path();
    const double solo = baselines.at(name);
    table.add_row({"p-" + std::to_string(id), name,
                   harness::Table::num(t1 / 1000.0, 1),
                   harness::Table::num(tinf / 1000.0, 2),
                   harness::Table::num(t1 / tinf, 1),
                   harness::Table::num(profile.mem_intensity, 2),
                   harness::Table::num(solo / 1000.0, 2),
                   harness::Table::num(t1 / solo, 2)});
  }
  if (args.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
