// Microbenchmarks of the Chase-Lev work-stealing deque (google-benchmark):
// owner push/pop throughput, steal throughput, and mixed owner+thief
// contention. These validate that the runtime's central data structure is
// not the bottleneck in any macro experiment.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "runtime/deque.hpp"

namespace {

using dws::rt::ChaseLevDeque;

void BM_PushPop(benchmark::State& state) {
  ChaseLevDeque<std::intptr_t> deque(1024);
  std::intptr_t v = 1;
  for (auto _ : state) {
    deque.push(v);
    benchmark::DoNotOptimize(deque.pop());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_PushPop);

void BM_PushPopBatch(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  ChaseLevDeque<std::intptr_t> deque(1024);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < batch; ++i) deque.push(i);
    for (std::int64_t i = 0; i < batch; ++i) {
      benchmark::DoNotOptimize(deque.pop());
    }
  }
  state.SetItemsProcessed(state.iterations() * batch * 2);
}
BENCHMARK(BM_PushPopBatch)->Arg(8)->Arg(64)->Arg(512);

void BM_StealUncontended(benchmark::State& state) {
  ChaseLevDeque<std::intptr_t> deque(1 << 20);
  std::int64_t available = 0;
  for (auto _ : state) {
    if (available == 0) {
      state.PauseTiming();
      for (std::int64_t i = 0; i < (1 << 16); ++i) deque.push(i);
      available = 1 << 16;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(deque.steal());
    --available;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StealUncontended);

void BM_OwnerVsThief(benchmark::State& state) {
  // Owner churns push/pop while one thief steals continuously: worst-case
  // top/bottom contention on the same deque.
  ChaseLevDeque<std::intptr_t> deque(1024);
  std::atomic<bool> stop{false};
  std::thread thief([&] {  // dws-lint-sanction: bench drives the thief side of the deque directly, below the scheduler
    while (!stop.load(std::memory_order_acquire)) {
      benchmark::DoNotOptimize(deque.steal());
    }
  });
  std::intptr_t v = 1;
  for (auto _ : state) {
    deque.push(v);
    benchmark::DoNotOptimize(deque.pop());
  }
  stop.store(true, std::memory_order_release);
  thief.join();
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_OwnerVsThief);

void BM_GrowthFromCold(benchmark::State& state) {
  for (auto _ : state) {
    ChaseLevDeque<std::intptr_t> deque(2);
    for (std::intptr_t i = 0; i < 4096; ++i) deque.push(i);
    benchmark::DoNotOptimize(deque.size_approx());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_GrowthFromCold);

}  // namespace
