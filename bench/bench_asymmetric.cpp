// §4.4 extension: DWS on an asymmetric multi-core machine. The paper
// sketches: classify programs as compute- vs data-intensive; let
// compute-intensive programs take the fast cores at launch; then run DWS
// as usual. This bench measures (a) the value of that placement and
// (b) that DWS's demand-driven exchange still functions on asymmetric
// silicon.
//
// Machine: 8 fast (1.4x) + 8 slow (0.7x) cores.
//
// Usage: bench_asymmetric [--scale=1.0] [--runs=3]
#include <iostream>

#include "apps/profiles.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto runs = static_cast<unsigned>(args.get_int("runs", 3));

  sim::SimParams params;  // 16 cores, 2 sockets
  params.core_speeds.assign(16, 0.7);
  for (unsigned c = 0; c < 8; ++c) params.core_speeds[c] = 1.4;

  // FFT is compute-intensive (mem 0.3); Heat is data-intensive (0.95).
  const apps::SimAppProfile fft = apps::make_sim_profile("FFT", scale);
  const apps::SimAppProfile heat = apps::make_sim_profile("Heat", scale);

  auto make_spec = [&](const apps::SimAppProfile& p, SchedMode mode) {
    sim::SimProgramSpec s;
    s.name = p.name;
    s.mode = mode;
    s.dag = &p.dag;
    s.target_runs = runs;
    s.default_mem_intensity = p.mem_intensity;
    return s;
  };

  std::cout << "=== §4.4 extension: asymmetric machine (8 cores @1.4x + 8"
            << " @0.7x) ===\nMix: FFT (compute-bound) + Heat (data-bound);"
            << " placement = which program homes the fast block.\n\n";

  harness::Table table({"mode", "placement", "FFT (ms/run)", "Heat (ms/run)",
                        "sum"});
  for (SchedMode mode : {SchedMode::kEp, SchedMode::kDws}) {
    for (const bool compute_on_fast : {true, false}) {
      // Registration order decides the home block: first program homes
      // cores 0-7 (the fast block in this machine).
      std::vector<sim::SimProgramSpec> specs;
      if (compute_on_fast) {
        specs = {make_spec(fft, mode), make_spec(heat, mode)};
      } else {
        specs = {make_spec(heat, mode), make_spec(fft, mode)};
      }
      sim::SimEngine engine(params, specs);
      const sim::SimResult r = engine.run();
      const double t_fft = r.program("FFT").mean_run_time_us / 1000.0;
      const double t_heat = r.program("Heat").mean_run_time_us / 1000.0;
      table.add_row({to_string(mode),
                     compute_on_fast ? "FFT on fast block (paper's rule)"
                                     : "Heat on fast block",
                     harness::Table::num(t_fft, 2),
                     harness::Table::num(t_heat, 2),
                     harness::Table::num(t_fft + t_heat, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(Expected shape: the paper's placement rule lowers the"
            << " mix total for both modes. With this demand-saturated mix"
            << " DWS performs no exchanges and safely degenerates to EP;"
            << " the second table adds a bursty co-runner to show the"
            << " exchange working on asymmetric silicon.)\n";

  // Second experiment: FFT + Cholesky — Cholesky's narrow tails release
  // cores, so DWS should beat EP even on the asymmetric machine.
  const apps::SimAppProfile chol = apps::make_sim_profile("Cholesky", scale);
  harness::Table table2(
      {"mode", "FFT (ms/run)", "Cholesky (ms/run)", "sum", "FFT claims"});
  for (SchedMode mode : {SchedMode::kEp, SchedMode::kDws}) {
    sim::SimEngine engine(params,
                          {make_spec(fft, mode), make_spec(chol, mode)});
    const sim::SimResult r = engine.run();
    const double t_fft = r.program("FFT").mean_run_time_us / 1000.0;
    const double t_chol = r.program("Cholesky").mean_run_time_us / 1000.0;
    table2.add_row({to_string(mode), harness::Table::num(t_fft, 2),
                    harness::Table::num(t_chol, 2),
                    harness::Table::num(t_fft + t_chol, 2),
                    std::to_string(r.program("FFT").cores_claimed)});
  }
  std::cout << "\n";
  table2.print(std::cout);
  return 0;
}
