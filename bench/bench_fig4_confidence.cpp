// Fig. 4 with schedule-sensitivity bars: replicates every mix × mode over
// several engine seeds (victim selection, free-core shuffles) and reports
// mean ± stddev of the normalized times. The simulator is deterministic
// per seed, so the spread isolates *scheduling* sensitivity — if DWS's
// advantage only existed for lucky seeds, it would show here.
//
// Usage: bench_fig4_confidence [--scale=1.0] [--runs=3] [--seeds=5]
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/mixes.hpp"
#include "harness/report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  harness::ExperimentConfig cfg;
  cfg.work_scale = args.get_double("scale", 1.0);
  cfg.target_runs = static_cast<unsigned>(args.get_int("runs", 3));
  const auto seeds = static_cast<unsigned>(args.get_int("seeds", 5));

  std::cout << "=== Fig. 4 with seed-replication (" << seeds
            << " seeds; mean ± stddev of normalized time) ===\n\n";

  const auto baselines = harness::run_solo_baselines(cfg);

  harness::Table table({"mix", "prog", "ABP", "EP", "DWS"});
  auto cell = [](const util::Samples& s) {
    return harness::Table::num(s.mean(), 3) + " ± " +
           harness::Table::num(s.stddev(), 3);
  };
  for (const auto& mix : harness::kFigureMixes) {
    const auto abp = harness::run_mix_replicated(cfg, mix, SchedMode::kAbp,
                                                 baselines, seeds);
    const auto ep = harness::run_mix_replicated(cfg, mix, SchedMode::kEp,
                                                baselines, seeds);
    const auto dws = harness::run_mix_replicated(cfg, mix, SchedMode::kDws,
                                                 baselines, seeds);
    table.add_row({harness::mix_label(mix),
                   harness::app_name(mix.first),
                   cell(abp.first_normalized), cell(ep.first_normalized),
                   cell(dws.first_normalized)});
    table.add_row({"", harness::app_name(mix.second),
                   cell(abp.second_normalized), cell(ep.second_normalized),
                   cell(dws.second_normalized)});
  }
  table.print(std::cout);
  std::cout << "\n(A DWS mean more than a few stddevs below ABP's confirms"
            << " the Fig. 4 ordering is schedule-robust, not a lucky"
            << " seed.)\n";
  return 0;
}
