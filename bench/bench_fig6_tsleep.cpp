// Fig. 6: impact of T_SLEEP on mix (1, 8) — FFT + Mergesort under DWS
// with T_SLEEP in {1, 2, 4, ..., 128} on the 16-core machine.
//
// Paper's result: best performance at T_SLEEP = 16 or 32 (k or 2k);
// T_SLEEP = 1 suffers wake/sleep churn, T_SLEEP = 128 wastes cores on
// useless steals.
//
// Usage: bench_fig6_tsleep [--scale=1.0] [--runs=4]
//                          [--tsleep=1,2,4,8,16,32,64,128] [--csv]
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/mixes.hpp"
#include "harness/report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  harness::ExperimentConfig cfg;
  cfg.work_scale = args.get_double("scale", 1.0);
  cfg.target_runs = static_cast<unsigned>(args.get_int("runs", 4));
  const auto sweep =
      args.get_int_list("tsleep", {1, 2, 4, 8, 16, 32, 64, 128});
  const std::pair<unsigned, unsigned> mix{1, 8};

  std::cout << "=== Fig. 6: T_SLEEP sweep for mix (1, 8) = FFT + Mergesort"
            << " under DWS ===\n"
            << "(normalized execution time; paper: minimum at 16 or 32 on a"
            << " 16-core machine)\n\n";

  const auto baselines = harness::run_solo_baselines(cfg);

  harness::Table table({"T_SLEEP", "p-1 FFT", "p-8 Mergesort", "sum",
                        "sleeps/run", "coord wakes/run"});
  long best_t = -1;
  double best_sum = 1e300;
  for (long t : sweep) {
    cfg.params.t_sleep = static_cast<int>(t);
    const auto run = harness::run_mix(cfg, mix, SchedMode::kDws, baselines);
    const double sum = harness::mix_total_normalized(run);
    if (sum < best_sum) {
      best_sum = sum;
      best_t = t;
    }
    const double runs =
        static_cast<double>(run.first.raw.run_times_us.size() +
                            run.second.raw.run_times_us.size());
    table.add_row({std::to_string(t),
                   harness::Table::num(run.first.normalized),
                   harness::Table::num(run.second.normalized),
                   harness::Table::num(sum),
                   harness::Table::num(
                       static_cast<double>(run.first.raw.sleeps +
                                           run.second.raw.sleeps) /
                       runs, 1),
                   harness::Table::num(
                       static_cast<double>(run.first.raw.wakes +
                                           run.second.raw.wakes) /
                       runs, 1)});
  }

  if (args.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nBest T_SLEEP: " << best_t
            << " (paper recommends k or 2k = 16 or 32)\n";
  return 0;
}
