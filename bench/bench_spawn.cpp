// Microbenchmarks of the runtime's task-management primitives
// (google-benchmark): spawn+wait round trips, parallel_for overhead at
// several grain sizes, and scheduler construction cost per mode.
#include <benchmark/benchmark.h>

#include <atomic>

#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace {

using dws::Config;
using dws::SchedMode;
using dws::rt::Scheduler;
using dws::rt::TaskGroup;

Config bench_config(SchedMode mode) {
  Config cfg;
  cfg.mode = mode;
  cfg.num_cores = 2;  // keep thread churn sane on small CI hosts
  cfg.pin_threads = false;
  return cfg;
}

void BM_SpawnWaitRoundTrip(benchmark::State& state) {
  Scheduler sched(bench_config(SchedMode::kDws));
  for (auto _ : state) {
    sched.run([] {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpawnWaitRoundTrip);

void BM_SpawnBatchFromWorker(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  Scheduler sched(bench_config(SchedMode::kDws));
  for (auto _ : state) {
    sched.run([&] {
      TaskGroup g;
      for (std::int64_t i = 0; i < batch; ++i) {
        sched.spawn(g, [] { benchmark::DoNotOptimize(0); });
      }
      sched.wait(g);
    });
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SpawnBatchFromWorker)->Arg(16)->Arg(256);

void BM_ParallelForGrain(benchmark::State& state) {
  const std::int64_t grain = state.range(0);
  Scheduler sched(bench_config(SchedMode::kDws));
  constexpr std::int64_t kN = 1 << 14;
  std::atomic<std::int64_t> sink{0};
  for (auto _ : state) {
    dws::rt::parallel_for(sched, 0, kN, grain,
                          [&](std::int64_t b, std::int64_t e) {
                            sink.fetch_add(e - b,
                                           std::memory_order_relaxed);
                          });
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_ParallelForGrain)->Arg(16)->Arg(256)->Arg(4096);

void BM_SchedulerStartup(benchmark::State& state) {
  const auto mode = static_cast<SchedMode>(state.range(0));
  for (auto _ : state) {
    Scheduler sched(bench_config(mode));
    benchmark::DoNotOptimize(sched.num_workers());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerStartup)
    ->Arg(static_cast<int>(SchedMode::kAbp))
    ->Arg(static_cast<int>(SchedMode::kDws));

}  // namespace
