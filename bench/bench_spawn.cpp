// Spawn/steal hot-path benchmark and perf guardrail: measures ns-per-spawn
// and ns-per-steal with pooled task storage (Config::pool_tasks, the
// default) against the heap-allocating fallback, plus raw ChaseLevDeque
// push/pop/steal costs, and emits BENCH_spawn_steal.json (same shape as
// BENCH_deadlock_overhead.json).
//
// Legs:
//  - spawn-batch (1 core): the spawner pushes `tasks` empty tasks, then
//    waits. With one worker nothing executes concurrently, so the pool's
//    high-water mark is exactly `tasks` on every rep — after warm-up the
//    pooled leg's slab count must not move at all. This is the
//    deterministic zero-alloc steady-state check; ns_per_spawn times just
//    the spawn loop (allocate + construct + push), ns_per_task the full
//    spawn/run/recycle cycle.
//  - spawn-steal (2 cores): the same batch with a second worker stealing
//    and remote-freeing concurrently — the cross-thread half of the
//    recycle protocol at benchmark rates. Allocation counts are reported
//    but not gated to exactly zero (the high-water mark is
//    schedule-dependent); the per-task allocation rate still must be
//    ~zero.
//  - deque-push-pop / deque-steal: the raw ChaseLevDeque primitives
//    underneath, owner-only and thief-drain respectively.
//
// Heap/pooled reps alternate (heap, pooled, heap, ...) so drift lands on
// both legs equally; `--warmup` reps per leg are discarded, absorbing the
// cold-allocator jitter of the first iterations (slab carving on the
// pooled side, allocator warm-up on the heap side). The guardrail per
// spawn leg is
//   pooled_mean <= heap_mean * (1 + 3*cv + tolerance),  cv = max leg cv,
// plus a pooled allocation rate of <= 0.01 heap allocations per task.
//
// Usage: bench_spawn [--reps=9] [--warmup=2] [--tasks=20000]
//          [--deque-items=200000] [--tolerance=0.25]
//          [--out=BENCH_spawn_steal.json]
//
// Exit status: 0 when every gated leg is within bound, 1 otherwise. The
// JSON artifact records every leg either way.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/deque.hpp"
#include "runtime/scheduler.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace dws;

Config spawn_config(unsigned cores, bool pooled) {
  Config cfg;
  cfg.mode = SchedMode::kDws;
  cfg.num_cores = cores;
  cfg.pin_threads = false;
  cfg.pool_tasks = pooled;
  return cfg;
}

double cv(const util::Samples& s) {
  return s.mean() > 0.0 ? s.stddev() / s.mean() : 0.0;
}

void json_stats(std::ostream& os, const char* key, const util::Samples& s) {
  os << "    \"" << key << "\": {\"mean\": " << s.mean()
     << ", \"stddev\": " << s.stddev() << ", \"cv\": " << cv(s)
     << ", \"n\": " << s.count() << "}";
}

/// One timed rep on `sched`: spawn `tasks` empty tasks from a root task,
/// then wait for them. Returns {spawn-loop ns/task, full-cycle ns/task}.
struct RepTimes {
  double spawn_ns = 0.0;
  double task_ns = 0.0;
};

RepTimes spawn_batch_rep(rt::Scheduler& sched, long tasks) {
  RepTimes t;
  sched.run([&sched, tasks, &t] {
    rt::TaskGroup g;
    util::Stopwatch sw;
    for (long i = 0; i < tasks; ++i) sched.spawn(g, [] {});
    t.spawn_ns = sw.elapsed_ms() * 1e6 / static_cast<double>(tasks);
    sched.wait(g);
    t.task_ns = sw.elapsed_ms() * 1e6 / static_cast<double>(tasks);
  });
  return t;
}

/// A/B samples plus allocation accounting for one spawn leg.
struct SpawnLeg {
  std::string workload;
  unsigned cores = 1;
  util::Samples heap_spawn_ns, pooled_spawn_ns;
  util::Samples heap_task_ns, pooled_task_ns;
  double heap_allocs_per_task = 0.0;
  double pooled_allocs_per_task = 0.0;
  std::uint64_t pooled_steady_slab_allocs = 0;  // over all measured reps
  bool zero_alloc_steady_state = false;
  double speedup = 0.0;  // heap_spawn_ns / pooled_spawn_ns
  double bound = 0.0;
  bool within = false;
  bool alloc_ok = false;
};

SpawnLeg run_spawn_leg(const char* name, unsigned cores, int reps,
                       int warmup, long tasks, double tolerance) {
  SpawnLeg leg;
  leg.workload = name;
  leg.cores = cores;
  rt::Scheduler heap_sched(spawn_config(cores, /*pooled=*/false));
  rt::Scheduler pooled_sched(spawn_config(cores, /*pooled=*/true));

  for (int r = 0; r < warmup; ++r) {
    spawn_batch_rep(heap_sched, tasks);
    spawn_batch_rep(pooled_sched, tasks);
  }
  // Post-warm-up baseline: everything from here on is steady state.
  const rt::TaskAllocStats heap0 = heap_sched.alloc_stats();
  const rt::TaskAllocStats pooled0 = pooled_sched.alloc_stats();

  for (int r = 0; r < reps; ++r) {
    const RepTimes h = spawn_batch_rep(heap_sched, tasks);
    leg.heap_spawn_ns.add(h.spawn_ns);
    leg.heap_task_ns.add(h.task_ns);
    const RepTimes p = spawn_batch_rep(pooled_sched, tasks);
    leg.pooled_spawn_ns.add(p.spawn_ns);
    leg.pooled_task_ns.add(p.task_ns);
  }

  const rt::TaskAllocStats heap1 = heap_sched.alloc_stats();
  const rt::TaskAllocStats pooled1 = pooled_sched.alloc_stats();
  const double n = static_cast<double>(reps) * static_cast<double>(tasks);
  leg.heap_allocs_per_task =
      static_cast<double>(heap1.heap_spawns - heap0.heap_spawns) / n;
  leg.pooled_steady_slab_allocs = pooled1.slab_allocs - pooled0.slab_allocs;
  leg.pooled_allocs_per_task =
      static_cast<double>(leg.pooled_steady_slab_allocs) / n;
  leg.zero_alloc_steady_state = leg.pooled_steady_slab_allocs == 0;

  const double band =
      3.0 * std::max(cv(leg.heap_spawn_ns), cv(leg.pooled_spawn_ns));
  leg.bound = 1.0 + band + tolerance;
  leg.speedup = leg.pooled_spawn_ns.mean() > 0.0
                    ? leg.heap_spawn_ns.mean() / leg.pooled_spawn_ns.mean()
                    : 0.0;
  leg.within =
      leg.pooled_spawn_ns.mean() <= leg.heap_spawn_ns.mean() * leg.bound;
  leg.alloc_ok = leg.pooled_allocs_per_task <= 0.01;

  std::cout << leg.workload << " (cores=" << cores << "): heap "
            << leg.heap_spawn_ns.summary() << " ns/spawn, pooled "
            << leg.pooled_spawn_ns.summary() << " ns/spawn, speedup "
            << leg.speedup << " (bound " << leg.bound << ") "
            << (leg.within ? "ok" : "EXCEEDED") << "; pooled allocs/task "
            << leg.pooled_allocs_per_task
            << (leg.zero_alloc_steady_state ? " [steady-state zero-alloc]"
                                            : "")
            << (leg.alloc_ok ? "" : " [alloc rate EXCEEDED]") << "\n";
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 9));
  const int warmup = static_cast<int>(args.get_int("warmup", 2));
  const long tasks = args.get_int("tasks", 20000);
  const long deque_items = args.get_int("deque-items", 200000);
  const double tolerance = args.get_double("tolerance", 0.25);
  const std::string out_path = args.get_str("out", "BENCH_spawn_steal.json");

  std::cout << "=== Spawn/steal hot-path guardrail (reps=" << reps
            << ", warmup=" << warmup << ", tasks=" << tasks
            << ", deque-items=" << deque_items
            << ", tolerance=" << tolerance << ") ===\n";

  std::vector<SpawnLeg> spawn_legs;
  spawn_legs.push_back(
      run_spawn_leg("spawn-batch", 1, reps, warmup, tasks, tolerance));
  spawn_legs.push_back(
      run_spawn_leg("spawn-steal", 2, reps, warmup, tasks, tolerance));

  // Raw deque primitives underneath the scheduler paths.
  util::Samples push_pop_ns;
  util::Samples steal_ns;
  for (int r = 0; r < warmup + reps; ++r) {
    rt::ChaseLevDeque<std::intptr_t> d(64);
    {
      util::Stopwatch sw;
      for (long i = 0; i < deque_items; ++i) d.push(i);
      while (d.pop()) {
      }
      if (r >= warmup) {
        push_pop_ns.add(sw.elapsed_ms() * 1e6 /
                        static_cast<double>(2 * deque_items));
      }
    }
    {
      for (long i = 0; i < deque_items; ++i) d.push(i);
      util::Stopwatch sw;
      std::thread thief([&d] {  // dws-lint-sanction: bench drives the thief side of the deque directly, below the scheduler
        while (d.steal()) {
        }
      });
      thief.join();
      if (r >= warmup) {
        steal_ns.add(sw.elapsed_ms() * 1e6 /
                     static_cast<double>(deque_items));
      }
    }
  }
  std::cout << "deque-push-pop: " << push_pop_ns.summary()
            << " ns/op; deque-steal: " << steal_ns.summary()
            << " ns/steal\n";

  bool pass = true;
  for (const auto& leg : spawn_legs) pass = pass && leg.within && leg.alloc_ok;
  // The 1-core leg's high-water mark is deterministic: steady state must
  // be allocation-free outright, not merely low-rate.
  pass = pass && spawn_legs[0].zero_alloc_steady_state;

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"spawn_steal\",\n"
      << "  \"reps\": " << reps << ",\n  \"warmup\": " << warmup << ",\n"
      << "  \"tasks\": " << tasks << ",\n"
      << "  \"deque_items\": " << deque_items << ",\n"
      << "  \"tolerance\": " << tolerance << ",\n  \"legs\": [\n";
  for (const auto& leg : spawn_legs) {
    out << "   {\"workload\": \"" << leg.workload << "\", \"cores\": "
        << leg.cores << ",\n";
    json_stats(out, "heap_ns_per_spawn", leg.heap_spawn_ns);
    out << ",\n";
    json_stats(out, "pooled_ns_per_spawn", leg.pooled_spawn_ns);
    out << ",\n";
    json_stats(out, "heap_ns_per_task", leg.heap_task_ns);
    out << ",\n";
    json_stats(out, "pooled_ns_per_task", leg.pooled_task_ns);
    out << ",\n    \"heap_allocs_per_task\": " << leg.heap_allocs_per_task
        << ", \"pooled_allocs_per_task\": " << leg.pooled_allocs_per_task
        << ",\n    \"pooled_steady_slab_allocs\": "
        << leg.pooled_steady_slab_allocs << ", \"zero_alloc_steady_state\": "
        << (leg.zero_alloc_steady_state ? "true" : "false")
        << ",\n    \"speedup\": " << leg.speedup << ", \"bound\": "
        << leg.bound << ", \"within_bound\": "
        << (leg.within ? "true" : "false") << ", \"alloc_rate_ok\": "
        << (leg.alloc_ok ? "true" : "false") << "},\n";
  }
  out << "   {\"workload\": \"deque-push-pop\",\n";
  json_stats(out, "ns_per_op", push_pop_ns);
  out << "},\n   {\"workload\": \"deque-steal\",\n";
  json_stats(out, "ns_per_steal", steal_ns);
  out << "}\n  ],\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  out.close();
  std::cout << (pass ? "PASS" : "FAIL") << " — wrote " << out_path << "\n";
  return pass ? 0 : 1;
}
