// Related-work comparison (§5): BWS (Ding et al., EuroSys'12 — the
// time-sharing scheduler the paper positions against) vs ABP vs DWS on
// the eight mixes. The paper argues DWS's space-sharing beats BWS's
// improved time-sharing because it removes cross-program interference
// rather than just balancing it.
//
// Usage: bench_bws_comparison [--scale=1.0] [--runs=4]
#include <iostream>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/mixes.hpp"
#include "harness/report.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  harness::ExperimentConfig cfg;
  cfg.work_scale = args.get_double("scale", 1.0);
  cfg.target_runs = static_cast<unsigned>(args.get_int("runs", 4));

  std::cout << "=== Related work: ABP vs BWS vs DWS (sum of normalized"
            << " times per mix) ===\n\n";

  const auto baselines = harness::run_solo_baselines(cfg);

  harness::Table table({"mix", "ABP", "BWS", "DWS", "worst slot ABP",
                        "worst slot BWS", "worst slot DWS"});
  std::vector<double> abp_s, bws_s, dws_s;
  for (const auto& mix : harness::kFigureMixes) {
    const auto abp = harness::run_mix(cfg, mix, SchedMode::kAbp, baselines);
    const auto bws = harness::run_mix(cfg, mix, SchedMode::kBws, baselines);
    const auto dws = harness::run_mix(cfg, mix, SchedMode::kDws, baselines);
    abp_s.push_back(harness::mix_total_normalized(abp));
    bws_s.push_back(harness::mix_total_normalized(bws));
    dws_s.push_back(harness::mix_total_normalized(dws));
    auto worst = [](const harness::MixRun& r) {
      return std::max(r.first.normalized, r.second.normalized);
    };
    table.add_row({harness::mix_label(mix),
                   harness::Table::num(abp_s.back()),
                   harness::Table::num(bws_s.back()),
                   harness::Table::num(dws_s.back()),
                   harness::Table::num(worst(abp)),
                   harness::Table::num(worst(bws)),
                   harness::Table::num(worst(dws))});
  }
  table.add_row({"geomean", harness::Table::num(util::geomean(abp_s)),
                 harness::Table::num(util::geomean(bws_s)),
                 harness::Table::num(util::geomean(dws_s)), "", "", ""});
  table.print(std::cout);
  std::cout << "\n(The worst-slot columns show fairness: BWS's directed"
            << " yield narrows ABP's worst case; DWS's space-sharing"
            << " should narrow it further.)\n";
  return 0;
}
