// §6 future-work extension: adaptive T_SLEEP. The paper fixes T_SLEEP at
// k after a manual sweep (Fig. 6); the obvious extension is to adapt it
// online — double the program's threshold whenever a worker's sleep is
// cut short (premature sleep), decay it back each coordinator tick.
//
// This bench compares fixed thresholds against the adaptive controller
// on the Fig.-6 mix (1, 8) and on a churn-hostile workload (rapidly
// alternating demand). The adaptive row should track the best fixed row
// without per-workload tuning.
//
// Usage: bench_adaptive_tsleep [--scale=1.0] [--runs=4]
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/mixes.hpp"
#include "harness/report.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"

namespace {

/// Rapidly alternating narrow/wide program: the worst case for a fixed
/// threshold (it sleeps at every narrow burst and pays a wake each time).
dws::sim::TaskDag make_churny(double scale) {
  using namespace dws::sim;
  TaskDag dag;
  DagSpan prev{};
  for (int phase = 0; phase < 24; ++phase) {
    DagSpan s = (phase % 2 == 0)
                    ? emit_parallel_for(dag, 1, 2500.0 * scale, 0.2)
                    : emit_parallel_for(dag, 64, 300.0 * scale, 0.2);
    if (phase == 0) {
      dag.set_root(s.entry);
    } else {
      dag.set_continuation(prev.exit, s.entry);
    }
    prev = s;
  }
  return dag;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  harness::ExperimentConfig cfg;
  cfg.work_scale = args.get_double("scale", 1.0);
  cfg.target_runs = static_cast<unsigned>(args.get_int("runs", 4));

  std::cout << "=== §6 extension: adaptive T_SLEEP vs fixed thresholds"
            << " ===\n\n-- Fig.-6 mix (1, 8), sum of normalized times --\n";
  const auto baselines = harness::run_solo_baselines(cfg);

  harness::Table t1({"threshold", "sum", "sleeps", "wakes"});
  auto run18 = [&](int t_sleep, bool adaptive) {
    cfg.params.t_sleep = t_sleep;
    cfg.params.adaptive_t_sleep = adaptive;
    const auto run = harness::run_mix(cfg, {1, 8}, SchedMode::kDws, baselines);
    t1.add_row({adaptive ? "adaptive (base " + std::to_string(t_sleep) + ")"
                         : std::to_string(t_sleep),
                harness::Table::num(harness::mix_total_normalized(run)),
                std::to_string(run.first.raw.sleeps + run.second.raw.sleeps),
                std::to_string(run.first.raw.wakes + run.second.raw.wakes)});
  };
  for (int t : {1, 4, 16, 64}) run18(t, false);
  run18(4, true);
  run18(16, true);
  cfg.params.adaptive_t_sleep = false;
  t1.print(std::cout);

  std::cout << "\n-- churn-hostile workload x2 (mean ms/run, lower is"
            << " better) --\n";
  const sim::TaskDag churny = make_churny(cfg.work_scale);
  harness::Table t2({"threshold", "mean ms/run", "sleeps", "wakes"});
  auto run_churn = [&](int t_sleep, bool adaptive) {
    sim::SimParams params = cfg.params;
    params.t_sleep = t_sleep;
    params.adaptive_t_sleep = adaptive;
    sim::SimProgramSpec a;
    a.name = "a";
    a.mode = SchedMode::kDws;
    a.dag = &churny;
    a.target_runs = cfg.target_runs;
    a.default_mem_intensity = 0.2;
    sim::SimProgramSpec b = a;
    b.name = "b";
    sim::SimEngine engine(params, {a, b});
    const sim::SimResult r = engine.run();
    double mean = 0.0;
    std::uint64_t sleeps = 0, wakes = 0;
    for (const auto& p : r.programs) {
      mean += p.mean_run_time_us / 2000.0;
      sleeps += p.sleeps;
      wakes += p.wakes;
    }
    t2.add_row({adaptive ? "adaptive (base " + std::to_string(t_sleep) + ")"
                         : std::to_string(t_sleep),
                harness::Table::num(mean, 2), std::to_string(sleeps),
                std::to_string(wakes)});
  };
  for (int t : {1, 4, 16, 64}) run_churn(t, false);
  run_churn(4, true);
  run_churn(16, true);
  t2.print(std::cout);

  std::cout << "\n(The adaptive rows should sit near the best fixed row in"
            << " both tables; a fixed threshold can only be right for one"
            << " workload class.)\n";
  return 0;
}
