// Overhead guardrail for the lock-order-graph deadlock analysis
// (src/race/lockgraph): the same workload runs under race::Replay with
// check_deadlocks on and off, in both detector modes, and the on-leg
// mean must stay within the off-leg's noise band. This is the contract
// that lets check_deadlocks default to ON — if recording acquire edges
// or maintaining FastTrack's structural fork-join clock ever grows past
// measurement noise, this bench (and its smoke test) is what fails.
//
// Workloads:
//  - spawn-batch: a flat batch of lock-free tasks (bench_spawn's shape).
//    No task ever holds a lock, so record_acquire never fires; what is
//    measured is the pure spawn-path cost of having the graph armed —
//    FastTrack's structural fork-join clock (sp_vc copy/join per task)
//    and SP-bags' per-acquire null checks. This is the "deadlock
//    analysis is free for lock-free programs" half of the contract.
//  - PNN: the real kernel whose locked combine motivated lock modeling;
//    a realistic (low) lock-event rate, so record_acquire's cost shows
//    up at the rate real programs pay it.
// Deliberately NOT a leg: a lock-per-task stress. Recording is O(prior
// events) per acquire (the eager parallelism bitset), so a kernel that
// takes nested locks in every task pays multiples of its (tiny) task
// cost — bounded by LockGraph's kMaxEvents cap, and not the regime the
// on-by-default decision is based on.
//
// On/off reps alternate (off, on, off, on, ...) so clock drift and
// thermal state land on both legs equally. The bound per leg is
//   on_mean <= off_mean * (1 + 3*cv + tolerance),   cv = max leg cv,
// i.e. "within coefficient of variation" with a CLI-tunable slack for
// noisy CI hosts.
//
// Usage: bench_deadlock_overhead [--reps=7] [--tasks=2000]
//          [--pnn-scale=small|tiny] [--tolerance=0.25]
//          [--out=BENCH_deadlock_overhead.json]
//
// Exit status: 0 when every leg is within bound, 1 otherwise. The JSON
// artifact records every leg either way.
#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

#ifdef DWS_RACE_DISABLED

int main() {
  std::cout << "bench_deadlock_overhead: built with -DDWS_RACE=OFF; "
               "nothing to measure\n";
  return 0;
}

#else  // DWS_RACE_DISABLED

#include "apps/app.hpp"
#include "race/spbags.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace {

using namespace dws;

Config config_for(race::Mode m) {
  Config cfg;
  cfg.mode = SchedMode::kDws;
  cfg.num_cores = m == race::Mode::kFastTrack ? 4 : 2;
  cfg.pin_threads = false;
  return cfg;
}

std::string mode_tag(race::Mode m) {
  return m == race::Mode::kFastTrack ? "fasttrack" : "spbags";
}

/// Flat batch of `tasks` lock-free tasks (see file comment: measures
/// the spawn-path cost of an armed graph, not record_acquire).
void spawn_batch(rt::Scheduler& sched, long tasks) {
  race::region scope("bench-spawn-batch");
  rt::TaskGroup g;
  for (long i = 0; i < tasks; ++i) {
    sched.spawn(g, [] {
      volatile long spin = 0;
      for (int k = 0; k < 64; ++k) spin = spin + k;
    });
  }
  sched.wait(g);
}

struct Leg {
  std::string workload;
  std::string mode;
  util::Samples off_ms;
  util::Samples on_ms;
  double bound = 0.0;    // allowed on/off mean ratio
  double ratio = 0.0;    // measured on/off mean ratio
  bool within = false;
  bool clean = true;     // deadlock analysis stayed clean on every rep
};

double cv(const util::Samples& s) {
  return s.mean() > 0.0 ? s.stddev() / s.mean() : 0.0;
}

void json_stats(std::ostream& os, const char* key, const util::Samples& s) {
  os << "    \"" << key << "\": {\"mean\": " << s.mean()
     << ", \"stddev\": " << s.stddev() << ", \"cv\": " << cv(s)
     << ", \"n\": " << s.count() << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 7));
  const long tasks = args.get_int("tasks", 2000);
  const double tolerance = args.get_double("tolerance", 0.25);
  const std::string pnn_scale = args.get_str("pnn-scale", "small");
  const std::string out_path =
      args.get_str("out", "BENCH_deadlock_overhead.json");
  const apps::Scale scale =
      pnn_scale == "tiny" ? apps::Scale::kTiny : apps::Scale::kSmall;

  std::cout << "=== Deadlock-analysis overhead guardrail (reps=" << reps
            << ", tasks=" << tasks << ", pnn-scale=" << pnn_scale
            << ", tolerance=" << tolerance << ") ===\n";

  std::vector<Leg> legs;
  for (race::Mode mode : {race::Mode::kSpBags, race::Mode::kFastTrack}) {
    // One scheduler (and, for PNN, one app) per mode; each timed rep is
    // its own Replay session so on/off differ ONLY in check_deadlocks.
    rt::Scheduler sched(config_for(mode));
    auto pnn = apps::make_app("PNN", scale);
    if (!pnn) {
      std::cerr << "bench_deadlock_overhead: PNN app unavailable\n";
      return 1;
    }

    struct Workload {
      const char* name;
      std::function<void()> body;
    };
    const Workload workloads[] = {
        {"spawn-batch", [&] { spawn_batch(sched, tasks); }},
        {"pnn", [&] { pnn->run(sched); }},
    };

    for (const auto& wl : workloads) {
      Leg leg;
      leg.workload = wl.name;
      leg.mode = mode_tag(mode);
      {  // warm-up (also primes lazily-built app state)
        race::Replay replay(sched, mode, /*check_deadlocks=*/false);
        wl.body();
      }
      for (int r = 0; r < reps; ++r) {
        for (bool check : {false, true}) {
          util::Stopwatch sw;
          race::Replay replay(sched, mode, check);
          wl.body();
          const auto& dl = replay.deadlocks();  // finish() inside the timing
          const double ms = sw.elapsed_ms();
          (check ? leg.on_ms : leg.off_ms).add(ms);
          if (check && !dl.clean()) leg.clean = false;
        }
      }
      const double band = 3.0 * std::max(cv(leg.on_ms), cv(leg.off_ms));
      leg.bound = 1.0 + band + tolerance;
      leg.ratio = leg.off_ms.mean() > 0.0
                      ? leg.on_ms.mean() / leg.off_ms.mean()
                      : 0.0;
      leg.within = leg.ratio <= leg.bound;
      std::cout << leg.mode << "/" << leg.workload
                << ": off " << leg.off_ms.summary() << " ms, on "
                << leg.on_ms.summary() << " ms, ratio " << leg.ratio
                << " (bound " << leg.bound << ") "
                << (leg.within ? "ok" : "EXCEEDED")
                << (leg.clean ? "" : " [analysis NOT clean]") << "\n";
      legs.push_back(std::move(leg));
    }
  }

  bool pass = true;
  for (const auto& leg : legs) pass = pass && leg.within && leg.clean;

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"deadlock_overhead\",\n"
      << "  \"reps\": " << reps << ",\n  \"tasks\": " << tasks << ",\n"
      << "  \"pnn_scale\": \"" << pnn_scale << "\",\n"
      << "  \"tolerance\": " << tolerance << ",\n  \"legs\": [\n";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const auto& leg = legs[i];
    out << "   {\"workload\": \"" << leg.workload << "\", \"mode\": \""
        << leg.mode << "\",\n";
    json_stats(out, "off_ms", leg.off_ms);
    out << ",\n";
    json_stats(out, "on_ms", leg.on_ms);
    out << ",\n    \"ratio\": " << leg.ratio << ", \"bound\": " << leg.bound
        << ", \"within_bound\": " << (leg.within ? "true" : "false")
        << ", \"analysis_clean\": " << (leg.clean ? "true" : "false")
        << "}" << (i + 1 < legs.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  out.close();
  std::cout << (pass ? "PASS" : "FAIL")
            << " — wrote " << out_path << "\n";
  return pass ? 0 : 1;
}

#endif  // DWS_RACE_DISABLED
