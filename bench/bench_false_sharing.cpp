// False-sharing layout guardrail: measures the two layouts the
// shared-memory interference analysis flagged and fixed, and emits
// BENCH_false_sharing.json (same shape as BENCH_spawn_steal.json).
//
// Legs:
//  - core-table-churn: T claimant threads, each doing try_claim/release
//    churn on its OWN core id through CoreOps — the §3.1 CAS protocol —
//    over the historical PackedCoreSlot table (16 slots per cache line,
//    every neighbour's CAS invalidates the line) versus the production
//    StridedCoreSlot table (one slot per line). Each thread churns a
//    distinct core, so there is no *logical* contention at all: any
//    packed-vs-strided gap is pure cache-line interference, which is
//    exactly what the dws-atomic-array check exists to flag.
//  - steal-storm: an owner pushes and drains a ChaseLevDeque while two
//    thieves steal from the top end, with a foreign writer hammering an
//    atomic word that is line-adjacent to the owner's plain stats
//    counters (packed) versus alignas(64)-isolated from them (padded) —
//    the WorkerStats shape before and after the layout fix.
//
// The guardrail per leg is relative, like the other perf guardrails:
//   fixed_mean <= packed_mean * (1 + 3*cv + tolerance),  cv = max leg cv,
// i.e. the line-isolated layout must never be slower than the packed one
// beyond the noise band. The speedup (packed_mean / fixed_mean) is
// recorded per leg; on a multi-core host the churn leg shows the
// coherence win directly. On a single-CPU host (host_cpus is recorded in
// the JSON) the threads timeshare, no cache line ever migrates between
// caches, and both layouts measure alike — the bound still gates that
// the 64 B/slot padding costs nothing, which is the regression this
// guardrail exists to catch.
//
// Usage: bench_false_sharing [--reps=9] [--warmup=2] [--churn-threads=4]
//          [--churn-iters=200000] [--storm-items=400000]
//          [--tolerance=0.25] [--out=BENCH_false_sharing.json]
//
// Exit status: 0 when every leg is within bound, 1 otherwise. The JSON
// artifact records every leg either way.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/core_ops.hpp"
#include "runtime/deque.hpp"
#include "util/cli.hpp"
#include "util/layout.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace dws;

double cv(const util::Samples& s) {
  return s.mean() > 0.0 ? s.stddev() / s.mean() : 0.0;
}

void json_stats(std::ostream& os, const char* key, const util::Samples& s) {
  os << "    \"" << key << "\": {\"mean\": " << s.mean()
     << ", \"stddev\": " << s.stddev() << ", \"cv\": " << cv(s)
     << ", \"n\": " << s.count() << "}";
}

// ------------------------------------------------------------- churn leg

/// One timed rep of the claim/release churn over slot layout SlotT.
/// Returns ns per CAS transition (claim and release each count as one).
template <template <typename> class SlotT>
double churn_rep(unsigned threads, long iters) {
  using Ops = CoreOps<StdAtomicsPolicy, SlotT>;
  using Slot = typename Ops::Slot;
  std::vector<Slot> slots(threads);
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> team;
  team.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {  // dws-lint-sanction: bench drives the core-table CAS protocol directly, below the scheduler
      const ProgramId pid = static_cast<ProgramId>(t + 1);
      ready.fetch_add(1, std::memory_order_relaxed);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (long i = 0; i < iters; ++i) {
        // Each thread owns core id t outright, so both transitions
        // succeed every time — the loop measures layout, not protocol
        // contention.
        Ops::try_claim(slots.data(), t, pid);
        Ops::release(slots.data(), t, pid);
      }
    });
  }
  while (ready.load(std::memory_order_relaxed) != threads)
    std::this_thread::yield();
  util::Stopwatch sw;
  go.store(true, std::memory_order_release);
  for (auto& th : team) th.join();
  return sw.elapsed_ms() * 1e6 /
         (static_cast<double>(threads) * static_cast<double>(iters) * 2.0);
}

// ------------------------------------------------------------- storm leg

/// The WorkerStats shape BEFORE the layout fix: the owner's plain
/// counters share a cache line with a word other threads write. The
/// foreign writer's RMWs steal the line from the owner on every bump.
struct PackedStatsBlock {
  std::uint64_t owner_pushes = 0;
  std::uint64_t owner_pops = 0;
  std::atomic<std::uint64_t> foreign{0};
};

/// AFTER the fix: owner counters and the cross-thread word on lines of
/// their own, as WorkerStats and the scheduler's shared words are now.
struct alignas(64) PaddedStatsBlock {
  alignas(64) std::uint64_t owner_pushes = 0;
  std::uint64_t owner_pops = 0;
  alignas(64) std::atomic<std::uint64_t> foreign{0};
};

/// One timed rep of the owner's push/drain phase with 2 thieves stealing
/// and a foreign writer hammering Stats::foreign. Returns ns per owner
/// deque operation.
template <typename Stats>
double storm_rep(long items) {
  rt::ChaseLevDeque<std::intptr_t> d(1024);
  Stats st;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> stolen{0};
  std::vector<std::thread> helpers;
  for (int i = 0; i < 2; ++i) {
    helpers.emplace_back([&] {  // dws-lint-sanction: bench drives the thief side of the deque directly, below the scheduler
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (d.steal()) ++n;
      }
      stolen.fetch_add(n, std::memory_order_relaxed);
    });
  }
  helpers.emplace_back([&] {  // dws-lint-sanction: bench needs a foreign writer hammering the stats line under test
    while (!stop.load(std::memory_order_relaxed))
      st.foreign.fetch_add(1, std::memory_order_relaxed);
  });

  util::Stopwatch sw;
  for (long i = 0; i < items; ++i) {
    d.push(i + 1);
    ++st.owner_pushes;
  }
  while (d.pop()) ++st.owner_pops;
  const double ns = sw.elapsed_ms() * 1e6 / static_cast<double>(items);

  stop.store(true, std::memory_order_relaxed);
  for (auto& th : helpers) th.join();
  // Keep the counters observable so the owner-side increments cannot be
  // optimized out from under the measurement.
  if (st.owner_pushes != static_cast<std::uint64_t>(items) ||
      st.owner_pops + stolen.load(std::memory_order_relaxed) <
          st.owner_pushes) {
    std::cerr << "storm accounting hole: pushes=" << st.owner_pushes
              << " pops=" << st.owner_pops << " stolen=" << stolen << "\n";
    std::exit(2);
  }
  return ns;
}

// ---------------------------------------------------------------- legs

/// A/B samples for one leg: the packed (interfering) layout against the
/// line-isolated fix.
struct Leg {
  std::string workload;
  std::string unit;
  util::Samples packed_ns, fixed_ns;
  double speedup = 0.0;  // packed_mean / fixed_mean
  double bound = 0.0;
  bool within = false;
};

template <typename PackedRep, typename FixedRep>
Leg run_leg(const char* name, const char* unit, int reps, int warmup,
            double tolerance, PackedRep packed, FixedRep fixed) {
  Leg leg;
  leg.workload = name;
  leg.unit = unit;
  // Packed/fixed reps alternate so scheduler drift lands on both legs
  // equally; warm-up reps absorb cold caches and thread-pool ramp-up.
  for (int r = 0; r < warmup; ++r) {
    packed();
    fixed();
  }
  for (int r = 0; r < reps; ++r) {
    leg.packed_ns.add(packed());
    leg.fixed_ns.add(fixed());
  }
  const double band = 3.0 * std::max(cv(leg.packed_ns), cv(leg.fixed_ns));
  leg.bound = 1.0 + band + tolerance;
  leg.speedup = leg.fixed_ns.mean() > 0.0
                    ? leg.packed_ns.mean() / leg.fixed_ns.mean()
                    : 0.0;
  leg.within = leg.fixed_ns.mean() <= leg.packed_ns.mean() * leg.bound;
  std::cout << leg.workload << ": packed " << leg.packed_ns.summary() << " "
            << unit << ", fixed " << leg.fixed_ns.summary() << " " << unit
            << ", speedup " << leg.speedup << " (bound " << leg.bound << ") "
            << (leg.within ? "ok" : "EXCEEDED") << "\n";
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 9));
  const int warmup = static_cast<int>(args.get_int("warmup", 2));
  const unsigned churn_threads =
      static_cast<unsigned>(args.get_int("churn-threads", 4));
  const long churn_iters = args.get_int("churn-iters", 200000);
  const long storm_items = args.get_int("storm-items", 400000);
  const double tolerance = args.get_double("tolerance", 0.25);
  const std::string out_path =
      args.get_str("out", "BENCH_false_sharing.json");
  const unsigned host_cpus = std::thread::hardware_concurrency();

  std::cout << "=== False-sharing layout guardrail (reps=" << reps
            << ", warmup=" << warmup << ", churn-threads=" << churn_threads
            << ", churn-iters=" << churn_iters
            << ", storm-items=" << storm_items
            << ", tolerance=" << tolerance << ", host-cpus=" << host_cpus
            << ") ===\n";

  std::vector<Leg> legs;
  legs.push_back(run_leg(
      "core-table-churn", "ns/cas", reps, warmup, tolerance,
      [&] { return churn_rep<PackedCoreSlot>(churn_threads, churn_iters); },
      [&] { return churn_rep<StridedCoreSlot>(churn_threads, churn_iters); }));
  legs.push_back(run_leg(
      "steal-storm", "ns/op", reps, warmup, tolerance,
      [&] { return storm_rep<PackedStatsBlock>(storm_items); },
      [&] { return storm_rep<PaddedStatsBlock>(storm_items); }));

  bool pass = true;
  for (const auto& leg : legs) pass = pass && leg.within;

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"false_sharing\",\n"
      << "  \"reps\": " << reps << ",\n  \"warmup\": " << warmup << ",\n"
      << "  \"churn_threads\": " << churn_threads << ",\n"
      << "  \"churn_iters\": " << churn_iters << ",\n"
      << "  \"storm_items\": " << storm_items << ",\n"
      << "  \"host_cpus\": " << host_cpus << ",\n"
      << "  \"tolerance\": " << tolerance << ",\n  \"legs\": [\n";
  bool first = true;
  for (const auto& leg : legs) {
    if (!first) out << ",\n";
    first = false;
    out << "   {\"workload\": \"" << leg.workload << "\", \"unit\": \""
        << leg.unit << "\",\n";
    json_stats(out, "packed_ns", leg.packed_ns);
    out << ",\n";
    json_stats(out, "fixed_ns", leg.fixed_ns);
    out << ",\n    \"speedup\": " << leg.speedup << ", \"bound\": "
        << leg.bound << ", \"within_bound\": "
        << (leg.within ? "true" : "false") << "}";
  }
  out << "\n  ],\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  out.close();
  std::cout << (pass ? "PASS" : "FAIL") << " — wrote " << out_path << "\n";
  return pass ? 0 : 1;
}
