// Fig. 5: DWS-NC vs DWS on the eight mixes (§4.2 — the value of the
// coordinator's core exchange). DWS-NC sleeps/wakes workers identically
// but never keeps cores disjoint, so it retains ABP-style interference.
//
// Paper's result: DWS-NC performs worse than DWS on every mix.
//
// Usage: bench_fig5_nc [--scale=1.0] [--runs=4] [--csv]
#include <iostream>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/mixes.hpp"
#include "harness/report.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  harness::ExperimentConfig cfg;
  cfg.work_scale = args.get_double("scale", 1.0);
  cfg.target_runs = static_cast<unsigned>(args.get_int("runs", 4));

  std::cout << "=== Fig. 5: DWS-NC vs DWS (effectiveness of the"
            << " coordinator) ===\n"
            << "(normalized execution time vs solo baseline; lower is"
            << " better)\n\n";

  const auto baselines = harness::run_solo_baselines(cfg);

  harness::Table table(
      {"mix", "prog", "DWS-NC", "DWS", "DWS vs DWS-NC"});
  std::vector<double> nc_norms, dws_norms;
  for (const auto& mix : harness::kFigureMixes) {
    const auto nc = harness::run_mix(cfg, mix, SchedMode::kDwsNc, baselines);
    const auto dws = harness::run_mix(cfg, mix, SchedMode::kDws, baselines);
    auto emit = [&](const harness::MixRun::PerProgram& n,
                    const harness::MixRun::PerProgram& d, bool first_row) {
      nc_norms.push_back(n.normalized);
      dws_norms.push_back(d.normalized);
      table.add_row(
          {first_row ? harness::mix_label(mix) : "", n.name,
           harness::Table::num(n.normalized), harness::Table::num(d.normalized),
           harness::Table::num(100.0 * (1.0 - d.normalized / n.normalized),
                               1) +
               "%"});
    };
    emit(nc.first, dws.first, true);
    emit(nc.second, dws.second, false);
  }

  if (args.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nGeomean normalized time: DWS-NC "
            << harness::Table::num(util::geomean(nc_norms)) << "  DWS "
            << harness::Table::num(util::geomean(dws_norms))
            << "  (paper: DWS-NC worse than DWS on every mix)\n";
  return 0;
}
