// Row-wise vs tiled factorizations on the real runtime: the tiled
// formulation trades fine-grained row parallelism for cache-blocked,
// coarser tasks. On a single-core CI host only the task-management
// overhead differs; on a real multicore the tiled version's locality
// dominates.
//
// Usage: bench_blocked_linalg [--n=192] [--block=32] [--reps=3]
#include <iostream>
#include <memory>

#include "apps/blocked_linalg.hpp"
#include "apps/linalg.hpp"
#include "harness/report.hpp"
#include "runtime/scheduler.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 192));
  const auto block = static_cast<std::size_t>(args.get_int("block", 32));
  const int reps = static_cast<int>(args.get_int("reps", 3));

  Config cfg;
  cfg.mode = SchedMode::kDws;
  cfg.num_cores = 0;
  cfg.pin_threads = false;
  rt::Scheduler sched(cfg);

  std::cout << "=== Row-wise vs tiled factorizations (n=" << n
            << ", block=" << block << ", " << reps << " reps, DWS on "
            << sched.num_workers() << " host cores) ===\n\n";

  harness::Table table({"kernel", "ms/run", "verified", "tasks executed"});
  auto measure = [&](apps::App& app) {
    app.run(sched);  // warm-up + verification
    const std::string verdict = app.verify();
    const auto before = sched.stats().totals.tasks_executed;
    util::Stopwatch sw;
    for (int i = 0; i < reps; ++i) app.run(sched);
    const double ms = sw.elapsed_ms() / reps;
    const auto tasks =
        (sched.stats().totals.tasks_executed - before) / reps;
    table.add_row({app.name(), harness::Table::num(ms, 2),
                   verdict.empty() ? "yes" : "NO",
                   std::to_string(tasks)});
  };

  apps::CholeskyApp chol(n, 42);
  apps::BlockedCholeskyApp bchol(n, block, 42);
  apps::LuApp lu(n, 42);
  apps::BlockedLuApp blu(n, block, 42);
  measure(chol);
  measure(bchol);
  measure(lu);
  measure(blu);
  table.print(std::cout);
  std::cout << "\n(The tiled kernels spawn far fewer, larger tasks per"
            << " factorization — compare the task columns.)\n";
  return 0;
}
