// §4.4: "DWS does not degrade the performance of a single work-stealing
// program ... the only overhead in DWS is incurred by the coordinator.
// Our experiment shows that the overhead is negligible."
//
// Two measurements:
//  1. Simulated 16-core machine: every Table-2 profile solo, CLASSIC vs
//     DWS, virtual time.
//  2. Real host runtime: wall time of the real kernels solo, CLASSIC vs
//     DWS, on however many cores the host has (functional check; on a
//     1-core CI host absolute numbers only reflect overhead, which is
//     exactly what this experiment is about).
//
// Usage: bench_single_program_overhead [--scale=1.0] [--real-reps=3]
//                                      [--skip-real]
#include <iostream>

#include "apps/app.hpp"
#include "apps/profiles.hpp"
#include "harness/report.hpp"
#include "runtime/scheduler.hpp"
#include "sim/engine.hpp"
#include "util/affinity.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

double simulate_solo_mode(const dws::apps::SimAppProfile& profile,
                          dws::SchedMode mode) {
  dws::sim::SimParams params;
  dws::sim::SimProgramSpec spec;
  spec.name = profile.name;
  spec.mode = mode;
  spec.dag = &profile.dag;
  spec.target_runs = 3;
  spec.default_mem_intensity = profile.mem_intensity;
  return dws::sim::simulate_solo(params, spec).programs[0].mean_run_time_us;
}

double time_real_runs(dws::apps::App& app, dws::SchedMode mode, int reps) {
  dws::Config cfg;
  cfg.mode = mode;
  cfg.num_cores = 0;  // host width
  cfg.pin_threads = false;
  dws::rt::Scheduler sched(cfg);
  dws::util::Stopwatch sw;
  for (int i = 0; i < reps; ++i) app.run(sched);
  return sw.elapsed_ms() / reps;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const int real_reps = static_cast<int>(args.get_int("real-reps", 3));

  std::cout << "=== §4.4: single-program overhead of DWS (solo, all cores)"
            << " ===\n\n-- Simulated 16-core machine (virtual ms/run) --\n";
  harness::Table sim_table({"app", "CLASSIC", "DWS", "DWS overhead"});
  for (const auto& profile : apps::make_all_sim_profiles(scale)) {
    const double classic = simulate_solo_mode(profile, SchedMode::kClassic);
    const double dws = simulate_solo_mode(profile, SchedMode::kDws);
    sim_table.add_row(
        {profile.name, harness::Table::num(classic / 1000.0, 2),
         harness::Table::num(dws / 1000.0, 2),
         harness::Table::num(100.0 * (dws / classic - 1.0), 2) + "%"});
  }
  sim_table.print(std::cout);

  if (!args.get_bool("skip-real", false)) {
    std::cout << "\n-- Real host runtime (wall ms/run, "
              << util::hardware_cores() << " host cores) --\n";
    harness::Table real_table({"app", "CLASSIC", "DWS", "DWS overhead"});
    for (const char* name : apps::kAppNames) {
      auto app = apps::make_app(name, apps::Scale::kSmall);
      const double classic = time_real_runs(*app, SchedMode::kClassic,
                                            real_reps);
      const double dws = time_real_runs(*app, SchedMode::kDws, real_reps);
      real_table.add_row(
          {name, harness::Table::num(classic, 1),
           harness::Table::num(dws, 1),
           harness::Table::num(100.0 * (dws / classic - 1.0), 1) + "%"});
    }
    real_table.print(std::cout);
  }
  std::cout << "\n(paper: DWS matches traditional work-stealing for a single"
            << " program; coordinator overhead negligible)\n";
  return 0;
}
