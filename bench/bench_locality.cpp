// Locality guardrail: tiered (near-first) victim selection against the
// historical uniform sweep, emitting BENCH_locality.json (same shape as
// the other BENCH_*.json guardrail artifacts).
//
// Legs (A = uniform baseline, B = tiered):
//  - sim-cross-socket-corun: two DWS programs co-running on the paper's
//    16-core / 2-socket machine in the simulator, with tier-dependent
//    steal-migration costs switched ON (they default to zero so the paper
//    figures are untouched). Every steal that crosses the interconnect
//    pays its tier's transfer cost, so near-first ordering buys real
//    simulated time. Metric: mean per-run time averaged over the two
//    programs; seeds vary per rep, paired between A and B.
//  - sim-blocked-linalg: a solo blocked-factorization-shaped workload
//    (decreasing-parallelism phases, memory-intense tiles) on the same
//    NUMA machine — the narrow trailing phases are where thieves roam and
//    remote steals hurt.
//  - runtime-blocked-linalg: the real runtime running the tiled Cholesky
//    kernel under a synthetic 2-socket topology, tiered vs uniform. On a
//    CI host (often 1-2 CPUs, no real NUMA) this leg is a *neutrality*
//    guardrail: tiered must not be slower beyond the noise band. The JSON
//    records the per-tier steal counters of the tiered run, proving the
//    near-first order was actually exercised rather than passing
//    vacuously.
//
// Guardrail per leg, like the other perf guardrails:
//   tiered_mean <= uniform_mean * (1 + 3*cv + tolerance),  cv = max leg cv.
//
// Usage: bench_locality [--reps=7] [--warmup=1] [--runs=3] [--n=96]
//          [--block=32] [--tolerance=0.25] [--out=BENCH_locality.json]
//
// Exit status: 0 when every leg is within bound, 1 otherwise.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/blocked_linalg.hpp"
#include "core/topology.hpp"
#include "runtime/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace dws;

double cv(const util::Samples& s) {
  return s.mean() > 0.0 ? s.stddev() / s.mean() : 0.0;
}

void json_stats(std::ostream& os, const char* key, const util::Samples& s) {
  os << "    \"" << key << "\": {\"mean\": " << s.mean()
     << ", \"stddev\": " << s.stddev() << ", \"cv\": " << cv(s)
     << ", \"n\": " << s.count() << "}";
}

/// The paper's 2-socket testbed with NUMA steal-transfer costs enabled.
/// Same-socket steals are near-free; crossing the interconnect costs a
/// few sweep-lengths of time (order-of-magnitude 2010s x86 QPI).
sim::SimParams numa_machine(VictimPolicy policy, std::uint64_t seed) {
  sim::SimParams p;
  p.num_cores = 16;
  p.num_sockets = 2;
  p.victim_policy = policy;
  p.steal_tier_migration_us[static_cast<int>(DistanceTier::kVeryNear)] = 0.0;
  p.steal_tier_migration_us[static_cast<int>(DistanceTier::kNear)] = 0.5;
  p.steal_tier_migration_us[static_cast<int>(DistanceTier::kFar)] = 8.0;
  p.steal_tier_migration_us[static_cast<int>(DistanceTier::kVeryFar)] = 16.0;
  p.seed = seed;
  return p;
}

/// One co-run rep: three DWS programs over the NUMA machine; returns the
/// mean per-run time (us) averaged over all three. Two programs would each
/// get exactly one 8-core socket from the topology-aware coordinator and
/// never steal across the interconnect; the third forces one worker set to
/// straddle the socket boundary, so remote steals genuinely occur and the
/// victim policy has something to decide. When `sim_tiers` is non-null the
/// per-tier steal counts of all programs are accumulated into it.
double corun_rep(VictimPolicy policy, std::uint64_t seed, unsigned runs,
                 const sim::TaskDag* dag_a, const sim::TaskDag* dag_b,
                 const sim::TaskDag* dag_c, std::uint64_t* sim_tiers) {
  sim::SimProgramSpec a;
  a.name = "A";
  a.mode = SchedMode::kDws;
  a.dag = dag_a;
  a.target_runs = runs;
  a.default_mem_intensity = 0.5;
  sim::SimProgramSpec b = a;
  b.name = "B";
  b.dag = dag_b;
  sim::SimProgramSpec c = a;
  c.name = "C";
  c.dag = dag_c;
  sim::SimEngine engine(numa_machine(policy, seed), {a, b, c});
  const sim::SimResult r = engine.run();
  double sum = 0.0;
  for (const auto& prog : r.programs) {
    sum += prog.mean_run_time_us;
    if (sim_tiers != nullptr) {
      for (unsigned t = 0; t < kNumDistanceTiers; ++t) {
        sim_tiers[t] += prog.steals_by_tier[t];
      }
    }
  }
  return sum / static_cast<double>(r.programs.size());
}

/// One solo blocked-linalg-shaped rep in the simulator; returns the mean
/// per-run time (us).
double sim_linalg_rep(VictimPolicy policy, std::uint64_t seed, unsigned runs,
                      const sim::TaskDag* dag) {
  sim::SimProgramSpec s;
  s.name = "linalg";
  s.mode = SchedMode::kDws;
  s.dag = dag;
  s.target_runs = runs;
  s.default_mem_intensity = 0.7;
  const sim::SimResult r = sim::simulate_solo(numa_machine(policy, seed), s);
  return r.programs[0].mean_run_time_us;
}

/// Accumulated per-tier steal evidence from the tiered runtime legs.
struct TierEvidence {
  std::uint64_t attempts[kNumDistanceTiers] = {0, 0, 0, 0};
  std::uint64_t steals[kNumDistanceTiers] = {0, 0, 0, 0};
};

/// One real-runtime rep: tiled Cholesky on a synthetic 2-socket machine.
/// Returns ms per factorization; accumulates tier counters when asked.
double runtime_linalg_rep(VictimPolicy policy, std::size_t n,
                          std::size_t block, TierEvidence* evidence) {
  Config cfg;
  cfg.mode = SchedMode::kDws;
  cfg.num_cores = 8;
  cfg.num_sockets = 2;
  cfg.victim_policy = policy;
  cfg.pin_threads = false;  // CI hosts may have fewer cores than k
  rt::Scheduler sched(cfg);
  apps::BlockedCholeskyApp app(n, block, 42);
  app.run(sched);  // warm-up (first touch + pool ramp)
  util::Stopwatch sw;
  app.run(sched);
  const double ms = sw.elapsed_ms();
  if (evidence != nullptr) {
    const rt::SchedulerStats s = sched.stats();
    for (unsigned t = 0; t < kNumDistanceTiers; ++t) {
      evidence->attempts[t] += s.totals.steal_attempts_by_tier[t];
      evidence->steals[t] += s.totals.steals_by_tier[t];
    }
  }
  return ms;
}

struct Leg {
  std::string workload;
  std::string unit;
  util::Samples uniform, tiered;
  double speedup = 0.0;  // uniform_mean / tiered_mean
  double bound = 0.0;
  bool within = false;
};

template <typename UniformRep, typename TieredRep>
Leg run_leg(const char* name, const char* unit, int reps, int warmup,
            double tolerance, UniformRep uniform, TieredRep tiered) {
  Leg leg;
  leg.workload = name;
  leg.unit = unit;
  // A/B reps alternate so host drift lands on both policies equally.
  for (int r = 0; r < warmup; ++r) {
    uniform();
    tiered();
  }
  for (int r = 0; r < reps; ++r) {
    leg.uniform.add(uniform());
    leg.tiered.add(tiered());
  }
  const double band = 3.0 * std::max(cv(leg.uniform), cv(leg.tiered));
  leg.bound = 1.0 + band + tolerance;
  leg.speedup =
      leg.tiered.mean() > 0.0 ? leg.uniform.mean() / leg.tiered.mean() : 0.0;
  leg.within = leg.tiered.mean() <= leg.uniform.mean() * leg.bound;
  std::cout << leg.workload << ": uniform " << leg.uniform.summary() << " "
            << unit << ", tiered " << leg.tiered.summary() << " " << unit
            << ", speedup " << leg.speedup << " (bound " << leg.bound << ") "
            << (leg.within ? "ok" : "EXCEEDED") << "\n";
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 7));
  const int warmup = static_cast<int>(args.get_int("warmup", 1));
  const unsigned runs = static_cast<unsigned>(args.get_int("runs", 3));
  const auto n = static_cast<std::size_t>(args.get_int("n", 96));
  const auto block = static_cast<std::size_t>(args.get_int("block", 32));
  const double tolerance = args.get_double("tolerance", 0.25);
  const std::string out_path = args.get_str("out", "BENCH_locality.json");
  const unsigned host_cpus = std::thread::hardware_concurrency();

  std::cout << "=== Locality guardrail: tiered vs uniform victim selection"
            << " (reps=" << reps << ", warmup=" << warmup << ", runs=" << runs
            << ", n=" << n << ", block=" << block
            << ", tolerance=" << tolerance << ", host-cpus=" << host_cpus
            << ") ===\n";

  // Co-run mix: two irregular trees against an iterative stencil — the
  // §4 flavour of "programs with phase-shifted demand", which keeps the
  // coordinators exchanging cores (and thieves roaming) all run. Three
  // programs on 16 cores guarantee at least one worker set straddles the
  // socket boundary (16/3 never lands on an 8-core socket edge).
  const sim::TaskDag mix_a =
      sim::make_irregular_tree(/*seed=*/7, /*target_nodes=*/900,
                               /*max_fanout=*/4, 20.0, 120.0, 0.5);
  const sim::TaskDag mix_b = sim::make_iterative_phases(24, 48, 40.0, 0.5);
  const sim::TaskDag mix_c =
      sim::make_irregular_tree(/*seed=*/13, /*target_nodes=*/700,
                               /*max_fanout=*/4, 20.0, 120.0, 0.5);
  // Blocked right-looking factorization shape: wide early phases, narrow
  // memory-heavy trailing ones.
  const sim::TaskDag linalg =
      sim::make_decreasing_parallelism(24, 48, 2, 70.0, 0.7);

  std::vector<Leg> legs;
  std::uint64_t corun_uniform_tiers[kNumDistanceTiers] = {0, 0, 0, 0};
  std::uint64_t corun_tiered_tiers[kNumDistanceTiers] = {0, 0, 0, 0};
  {
    std::uint64_t ua = 0, ta = 0;
    legs.push_back(run_leg(
        "sim-cross-socket-corun", "us/run", reps, warmup, tolerance,
        [&] {
          return corun_rep(VictimPolicy::kUniform, 0xD5EED + ua++, runs,
                           &mix_a, &mix_b, &mix_c, corun_uniform_tiers);
        },
        [&] {
          return corun_rep(VictimPolicy::kTiered, 0xD5EED + ta++, runs,
                           &mix_a, &mix_b, &mix_c, corun_tiered_tiers);
        }));
  }
  {
    std::uint64_t ua = 0, ta = 0;
    legs.push_back(run_leg(
        "sim-blocked-linalg", "us/run", reps, warmup, tolerance,
        [&] {
          return sim_linalg_rep(VictimPolicy::kUniform, 0xB10C + ua++, runs,
                                &linalg);
        },
        [&] {
          return sim_linalg_rep(VictimPolicy::kTiered, 0xB10C + ta++, runs,
                                &linalg);
        }));
  }
  TierEvidence evidence;
  legs.push_back(run_leg(
      "runtime-blocked-linalg", "ms/run", reps, warmup, tolerance,
      [&] {
        return runtime_linalg_rep(VictimPolicy::kUniform, n, block, nullptr);
      },
      [&] {
        return runtime_linalg_rep(VictimPolicy::kTiered, n, block, &evidence);
      }));

  bool pass = true;
  for (const auto& leg : legs) pass = pass && leg.within;
  // The neutral runtime leg must not pass vacuously: the tiered scheduler
  // has a 2-socket model, so near-tier probes must actually occur.
  const auto near_attempts =
      evidence.attempts[static_cast<int>(DistanceTier::kNear)];
  if (near_attempts == 0) {
    std::cerr << "tiered runtime leg recorded no near-tier steal attempts —"
              << " near-first ordering was not exercised\n";
    pass = false;
  }
  // Likewise the co-run leg: the uniform baseline must have crossed the
  // interconnect at least once, or the mix never left its home socket and
  // the tiered-vs-uniform comparison compared nothing.
  const auto far_idx = static_cast<int>(DistanceTier::kFar);
  if (corun_uniform_tiers[far_idx] +
          corun_uniform_tiers[static_cast<int>(DistanceTier::kVeryFar)] ==
      0) {
    std::cerr << "co-run leg recorded no cross-socket steals under the"
              << " uniform baseline — the mix is socket-local and the leg"
              << " is vacuous\n";
    pass = false;
  }

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"locality\",\n"
      << "  \"reps\": " << reps << ",\n  \"warmup\": " << warmup << ",\n"
      << "  \"sim_runs\": " << runs << ",\n  \"linalg_n\": " << n << ",\n"
      << "  \"linalg_block\": " << block << ",\n"
      << "  \"host_cpus\": " << host_cpus << ",\n"
      << "  \"tolerance\": " << tolerance << ",\n  \"legs\": [\n";
  bool first = true;
  for (const auto& leg : legs) {
    if (!first) out << ",\n";
    first = false;
    out << "   {\"workload\": \"" << leg.workload << "\", \"unit\": \""
        << leg.unit << "\",\n";
    json_stats(out, "uniform", leg.uniform);
    out << ",\n";
    json_stats(out, "tiered", leg.tiered);
    out << ",\n    \"speedup\": " << leg.speedup << ", \"bound\": "
        << leg.bound << ", \"within_bound\": "
        << (leg.within ? "true" : "false") << "}";
  }
  out << "\n  ],\n  \"corun_uniform_steals_by_tier\": [";
  for (unsigned t = 0; t < kNumDistanceTiers; ++t) {
    out << (t > 0 ? ", " : "") << corun_uniform_tiers[t];
  }
  out << "],\n  \"corun_tiered_steals_by_tier\": [";
  for (unsigned t = 0; t < kNumDistanceTiers; ++t) {
    out << (t > 0 ? ", " : "") << corun_tiered_tiers[t];
  }
  out << "],\n  \"tiered_runtime_steal_attempts_by_tier\": [";
  for (unsigned t = 0; t < kNumDistanceTiers; ++t) {
    out << (t > 0 ? ", " : "") << evidence.attempts[t];
  }
  out << "],\n  \"tiered_runtime_steals_by_tier\": [";
  for (unsigned t = 0; t < kNumDistanceTiers; ++t) {
    out << (t > 0 ? ", " : "") << evidence.steals[t];
  }
  out << "],\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  out.close();
  std::cout << (pass ? "PASS" : "FAIL") << " — wrote " << out_path << "\n";
  return pass ? 0 : 1;
}
