// Demand-adaptivity timeline: samples each program's active worker count
// over virtual time for one mix under DWS, printing an ASCII strip chart
// of cores changing hands — the qualitative picture behind Fig. 4's
// numbers (§4.1: "the cores are adjusted among the co-running programs
// dynamically").
//
// Usage: bench_timeline [--mix-a=3] [--mix-b=8] [--runs=2]
//                       [--sample-ms=2] [--mode=DWS] [--out=<dir>]
//
// With --out, the full result (per-program records, timeline, per-core
// utilization) is also exported as CSV into the given directory.
#include <filesystem>
#include <iostream>
#include <string>

#include "apps/profiles.hpp"
#include "harness/export.hpp"
#include "harness/mixes.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dws;
  const util::CliArgs args(argc, argv);
  const auto id_a = static_cast<unsigned>(args.get_int("mix-a", 3));
  const auto id_b = static_cast<unsigned>(args.get_int("mix-b", 8));
  const auto runs = static_cast<unsigned>(args.get_int("runs", 2));
  const double sample_ms = args.get_double("sample-ms", 2.0);
  SchedMode mode = SchedMode::kDws;
  if (!parse_mode(args.get_str("mode", "DWS"), mode)) {
    std::cerr << "unknown --mode\n";
    return 1;
  }

  sim::SimParams params;
  params.timeline_sample_period_us = sample_ms * 1000.0;

  const auto prof_a = apps::make_sim_profile(harness::app_name(id_a));
  const auto prof_b = apps::make_sim_profile(harness::app_name(id_b));
  auto make_spec = [&](const apps::SimAppProfile& p) {
    sim::SimProgramSpec s;
    s.name = p.name;
    s.mode = mode;
    s.dag = &p.dag;
    s.target_runs = runs;
    s.default_mem_intensity = p.mem_intensity;
    return s;
  };
  sim::SimEngine engine(params, {make_spec(prof_a), make_spec(prof_b)});
  const sim::SimResult r = engine.run();

  std::cout << "=== Active workers over time: " << prof_a.name << " + "
            << prof_b.name << " under " << to_string(mode) << " ===\n"
            << "one row per " << sample_ms << " ms; A = " << prof_a.name
            << " active workers, B = " << prof_b.name
            << ", . = free cores (16 columns)\n\n";
  for (const auto& s : r.timeline) {
    const unsigned a = s.active_workers[0];
    const unsigned b = s.active_workers[1];
    std::string bar;
    for (unsigned i = 0; i < a && bar.size() < 16; ++i) bar += 'A';
    for (unsigned i = 0; i < b && bar.size() < 16; ++i) bar += 'B';
    while (bar.size() < 16) bar += '.';
    std::cout << harness::Table::num(s.t_us / 1000.0, 1) << "ms  [" << bar
              << "]  A=" << a << " B=" << b << " free=" << s.free_cores
              << "\n";
  }
  std::cout << "\ntotal " << r.timeline.size() << " samples over "
            << harness::Table::num(r.total_time_us / 1000.0, 1) << " ms\n";

  if (args.has("out")) {
    const std::string dir = args.get_str("out");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string stem = "timeline_" + prof_a.name + "_" + prof_b.name +
                             "_" + to_string(mode);
    if (const std::string err = harness::export_result(dir, stem, r);
        !err.empty()) {
      std::cerr << "export failed: " << err << "\n";
      return 1;
    }
    std::cout << "exported CSVs to " << dir << "/" << stem << "_*.csv\n";
  }
  return 0;
}
