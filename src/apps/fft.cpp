#include "apps/fft.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <sstream>

#include "runtime/api.hpp"
#include "util/rng.hpp"

namespace dws::apps {

namespace {

using Cplx = std::complex<double>;

/// Recursive out-of-place radix-2 FFT of data[offset], data[offset+stride],
/// ... (n elements) into out[0..n). Serial version.
void fft_serial(const Cplx* data, std::size_t n, std::size_t stride,
                Cplx* out, Cplx* scratch) {
  if (n == 1) {
    out[0] = data[0];
    return;
  }
  const std::size_t half = n / 2;
  fft_serial(data, half, stride * 2, scratch, out);                // evens
  fft_serial(data + stride, half, stride * 2, scratch + half, out + half);
  for (std::size_t i = 0; i < half; ++i) {
    const double angle = -2.0 * std::numbers::pi *
                         static_cast<double>(i) / static_cast<double>(n);
    const Cplx tw = std::polar(1.0, angle) * scratch[half + i];
    out[i] = scratch[i] + tw;
    out[i + half] = scratch[i] - tw;
  }
}

constexpr std::size_t kParallelCutoff = 256;

void fft_parallel(rt::Scheduler& sched, const Cplx* data, std::size_t n,
                  std::size_t stride, Cplx* out, Cplx* scratch) {
  if (n <= kParallelCutoff) {
    // Footprint of the serial subtree: reads the strided input segment,
    // fills out[0..n) using scratch[0..n) as working space.
    race::read(data, n, static_cast<std::ptrdiff_t>(stride));
    race::write(out, n);
    race::write(scratch, n);
    fft_serial(data, n, stride, out, scratch);
    return;
  }
  const std::size_t half = n / 2;
  rt::parallel_invoke(
      sched,
      [&] { fft_parallel(sched, data, half, stride * 2, scratch, out); },
      [&] {
        fft_parallel(sched, data + stride, half, stride * 2, scratch + half,
                     out + half);
      });
  // Parallel butterfly combine.
  rt::parallel_for(sched, 0, static_cast<std::int64_t>(half), 512,
                   [&](std::int64_t b, std::int64_t e) {
                     race::read(scratch + b, static_cast<std::size_t>(e - b));
                     race::read(scratch + half + b,
                                static_cast<std::size_t>(e - b));
                     race::write(out + b, static_cast<std::size_t>(e - b));
                     race::write(out + half + b,
                                 static_cast<std::size_t>(e - b));
                     for (std::int64_t i = b; i < e; ++i) {
                       const double angle =
                           -2.0 * std::numbers::pi * static_cast<double>(i) /
                           static_cast<double>(n);
                       const Cplx tw =
                           std::polar(1.0, angle) * scratch[half + i];
                       out[i] = scratch[i] + tw;
                       out[i + half] = scratch[i] - tw;
                     }
                   });
}

}  // namespace

FftApp::FftApp(std::size_t n, std::uint64_t seed) : n_(n) {
  assert(n >= 2 && (n & (n - 1)) == 0 && "n must be a power of two");
  util::Xoshiro256 rng(seed);
  input_.resize(n_);
  for (auto& x : input_) {
    x = Cplx(rng.next_double(-1.0, 1.0), rng.next_double(-1.0, 1.0));
  }
  output_.assign(n_, Cplx{});
}

void FftApp::run(rt::Scheduler& sched) {
  race::region race_scope("FFT");
  std::vector<Cplx> scratch(n_);
  output_.assign(n_, Cplx{});
  fft_parallel(sched, input_.data(), n_, 1, output_.data(), scratch.data());
}

void FftApp::run_serial() {
  std::vector<Cplx> scratch(n_);
  output_.assign(n_, Cplx{});
  fft_serial(input_.data(), n_, 1, output_.data(), scratch.data());
}

std::string FftApp::verify() const {
  // Parseval's theorem: sum |x|^2 == (1/n) sum |X|^2, plus a spot DFT
  // check of a few bins against the direct definition.
  double time_energy = 0.0, freq_energy = 0.0;
  for (const auto& x : input_) time_energy += std::norm(x);
  for (const auto& x : output_) freq_energy += std::norm(x);
  const double parseval_err =
      std::abs(time_energy - freq_energy / static_cast<double>(n_)) /
      (time_energy + 1e-30);
  if (parseval_err > 1e-9) {
    std::ostringstream os;
    os << "Parseval mismatch: relative error " << parseval_err;
    return os.str();
  }
  for (std::size_t bin : {std::size_t{0}, n_ / 3, n_ - 1}) {
    Cplx direct{};
    for (std::size_t t = 0; t < n_; ++t) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(bin) *
                           static_cast<double>(t) / static_cast<double>(n_);
      direct += input_[t] * std::polar(1.0, angle);
    }
    if (std::abs(direct - output_[bin]) >
        1e-6 * (std::abs(direct) + 1.0)) {
      std::ostringstream os;
      os << "bin " << bin << ": direct DFT " << direct << " != FFT "
         << output_[bin];
      return os.str();
    }
  }
  return {};
}

}  // namespace dws::apps
