// Race certification for the simulator's DAG extraction.
//
// The evaluation figures run on sim::Machine over TaskDags produced by
// the DagProfile generators (apps/profiles.*). Those DAGs claim to be
// fork-join programs — replay_dag makes the claim checkable by
// *executing* a DAG as the fork-join program it encodes, on the real
// runtime: each split node spawns its children into a TaskGroup and
// waits, serial chains run inline, and every node "reads" each of its
// dependence predecessors' results and "publishes" its own through
// race::read/write annotations. Driven under a race::Replay session,
// the detector then certifies that every dependence edge of the DAG is
// realized by the series-parallel order of the spawn structure — the
// same certificate the real kernels get. Both modes work: SP-bags
// certifies the whole DAG from one serial elision; FastTrack checks the
// same program on the live parallel workers (the replayer's bookkeeping
// is internally synchronized for that case).
//
// Structural defects the replay itself detects (independently of the
// detector, and beyond what TaskDag::validate can see): a child chain
// that terminates at the wrong join (e.g. a nested chain claiming an
// outer join), join fan-in that does not match its split, nodes executed
// twice or never, and a program that ends with a pending join.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "sim/dag.hpp"

namespace dws::apps {

struct DagReplayStats {
  std::uint64_t nodes = 0;       ///< DAG size
  std::uint64_t executions = 0;  ///< total node-body executions
  double work_replayed = 0.0;    ///< sum of work_us over executions
  /// Structural defects found by the replay; empty == certified shape.
  std::vector<std::string> defects;

  [[nodiscard]] bool clean() const noexcept { return defects.empty(); }
};

/// Execute `dag` as a fork-join program on `sched`, annotating every
/// dependence edge for the race detector. Run it under race::Replay to
/// certify; under Mode::kSpBags drive it from the replay thread only.
DagReplayStats replay_dag(rt::Scheduler& sched, const sim::TaskDag& dag);

}  // namespace dws::apps
