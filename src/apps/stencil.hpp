// p-6: Heat — five-point Jacobi heat distribution on a 2D grid.
// p-7: SOR — red-black successive over-relaxation on a 2D grid.
// Both are iterative, memory-bound stencils: abundant parallelism inside
// a sweep, a barrier between sweeps (the data-intensive co-runners whose
// cache behaviour §4.1 discusses for p-7).
#pragma once

#include <vector>

#include "apps/app.hpp"

namespace dws::apps {

class HeatApp final : public App {
 public:
  HeatApp(std::size_t rows, std::size_t cols, unsigned iterations);

  [[nodiscard]] const char* name() const noexcept override { return "Heat"; }
  void run(rt::Scheduler& sched) override;
  void run_serial() override;
  [[nodiscard]] std::string verify() const override;

  [[nodiscard]] double checksum() const;

 private:
  void init_grid(std::vector<double>& g) const;
  std::size_t rows_, cols_;
  unsigned iterations_;
  std::vector<double> grid_;     // result of the last run
  mutable std::vector<double> reference_;  // lazily computed serial result
};

class SorApp final : public App {
 public:
  SorApp(std::size_t rows, std::size_t cols, unsigned iterations,
         double omega = 1.5);

  [[nodiscard]] const char* name() const noexcept override { return "SOR"; }
  void run(rt::Scheduler& sched) override;
  void run_serial() override;
  [[nodiscard]] std::string verify() const override;

  [[nodiscard]] double checksum() const;

 private:
  void init_grid(std::vector<double>& g) const;
  void sweep_color(rt::Scheduler* sched, std::vector<double>& g,
                   int color) const;
  std::size_t rows_, cols_;
  unsigned iterations_;
  double omega_;
  std::vector<double> grid_;
  mutable std::vector<double> reference_;
};

}  // namespace dws::apps
