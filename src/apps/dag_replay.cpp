#include "apps/dag_replay.hpp"

#include <mutex>
#include <sstream>
#include <string>
#include <utility>

#include "runtime/api.hpp"

namespace dws::apps {

namespace {

using sim::kNoNode;
using sim::NodeId;

/// Streams one defect line; the destructor (end of the full expression)
/// appends it to the stats. Usage: defect() << "node " << u << " ...".
class DefectLine {
 public:
  DefectLine(DagReplayStats& stats, std::mutex& m) : stats_(stats), m_(m) {}
  DefectLine(const DefectLine&) = delete;
  DefectLine& operator=(const DefectLine&) = delete;
  ~DefectLine() {
    std::lock_guard<std::mutex> lk(m_);
    stats_.defects.push_back(os_.str());
  }

  template <typename T>
  DefectLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  DagReplayStats& stats_;
  std::mutex& m_;
  std::ostringstream os_;
};

class DagReplayer {
 public:
  DagReplayer(rt::Scheduler& sched, const sim::TaskDag& dag)
      : sched_(sched),
        dag_(dag),
        preds_(dag.predecessors()),
        fan_in_(dag.join_counts()),
        exec_count_(dag.size(), 0),
        cells_(dag.size(), 0.0) {}

  DagReplayStats run() {
    stats_.nodes = dag_.size();
    if (dag_.empty() || dag_.root() == kNoNode ||
        dag_.root() >= dag_.size()) {
      defect() << "DAG has no (valid) root";
      return std::move(stats_);
    }
    const NodeId tail = run_chain(dag_.root());
    if (tail != kNoNode) {
      defect() << "program ended with join " << tail
               << " signaled but never executed";
    }
    for (NodeId u = 0; u < static_cast<NodeId>(dag_.size()); ++u) {
      if (exec_count_[u] == 0) defect() << "node " << u << " never executed";
    }
    return std::move(stats_);
  }

 private:
  DefectLine defect() { return DefectLine(stats_, m_); }

  void exec_node(NodeId u) {
    // Under a FastTrack replay the chains execute on concurrent workers,
    // so the bookkeeping takes a (deliberately unannotated) mutex — it
    // serializes the counters without adding edges to the modeled
    // happens-before relation. The cells_ accesses stay outside it: in a
    // well-formed DAG each dependence edge is realized by real spawn/join
    // synchronization, and proving that is the point of the replay.
    bool executed_twice = false;
    {
      std::lock_guard<std::mutex> lk(m_);
      executed_twice = ++exec_count_[u] == 2;
      ++stats_.executions;
      stats_.work_replayed += dag_.node(u).work_us;
    }
    if (executed_twice) {
      defect() << "node " << u << " executed more than once";
    }
    // Dependence footprint: consume every predecessor's result, publish
    // our own. Under race::Replay this is exactly the check that the
    // spawn structure serializes each dependence edge.
    for (const NodeId p : preds_[u]) race::read(&cells_[p]);
    race::write(&cells_[u]);
    cells_[u] += dag_.node(u).work_us;
  }

  /// Execute the chain starting at `u`. Returns the join this chain
  /// terminates into (a continuation with fan-in > 1, executed by the
  /// frame that owns the matching split), or kNoNode if the chain is the
  /// end of the program.
  NodeId run_chain(NodeId u) {
    while (true) {
      exec_node(u);
      const sim::DagNode& n = dag_.node(u);
      if (!n.spawns.empty()) {
        const NodeId join = n.continuation;
        rt::TaskGroup group;
        std::vector<NodeId> child_tail(n.spawns.size(), kNoNode);
        for (std::size_t i = 0; i < n.spawns.size(); ++i) {
          const NodeId child = n.spawns[i];
          NodeId* slot = &child_tail[i];
          // Each child writes only its own tail slot and the parent reads
          // them after wait(), race-free by strictness. Deliberately NOT
          // annotated: child_tail lives on the heap and is freed at frame
          // exit, so the allocator recycles its address into logically
          // parallel sibling frames — the detectors have no allocation
          // hooks and would report write-write races on the reused
          // address (same reason the bookkeeping mutex below is
          // unannotated; see exec_node).
          sched_.spawn(group, [this, child, slot] {  // dws-lint-sanction: replayer tail-slot bookkeeping, annotating it trips malloc-recycling false positives
            *slot = run_chain(child);
          });
        }
        sched_.wait(group);
        if (join == kNoNode) {
          defect() << "split node " << u << " has no continuation join";
          return kNoNode;
        }
        if (fan_in_[join] != n.spawns.size() + 1) {
          defect() << "join " << join << " of split " << u << " has fan-in "
                   << fan_in_[join] << ", expected "
                   << (n.spawns.size() + 1);
        }
        for (std::size_t i = 0; i < n.spawns.size(); ++i) {
          if (child_tail[i] != join) {
            defect() << "child chain " << n.spawns[i] << " of split " << u
                     << " ends at "
                     << (child_tail[i] == kNoNode
                             ? std::string("no join")
                             : "join " + std::to_string(child_tail[i]))
                     << ", expected join " << join;
          }
        }
        u = join;  // all signals delivered: the split's frame runs the join
        continue;
      }
      if (n.continuation == kNoNode) return kNoNode;
      if (fan_in_[n.continuation] > 1) return n.continuation;
      u = n.continuation;  // fan-in-1 continuation: plain serial chain
    }
  }

  rt::Scheduler& sched_;
  const sim::TaskDag& dag_;
  std::vector<std::vector<NodeId>> preds_;
  std::vector<std::uint32_t> fan_in_;
  std::vector<std::uint32_t> exec_count_;
  std::vector<double> cells_;
  std::mutex m_;  ///< guards stats_ and exec_count_ (see exec_node)
  DagReplayStats stats_;
};

}  // namespace

DagReplayStats replay_dag(rt::Scheduler& sched, const sim::TaskDag& dag) {
  return DagReplayer(sched, dag).run();
}

}  // namespace dws::apps
