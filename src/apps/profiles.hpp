// Simulator profiles of the Table-2 benchmarks: a TaskDag per app whose
// shape (parallelism structure, task granularity, memory intensity)
// mirrors the real kernel in src/apps. These drive the evaluation-figure
// benches on the simulated 16-core machine (see DESIGN.md §1, §3).
//
// Shape rationale per app:
//   FFT       wide divide-and-conquer with parallel combines  -> scalable
//   PNN       irregular bursty tree (epoch reductions)        -> uneven
//   Cholesky  shrinking trailing updates                      -> decreasing
//   LU        shrinking trailing updates (more phases)        -> decreasing
//   GE        shrinking row eliminations                      -> decreasing
//   Heat      barrier-separated memory-bound sweeps           -> iterative
//   SOR       two barrier-separated sweeps per iteration      -> iterative
//   Mergesort serial merges doubling toward the root          -> limited
#pragma once

#include <string>
#include <vector>

#include "sim/dag.hpp"

namespace dws::apps {

struct SimAppProfile {
  std::string name;
  sim::TaskDag dag;
  double mem_intensity = 0.3;  ///< program-level default for the cache model
};

/// Profile for one Table-2 app name ("FFT", ..., "Mergesort").
/// `work_scale` multiplies all task durations (problem-size knob).
/// Throws std::invalid_argument for unknown names.
SimAppProfile make_sim_profile(const std::string& name,
                               double work_scale = 1.0);

/// All eight profiles, Table-2 order.
std::vector<SimAppProfile> make_all_sim_profiles(double work_scale = 1.0);

/// The eight profile names, Table-2 order. Every generator behind these
/// names is race-certified by replaying its DAG on the real runtime
/// under the detector (apps/dag_replay, tests/test_race.cpp).
const std::vector<std::string>& sim_profile_names();

/// Mergesort-specific DAG: binary recursion whose (serial) merge nodes
/// double in cost toward the root — parallelism collapses at the top.
sim::TaskDag make_mergesort_dag(unsigned depth, double leaf_work_us,
                                double merge_unit_us, double mem_intensity);

}  // namespace dws::apps
