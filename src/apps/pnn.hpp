// p-2: PNN — Polynomial Neural Network.
//
// A degree-2 polynomial regression network (GMDH-flavoured): inputs are
// expanded into the full quadratic feature basis {1, x_i, x_i·x_j}, a
// linear output layer is trained by full-batch gradient descent. Each
// epoch computes per-sample gradients in parallel (data parallelism) and
// reduces them — bursty, reduction-heavy parallelism.
//
// The paper gives no source for its PNN benchmark; this kernel follows
// the standard polynomial-network formulation and exposes the same
// coarse-grained data-parallel structure (see DESIGN.md §5).
#pragma once

#include <vector>

#include "apps/app.hpp"

namespace dws::apps {

class PnnApp final : public App {
 public:
  PnnApp(std::size_t samples, std::size_t inputs, unsigned epochs,
         std::uint64_t seed);

  [[nodiscard]] const char* name() const noexcept override { return "PNN"; }
  void run(rt::Scheduler& sched) override;
  void run_serial() override;
  [[nodiscard]] std::string verify() const override;

  [[nodiscard]] double final_loss() const noexcept { return final_loss_; }

 private:
  void expand_features();
  [[nodiscard]] double train(rt::Scheduler* sched);

  std::size_t samples_, inputs_, n_features_;
  unsigned epochs_;
  std::vector<double> x_;         // raw inputs [samples x inputs]
  std::vector<double> features_;  // expanded   [samples x n_features]
  std::vector<double> targets_;   // ground truth from a hidden polynomial
  std::vector<double> weights_;   // trained output layer
  double initial_loss_ = 0.0;
  double final_loss_ = 0.0;
};

}  // namespace dws::apps
