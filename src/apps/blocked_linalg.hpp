// Tiled (blocked) variants of the factorization benchmarks: the task
// formulation production runtimes (PLASMA, TBB examples, Cilk book
// material) actually use. Each outer iteration factors a diagonal tile,
// solves the panel tiles in parallel, and updates the trailing tiles in
// parallel — a task DAG with far better cache behaviour and coarser,
// more schedulable tasks than the row-wise versions in linalg.hpp.
//
// These are registered as "BlockedCholesky" and "BlockedLU" (beyond the
// Table-2 eight) and are compared against the row-wise kernels in
// tests/test_blocked_linalg.cpp and bench/bench_blocked_linalg.cpp.
#pragma once

#include <vector>

#include "apps/app.hpp"

namespace dws::apps {

class BlockedCholeskyApp final : public App {
 public:
  /// `n` is the matrix order; `block` the tile size (n need not be a
  /// multiple of block — edge tiles are ragged).
  BlockedCholeskyApp(std::size_t n, std::size_t block, std::uint64_t seed);

  [[nodiscard]] const char* name() const noexcept override {
    return "BlockedCholesky";
  }
  void run(rt::Scheduler& sched) override;
  void run_serial() override;
  [[nodiscard]] std::string verify() const override;

  [[nodiscard]] const std::vector<double>& factor() const noexcept {
    return l_;
  }

 private:
  void factorize(rt::Scheduler* sched);

  std::size_t n_, block_;
  std::vector<double> a_;
  std::vector<double> l_;
};

class BlockedLuApp final : public App {
 public:
  BlockedLuApp(std::size_t n, std::size_t block, std::uint64_t seed);

  [[nodiscard]] const char* name() const noexcept override {
    return "BlockedLU";
  }
  void run(rt::Scheduler& sched) override;
  void run_serial() override;
  [[nodiscard]] std::string verify() const override;

  [[nodiscard]] const std::vector<double>& factor() const noexcept {
    return lu_;
  }

 private:
  void factorize(rt::Scheduler* sched);

  std::size_t n_, block_;
  std::vector<double> a_;
  std::vector<double> lu_;
};

}  // namespace dws::apps
