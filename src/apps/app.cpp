#include "apps/app.hpp"

#include "apps/blocked_linalg.hpp"
#include "apps/fft.hpp"
#include "apps/linalg.hpp"
#include "apps/mergesort.hpp"
#include "apps/pnn.hpp"
#include "apps/stencil.hpp"

namespace dws::apps {

namespace {

struct Sizes {
  std::size_t fft_n;
  std::size_t pnn_samples, pnn_inputs;
  unsigned pnn_epochs;
  std::size_t chol_n, lu_n, ge_n;
  std::size_t grid, heat_iters, sor_iters;
  std::size_t sort_n;
};

Sizes sizes_for(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return {256, 64, 4, 8, 24, 24, 24, 32, 4, 4, 4096};
    case Scale::kSmall:
      return {4096, 512, 6, 20, 96, 96, 96, 128, 20, 20, 100000};
    case Scale::kMedium:
      return {1u << 18, 4096, 8, 40, 384, 384, 384, 512, 60, 60, 4000000};
  }
  return sizes_for(Scale::kSmall);
}

}  // namespace

std::unique_ptr<App> make_app(const std::string& name, Scale scale,
                              std::uint64_t seed) {
  const Sizes s = sizes_for(scale);
  if (name == "FFT") return std::make_unique<FftApp>(s.fft_n, seed);
  if (name == "PNN") {
    return std::make_unique<PnnApp>(s.pnn_samples, s.pnn_inputs, s.pnn_epochs,
                                    seed);
  }
  if (name == "Cholesky") return std::make_unique<CholeskyApp>(s.chol_n, seed);
  if (name == "LU") return std::make_unique<LuApp>(s.lu_n, seed);
  if (name == "GE") return std::make_unique<GeApp>(s.ge_n, seed);
  if (name == "Heat") {
    return std::make_unique<HeatApp>(s.grid, s.grid,
                                     static_cast<unsigned>(s.heat_iters));
  }
  if (name == "SOR") {
    return std::make_unique<SorApp>(s.grid, s.grid,
                                    static_cast<unsigned>(s.sor_iters));
  }
  if (name == "Mergesort") {
    return std::make_unique<MergesortApp>(s.sort_n, seed);
  }
  // Beyond Table 2: tiled variants of the factorizations (the task
  // formulation production runtimes use; see blocked_linalg.hpp).
  if (name == "BlockedCholesky") {
    return std::make_unique<BlockedCholeskyApp>(s.chol_n, s.chol_n / 4 + 1,
                                                seed);
  }
  if (name == "BlockedLU") {
    return std::make_unique<BlockedLuApp>(s.lu_n, s.lu_n / 4 + 1, seed);
  }
  return nullptr;
}

std::vector<std::unique_ptr<App>> make_all_apps(Scale scale,
                                                std::uint64_t seed) {
  std::vector<std::unique_ptr<App>> out;
  out.reserve(kNumApps);
  for (const char* name : kAppNames) out.push_back(make_app(name, scale, seed));
  return out;
}

}  // namespace dws::apps
