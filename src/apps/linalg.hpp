// p-3: Cholesky decomposition (A = L·Lᵀ, SPD input).
// p-4: LU decomposition (Doolittle, diagonally dominant input, no pivot).
// p-5: GE — Gaussian elimination solving A·x = b.
//
// All three are right-looking factorizations: the outer iteration k
// eliminates column k and updates the trailing (n-k)² submatrix in
// parallel. The trailing update shrinks every iteration, so the demand
// for cores decreases over a run — exactly the dynamic-demand shape the
// DWS coordinator exploits (§2.2).
#pragma once

#include <vector>

#include "apps/app.hpp"

namespace dws::apps {

class CholeskyApp final : public App {
 public:
  CholeskyApp(std::size_t n, std::uint64_t seed);

  [[nodiscard]] const char* name() const noexcept override {
    return "Cholesky";
  }
  void run(rt::Scheduler& sched) override;
  void run_serial() override;
  [[nodiscard]] std::string verify() const override;

 private:
  std::size_t n_;
  std::vector<double> a_;  // SPD input, row-major
  std::vector<double> l_;  // factor from the last run
};

class LuApp final : public App {
 public:
  LuApp(std::size_t n, std::uint64_t seed);

  [[nodiscard]] const char* name() const noexcept override { return "LU"; }
  void run(rt::Scheduler& sched) override;
  void run_serial() override;
  [[nodiscard]] std::string verify() const override;

 private:
  std::size_t n_;
  std::vector<double> a_;   // diagonally dominant input
  std::vector<double> lu_;  // packed L\U from the last run
};

class GeApp final : public App {
 public:
  GeApp(std::size_t n, std::uint64_t seed);

  [[nodiscard]] const char* name() const noexcept override { return "GE"; }
  void run(rt::Scheduler& sched) override;
  void run_serial() override;
  [[nodiscard]] std::string verify() const override;

 private:
  std::size_t n_;
  std::vector<double> a_;  // system matrix
  std::vector<double> b_;  // right-hand side
  std::vector<double> x_;  // solution from the last run
};

}  // namespace dws::apps
