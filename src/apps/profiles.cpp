#include "apps/profiles.hpp"

#include <stdexcept>

#include "sim/workload.hpp"

namespace dws::apps {

using sim::DagSpan;
using sim::NodeId;
using sim::TaskDag;

namespace {

DagSpan emit_mergesort_rec(TaskDag& dag, unsigned depth, double leaf_work,
                           double merge_unit, unsigned leaves_below,
                           double mem) {
  if (depth == 0) {
    const NodeId leaf = dag.add_node(leaf_work, mem);
    return {leaf, leaf};
  }
  const NodeId split = dag.add_node(0.5, mem);
  // Merge cost grows with the subtree it merges: leaves_below * unit.
  const NodeId merge =
      dag.add_node(merge_unit * static_cast<double>(leaves_below), mem);
  dag.set_continuation(split, merge);
  for (int i = 0; i < 2; ++i) {
    const DagSpan child = emit_mergesort_rec(
        dag, depth - 1, leaf_work, merge_unit, leaves_below / 2, mem);
    dag.add_spawn(split, child.entry);
    dag.set_continuation(child.exit, merge);
  }
  return {split, merge};
}

}  // namespace

TaskDag make_mergesort_dag(unsigned depth, double leaf_work_us,
                           double merge_unit_us, double mem_intensity) {
  TaskDag dag;
  const DagSpan span =
      emit_mergesort_rec(dag, depth, leaf_work_us, merge_unit_us,
                         1u << depth, mem_intensity);
  dag.set_root(span.entry);
  return dag;
}

SimAppProfile make_sim_profile(const std::string& name, double work_scale) {
  const double s = work_scale;
  SimAppProfile p;
  p.name = name;
  // Task granularities mirror the real Cilk kernels (tens to hundreds of
  // microseconds): fine enough that workers survive barrier gaps without
  // sleeping, so cores are released only in genuinely narrow program
  // phases (LU/GE/Cholesky tails, Mergesort's top merges, PNN lulls) —
  // the demand signal DWS's coordinator is designed around.
  if (name == "FFT") {
    // 8192 leaves, cheap parallel combines: T1/Tinf in the thousands.
    p.dag = sim::make_fork_join_tree(13, 2, 80.0 * s, 1.0, 3.0 * s, 0.3);
    p.mem_intensity = 0.3;
  } else if (name == "PNN") {
    // Bursty irregular tree: epochs of uneven sample batches.
    p.dag = sim::make_irregular_tree(0x9A11, 5000, 4, 40.0 * s, 400.0 * s,
                                     0.25);
    p.mem_intensity = 0.25;
  } else if (name == "Cholesky") {
    // Blocked right-looking factorization: quadratically shrinking width
    // gives the long narrow tail that DWS lends to co-runners.
    p.dag = sim::make_decreasing_chains(144, 96, 1, 2, 75.0 * s, 0.45, 2.0);
    p.mem_intensity = 0.45;
  } else if (name == "LU") {
    p.dag = sim::make_decreasing_chains(192, 128, 1, 2, 75.0 * s, 0.45, 2.0);
    p.mem_intensity = 0.45;
  } else if (name == "GE") {
    p.dag = sim::make_decreasing_chains(168, 112, 1, 2, 80.0 * s, 0.55, 2.0);
    p.mem_intensity = 0.55;
  } else if (name == "Heat") {
    p.dag = sim::make_iterative_phases(40, 256, 60.0 * s, 0.95, 1.0);
    p.mem_intensity = 0.95;
  } else if (name == "SOR") {
    p.dag = sim::make_iterative_phases(56, 256, 50.0 * s, 0.95, 1.0);
    p.mem_intensity = 0.95;
  } else if (name == "Mergesort") {
    p.dag = make_mergesort_dag(12, 25.0 * s, 8.0 * s, 0.6);
    p.mem_intensity = 0.6;
  } else {
    throw std::invalid_argument("unknown app profile: " + name);
  }
  return p;
}

const std::vector<std::string>& sim_profile_names() {
  static const std::vector<std::string> names{
      "FFT", "PNN", "Cholesky", "LU", "GE", "Heat", "SOR", "Mergesort"};
  return names;
}

std::vector<SimAppProfile> make_all_sim_profiles(double work_scale) {
  std::vector<SimAppProfile> out;
  out.reserve(sim_profile_names().size());
  for (const std::string& name : sim_profile_names()) {
    out.push_back(make_sim_profile(name, work_scale));
  }
  return out;
}

}  // namespace dws::apps
