// p-1: Fast Fourier Transform (radix-2 Cooley-Tukey, complex doubles).
// Parallelism: divide-and-conquer recursion with a parallel butterfly
// combine per level — wide, well-balanced, highly scalable.
#pragma once

#include <complex>
#include <vector>

#include "apps/app.hpp"

namespace dws::apps {

class FftApp final : public App {
 public:
  /// `n` must be a power of two.
  FftApp(std::size_t n, std::uint64_t seed);

  [[nodiscard]] const char* name() const noexcept override { return "FFT"; }
  void run(rt::Scheduler& sched) override;
  void run_serial() override;
  [[nodiscard]] std::string verify() const override;

  [[nodiscard]] const std::vector<std::complex<double>>& result() const {
    return output_;
  }

 private:
  std::size_t n_;
  std::vector<std::complex<double>> input_;
  std::vector<std::complex<double>> output_;
};

}  // namespace dws::apps
