// p-8: Merge sort (the paper sorts 4e6 numbers). Parallelism: spawn the
// two recursive halves; merges are serial, so parallelism collapses near
// the root — the classic low-scalability co-runner in the paper's mixes.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/app.hpp"

namespace dws::apps {

class MergesortApp final : public App {
 public:
  MergesortApp(std::size_t n, std::uint64_t seed);

  [[nodiscard]] const char* name() const noexcept override {
    return "Mergesort";
  }
  void run(rt::Scheduler& sched) override;
  void run_serial() override;
  [[nodiscard]] std::string verify() const override;

  [[nodiscard]] const std::vector<std::int64_t>& result() const {
    return data_;
  }

 private:
  std::vector<std::int64_t> original_;
  std::vector<std::int64_t> data_;
};

}  // namespace dws::apps
