#include "apps/linalg.hpp"

#include <cmath>
#include <sstream>

#include "runtime/api.hpp"
#include "util/rng.hpp"

namespace dws::apps {

namespace {

/// Dense random matrix, entries in [-1, 1).
std::vector<double> random_matrix(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> a(n * n);
  for (auto& x : a) x = rng.next_double(-1.0, 1.0);
  return a;
}

/// Make a matrix strictly diagonally dominant in place (stable without
/// pivoting; standard benchmark trick).
void make_diagonally_dominant(std::vector<double>& a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) row_sum += std::abs(a[i * n + j]);
    a[i * n + i] = row_sum + 1.0;
  }
}

}  // namespace

// ---------------- Cholesky ----------------

CholeskyApp::CholeskyApp(std::size_t n, std::uint64_t seed) : n_(n) {
  // SPD by construction: A = B·Bᵀ + n·I.
  const std::vector<double> b = random_matrix(n_, seed);
  a_.assign(n_ * n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = 0.0;
      for (std::size_t t = 0; t < n_; ++t) s += b[i * n_ + t] * b[j * n_ + t];
      a_[i * n_ + j] = s;
      a_[j * n_ + i] = s;
    }
    a_[i * n_ + i] += static_cast<double>(n_);
  }
}

void CholeskyApp::run(rt::Scheduler& sched) {
  race::region race_scope("Cholesky");
  l_ = a_;
  const std::size_t n = n_;
  double* l = l_.data();
  for (std::size_t k = 0; k < n; ++k) {
    l[k * n + k] = std::sqrt(l[k * n + k]);
    const double dk = l[k * n + k];
    // Scale column k below the diagonal, then the trailing update — the
    // shrinking parallel region.
    rt::parallel_for(sched, static_cast<std::int64_t>(k) + 1,
                     static_cast<std::int64_t>(n), 16,
                     [l, n, k, dk](std::int64_t b, std::int64_t e) {
                       // Strided column-k write: rows b..e of column k.
                       race::write(l + b * n + k, static_cast<std::size_t>(e - b),
                                   static_cast<std::ptrdiff_t>(n));
                       for (std::int64_t i = b; i < e; ++i) {
                         l[i * n + k] /= dk;
                       }
                     });
    rt::parallel_for(
        sched, static_cast<std::int64_t>(k) + 1, static_cast<std::int64_t>(n),
        8, [l, n, k](std::int64_t rb, std::int64_t re) {
          for (std::int64_t i = rb; i < re; ++i) {
            const double lik = l[i * n + k];
            // Reads column k rows k+1..i (strided), updates row i
            // columns k+1..i in place.
            race::read(l + (k + 1) * n + k, static_cast<std::size_t>(i - k),
                       static_cast<std::ptrdiff_t>(n));
            race::write(l + i * n + k + 1, static_cast<std::size_t>(i - k));
            for (std::int64_t j = k + 1; j <= i; ++j) {
              l[i * n + j] -= lik * l[j * n + k];
            }
          }
        });
  }
  // Zero the strict upper triangle so L is clean.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) l[i * n + j] = 0.0;
  }
}

void CholeskyApp::run_serial() {
  l_ = a_;
  const std::size_t n = n_;
  double* l = l_.data();
  for (std::size_t k = 0; k < n; ++k) {
    l[k * n + k] = std::sqrt(l[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) l[i * n + k] /= l[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      for (std::size_t j = k + 1; j <= i; ++j) {
        l[i * n + j] -= l[i * n + k] * l[j * n + k];
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) l[i * n + j] = 0.0;
  }
}

std::string CholeskyApp::verify() const {
  // Check ‖L·Lᵀ − A‖_max against a scale-aware tolerance.
  const std::size_t n = n_;
  double max_err = 0.0, max_a = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      const std::size_t lim = std::min(i, j);
      for (std::size_t t = 0; t <= lim; ++t) {
        s += l_[i * n + t] * l_[j * n + t];
      }
      max_err = std::max(max_err, std::abs(s - a_[i * n + j]));
      max_a = std::max(max_a, std::abs(a_[i * n + j]));
    }
  }
  if (max_err > 1e-8 * max_a) {
    std::ostringstream os;
    os << "||L*L^T - A||_max = " << max_err << " (scale " << max_a << ")";
    return os.str();
  }
  return {};
}

// ---------------- LU ----------------

LuApp::LuApp(std::size_t n, std::uint64_t seed) : n_(n) {
  a_ = random_matrix(n_, seed);
  make_diagonally_dominant(a_, n_);
}

void LuApp::run(rt::Scheduler& sched) {
  race::region race_scope("LU");
  lu_ = a_;
  const std::size_t n = n_;
  double* lu = lu_.data();
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const double pivot = lu[k * n + k];
    rt::parallel_for(
        sched, static_cast<std::int64_t>(k) + 1, static_cast<std::int64_t>(n),
        8, [lu, n, k, pivot](std::int64_t rb, std::int64_t re) {
          // Each row i: reads pivot row k, rewrites row i from column k.
          race::read(lu + k * n + k, n - k);
          for (std::int64_t i = rb; i < re; ++i) {
            race::write(lu + i * n + k, n - k);
            const double mult = lu[i * n + k] / pivot;
            lu[i * n + k] = mult;
            for (std::size_t j = k + 1; j < n; ++j) {
              lu[i * n + j] -= mult * lu[k * n + j];
            }
          }
        });
  }
}

void LuApp::run_serial() {
  lu_ = a_;
  const std::size_t n = n_;
  double* lu = lu_.data();
  for (std::size_t k = 0; k + 1 < n; ++k) {
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mult = lu[i * n + k] / lu[k * n + k];
      lu[i * n + k] = mult;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu[i * n + j] -= mult * lu[k * n + j];
      }
    }
  }
}

std::string LuApp::verify() const {
  // Reconstruct A from the packed factors and compare.
  const std::size_t n = n_;
  double max_err = 0.0, max_a = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // (L·U)(i,j) = Σ_{t<=min(i,j)} L(i,t)·U(t,j), with L's unit diagonal
      // implicit in the packed storage.
      double s = 0.0;
      const std::size_t lim = std::min(i, j);
      for (std::size_t t = 0; t < lim; ++t) {
        s += lu_[i * n + t] * lu_[t * n + j];
      }
      if (i <= j) {
        s += lu_[i * n + j];  // t = i: L(i,i) = 1, U(i,j)
      } else {
        s += lu_[i * n + j] * lu_[j * n + j];  // t = j: L(i,j)·U(j,j)
      }
      max_err = std::max(max_err, std::abs(s - a_[i * n + j]));
      max_a = std::max(max_a, std::abs(a_[i * n + j]));
    }
  }
  if (max_err > 1e-8 * max_a) {
    std::ostringstream os;
    os << "||L*U - A||_max = " << max_err << " (scale " << max_a << ")";
    return os.str();
  }
  return {};
}

// ---------------- GE ----------------

GeApp::GeApp(std::size_t n, std::uint64_t seed) : n_(n) {
  a_ = random_matrix(n_, seed);
  make_diagonally_dominant(a_, n_);
  util::Xoshiro256 rng(seed ^ 0xB00B5);
  b_.resize(n_);
  for (auto& x : b_) x = rng.next_double(-1.0, 1.0);
}

void GeApp::run(rt::Scheduler& sched) {
  race::region race_scope("GE");
  std::vector<double> a = a_;
  std::vector<double> b = b_;
  const std::size_t n = n_;
  double* ap = a.data();
  double* bp = b.data();
  // Forward elimination with shrinking parallel row updates.
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const double pivot = ap[k * n + k];
    rt::parallel_for(
        sched, static_cast<std::int64_t>(k) + 1, static_cast<std::int64_t>(n),
        8, [ap, bp, n, k, pivot](std::int64_t rb, std::int64_t re) {
          // Each row i: reads pivot row k and b[k], rewrites row i from
          // column k and b[i].
          race::read(ap + k * n + k, n - k);
          race::read(bp + k);
          for (std::int64_t i = rb; i < re; ++i) {
            race::write(ap + i * n + k, n - k);
            race::write(bp + i);
            const double mult = ap[i * n + k] / pivot;
            ap[i * n + k] = 0.0;
            for (std::size_t j = k + 1; j < n; ++j) {
              ap[i * n + j] -= mult * ap[k * n + j];
            }
            bp[i] -= mult * bp[k];
          }
        });
  }
  // Serial back substitution (negligible O(n^2) tail).
  x_.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = bp[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= ap[ii * n + j] * x_[j];
    x_[ii] = s / ap[ii * n + ii];
  }
}

void GeApp::run_serial() {
  std::vector<double> a = a_;
  std::vector<double> b = b_;
  const std::size_t n = n_;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mult = a[i * n + k] / a[k * n + k];
      a[i * n + k] = 0.0;
      for (std::size_t j = k + 1; j < n; ++j) {
        a[i * n + j] -= mult * a[k * n + j];
      }
      b[i] -= mult * b[k];
    }
  }
  x_.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a[ii * n + j] * x_[j];
    x_[ii] = s / a[ii * n + ii];
  }
}

std::string GeApp::verify() const {
  // Residual check ‖A·x − b‖_inf.
  const std::size_t n = n_;
  double max_res = 0.0, max_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += a_[i * n + j] * x_[j];
    max_res = std::max(max_res, std::abs(s - b_[i]));
    max_b = std::max(max_b, std::abs(b_[i]));
  }
  if (max_res > 1e-8 * (max_b + 1.0)) {
    std::ostringstream os;
    os << "||A*x - b||_inf = " << max_res;
    return os.str();
  }
  return {};
}

}  // namespace dws::apps
