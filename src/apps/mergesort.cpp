#include "apps/mergesort.hpp"

#include <algorithm>
#include <sstream>

#include "runtime/api.hpp"
#include "util/rng.hpp"

namespace dws::apps {

namespace {

constexpr std::size_t kSerialCutoff = 2048;

void merge_halves(std::int64_t* data, std::size_t lo, std::size_t mid,
                  std::size_t hi, std::int64_t* buf) {
  std::merge(data + lo, data + mid, data + mid, data + hi, buf + lo);
  std::copy(buf + lo, buf + hi, data + lo);
}

void msort_serial(std::int64_t* data, std::size_t lo, std::size_t hi,
                  std::int64_t* buf) {
  if (hi - lo <= kSerialCutoff) {
    std::sort(data + lo, data + hi);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  msort_serial(data, lo, mid, buf);
  msort_serial(data, mid, hi, buf);
  merge_halves(data, lo, mid, hi, buf);
}

void msort_parallel(rt::Scheduler& sched, std::int64_t* data, std::size_t lo,
                    std::size_t hi, std::int64_t* buf) {
  if (hi - lo <= kSerialCutoff) {
    race::write(data + lo, hi - lo);  // in-place sort of the leaf range
    std::sort(data + lo, data + hi);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  rt::parallel_invoke(
      sched, [&] { msort_parallel(sched, data, lo, mid, buf); },
      [&] { msort_parallel(sched, data, mid, hi, buf); });
  // The merge reads and rewrites data[lo..hi) through buf[lo..hi).
  race::write(data + lo, hi - lo);
  race::write(buf + lo, hi - lo);
  merge_halves(data, lo, mid, hi, buf);  // serial merge (paper's version)
}

}  // namespace

MergesortApp::MergesortApp(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  original_.resize(n);
  for (auto& x : original_) {
    x = static_cast<std::int64_t>(rng.next()) >> 16;
  }
  data_ = original_;
}

void MergesortApp::run(rt::Scheduler& sched) {
  race::region race_scope("Mergesort");
  data_ = original_;
  std::vector<std::int64_t> buf(data_.size());
  msort_parallel(sched, data_.data(), 0, data_.size(), buf.data());
}

void MergesortApp::run_serial() {
  data_ = original_;
  std::vector<std::int64_t> buf(data_.size());
  msort_serial(data_.data(), 0, data_.size(), buf.data());
}

std::string MergesortApp::verify() const {
  if (!std::is_sorted(data_.begin(), data_.end())) return "output not sorted";
  // Permutation check via sorted-reference comparison on a copy.
  std::vector<std::int64_t> ref = original_;
  std::sort(ref.begin(), ref.end());
  if (ref != data_) return "output is not a permutation of the input";
  return {};
}

}  // namespace dws::apps
