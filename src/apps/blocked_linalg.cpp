#include "apps/blocked_linalg.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "runtime/api.hpp"
#include "util/rng.hpp"

namespace dws::apps {

namespace {

std::vector<double> random_matrix(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> a(n * n);
  for (auto& x : a) x = rng.next_double(-1.0, 1.0);
  return a;
}

/// Number of tiles covering n with block size b.
std::size_t tiles(std::size_t n, std::size_t b) { return (n + b - 1) / b; }

/// [begin, end) of tile t.
struct Range {
  std::size_t lo, hi;
};
Range tile_range(std::size_t t, std::size_t n, std::size_t b) {
  return {t * b, std::min(n, (t + 1) * b)};
}

// Tile footprint annotations for the race detector: one contiguous
// read/write per tile row keeps the shadow granules (8 bytes = one
// double) exact, so the disjointness of the per-phase tile writes is
// checked as written, not over-approximated.
void note_tile_read(const double* m, std::size_t n, Range rows, Range cols) {
  for (std::size_t r = rows.lo; r < rows.hi; ++r) {
    race::read(&m[r * n + cols.lo], cols.hi - cols.lo);
  }
}
void note_tile_write(double* m, std::size_t n, Range rows, Range cols) {
  for (std::size_t r = rows.lo; r < rows.hi; ++r) {
    race::write(&m[r * n + cols.lo], cols.hi - cols.lo);
  }
}

}  // namespace

// ---------------- Blocked Cholesky ----------------

BlockedCholeskyApp::BlockedCholeskyApp(std::size_t n, std::size_t block,
                                       std::uint64_t seed)
    : n_(n), block_(block) {
  // SPD: A = B·Bᵀ + n·I (same construction as the row-wise app).
  const std::vector<double> b = random_matrix(n_, seed);
  a_.assign(n_ * n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = 0.0;
      for (std::size_t t = 0; t < n_; ++t) s += b[i * n_ + t] * b[j * n_ + t];
      a_[i * n_ + j] = s;
      a_[j * n_ + i] = s;
    }
    a_[i * n_ + i] += static_cast<double>(n_);
  }
}

void BlockedCholeskyApp::factorize(rt::Scheduler* sched) {
  l_ = a_;
  const std::size_t n = n_, b = block_;
  const std::size_t nb = tiles(n, b);
  double* l = l_.data();

  // POTRF on the diagonal tile: unblocked Cholesky restricted to it,
  // consuming the already-TRSM'd columns to its left implicitly because
  // the trailing updates have been applied by earlier steps.
  auto potrf = [l, n](Range d) {
    // Reads and writes stay inside the diagonal tile (earlier steps
    // already applied the trailing updates). write covers the RMW.
    note_tile_write(l, n, d, d);
    for (std::size_t c = d.lo; c < d.hi; ++c) {
      l[c * n + c] = std::sqrt(l[c * n + c]);
      const double dc = l[c * n + c];
      for (std::size_t r = c + 1; r < d.hi; ++r) l[r * n + c] /= dc;
      for (std::size_t r = c + 1; r < d.hi; ++r) {
        const double lrc = l[r * n + c];
        for (std::size_t c2 = c + 1; c2 <= r; ++c2) {
          l[r * n + c2] -= lrc * l[c2 * n + c];
        }
      }
    }
  };
  // TRSM: rows of tile (I, K) against the factored diagonal tile (K, K).
  auto trsm = [l, n](Range rows, Range d) {
    // Writes tile (I, K); reads the factored diagonal tile (K, K) and
    // its own earlier columns (covered by the write annotation).
    note_tile_write(l, n, rows, d);
    note_tile_read(l, n, d, d);
    for (std::size_t r = rows.lo; r < rows.hi; ++r) {
      for (std::size_t c = d.lo; c < d.hi; ++c) {
        double s = l[r * n + c];
        for (std::size_t t = d.lo; t < c; ++t) {
          s -= l[r * n + t] * l[c * n + t];
        }
        l[r * n + c] = s / l[c * n + c];
      }
    }
  };
  // SYRK/GEMM trailing update: tile (I, J) -= L(I, K) · L(J, K)ᵀ,
  // lower-triangular part only when I == J.
  auto update = [l, n](Range ri, Range rj, Range rk) {
    // Reads the two already-TRSM'd column tiles (I, K) and (J, K);
    // writes tile (I, J), restricted per row to the lower triangle
    // (exactly the cells the loop touches) so the diagonal-tile updates
    // stay precise.
    note_tile_read(l, n, ri, rk);
    note_tile_read(l, n, rj, rk);
    for (std::size_t r = ri.lo; r < ri.hi; ++r) {
      const std::size_t cmax = std::min(rj.hi, r + 1);
      if (cmax > rj.lo) race::write(&l[r * n + rj.lo], cmax - rj.lo);
      for (std::size_t c = rj.lo; c < cmax; ++c) {
        double s = 0.0;
        for (std::size_t t = rk.lo; t < rk.hi; ++t) {
          s += l[r * n + t] * l[c * n + t];
        }
        l[r * n + c] -= s;
      }
    }
  };

  race::region label("BlockedCholesky");
  for (std::size_t kk = 0; kk < nb; ++kk) {
    const Range dk = tile_range(kk, n, b);
    potrf(dk);
    if (sched != nullptr) {
      rt::parallel_for_each_index(
          *sched, static_cast<std::int64_t>(kk) + 1,
          static_cast<std::int64_t>(nb), 1, [&](std::int64_t i) {
            trsm(tile_range(static_cast<std::size_t>(i), n, b), dk);
          });
      // Trailing tiles (I, J) with kk < J <= I, flattened for the loop.
      const std::size_t width = nb - kk - 1;
      rt::parallel_for_each_index(
          *sched, 0, static_cast<std::int64_t>(width * width), 1,
          [&](std::int64_t flat) {
            const std::size_t i =
                kk + 1 + static_cast<std::size_t>(flat) / width;
            const std::size_t j =
                kk + 1 + static_cast<std::size_t>(flat) % width;
            if (j > i) return;  // lower triangle only
            update(tile_range(i, n, b), tile_range(j, n, b), dk);
          });
    } else {
      for (std::size_t i = kk + 1; i < nb; ++i) {
        trsm(tile_range(i, n, b), dk);
      }
      for (std::size_t i = kk + 1; i < nb; ++i) {
        for (std::size_t j = kk + 1; j <= i; ++j) {
          update(tile_range(i, n, b), tile_range(j, n, b), dk);
        }
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) l[i * n + j] = 0.0;
  }
}

void BlockedCholeskyApp::run(rt::Scheduler& sched) { factorize(&sched); }
void BlockedCholeskyApp::run_serial() { factorize(nullptr); }

std::string BlockedCholeskyApp::verify() const {
  const std::size_t n = n_;
  double max_err = 0.0, max_a = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      const std::size_t lim = std::min(i, j);
      for (std::size_t t = 0; t <= lim; ++t) {
        s += l_[i * n + t] * l_[j * n + t];
      }
      max_err = std::max(max_err, std::abs(s - a_[i * n + j]));
      max_a = std::max(max_a, std::abs(a_[i * n + j]));
    }
  }
  if (max_err > 1e-8 * max_a) {
    std::ostringstream os;
    os << "||L*L^T - A||_max = " << max_err << " (scale " << max_a << ")";
    return os.str();
  }
  return {};
}

// ---------------- Blocked LU ----------------

BlockedLuApp::BlockedLuApp(std::size_t n, std::size_t block,
                           std::uint64_t seed)
    : n_(n), block_(block) {
  a_ = random_matrix(n_, seed);
  for (std::size_t i = 0; i < n_; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n_; ++j) row_sum += std::abs(a_[i * n_ + j]);
    a_[i * n_ + i] = row_sum + 1.0;
  }
}

void BlockedLuApp::factorize(rt::Scheduler* sched) {
  lu_ = a_;
  const std::size_t n = n_, b = block_;
  const std::size_t nb = tiles(n, b);
  double* lu = lu_.data();

  // GETRF on the diagonal tile (unblocked Doolittle, unit-diagonal L).
  auto getrf = [lu, n](Range d) {
    // In-tile Doolittle: footprint is the diagonal tile, RMW.
    note_tile_write(lu, n, d, d);
    for (std::size_t c = d.lo; c < d.hi && c + 1 < d.hi; ++c) {
      const double pivot = lu[c * n + c];
      for (std::size_t r = c + 1; r < d.hi; ++r) {
        const double mult = lu[r * n + c] / pivot;
        lu[r * n + c] = mult;
        for (std::size_t c2 = c + 1; c2 < d.hi; ++c2) {
          lu[r * n + c2] -= mult * lu[c * n + c2];
        }
      }
    }
  };
  // L-solve: tile (K, J) := L(K,K)⁻¹ · A(K, J) (unit lower triangular).
  auto trsm_l = [lu, n](Range d, Range cols) {
    // Writes tile (K, J); reads L(K, K) and rows of (K, J) it already
    // wrote (covered by the write annotation). Runs concurrently with
    // trsm_u, whose writes stay in column-tile K below the diagonal —
    // disjoint from row-tile K right of the diagonal.
    note_tile_write(lu, n, d, cols);
    note_tile_read(lu, n, d, d);
    for (std::size_t r = d.lo; r < d.hi; ++r) {
      for (std::size_t c = cols.lo; c < cols.hi; ++c) {
        double s = lu[r * n + c];
        for (std::size_t t = d.lo; t < r; ++t) {
          s -= lu[r * n + t] * lu[t * n + c];
        }
        lu[r * n + c] = s;  // unit diagonal: no divide
      }
    }
  };
  // U-solve: tile (I, K) := A(I, K) · U(K,K)⁻¹.
  auto trsm_u = [lu, n](Range rows, Range d) {
    // Writes tile (I, K); reads U(K, K).
    note_tile_write(lu, n, rows, d);
    note_tile_read(lu, n, d, d);
    for (std::size_t r = rows.lo; r < rows.hi; ++r) {
      for (std::size_t c = d.lo; c < d.hi; ++c) {
        double s = lu[r * n + c];
        for (std::size_t t = d.lo; t < c; ++t) {
          s -= lu[r * n + t] * lu[t * n + c];
        }
        lu[r * n + c] = s / lu[c * n + c];
      }
    }
  };
  // GEMM: tile (I, J) -= L(I, K) · U(K, J).
  auto gemm = [lu, n](Range ri, Range rj, Range rk) {
    // Reads L(I, K) and U(K, J) from the (wait-separated) solve phase;
    // writes tile (I, J) — per-(I, J) tasks are pairwise disjoint.
    note_tile_read(lu, n, ri, rk);
    note_tile_read(lu, n, rk, rj);
    note_tile_write(lu, n, ri, rj);
    for (std::size_t r = ri.lo; r < ri.hi; ++r) {
      for (std::size_t c = rj.lo; c < rj.hi; ++c) {
        double s = 0.0;
        for (std::size_t t = rk.lo; t < rk.hi; ++t) {
          s += lu[r * n + t] * lu[t * n + c];
        }
        lu[r * n + c] -= s;
      }
    }
  };

  race::region label("BlockedLU");
  for (std::size_t kk = 0; kk < nb; ++kk) {
    const Range dk = tile_range(kk, n, b);
    getrf(dk);
    const std::size_t width = nb - kk - 1;
    if (sched != nullptr && width > 0) {
      rt::parallel_invoke(
          *sched,
          [&] {
            rt::parallel_for_each_index(
                *sched, static_cast<std::int64_t>(kk) + 1,
                static_cast<std::int64_t>(nb), 1, [&](std::int64_t j) {
                  trsm_l(dk, tile_range(static_cast<std::size_t>(j), n, b));
                });
          },
          [&] {
            rt::parallel_for_each_index(
                *sched, static_cast<std::int64_t>(kk) + 1,
                static_cast<std::int64_t>(nb), 1, [&](std::int64_t i) {
                  trsm_u(tile_range(static_cast<std::size_t>(i), n, b), dk);
                });
          });
      rt::parallel_for_each_index(
          *sched, 0, static_cast<std::int64_t>(width * width), 1,
          [&](std::int64_t flat) {
            const std::size_t i =
                kk + 1 + static_cast<std::size_t>(flat) / width;
            const std::size_t j =
                kk + 1 + static_cast<std::size_t>(flat) % width;
            gemm(tile_range(i, n, b), tile_range(j, n, b), dk);
          });
    } else {
      for (std::size_t j = kk + 1; j < nb; ++j) {
        trsm_l(dk, tile_range(j, n, b));
      }
      for (std::size_t i = kk + 1; i < nb; ++i) {
        trsm_u(tile_range(i, n, b), dk);
      }
      for (std::size_t i = kk + 1; i < nb; ++i) {
        for (std::size_t j = kk + 1; j < nb; ++j) {
          gemm(tile_range(i, n, b), tile_range(j, n, b), dk);
        }
      }
    }
  }
}

void BlockedLuApp::run(rt::Scheduler& sched) { factorize(&sched); }
void BlockedLuApp::run_serial() { factorize(nullptr); }

std::string BlockedLuApp::verify() const {
  const std::size_t n = n_;
  double max_err = 0.0, max_a = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      const std::size_t lim = std::min(i, j);
      for (std::size_t t = 0; t < lim; ++t) {
        s += lu_[i * n + t] * lu_[t * n + j];
      }
      if (i <= j) {
        s += lu_[i * n + j];
      } else {
        s += lu_[i * n + j] * lu_[j * n + j];
      }
      max_err = std::max(max_err, std::abs(s - a_[i * n + j]));
      max_a = std::max(max_a, std::abs(a_[i * n + j]));
    }
  }
  if (max_err > 1e-8 * max_a) {
    std::ostringstream os;
    os << "||L*U - A||_max = " << max_err << " (scale " << max_a << ")";
    return os.str();
  }
  return {};
}

}  // namespace dws::apps
