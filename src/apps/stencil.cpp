#include "apps/stencil.hpp"

#include <cmath>
#include <sstream>

#include "runtime/api.hpp"

namespace dws::apps {

namespace {

/// Relative tolerance for parallel-vs-serial comparison. Heat (Jacobi) is
/// bitwise deterministic; SOR red-black sweeps are too (updates within a
/// color are independent), so the tolerance only absorbs fused-multiply
/// reassociation differences, which do not occur here — keep it tight.
constexpr double kTol = 1e-12;

std::string compare_grids(const std::vector<double>& got,
                          const std::vector<double>& want) {
  if (got.size() != want.size()) return "grid size mismatch";
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double err = std::abs(got[i] - want[i]);
    if (err > kTol * (std::abs(want[i]) + 1.0)) {
      std::ostringstream os;
      os << "cell " << i << ": " << got[i] << " != " << want[i];
      return os.str();
    }
  }
  return {};
}

}  // namespace

// ---------------- Heat (Jacobi) ----------------

HeatApp::HeatApp(std::size_t rows, std::size_t cols, unsigned iterations)
    : rows_(rows), cols_(cols), iterations_(iterations) {}

void HeatApp::init_grid(std::vector<double>& g) const {
  g.assign(rows_ * cols_, 0.0);
  // Hot top edge, cold bottom edge, linear sides.
  for (std::size_t c = 0; c < cols_; ++c) g[c] = 100.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double frac = static_cast<double>(r) / static_cast<double>(rows_ - 1);
    g[r * cols_] = 100.0 * (1.0 - frac);
    g[r * cols_ + cols_ - 1] = 100.0 * (1.0 - frac);
  }
}

void HeatApp::run(rt::Scheduler& sched) {
  race::region race_scope("Heat");
  std::vector<double> cur, next;
  init_grid(cur);
  next = cur;
  for (unsigned it = 0; it < iterations_; ++it) {
    rt::parallel_for(
        sched, 1, static_cast<std::int64_t>(rows_) - 1, 8,
        [&](std::int64_t rb, std::int64_t re) {
          for (std::int64_t r = rb; r < re; ++r) {
            const double* up = &cur[(r - 1) * cols_];
            const double* mid = &cur[r * cols_];
            const double* down = &cur[(r + 1) * cols_];
            double* out = &next[r * cols_];
            // Footprint: reads rows r-1..r+1 of cur, writes the interior
            // of row r of next.
            race::read(up, 3 * cols_);
            race::write(out + 1, cols_ - 2);
            for (std::size_t c = 1; c + 1 < cols_; ++c) {
              out[c] = 0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
            }
          }
        });
    std::swap(cur, next);
  }
  grid_ = std::move(cur);
}

void HeatApp::run_serial() {
  std::vector<double> cur, next;
  init_grid(cur);
  next = cur;
  for (unsigned it = 0; it < iterations_; ++it) {
    for (std::size_t r = 1; r + 1 < rows_; ++r) {
      for (std::size_t c = 1; c + 1 < cols_; ++c) {
        next[r * cols_ + c] =
            0.25 * (cur[(r - 1) * cols_ + c] + cur[(r + 1) * cols_ + c] +
                    cur[r * cols_ + c - 1] + cur[r * cols_ + c + 1]);
      }
    }
    std::swap(cur, next);
  }
  grid_ = std::move(cur);
}

std::string HeatApp::verify() const {
  if (reference_.empty()) {
    HeatApp ref(rows_, cols_, iterations_);
    ref.run_serial();
    reference_ = std::move(ref.grid_);
  }
  return compare_grids(grid_, reference_);
}

double HeatApp::checksum() const {
  double s = 0.0;
  for (double x : grid_) s += x;
  return s;
}

// ---------------- SOR (red-black) ----------------

SorApp::SorApp(std::size_t rows, std::size_t cols, unsigned iterations,
               double omega)
    : rows_(rows), cols_(cols), iterations_(iterations), omega_(omega) {}

void SorApp::init_grid(std::vector<double>& g) const {
  g.assign(rows_ * cols_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) g[c] = 1.0;
  for (std::size_t r = 0; r < rows_; ++r) g[r * cols_] = 1.0;
}

void SorApp::sweep_color(rt::Scheduler* sched, std::vector<double>& g,
                         int color) const {
  auto row_body = [&g, this, color](std::int64_t rb, std::int64_t re) {
    for (std::int64_t r = rb; r < re; ++r) {
      // Red cells: (r+c) even; black: odd. Start column per row parity.
      const std::size_t c0 =
          1 + ((static_cast<std::size_t>(r) + 1 + color) % 2);
      // Footprint, strided so red and black cells stay distinct: this
      // sweep writes the current color's cells of row r and reads the
      // opposite color's cells in rows r-1..r+1 (the four neighbours of
      // a cell are always the other color).
      if (c0 + 1 < cols_) {
        const std::size_t nc = (cols_ - 1 - c0 + 1) / 2;
        race::write(&g[r * cols_ + c0], nc, 2);
        race::read(&g[(r - 1) * cols_ + c0], nc, 2);
        race::read(&g[(r + 1) * cols_ + c0], nc, 2);
        race::read(&g[r * cols_ + c0 - 1], nc, 2);
        race::read(&g[r * cols_ + c0 + 1], nc, 2);
      }
      std::size_t c = c0;
      for (; c + 1 < cols_; c += 2) {
        const std::size_t i = r * cols_ + c;
        const double neighbors = g[i - cols_] + g[i + cols_] + g[i - 1] +
                                 g[i + 1];
        g[i] = (1.0 - omega_) * g[i] + omega_ * 0.25 * neighbors;
      }
    }
  };
  if (sched != nullptr) {
    rt::parallel_for(*sched, 1, static_cast<std::int64_t>(rows_) - 1, 8,
                     row_body);
  } else {
    row_body(1, static_cast<std::int64_t>(rows_) - 1);
  }
}

void SorApp::run(rt::Scheduler& sched) {
  race::region race_scope("SOR");
  std::vector<double> g;
  init_grid(g);
  for (unsigned it = 0; it < iterations_; ++it) {
    sweep_color(&sched, g, 0);
    sweep_color(&sched, g, 1);
  }
  grid_ = std::move(g);
}

void SorApp::run_serial() {
  std::vector<double> g;
  init_grid(g);
  for (unsigned it = 0; it < iterations_; ++it) {
    sweep_color(nullptr, g, 0);
    sweep_color(nullptr, g, 1);
  }
  grid_ = std::move(g);
}

std::string SorApp::verify() const {
  if (reference_.empty()) {
    SorApp ref(rows_, cols_, iterations_, omega_);
    ref.run_serial();
    reference_ = std::move(ref.grid_);
  }
  return compare_grids(grid_, reference_);
}

double SorApp::checksum() const {
  double s = 0.0;
  for (double x : grid_) s += x;
  return s;
}

}  // namespace dws::apps
