#include "apps/pnn.hpp"

#include <cmath>
#include <sstream>

#include "runtime/api.hpp"
#include "util/rng.hpp"

namespace dws::apps {

PnnApp::PnnApp(std::size_t samples, std::size_t inputs, unsigned epochs,
               std::uint64_t seed)
    : samples_(samples), inputs_(inputs), epochs_(epochs) {
  // Quadratic basis: 1 + d + d(d+1)/2 features.
  n_features_ = 1 + inputs_ + inputs_ * (inputs_ + 1) / 2;
  util::Xoshiro256 rng(seed);
  x_.resize(samples_ * inputs_);
  for (auto& v : x_) v = rng.next_double(-1.0, 1.0);
  expand_features();

  // Targets from a hidden random polynomial (realizable => loss can go
  // to ~0, which verify() exploits) plus a pinch of noise.
  std::vector<double> true_w(n_features_);
  for (auto& w : true_w) w = rng.next_double(-1.0, 1.0);
  targets_.resize(samples_);
  for (std::size_t s = 0; s < samples_; ++s) {
    double y = 0.0;
    for (std::size_t f = 0; f < n_features_; ++f) {
      y += true_w[f] * features_[s * n_features_ + f];
    }
    targets_[s] = y + rng.next_double(-1e-3, 1e-3);
  }
}

void PnnApp::expand_features() {
  features_.assign(samples_ * n_features_, 0.0);
  for (std::size_t s = 0; s < samples_; ++s) {
    double* f = &features_[s * n_features_];
    const double* x = &x_[s * inputs_];
    std::size_t idx = 0;
    f[idx++] = 1.0;
    for (std::size_t i = 0; i < inputs_; ++i) f[idx++] = x[i];
    for (std::size_t i = 0; i < inputs_; ++i) {
      for (std::size_t j = i; j < inputs_; ++j) f[idx++] = x[i] * x[j];
    }
  }
}

double PnnApp::train(rt::Scheduler* sched) {
  weights_.assign(n_features_, 0.0);
  const double lr = 0.5 / static_cast<double>(samples_);
  double loss = 0.0;
  for (unsigned epoch = 0; epoch <= epochs_; ++epoch) {
    // One full-batch pass: per-sample error and gradient, reduced over
    // the batch. The map step dominates and is data-parallel.
    struct Partial {
      std::vector<double> grad;
      double loss = 0.0;
    };
    auto map = [&](std::int64_t b, std::int64_t e) {
      // Footprint: reads the feature rows, targets and current weights
      // for this sample block; the gradient accumulator is task-local.
      race::read(&features_[static_cast<std::size_t>(b) * n_features_],
                 static_cast<std::size_t>(e - b) * n_features_);
      race::read(&targets_[static_cast<std::size_t>(b)],
                 static_cast<std::size_t>(e - b));
      race::read(weights_.data(), n_features_);
      Partial p;
      p.grad.assign(n_features_, 0.0);
      for (std::int64_t s = b; s < e; ++s) {
        const double* f = &features_[static_cast<std::size_t>(s) * n_features_];
        double pred = 0.0;
        for (std::size_t k = 0; k < n_features_; ++k) {
          pred += weights_[k] * f[k];
        }
        const double err = pred - targets_[static_cast<std::size_t>(s)];
        p.loss += err * err;
        for (std::size_t k = 0; k < n_features_; ++k) {
          p.grad[k] += err * f[k];
        }
      }
      return p;
    };
    auto combine = [&](Partial a, Partial b) {
      // `a` aliases the shared accumulator that every leaf task folds
      // into under parallel_reduce's combine lock: its heap gradient
      // buffer is handed from round to round by move, so its address is
      // stable and genuinely shared. Annotated so the ALL-SETS lockset
      // detector certifies the mutual exclusion instead of skipping it
      // (`a.loss` lives in the moved-around struct itself — no stable
      // address to annotate). `b` is the task-local partial.
      race::write(a.grad.data(), n_features_);
      race::read(b.grad.data(), n_features_);
      for (std::size_t k = 0; k < n_features_; ++k) a.grad[k] += b.grad[k];
      a.loss += b.loss;
      return a;
    };
    Partial total;
    total.grad.assign(n_features_, 0.0);
    if (sched != nullptr) {
      total = rt::parallel_reduce<Partial>(
          *sched, 0, static_cast<std::int64_t>(samples_), 64,
          std::move(total), map, combine);
    } else {
      total = map(0, static_cast<std::int64_t>(samples_));
    }
    loss = total.loss / static_cast<double>(samples_);
    if (epoch == 0) initial_loss_ = loss;
    if (epoch == epochs_) break;  // final pass measures, does not update
    for (std::size_t k = 0; k < n_features_; ++k) {
      weights_[k] -= lr * total.grad[k];
    }
  }
  return loss;
}

void PnnApp::run(rt::Scheduler& sched) { final_loss_ = train(&sched); }

void PnnApp::run_serial() { final_loss_ = train(nullptr); }

std::string PnnApp::verify() const {
  // Training on a realizable target must reduce the loss substantially;
  // gradient descent here is deterministic, so this is a stable check.
  if (!(final_loss_ < initial_loss_ * 0.5)) {
    std::ostringstream os;
    os << "training did not converge: initial loss " << initial_loss_
       << ", final loss " << final_loss_;
    return os.str();
  }
  if (!std::isfinite(final_loss_)) return "loss diverged to non-finite";
  return {};
}

}  // namespace dws::apps
