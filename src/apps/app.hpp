// Common interface for the Table-2 benchmark applications (§4, Table 2).
//
// Every app is implemented twice:
//  1. as a real parallel kernel against the dws::rt API (this interface),
//     with a serial reference for correctness checking; and
//  2. as a simulator DagProfile (profiles.hpp) capturing the app's
//     parallelism shape for the evaluation figures.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"

namespace dws::apps {

/// Problem-size presets. Tests use kTiny/kSmall; benches use kMedium.
enum class Scale { kTiny, kSmall, kMedium };

class App {
 public:
  virtual ~App() = default;

  /// Table-2 name, e.g. "FFT".
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Execute the parallel kernel once on `sched`. May be called multiple
  /// times; each call re-runs the same problem instance.
  virtual void run(rt::Scheduler& sched) = 0;

  /// Execute the serial reference implementation once (for baselines and
  /// verification). Must compute the same result as run().
  virtual void run_serial() = 0;

  /// Check the most recent run()/run_serial() result. Returns an empty
  /// string on success, else a description of the mismatch.
  [[nodiscard]] virtual std::string verify() const = 0;
};

/// Table-2 ids: p-1 .. p-8.
inline constexpr const char* kAppNames[] = {
    "FFT", "PNN", "Cholesky", "LU", "GE", "Heat", "SOR", "Mergesort"};
inline constexpr unsigned kNumApps = 8;

/// Factory: `name` is a Table-2 name (case-sensitive); returns nullptr for
/// unknown names.
std::unique_ptr<App> make_app(const std::string& name, Scale scale,
                              std::uint64_t seed = 42);

/// All eight, in Table-2 order.
std::vector<std::unique_ptr<App>> make_all_apps(Scale scale,
                                                std::uint64_t seed = 42);

}  // namespace dws::apps
