// Instrumented atomics for the model checker: drop-in replacements for
// std::atomic<T>, std::atomic_thread_fence, and (for race detection on
// plain shared data) a checked non-atomic cell check::var<T>.
//
// Memory model (operational, relacy-style — see docs/CHECKING.md):
//
//  - Every atomic location keeps the full *history* of stores, each stamped
//    with the storing thread's vector clock and carrying a release clock.
//    Modification order is history order (stores execute atomically in the
//    serialized interleaving).
//  - A load may read ANY store not invalidated by coherence or
//    happens-before: the candidate window starts at the newest store the
//    loading thread has already observed (per-location last_seen) or that
//    happens-before the load, whichever is newer. Which candidate is
//    returned is an explored decision — this is how relaxed/acquire code
//    legitimately observes stale values.
//  - acquire loads join the release clock of the store they read;
//    release stores carry the storing thread's clock; relaxed stores after
//    a release fence carry the fence-time clock; acquire fences join the
//    release clocks of all previously read stores.
//  - seq_cst operations and fences additionally synchronize through one
//    global SC clock (joined both ways). This is slightly *stronger* than
//    C++'s S order, so the checker explores a sound subset of allowed
//    behaviours: it can miss exotic weak executions but never reports a
//    failure a correct C++ program could not exhibit.
//  - RMWs read the newest store in modification order (as C++ requires)
//    and continue its release sequence.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "check/scheduler.hpp"
#include "check/vector_clock.hpp"

namespace dws::check {

namespace detail {

[[nodiscard]] constexpr bool mo_acquire(std::memory_order mo) noexcept {
  return mo == std::memory_order_acquire || mo == std::memory_order_consume ||
         mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
}

[[nodiscard]] constexpr bool mo_release(std::memory_order mo) noexcept {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

template <typename T>
[[nodiscard]] long long to_ll(T v) noexcept {
  if constexpr (std::is_pointer_v<T>) {
    return static_cast<long long>(reinterpret_cast<std::intptr_t>(v));
  } else if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
    return static_cast<long long>(v);
  } else {
    return 0;
  }
}

}  // namespace detail

template <typename T>
class atomic {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  static constexpr bool is_always_lock_free = true;

  atomic() : atomic(T{}) {}

  atomic(T v) {  // NOLINT(google-explicit-constructor): mirrors std::atomic
    Scheduler* s = current();
    id_ = s != nullptr ? s->next_object_id() : 0;
    StoreRec r;
    r.value = v;
    r.tid = s != nullptr ? s->current_thread() : 0;
    if (s != nullptr) {
      auto& ts = s->state(r.tid);
      ts.clock.c[r.tid]++;
      r.stamp = ts.clock;
      // Initialization is published by whatever edge makes the object
      // reachable (in explore(): the spawn edge), so carrying the creator's
      // clock as a release is sound and avoids uninitialized-read noise.
      r.release = ts.clock;
    }
    hist_.push_back(r);
  }

  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    Scheduler* s = current();
    if (s == nullptr) return hist_.back().value;
    auto guard = s->op_guard();
    if (s->aborting()) return hist_.back().value;
    s->schedule_point();
    const int tid = s->current_thread();
    auto& ts = s->state(tid);
    if (mo == std::memory_order_seq_cst) s->sc_sync(ts.clock);
    const int idx = pick_readable(s, ts, tid);
    const StoreRec& r = hist_[static_cast<std::size_t>(idx)];
    if (idx > last_seen_[tid]) last_seen_[tid] = idx;
    if (detail::mo_acquire(mo)) ts.clock.join(r.release);
    ts.acq_pending.join(r.release);
    if (s->trace_enabled()) {
      s->note("atomic", id_, "load", detail::to_ll(r.value));
    }
    return r.value;
  }

  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    Scheduler* s = current();
    if (s == nullptr) {
      hist_.back().value = v;
      return;
    }
    auto guard = s->op_guard();
    if (s->aborting()) {
      hist_.push_back({v, {}, {}, s->current_thread()});
      return;
    }
    s->schedule_point();
    const int tid = s->current_thread();
    auto& ts = s->state(tid);
    ts.clock.c[tid]++;
    if (mo == std::memory_order_seq_cst) s->sc_sync(ts.clock);
    StoreRec r;
    r.value = v;
    r.tid = tid;
    r.stamp = ts.clock;
    if (detail::mo_release(mo)) {
      r.release = ts.clock;
    } else if (ts.has_rel_fence) {
      r.release = ts.rel_fence;
    }
    hist_.push_back(std::move(r));
    last_seen_[tid] = static_cast<int>(hist_.size()) - 1;
    if (s->trace_enabled()) s->note("atomic", id_, "store", detail::to_ll(v));
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    Scheduler* s = current();
    if (s == nullptr || s->aborting()) {
      auto guard = s != nullptr ? s->op_guard()
                                : std::unique_lock<std::mutex>();
      if (hist_.back().value == expected) {
        hist_.push_back({desired, {}, {}, s != nullptr ? s->current_thread() : 0});
        return true;
      }
      expected = hist_.back().value;
      return false;
    }
    s->schedule_point();
    const int tid = s->current_thread();
    auto& ts = s->state(tid);
    // C++ requires the RMW (and its failure load) to observe the newest
    // value in modification order.
    const StoreRec& last = hist_.back();
    if (!(last.value == expected)) {
      if (failure == std::memory_order_seq_cst) s->sc_sync(ts.clock);
      if (detail::mo_acquire(failure)) ts.clock.join(last.release);
      ts.acq_pending.join(last.release);
      last_seen_[tid] = static_cast<int>(hist_.size()) - 1;
      expected = last.value;
      if (s->trace_enabled()) {
        s->note("atomic", id_, "cas-fail", detail::to_ll(last.value));
      }
      return false;
    }
    rmw_commit(s, ts, tid, desired, success);
    if (s->trace_enabled()) {
      s->note("atomic", id_, "cas", detail::to_ll(desired));
    }
    return true;
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order mo = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, mo, mo);
  }

  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    // The checker has no spurious failures; weak == strong here.
    return compare_exchange_strong(expected, desired, success, failure);
  }

  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    Scheduler* s = current();
    if (s == nullptr || s->aborting()) {
      auto guard = s != nullptr ? s->op_guard()
                                : std::unique_lock<std::mutex>();
      const T old = hist_.back().value;
      hist_.push_back({v, {}, {}, s != nullptr ? s->current_thread() : 0});
      return old;
    }
    s->schedule_point();
    const int tid = s->current_thread();
    auto& ts = s->state(tid);
    const T old = rmw_commit(s, ts, tid, v, mo);
    if (s->trace_enabled()) s->note("atomic", id_, "exchange", detail::to_ll(v));
    return old;
  }

  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_add(T arg, std::memory_order mo = std::memory_order_seq_cst) {
    Scheduler* s = current();
    if (s == nullptr || s->aborting()) {
      auto guard = s != nullptr ? s->op_guard()
                                : std::unique_lock<std::mutex>();
      const T old = hist_.back().value;
      hist_.push_back({static_cast<T>(old + arg), {}, {},
                       s != nullptr ? s->current_thread() : 0});
      return old;
    }
    s->schedule_point();
    const int tid = s->current_thread();
    auto& ts = s->state(tid);
    const T old = hist_.back().value;
    rmw_commit(s, ts, tid, static_cast<T>(old + arg), mo);
    if (s->trace_enabled()) {
      s->note("atomic", id_, "fetch_add", detail::to_ll(old));
    }
    return old;
  }

 private:
  struct StoreRec {
    T value{};
    VectorClock release;  // what an acquire reader synchronizes with
    VectorClock stamp;    // the storing thread's clock at the store
    int tid = 0;
  };

  /// Index of the store this load will read: the window floor is the newest
  /// of (a) what this thread already observed here and (b) the newest store
  /// that happens-before the load; above the floor the choice is explored.
  int pick_readable(Scheduler* s, detail::ThreadState& ts, int tid) const {
    int floor = last_seen_[tid];
    for (int i = static_cast<int>(hist_.size()) - 1; i > floor; --i) {
      const StoreRec& r = hist_[static_cast<std::size_t>(i)];
      if (r.stamp.c[r.tid] <= ts.clock.c[r.tid]) {
        floor = i;
        break;
      }
    }
    const int n = static_cast<int>(hist_.size()) - floor;
    return floor + s->choose_value(n);
  }

  /// Successful-RMW bookkeeping: reads the newest store, appends the new
  /// one continuing the release sequence. Returns the value read.
  T rmw_commit(Scheduler* s, detail::ThreadState& ts, int tid, T desired,
               std::memory_order mo) {
    const StoreRec last = hist_.back();  // copy: push_back invalidates refs
    ts.clock.c[tid]++;
    if (mo == std::memory_order_seq_cst) s->sc_sync(ts.clock);
    if (detail::mo_acquire(mo)) ts.clock.join(last.release);
    ts.acq_pending.join(last.release);
    StoreRec r;
    r.value = desired;
    r.tid = tid;
    r.release = last.release;  // release-sequence continuation
    if (detail::mo_release(mo)) {
      r.release.join(ts.clock);
    } else if (ts.has_rel_fence) {
      r.release.join(ts.rel_fence);
    }
    r.stamp = ts.clock;
    hist_.push_back(std::move(r));
    last_seen_[tid] = static_cast<int>(hist_.size()) - 1;
    return last.value;
  }

  mutable std::vector<StoreRec> hist_;
  mutable std::array<int, kMaxThreads + 1> last_seen_{};
  int id_ = 0;
};

/// Fence replacement; outside explore() falls through to the real fence.
inline void fence(std::memory_order mo) {
  Scheduler* s = current();
  if (s == nullptr) {
    std::atomic_thread_fence(mo);
    return;
  }
  auto guard = s->op_guard();
  if (s->aborting()) return;
  s->schedule_point();
  auto& ts = s->state(s->current_thread());
  if (detail::mo_acquire(mo)) ts.clock.join(ts.acq_pending);
  if (mo == std::memory_order_seq_cst) s->sc_sync(ts.clock);
  if (detail::mo_release(mo)) {
    ts.has_rel_fence = true;
    ts.rel_fence = ts.clock;
  }
  if (s->trace_enabled()) s->note("fence", 0, "fence", static_cast<int>(mo));
}

/// Checked NON-atomic shared cell: reads/writes participate in the
/// interleaving exploration and any pair of accesses not ordered by
/// happens-before (with at least one write) fails the execution as a data
/// race. Use for plain shared data the code under test publishes through
/// atomics.
template <typename T>
class var {
 public:
  var() : var(T{}) {}

  explicit var(T v) : v_(v) {
    Scheduler* s = current();
    id_ = s != nullptr ? s->next_object_id() : 0;
    if (s != nullptr) {
      const int tid = s->current_thread();
      auto& ts = s->state(tid);
      ts.clock.c[tid]++;
      write_stamp_ = ts.clock;
      writer_ = tid;
    }
  }

  var(const var&) = delete;
  var& operator=(const var&) = delete;

  T read() const {
    Scheduler* s = current();
    if (s == nullptr) return v_;
    auto guard = s->op_guard();
    if (s->aborting()) return v_;
    s->schedule_point();
    const int tid = s->current_thread();
    auto& ts = s->state(tid);
    if (write_stamp_.c[writer_] > ts.clock.c[writer_]) {
      s->fail("data race: read of var#" + std::to_string(id_) +
              " is concurrent with a write by T" + std::to_string(writer_));
    }
    if (ts.clock.c[tid] > read_epochs_[tid]) read_epochs_[tid] = ts.clock.c[tid];
    if (s->trace_enabled()) s->note("var", id_, "read", detail::to_ll(v_));
    return v_;
  }

  void write(T v) {
    Scheduler* s = current();
    if (s == nullptr) {
      v_ = v;
      return;
    }
    auto guard = s->op_guard();
    if (s->aborting()) {
      v_ = v;
      return;
    }
    s->schedule_point();
    const int tid = s->current_thread();
    auto& ts = s->state(tid);
    if (write_stamp_.c[writer_] > ts.clock.c[writer_]) {
      s->fail("data race: write of var#" + std::to_string(id_) +
              " is concurrent with a write by T" + std::to_string(writer_));
    }
    for (int i = 0; i <= kMaxThreads; ++i) {
      if (i != tid && read_epochs_[i] > ts.clock.c[i]) {
        s->fail("data race: write of var#" + std::to_string(id_) +
                " is concurrent with a read by T" + std::to_string(i));
      }
    }
    ts.clock.c[tid]++;
    v_ = v;
    write_stamp_ = ts.clock;
    writer_ = tid;
    if (s->trace_enabled()) s->note("var", id_, "write", detail::to_ll(v));
  }

 private:
  T v_;
  VectorClock write_stamp_;
  int writer_ = 0;
  mutable std::array<std::uint32_t, kMaxThreads + 1> read_epochs_{};
  int id_ = 0;
};

}  // namespace dws::check
