#include "check/scheduler.hpp"

#include <exception>
#include <stdexcept>

namespace dws::check {

namespace {

Scheduler* g_current = nullptr;
thread_local int tls_tid = 0;

std::vector<int> parse_schedule(const std::string& s) {
  std::vector<int> out;
  long v = 0;
  bool have = false;
  for (char ch : s) {
    if (ch >= '0' && ch <= '9') {
      v = v * 10 + (ch - '0');
      have = true;
    } else {
      if (have) out.push_back(static_cast<int>(v));
      v = 0;
      have = false;
    }
  }
  if (have) out.push_back(static_cast<int>(v));
  return out;
}

std::string format_schedule(const std::vector<detail::Decision>& ds) {
  std::string s;
  for (const auto& d : ds) {
    if (!s.empty()) s += ',';
    s += std::to_string(d.taken);
  }
  return s;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string s;
  for (const auto& l : lines) {
    s += l;
    s += '\n';
  }
  return s;
}

}  // namespace

Scheduler* current() noexcept { return g_current; }

void expect(bool cond, const char* msg) {
  if (cond) return;
  if (Scheduler* s = current()) s->fail(msg);
  throw std::logic_error(msg);
}

void Sim::spawn(std::function<void()> body) {
  sched_->spawn_body(std::move(body));
}

void Sim::on_exit(std::function<void()> fn) {
  sched_->exit_fns_.push_back(std::move(fn));
}

Scheduler::Scheduler(const Options& opts, std::vector<int> prefix, bool random,
                     std::uint64_t seed, bool trace_on)
    : opts_(opts),
      prefix_(std::move(prefix)),
      random_(random),
      rng_(seed),
      trace_on_(trace_on) {}

int Scheduler::current_thread() const noexcept { return tls_tid; }

bool Scheduler::quiescent() const noexcept {
  return !running_ || tls_tid == 0;
}

void Scheduler::spawn_body(std::function<void()> body) {
  if (running_) throw std::logic_error("spawn() after threads started");
  if (nthreads_ >= kMaxThreads) {
    throw std::logic_error("too many model threads (kMaxThreads)");
  }
  const int id = ++nthreads_;
  bodies_.push_back(std::move(body));
  // Spawn edge: the child starts knowing everything the controller knows.
  auto& ctrl = states_[0];
  ctrl.clock.c[0]++;
  states_[id].clock = ctrl.clock;
  states_[id].clock.c[id] = 1;
}

void Scheduler::run_threads() {
  if (nthreads_ == 0) return;
  running_ = true;
  os_threads_.reserve(static_cast<std::size_t>(nthreads_));
  for (int i = 1; i <= nthreads_; ++i) {
    os_threads_.emplace_back([this, i] { thread_main(i); });
  }
  {
    std::unique_lock lk(mu_);
    active_ = pick_next_locked(-1);
    cv_.notify_all();
    cv_.wait(lk, [&] { return active_ == -2; });
  }
  for (auto& t : os_threads_) t.join();
  os_threads_.clear();
  running_ = false;
  // Join edge: the controller (post-conditions, destructors) sees all.
  for (int i = 1; i <= nthreads_; ++i) states_[0].clock.join(states_[i].clock);
}

void Scheduler::thread_main(int tid) {
  tls_tid = tid;
  {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return active_ == tid || abort_; });
  }
  if (!abort_) {
    try {
      bodies_[static_cast<std::size_t>(tid - 1)]();
    } catch (const detail::StopExecution&) {
    } catch (const std::exception& e) {
      std::unique_lock lk(mu_);
      record_failure_locked(
          std::string("unhandled exception in model thread: ") + e.what());
    } catch (...) {
      std::unique_lock lk(mu_);
      record_failure_locked("unhandled exception in model thread");
    }
  }
  std::unique_lock lk(mu_);
  finished_[tid] = true;
  if (trace_on_) trace_.push_back("T" + std::to_string(tid) + ": exit");
  const int next = pick_next_locked(tid);
  active_ = next < 0 ? -2 : next;
  cv_.notify_all();
  tls_tid = 0;
}

int Scheduler::pick_next_locked(int cur) {
  // Candidate order: the current thread first (so the DFS default of 0 is
  // "no preemption"), then the others by id.
  int cand[kMaxThreads];
  int n = 0;
  const bool cur_runnable = cur >= 1 && !finished_[cur];
  if (cur_runnable) cand[n++] = cur;
  for (int i = 1; i <= nthreads_; ++i) {
    if (i != cur && !finished_[i]) cand[n++] = i;
  }
  if (n == 0) return -1;
  if (n == 1) return cand[0];
  const int k = decide(n, detail::DecisionKind::kThread, cur_runnable);
  return cand[k];
}

int Scheduler::decide(int n, detail::DecisionKind kind, bool preemptive) {
  int taken;
  if (pos_ < prefix_.size()) {
    taken = prefix_[pos_];
    if (taken >= n) taken = n - 1;
    if (taken < 0) taken = 0;
  } else if (random_) {
    taken = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(n)));
  } else {
    taken = 0;
  }
  decisions_.push_back({kind, taken, n, preemptive, preemptions_});
  if (kind == detail::DecisionKind::kThread && preemptive && taken != 0) {
    ++preemptions_;
  }
  ++pos_;
  return taken;
}

void Scheduler::schedule_point() {
  if (quiescent()) return;
  const int cur = tls_tid;
  if (abort_) {
    if (std::uncaught_exceptions() == 0) throw detail::StopExecution{};
    return;
  }
  if (++steps_ > opts_.max_steps) {
    fail("model-check step limit exceeded (livelock or runaway loop?)");
  }
  std::unique_lock lk(mu_);
  const int next = pick_next_locked(cur);
  if (next != cur) {
    if (trace_on_) trace_.push_back("-- switch to T" + std::to_string(next));
    active_ = next;
    cv_.notify_all();
    cv_.wait(lk, [&] { return active_ == cur || abort_; });
  }
  if (abort_) {
    lk.unlock();
    if (std::uncaught_exceptions() == 0) throw detail::StopExecution{};
  }
}

int Scheduler::choose_value(int n) {
  if (n <= 1) return 0;
  if (quiescent()) return n - 1;  // the controller reads the newest store
  return decide(n, detail::DecisionKind::kValue, false);
}

void Scheduler::sc_sync(VectorClock& clock) {
  clock.join(sc_);
  sc_.join(clock);
}

std::unique_lock<std::mutex> Scheduler::op_guard() {
  if (!abort_) return {};
  return std::unique_lock<std::mutex>(mu_);
}

void Scheduler::record_failure_locked(std::string msg) {
  if (!failed_) {
    failed_ = true;
    message_ = std::move(msg);
    if (trace_on_) trace_.push_back("!! FAIL: " + message_);
  }
  abort_ = true;
  cv_.notify_all();
}

void Scheduler::fail(std::string msg) {
  {
    std::unique_lock lk(mu_);
    record_failure_locked(std::move(msg));
  }
  throw detail::StopExecution{};
}

void Scheduler::note(const char* obj, int obj_id, const char* op,
                     long long value, const char* extra) {
  if (!trace_on_) return;
  std::string line = "T" + std::to_string(tls_tid) + ": " + obj + "#" +
                     std::to_string(obj_id) + "." + op + " -> " +
                     std::to_string(value);
  if (extra != nullptr) {
    line += ' ';
    line += extra;
  }
  trace_.push_back(std::move(line));
}

Scheduler::ExecOutcome Scheduler::run_one(
    const Options& opts, std::vector<int> prefix, bool random,
    std::uint64_t seed, bool trace_on,
    const std::function<void(Sim&)>& setup) {
  if (g_current != nullptr) {
    throw std::logic_error("nested explore() is not supported");
  }
  Scheduler sched(opts, std::move(prefix), random, seed, trace_on);
  // Destroy the user closures (and the shared state they own) while the
  // scheduler is still current: destructors may touch instrumented atomics.
  struct Guard {
    Scheduler* s;
    ~Guard() {
      s->bodies_.clear();
      s->exit_fns_.clear();
      g_current = nullptr;
    }
  } guard{&sched};
  g_current = &sched;
  Sim sim(&sched);
  try {
    setup(sim);
    if (!sched.failed_) sched.run_threads();
    if (!sched.failed_) {
      for (auto& f : sched.exit_fns_) {
        f();
        if (sched.failed_) break;
      }
    }
  } catch (const detail::StopExecution&) {
  }
  ExecOutcome out;
  out.failed = sched.failed_;
  out.message = sched.message_;
  out.decisions = std::move(sched.decisions_);
  out.trace = std::move(sched.trace_);
  return out;
}

Result explore(const Options& opts, const std::function<void(Sim&)>& setup) {
  Result res;

  auto finish_failure = [&](Scheduler::ExecOutcome traced,
                            std::uint64_t failing_seed) {
    res.failed = true;
    res.message = traced.message;
    res.trace = join_lines(traced.trace);
    res.schedule = format_schedule(traced.decisions);
    res.failing_seed = failing_seed;
  };

  if (!opts.replay.empty()) {
    auto out = Scheduler::run_one(opts, parse_schedule(opts.replay), false, 0,
                                  true, setup);
    res.executions = 1;
    res.failed = out.failed;
    res.message = out.message;
    res.trace = join_lines(out.trace);
    res.schedule = format_schedule(out.decisions);
    return res;
  }

  if (opts.mode == Options::Mode::kRandom) {
    for (long it = 0; it < opts.iterations; ++it) {
      const std::uint64_t seed = opts.seed + static_cast<std::uint64_t>(it);
      auto out = Scheduler::run_one(opts, {}, true, seed, false, setup);
      ++res.executions;
      if (out.failed) {
        // Deterministic re-run of the failing seed with tracing on; the
        // recorded decisions double as the replay schedule.
        finish_failure(Scheduler::run_one(opts, {}, true, seed, true, setup),
                       seed);
        return res;
      }
    }
    return res;
  }

  // Exhaustive bounded DFS over the decision tree (CHESS-style).
  std::vector<std::vector<int>> stack;
  stack.emplace_back();
  while (!stack.empty()) {
    if (res.executions >= opts.max_executions) {
      res.truncated = true;
      break;
    }
    const std::vector<int> prefix = std::move(stack.back());
    stack.pop_back();
    const std::size_t plen = prefix.size();
    auto out = Scheduler::run_one(opts, prefix, false, 0, false, setup);
    ++res.executions;
    if (out.failed) {
      std::vector<int> schedule;
      schedule.reserve(out.decisions.size());
      for (const auto& d : out.decisions) schedule.push_back(d.taken);
      finish_failure(
          Scheduler::run_one(opts, std::move(schedule), false, 0, true, setup),
          0);
      return res;
    }
    // Branch on every decision made freely (i.e. past the forced prefix).
    for (std::size_t p = out.decisions.size(); p-- > plen;) {
      const auto& d = out.decisions[p];
      for (int alt = d.taken + 1; alt < d.num; ++alt) {
        const bool is_preemption = d.kind == detail::DecisionKind::kThread &&
                                   d.preemptive && alt != 0;
        if (is_preemption && d.preemptions_before >= opts.preemption_bound) {
          continue;
        }
        std::vector<int> np;
        np.reserve(p + 1);
        for (std::size_t i = 0; i < p; ++i) np.push_back(out.decisions[i].taken);
        np.push_back(alt);
        stack.push_back(std::move(np));
      }
    }
  }
  return res;
}

}  // namespace dws::check
