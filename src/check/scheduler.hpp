// Controlled-scheduler model checker for small concurrent test bodies, in
// the spirit of relacy and loom.
//
// explore() runs a user-supplied scenario many times. Each *execution*
// serializes the model threads — exactly one runs at any instant — and at
// every visible operation (each check::atomic access, check::fence,
// check::var access) consults a decision sequence to pick (a) which thread
// runs next and (b), for atomic loads, WHICH of the legally readable stores
// is returned (the weak-memory part; see atomic.hpp). Two exploration
// strategies share the machinery:
//
//  - kExhaustive: iterative-deepening DFS over the decision tree. The
//    default branch is "no preemption / read the newest visible store";
//    backtracking enumerates every alternative, with context switches away
//    from a runnable thread bounded by Options::preemption_bound (CHESS).
//  - kRandom: `iterations` executions with uniformly random decisions from
//    a seeded generator; good for larger bodies the DFS cannot exhaust.
//
// Every failure is replayable: Result::schedule is the exact decision
// sequence of the failing execution, and running again with
// Options::replay = schedule reproduces it (and its trace) deterministically.
// See docs/CHECKING.md for the memory-model assumptions.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "check/vector_clock.hpp"
#include "util/rng.hpp"

namespace dws::check {

struct Options {
  enum class Mode { kExhaustive, kRandom };
  Mode mode = Mode::kExhaustive;

  /// kExhaustive: max context switches away from a still-runnable thread
  /// per execution (forced switches at thread exit are free).
  int preemption_bound = 2;
  /// kExhaustive: stop after this many executions even if the (bounded)
  /// tree is not exhausted; Result::truncated reports which happened.
  long max_executions = 100000;

  /// kRandom: number of executions and base seed (execution i uses
  /// seed + i, so a failure is pinned to one derived seed).
  long iterations = 2000;
  std::uint64_t seed = 1;

  /// Per-execution cap on visible operations (livelock guard).
  long max_steps = 100000;

  /// Non-empty: ignore mode and run the single execution this decision
  /// string (from Result::schedule) prescribes, with tracing on.
  std::string replay;
};

struct Result {
  bool failed = false;
  long executions = 0;      ///< executions actually run
  bool truncated = false;   ///< kExhaustive hit max_executions first
  std::string message;      ///< first failure (empty if !failed)
  std::string trace;        ///< per-step event log of the failing execution
  std::string schedule;     ///< decision string replaying the failure
  std::uint64_t failing_seed = 0;  ///< kRandom: derived seed that failed
};

namespace detail {

/// Thrown to unwind a model thread when the execution is over (failure or
/// abort). Never escapes explore().
struct StopExecution {};

enum class DecisionKind { kThread, kValue };

struct Decision {
  DecisionKind kind;
  int taken;
  int num;               // alternatives at this point
  bool preemptive;       // kThread with the previous thread still runnable
  int preemptions_before;  // preemptions taken in the prefix up to here
};

struct ThreadState {
  VectorClock clock;        // happens-before knowledge
  VectorClock acq_pending;  // release clocks of stores read (acquire fences)
  VectorClock rel_fence;    // clock at the latest release fence
  bool has_rel_fence = false;
};

}  // namespace detail

class Scheduler;

/// The scheduler driving the current execution on this thread, or nullptr
/// outside explore(). check::atomic/var/fence route through it.
[[nodiscard]] Scheduler* current() noexcept;

/// Handle passed to the scenario setup function.
class Sim {
 public:
  explicit Sim(Scheduler* s) : sched_(s) {}
  /// Add a model thread (before any runs; at most kMaxThreads).
  void spawn(std::function<void()> body);
  /// Register a post-condition checked after all model threads finished.
  void on_exit(std::function<void()> fn);

 private:
  Scheduler* sched_;
};

/// Run `setup` once per execution; it creates the (fresh) shared state and
/// spawns the model threads. Because the scheduler serializes the model
/// threads on a real mutex, plain (uninstrumented) memory is safe to use
/// for per-thread result slots read by on_exit.
Result explore(const Options& opts, const std::function<void(Sim&)>& setup);

/// Model-checker assertion: usable from model threads, setup, and on_exit.
/// Outside explore() falls back to throwing std::logic_error.
void expect(bool cond, const char* msg);

class Scheduler {
 public:
  // ---- Interface used by the instrumented primitives (atomic.hpp) ----

  /// Model-thread id of the calling thread (0 = controller).
  [[nodiscard]] int current_thread() const noexcept;

  [[nodiscard]] detail::ThreadState& state(int tid) { return states_[tid]; }

  /// Scheduling point before a visible operation: may hand the token to
  /// another thread (a decision), counts steps, honours aborts.
  void schedule_point();

  /// Value decision: pick one of n alternatives (load candidates).
  int choose_value(int n);

  /// seq_cst synchronization: clock <-> global SC clock, both ways.
  void sc_sync(VectorClock& clock);

  /// True once a failure aborted this execution; instrumented ops then take
  /// op_guard() and a minimal sequentialized path while threads unwind.
  [[nodiscard]] bool aborting() const noexcept { return abort_; }
  [[nodiscard]] std::unique_lock<std::mutex> op_guard();

  /// Record a failure and unwind the calling thread.
  [[noreturn]] void fail(std::string msg);

  /// Sequential id for a freshly constructed instrumented object (stable
  /// across replays, used to label trace lines).
  int next_object_id() noexcept { return ++object_ids_; }

  [[nodiscard]] bool trace_enabled() const noexcept { return trace_on_; }
  void note(const char* obj, int obj_id, const char* op, long long value,
            const char* extra = nullptr);

  [[nodiscard]] bool quiescent() const noexcept;

 private:
  friend class Sim;
  friend Result explore(const Options&, const std::function<void(Sim&)>&);

  struct ExecOutcome {
    bool failed = false;
    std::string message;
    std::vector<detail::Decision> decisions;
    std::vector<std::string> trace;
  };

  Scheduler(const Options& opts, std::vector<int> prefix, bool random,
            std::uint64_t seed, bool trace_on);

  void spawn_body(std::function<void()> body);
  void run_threads();
  void thread_main(int tid);
  int pick_next_locked(int cur);
  int decide(int n, detail::DecisionKind kind, bool preemptive);
  void record_failure_locked(std::string msg);

  static ExecOutcome run_one(const Options& opts, std::vector<int> prefix,
                             bool random, std::uint64_t seed, bool trace_on,
                             const std::function<void(Sim&)>& setup);

  const Options& opts_;
  std::vector<int> prefix_;
  bool random_;
  util::Xoshiro256 rng_;
  bool trace_on_;

  std::vector<std::function<void()>> bodies_;
  std::vector<std::function<void()>> exit_fns_;
  std::vector<std::thread> os_threads_;
  std::array<detail::ThreadState, kMaxThreads + 1> states_{};
  std::array<bool, kMaxThreads + 1> finished_{};
  int nthreads_ = 0;
  int object_ids_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  int active_ = -1;  // model thread holding the token; -2 = all done
  bool running_ = false;
  bool abort_ = false;
  bool failed_ = false;
  std::string message_;

  VectorClock sc_;  // global seq_cst clock (see atomic.hpp)

  long steps_ = 0;
  int preemptions_ = 0;
  std::size_t pos_ = 0;
  std::vector<detail::Decision> decisions_;
  std::vector<std::string> trace_;
};

}  // namespace dws::check
