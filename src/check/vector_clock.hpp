// Vector clocks for the model checker's happens-before tracking.
#pragma once

#include <array>
#include <cstdint>

namespace dws::check {

/// Maximum number of *model* threads per exploration (ids 1..kMaxThreads).
/// Id 0 is the controller (the thread calling explore(), which runs the
/// setup and post-condition code while the model threads are quiescent).
inline constexpr int kMaxThreads = 8;

struct VectorClock {
  std::array<std::uint32_t, kMaxThreads + 1> c{};

  void join(const VectorClock& o) noexcept {
    for (int i = 0; i <= kMaxThreads; ++i) {
      if (o.c[i] > c[i]) c[i] = o.c[i];
    }
  }

  /// True if every component of *this is <= the corresponding one of `o`
  /// (i.e. the event stamped *this happens-before or equals the point `o`).
  [[nodiscard]] bool leq(const VectorClock& o) const noexcept {
    for (int i = 0; i <= kMaxThreads; ++i) {
      if (c[i] > o.c[i]) return false;
    }
    return true;
  }
};

}  // namespace dws::check
