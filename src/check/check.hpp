// Umbrella header for the dws::check model-checking harness, plus the
// atomics policies that plug the instrumented primitives into the
// policy-templated production structures (ChaseLevDeque, CoreOps).
//
//   #include "check/check.hpp"
//   using CheckedDeque = dws::rt::ChaseLevDeque<int, dws::check::CheckAtomicsPolicy>;
//   auto r = dws::check::explore(opts, [](dws::check::Sim& sim) { ... });
//
// See docs/CHECKING.md for the model, how to write a check, and how to
// replay a failing interleaving.
#pragma once

#include "check/atomic.hpp"
#include "check/scheduler.hpp"
#include "check/vector_clock.hpp"

namespace dws::check {

/// Atomics policy routing every operation through the model checker.
struct CheckAtomicsPolicy {
  template <typename T>
  using atomic = check::atomic<T>;

  static void fence(std::memory_order mo) { check::fence(mo); }
};

/// Fault-injection policy adapter: downgrades every seq_cst fence to
/// acq_rel (erasing the store-load ordering the Chase-Lev take/steal
/// protocol depends on) while leaving all other orders intact. Used to
/// prove the checker actually catches the class of bug it exists for —
/// see ChaseLevDequeCheck.WeakenedFenceIsCaught.
template <typename Base = CheckAtomicsPolicy>
struct WeakenSeqCstFences {
  template <typename T>
  using atomic = typename Base::template atomic<T>;

  static void fence(std::memory_order mo) {
    Base::fence(mo == std::memory_order_seq_cst ? std::memory_order_acq_rel
                                                : mo);
  }
};

/// Fault-injection policy adapter: downgrades every release fence to
/// relaxed, erasing the publication edge ChaseLevDeque::push relies on
/// (payload writes -> bottom_ store). With it, a thief may legitimately
/// read a *stale* value out of a deque slot or a recycled pool slot —
/// exactly the bug class the task-recycle scenarios certify against. See
/// TaskPoolCheck.WeakenedPublishFenceIsCaught.
template <typename Base = CheckAtomicsPolicy>
struct WeakenReleaseFences {
  template <typename T>
  using atomic = typename Base::template atomic<T>;

  static void fence(std::memory_order mo) {
    Base::fence(mo == std::memory_order_release ? std::memory_order_relaxed
                                                : mo);
  }
};

}  // namespace dws::check
