// The per-program coordinator thread (§3.3): every T milliseconds it
// snapshots the program's demand (N_b, N_a) and the table state (N_f,
// N_r), runs CoordinatorPolicy, acquires cores, and wakes the sleeping
// workers on them.
//
// Only the sleeping modes (DWS, DWS-NC) get a live coordinator; for other
// modes the scheduler does not construct one, matching the paper's claim
// that the coordinator is DWS's only overhead (§4.4).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "core/coordinator_policy.hpp"
#include "core/types.hpp"
#include "util/layout.hpp"

namespace dws::rt {

class Scheduler;

class Coordinator {
 public:
  Coordinator(Scheduler& sched, double period_ms, double wake_threshold,
              std::uint64_t seed);
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;
  ~Coordinator();

  void start();
  /// Signal and join. Safe to call multiple times.
  void stop();

  /// Run one coordination step immediately (also used by tests to drive
  /// the coordinator deterministically without waiting out the period).
  void tick();

  /// Cut the current period's sleep short so the next tick happens now.
  /// Called when external work arrives on a fully-asleep program.
  void nudge() noexcept;

  [[nodiscard]] std::uint64_t ticks() const noexcept {
    return ticks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t wakes() const noexcept {
    return wakes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cores_claimed() const noexcept {
    return cores_claimed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cores_reclaimed() const noexcept {
    return cores_reclaimed_.load(std::memory_order_relaxed);
  }
  /// Co-running programs this coordinator has declared dead and swept.
  [[nodiscard]] std::uint64_t stale_programs_swept() const noexcept {
    return stale_programs_swept_.load(std::memory_order_relaxed);
  }
  /// Cores recovered from dead co-runners by the stale sweep.
  [[nodiscard]] std::uint64_t cores_recovered() const noexcept {
    return cores_recovered_.load(std::memory_order_relaxed);
  }

 private:
  friend struct dws::layout::Access;  // layout_audit reads private layouts

  void thread_main();

  Scheduler& sched_;
  const double period_ms_;
  CoordinatorPolicy policy_;
  std::unique_ptr<CoordinatorDriver> driver_;  // only for table-using modes
  std::unique_ptr<StaleSweeper> sweeper_;      // crash tolerance (optional)

  std::thread thread_;
  // Stop/nudge handshake: written by the owning Scheduler (stop, nudge)
  // and read by the coordinator thread — a different writer set than the
  // tick counters below, so the two groups get separate lines.
  DWS_SHARED std::mutex m_;
  DWS_SHARED std::condition_variable cv_;
  DWS_SHARED bool stop_requested_ = false;  // guarded by m_

  // Monitoring counters, written by the coordinator thread alone on its
  // once-per-period tick and read racily by stats snapshots.
  alignas(layout::kCacheLineBytes) DWS_OWNED_BY(coordinator)
      std::atomic<std::uint64_t> ticks_{0};
  DWS_OWNED_BY(coordinator) std::atomic<std::uint64_t> wakes_{0};
  DWS_OWNED_BY(coordinator) std::atomic<std::uint64_t> cores_claimed_{0};
  DWS_OWNED_BY(coordinator) std::atomic<std::uint64_t> cores_reclaimed_{0};
  DWS_OWNED_BY(coordinator) std::atomic<std::uint64_t> stale_programs_swept_{0};
  DWS_OWNED_BY(coordinator) std::atomic<std::uint64_t> cores_recovered_{0};
};

}  // namespace dws::rt
