// Runtime observability: a sampling thread that periodically snapshots
// one or more co-running schedulers — active/sleeping worker counts,
// queued tasks, core-allocation occupancy — into a bounded in-memory
// series that can be printed or exported as CSV.
//
// This is the real-runtime counterpart of the simulator's timeline
// sampling (SimParams::timeline_sample_period_us): it lets a user *see*
// demand-aware core exchange happening on live threads, and gives tests
// a way to assert scheduling dynamics rather than just end states.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/scheduler.hpp"
#include "util/layout.hpp"
#include "util/timer.hpp"

namespace dws::rt {

/// One observation of one scheduler.
struct SchedulerSample {
  double t_ms = 0.0;            ///< since observer start
  unsigned active_workers = 0;  ///< N_a
  unsigned sleeping_workers = 0;
  std::uint64_t queued_tasks = 0;  ///< N_b
  unsigned cores_held = 0;  ///< table slots owned (0 for table-less modes)
};

/// Periodically samples a fixed set of schedulers. The schedulers must
/// outlive the observer. Start/stop are explicit; samples are available
/// (and stable) after stop().
class Observer {
 public:
  /// `capacity` bounds the per-scheduler series; sampling stops recording
  /// when full (the thread keeps running until stop()).
  Observer(std::vector<Scheduler*> targets, double period_ms,
           std::size_t capacity = 4096);
  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;
  ~Observer();

  void start();
  void stop();

  /// Take one sample of every target immediately (also usable without
  /// start(), for deterministic tests).
  void sample_now();

  [[nodiscard]] std::size_t num_targets() const noexcept {
    return targets_.size();
  }

  /// Series for target i (index into the constructor vector). Only safe
  /// to call while the sampling thread is stopped.
  [[nodiscard]] const std::vector<SchedulerSample>& series(
      std::size_t i) const {
    return series_[i];
  }

  /// Write all series as CSV: t_ms,target,active,sleeping,queued,cores.
  void write_csv(std::ostream& os) const;

 private:
  void thread_main();

  std::vector<Scheduler*> targets_;
  double period_ms_;
  std::size_t capacity_;
  std::vector<std::vector<SchedulerSample>> series_;
  util::Stopwatch clock_;

  std::thread thread_;
  // One stop/start domain, written at millisecond sampling cadence —
  // cold by the layout discipline's standards, so no striding.
  DWS_SHARED std::mutex m_;
  DWS_SHARED std::condition_variable cv_;
  DWS_SHARED bool stop_requested_ = false;  // guarded by m_
  DWS_SHARED std::atomic<bool> running_{false};
};

}  // namespace dws::rt
