#include "runtime/scheduler.hpp"

#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <chrono>

#include "util/affinity.hpp"

namespace dws::rt {

Scheduler::Scheduler(const Config& cfg, CoreTable* shared_table) : cfg_(cfg) {
  if (cfg_.num_cores == 0) cfg_.num_cores = util::hardware_cores();
  const unsigned k = cfg_.num_cores;
  cur_t_sleep_.store(cfg_.effective_t_sleep(k), std::memory_order_relaxed);
  // Machine model before any worker exists: workers bucket their victims
  // by distance at construction.
  topology_ = make_topology(cfg_, k);

  if (mode_space_shares(cfg_.mode)) {
    if (shared_table != nullptr) {
      assert(shared_table->num_cores() == k &&
             "shared table width must match Config::num_cores");
      table_ = shared_table;
    } else {
      owned_table_ = std::make_unique<CoreTableLocal>(k, cfg_.num_programs);
      table_ = &owned_table_->table();
    }
    pid_ = table_->register_program();
    // Crash tolerance: publish our OS pid + heartbeat epoch *before*
    // claiming any core, so every core we ever hold is covered by
    // liveness evidence and recoverable if this process dies.
    table_->bind_liveness(pid_, static_cast<std::uint32_t>(::getpid()));
    // Realize the initial equipartition (§3.1): grab whatever home cores
    // are free right now. Workers on unowned cores park themselves.
    table_->claim_home_cores(pid_);
  } else {
    // Time-sharing modes have no table; the program id is only used for
    // logging/stats.
    pid_ = 1;
  }

  workers_.reserve(k);
  for (unsigned i = 0; i < k; ++i) {
    workers_.push_back(std::make_unique<Worker>(*this, i));
  }
  // All workers must exist before any thread can look up steal victims.
  for (auto& w : workers_) w->start();

  if (mode_sleeps(cfg_.mode)) {
    coordinator_ = std::make_unique<Coordinator>(
        *this, cfg_.coordinator_period_ms, cfg_.wake_threshold,
        cfg_.seed ^ 0xC00D1E5EULL);
    coordinator_->start();
  }
}

Scheduler::~Scheduler() {
  if (coordinator_) coordinator_->stop();
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(gate_m_);
    gate_cv_.notify_all();
  }
  for (auto& w : workers_) w->notify_shutdown();
  for (auto& w : workers_) w->join();

  if (table_ != nullptr) table_->unregister_program(pid_);

  // Contract: all submitted work was waited for. Anything still queued is
  // destroyed without running (and without touching its — possibly
  // already destroyed — group). destroy() routes pooled tasks back to
  // their home pools, which outlive this drain (workers_ is destroyed
  // after the destructor body).
  while (TaskBase* t = try_pop_inbox()) t->destroy();
  for (auto& w : workers_) {
    while (auto t = w->deque().pop()) (*t)->destroy();
  }
}

void Scheduler::enqueue(TaskBase* task, Worker* w) {
  const std::int64_t prev =
      total_pending_.fetch_add(1, std::memory_order_acq_rel);
  if (!cfg_.work_sharing && w != nullptr) {
    // Algorithm 1's common case: spawn onto the spawning worker's deque.
    w->deque().push(task);
    return;
  }
  // External submission — or every submission under work-sharing (§4.4
  // extension), where the inbox doubles as the program's central queue.
  {
    std::lock_guard<std::mutex> lock(inbox_m_);
    task->set_inbox_next(nullptr);
    if (inbox_tail_ != nullptr) {
      inbox_tail_->set_inbox_next(task);
    } else {
      inbox_head_ = task;
    }
    inbox_tail_ = task;
  }
  inbox_size_.fetch_add(1, std::memory_order_release);
  if (prev == 0) {
    // The program was idle: open the gate for non-sleeping modes and cut
    // the coordinator's nap short for sleeping modes.
    {
      std::lock_guard<std::mutex> lock(gate_m_);
      gate_cv_.notify_all();
    }
    if (coordinator_) coordinator_->nudge();
  }
}

void Scheduler::execute(TaskBase* task) noexcept {
  task->run_and_destroy();
  total_pending_.fetch_sub(1, std::memory_order_acq_rel);
}

TaskBase* Scheduler::try_pop_inbox() {
  if (inbox_size_.load(std::memory_order_acquire) == 0) return nullptr;
  std::lock_guard<std::mutex> lock(inbox_m_);
  TaskBase* t = inbox_head_;
  if (t == nullptr) return nullptr;
  inbox_head_ = t->inbox_next();
  if (inbox_head_ == nullptr) inbox_tail_ = nullptr;
  inbox_size_.fetch_sub(1, std::memory_order_release);
  return t;
}

namespace {

// Join-edge for the live-schedule detector (FastTrack mode): the waiter
// acquires everything the group's completed tasks published. Called after
// quiesce(), so every completer's on_task_end has already run.
inline void race_notify_wait_done(TaskGroup& group) noexcept {
#ifndef DWS_RACE_DISABLED
  if (race::ParallelHook* ph =
          race::detail::parallel_hook().load(std::memory_order_acquire);
      ph != nullptr) {
    ph->on_wait_done(group);
  }
#else
  (void)group;
#endif
}

}  // namespace

void Scheduler::wait(TaskGroup& group) {
  group.strict_on_wait();
#ifndef DWS_RACE_DISABLED
  if (race::ExecHook* h = exec_hook_.load(std::memory_order_acquire);
      h != nullptr) {
    // End-finish for the replay's SP bookkeeping. Every task already ran
    // inline at its spawn site, so the drain loops below fall straight
    // through on done().
    h->on_wait(*this, group);
  }
#endif
  Worker* w = current_worker();
  if (w == nullptr || &w->sched_ != this) {
    // External thread: block with a bounded poll (the group's condvar is
    // notified on drain; the timeout covers lost wakeups from tasks that
    // complete between done() and the wait).
    while (!group.done()) {
      group.timed_block(std::chrono::milliseconds(1));
    }
    group.quiesce();
    race_notify_wait_done(group);
    group.strict_on_wait_done();
    group.rethrow_if_exception();
    return;
  }

  // Help-first join: execute whatever is available until the group
  // drains. The waiter never goes to sleep here — its stack holds the
  // continuation — so after a yield phase it falls back to a bounded
  // block on the group's condvar (woken on drain).
  int consecutive_failures = 0;
  while (!group.done()) {
    if (TaskBase* t = w->find_task()) {
      consecutive_failures = 0;
      ++w->stats_.tasks_executed;
      execute(t);
      continue;
    }
    ++consecutive_failures;
    if (consecutive_failures < 64) {
      std::this_thread::yield();
    } else {
      group.timed_block(std::chrono::microseconds(200));
    }
  }
  // The final completer may still be inside the group's notify; do not
  // let the caller destroy the group under it.
  group.quiesce();
  race_notify_wait_done(group);
  group.strict_on_wait_done();
  group.rethrow_if_exception();
}

std::uint64_t Scheduler::queued_tasks() const noexcept {
  std::uint64_t n = inbox_size_.load(std::memory_order_acquire);
  for (const auto& w : workers_) n += w->queue_size();
  return n;
}

unsigned Scheduler::active_workers() const noexcept {
  unsigned n = 0;
  for (const auto& w : workers_) {
    if (w->state() == Worker::State::kActive) ++n;
  }
  return n;
}

unsigned Scheduler::sleeping_workers() const noexcept {
  unsigned n = 0;
  for (const auto& w : workers_) {
    if (w->state() == Worker::State::kSleeping) ++n;
  }
  return n;
}

void Scheduler::escalate_t_sleep() noexcept {
  const int base = cfg_.effective_t_sleep(cfg_.num_cores);
  const int cap = base > 0 ? 64 * base : 64;
  int cur = cur_t_sleep_.load(std::memory_order_relaxed);
  int next = std::min(cap, cur > 0 ? cur * 2 : 1);
  while (next > cur && !cur_t_sleep_.compare_exchange_weak(
                           cur, next, std::memory_order_relaxed)) {
    next = std::min(cap, cur > 0 ? cur * 2 : 1);
  }
}

void Scheduler::decay_t_sleep() noexcept {
  const int base = cfg_.effective_t_sleep(cfg_.num_cores);
  int cur = cur_t_sleep_.load(std::memory_order_relaxed);
  int next = std::max(base, static_cast<int>(cur * 0.97));
  while (next < cur && !cur_t_sleep_.compare_exchange_weak(
                           cur, next, std::memory_order_relaxed)) {
    next = std::max(base, static_cast<int>(cur * 0.97));
  }
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  s.per_worker.reserve(workers_.size());
  for (const auto& w : workers_) {
    const WorkerStats& ws = w->stats();
    s.per_worker.push_back(ws);
    s.totals.tasks_executed += ws.tasks_executed;
    s.totals.steal_attempts += ws.steal_attempts;
    s.totals.steals += ws.steals;
    s.totals.failed_steals += ws.failed_steals;
    s.totals.yields += ws.yields;
    s.totals.sleeps += ws.sleeps;
    s.totals.wakes += ws.wakes;
    s.totals.evictions += ws.evictions;
    s.totals.heap_spawns += ws.heap_spawns;
    for (unsigned t = 0; t < kNumDistanceTiers; ++t) {
      s.totals.steal_attempts_by_tier[t] += ws.steal_attempts_by_tier[t];
      s.totals.steals_by_tier[t] += ws.steals_by_tier[t];
    }
  }
  if (coordinator_) {
    s.coordinator_ticks = coordinator_->ticks();
    s.coordinator_wakes = coordinator_->wakes();
    s.cores_claimed = coordinator_->cores_claimed();
    s.cores_reclaimed = coordinator_->cores_reclaimed();
    s.stale_programs_swept = coordinator_->stale_programs_swept();
    s.cores_recovered = coordinator_->cores_recovered();
  }
  return s;
}

TaskAllocStats Scheduler::alloc_stats() const {
  TaskAllocStats a;
  a.external_spawns = external_spawns_.load(std::memory_order_relaxed);
  for (const auto& w : workers_) {
    const TaskPoolStats p = w->pool_.stats();
    a.pooled_spawns += p.slot_allocs;
    a.slab_allocs += p.slab_allocs;
    a.local_frees += p.local_frees;
    a.remote_frees += p.remote_frees;
    a.remote_drains += p.remote_drains;
    a.heap_spawns += w->stats_.heap_spawns;
  }
  return a;
}

}  // namespace dws::rt
