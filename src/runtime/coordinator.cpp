#include "runtime/coordinator.hpp"

#include <chrono>

#include "runtime/scheduler.hpp"

namespace dws::rt {

Coordinator::Coordinator(Scheduler& sched, double period_ms,
                         double wake_threshold, std::uint64_t seed)
    : sched_(sched), period_ms_(period_ms), policy_(wake_threshold) {
  if (mode_space_shares(sched_.mode())) {
    // Anchor the topology-aware ordering at the program's first home core
    // (the home partition is contiguous, so one anchor represents it).
    CoreId home_core = 0;
    for (CoreId c = 0; c < sched_.num_workers(); ++c) {
      if (sched_.table()->home_of(c) == sched_.pid()) {
        home_core = c;
        break;
      }
    }
    driver_ = std::make_unique<CoordinatorDriver>(*sched_.table(),
                                                  sched_.pid(), seed,
                                                  &sched_.topology(),
                                                  home_core);
    if (sched_.config().stale_after_periods > 0) {
      sweeper_ = std::make_unique<StaleSweeper>(
          *sched_.table(), sched_.pid(), sched_.config().stale_after_periods);
    }
  }
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::start() {
  thread_ = std::thread([this] { thread_main(); });
}

void Coordinator::stop() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_requested_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void Coordinator::thread_main() {
  const auto period = std::chrono::duration<double, std::milli>(period_ms_);
  std::unique_lock<std::mutex> lock(m_);
  while (!stop_requested_) {
    // Sleeping every T ms (§3.4). nudge() — a notify without stop — cuts
    // the wait short so externally submitted work on a fully-asleep
    // program is picked up promptly.
    cv_.wait_for(lock, period);
    if (stop_requested_) break;
    lock.unlock();
    tick();
    lock.lock();
  }
}

void Coordinator::nudge() noexcept {
  std::lock_guard<std::mutex> lock(m_);
  cv_.notify_all();
}

void Coordinator::tick() {
  ticks_.fetch_add(1, std::memory_order_relaxed);
  if (sched_.config().adaptive_t_sleep) sched_.decay_t_sleep();

  if (driver_ != nullptr) {
    // Liveness: tell co-runners we are alive, then recover from any that
    // no longer are. Sweeping before the snapshot means cores freed from
    // a dead co-runner count toward N_f in *this* tick's decision — the
    // survivor's demand-aware wake path absorbs them immediately.
    sched_.table()->heartbeat(sched_.pid());
    if (sweeper_ != nullptr) {
      const StaleSweepResult swept = sweeper_->sweep();
      if (!swept.empty()) {
        stale_programs_swept_.fetch_add(swept.declared_dead.size(),
                                        std::memory_order_relaxed);
        cores_recovered_.fetch_add(swept.freed.size(),
                                   std::memory_order_relaxed);
      }
    }
  }

  DemandSnapshot s;
  s.queued_tasks = sched_.queued_tasks();          // N_b
  s.active_workers = sched_.active_workers();      // N_a
  s.sleeping_workers = sched_.sleeping_workers();
  if (driver_ != nullptr) {
    const DemandSnapshot cores = driver_->snapshot_cores();
    s.free_cores = cores.free_cores;               // N_f
    s.reclaimable_cores = cores.reclaimable_cores; // N_r
  } else {
    // DWS-NC: no core exchange; every sleeping worker can be woken in
    // place (the OS time-shares the cores underneath, §4.2).
    s.free_cores = s.sleeping_workers;
    s.reclaimable_cores = 0;
  }

  const WakeDecision d = policy_.decide(s);
  if (d.total() == 0) return;

  if (driver_ != nullptr) {
    const AcquireResult won = driver_->acquire(d);
    cores_claimed_.fetch_add(won.claimed.size(), std::memory_order_relaxed);
    cores_reclaimed_.fetch_add(won.reclaimed.size(),
                               std::memory_order_relaxed);
    for (CoreId c : won.claimed) {
      if (sched_.worker_at(c).wake()) {
        wakes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (CoreId c : won.reclaimed) {
      if (sched_.worker_at(c).wake()) {
        wakes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } else {
    unsigned need = d.total();
    for (unsigned i = 0; i < sched_.num_workers() && need > 0; ++i) {
      if (sched_.worker_at(i).wake()) {
        --need;
        wakes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace dws::rt
