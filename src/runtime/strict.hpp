// Strictness validator for TaskGroup usage.
//
// The scheduler's join model is only correct for *fully strict* usage:
// a TaskGroup is created in some frame, spawned into by that frame and
// its descendants, waited on by its creator, and destroyed after the
// wait. task.hpp documents these invariants; this module enforces them
// at runtime:
//
//   kEscapedGroup         a TaskGroup destroyed with tasks still pending
//                         (the group out-lived or escaped its structured
//                         scope; completers will write to freed memory)
//   kForeignWait          wait() from a task that is neither the group's
//                         creator nor one of its ancestors (or, when a
//                         non-task frame is involved, from a thread other
//                         than the creating one)
//   kAncestorWait         wait() from a task that is a spawn-tree
//                         *ancestor* of the group's creator — the group
//                         escaped upward out of its creating frame, so
//                         the join is not fully strict even though the
//                         thread identity may coincidentally match
//   kSpawnAfterCompletion a spawn into a group whose wait() already
//                         returned, from a thread other than the creator
//                         (nobody is left to wait for the new task);
//                         creator-thread respawn is the sanctioned reuse
//                         pattern and reopens the group
//
// Wait checks are spawn-tree-scoped, not merely thread-scoped: every
// TaskBase constructed while enforcement is on records its lineage (the
// task-id chain from the root spawn down to itself), run_and_destroy
// publishes it in a thread-local for the duration of execute(), and each
// TaskGroup snapshots its creating frame's lineage. Thread identity
// remains the fallback when either side is a non-task frame (an external
// caller thread).
//
// Cost model: each check is gated on the group's creator tag, which is 0
// unless enforcement was enabled when the group was constructed — so a
// release build with enforcement off pays one already-cached member load
// per spawn/wait. Enforcement defaults to on in debug builds (!NDEBUG)
// and can be forced either way with the DWS_STRICT environment variable
// (1/on/0/off), which is how the sanitizer CI jobs opt in.
#pragma once

#include <cstdint>
#include <vector>

namespace dws::rt::strict {

enum class Violation : int {
  kEscapedGroup = 0,
  kForeignWait = 1,
  kSpawnAfterCompletion = 2,
  kAncestorWait = 3,
};

[[nodiscard]] const char* violation_name(Violation v) noexcept;

/// Violation callback. The default handler prints the violation and
/// aborts (an invariant break means memory unsafety is imminent); tests
/// install a recording handler instead.
using Handler = void (*)(Violation v, const char* detail);

/// Install `h` (nullptr restores the default print-and-abort handler).
/// Returns the previous handler.
Handler set_handler(Handler h) noexcept;

/// Whether groups constructed *from now on* are validated. Initialized
/// lazily: DWS_STRICT env var if set, else !NDEBUG.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Total violations reported since process start (any handler).
[[nodiscard]] std::uint64_t violation_count() noexcept;

/// Dispatch a violation to the current handler. Used by TaskGroup's
/// inline hooks; callable from any thread.
void report(Violation v, const char* detail) noexcept;

/// A stable identity for the calling thread (address of a thread-local;
/// never 0). Cheaper than std::this_thread::get_id and hashable for
/// free.
[[nodiscard]] std::uintptr_t thread_tag() noexcept;

// ---- Spawn-tree lineage (recorded outside replay mode too) ----

/// A task's position in the spawn tree: the ids of its ancestors, root
/// spawn first, ending with the task's own id. Captured at construction
/// time — the ancestor chain is provably alive then — because parent
/// frames may return before their children run.
using Lineage = std::vector<std::uint64_t>;

/// Fresh process-unique task id (never 0).
[[nodiscard]] std::uint64_t next_task_id() noexcept;

/// Lineage of the task currently executing on this thread, or nullptr in
/// a non-task frame.
[[nodiscard]] const Lineage* current_lineage() noexcept;

/// Publish `l` as the current frame's lineage (nullptr for a non-task
/// frame); returns the previous value so run_and_destroy can nest.
const Lineage* swap_current_lineage(const Lineage* l) noexcept;

/// Fill `out` with the calling frame's lineage extended by a fresh id —
/// i.e. the lineage of a task being spawned right now.
void capture_lineage(Lineage& out);

}  // namespace dws::rt::strict
