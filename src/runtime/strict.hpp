// Strictness validator for TaskGroup usage.
//
// The scheduler's join model is only correct for *fully strict* usage:
// a TaskGroup is created in some frame, spawned into by that frame and
// its descendants, waited on by its creator, and destroyed after the
// wait. task.hpp documents these invariants; this module enforces them
// at runtime:
//
//   kEscapedGroup         a TaskGroup destroyed with tasks still pending
//                         (the group out-lived or escaped its structured
//                         scope; completers will write to freed memory)
//   kForeignWait          wait() called from a thread other than the one
//                         that created the group
//   kSpawnAfterCompletion a spawn into a group whose wait() already
//                         returned, from a thread other than the creator
//                         (nobody is left to wait for the new task);
//                         creator-thread respawn is the sanctioned reuse
//                         pattern and reopens the group
//
// Cost model: each check is gated on the group's creator tag, which is 0
// unless enforcement was enabled when the group was constructed — so a
// release build with enforcement off pays one already-cached member load
// per spawn/wait. Enforcement defaults to on in debug builds (!NDEBUG)
// and can be forced either way with the DWS_STRICT environment variable
// (1/on/0/off), which is how the sanitizer CI jobs opt in.
#pragma once

#include <cstdint>

namespace dws::rt::strict {

enum class Violation : int {
  kEscapedGroup = 0,
  kForeignWait = 1,
  kSpawnAfterCompletion = 2,
};

[[nodiscard]] const char* violation_name(Violation v) noexcept;

/// Violation callback. The default handler prints the violation and
/// aborts (an invariant break means memory unsafety is imminent); tests
/// install a recording handler instead.
using Handler = void (*)(Violation v, const char* detail);

/// Install `h` (nullptr restores the default print-and-abort handler).
/// Returns the previous handler.
Handler set_handler(Handler h) noexcept;

/// Whether groups constructed *from now on* are validated. Initialized
/// lazily: DWS_STRICT env var if set, else !NDEBUG.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Total violations reported since process start (any handler).
[[nodiscard]] std::uint64_t violation_count() noexcept;

/// Dispatch a violation to the current handler. Used by TaskGroup's
/// inline hooks; callable from any thread.
void report(Violation v, const char* detail) noexcept;

/// A stable identity for the calling thread (address of a thread-local;
/// never 0). Cheaper than std::this_thread::get_id and hashable for
/// free.
[[nodiscard]] std::uintptr_t thread_tag() noexcept;

}  // namespace dws::rt::strict
