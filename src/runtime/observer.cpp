#include "runtime/observer.hpp"

#include <chrono>
#include <ostream>

namespace dws::rt {

Observer::Observer(std::vector<Scheduler*> targets, double period_ms,
                   std::size_t capacity)
    : targets_(std::move(targets)),
      period_ms_(period_ms),
      capacity_(capacity),
      series_(targets_.size()) {
  for (auto& s : series_) s.reserve(capacity_);
}

Observer::~Observer() { stop(); }

void Observer::start() {
  if (running_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_requested_ = false;
  }
  clock_.restart();
  thread_ = std::thread([this] { thread_main(); });
}

void Observer::stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_requested_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void Observer::sample_now() {
  const double t = clock_.elapsed_ms();
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (series_[i].size() >= capacity_) continue;
    Scheduler* sched = targets_[i];
    SchedulerSample s;
    s.t_ms = t;
    s.active_workers = sched->active_workers();
    s.sleeping_workers = sched->sleeping_workers();
    s.queued_tasks = sched->queued_tasks();
    s.cores_held =
        sched->table() != nullptr ? sched->table()->count_active(sched->pid())
                                  : 0;
    series_[i].push_back(s);
  }
}

void Observer::thread_main() {
  const auto period = std::chrono::duration<double, std::milli>(period_ms_);
  std::unique_lock<std::mutex> lock(m_);
  while (!stop_requested_) {
    lock.unlock();
    sample_now();
    lock.lock();
    cv_.wait_for(lock, period, [this] { return stop_requested_; });
  }
}

void Observer::write_csv(std::ostream& os) const {
  os << "t_ms,target,active,sleeping,queued,cores_held\n";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    for (const SchedulerSample& s : series_[i]) {
      os << s.t_ms << ',' << i << ',' << s.active_workers << ','
         << s.sleeping_workers << ',' << s.queued_tasks << ','
         << s.cores_held << '\n';
    }
  }
}

}  // namespace dws::rt
