// A worker thread: one per (program, core), affiliated permanently with
// its core (§3.1). Runs Algorithm 1 (§3.2) with the mode's StealPolicy,
// participates in the sleep/wake protocol, and maintains owner-written
// statistics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "core/steal_policy.hpp"
#include "core/topology.hpp"
#include "core/types.hpp"
#include "core/victim_order.hpp"
#include "runtime/deque.hpp"
#include "runtime/task.hpp"
#include "runtime/task_pool.hpp"
#include "util/layout.hpp"
#include "util/rng.hpp"

namespace dws::rt {

class Scheduler;

/// Monotonic counter written by one owner thread and racily readable from
/// others (relaxed atomics, so concurrent snapshots are well-defined but
/// may lag). Copying takes a relaxed snapshot. Keeps plain-integer syntax
/// so counting sites and reporting code read naturally.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  // Copying is an explicit relaxed load/store pair, exactly like
  // assignment: the source may be a *live* counter still being bumped by
  // its owner (Scheduler::stats() aggregates per-worker counters without
  // quiescing), so the copy must go through the atomic — never a plain
  // member copy, which would be a racy 64-bit read and could tear.
  RelaxedCounter(const RelaxedCounter& o) noexcept {
    v_.store(o.load(), std::memory_order_relaxed);
  }
  RelaxedCounter& operator=(const RelaxedCounter& o) noexcept {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator++() noexcept {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(std::uint64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }
  operator std::uint64_t() const noexcept { return load(); }  // NOLINT
  [[nodiscard]] std::uint64_t load() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  // dws-layout: packed-ok single-field wrapper; each wrapping field
  // declares the actual sharing domain (see WorkerStats)
  std::atomic<std::uint64_t> v_{0};
};

/// Owner-written execution counters. Reads from other threads (coordinator
/// snapshots, live Scheduler::stats() calls, test assertions) see relaxed
/// monotonic values; exact totals are only guaranteed after the worker
/// thread joined or the scheduler quiesced.
///
/// The struct is cache-line aligned (and therefore padded to a line
/// multiple) so the counters — bumped on every task execution and steal
/// attempt — never share a line with whatever neighbouring Worker field a
/// *different* thread writes; layout_audit tracks the concrete offsets.
/// The nine counters packing two lines among themselves is deliberate:
/// they have a single writer, so there is no destructive interference to
/// stride away, only the owner's own locality to keep.
struct alignas(layout::kCacheLineBytes) WorkerStats {
  DWS_OWNED_BY(worker) RelaxedCounter tasks_executed;
  DWS_OWNED_BY(worker) RelaxedCounter steal_attempts;
  DWS_OWNED_BY(worker) RelaxedCounter steals;
  DWS_OWNED_BY(worker) RelaxedCounter failed_steals;
  DWS_OWNED_BY(worker) RelaxedCounter yields;
  DWS_OWNED_BY(worker) RelaxedCounter sleeps;
  DWS_OWNED_BY(worker) RelaxedCounter wakes;
  DWS_OWNED_BY(worker)
  RelaxedCounter evictions;  ///< times this worker vacated a reclaimed core
  DWS_OWNED_BY(worker)
  RelaxedCounter heap_spawns;  ///< spawns that fell back to new (see pool)
  /// Locality breakdown of the steal traffic, indexed by DistanceTier
  /// (VERYNEAR..VERYFAR). Invariant (asserted by the stats suite): each
  /// array sums to steal_attempts / steals respectively once the worker
  /// quiesced. Same single-writer discipline as every counter above.
  DWS_OWNED_BY(worker) RelaxedCounter steal_attempts_by_tier[kNumDistanceTiers];
  DWS_OWNED_BY(worker) RelaxedCounter steals_by_tier[kNumDistanceTiers];
};

class Worker {
 public:
  enum class State : int {
    kActive = 0,    ///< running the Algorithm-1 loop
    kSleeping = 1,  ///< released its core; wakeable by the coordinator
    kParked = 2,    ///< EP worker outside the home partition; never woken
  };

  Worker(Scheduler& sched, unsigned id);
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;
  ~Worker();

  /// Launch the OS thread. Called once by the scheduler.
  void start();
  /// Join the OS thread (the scheduler has already signalled shutdown).
  void join();

  /// Worker id == core id this worker is affiliated with.
  [[nodiscard]] unsigned id() const noexcept { return id_; }

  [[nodiscard]] State state() const noexcept {
    return static_cast<State>(state_.load(std::memory_order_acquire));
  }

  /// Coordinator-side wake. Returns true iff the worker was sleeping and
  /// has now been signalled (the caller must already have secured the
  /// worker's core in the allocation table for DWS).
  bool wake() noexcept;

  /// Wake the worker for shutdown regardless of state.
  void notify_shutdown() noexcept;

  [[nodiscard]] ChaseLevDeque<TaskBase*>& deque() noexcept { return deque_; }
  [[nodiscard]] std::size_t queue_size() const noexcept {
    return deque_.size_approx();
  }
  [[nodiscard]] const WorkerStats& stats() const noexcept { return stats_; }

  /// This worker's task-storage pool (allocation is worker-thread-only;
  /// release may come from any thread via TaskSlabPool::release).
  [[nodiscard]] TaskSlabPool& pool() noexcept { return pool_; }

  /// One help-first scheduling step on behalf of a nested wait: pop own
  /// deque, poll the inbox, or attempt one steal. Returns nullptr when no
  /// task was found. Only callable from this worker's own thread.
  TaskBase* find_task();

 private:
  friend class Scheduler;
  friend struct dws::layout::Access;  // layout_audit reads private layouts

  void thread_main();
  /// True when this worker must vacate its core (space-sharing modes only):
  /// the allocation table no longer lists our program as the core's user.
  [[nodiscard]] bool should_vacate() const noexcept;
  void go_to_sleep(bool count_as_eviction);
  /// Block on the scheduler's idle gate while the program has no work at
  /// all (keeps idle schedulers off the CPU without altering behaviour
  /// while work exists).
  void idle_gate_block();

  Scheduler& sched_;
  const unsigned id_;
  DWS_OWNED_BY(worker) util::Xoshiro256 rng_;
  /// Near-first victim ordering (Config::victim_policy == kTiered); its
  /// cursor/shuffle state is worker-thread-only like rng_.
  DWS_OWNED_BY(worker) TieredVictimOrder victim_order_;
  StealPolicy policy_;
  ChaseLevDeque<TaskBase*> deque_;  // line-isolates its own hot words
  TaskSlabPool pool_;               // line-isolates its own hot words
  WorkerStats stats_;               // alignas(64), owner-written only

  std::thread thread_;
  // Wake domain: state_ is CASed/stored by the coordinator and the owner,
  // and m_/cv_/wake_pending_ move together with it under the sleep/wake
  // handshake — one sharing domain, isolated on its own line(s) so
  // coordinator wakes never invalidate stats_ (above) in the owner's
  // cache. thread_ precedes the alignas boundary: it is written only
  // before/after the thread runs, so sharing its line is harmless.
  alignas(layout::kCacheLineBytes) DWS_SHARED std::atomic<int> state_{
      static_cast<int>(State::kActive)};
  DWS_SHARED std::mutex m_;
  DWS_SHARED std::condition_variable cv_;
  DWS_SHARED bool wake_pending_ = false;  // guarded by m_
};

/// The worker currently executing on this thread (nullptr on external
/// threads). Set for the lifetime of Worker::thread_main.
[[nodiscard]] Worker* current_worker() noexcept;

}  // namespace dws::rt
