// Task representation for the DWS runtime: a type-erased closure plus the
// bookkeeping hooks the scheduler needs (per-group join counting,
// exception propagation). Task storage is pooled on the hot path: a task
// whose closure fits a TaskSlabPool slot is placement-constructed into
// per-worker recycled storage (see task_pool.hpp); oversized closures and
// external-thread spawns fall back to plain new/delete. Recycling never
// leaks state between occupants — a slot is reused only through a fresh
// placement-new, so the race token, lineage, and links below start from
// their constructed defaults every time.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "runtime/race_hook.hpp"
#include "runtime/strict.hpp"
#include "runtime/task_pool.hpp"
#include "util/layout.hpp"

namespace dws::rt {

class TaskGroup;

/// Type-erased unit of work. Owned by the deque/scheduler from push until
/// execution; `run_and_destroy` is the single consumption point for tasks
/// that run, `destroy` for tasks discarded without running.
class TaskBase {
 public:
  explicit TaskBase(TaskGroup* group) : group_(group) {
    // Spawn-tree position, captured while the ancestor chain is alive
    // (the spawning frame may return before this task runs). Stays empty
    // — and costs one enabled() load — when strictness is off.
    if (strict::enabled()) strict::capture_lineage(lineage_);
  }
  TaskBase(const TaskBase&) = delete;
  TaskBase& operator=(const TaskBase&) = delete;
  virtual ~TaskBase() = default;

  /// Execute the payload, complete the group, destroy `this`.
  void run_and_destroy() noexcept;

  /// Destroy without running: virtual-destruct, then return the storage
  /// to wherever it came from (home pool slot, or the heap for tasks
  /// built with plain new — tests and fallback paths construct those
  /// directly and never call set_pool_slot).
  void destroy() noexcept {
    void* slot = pool_slot_;
    if (slot == nullptr) {
      delete this;
      return;
    }
    this->~TaskBase();
    TaskSlabPool::release(slot);
  }

  [[nodiscard]] TaskGroup* group() const noexcept { return group_; }

  /// Mark this task as living in pooled storage. Called by the scheduler
  /// right after placement-construction; never touched again until
  /// destroy()/run_and_destroy() release the slot.
  void set_pool_slot(TaskSlabPool::Slot* slot) noexcept { pool_slot_ = slot; }

  // Intrusive injection-inbox link (guarded by the scheduler's inbox
  // mutex), so external submission needs no container allocation.
  [[nodiscard]] TaskBase* inbox_next() const noexcept { return inbox_next_; }
  void set_inbox_next(TaskBase* n) noexcept { inbox_next_ = n; }

#ifndef DWS_RACE_DISABLED
  /// Opaque happens-before token from race::ParallelHook::on_task_published
  /// (FastTrack mode). Set by Scheduler::spawn before the task becomes
  /// stealable; consumed by run_and_destroy around the body. Recycled
  /// slots cannot inherit a stale token: every occupancy is a fresh
  /// placement-new, which resets this to nullptr.
  void set_race_token(void* token) noexcept { race_token_ = token; }
#endif

 protected:
  virtual void execute() = 0;

 private:
  TaskGroup* group_;
  strict::Lineage lineage_;  // empty unless strictness was on at spawn
  void* pool_slot_ = nullptr;     // TaskSlabPool::Slot*, or null for heap
  TaskBase* inbox_next_ = nullptr;
#ifndef DWS_RACE_DISABLED
  void* race_token_ = nullptr;
#endif
};

template <typename F>
class TaskImpl final : public TaskBase {
 public:
  TaskImpl(TaskGroup* group, F&& fn)
      : TaskBase(group), fn_(std::forward<F>(fn)) {}

 protected:
  void execute() override { fn_(); }

 private:
  F fn_;
};

/// Join counter for a set of spawned tasks (TBB task_group-style). The
/// spawner increments `pending` per spawn; task completion decrements it.
/// wait() is implemented by the scheduler (help-first: the waiter executes
/// and steals tasks until the counter drains). The first exception thrown
/// by any task in the group is captured and rethrown from wait().
class TaskGroup {
 public:
  TaskGroup() {
    // Strictness validation is armed per group at construction time: a
    // creator tag of 0 (enforcement off) short-circuits every later hook
    // to a single member load. The creating frame's lineage (empty for a
    // non-task frame) scopes the wait check to the spawn tree.
    if (strict::enabled()) {
      creator_tag_ = strict::thread_tag();
      if (const strict::Lineage* cur = strict::current_lineage();
          cur != nullptr) {
        creator_lineage_ = *cur;
      }
    }
  }
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() {
    if (creator_tag_ != 0 &&
        pending_.load(std::memory_order_acquire) != 0) {
      strict::report(strict::Violation::kEscapedGroup,
                     "TaskGroup destroyed with tasks still pending — the "
                     "group escaped its creating scope (completers will "
                     "touch freed memory)");
    }
  }

  [[nodiscard]] bool done() const noexcept {
    return pending_.load(std::memory_order_acquire) == 0;
  }

  [[nodiscard]] std::int64_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  void add_pending() noexcept {
    pending_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Called exactly once per task (from run_and_destroy). Wakes blocked
  /// waiters when the group drains.
  ///
  /// The signalers_ gate makes destruction safe: a waiter that observed
  /// done() may be about to destroy this group, but the completer that
  /// performed the final decrement still has to touch m_/cv_ to wake
  /// sleepers. Announcing in signalers_ *before* the decrement means any
  /// thread that sees pending_ == 0 also sees our announcement (the
  /// increment is sequenced before the decrement, and the waiter's
  /// acquire load of pending_ synchronizes with the decrement chain), so
  /// quiesce() cannot return while we are still inside the notify.
  void complete_one() noexcept {
    signalers_.fetch_add(1, std::memory_order_relaxed);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(m_);
      cv_.notify_all();
    }
    signalers_.fetch_sub(1, std::memory_order_release);
  }

  /// Wait for in-flight completers to finish touching this object. Must
  /// be called after done() returns true and before the group is
  /// destroyed or reused; Scheduler::wait does this. The window is the
  /// few instructions between a completer's final decrement and its
  /// notify, so this effectively never spins more than once.
  void quiesce() const noexcept {
    while (signalers_.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
  }

  /// Record the first exception thrown by a task of this group.
  void capture_exception(std::exception_ptr e) noexcept {
    bool expected = false;
    if (has_exception_.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
      exception_ = std::move(e);
    }
  }

  /// Rethrow a captured exception, if any. Call only after done().
  void rethrow_if_exception() {
    if (has_exception_.load(std::memory_order_acquire) && exception_) {
      std::exception_ptr e = std::exception_ptr(exception_);
      exception_ = nullptr;
      has_exception_.store(false, std::memory_order_release);
      std::rethrow_exception(e);
    }
  }

  /// Block until the group drains or `timeout_us` elapses. Used by nested
  /// waiters that have nothing to steal (bounded poll; see Worker docs).
  template <typename Rep, typename Period>
  void timed_block(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait_for(lock, timeout, [this] { return done(); });
  }

  // ---- Strictness hooks (called by the Scheduler; no-ops unless the
  // group was constructed with enforcement enabled) ----

  /// Before a spawn is accounted into this group.
  void strict_on_spawn() noexcept {
    if (creator_tag_ == 0) return;
    if (waited_.load(std::memory_order_acquire)) {
      if (strict::thread_tag() == creator_tag_) {
        // Sanctioned reuse: the creator starts a new spawn/wait round.
        waited_.store(false, std::memory_order_release);
      } else {
        strict::report(strict::Violation::kSpawnAfterCompletion,
                       "spawn into a TaskGroup whose wait() already "
                       "returned, from a thread that is not the group's "
                       "creator — nothing will ever join this task");
      }
    }
  }

  /// At the top of Scheduler::wait on this group. Task identity is the
  /// primary check: when both the creating frame and the waiting frame
  /// are tasks, their spawn-tree positions decide — thread identity is
  /// coincidental under work stealing (an ancestor can wind up on the
  /// creator's worker, a legitimate creator-wait can replay on any
  /// thread). Thread tags remain the fallback when either side is a
  /// non-task frame.
  void strict_on_wait() noexcept {
    if (creator_tag_ == 0) return;
    const strict::Lineage* waiter = strict::current_lineage();
    if (!creator_lineage_.empty() && waiter != nullptr && !waiter->empty()) {
      const std::uint64_t waiter_id = waiter->back();
      if (waiter_id == creator_lineage_.back()) return;  // creator waits
      for (const std::uint64_t ancestor : creator_lineage_) {
        if (ancestor == waiter_id) {
          strict::report(
              strict::Violation::kAncestorWait,
              "wait() on a TaskGroup created by a spawn-tree descendant "
              "of the waiting task — the group escaped upward out of its "
              "creating frame, so the join is not fully strict");
          return;
        }
      }
      strict::report(strict::Violation::kForeignWait,
                     "wait() on a TaskGroup from a task that is neither "
                     "the group's creator nor one of its ancestors — "
                     "joins must be fully strict (creator waits for its "
                     "own children)");
      return;
    }
    if (strict::thread_tag() != creator_tag_) {
      strict::report(strict::Violation::kForeignWait,
                     "wait() on a TaskGroup the waiting thread did not "
                     "create — joins must be fully strict (creator waits "
                     "for its own children)");
    }
  }

  /// After Scheduler::wait observed the group drained.
  void strict_on_wait_done() noexcept {
    if (creator_tag_ == 0) return;
    waited_.store(true, std::memory_order_release);
  }

 private:
  friend struct dws::layout::Access;  // layout_audit reads private layouts

  // All hot words here form ONE sharing domain — the join protocol:
  // spawners bump pending_, completers decrement it and signal through
  // m_/cv_, the creator writes waited_. A TaskGroup lives on the waiting
  // frame's stack for one join, so striding its words would buy nothing:
  // the same threads touch all of them back to back.
  DWS_SHARED std::atomic<std::int64_t> pending_{0};
  std::uintptr_t creator_tag_ = 0;  // 0 == strictness unarmed
  strict::Lineage creator_lineage_;  // empty for non-task creator frames
  DWS_SHARED std::atomic<bool> waited_{false};
  DWS_SHARED std::atomic<std::int32_t> signalers_{0};  // completers, m_/cv_
  DWS_SHARED std::atomic<bool> has_exception_{false};
  std::exception_ptr exception_;
  DWS_SHARED std::mutex m_;
  DWS_SHARED std::condition_variable cv_;
};

inline void TaskBase::run_and_destroy() noexcept {
  TaskGroup* g = group_;
  // Publish this task's lineage for the duration of execute() so groups
  // it creates and waits it performs are attributed to this spawn-tree
  // frame. Restored before complete_one()/delete: the lineage vector
  // lives in this task, and a waiter may destroy state as soon as the
  // group drains.
  const bool framed = !lineage_.empty();
  const strict::Lineage* prev =
      framed ? strict::swap_current_lineage(&lineage_) : nullptr;
#ifndef DWS_RACE_DISABLED
  // FastTrack edges: the token carries the spawn-site clock; begin makes
  // it this thread's frame (and installs the per-thread sink), end
  // publishes the frame into the group's join clock *before*
  // complete_one can release a waiter. The hook is loaded once so the
  // begin/end pair always goes to the same detector.
  race::ParallelHook* ph =
      race_token_ != nullptr
          ? race::detail::parallel_hook().load(std::memory_order_acquire)
          : nullptr;
  if (ph != nullptr) ph->on_task_begin(race_token_);
#endif
  try {
    execute();
  } catch (...) {
    if (g != nullptr) g->capture_exception(std::current_exception());
  }
#ifndef DWS_RACE_DISABLED
  if (ph != nullptr) ph->on_task_end(race_token_, g);
#endif
  if (framed) strict::swap_current_lineage(prev);
  if (g != nullptr) g->complete_one();
  destroy();
}

}  // namespace dws::rt
