// Interfaces through which the determinacy-race detector (src/race/)
// drives the runtime without the runtime depending on it:
//
//  - race::ExecHook commandeers Scheduler::spawn/wait. While installed,
//    every spawned task executes *inline, depth-first, at its spawn site*
//    (Cilk's serial elision order) on the installing thread, and every
//    wait() is an end-finish event. This serial replay executes one legal
//    schedule of the task DAG while the detector maintains the
//    series-parallel relation over it.
//  - race::MemorySink receives the annotated memory accesses
//    (dws::race::read/write/region in runtime/api.hpp). The sink is a
//    thread-local: annotations are free (one load + branch) on threads
//    with no active detector, and compile to nothing entirely when the
//    build defines DWS_RACE_DISABLED (cmake -DDWS_RACE=OFF).
#pragma once

#include <cstddef>

namespace dws::rt {
class Scheduler;
class TaskGroup;
class TaskBase;
}  // namespace dws::rt

namespace dws::race {

#ifndef DWS_RACE_DISABLED

/// Spawn/wait interceptor. Install with Scheduler::set_exec_hook while
/// the scheduler is quiescent (no submitted-but-unfinished work); all
/// work submitted while installed runs serially on the submitting thread.
class ExecHook {
 public:
  virtual ~ExecHook() = default;
  /// `task` ownership transfers to the hook; it must be consumed with
  /// run_and_destroy() (which completes the group and self-deletes).
  /// The group's pending count has already been incremented.
  virtual void on_spawn(rt::Scheduler& sched, rt::TaskGroup& group,
                        rt::TaskBase* task) = 0;
  /// End-finish: called at the top of Scheduler::wait, before the normal
  /// drain loop (which is a no-op in pure replay — every task already ran
  /// inline).
  virtual void on_wait(rt::Scheduler& sched, rt::TaskGroup& group) = 0;
};

/// Consumer of annotated accesses on the current thread.
class MemorySink {
 public:
  virtual ~MemorySink() = default;
  /// `count` elements of `size` bytes starting at `addr`, consecutive
  /// elements `stride_bytes` apart (strided annotations keep red-black
  /// and column-walk access sets exact instead of over-approximated).
  virtual void on_access(const void* addr, std::size_t size,
                         std::size_t count, std::ptrdiff_t stride_bytes,
                         bool is_write) = 0;
  /// Provenance labels: spawns performed while a region is active carry
  /// its name in their spawn-tree chain.
  virtual void on_region_enter(const char* name) = 0;
  virtual void on_region_exit() = 0;
  /// Lock events (dws::race::lock_acquire/lock_release, or the
  /// race::scoped_lock RAII wrapper). Under serial replay these arrive in
  /// serial-elision order, so the sink sees the exact lockset each
  /// annotated access was performed under. Locks are identified by
  /// address; `name` is an optional human-readable label for provenance
  /// (the first non-null name given for an address wins). Default no-ops
  /// keep sinks that predate the lockset extension source-compatible.
  virtual void on_lock_acquire(const void* lock, const char* name) {
    (void)lock;
    (void)name;
  }
  virtual void on_lock_release(const void* lock) { (void)lock; }
};

namespace detail {
/// The active sink for this thread (nullptr almost always). Set by the
/// detector for the replay thread only; function-local so the header
/// stays self-contained.
inline MemorySink*& tl_sink() noexcept {
  thread_local MemorySink* sink = nullptr;
  return sink;
}
}  // namespace detail

#endif  // DWS_RACE_DISABLED

}  // namespace dws::race
