// Interfaces through which the race detectors (src/race/) observe the
// runtime without the runtime depending on them:
//
//  - race::ExecHook commandeers Scheduler::spawn/wait. While installed,
//    every spawned task executes *inline, depth-first, at its spawn site*
//    (Cilk's serial elision order) on the installing thread, and every
//    wait() is an end-finish event. This serial replay executes one legal
//    schedule of the task DAG while the detector maintains the
//    series-parallel relation over it (SP-bags mode).
//  - race::ParallelHook observes the *live parallel* schedule instead of
//    replacing it: tasks run on the real workers, and the hook is told
//    about every happens-before edge the runtime creates — a task
//    becoming stealable at its spawn site (on_task_published, before the
//    deque push / inbox transfer), the task body starting and ending on
//    whichever worker popped or stole it (on_task_begin/on_task_end,
//    the latter before the TaskGroup completion is signalled), and a
//    wait() observing its group drained (on_wait_done). FastTrack mode
//    maintains vector clocks over these edges.
//  - race::MemorySink receives the annotated memory accesses
//    (dws::race::read/write/region in runtime/api.hpp). The sink is a
//    thread-local: under serial replay only the replay thread has one;
//    under the parallel hook each worker installs its own per-thread
//    sink for the duration of a task body, so annotations route with no
//    global lock. Annotations are free (one load + branch) on threads
//    with no active detector, and compile to nothing entirely when the
//    build defines DWS_RACE_DISABLED (cmake -DDWS_RACE=OFF).
#pragma once

#include <atomic>
#include <cstddef>

namespace dws::rt {
class Scheduler;
class TaskGroup;
class TaskBase;
}  // namespace dws::rt

namespace dws::race {

#ifndef DWS_RACE_DISABLED

/// Spawn/wait interceptor. Install with Scheduler::set_exec_hook while
/// the scheduler is quiescent (no submitted-but-unfinished work); all
/// work submitted while installed runs serially on the submitting thread.
class ExecHook {
 public:
  virtual ~ExecHook() = default;
  /// `task` ownership transfers to the hook; it must be consumed with
  /// run_and_destroy() (which completes the group and self-deletes).
  /// The group's pending count has already been incremented.
  virtual void on_spawn(rt::Scheduler& sched, rt::TaskGroup& group,
                        rt::TaskBase* task) = 0;
  /// End-finish: called at the top of Scheduler::wait, before the normal
  /// drain loop (which is a no-op in pure replay — every task already ran
  /// inline).
  virtual void on_wait(rt::Scheduler& sched, rt::TaskGroup& group) = 0;
};

/// Consumer of annotated accesses on the current thread.
class MemorySink {
 public:
  virtual ~MemorySink() = default;
  /// `count` elements of `size` bytes starting at `addr`, consecutive
  /// elements `stride_bytes` apart (strided annotations keep red-black
  /// and column-walk access sets exact instead of over-approximated).
  virtual void on_access(const void* addr, std::size_t size,
                         std::size_t count, std::ptrdiff_t stride_bytes,
                         bool is_write) = 0;
  /// Provenance labels: spawns performed while a region is active carry
  /// its name in their spawn-tree chain.
  virtual void on_region_enter(const char* name) = 0;
  virtual void on_region_exit() = 0;
  /// Lock events (dws::race::lock_acquire/lock_release, or the
  /// race::scoped_lock RAII wrapper). Under serial replay these arrive in
  /// serial-elision order, so the sink sees the exact lockset each
  /// annotated access was performed under. Locks are identified by
  /// address; `name` is an optional human-readable label for provenance
  /// (the first non-null name given for an address wins). The same
  /// stream also feeds the lock-order-graph deadlock analysis
  /// (src/race/lockgraph.hpp): an acquire performed while other locks
  /// are held orders them before the acquired lock. Default no-ops
  /// keep sinks that predate the lockset extension source-compatible.
  virtual void on_lock_acquire(const void* lock, const char* name) {
    (void)lock;
    (void)name;
  }
  virtual void on_lock_release(const void* lock) { (void)lock; }
};

/// Live-schedule observer (FastTrack mode). Installed process-wide (one
/// session at a time) while every observed scheduler is quiescent; while
/// installed, Scheduler::spawn attaches an opaque per-task token and the
/// runtime calls back at each happens-before edge it creates. All
/// callbacks run on the thread performing the edge.
class ParallelHook {
 public:
  virtual ~ParallelHook() = default;
  /// Spawning thread, after the group accounted the task but before it
  /// becomes stealable. The returned token is stored in the task and
  /// handed back at begin/end; it must be consumed by on_task_end.
  virtual void* on_task_published(rt::TaskGroup& group) = 0;
  /// Executing thread (owner pop, thief steal, or inbox transfer),
  /// immediately before the task body runs.
  virtual void on_task_begin(void* token) = 0;
  /// Executing thread, after the body but *before* the group completion
  /// is signalled — a waiter released by that completion must already
  /// see everything this edge publishes.
  virtual void on_task_end(void* token, rt::TaskGroup* group) = 0;
  /// The thread whose Scheduler::wait observed the group drain.
  virtual void on_wait_done(rt::TaskGroup& group) = 0;
};

namespace detail {
/// The active sink for this thread (nullptr almost always). Under serial
/// replay the detector sets it on the replay thread; under the parallel
/// hook each task body runs with its executing thread's sink installed.
/// Function-local so the header stays self-contained.
inline MemorySink*& tl_sink() noexcept {
  thread_local MemorySink* sink = nullptr;
  return sink;
}

/// The process-wide live-schedule hook (nullptr almost always). Global
/// rather than per-scheduler because tasks know their group, not their
/// scheduler, at the completion edge; one session observes every
/// scheduler in the process.
inline std::atomic<ParallelHook*>& parallel_hook() noexcept {
  static std::atomic<ParallelHook*> hook{nullptr};
  return hook;
}
}  // namespace detail

#endif  // DWS_RACE_DISABLED

}  // namespace dws::race
