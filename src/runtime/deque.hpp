// Chase-Lev work-stealing deque, following Le, Pop, Cohen & Zappa Nardelli,
// "Correct and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13).
//
// The owner worker pushes and pops at the bottom; thieves steal from the
// top. All operations are lock-free; only the owner may call push()/pop().
// The buffer grows geometrically on overflow. Old buffers cannot be freed
// while concurrent thieves might still be reading them, so they are parked
// on a retire list and reclaimed by the owner once steal traffic
// quiesces (try_reclaim; thieves announce themselves in an in-flight
// counter whose ordering shares steal()'s existing seq_cst fence), or at
// latest in the destructor. While parked, the delayed memory is bounded
// by 2x the high-water mark (the retired capacities form a geometric
// series summing to less than the live buffer's capacity; see
// retired_capacity_total()).
//
// Fence budget on the owner's hot path (audited against the model
// checker, tests/test_check_deque.cpp): push() is one release fence plus
// a relaxed store — the acquire load of the thief-contended top_ is
// skipped via an owner-local cached lower bound (top_ is monotonic, so a
// stale cache can only make the fullness test conservative) and paid
// only when the cache says the buffer may be full. pop() keeps the one
// unavoidable seq_cst fence of the take/steal arbitration.
//
// The atomics are named through an injectable policy (core/atomics_policy.hpp)
// so the model checker in src/check can compile the *same* algorithm over
// instrumented atomics and exhaustively explore its interleavings and
// weak-memory read choices. Production code uses the default
// StdAtomicsPolicy and compiles exactly as before.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/atomics_policy.hpp"
#include "util/layout.hpp"

// ThreadSanitizer does not model std::atomic_thread_fence, so the
// fence-based release in push() is invisible to it and every owner->thief
// task handoff would be reported as a race. Under TSan we strengthen the
// bottom_ publication store from relaxed to release — a superset of the
// fence ordering, so the algorithm is unchanged — purely to make the
// synchronization visible to the tool. See docs/CHECKING.md.
#if defined(__SANITIZE_THREAD__)
#define DWS_DEQUE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DWS_DEQUE_TSAN 1
#endif
#endif

namespace dws::rt {

/// T must be trivially copyable (we store raw task pointers).
template <typename T, typename Policy = StdAtomicsPolicy>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>);

  template <typename U>
  using Atomic = typename Policy::template atomic<U>;

  static constexpr std::memory_order kPublishOrder =
#ifdef DWS_DEQUE_TSAN
      std::memory_order_release;
#else
      std::memory_order_relaxed;
#endif

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : top_(0), bottom_(0) {
    buffer_.store(new Buffer(round_up_pow2(initial_capacity)),
                  std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  /// Owner only: push one element at the bottom. The common case touches
  /// no thief-shared cache line before the publication store: top_cache_
  /// is an owner-local lower bound on top_ (top_ only grows), so a pass
  /// of the cached fullness test is definitive and the acquire refresh
  /// happens only when the deque looks full.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - top_cache_ > static_cast<std::int64_t>(buf->capacity) - 1) {
      top_cache_ = top_.load(std::memory_order_acquire);
      if (b - top_cache_ > static_cast<std::int64_t>(buf->capacity) - 1) {
        buf = grow(buf, top_cache_, b);
      }
    }
    buf->put(b, item);
    Policy::fence(std::memory_order_release);
    bottom_.store(b + 1, kPublishOrder);
  }

  /// Owner only: pop from the bottom (LIFO — preserves locality).
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    Policy::fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    top_cache_ = t;  // read-read coherence: never older than a prior read
    if (t > b) {
      // Deque was already empty; restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T item = buf->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        // A thief won the race.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: steal from the top (FIFO end — steals the oldest, which
  /// in divide-and-conquer DAGs is the largest subtree).
  ///
  /// The in-flight announcement brackets every buffer access so the
  /// owner's try_reclaim() can prove quiescence. The increment costs one
  /// relaxed RMW and needs no fence of its own: it is sequenced before
  /// steal()'s existing seq_cst fence, which pairs with the one in
  /// try_reclaim() (see there for the two-case argument).
  std::optional<T> steal() {
    inflight_thieves_.fetch_add(1, std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    Policy::fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) {  // observed empty
      inflight_thieves_.fetch_add(-1, std::memory_order_release);
      return std::nullopt;
    }
    Buffer* buf = buffer_.load(std::memory_order_consume);
    T item = buf->get(t);
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    inflight_thieves_.fetch_add(-1, std::memory_order_release);
    if (!won) {
      return std::nullopt;  // lost the race to the owner or another thief
    }
    return item;
  }

  /// Racy size estimate for demand accounting (N_b); never negative.
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty_approx() const noexcept { return size_approx() == 0; }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return buffer_.load(std::memory_order_relaxed)->capacity;
  }

  /// Owner only: free retired buffers if no thief can still hold a
  /// pointer into one. Returns true when the retire list is empty on
  /// exit. Called by grow() (bounding the list across repeated growth)
  /// and by the worker's cold idle path; the destructor remains the
  /// backstop.
  ///
  /// Safety is a store-buffering pairing on the two seq_cst fences. A
  /// thief is dangerous only if its buffer_ load (after its fence)
  /// returned a retired buffer. Order the thief's fence F_t and the
  /// owner's fence below F_o in the fences' total order:
  ///  - F_o before F_t: the thief's load must see buffer_'s current
  ///    value (stored before F_o in the owner's program order) or newer
  ///    — it reads the live buffer, not a retired one.
  ///  - F_t before F_o: the owner's relaxed load below must see the
  ///    thief's announcement increment (sequenced before F_t) or a later
  ///    value in the counter's modification order. Decrements only
  ///    follow the thief's last buffer access, so any later value that
  ///    nets to zero already includes that thief's decrement — if the
  ///    thief were still mid-steal the owner would read >= 1 and back
  ///    off.
  /// The acquire on the counter read additionally synchronizes with each
  /// release decrement, making "last access happens-before free" direct
  /// (and visible to TSan, which does not model the fences).
  bool try_reclaim() {
    if (retired_.empty()) return true;
    Policy::fence(std::memory_order_seq_cst);
    if (inflight_thieves_.load(std::memory_order_acquire) != 0) return false;
    for (Buffer* b : retired_) delete b;
    retired_.clear();
    return true;
  }

  /// Buffers parked by grow() awaiting reclamation. Quiescent use only
  /// (tests/diagnostics): the list is owner-mutated inside push().
  [[nodiscard]] std::size_t retired_count() const noexcept {
    return retired_.size();
  }

  /// Total element capacity of the retired buffers. The geometric growth
  /// guarantees this stays below capacity(), i.e. retired + live memory
  /// never exceeds 2x the live high-water mark.
  [[nodiscard]] std::size_t retired_capacity_total() const noexcept {
    std::size_t n = 0;
    for (const Buffer* b : retired_) n += b->capacity;
    return n;
  }

 private:
  friend struct dws::layout::Access;  // layout_audit reads private layouts

  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1), data(new Atomic<T>[cap]) {}
    const std::size_t capacity;
    const std::size_t mask;
    // dws-layout: packed-ok ring elements are relaxed handoff cells, each
    // written by the owner and read once by the winning thief — never a
    // multi-writer CAS target, so striding them would only waste cache
    std::unique_ptr<Atomic<T>[]> data;

    void put(std::int64_t i, T v) {
      data[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
    T get(std::int64_t i) const {
      return data[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
  };

  static std::size_t round_up_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p < 2 ? 2 : p;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    // Bound the retire list: earlier generations are reclaimable as soon
    // as steal traffic has quiesced once since they were parked.
    try_reclaim();
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    retired_.push_back(old);  // thieves may still read it
    return bigger;
  }

  alignas(64) DWS_SHARED Atomic<std::int64_t> top_;  // thieves CAS here
  alignas(64) DWS_OWNED_BY(owner) Atomic<std::int64_t> bottom_;
  DWS_OWNED_BY(owner)
  std::int64_t top_cache_ = 0;  // owner-local lower bound on top_
  alignas(64) DWS_OWNED_BY(owner) Atomic<Buffer*> buffer_;
  alignas(64) DWS_SHARED Atomic<std::int64_t> inflight_thieves_{0};
  std::vector<Buffer*> retired_;  // owner-only mutation (inside push, rare)
};

}  // namespace dws::rt
