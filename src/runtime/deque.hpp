// Chase-Lev work-stealing deque, following Le, Pop, Cohen & Zappa Nardelli,
// "Correct and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13).
//
// The owner worker pushes and pops at the bottom; thieves steal from the
// top. All operations are lock-free; only the owner may call push()/pop().
// The buffer grows geometrically on overflow. Old buffers cannot be freed
// while concurrent thieves might still be reading them, so they are parked
// on a retire list owned by the deque and reclaimed in the destructor —
// the total leaked-by-delay memory is bounded by 2x the high-water mark
// (the retired capacities form a geometric series summing to less than the
// live buffer's capacity; see retired_capacity_total()).
//
// The atomics are named through an injectable policy (core/atomics_policy.hpp)
// so the model checker in src/check can compile the *same* algorithm over
// instrumented atomics and exhaustively explore its interleavings and
// weak-memory read choices. Production code uses the default
// StdAtomicsPolicy and compiles exactly as before.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/atomics_policy.hpp"

// ThreadSanitizer does not model std::atomic_thread_fence, so the
// fence-based release in push() is invisible to it and every owner->thief
// task handoff would be reported as a race. Under TSan we strengthen the
// bottom_ publication store from relaxed to release — a superset of the
// fence ordering, so the algorithm is unchanged — purely to make the
// synchronization visible to the tool. See docs/CHECKING.md.
#if defined(__SANITIZE_THREAD__)
#define DWS_DEQUE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DWS_DEQUE_TSAN 1
#endif
#endif

namespace dws::rt {

/// T must be trivially copyable (we store raw task pointers).
template <typename T, typename Policy = StdAtomicsPolicy>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>);

  template <typename U>
  using Atomic = typename Policy::template atomic<U>;

  static constexpr std::memory_order kPublishOrder =
#ifdef DWS_DEQUE_TSAN
      std::memory_order_release;
#else
      std::memory_order_relaxed;
#endif

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : top_(0), bottom_(0) {
    buffer_.store(new Buffer(round_up_pow2(initial_capacity)),
                  std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  /// Owner only: push one element at the bottom.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, item);
    Policy::fence(std::memory_order_release);
    bottom_.store(b + 1, kPublishOrder);
  }

  /// Owner only: pop from the bottom (LIFO — preserves locality).
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    Policy::fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was already empty; restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T item = buf->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        // A thief won the race.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: steal from the top (FIFO end — steals the oldest, which
  /// in divide-and-conquer DAGs is the largest subtree).
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    Policy::fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;  // observed empty
    Buffer* buf = buffer_.load(std::memory_order_consume);
    T item = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost the race to the owner or another thief
    }
    return item;
  }

  /// Racy size estimate for demand accounting (N_b); never negative.
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty_approx() const noexcept { return size_approx() == 0; }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return buffer_.load(std::memory_order_relaxed)->capacity;
  }

  /// Buffers parked by grow() awaiting destructor reclamation. Quiescent
  /// use only (tests/diagnostics): the list is owner-mutated inside push().
  [[nodiscard]] std::size_t retired_count() const noexcept {
    return retired_.size();
  }

  /// Total element capacity of the retired buffers. The geometric growth
  /// guarantees this stays below capacity(), i.e. retired + live memory
  /// never exceeds 2x the live high-water mark.
  [[nodiscard]] std::size_t retired_capacity_total() const noexcept {
    std::size_t n = 0;
    for (const Buffer* b : retired_) n += b->capacity;
    return n;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1), data(new Atomic<T>[cap]) {}
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<Atomic<T>[]> data;

    void put(std::int64_t i, T v) {
      data[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
    T get(std::int64_t i) const {
      return data[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
  };

  static std::size_t round_up_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p < 2 ? 2 : p;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    retired_.push_back(old);  // thieves may still read it; free at dtor
    return bigger;
  }

  alignas(64) Atomic<std::int64_t> top_;
  alignas(64) Atomic<std::int64_t> bottom_;
  alignas(64) Atomic<Buffer*> buffer_;
  std::vector<Buffer*> retired_;  // owner-only mutation (inside push)
};

}  // namespace dws::rt
