#include "runtime/strict.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dws::rt::strict {

namespace {

void default_handler(Violation v, const char* detail) {
  std::fprintf(stderr, "dws strictness violation [%s]: %s\n",
               violation_name(v), detail == nullptr ? "" : detail);
  std::fflush(stderr);
  std::abort();
}

std::atomic<Handler> g_handler{&default_handler};
std::atomic<std::uint64_t> g_count{0};

// -1 = not yet resolved, 0 = off, 1 = on.
std::atomic<int> g_enabled{-1};

int resolve_default_enabled() noexcept {
  if (const char* env = std::getenv("DWS_STRICT"); env != nullptr) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) return 0;
    if (env[0] != '\0') return 1;
  }
#ifdef NDEBUG
  return 0;
#else
  return 1;
#endif
}

}  // namespace

const char* violation_name(Violation v) noexcept {
  switch (v) {
    case Violation::kEscapedGroup:
      return "escaped-group";
    case Violation::kForeignWait:
      return "foreign-wait";
    case Violation::kSpawnAfterCompletion:
      return "spawn-after-completion";
    case Violation::kAncestorWait:
      return "ancestor-wait";
  }
  return "unknown";
}

Handler set_handler(Handler h) noexcept {
  return g_handler.exchange(h != nullptr ? h : &default_handler,
                            std::memory_order_acq_rel);
}

bool enabled() noexcept {
  int v = g_enabled.load(std::memory_order_acquire);
  if (v < 0) {
    // Several threads may race to resolve; they compute the same value.
    v = resolve_default_enabled();
    g_enabled.store(v, std::memory_order_release);
  }
  return v != 0;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_release);
}

std::uint64_t violation_count() noexcept {
  return g_count.load(std::memory_order_acquire);
}

void report(Violation v, const char* detail) noexcept {
  g_count.fetch_add(1, std::memory_order_acq_rel);
  g_handler.load(std::memory_order_acquire)(v, detail);
}

std::uintptr_t thread_tag() noexcept {
  thread_local char tag;
  return reinterpret_cast<std::uintptr_t>(&tag);
}

namespace {

const Lineage*& tl_lineage() noexcept {
  thread_local const Lineage* lineage = nullptr;
  return lineage;
}

std::atomic<std::uint64_t> g_next_task_id{1};

}  // namespace

std::uint64_t next_task_id() noexcept {
  return g_next_task_id.fetch_add(1, std::memory_order_relaxed);
}

const Lineage* current_lineage() noexcept { return tl_lineage(); }

const Lineage* swap_current_lineage(const Lineage* l) noexcept {
  const Lineage* prev = tl_lineage();
  tl_lineage() = l;
  return prev;
}

void capture_lineage(Lineage& out) {
  if (const Lineage* cur = tl_lineage(); cur != nullptr) out = *cur;
  out.push_back(next_task_id());
}

}  // namespace dws::rt::strict
