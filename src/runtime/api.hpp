// High-level parallel algorithms on top of the Scheduler: the API the
// Table-2 benchmark applications are written against.
//
//   dws::rt::parallel_for(sched, 0, n, grain, [&](i64 b, i64 e) {...});
//   dws::rt::parallel_invoke(sched, f, g, ...);
//   T r = dws::rt::parallel_reduce(sched, 0, n, grain, init, map, combine);
//
// All of them are structured (they wait before returning), recursive
// binary splitters, so the task DAGs they generate have the
// divide-and-conquer shape classic work-stealing is designed for.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/scheduler.hpp"

namespace dws::race {

// ---- Determinacy-race annotation API (see docs/CHECKING.md) ----
//
// Kernels annotate the shared-memory footprint of their parallel leaf
// bodies; the detectors (src/race/) check every pair of annotated
// accesses from logically parallel tasks — SP-bags during a serial
// replay, FastTrack riding the live parallel schedule; same stream,
// same annotations. With no active detector on the thread each call is one
// thread-local load and a predicted branch; with DWS_RACE_DISABLED
// (cmake -DDWS_RACE=OFF) the calls compile to nothing.

#ifndef DWS_RACE_DISABLED

/// `count` elements of T read starting at `p`, consecutive elements
/// `stride` (in elements, default contiguous) apart.
template <typename T>
inline void read(const T* p, std::size_t count = 1,
                 std::ptrdiff_t stride = 1) {
  if (MemorySink* s = detail::tl_sink(); s != nullptr) {
    s->on_access(p, sizeof(T), count,
                 stride * static_cast<std::ptrdiff_t>(sizeof(T)), false);
  }
}

/// Same shape as read(); also covers read-modify-write of the range
/// (a write conflicts with every other access, so in-place updates need
/// only the write annotation).
template <typename T>
inline void write(T* p, std::size_t count = 1, std::ptrdiff_t stride = 1) {
  if (MemorySink* s = detail::tl_sink(); s != nullptr) {
    s->on_access(p, sizeof(T), count,
                 stride * static_cast<std::ptrdiff_t>(sizeof(T)), true);
  }
}

/// The current task acquired the lock identified by `lock`'s address.
/// `name` (optional) labels the lock in race reports; the first non-null
/// name registered for an address wins. Accesses annotated while a lock
/// is held carry it in their lockset: the ALL-SETS detector only reports
/// a pair of parallel conflicting accesses when their locksets are
/// disjoint (see docs/CHECKING.md).
inline void lock_acquire(const void* lock, const char* name = nullptr) {
  if (MemorySink* s = detail::tl_sink(); s != nullptr) {
    s->on_lock_acquire(lock, name);
  }
}

/// The current task released `lock`. Must pair with lock_acquire on the
/// same task, stack-like or not (the detector keeps a multiset, so
/// hand-over-hand locking is representable).
inline void lock_release(const void* lock) {
  if (MemorySink* s = detail::tl_sink(); s != nullptr) {
    s->on_lock_release(lock);
  }
}

/// RAII mutex guard that annotates the acquire/release for the lockset
/// detector. Drop-in for std::lock_guard at annotated call sites:
///
///   race::scoped_lock<std::mutex> lock(m, "histogram.bins");
///
/// The real mutex is always acquired (also under -DDWS_RACE=OFF, where
/// only the annotations compile out) — the guard changes checking, never
/// synchronization. Nested acquisitions additionally feed the deadlock
/// analysis (src/race/lockgraph.hpp), and scripts/lint.sh requires every
/// call site to declare its lock's order class on the same line with a
/// `// lock-order: CLASS` tag registered in scripts/lock_order.txt (see
/// that file for the tag grammar).
template <typename Mutex>
class scoped_lock {
 public:
  explicit scoped_lock(Mutex& m, const char* name = nullptr) : m_(m) {
    m_.lock();
    lock_acquire(&m_, name);
  }
  scoped_lock(const scoped_lock&) = delete;
  scoped_lock& operator=(const scoped_lock&) = delete;
  ~scoped_lock() {
    lock_release(&m_);
    m_.unlock();
  }

 private:
  Mutex& m_;
};

/// RAII provenance label: tasks spawned while a region is active carry
/// its name in their spawn-tree chain in race reports.
class region {
 public:
  explicit region(const char* name) noexcept : sink_(detail::tl_sink()) {
    if (sink_ != nullptr) sink_->on_region_enter(name);
  }
  region(const region&) = delete;
  region& operator=(const region&) = delete;
  ~region() {
    // Paired with the sink captured at entry: a detector attached or
    // detached inside the region cannot unbalance the label stack.
    if (sink_ != nullptr) sink_->on_region_exit();
  }

 private:
  MemorySink* sink_;
};

#else  // DWS_RACE_DISABLED

template <typename T>
inline void read(const T*, std::size_t = 1, std::ptrdiff_t = 1) {}
template <typename T>
inline void write(T*, std::size_t = 1, std::ptrdiff_t = 1) {}
inline void lock_acquire(const void*, const char* = nullptr) {}
inline void lock_release(const void*) {}
template <typename Mutex>
class scoped_lock {
 public:
  explicit scoped_lock(Mutex& m, const char* = nullptr) : m_(m) {
    m_.lock();
  }
  scoped_lock(const scoped_lock&) = delete;
  scoped_lock& operator=(const scoped_lock&) = delete;
  ~scoped_lock() { m_.unlock(); }

 private:
  Mutex& m_;
};
class region {
 public:
  explicit region(const char*) noexcept {}
  region(const region&) = delete;
  region& operator=(const region&) = delete;
};

#endif  // DWS_RACE_DISABLED

}  // namespace dws::race

namespace dws::rt {

namespace detail {

template <typename Body>
void parallel_for_split(Scheduler& sched, TaskGroup& group, std::int64_t begin,
                        std::int64_t end, std::int64_t grain,
                        const Body& body) {
  while (end - begin > grain) {
    const std::int64_t mid = begin + (end - begin) / 2;
    // Spawn the upper half; keep descending into the lower half ourselves
    // (work-first). Thieves steal the larger, older subtree.
    sched.spawn(group, [&sched, &group, mid, end, grain, &body] {
      parallel_for_split(sched, group, mid, end, grain, body);
    });
    end = mid;
  }
  body(begin, end);
}

}  // namespace detail

/// Apply `body(b, e)` over [begin, end) in subranges of at most `grain`
/// elements, in parallel. `body` must be safe to run concurrently on
/// disjoint subranges and must remain alive until the call returns.
template <typename Body>
void parallel_for(Scheduler& sched, std::int64_t begin, std::int64_t end,
                  std::int64_t grain, const Body& body) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  if (end - begin <= grain) {
    body(begin, end);
    return;
  }
  TaskGroup group;
  // Run the splitter itself inside the scheduler so that spawns land on a
  // worker deque even when the caller is an external thread.
  //
  // Exception safety: tasks already spawned into `group` hold references
  // to `group` and `body`; if the root rethrows (the caller's body threw
  // on the root's own descend path), those tasks must be drained before
  // this frame unwinds. The first exception wins; drain-time exceptions
  // are already captured in `group` and superseded.
  try {
    sched.run([&sched, &group, begin, end, grain, &body] {
      detail::parallel_for_split(sched, group, begin, end, grain, body);
    });
  } catch (...) {
    try {
      sched.wait(group);
    } catch (...) {
    }
    throw;
  }
  sched.wait(group);
}

/// Convenience overload: per-index body `f(i)`.
template <typename IndexBody>
void parallel_for_each_index(Scheduler& sched, std::int64_t begin,
                             std::int64_t end, std::int64_t grain,
                             const IndexBody& f) {
  parallel_for(sched, begin, end, grain,
               [&f](std::int64_t b, std::int64_t e) {
                 for (std::int64_t i = b; i < e; ++i) f(i);
               });
}

/// Run all functors in parallel and wait for every one of them.
template <typename... Fs>
void parallel_invoke(Scheduler& sched, Fs&&... fs) {
  TaskGroup group;
  try {
    sched.run([&] { (sched.spawn(group, std::forward<Fs>(fs)), ...); });
  } catch (...) {
    try {
      sched.wait(group);
    } catch (...) {
    }
    throw;
  }
  sched.wait(group);
}

namespace detail {

/// Parallel merge of two sorted ranges into `out` (which must not
/// overlap the inputs): split the longer input at its median, binary-
/// search the split point in the shorter one, and merge the two halves
/// in parallel. Recursion depth is O(log((n1+n2)/cutoff)).
template <typename RandomIt, typename OutIt, typename Compare>
void parallel_merge(Scheduler& sched, RandomIt first1, RandomIt last1,
                    RandomIt first2, RandomIt last2, OutIt out,
                    const Compare& comp, std::int64_t cutoff) {
  const std::int64_t n1 = last1 - first1;
  const std::int64_t n2 = last2 - first2;
  if (n1 + n2 <= cutoff) {
    std::merge(first1, last1, first2, last2, out, comp);
    return;
  }
  if (n1 < n2) {
    // Keep the first range the longer one so its median split is useful.
    parallel_merge(sched, first2, last2, first1, last1, out, comp, cutoff);
    return;
  }
  RandomIt mid1 = first1 + n1 / 2;
  RandomIt mid2 = std::lower_bound(first2, last2, *mid1, comp);
  OutIt out_mid = out + (mid1 - first1) + (mid2 - first2);
  parallel_invoke(
      sched,
      [&] {
        parallel_merge(sched, first1, mid1, first2, mid2, out, comp, cutoff);
      },
      [&] {
        parallel_merge(sched, mid1, last1, mid2, last2, out_mid, comp,
                       cutoff);
      });
}

template <typename RandomIt, typename Compare>
void parallel_sort_rec(Scheduler& sched, RandomIt first, RandomIt last,
                       typename std::iterator_traits<RandomIt>::pointer buf,
                       std::int64_t offset, const Compare& comp,
                       std::int64_t cutoff) {
  const std::int64_t n = last - first;
  if (n <= cutoff) {
    std::sort(first, last, comp);
    return;
  }
  const std::int64_t half = n / 2;
  parallel_invoke(
      sched,
      [&] {
        parallel_sort_rec(sched, first, first + half, buf, offset, comp,
                          cutoff);
      },
      [&] {
        parallel_sort_rec(sched, first + half, last, buf, offset + half,
                          comp, cutoff);
      });
  // Parallel merge above 4x the leaf cutoff keeps the top-level merges —
  // the scalability bottleneck of naive merge sort — parallel too.
  parallel_merge(sched, first, first + half, first + half, last,
                 buf + offset, comp, 4 * cutoff);
  std::move(buf + offset, buf + offset + n, first);
}

}  // namespace detail

/// Stable-ish parallel merge sort (not stable: the leaf std::sort isn't).
/// Requires random-access iterators and move-assignable values.
template <typename RandomIt, typename Compare = std::less<>>
void parallel_sort(Scheduler& sched, RandomIt first, RandomIt last,
                   Compare comp = {}, std::int64_t cutoff = 2048) {
  const std::int64_t n = last - first;
  if (n <= 1) return;
  if (cutoff < 2) cutoff = 2;
  using Value = typename std::iterator_traits<RandomIt>::value_type;
  std::vector<Value> buf(static_cast<std::size_t>(n));
  sched.run([&] {
    detail::parallel_sort_rec(sched, first, last, buf.data(), 0, comp,
                              cutoff);
  });
}

/// Inclusive parallel prefix "sum" over [begin, end) with an associative
/// `op`: out[i] = in[begin] op ... op in[i]. In place over the given
/// range. Classic two-pass blocked scan: per-block reductions in
/// parallel, a serial scan of the (few) block totals, then a parallel
/// fix-up pass.
template <typename T, typename Op = std::plus<>>
void parallel_inclusive_scan(Scheduler& sched, T* data, std::int64_t n,
                             Op op = {}, std::int64_t block = 4096) {
  if (n <= 0) return;
  if (block < 1) block = 1;
  const std::int64_t blocks = (n + block - 1) / block;
  if (blocks == 1) {
    for (std::int64_t i = 1; i < n; ++i) data[i] = op(data[i - 1], data[i]);
    return;
  }
  std::vector<T> totals(static_cast<std::size_t>(blocks));
  // Pass 1: scan each block independently; record each block's total.
  parallel_for_each_index(sched, 0, blocks, 1, [&](std::int64_t b) {
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min(n, lo + block);
    for (std::int64_t i = lo + 1; i < hi; ++i) {
      data[i] = op(data[i - 1], data[i]);
    }
    totals[static_cast<std::size_t>(b)] = data[hi - 1];
  });
  // Serial exclusive scan over the block totals (cheap: `blocks` items).
  for (std::int64_t b = 1; b < blocks; ++b) {
    totals[static_cast<std::size_t>(b)] =
        op(totals[static_cast<std::size_t>(b - 1)],
           totals[static_cast<std::size_t>(b)]);
  }
  // Pass 2: add the preceding blocks' total into each block.
  parallel_for_each_index(sched, 1, blocks, 1, [&](std::int64_t b) {
    const T& carry = totals[static_cast<std::size_t>(b - 1)];
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min(n, lo + block);
    for (std::int64_t i = lo; i < hi; ++i) data[i] = op(carry, data[i]);
  });
}

/// Parallel map-reduce over [begin, end): `map(b, e)` produces a partial
/// result per leaf range, folded left-to-right-agnostically with
/// `combine`. `combine` must be associative and commutative.
template <typename T, typename Map, typename Combine>
T parallel_reduce(Scheduler& sched, std::int64_t begin, std::int64_t end,
                  std::int64_t grain, T identity, const Map& map,
                  const Combine& combine) {
  if (begin >= end) return identity;
  T result = identity;
  std::mutex result_m;
  parallel_for(sched, begin, end, grain,
               [&](std::int64_t b, std::int64_t e) {
                 T partial = map(b, e);
                 race::scoped_lock<std::mutex> lock(  // lock-order: reduce.combine
                     result_m, "parallel_reduce.combine");
                 result = combine(std::move(result), std::move(partial));
               });
  return result;
}

}  // namespace dws::rt
