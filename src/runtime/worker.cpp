#include "runtime/worker.hpp"

#include <chrono>

#include "runtime/scheduler.hpp"
#include "util/affinity.hpp"

namespace dws::rt {

namespace {
thread_local Worker* g_tls_worker = nullptr;
}  // namespace

Worker* current_worker() noexcept { return g_tls_worker; }

Worker::Worker(Scheduler& sched, unsigned id)
    : sched_(sched),
      id_(id),
      rng_(sched.config().seed ^ (0x9E3779B97F4A7C15ULL * (id + 1))),
      victim_order_(sched.topology(), id, sched.config().num_cores),
      policy_(sched.config().mode,
              sched.config().effective_t_sleep(sched.config().num_cores)) {}

Worker::~Worker() {
  if (thread_.joinable()) thread_.join();
}

void Worker::start() { thread_ = std::thread([this] { thread_main(); }); }

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

bool Worker::wake() noexcept {
  std::lock_guard<std::mutex> lock(m_);
  if (state() != State::kSleeping) return false;
  wake_pending_ = true;
  cv_.notify_one();
  return true;
}

void Worker::notify_shutdown() noexcept {
  std::lock_guard<std::mutex> lock(m_);
  cv_.notify_all();
}

bool Worker::should_vacate() const noexcept {
  // Space-sharing modes: we may only run while the allocation table lists
  // our program as this core's user. If our coordinator lost the core (we
  // released it and someone claimed it) or the home owner reclaimed it,
  // this worker must vacate at its next policy check.
  return sched_.table()->user_of(id_) != sched_.pid();
}

TaskBase* Worker::find_task() {
  // Algorithm 1 lines 4-5: own pool first (LIFO bottom => locality).
  if (auto t = deque_.pop()) return *t;
  // Externally injected tasks (run() from a non-worker thread).
  if (TaskBase* t = sched_.try_pop_inbox()) return t;
  // Algorithm 1 lines 8-10: one steal attempt per call. Victim choice is
  // the configured policy's: near-first over the distance tiers (default)
  // or the paper's uniform draw. The n <= 1 guard owns the single-worker
  // edge (kNoVictim / rng_.next_below(0) has no valid draw).
  const unsigned n = sched_.num_workers();
  if (n <= 1) return nullptr;
  ++stats_.steal_attempts;
  VictimPick pick;
  if (sched_.config().victim_policy == VictimPolicy::kTiered) {
    pick = victim_order_.next(rng_);
  } else {
    pick.victim = uniform_victim(rng_, n, id_);
    pick.tier = sched_.topology().distance(id_, pick.victim);
  }
  ++stats_.steal_attempts_by_tier[static_cast<int>(pick.tier)];
  if (auto t = sched_.workers_[pick.victim]->deque_.steal()) {
    ++stats_.steals;
    ++stats_.steals_by_tier[static_cast<int>(pick.tier)];
    // Hunger episode over: the next one probes near tiers first again.
    victim_order_.restart();
    return *t;
  }
  ++stats_.failed_steals;
  return nullptr;
}

void Worker::go_to_sleep(bool count_as_eviction) {
  policy_.on_sleep();
  ++stats_.sleeps;
  if (count_as_eviction) ++stats_.evictions;

  // Order matters for the wake protocol: become Sleeping *before*
  // releasing the core, so that a coordinator that wins the freed core is
  // guaranteed to find a wakeable worker (see DESIGN.md §4.2).
  {
    std::lock_guard<std::mutex> lock(m_);
    state_.store(static_cast<int>(State::kSleeping),
                 std::memory_order_release);
  }
  if (mode_space_shares(sched_.mode())) {
    // CAS-guarded: fails harmlessly when the core was reclaimed from us.
    sched_.table()->release(id_, sched_.pid());
  }
  const auto slept_at = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [this] {
      return wake_pending_ || sched_.shutdown_requested();
    });
    wake_pending_ = false;
    state_.store(static_cast<int>(State::kActive), std::memory_order_release);
  }
  ++stats_.wakes;
  if (sched_.config().adaptive_t_sleep && !sched_.shutdown_requested()) {
    // Adaptive T_SLEEP (§6 extension): a sleep cut short means the
    // threshold fired prematurely — escalate it.
    const double horizon_ms =
        sched_.config().adaptive_short_sleep_ms > 0.0
            ? sched_.config().adaptive_short_sleep_ms
            : sched_.config().coordinator_period_ms;
    const double slept_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - slept_at)
            .count();
    if (slept_ms < horizon_ms) sched_.escalate_t_sleep();
  }
}

void Worker::idle_gate_block() {
  std::unique_lock<std::mutex> lock(sched_.gate_m_);
  sched_.gate_cv_.wait(lock, [this] {
    return sched_.total_pending_.load(std::memory_order_acquire) > 0 ||
           sched_.shutdown_requested();
  });
}

void Worker::thread_main() {
  g_tls_worker = this;
  // Task-pool ownership belongs to this thread: every allocate() happens
  // inside Scheduler::spawn called from task bodies running here, which
  // is necessarily after this bind.
  pool_.bind_owner();
  if (sched_.config().pin_threads) util::pin_this_thread(id_);

  // EP: workers outside the static home partition never run (§2.2 —
  // equipartition is not adaptive; that is exactly its weakness).
  if (sched_.mode() == SchedMode::kEp &&
      sched_.table()->home_of(id_) != sched_.pid()) {
    state_.store(static_cast<int>(State::kParked), std::memory_order_release);
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [this] { return sched_.shutdown_requested(); });
    g_tls_worker = nullptr;
    return;
  }

  const bool space_sharing = mode_space_shares(sched_.mode());
  const bool sleeping_mode = mode_sleeps(sched_.mode());

  while (!sched_.shutdown_requested()) {
    // DWS: a worker whose core we do not (or no longer) own sleeps until
    // the coordinator secures the core and wakes it. This both realizes
    // the initial equipartition (non-home workers park here at startup)
    // and the take-back protocol (§3.3 constraint 2).
    if (space_sharing && should_vacate()) {
      if (sched_.mode() == SchedMode::kEp) {
        // EP home cores are never exchanged, so this cannot happen; guard
        // anyway to keep the invariant explicit.
        break;
      }
      go_to_sleep(/*count_as_eviction=*/true);
      continue;
    }

    if (TaskBase* t = find_task()) {
      policy_.on_task_acquired();
      ++stats_.tasks_executed;
      sched_.execute(t);
      continue;
    }

    // Out of work: the cold path is the natural point to reclaim deque
    // buffers retired by grow() — steal traffic on our deque has usually
    // quiesced by the time we are idle (two loads when there is nothing
    // to reclaim).
    deque_.try_reclaim();

    // Nothing anywhere. If the program as a whole has no in-flight work,
    // park on the idle gate instead of burning the core (non-sleeping
    // modes only: in DWS/DWS-NC the T_SLEEP path below is the idle
    // mechanism and additionally releases the core for co-runners).
    if (!sleeping_mode &&
        sched_.total_pending_.load(std::memory_order_acquire) == 0) {
      idle_gate_block();
      continue;
    }

    if (sched_.config().adaptive_t_sleep) {
      policy_.set_t_sleep(sched_.current_t_sleep());
    }
    switch (policy_.on_steal_failed()) {
      case StealOutcome::kRetry:
        // CLASSIC: busy spin; a pause instruction keeps the hyperthread
        // polite without yielding the time slice.
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
        break;
      case StealOutcome::kYield:
        ++stats_.yields;
        std::this_thread::yield();
        break;
      case StealOutcome::kSleep:
        go_to_sleep(/*count_as_eviction=*/false);
        break;
    }
  }
  g_tls_worker = nullptr;
}

}  // namespace dws::rt
