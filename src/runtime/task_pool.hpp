// Pooled task storage for the spawn/steal hot path: a per-worker slab
// allocator with LIFO recycling, so steady-state spawns never touch the
// global allocator (ROADMAP: "tens-of-nanoseconds spawn"; the pbbslib
// scheduler shape, SNIPPETS.md Snippet 2).
//
// Shape:
//  - Slots are fixed-size, cache-line-aligned blocks carved from slabs.
//    A TaskImpl whose closure fits is placement-new'd into a slot; larger
//    (or externally spawned) tasks fall back to plain new/delete.
//  - Each pool has ONE owner thread (the worker), which is the only
//    caller of allocate(). The owner recycles through a plain LIFO
//    freelist — the hottest slot is the most recently executed one, so
//    its lines are still in cache.
//  - release() may be called from ANY thread: a thief that stole and ran
//    a task returns the slot through a Treiber push-only stack
//    (remote_head_). Remote pushes race only with each other and with
//    the owner's drain, which takes the whole chain at once with a
//    single exchange(nullptr, acquire) — there is no remote pop, so the
//    classic Treiber ABA case cannot arise. The recycle protocol *as a
//    whole* (a slot reused while a stale thief still holds a pointer
//    from the deque) is the ABA shape the model checker certifies; see
//    tests/test_check_pool.cpp and docs/CHECKING.md.
//
// Memory ordering: the releasing thread's last writes to the slot (the
// task destructor) are published by the release CAS on remote_head_; the
// owner's acquire exchange in allocate() synchronizes with every pushed
// slot in the chain, so the owner's placement-new happens-after the
// previous occupant's destruction. Owner-local recycling needs no
// ordering (same thread). The slot-to-consumer handoff after a push is
// the deque's release fence, exactly as for heap tasks.
//
// The atomics are named through the same injectable policy as
// ChaseLevDeque so the model checker compiles this exact protocol over
// instrumented atomics.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "core/atomics_policy.hpp"
#include "util/layout.hpp"

namespace dws::rt {

/// Owner-written allocation counters (racily readable, relaxed). The
/// zero-alloc steady-state claim in BENCH_spawn_steal.json is "slab_allocs
/// stops growing once the freelist reaches the spawn-depth high-water
/// mark, and slot_allocs keeps growing without it".
struct TaskPoolStats {
  std::uint64_t slab_allocs = 0;    ///< slabs carved (actual heap allocations)
  std::uint64_t slot_allocs = 0;    ///< pooled slots handed out
  std::uint64_t local_frees = 0;    ///< owner-thread recycles (LIFO freelist)
  std::uint64_t remote_frees = 0;   ///< cross-thread recycles (Treiber push)
  std::uint64_t remote_drains = 0;  ///< owner drains of the remote chain
};

template <std::size_t SlotBytes = 192, std::size_t SlabSlots = 64,
          typename Policy = StdAtomicsPolicy>
class TaskPool {
  template <typename U>
  using Atomic = typename Policy::template atomic<U>;

 public:
  /// Alignment guaranteed for slot storage. Over-aligned closures (e.g.
  /// alignas(32) SIMD state) take the heap fallback in Scheduler::spawn.
  static constexpr std::size_t kStorageAlign = alignof(std::max_align_t);

  /// One unit of task storage. `next` links free slots (local freelist or
  /// remote chain) and is dead while the slot holds a live task. It is
  /// shared-domain: remote release() CAS-chains through it from any
  /// thread. Slots are already line-aligned, so next never interferes
  /// with a *different* slot; within its own slot it shares with storage
  /// only across the free/live phase boundary, never concurrently.
  struct alignas(64) Slot {
    TaskPool* home = nullptr;
    alignas(kStorageAlign) unsigned char storage[SlotBytes];
    DWS_SHARED Atomic<Slot*> next{nullptr};
  };

  /// Whether a task type can live in a slot (size and alignment).
  template <typename T>
  [[nodiscard]] static constexpr bool fits() noexcept {
    return sizeof(T) <= SlotBytes && alignof(T) <= kStorageAlign;
  }

  TaskPool() = default;
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;
  /// All outstanding slots must have been released (the scheduler drains
  /// deques before workers are destroyed); slabs free wholesale here.
  ~TaskPool() = default;

  /// Claim ownership for the calling thread. Must happen before the first
  /// allocate(); releases from other threads synchronize with the owner
  /// through the slot's journey (pool -> deque -> thief), never by
  /// reading owner_tag_ concurrently with this write.
  void bind_owner() noexcept { owner_tag_ = this_thread_tag(); }

  /// Owner only: take a free slot (local freelist, then remote chain,
  /// then a fresh slab). Never fails; never touches the allocator in
  /// steady state.
  Slot* allocate() {
    assert(owner_tag_ == this_thread_tag() &&
           "TaskPool::allocate is owner-thread only");
    slot_allocs_.fetch_add(1, std::memory_order_relaxed);
    Slot* s = local_head_;
    if (s != nullptr) {
      local_head_ = s->next.load(std::memory_order_relaxed);
      return s;
    }
    // Local list dry: adopt everything thieves returned since the last
    // drain. Acquire pairs with the release CAS of every push in the
    // chain — the previous occupants' destructors happened-before our
    // reuse of their bytes.
    if (Slot* chain = remote_head_.exchange(nullptr,
                                            std::memory_order_acquire);
        chain != nullptr) {
      remote_drains_.fetch_add(1, std::memory_order_relaxed);
      local_head_ = chain->next.load(std::memory_order_relaxed);
      return chain;
    }
    return carve_slab();
  }

  /// The task-storage bytes of a slot.
  [[nodiscard]] static void* storage(Slot* s) noexcept { return s->storage; }

  /// Any thread: return a slot to its home pool. The caller must already
  /// have destroyed the occupant.
  static void release(void* opaque) {
    auto* s = static_cast<Slot*>(opaque);
    TaskPool* p = s->home;
    if (p->owner_tag_ == this_thread_tag()) {
      s->next.store(p->local_head_, std::memory_order_relaxed);
      p->local_head_ = s;
      p->local_frees_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    p->remote_frees_.fetch_add(1, std::memory_order_relaxed);
    Slot* h = p->remote_head_.load(std::memory_order_relaxed);
    do {
      s->next.store(h, std::memory_order_relaxed);
    } while (!p->remote_head_.compare_exchange_weak(
        h, s, std::memory_order_release, std::memory_order_relaxed));
  }

  [[nodiscard]] TaskPoolStats stats() const noexcept {
    TaskPoolStats st;
    st.slab_allocs = slab_allocs_.load(std::memory_order_relaxed);
    st.slot_allocs = slot_allocs_.load(std::memory_order_relaxed);
    st.local_frees = local_frees_.load(std::memory_order_relaxed);
    st.remote_frees = remote_frees_.load(std::memory_order_relaxed);
    st.remote_drains = remote_drains_.load(std::memory_order_relaxed);
    return st;
  }

 private:
  friend struct dws::layout::Access;  // layout_audit reads private layouts

  static std::uintptr_t this_thread_tag() noexcept {
    thread_local char tag;
    return reinterpret_cast<std::uintptr_t>(&tag);
  }

  Slot* carve_slab() {
    slab_allocs_.fetch_add(1, std::memory_order_relaxed);
    slabs_.push_back(std::make_unique<Slot[]>(SlabSlots));
    Slot* slab = slabs_.back().get();
    for (std::size_t i = 0; i < SlabSlots; ++i) slab[i].home = this;
    // Slot 0 is handed out; the rest chain onto the local freelist in
    // ascending address order (first reuse walks the slab forward).
    for (std::size_t i = SlabSlots - 1; i >= 1; --i) {
      slab[i].next.store(local_head_, std::memory_order_relaxed);
      local_head_ = &slab[i];
    }
    return &slab[0];
  }

  // Owner-side state on its own line; the remote chain head is the only
  // cross-thread-written word, padded so thief pushes never bounce the
  // owner's freelist line.
  alignas(64) DWS_OWNED_BY(owner) Slot* local_head_ = nullptr;
  std::uintptr_t owner_tag_ = 0;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  alignas(64) DWS_SHARED Atomic<Slot*> remote_head_{nullptr};

  // Monitoring-only counters, deliberately OUTSIDE the atomics Policy:
  // routing them through Policy::atomic would multiply the model
  // checker's interleaving space by relaxed counter bumps that carry no
  // synchronization meaning. Each line carries its own waiver so the
  // dws-atomics-policy check stays loud for any *new* raw atomic here.
  // The group starts on a fresh line so owner bumps never dirty the
  // remote_head_ CAS line above; within the group, owner-bumped and
  // remote-bumped counters still pack one line — accepted (packed-ok)
  // because the remote-free path already paid a CAS on remote_head_ one
  // line over, so the extra interference is marginal on a fallback path.
  // dws-layout: packed-ok remote-free monitoring counters ride the same
  // fallback path that just CASed remote_head_; not worth a line each
  alignas(layout::kCacheLineBytes) DWS_OWNED_BY(owner) std::atomic<std::uint64_t> slab_allocs_{0};  // dws-lint-sanction: monitoring-only counter, not model-checked state
  DWS_OWNED_BY(owner) std::atomic<std::uint64_t> slot_allocs_{0};    // dws-lint-sanction: monitoring-only counter, not model-checked state
  DWS_OWNED_BY(owner) std::atomic<std::uint64_t> local_frees_{0};    // dws-lint-sanction: monitoring-only counter, not model-checked state
  DWS_SHARED std::atomic<std::uint64_t> remote_frees_{0};   // dws-lint-sanction: monitoring-only counter, not model-checked state
  DWS_SHARED std::atomic<std::uint64_t> remote_drains_{0};  // dws-lint-sanction: monitoring-only counter, not model-checked state
};

/// The production instantiation used for task storage. 192 bytes leaves
/// ~120 bytes of inline closure after the TaskBase header — comfortably
/// above the capture size of the runtime's hot lambdas — at 4 slots per
/// KiB; 64-slot slabs amortize the carve to one allocation per 64 spawns
/// even before recycling kicks in.
using TaskSlabPool = TaskPool<192, 64, StdAtomicsPolicy>;

}  // namespace dws::rt
