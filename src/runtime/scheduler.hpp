// The per-program scheduler: k workers (one per core), an optional
// coordinator thread, and the program's view of the shared core allocation
// table. This is the library's main entry point — one Scheduler instance
// corresponds to one "work-stealing program" in the paper's terminology.
//
// Co-running: several programs share a table either across processes
// (CoreTableShm) or within one process (CoreTableLocal); each constructs
// its Scheduler with a pointer to the shared table. A Scheduler built
// without a table creates a private single-program table when its mode
// needs one.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/config.hpp"
#include "core/core_table.hpp"
#include "core/topology.hpp"
#include "core/types.hpp"
#include "runtime/coordinator.hpp"
#include "runtime/race_hook.hpp"
#include "runtime/task.hpp"
#include "runtime/worker.hpp"
#include "util/layout.hpp"

namespace dws::rt {

/// Aggregated snapshot of all workers' counters plus scheduler-level ones.
struct SchedulerStats {
  WorkerStats totals;
  std::vector<WorkerStats> per_worker;
  std::uint64_t coordinator_ticks = 0;
  std::uint64_t coordinator_wakes = 0;
  std::uint64_t cores_claimed = 0;
  std::uint64_t cores_reclaimed = 0;
  std::uint64_t stale_programs_swept = 0;  ///< dead co-runners recovered from
  std::uint64_t cores_recovered = 0;       ///< their cores returned to free
};

/// Where task storage came from, aggregated across the workers' pools.
/// `pooled_spawns + heap_spawns + external_spawns` counts every spawn;
/// `slab_allocs` is the number of actual heap allocations the pooled ones
/// cost (one per TaskSlabPool slab — zero in steady state). The spawn
/// benchmark asserts the zero-alloc steady-state claim against this.
struct TaskAllocStats {
  std::uint64_t pooled_spawns = 0;    ///< worker spawns served by a pool slot
  std::uint64_t heap_spawns = 0;      ///< worker spawns that fell back to new
  std::uint64_t external_spawns = 0;  ///< non-worker spawns (always heap)
  std::uint64_t slab_allocs = 0;
  std::uint64_t local_frees = 0;
  std::uint64_t remote_frees = 0;
  std::uint64_t remote_drains = 0;
};

class Scheduler {
 public:
  /// `shared_table`, when given, must outlive the scheduler and have been
  /// created with the num_cores this config resolves to. Ownership stays
  /// with the caller (it is shared between co-running programs).
  explicit Scheduler(const Config& cfg, CoreTable* shared_table = nullptr);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Blocks until all workers and the coordinator have exited. All
  /// submitted work must have been waited for before destruction;
  /// leftover unexecuted tasks are destroyed without running.
  ~Scheduler();

  // ---- Work submission ----

  /// Spawn `fn` into `group`. Callable from a worker of this scheduler
  /// (placement-constructs the task in the worker's slab pool and pushes
  /// to its own deque, Algorithm 1's common case) or from any external
  /// thread (heap task through the injection inbox). Under an installed
  /// race-replay hook the task instead executes inline, depth-first,
  /// before this call returns; under the live-schedule parallel hook
  /// (FastTrack mode) it runs normally but carries a happens-before
  /// token captured here, at the spawn site.
  template <typename F>
  void spawn(TaskGroup& group, F&& fn) {
    using Task = TaskImpl<std::decay_t<F>>;
    group.strict_on_spawn();
#ifndef DWS_RACE_DISABLED
    if (race::ExecHook* h = exec_hook_.load(std::memory_order_acquire);
        h != nullptr) {
      // Serial replay consumes the task inline at the spawn site; its
      // storage stays on the heap (replay is not a perf path, and the
      // spawning thread is typically not a worker of this scheduler).
      group.add_pending();
      external_spawns_.fetch_add(1, std::memory_order_relaxed);
      h->on_spawn(*this, group, new Task(&group, std::forward<F>(fn)));
      return;
    }
#endif
    group.add_pending();
    Worker* w = current_worker();
    if (w != nullptr && &w->sched_ != this) w = nullptr;
    TaskBase* task;
    if constexpr (TaskSlabPool::fits<Task>()) {
      if (w != nullptr && cfg_.pool_tasks) {
        // Hot path: recycled slot, placement-new. Construction resets
        // every TaskBase field (race token, lineage, links) — a reused
        // slot cannot leak its previous occupant's state.
        TaskSlabPool::Slot* slot = w->pool_.allocate();
        task = new (TaskSlabPool::storage(slot))
            Task(&group, std::forward<F>(fn));
        task->set_pool_slot(slot);
      } else {
        task = new Task(&group, std::forward<F>(fn));
        count_heap_spawn(w);
      }
    } else {
      // Closure too large (or over-aligned) for a slot: heap fallback.
      task = new Task(&group, std::forward<F>(fn));
      count_heap_spawn(w);
    }
#ifndef DWS_RACE_DISABLED
    if (race::ParallelHook* ph =
            race::detail::parallel_hook().load(std::memory_order_acquire);
        ph != nullptr) {
      // Publish-edge: everything the spawning thread did so far
      // happens-before the task, wherever it is popped or stolen. The
      // token rides the task through the deque/inbox, whose own
      // release/acquire ordering makes it safely visible to the thief.
      task->set_race_token(ph->on_task_published(group));
    }
#endif
    enqueue(task, w);
  }

  /// Help-first join: the calling worker executes/steals tasks until the
  /// group drains; external threads block. Rethrows the first task
  /// exception captured by the group.
  void wait(TaskGroup& group);

  /// Convenience: run `fn` as a root task and wait for it (and, because
  /// the API is structured, everything it transitively spawned).
  template <typename F>
  void run(F&& fn) {
    TaskGroup root;
    spawn(root, std::forward<F>(fn));
    wait(root);
  }

  // ---- Introspection ----

  [[nodiscard]] unsigned num_workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] ProgramId pid() const noexcept { return pid_; }
  [[nodiscard]] SchedMode mode() const noexcept { return cfg_.mode; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  /// The allocation table in use (nullptr for modes that do not use one).
  [[nodiscard]] CoreTable* table() noexcept { return table_; }
  /// The machine model victim selection and core-exchange rank cores by
  /// (resolved from Config::num_sockets before any worker starts).
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }

  /// N_b: queued tasks across all deques plus the injection inbox.
  [[nodiscard]] std::uint64_t queued_tasks() const noexcept;
  /// N_a: workers currently in the Active state.
  [[nodiscard]] unsigned active_workers() const noexcept;
  [[nodiscard]] unsigned sleeping_workers() const noexcept;

  [[nodiscard]] SchedulerStats stats() const;

  /// Task-storage provenance counters (racily readable while running;
  /// exact after quiescence). See TaskAllocStats.
  [[nodiscard]] TaskAllocStats alloc_stats() const;

  /// The worker affiliated with core `core` (0-based, < num_workers()).
  [[nodiscard]] Worker& worker_at(unsigned core) noexcept {
    return *workers_[core];
  }

  /// The coordinator, or nullptr for modes that run without one.
  [[nodiscard]] Coordinator* coordinator() noexcept {
    return coordinator_.get();
  }

#ifndef DWS_RACE_DISABLED
  // ---- Serial race-replay mode (src/race; see docs/CHECKING.md) ----

  /// Install (or with nullptr remove) the replay hook. The scheduler
  /// must be quiescent: every previously submitted group waited for.
  /// While installed, all spawns execute inline on the spawning thread
  /// in Cilk's serial depth-first order. Normally managed by
  /// race::Replay's RAII, not called directly.
  void set_exec_hook(race::ExecHook* h) noexcept {
    exec_hook_.store(h, std::memory_order_release);
  }
  [[nodiscard]] race::ExecHook* exec_hook() const noexcept {
    return exec_hook_.load(std::memory_order_acquire);
  }
#endif

  // ---- adaptive T_SLEEP (§6 extension; see Config::adaptive_t_sleep) ----

  /// The program's current threshold (== the configured one when the
  /// adaptive controller is off).
  [[nodiscard]] int current_t_sleep() const noexcept {
    return cur_t_sleep_.load(std::memory_order_relaxed);
  }
  /// Called by a worker whose sleep was cut short: double the threshold,
  /// capped at 64x the configured base.
  void escalate_t_sleep() noexcept;
  /// Called by the coordinator each period: decay toward the base.
  void decay_t_sleep() noexcept;

 private:
  friend class Worker;
  friend class Coordinator;
  friend struct dws::layout::Access;  // layout_audit reads private layouts

  /// `w` is the spawning worker when it belongs to this scheduler (saves
  /// a second TLS lookup on the hot path), nullptr for external callers.
  void enqueue(TaskBase* task, Worker* w);
  void execute(TaskBase* task) noexcept;
  TaskBase* try_pop_inbox();
  void count_heap_spawn(Worker* w) noexcept {
    if (w != nullptr) {
      ++w->stats_.heap_spawns;
    } else {
      external_spawns_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  Config cfg_;
  Topology topology_;  // immutable after construction; read by all workers
  ProgramId pid_ = kNoProgram;
  CoreTable* table_ = nullptr;               // shared or owned_table_'s
  std::unique_ptr<CoreTableLocal> owned_table_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<Coordinator> coordinator_;

  // Injection inbox for external submissions (run() from the main
  // thread): an intrusive FIFO through TaskBase::inbox_next, so the cold
  // path allocates nothing beyond the task itself. Line-isolated as one
  // sharing domain: submitters and draining workers write these together,
  // and none of it should ping-pong with the idle-gate words below.
  alignas(layout::kCacheLineBytes) DWS_SHARED std::mutex inbox_m_;
  DWS_SHARED TaskBase* inbox_head_ = nullptr;  // guarded by inbox_m_
  DWS_SHARED TaskBase* inbox_tail_ = nullptr;  // guarded by inbox_m_
  DWS_SHARED std::atomic<std::size_t> inbox_size_{0};
  DWS_SHARED std::atomic<std::uint64_t> external_spawns_{0};

  // Unfinished-task count for the idle gate: workers block here when the
  // program has no work at all instead of spinning per-policy.
  // total_pending_ is bumped by every spawn and completion from every
  // worker — the scheduler's hottest multi-writer word, alone on its line.
  alignas(layout::kCacheLineBytes) DWS_SHARED
      std::atomic<std::int64_t> total_pending_{0};
  alignas(layout::kCacheLineBytes) DWS_SHARED std::mutex gate_m_;
  DWS_SHARED std::condition_variable gate_cv_;

  // Control words: written rarely (shutdown once, T_SLEEP escalation on
  // sleep-cut events), read on worker loops — keep them off the gate
  // lines so a gate broadcast does not invalidate every reader.
  alignas(layout::kCacheLineBytes) DWS_SHARED std::atomic<bool> shutdown_{
      false};
  DWS_SHARED std::atomic<int> cur_t_sleep_{0};  // resolved in the constructor
#ifndef DWS_RACE_DISABLED
  DWS_SHARED std::atomic<race::ExecHook*> exec_hook_{nullptr};
#endif
};

}  // namespace dws::rt
