#include "sim/dag.hpp"

#include <algorithm>
#include <sstream>

namespace dws::sim {

double TaskDag::total_work() const {
  double sum = 0.0;
  for (const auto& n : nodes_) sum += n.work_us;
  return sum;
}

std::vector<std::uint32_t> TaskDag::join_counts() const {
  std::vector<std::uint32_t> counts(nodes_.size(), 0);
  for (const auto& n : nodes_) {
    if (n.continuation != kNoNode) ++counts[n.continuation];
  }
  return counts;
}

std::vector<std::vector<NodeId>> TaskDag::predecessors() const {
  std::vector<std::vector<NodeId>> preds(nodes_.size());
  for (std::size_t u = 0; u < nodes_.size(); ++u) {
    const DagNode& n = nodes_[u];
    for (NodeId v : n.spawns) preds[v].push_back(static_cast<NodeId>(u));
    if (n.continuation != kNoNode) {
      preds[n.continuation].push_back(static_cast<NodeId>(u));
    }
  }
  return preds;
}

double TaskDag::critical_path() const {
  if (nodes_.empty() || root_ == kNoNode) return 0.0;
  // Longest path over edges (u -> spawn) and (u -> continuation), computed
  // with an iterative DFS + memo over the DAG.
  std::vector<double> memo(nodes_.size(), -1.0);
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    const DagNode& n = nodes_[u];
    bool ready = true;
    double best_succ = 0.0;
    auto visit = [&](NodeId v) {
      if (memo[v] < 0.0) {
        stack.push_back(v);
        ready = false;
      } else {
        best_succ = std::max(best_succ, memo[v]);
      }
    };
    for (NodeId v : n.spawns) visit(v);
    if (n.continuation != kNoNode) visit(n.continuation);
    if (ready) {
      memo[u] = n.work_us + best_succ;
      stack.pop_back();
    }
  }
  return memo[root_];
}

std::string TaskDag::validate() const {
  if (nodes_.empty()) return "empty DAG";
  if (root_ == kNoNode || root_ >= nodes_.size()) return "invalid root";

  const auto joins = join_counts();
  std::vector<std::uint32_t> spawn_in(nodes_.size(), 0);
  for (std::size_t u = 0; u < nodes_.size(); ++u) {
    const DagNode& n = nodes_[u];
    for (NodeId v : n.spawns) {
      if (v >= nodes_.size()) {
        std::ostringstream os;
        os << "node " << u << " spawns out-of-range node " << v;
        return os.str();
      }
      ++spawn_in[v];
    }
    if (n.continuation != kNoNode && n.continuation >= nodes_.size()) {
      std::ostringstream os;
      os << "node " << u << " has out-of-range continuation";
      return os.str();
    }
    if (n.work_us < 0.0) {
      std::ostringstream os;
      os << "node " << u << " has negative work";
      return os.str();
    }
  }

  // Enabling discipline: root enabled by the runtime; every other node is
  // enabled exactly once (spawned once XOR is a join target).
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    const bool is_root = (v == root_);
    const unsigned enables = spawn_in[v] + (joins[v] > 0 ? 1u : 0u);
    if (is_root && enables != 0) return "root must not be spawned or joined";
    if (!is_root && spawn_in[v] > 1) {
      std::ostringstream os;
      os << "node " << v << " spawned " << spawn_in[v] << " times";
      return os.str();
    }
    if (!is_root && enables != 1) {
      std::ostringstream os;
      os << "node " << v << " enabled " << enables
         << " times (must be exactly once)";
      return os.str();
    }
  }

  // Acyclicity + reachability via Kahn-style walk along spawn edges and
  // continuation edges (a continuation is "unlocked" when all its join
  // predecessors executed; for reachability treat it as an ordinary edge).
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<NodeId> order{root_};
  seen[root_] = 1;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const DagNode& n = nodes_[order[i]];
    auto push = [&](NodeId v) {
      if (!seen[v]) {
        seen[v] = 1;
        order.push_back(v);
      }
    };
    for (NodeId v : n.spawns) push(v);
    if (n.continuation != kNoNode) push(n.continuation);
  }
  if (order.size() != nodes_.size()) {
    std::ostringstream os;
    os << (nodes_.size() - order.size()) << " nodes unreachable from root";
    return os.str();
  }

  // Cycle check: longest-path DFS would recurse forever on a cycle; run a
  // colored DFS instead.
  std::vector<char> color(nodes_.size(), 0);  // 0 white, 1 gray, 2 black
  std::vector<std::pair<NodeId, std::size_t>> stack{{root_, 0}};
  color[root_] = 1;
  while (!stack.empty()) {
    auto& [u, idx] = stack.back();
    const DagNode& n = nodes_[u];
    const std::size_t out_degree =
        n.spawns.size() + (n.continuation != kNoNode ? 1 : 0);
    if (idx == out_degree) {
      color[u] = 2;
      stack.pop_back();
      continue;
    }
    const NodeId v =
        idx < n.spawns.size() ? n.spawns[idx] : n.continuation;
    ++idx;
    if (color[v] == 1) return "cycle detected";
    if (color[v] == 0) {
      color[v] = 1;
      stack.emplace_back(v, 0);
    }
  }
  return {};
}

}  // namespace dws::sim
