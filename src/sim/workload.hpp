// Parameterized task-DAG generators covering the parallelism shapes of
// the Table-2 benchmarks: divide-and-conquer trees (FFT, Mergesort,
// Cholesky), iterative barrier phases (Heat, SOR), phases of shrinking
// width (LU, GE), and irregular trees (PNN).
//
// Generators return well-formed DAGs (validate() passes) so the simulator
// can run them under any scheduling mode.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/dag.hpp"

namespace dws::sim {

/// entry/exit handle for composing sub-DAGs sequentially.
struct DagSpan {
  NodeId entry = kNoNode;
  NodeId exit = kNoNode;
};

/// Binary-splitter parallel-for: `n_tasks` leaves of `leaf_work_us` each,
/// distributed by a spawn tree of `split_work_us` splitter nodes, joining
/// into a single exit node. This is what dws::rt::parallel_for generates.
DagSpan emit_parallel_for(TaskDag& dag, std::uint32_t n_tasks,
                          double leaf_work_us, double mem_intensity,
                          double split_work_us = 0.5);

/// Full divide-and-conquer fork-join tree of the given depth and fanout:
/// every internal node costs `split_work_us`, every leaf `leaf_work_us`,
/// every join/merge `merge_work_us`. Leaves = fanout^depth.
TaskDag make_fork_join_tree(unsigned depth, unsigned fanout,
                            double leaf_work_us, double split_work_us,
                            double merge_work_us, double mem_intensity);

/// Iterative kernel: `n_phases` barrier-separated parallel-for phases of
/// constant width (Heat / SOR shape: abundant parallelism inside a phase,
/// a full join between phases).
TaskDag make_iterative_phases(unsigned n_phases, std::uint32_t tasks_per_phase,
                              double task_work_us, double mem_intensity,
                              double barrier_work_us = 1.0);

/// Phases whose width shrinks linearly from `initial_width` down to
/// `final_width` (right-looking LU / GE / Cholesky shape: the trailing
/// submatrix shrinks every outer iteration, so so does the demand for
/// cores — the prime workload for demand-aware scheduling).
TaskDag make_decreasing_parallelism(unsigned n_phases,
                                    std::uint32_t initial_width,
                                    std::uint32_t final_width,
                                    double task_work_us, double mem_intensity,
                                    double barrier_work_us = 1.0);

/// `width` independent serial chains of `chain_len` tasks each, joining a
/// single exit node. A phase of this shape holds its core demand at
/// `width` for chain_len * task_work_us — the *sustained* narrow section
/// a blocked factorization exhibits (panel factor + small trailing
/// updates), which is what lets a co-runner actually use borrowed cores.
DagSpan emit_parallel_chains(TaskDag& dag, std::uint32_t width,
                             std::uint32_t chain_len, double task_work_us,
                             double mem_intensity,
                             double split_work_us = 0.5);

/// Barrier-separated phases of parallel chains with shrinking width
/// (blocked LU/GE/Cholesky shape: each outer iteration is a sustained
/// region of (n_b - k)-way parallelism). `curve` shapes the decay:
/// width_p = max(final, initial * (1-frac)^curve); curve = 1 is linear,
/// curve = 2 matches the quadratically shrinking trailing submatrix of a
/// right-looking factorization (many consecutive narrow phases — the
/// sustained low-demand tail DWS lends out).
TaskDag make_decreasing_chains(unsigned n_phases, std::uint32_t initial_width,
                               std::uint32_t final_width,
                               std::uint32_t chain_len, double task_work_us,
                               double mem_intensity, double curve = 1.0);

/// Irregular random recursive tree (PNN shape): node fanout and work are
/// drawn from seeded distributions, producing bursty, unpredictable
/// parallelism. `target_nodes` bounds the total size.
TaskDag make_irregular_tree(std::uint64_t seed, std::uint32_t target_nodes,
                            unsigned max_fanout, double min_work_us,
                            double max_work_us, double mem_intensity);

/// A serial chain (no parallelism at all) — degenerate case for tests.
TaskDag make_serial_chain(unsigned length, double work_us,
                          double mem_intensity);

}  // namespace dws::sim
