#include "sim/workload.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace dws::sim {

namespace {

/// Recursive helper for emit_parallel_for: cover `n` leaves, return the
/// span (entry splitter or single leaf, exit join node).
DagSpan emit_pfor_rec(TaskDag& dag, std::uint32_t n, double leaf_work,
                      double mem, double split_work) {
  if (n == 1) {
    const NodeId leaf = dag.add_node(leaf_work, mem);
    return {leaf, leaf};
  }
  const NodeId split = dag.add_node(split_work, mem);
  const NodeId join = dag.add_node(split_work, mem);
  const std::uint32_t half = n / 2;
  const DagSpan lo = emit_pfor_rec(dag, half, leaf_work, mem, split_work);
  const DagSpan hi = emit_pfor_rec(dag, n - half, leaf_work, mem, split_work);
  dag.add_spawn(split, hi.entry);   // spawn the upper half...
  dag.add_spawn(split, lo.entry);   // ...and descend into the lower half
  dag.set_continuation(split, join);
  dag.set_continuation(lo.exit, join);
  dag.set_continuation(hi.exit, join);
  return {split, join};
}

DagSpan emit_tree_rec(TaskDag& dag, unsigned depth, unsigned fanout,
                      double leaf_work, double split_work, double merge_work,
                      double mem) {
  if (depth == 0) {
    const NodeId leaf = dag.add_node(leaf_work, mem);
    return {leaf, leaf};
  }
  const NodeId split = dag.add_node(split_work, mem);
  const NodeId merge = dag.add_node(merge_work, mem);
  dag.set_continuation(split, merge);
  for (unsigned i = 0; i < fanout; ++i) {
    const DagSpan child = emit_tree_rec(dag, depth - 1, fanout, leaf_work,
                                        split_work, merge_work, mem);
    dag.add_spawn(split, child.entry);
    dag.set_continuation(child.exit, merge);
  }
  return {split, merge};
}

}  // namespace

DagSpan emit_parallel_for(TaskDag& dag, std::uint32_t n_tasks,
                          double leaf_work_us, double mem_intensity,
                          double split_work_us) {
  assert(n_tasks >= 1);
  return emit_pfor_rec(dag, n_tasks, leaf_work_us, mem_intensity,
                       split_work_us);
}

TaskDag make_fork_join_tree(unsigned depth, unsigned fanout,
                            double leaf_work_us, double split_work_us,
                            double merge_work_us, double mem_intensity) {
  assert(fanout >= 1);
  TaskDag dag;
  const DagSpan span = emit_tree_rec(dag, depth, fanout, leaf_work_us,
                                     split_work_us, merge_work_us,
                                     mem_intensity);
  dag.set_root(span.entry);
  return dag;
}

TaskDag make_iterative_phases(unsigned n_phases, std::uint32_t tasks_per_phase,
                              double task_work_us, double mem_intensity,
                              double barrier_work_us) {
  assert(n_phases >= 1 && tasks_per_phase >= 1);
  TaskDag dag;
  DagSpan prev{};
  for (unsigned p = 0; p < n_phases; ++p) {
    DagSpan phase = emit_parallel_for(dag, tasks_per_phase, task_work_us,
                                      mem_intensity, barrier_work_us);
    if (p == 0) {
      dag.set_root(phase.entry);
    } else {
      dag.set_continuation(prev.exit, phase.entry);
    }
    prev = phase;
  }
  return dag;
}

TaskDag make_decreasing_parallelism(unsigned n_phases,
                                    std::uint32_t initial_width,
                                    std::uint32_t final_width,
                                    double task_work_us, double mem_intensity,
                                    double barrier_work_us) {
  assert(n_phases >= 1 && initial_width >= 1 && final_width >= 1);
  TaskDag dag;
  DagSpan prev{};
  for (unsigned p = 0; p < n_phases; ++p) {
    // Linear interpolation of the phase width, inclusive of endpoints.
    const double frac =
        n_phases == 1 ? 0.0 : static_cast<double>(p) / (n_phases - 1);
    const auto width = static_cast<std::uint32_t>(
        static_cast<double>(initial_width) +
        frac * (static_cast<double>(final_width) -
                static_cast<double>(initial_width)));
    DagSpan phase = emit_parallel_for(dag, std::max(width, 1u), task_work_us,
                                      mem_intensity, barrier_work_us);
    if (p == 0) {
      dag.set_root(phase.entry);
    } else {
      dag.set_continuation(prev.exit, phase.entry);
    }
    prev = phase;
  }
  return dag;
}

namespace {

/// Recursive splitter over `width` chains (parallel-for whose leaves are
/// serial chains).
DagSpan emit_chains_rec(TaskDag& dag, std::uint32_t width,
                        std::uint32_t chain_len, double task_work, double mem,
                        double split_work) {
  if (width == 1) {
    NodeId head = dag.add_node(task_work, mem);
    NodeId tail = head;
    for (std::uint32_t i = 1; i < chain_len; ++i) {
      const NodeId next = dag.add_node(task_work, mem);
      dag.set_continuation(tail, next);
      tail = next;
    }
    return {head, tail};
  }
  const NodeId split = dag.add_node(split_work, mem);
  const NodeId join = dag.add_node(split_work, mem);
  const std::uint32_t half = width / 2;
  const DagSpan lo =
      emit_chains_rec(dag, half, chain_len, task_work, mem, split_work);
  const DagSpan hi = emit_chains_rec(dag, width - half, chain_len, task_work,
                                     mem, split_work);
  dag.add_spawn(split, hi.entry);
  dag.add_spawn(split, lo.entry);
  dag.set_continuation(split, join);
  dag.set_continuation(lo.exit, join);
  dag.set_continuation(hi.exit, join);
  return {split, join};
}

/// Recursive irregular subtree: consumes from `budget`, returns its span.
DagSpan emit_irregular_rec(TaskDag& dag, util::Xoshiro256& rng,
                           std::int64_t& budget, unsigned max_fanout,
                           double min_work, double max_work, double mem,
                           unsigned depth_left, bool force_split = false) {
  const double w = rng.next_double(min_work, max_work);
  if (budget <= 2 || depth_left == 0 ||
      (!force_split && rng.next_bool(0.2))) {
    --budget;
    const NodeId leaf = dag.add_node(w, mem);
    return {leaf, leaf};
  }
  const NodeId split = dag.add_node(w, mem);
  const NodeId merge = dag.add_node(w * 0.25, mem);
  budget -= 2;
  dag.set_continuation(split, merge);
  const unsigned fanout =
      1 + static_cast<unsigned>(rng.next_below(max_fanout));
  for (unsigned i = 0; i < fanout && budget > 0; ++i) {
    const DagSpan child =
        emit_irregular_rec(dag, rng, budget, max_fanout, min_work, max_work,
                           mem, depth_left - 1);
    dag.add_spawn(split, child.entry);
    dag.set_continuation(child.exit, merge);
  }
  return {split, merge};
}

}  // namespace

TaskDag make_irregular_tree(std::uint64_t seed, std::uint32_t target_nodes,
                            unsigned max_fanout, double min_work_us,
                            double max_work_us, double mem_intensity) {
  assert(target_nodes >= 1 && max_fanout >= 1);
  util::Xoshiro256 rng(seed);
  TaskDag dag;
  std::int64_t budget = static_cast<std::int64_t>(target_nodes);
  // The root always splits (when the budget allows): a "tree" that is a
  // single leaf is not a useful irregular workload.
  const DagSpan span = emit_irregular_rec(
      dag, rng, budget, max_fanout, min_work_us, max_work_us, mem_intensity,
      /*depth_left=*/24, /*force_split=*/true);
  dag.set_root(span.entry);
  return dag;
}

DagSpan emit_parallel_chains(TaskDag& dag, std::uint32_t width,
                             std::uint32_t chain_len, double task_work_us,
                             double mem_intensity, double split_work_us) {
  assert(width >= 1 && chain_len >= 1);
  return emit_chains_rec(dag, width, chain_len, task_work_us, mem_intensity,
                         split_work_us);
}

TaskDag make_decreasing_chains(unsigned n_phases, std::uint32_t initial_width,
                               std::uint32_t final_width,
                               std::uint32_t chain_len, double task_work_us,
                               double mem_intensity, double curve) {
  assert(n_phases >= 1 && initial_width >= 1 && final_width >= 1);
  assert(curve > 0.0);
  TaskDag dag;
  DagSpan prev{};
  for (unsigned p = 0; p < n_phases; ++p) {
    const double frac =
        n_phases == 1 ? 0.0 : static_cast<double>(p) / (n_phases - 1);
    const double scaled = std::pow(1.0 - frac, curve);
    const auto width = std::max(
        final_width,
        static_cast<std::uint32_t>(
            std::lround(static_cast<double>(initial_width) * scaled)));
    DagSpan phase = emit_parallel_chains(dag, std::max(width, 1u), chain_len,
                                         task_work_us, mem_intensity);
    if (p == 0) {
      dag.set_root(phase.entry);
    } else {
      dag.set_continuation(prev.exit, phase.entry);
    }
    prev = phase;
  }
  return dag;
}

TaskDag make_serial_chain(unsigned length, double work_us,
                          double mem_intensity) {
  assert(length >= 1);
  TaskDag dag;
  NodeId prev = dag.add_node(work_us, mem_intensity);
  dag.set_root(prev);
  for (unsigned i = 1; i < length; ++i) {
    const NodeId next = dag.add_node(work_us, mem_intensity);
    dag.set_continuation(prev, next);
    prev = next;
  }
  return dag;
}

}  // namespace dws::sim
