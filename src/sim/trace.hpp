// Event tracing for the simulator: when enabled, the engine records every
// scheduling-relevant event (task start/finish, steal, sleep, wake,
// eviction, core claim/reclaim) into the result, and this module renders
// them as JSON Lines for external analysis (one JSON object per line —
// loads directly into pandas/jq/DuckDB).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/types.hpp"
#include "sim/dag.hpp"

namespace dws::sim {

enum class TraceKind : int {
  kTaskStart = 0,
  kTaskFinish = 1,
  kSteal = 2,      ///< successful steal (thief's event)
  kSleep = 3,      ///< voluntary sleep after T_SLEEP failures
  kEvicted = 4,    ///< vacated a reclaimed core
  kWake = 5,       ///< coordinator (or relaunch) woke this worker
  kClaim = 6,      ///< coordinator claimed a free core
  kReclaim = 7,    ///< coordinator took a lent home core back
  kRunStart = 8,   ///< program repetition began
  kRunFinish = 9,  ///< program repetition completed
};

[[nodiscard]] const char* to_string(TraceKind kind) noexcept;

struct TraceEvent {
  double t_us = 0.0;
  TraceKind kind = TraceKind::kTaskStart;
  unsigned prog = 0;        ///< program index (0-based)
  CoreId core = 0;          ///< core involved (worker's core; claimed core)
  NodeId node = kNoNode;    ///< task id for task events
};

/// Render events as JSON Lines:
///   {"t_us":123.4,"kind":"steal","prog":0,"core":3}
/// Task events additionally carry "node".
void write_trace_jsonl(std::ostream& os, const std::vector<TraceEvent>& events);

}  // namespace dws::sim
